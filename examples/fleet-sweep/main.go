// fleet-sweep runs a 64-vehicle parameter sweep through the fleet
// worker pool: four Table 3 workloads (c1..c4, utilization 0.38 to
// 0.94), sixteen seed-replicated vehicles each, every vehicle driven
// to first convergence. The per-workload convergence distributions
// come straight out of the aggregated fleet report — the same
// measurement as the paper's Fig. 15 box plots, but run as one
// sharded fleet instead of a serial loop.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/arachnet"
)

func main() {
	const replicas = 16
	patterns := []string{"c1", "c2", "c3", "c4"}

	f := arachnet.Fleet{
		Seed:       2025,
		JobTimeout: 2 * time.Minute,
	}
	for _, p := range patterns {
		f.Vehicles = append(f.Vehicles, arachnet.VehicleSpec{
			Name:           p,
			Pattern:        p,
			ConvergeWithin: 500_000,
			Replicate:      replicas,
		})
	}

	jobs, _ := f.Jobs()
	fmt.Printf("fleet sweep: %d vehicles (%d workloads x %d seeds)\n\n",
		len(jobs), len(patterns), replicas)

	rep, err := arachnet.RunFleet(context.Background(), f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !rep.Ok() {
		fmt.Fprintln(os.Stderr, "fleet had failures:", rep.FirstError())
		os.Exit(1)
	}

	// Per-workload convergence distributions: replicas of one vehicle
	// are contiguous in the index-ordered report.
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "pattern", "median", "p90", "min", "max")
	for i, p := range patterns {
		var samples []float64
		for _, j := range rep.Jobs[i*replicas : (i+1)*replicas] {
			samples = append(samples, j.Result.Metrics[arachnet.FleetMetricConvergenceSlots])
		}
		dist := arachnet.NewFleetDistribution(samples)
		fmt.Printf("%-8s %10.0f %10.0f %10.0f %10.0f\n", p, dist.P50, dist.P90, dist.Min, dist.Max)
	}

	fmt.Printf("\nfleet-wide convergence: %s\n", rep.Metrics[arachnet.FleetMetricConvergenceSlots])
	fmt.Printf("slots simulated: %d across %d workers in %v\n",
		rep.Counters[arachnet.FleetCounterSlots], rep.Workers, rep.Wall.Round(time.Millisecond))
	fmt.Printf("report fingerprint (worker-count independent): %s\n", rep.Fingerprint())
}
