// Outage-recovery: fault injection on the full network. The reader's
// power carrier is cut (vehicle parked, reader unpowered); the
// battery-free tags coast on their supercapacitors, brown out one by
// one, and — once the carrier returns — recharge, rejoin as late
// arrivals through the EMPTY gate, and re-converge without any manual
// intervention. This is the operational story behind the paper's
// battery-free design: no battery to flatten, no state to restore.
//
//	go run ./examples/outage-recovery
package main

import (
	"fmt"
	"log"

	"repro/arachnet"
)

func main() {
	cfg := arachnet.DefaultNetworkConfig()
	cfg.Seed = 11
	net, err := arachnet.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	poweredCount := func() int {
		n := 0
		for _, dev := range net.Tags {
			if dev.Powered() {
				n++
			}
		}
		return n
	}
	report := func(phase string) {
		st := net.Stats()
		fmt.Printf("%-22s t=%6.0fs powered=%2d/12 slots=%5d decoded=%5d converged=%v\n",
			phase, net.Now().Seconds(), poweredCount(), st.Slots, st.Decoded, st.Converged)
	}

	// Phase 1: normal operation.
	net.Run(10 * arachnet.Minute)
	report("steady state")

	// Phase 2: carrier off. The shunt held every cap near 2.45 V, so
	// the fleet coasts on the few-microamp sleep floor for a minute or
	// two before the cutoffs trip.
	net.SetCarrier(false)
	for i := 0; i < 4; i++ {
		net.Run(net.Now() + 2*arachnet.Minute)
		report("outage")
	}

	// Phase 3: carrier back. Recharge times follow Fig. 11(b): the
	// second-row tags are back in seconds, the cargo tags in about a
	// minute.
	net.SetCarrier(true)
	for i := 0; i < 4; i++ {
		net.Run(net.Now() + 2*arachnet.Minute)
		report("recovery")
	}

	// Phase 4: the protocol re-converges with zero manual help.
	net.Run(net.Now() + 20*arachnet.Minute)
	report("re-converged")

	fmt.Println()
	for _, tp := range net.Stats().Tags {
		fmt.Printf("tag %2d: activations=%d (1 = initial power-up, 2 = post-outage)\n",
			tp.TID, tp.Activations)
	}
}
