// Strain-monitoring: the Sec. 6.5 case study. Three tags with strain
// modules watch a metal plate; we displace its free end from -10 cm to
// +10 cm and read the backscattered Wheatstone-bridge voltages at the
// reader. The decoded payloads track the bending monotonically.
//
//	go run ./examples/strain-monitoring
package main

import (
	"fmt"
	"log"

	"repro/arachnet"
)

func main() {
	cfg := arachnet.NetworkConfig{Seed: 3}
	// Tags A, B, C of Fig. 17 -> deployment positions 2, 5, 8, all
	// fitted with the strain module and reporting every other slot.
	tags := []uint8{2, 5, 8}
	for _, tid := range tags {
		cfg.Tags = append(cfg.Tags, arachnet.TagSpec{
			TID: tid, Period: 4, WithSensor: true, StartCharged: true,
		})
	}
	net, err := arachnet.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Let the protocol settle before measuring.
	net.Run(2 * arachnet.Minute)

	adcToVolts := func(code uint16) float64 { return float64(code) / 1024 * 1.8 }

	fmt.Println("displacement sweep (ADC-decoded bridge voltage, V):")
	fmt.Printf("%-8s %8s %8s %8s\n", "d (cm)", "tag A", "tag B", "tag C")
	for d := -10.0; d <= 10.01; d += 2.5 {
		for _, tid := range tags {
			if err := net.SetDisplacement(tid, d/100); err != nil {
				log.Fatal(err)
			}
		}
		// One minute per step gives each tag several readings.
		net.Run(net.Now() + arachnet.Minute)
		fmt.Printf("%-8.1f", d)
		for _, tid := range tags {
			vals := net.Payloads(tid)
			if len(vals) == 0 {
				fmt.Printf(" %8s", "-")
				continue
			}
			fmt.Printf(" %8.3f", adcToVolts(vals[len(vals)-1]))
		}
		fmt.Println()
	}
	fmt.Println("\nvoltage correlates with displacement: the BiW itself carried")
	fmt.Println("both the power for the measurement and the data back out.")
}
