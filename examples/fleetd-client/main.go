// fleetd-client drives the fleet-as-a-service loop in one process: it
// starts an in-process arachnet-fleetd server, submits a sweep through
// the api.Client, follows the JSONL progress stream, and then shows
// the two determinism guarantees the daemon inherits from the engine —
// a resubmission answers from the (spec, seed) response cache with a
// bit-identical fingerprint, and a local batch run of the same spec
// fingerprints identically to the daemon's report.
//
// Against a real daemon the only change is the base URL:
//
//	arachnet-fleetd -addr 127.0.0.1:8040 &
//	arachnet-fleet -server http://127.0.0.1:8040 -verify fleet.json
package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"

	"repro/arachnet"
	"repro/internal/fleetd"
	"repro/internal/fleetd/api"
)

const spec = `{"seed": 404, "workers": 4, "vehicles": [
	{"name": "uplink", "engine": "slots", "pattern": "c2", "slots": 80000, "replicate": 4},
	{"name": "dense",  "engine": "slots", "pattern": "c4", "slots": 80000, "replicate": 4}
]}`

func main() {
	ctx := context.Background()

	// In-process daemon: the same Server the arachnet-fleetd command
	// wraps, mounted on a test listener.
	srv, err := fleetd.New(fleetd.Config{})
	if err != nil {
		fail(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Drain(ctx)

	c := api.NewClient(hs.URL)
	sub, err := c.Submit(ctx, []byte(spec))
	if err != nil {
		fail(err)
	}
	fmt.Printf("submitted %s: %d vehicle jobs\n", sub.ID, sub.Jobs)

	// Stream shard lifecycle events as the pool works through the sweep.
	events := 0
	done, err := c.Stream(ctx, sub.ID, func(line api.StreamLine) error {
		if line.Type == api.StreamEvent {
			events++
		}
		return nil
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("streamed %d events; job ended %s\n", events, done.State)
	fmt.Printf("fingerprint %s\n\n", done.Fingerprint)

	// Determinism guarantee 1: resubmitting the same spec (any
	// formatting) hits the response cache with the same fingerprint.
	again, err := c.Submit(ctx, []byte(spec))
	if err != nil {
		fail(err)
	}
	fmt.Printf("resubmission: cached=%v fingerprint=%s\n", again.Cached, again.Fingerprint)

	// Determinism guarantee 2: a local batch run of the same (spec,
	// seed) fingerprints identically to the daemon's report.
	f, err := arachnet.UnmarshalFleetJSON([]byte(spec))
	if err != nil {
		fail(err)
	}
	local, err := arachnet.RunFleet(ctx, f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("local batch run:        fingerprint=%s\n", local.Fingerprint())

	if !again.Cached || again.Fingerprint != done.Fingerprint || local.Fingerprint() != done.Fingerprint {
		fail(fmt.Errorf("fingerprints diverged across daemon, cache, and batch"))
	}
	fmt.Println("\nall three paths agree")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
