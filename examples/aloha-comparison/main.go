// ALOHA-comparison: Appendix B head-to-head. Twelve battery-free tags
// with the deployment's measured charging times transmit either
// greedily (pure ALOHA: fire the moment the capacitor fills) or under
// the distributed slot allocation. ALOHA wastes most of its packets to
// collisions and starves slow-charging tags; the distributed protocol
// converges to a collision-free schedule.
//
//	go run ./examples/aloha-comparison
package main

import (
	"fmt"
	"log"

	"repro/arachnet"
	"repro/experiments"
)

func main() {
	charge, err := experiments.ChargeTimes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-tag full-charge times (s), from the BiW energy model:")
	for i, c := range charge {
		fmt.Printf("  tag %2d: %5.1f\n", i+1, c)
	}

	// Pure ALOHA, 10,000 simulated seconds.
	aloha, err := arachnet.SimulateAloha(arachnet.DefaultAlohaConfig(charge))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npure ALOHA over 10,000 s: %d transmissions, %.1f%% collision-free\n",
		aloha.TotalTransmissions, aloha.CollisionFreePct)
	worst := aloha.PerTag[0]
	best := aloha.PerTag[0]
	for _, st := range aloha.PerTag {
		if st.SuccessPct < worst.SuccessPct {
			worst = st
		}
		if st.Total > best.Total {
			best = st
		}
	}
	fmt.Printf("  busiest tag %d sent %d packets; worst success was tag %d at %.1f%%\n",
		best.Tag, best.Total, worst.Tag, worst.SuccessPct)

	// Distributed slot allocation on the same population (c3 periods).
	s, err := arachnet.NewSlotSim(arachnet.SlotSimConfig{
		Pattern: arachnet.Table3Patterns()[2],
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	s.Run(10_000)
	success := 100.0
	if s.TruthNonEmpty > 0 {
		success = 100 * (1 - float64(s.TruthCollisions)/float64(s.TruthNonEmpty))
	}
	fmt.Printf("\ndistributed slot allocation over 10,000 slots: %.1f%% collision-free\n", success)
	fmt.Printf("  first convergence after %d slots; %d total collision slots\n",
		s.Convergence.ConvergenceSlot(), s.TruthCollisions)

	fmt.Printf("\nverdict: coordination wins %.1fx more usable deliveries per transmission\n",
		success/aloha.CollisionFreePct)
}
