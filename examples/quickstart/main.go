// Quickstart: build the paper's 12-tag ONVO L60 deployment, run it for
// ten minutes of simulated time, and print the network statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/arachnet"
)

func main() {
	// The default configuration reproduces the paper's deployment:
	// 12 battery-free tags across the front row, second row and cargo
	// area, the reader over the battery pack, and the Table 3 "c3"
	// workload (slot utilization 0.84).
	cfg := arachnet.DefaultNetworkConfig()
	cfg.Seed = 42

	net, err := arachnet.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Where everything sits on the BiW and what that costs (Fig. 10/11).
	rows, err := net.DeploymentReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(arachnet.FormatDeployment(rows))
	fmt.Println()

	// Run ten simulated minutes: the tags contend for slots, settle,
	// and deliver sensor readings every 1-second slot thereafter.
	net.Run(10 * arachnet.Minute)

	st := net.Stats()
	fmt.Println("ARACHNET quickstart —", len(st.Tags), "tags on the BiW")
	fmt.Println(st)

	if st.Converged {
		fmt.Printf("\nthe network found a collision-free schedule after %d slots\n",
			st.ConvergenceSlot)
	}
	fmt.Printf("channel efficiency: %.1f%% of slots carried data (bound for c3: 84.4%%)\n",
		100*st.NonEmptyRatio)
}
