// Battery-monitor: the motivating workload from the paper's
// introduction. Tags watching the battery-pack enclosure need frequent
// updates (battery damage can lead to thermal runaway within tens of
// seconds), while tags tracking slow structural aging can report
// rarely. The permissible-period scheme expresses exactly that: the
// battery tags take period 4 (one reading every 4 s), the aging tags
// period 32.
//
//	go run ./examples/battery-monitor
package main

import (
	"fmt"
	"log"

	"repro/arachnet"
)

func main() {
	cfg := arachnet.NetworkConfig{Seed: 7}

	// Tags 4-8 sit in the second row around the battery pack: fast
	// reporting (every 8 s). The rest watch slowly-evolving structure
	// (every 32 s). Combined utilization 5/8 + 7/32 = 0.84 stays under
	// the Eq. 1 capacity bound.
	for tid := uint8(1); tid <= 12; tid++ {
		period := arachnet.Period(32)
		role := "structural aging"
		if tid >= 4 && tid <= 8 {
			period = 8
			role = "battery pack"
		}
		cfg.Tags = append(cfg.Tags, arachnet.TagSpec{
			TID: tid, Period: period, StartCharged: true,
		})
		fmt.Printf("tag %2d: %-16s period %2d slots\n", tid, role, period)
	}

	pattern := arachnet.Pattern{Periods: periodsOf(cfg)}
	fmt.Printf("\nslot utilization U = %.3f (must stay <= 1)\n\n", pattern.Utilization())

	net, err := arachnet.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Sanity-check the provisioning against each position's energy
	// budget (Sec. 6.2): the fastest sustainable period must not
	// exceed what we assigned.
	for _, spec := range cfg.Tags {
		rec, err := net.RecommendPeriod(spec.TID)
		if err != nil {
			log.Fatal(err)
		}
		if rec > spec.Period {
			log.Fatalf("tag %d cannot sustain period %d (budget allows >= %d)",
				spec.TID, spec.Period, rec)
		}
	}
	fmt.Println("energy budgets check out: every assignment is sustainable")

	net.Run(20 * arachnet.Minute)
	st := net.Stats()
	fmt.Println(st)

	// Delivery cadence check: a battery tag should have ~4x the
	// decoded readings of an aging tag.
	fast := len(net.Payloads(5))
	slow := len(net.Payloads(10))
	fmt.Printf("\nreadings buffered: battery tag 5 = %d, aging tag 10 = %d\n", fast, slow)
	fmt.Println("(the reader keeps the most recent 64 per tag)")
	if st.Converged {
		fmt.Printf("converged at slot %d: every reading now arrives on schedule\n", st.ConvergenceSlot)
	}
}

func periodsOf(cfg arachnet.NetworkConfig) []arachnet.Period {
	out := make([]arachnet.Period, len(cfg.Tags))
	for i, t := range cfg.Tags {
		out[i] = t.Period
	}
	return out
}
