package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/obs"
)

func TestSchottkyDrop(t *testing.T) {
	d := Schottky()
	// Below 1 mA the CDBU0130L drop stays under ~0.19 V; at the pump
	// operating current it is the paper's 0.15 V.
	if v := d.ForwardDrop(1e-3); v > 0.19 {
		t.Errorf("drop @1mA = %v, want < 0.19", v)
	}
	if v := d.EffectiveDrop(); math.Abs(v-0.15) > 0.005 {
		t.Errorf("effective drop = %v, want ~0.15", v)
	}
	if d.ForwardDrop(0) != 0 || d.ForwardDrop(-1) != 0 {
		t.Error("non-positive current must have zero drop")
	}
}

func TestSiliconVsSchottky(t *testing.T) {
	si, sc := Silicon(), Schottky()
	// Traditional diodes drop ~0.7 V at 1 mA — the reason the paper
	// rejects them (Sec. 3.2).
	if v := si.ForwardDrop(1e-3); v < 0.6 || v > 0.8 {
		t.Errorf("silicon drop @1mA = %v, want ~0.7", v)
	}
	for _, i := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		if si.ForwardDrop(i) <= sc.ForwardDrop(i) {
			t.Errorf("silicon should drop more than Schottky at %v A", i)
		}
	}
}

func TestDiodeDropMonotone(t *testing.T) {
	d := Schottky()
	prev := 0.0
	for i := 1e-7; i < 1e-2; i *= 2 {
		v := d.ForwardDrop(i)
		if v <= prev {
			t.Fatalf("drop not increasing at %v A", i)
		}
		prev = v
	}
}

func TestMultiplierFormula(t *testing.T) {
	m := NewMultiplier(8)
	von := m.Diode.EffectiveDrop()
	vp := 0.446
	want := 16 * (vp - von)
	if got := m.OpenCircuitVoltage(vp); math.Abs(got-want) > 1e-9 {
		t.Errorf("Vdd = %v, want 2N(Vp-Von) = %v", got, want)
	}
	if m.AmplificationRatio() != 16 {
		t.Errorf("8 stages should be 16x")
	}
}

func TestMultiplierBelowDiodeDrop(t *testing.T) {
	m := NewMultiplier(8)
	if v := m.OpenCircuitVoltage(0.1); v != 0 {
		t.Errorf("pump started below diode drop: %v", v)
	}
	if v := m.OpenCircuitVoltage(0); v != 0 {
		t.Error("zero input must produce zero output")
	}
}

func TestMultiplierMonotone(t *testing.T) {
	// Property (DESIGN.md): output monotone in stage count and input
	// voltage, and never above the ideal 2N*Vp.
	f := func(stages8 uint8, vpMilli uint16) bool {
		stages := int(stages8%12) + 1
		vp := float64(vpMilli%3000)/1000 + 0.05
		m := NewMultiplier(stages)
		out := m.OpenCircuitVoltage(vp)
		if out < 0 || out > 2*float64(stages)*vp {
			return false
		}
		if m2 := NewMultiplier(stages + 1); m2.OpenCircuitVoltage(vp) < out {
			return false
		}
		return m.OpenCircuitVoltage(vp+0.1) >= out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplierStageSweepFig11a(t *testing.T) {
	// Fig. 11(a): amplified voltage rises with stage count (2,4,6,8)
	// but sub-proportionally because of diode drops.
	vp := 0.446 // tag 4's PZT voltage
	prev := 0.0
	for _, stages := range []int{2, 4, 6, 8} {
		v := NewMultiplier(stages).OpenCircuitVoltage(vp)
		if v <= prev {
			t.Fatalf("voltage not increasing at %d stages", stages)
		}
		prev = v
	}
	v2 := NewMultiplier(2).OpenCircuitVoltage(vp)
	v8 := NewMultiplier(8).OpenCircuitVoltage(vp)
	// 4x the stages must give exactly 4x here (same per-diode drop),
	// but 4x of the *lossy* value, well below 4x the ideal 4*Vp gain.
	if math.Abs(v8-4*v2) > 1e-9 {
		t.Errorf("v8 = %v, want 4*v2 = %v", v8, 4*v2)
	}
	if v8 >= 16*vp {
		t.Error("real pump must stay below ideal 16x")
	}
}

func TestMultiplierOutputImpedance(t *testing.T) {
	m := NewMultiplier(8)
	r := m.OutputImpedance()
	want := 8.0 / (90_000 * m.StageFarads)
	if math.Abs(r-want) > 1e-6 {
		t.Errorf("Rout = %v, want %v", r, want)
	}
	// More stages -> higher impedance (the Challenge 2 tradeoff).
	if NewMultiplier(4).OutputImpedance() >= r {
		t.Error("impedance should grow with stages")
	}
	m.PumpHz = 0
	if m.OutputImpedance() != 0 {
		t.Error("degenerate pump should report zero impedance")
	}
}

func TestSupercapBasics(t *testing.T) {
	s := NewSupercap()
	if s.Volts() != 0 {
		t.Fatal("new cap should be empty")
	}
	s.SetVolts(2.3)
	wantE := 0.5 * 1e-3 * 2.3 * 2.3
	if math.Abs(s.EnergyJoules()-wantE) > 1e-12 {
		t.Errorf("energy = %v, want %v", s.EnergyJoules(), wantE)
	}
	s.SetVolts(-1)
	if s.Volts() != 0 {
		t.Error("voltage must clamp at 0")
	}
	s.SetVolts(100)
	if s.Volts() != s.RatedVolts {
		t.Error("voltage must clamp at rated")
	}
}

func TestSupercapDepositWithdraw(t *testing.T) {
	s := NewSupercap()
	s.Deposit(1e-3, 1.0) // 1 mA for 1 s into 1 mF -> 1 V
	if math.Abs(s.Volts()-1.0) > 1e-9 {
		t.Errorf("volts = %v, want 1.0", s.Volts())
	}
	e0 := s.EnergyJoules()
	if !s.Withdraw(1e-6, 1.0) { // 1 uW for 1 s
		t.Fatal("withdraw of tiny load failed")
	}
	if math.Abs(e0-s.EnergyJoules()-1e-6) > 1e-12 {
		t.Error("withdraw removed wrong energy")
	}
	// Draining more than stored fails and zeroes the cap.
	if s.Withdraw(1.0, 10.0) {
		t.Error("impossible withdraw succeeded")
	}
	if s.Volts() != 0 {
		t.Error("failed withdraw should leave cap empty")
	}
	// No-ops.
	s.SetVolts(1)
	s.Deposit(-1, 1)
	s.Deposit(1, -1)
	if !s.Withdraw(0, 5) || !s.Withdraw(5, 0) {
		t.Error("zero-load withdraw must succeed")
	}
	if s.Volts() != 1 {
		t.Error("no-op operations changed voltage")
	}
}

func TestSupercapVoltageNeverNegative(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSupercap()
		s.SetVolts(2)
		for _, op := range ops {
			amt := float64(op%1000) / 100
			switch op % 3 {
			case 0:
				s.Deposit(amt/1000, 0.5)
			case 1:
				s.Withdraw(amt/1000, 0.5)
			case 2:
				s.Leak(amt)
			}
			if s.Volts() < 0 || s.Volts() > s.RatedVolts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSupercapLeak(t *testing.T) {
	s := NewSupercap()
	s.SetVolts(2.3)
	i := s.LeakCurrent()
	if i <= 0 || i > 1e-6 {
		t.Errorf("leak current = %v, want small positive (<1uA)", i)
	}
	v0 := s.Volts()
	s.Leak(60)
	if s.Volts() >= v0 {
		t.Error("leak did not discharge")
	}
	// Over a minute the low-leakage tantalum barely sags.
	if v0-s.Volts() > 0.05 {
		t.Errorf("leak too aggressive: %v V lost in 60 s", v0-s.Volts())
	}
}

func TestCutoffThresholds(t *testing.T) {
	c := NewCutoff()
	// Appendix A: R1=680k, R2=180k, R3=1M, VREF=1.24 V give
	// HTH ~= 2.3 V and LTH ~= 1.95 V.
	if h := c.HighThreshold(); math.Abs(h-2.3) > 0.015 {
		t.Errorf("HTH = %v, want ~2.3", h)
	}
	if l := c.LowThreshold(); math.Abs(l-1.95) > 0.015 {
		t.Errorf("LTH = %v, want ~1.95", l)
	}
	if c.QuiescentAmps > 1e-6 {
		t.Errorf("cutoff leakage %v exceeds the 1 uA budget", c.QuiescentAmps)
	}
}

func TestCutoffHysteresis(t *testing.T) {
	c := NewCutoff()
	if c.PoweringMCU() {
		t.Fatal("cutoff should start open")
	}
	// Rising through LTH does not switch on.
	if c.Update(2.0) {
		t.Error("switched on below HTH")
	}
	if !c.Update(2.31) {
		t.Error("did not switch on at HTH")
	}
	// Sagging into the hysteresis band keeps power on.
	if !c.Update(2.1) {
		t.Error("dropped power inside hysteresis band")
	}
	if c.Update(1.90) {
		t.Error("kept power below LTH")
	}
	// Re-entering the band from below stays off.
	if c.Update(2.1) {
		t.Error("re-energized inside band from below")
	}
	c.Update(2.4)
	c.Reset()
	if c.PoweringMCU() {
		t.Error("Reset did not open the switch")
	}
}

func TestCutoffHysteresisProperty(t *testing.T) {
	// Property: power-on transitions happen only at V >= HTH, power-off
	// only at V < LTH.
	f := func(seq []uint16) bool {
		c := NewCutoff()
		prev := false
		for _, q := range seq {
			v := float64(q%300) / 100 // 0..3 V
			now := c.Update(v)
			if now && !prev && v < c.HighThreshold() {
				return false
			}
			if !now && prev && v >= c.LowThreshold() {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFig11bChargingTimes(t *testing.T) {
	// Anchors from Fig. 11(b): the best tag (20 V amplified) charges
	// 0 -> 2.3 V in ~4.5 s, the weakest (2.70 V) in ~56 s. Our model's
	// shape must land in the same bands.
	h := NewHarvester(8)
	von := h.Multiplier.Diode.EffectiveDrop()

	fast, err := h.ChargingTime(20.0/16+von, 0, 2.3)
	if err != nil {
		t.Fatal(err)
	}
	if fast < 3.0 || fast > 6.0 {
		t.Errorf("fast tag charge = %.1f s, want 3-6 (paper 4.5)", fast)
	}
	slow, err := h.ChargingTime(2.70/16+von, 0, 2.3)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 40 || slow > 85 {
		t.Errorf("slow tag charge = %.1f s, want 40-85 (paper 56.2)", slow)
	}
	if slow/fast < 10 {
		t.Errorf("charge-time spread %.1fx too small (paper ~12.5x)", slow/fast)
	}

	// Net charging power (paper: 587.8 uW and 47.1 uW).
	pFast := h.NetChargingPower(0, 2.3, fast) * 1e6
	pSlow := h.NetChargingPower(0, 2.3, slow) * 1e6
	if pFast < 400 || pFast > 800 {
		t.Errorf("fast net power = %.1f uW, want 400-800 (paper 587.8)", pFast)
	}
	if pSlow < 30 || pSlow > 70 {
		t.Errorf("slow net power = %.1f uW, want 30-70 (paper 47.1)", pSlow)
	}
}

func TestChargingMonotoneInVoltage(t *testing.T) {
	h := NewHarvester(8)
	prev := math.Inf(1)
	for vdd := 3.0; vdd <= 20; vdd += 0.5 {
		vp := vdd/16 + h.Multiplier.Diode.EffectiveDrop()
		tm, err := h.ChargingTime(vp, 0, 2.3)
		if err != nil {
			t.Fatalf("vdd=%v: %v", vdd, err)
		}
		if tm >= prev {
			t.Fatalf("charging time not decreasing at vdd=%v", vdd)
		}
		prev = tm
	}
}

func TestRechargeFromLTH(t *testing.T) {
	// Appendix B: resuming from LTH (1.95 V) takes only ~15% of the
	// full charge; the paper quotes 15.2% for the ALOHA model.
	h := NewHarvester(8)
	von := h.Multiplier.Diode.EffectiveDrop()
	vp := 20.0/16 + von
	full, err := h.ChargingTime(vp, 0, 2.3)
	if err != nil {
		t.Fatal(err)
	}
	re, err := h.ChargingTime(vp, 1.95, 2.3)
	if err != nil {
		t.Fatal(err)
	}
	frac := re / full
	if frac < 0.10 || frac > 0.25 {
		t.Errorf("recharge fraction = %.3f, want ~0.152", frac)
	}
	// The paper's footnote: re-activation (typically) within 10 s.
	if re > 10 {
		t.Errorf("fast tag re-activation %.1f s, want < 10", re)
	}
}

func TestChargingNeverReachesAsymptote(t *testing.T) {
	h := NewHarvester(8)
	von := h.Multiplier.Diode.EffectiveDrop()
	// Vdd exactly at 2.3 V cannot cross it.
	if _, err := h.ChargingTime(2.3/16+von, 0, 2.3); err == nil {
		t.Error("expected ErrNeverCharges at asymptote")
	}
	// Tiny input: pump doesn't even start.
	if _, err := h.ChargingTime(0.05, 0, 2.3); err == nil {
		t.Error("expected ErrNeverCharges below diode drop")
	}
	// Degenerate request.
	if tm, err := h.ChargingTime(1.0, 2.3, 2.3); err != nil || tm != 0 {
		t.Errorf("empty interval: %v, %v", tm, err)
	}
}

func TestHarvesterIntegrate(t *testing.T) {
	h := NewHarvester(8)
	von := h.Multiplier.Diode.EffectiveDrop()
	vp := 20.0/16 + von

	// Charge to activation.
	mcuOn := false
	var v float64
	for i := 0; i < 100000 && !mcuOn; i++ {
		v, mcuOn = h.Integrate(vp, 0, 1e-3)
	}
	if !mcuOn {
		t.Fatal("tag never activated")
	}
	if v < 2.28 {
		t.Errorf("activation voltage %v below HTH", v)
	}

	// A heavy load (1 mW strain ADC burst) drags the voltage down and
	// eventually trips the cutoff.
	for i := 0; i < 500000 && mcuOn; i++ {
		v, mcuOn = h.Integrate(0, 1e-3, 1e-3) // carrier off, big load
	}
	if mcuOn {
		t.Fatal("cutoff never tripped under overload")
	}
	if v > 1.96 {
		t.Errorf("cutoff tripped at %v, want ~LTH", v)
	}
	// With the carrier back and no load it re-activates from LTH.
	mcuOn = false
	steps := 0
	for ; steps < 10_000_000 && !mcuOn; steps++ {
		_, mcuOn = h.Integrate(vp, 0, 1e-3)
	}
	if !mcuOn {
		t.Fatal("tag never re-activated")
	}
	if secs := float64(steps) * 1e-3; secs > 2.0 {
		t.Errorf("re-activation from LTH took %.2f s, want < 2 (fast tag)", secs)
	}
}

func TestHarvesterSustainedOperation(t *testing.T) {
	// The paper's headline claim: with the interrupt-driven design the
	// RX-mode draw (24.8 uW) stays below even weak tags' charging
	// power, so an activated tag can run forever. Verify a mid-range
	// tag (Vdd ~7 V) holds voltage under a 24.8 uW continuous load.
	h := NewHarvester(8)
	von := h.Multiplier.Diode.EffectiveDrop()
	vp := 7.0/16 + von
	var on bool
	for i := 0; i < 60000; i++ {
		_, on = h.Integrate(vp, 0, 1e-3)
		if on {
			break
		}
	}
	if !on {
		t.Fatal("tag never activated")
	}
	for i := 0; i < 120000; i++ { // two minutes under RX load
		_, on = h.Integrate(vp, 24.8e-6, 1e-3)
		if !on {
			t.Fatalf("tag died under RX load after %.1f s", float64(i)*1e-3)
		}
	}
}

func TestNetChargingPowerArithmetic(t *testing.T) {
	h := NewHarvester(8)
	// The paper's definition: 1/2 C V^2 / t for 0 -> 2.3 V in 4.5 s is
	// 587.8 uW with C = 1 mF.
	p := h.NetChargingPower(0, 2.3, 4.5) * 1e6
	if math.Abs(p-587.8) > 1.0 {
		t.Errorf("net power = %.1f uW, want 587.8", p)
	}
	p = h.NetChargingPower(0, 2.3, 56.2) * 1e6
	if math.Abs(p-47.1) > 0.5 {
		t.Errorf("net power = %.1f uW, want 47.1", p)
	}
	if h.NetChargingPower(0, 2.3, 0) != 0 {
		t.Error("zero elapsed must return 0")
	}
}

// TestSupercapWithdrawExactBalance is the regression test for the
// brownout-boundary bug: withdrawing exactly the stored energy is not a
// brownout — it must succeed and leave the capacitor at precisely 0 V.
func TestSupercapWithdrawExactBalance(t *testing.T) {
	s := NewSupercap()
	s.SetVolts(2.0)
	// Constructing the demand from EnergyJoules() makes p*dt bitwise
	// equal to the stored energy, hitting the e == 0 boundary exactly.
	e := s.EnergyJoules()
	if !s.Withdraw(e, 1.0) {
		t.Fatal("exact-balance withdraw reported brownout")
	}
	if s.Volts() != 0 {
		t.Fatalf("volts after exact-balance withdraw = %v, want 0", s.Volts())
	}
	// One joule-epsilon more must still brown out.
	s.SetVolts(2.0)
	if s.Withdraw(math.Nextafter(e, 2*e), 1.0) {
		t.Fatal("over-demand withdraw succeeded")
	}
	if s.Volts() != 0 {
		t.Fatal("failed withdraw should leave cap empty")
	}
}

// TestEnergyTraceEvents checks that brownouts and cutoff transitions
// emit the observability events with the wired tag identity and clock.
func TestEnergyTraceEvents(t *testing.T) {
	mem := obs.NewMemorySink()
	tr := obs.New(mem)
	now := 0.0
	clock := func() float64 { return now }

	s := NewSupercap()
	s.Trace, s.TraceTID, s.Now = tr, 7, clock
	s.SetVolts(1.0)
	now = 2.5
	if s.Withdraw(1.0, 1.0) {
		t.Fatal("over-demand withdraw succeeded")
	}

	c := NewCutoff()
	c.Trace, c.TraceTID, c.Now = tr, 7, clock
	now = 3.0
	c.Update(2.4) // above HTH: switch on
	c.Update(2.0) // hysteresis band: no transition
	now = 4.0
	c.Update(1.9) // below LTH: switch off

	evs := mem.Events()
	browns := obs.OfKind(evs, obs.KindBrownout)
	if len(browns) != 1 || browns[0].TID != 7 || browns[0].T != 2.5 {
		t.Fatalf("brownout events wrong: %+v", browns)
	}
	ons := obs.OfKind(evs, obs.KindCutoffOn)
	offs := obs.OfKind(evs, obs.KindCutoffOff)
	if len(ons) != 1 || ons[0].T != 3.0 || ons[0].Value != 2.4 {
		t.Fatalf("cutoff-on events wrong: %+v", ons)
	}
	if len(offs) != 1 || offs[0].T != 4.0 || offs[0].Value != 1.9 {
		t.Fatalf("cutoff-off events wrong: %+v", offs)
	}
}
