package energy

// Multiplier is an N-stage voltage multiplier (Dickson charge pump,
// Fig. 4): cascaded voltage doublers that amplify the rectified PZT
// output. The open-circuit output follows the paper's formula
//
//	Vdd = 2N (Vp - Von)
//
// where Vp is the PZT peak voltage and Von the per-diode drop. The pump
// is not a free lunch: its output impedance grows linearly with the
// stage count (Rout = N / (f * Cstage)), which is the "inefficiency in
// energy conversion" of Challenge 2 — more stages reach the activation
// threshold sooner but charge more slowly.
type Multiplier struct {
	Stages int
	Diode  Diode
	// StageFarads is the per-stage pump capacitance.
	StageFarads float64
	// PumpHz is the switching frequency — the 90 kHz carrier itself.
	PumpHz float64
}

// NewMultiplier returns the paper's default pump: 8 stages (16x) of
// CDBU0130L Schottky doublers clocked by the 90 kHz carrier.
func NewMultiplier(stages int) *Multiplier {
	return &Multiplier{
		Stages:      stages,
		Diode:       Schottky(),
		StageFarads: 2.7e-9,
		PumpHz:      90_000,
	}
}

// OpenCircuitVoltage returns the no-load output voltage for PZT peak
// input vpVolts. Inputs at or below the diode drop produce nothing: the pump
// cannot start.
func (m *Multiplier) OpenCircuitVoltage(vpVolts float64) float64 {
	von := m.Diode.EffectiveDrop()
	if vpVolts <= von {
		return 0
	}
	return 2 * float64(m.Stages) * (vpVolts - von)
}

// AmplificationRatio is the ideal voltage gain 2N.
func (m *Multiplier) AmplificationRatio() float64 { return 2 * float64(m.Stages) }

// OutputImpedance returns the pump's effective source resistance in
// ohms: Rout = N / (f * C). This is what limits charging current into
// the supercapacitor.
func (m *Multiplier) OutputImpedance() float64 {
	if m.PumpHz <= 0 || m.StageFarads <= 0 {
		return 0
	}
	return float64(m.Stages) / (m.PumpHz * m.StageFarads)
}
