package energy

import "repro/internal/obs"

// Cutoff is the low-voltage cutoff circuit of Appendix A: a hysteresis
// comparator that connects the supercapacitor to the MCU only when
// enough energy is banked. Power flows to the MCU once the capacitor
// reaches the high threshold (HTH) and is cut when it sags below the
// low threshold (LTH), so the tag resumes from LTH rather than from
// zero — the key to the fast (<10 s) re-activation the paper reports.
//
// The thresholds derive from the resistor network of Fig. 18:
//
//	VHTH = VREF * (R1Ohms+R2Ohms+R3Ohms) / R3Ohms
//	VLTH = VREF * (R1Ohms+R2Ohms+R3Ohms) / (R2Ohms+R3Ohms)
//
// with VREF = 1.24 V, R1Ohms = 680k, R2Ohms = 180k, R3Ohms = 1M, giving
// HTH = 2.31 V and LTH = 1.95 V, while keeping the circuit's own
// leakage below 1 uA.
type Cutoff struct {
	VRefVolts              float64
	R1Ohms, R2Ohms, R3Ohms float64
	// QuiescentAmps is the circuit's own standby draw.
	QuiescentAmps float64

	// Trace, when set, receives obs.KindCutoffOn / obs.KindCutoffOff
	// events on hysteresis transitions. TraceTID identifies the owning
	// tag and Now supplies the simulated time in seconds (both
	// optional).
	Trace    *obs.Tracer
	TraceTID int
	Now      func() float64

	on bool
}

// NewCutoff returns the paper's cutoff circuit.
func NewCutoff() *Cutoff {
	return &Cutoff{
		VRefVolts:     1.24,
		R1Ohms:        680e3,
		R2Ohms:        180e3,
		R3Ohms:        1e6,
		QuiescentAmps: 0.9e-6,
	}
}

// HighThreshold returns VHTH.
func (c *Cutoff) HighThreshold() float64 {
	return c.VRefVolts * (c.R1Ohms + c.R2Ohms + c.R3Ohms) / c.R3Ohms
}

// LowThreshold returns VLTH.
func (c *Cutoff) LowThreshold() float64 {
	return c.VRefVolts * (c.R1Ohms + c.R2Ohms + c.R3Ohms) / (c.R2Ohms + c.R3Ohms)
}

// PoweringMCU reports whether the switch currently passes power.
func (c *Cutoff) PoweringMCU() bool { return c.on }

// Update advances the hysteresis state machine with the present
// capacitor voltage and returns the (possibly new) switch state. The
// two-threshold design means the answer depends on history: between
// LTH and HTH the switch holds its previous state.
func (c *Cutoff) Update(capVolts float64) bool {
	prev := c.on
	switch {
	case capVolts >= c.HighThreshold():
		c.on = true
	case capVolts < c.LowThreshold():
		c.on = false
	}
	if c.on != prev && c.Trace.Enabled() {
		kind := obs.KindCutoffOff
		if c.on {
			kind = obs.KindCutoffOn
		}
		var t float64
		if c.Now != nil {
			t = c.Now()
		}
		c.Trace.Emit(obs.Event{Kind: kind, T: t, TID: c.TraceTID, Value: capVolts})
	}
	return c.on
}

// Reset forces the switch open (used when a tag is fully drained).
func (c *Cutoff) Reset() { c.on = false }
