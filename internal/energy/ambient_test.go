package energy

import "testing"

// Tests for the ambient-vibration harvesting extension (the paper's
// Sec. 2.2 future-work path).

func TestAmbientSpeedsCharging(t *testing.T) {
	von := Schottky().EffectiveDrop()
	vp := 2.70/16 + von // the weakest tag's input
	base := NewHarvester(8)
	tBase, err := base.ChargingTime(vp, 0, 2.3)
	if err != nil {
		t.Fatal(err)
	}
	aug := NewHarvester(8)
	aug.AmbientWatts = 25e-6
	tAug, err := aug.ChargingTime(vp, 0, 2.3)
	if err != nil {
		t.Fatal(err)
	}
	if tAug >= tBase {
		t.Errorf("ambient power did not speed charging: %v vs %v", tAug, tBase)
	}
	if tAug > 0.8*tBase {
		t.Errorf("25 uW ambient only saved %.1f%%", 100*(1-tAug/tBase))
	}
}

func TestAmbientAloneCanCharge(t *testing.T) {
	// With the reader silent (vp=0), a big enough ambient source still
	// lifts the tag to activation.
	h := NewHarvester(8)
	h.AmbientWatts = 50e-6
	tm, err := h.ChargingTime(0, 0, 2.3)
	if err != nil {
		t.Fatalf("ambient-only charge failed: %v", err)
	}
	// Energy arithmetic: 2.645 mJ at ~50 uW minus leakage -> ~1 min.
	if tm < 30 || tm > 300 {
		t.Errorf("ambient-only charge time %v s implausible", tm)
	}
}

func TestAmbientTooWeakStillFails(t *testing.T) {
	// An ambient trickle below the leakage floor cannot reach the
	// threshold.
	h := NewHarvester(8)
	h.AmbientWatts = 0.5e-6
	if _, err := h.ChargingTime(0, 0, 2.3); err == nil {
		t.Error("sub-leakage ambient source charged the tag")
	}
}

func TestAmbientCurrentModel(t *testing.T) {
	h := NewHarvester(8)
	if h.ambientCurrent(1.0) != 0 {
		t.Error("zero ambient should contribute nothing")
	}
	h.AmbientWatts = 10e-6
	// Constant power: current halves when voltage doubles.
	i1, i2 := h.ambientCurrent(1.0), h.ambientCurrent(2.0)
	if i2 >= i1 || i1 != 2*i2 {
		t.Errorf("constant-power model broken: %v vs %v", i1, i2)
	}
	// Below 50 mV the source is current-limited (no singularity).
	if h.ambientCurrent(0.001) != h.ambientCurrent(0.05) {
		t.Error("low-voltage current limit missing")
	}
}

func TestAmbientIntegratePath(t *testing.T) {
	h := NewHarvester(8)
	h.AmbientWatts = 50e-6
	var on bool
	steps := 0
	for ; steps < 10_000_000 && !on; steps++ {
		_, on = h.Integrate(0, 0, 1e-2)
	}
	if !on {
		t.Fatal("Integrate never activated on ambient power")
	}
}

func TestShuntClampsStorage(t *testing.T) {
	h := NewHarvester(8)
	von := Schottky().EffectiveDrop()
	vp := 20.0/16 + von // strongest tag: pump would push far past HTH
	for i := 0; i < 200_000; i++ {
		h.Integrate(vp, 0, 1e-2)
	}
	if v := h.Cap.Volts(); v > h.ShuntVolts+1e-9 {
		t.Errorf("storage at %v V escaped the %v V shunt", v, h.ShuntVolts)
	}
	if v := h.Cap.Volts(); v < h.Cutoff.HighThreshold() {
		t.Errorf("storage at %v V never reached HTH", v)
	}
}
