package energy

import (
	"math"
	"testing"

	"repro/internal/obs"
)

// Mid-slot brownout: a withdrawal that exceeds the stored energy while
// the tag is actively responding must zero the capacitor, report
// failure, emit the brownout trace event with the owning tag and
// demanded energy, and open the cutoff.
func TestBrownoutDuringInProgressSlot(t *testing.T) {
	sink := obs.NewMemorySink()
	tr := obs.New(sink)

	cap_ := NewSupercap()
	cap_.Trace = tr
	cap_.TraceTID = 7
	now := 123.5
	cap_.Now = func() float64 { return now }

	cut := NewCutoff()
	cut.Trace = tr
	cut.TraceTID = 7
	cut.Now = cap_.Now

	// Charged above HTH, MCU powered, mid-response.
	cap_.SetVolts(cut.HighThreshold() + 0.1)
	if !cut.Update(cap_.Volts()) {
		t.Fatal("cutoff not on above HTH")
	}

	// The response draws far more than the bank holds (forced drain).
	demand := cap_.EnergyJoules()*2 + 1e-6
	if cap_.Withdraw(demand, 1) {
		t.Fatal("over-budget withdrawal reported success")
	}
	if cap_.Volts() != 0 {
		t.Fatalf("capacitor at %v V after brownout, want 0", cap_.Volts())
	}
	if cut.Update(cap_.Volts()) {
		t.Fatal("cutoff still on at 0 V")
	}

	events := sink.Events()
	bo := obs.OfKind(events, obs.KindBrownout)
	if len(bo) != 1 {
		t.Fatalf("brownout events = %d, want 1", len(bo))
	}
	if bo[0].TID != 7 || bo[0].T != now {
		t.Errorf("brownout event %+v, want tid=7 t=%v", bo[0], now)
	}
	if math.Abs(bo[0].Value-demand) > 1e-15 {
		t.Errorf("brownout demand %v, want %v", bo[0].Value, demand)
	}
	off := obs.OfKind(events, obs.KindCutoffOff)
	if len(off) != 1 || off[0].TID != 7 {
		t.Fatalf("cutoff_off events = %+v, want one for tid 7", off)
	}

	// Partial withdrawal landing between 0 and LTH: succeeds (the energy
	// was there), no brownout, but the comparator opens.
	cap_.SetVolts(cut.HighThreshold())
	cut.Update(cap_.Volts())
	e := cap_.EnergyJoules()
	target := 0.5 * cap_.Farads * 1.0 // energy at 1.0 V, below LTH
	if !cap_.Withdraw(e-target, 1) {
		t.Fatal("partial withdrawal failed")
	}
	if v := cap_.Volts(); math.Abs(v-1.0) > 1e-9 {
		t.Fatalf("voltage after partial withdrawal %v, want 1.0", v)
	}
	if cut.Update(cap_.Volts()) {
		t.Fatal("cutoff on below LTH")
	}
	if got := len(obs.OfKind(sink.Events(), obs.KindBrownout)); got != 1 {
		t.Errorf("brownout events after partial withdrawal = %d, want still 1", got)
	}
}

// Re-activation hysteresis at the exact thresholds: the comparator
// closes at capVolts >= HTH (the boundary itself powers the MCU), holds
// state across the dead band, and opens only strictly below LTH —
// exactly LTH keeps the MCU alive, which is what lets a tag resume from
// LTH instead of recharging from scratch.
func TestReactivationHysteresisExactThresholds(t *testing.T) {
	sink := obs.NewMemorySink()
	tr := obs.New(sink)
	cut := NewCutoff()
	cut.Trace = tr
	cut.TraceTID = 3

	hth, lth := cut.HighThreshold(), cut.LowThreshold()
	if hth <= lth {
		t.Fatalf("HTH %v <= LTH %v", hth, lth)
	}

	// Climbing: off through the whole dead band, on exactly at HTH.
	if cut.Update(lth) {
		t.Fatal("on at LTH while charging from below")
	}
	if cut.Update(hth - 1e-12) {
		t.Fatal("on just below HTH")
	}
	if !cut.Update(hth) {
		t.Fatal("off at exactly HTH")
	}
	on := obs.OfKind(sink.Events(), obs.KindCutoffOn)
	if len(on) != 1 || on[0].TID != 3 || on[0].Value != hth {
		t.Fatalf("cutoff_on events = %+v, want one at HTH for tid 3", on)
	}

	// Sagging: exactly LTH holds the switch closed.
	if !cut.Update(lth) {
		t.Fatal("off at exactly LTH while discharging")
	}
	if got := len(obs.OfKind(sink.Events(), obs.KindCutoffOff)); got != 0 {
		t.Fatalf("cutoff_off fired at exactly LTH (%d events)", got)
	}
	// Just below LTH opens it.
	if cut.Update(math.Nextafter(lth, 0)) {
		t.Fatal("on just below LTH")
	}
	off := obs.OfKind(sink.Events(), obs.KindCutoffOff)
	if len(off) != 1 || off[0].TID != 3 {
		t.Fatalf("cutoff_off events = %+v, want exactly one for tid 3", off)
	}

	// Second climb re-arms: HTH again closes and emits a second on-event.
	if !cut.Update(hth) {
		t.Fatal("off at HTH on second climb")
	}
	if got := len(obs.OfKind(sink.Events(), obs.KindCutoffOn)); got != 2 {
		t.Errorf("cutoff_on events = %d, want 2", got)
	}
}
