package energy

import (
	"errors"
	"math"
)

// Energy budgeting (Sec. 6.2): the paper's sustainability argument is
// that the per-slot energy drawn in a duty-cycled schedule must stay
// under the net charging power. Budget makes that arithmetic a public
// planning tool: given a tag's measured powers and its position's
// charging power, it answers "what is the fastest reporting period this
// tag can sustain forever?".
type Budget struct {
	// ChargingWatts is the position's net charging power (Fig. 11b).
	ChargingWatts float64
	// RXWatts, TXWatts, IdleWatts are the Table 2 mode powers.
	RXWatts, TXWatts, IdleWatts float64
	// SlotSeconds is the slot length.
	SlotSeconds float64
	// RXSeconds is the beacon listening time per slot.
	RXSeconds float64
	// TXSeconds is the uplink burst time in a transmitting slot.
	TXSeconds float64
	// SensorJoules is the per-transmission sensing cost (ADC burst).
	SensorJoules float64
}

// DefaultBudget returns the paper's operating point for a given
// charging power.
func DefaultBudget(chargingWatts float64) Budget {
	return Budget{
		ChargingWatts: chargingWatts,
		RXWatts:       24.8e-6,
		TXWatts:       51.0e-6,
		IdleWatts:     7.6e-6,
		SlotSeconds:   1.0,
		RXSeconds:     0.1,   // ~100 ms beacon
		TXSeconds:     0.171, // ~171 ms UL frame at 375 bps
	}
}

// SlotJoules returns the energy one slot costs when the tag transmits
// (tx=true) or stays silent.
func (b Budget) SlotJoules(tx bool) float64 {
	idle := b.SlotSeconds - b.RXSeconds
	e := b.RXWatts * b.RXSeconds
	if tx {
		idle -= b.TXSeconds
		e += b.TXWatts*b.TXSeconds + b.SensorJoules
	}
	if idle < 0 {
		idle = 0
	}
	return e + b.IdleWatts*idle
}

// AveragePower returns the long-run drain of a period-p schedule
// (transmit every p-th slot).
func (b Budget) AveragePower(period int) float64 {
	if period < 1 {
		period = 1
	}
	perCycle := b.SlotJoules(true) + float64(period-1)*b.SlotJoules(false)
	return perCycle / (float64(period) * b.SlotSeconds)
}

// Sustainable reports whether a period-p schedule drains no more than
// the charging supply.
func (b Budget) Sustainable(period int) bool {
	return b.AveragePower(period) <= b.ChargingWatts
}

// ErrNeverSustainable is returned when even an infinite period (pure
// listening) out-drains the harvest: the tag cannot stay always-on.
var ErrNeverSustainable = errors.New("energy: standby drain exceeds charging power")

// MinSustainablePeriod returns the smallest power-of-two period the
// budget can sustain indefinitely.
func (b Budget) MinSustainablePeriod() (int, error) {
	// The limit of AveragePower as period -> inf is the silent-slot
	// power; if even that exceeds supply, no period works.
	if b.SlotJoules(false)/b.SlotSeconds > b.ChargingWatts {
		return 0, ErrNeverSustainable
	}
	for k := 0; k <= 20; k++ {
		p := 1 << k
		if b.Sustainable(p) {
			return p, nil
		}
	}
	return 0, ErrNeverSustainable
}

// HeadroomWatts is the margin between supply and drain at period p
// (negative when unsustainable).
func (b Budget) HeadroomWatts(period int) float64 {
	return b.ChargingWatts - b.AveragePower(period)
}

// DutyCycleBound returns the maximum fraction of slots the tag may
// transmit while staying sustainable, from the linear power model.
func (b Budget) DutyCycleBound() float64 {
	silent := b.SlotJoules(false) / b.SlotSeconds
	active := b.SlotJoules(true) / b.SlotSeconds
	if active <= silent {
		return 1
	}
	d := (b.ChargingWatts - silent) / (active - silent)
	return math.Max(0, math.Min(1, d))
}
