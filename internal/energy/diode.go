// Package energy implements the tag's power subsystem (Sec. 3 and
// Appendix A of the paper): the multi-stage Schottky voltage multiplier
// that amplifies the tiny PZT output above the MCU's operating voltage,
// the supercapacitor energy store, the low-voltage cutoff circuit with
// hysteresis, and a charging integrator that ties them together. All
// the published circuit numbers are reproduced: 8 stages, CDBU0130L
// Schottky diodes, a 1 mF tantalum capacitor, HTH = 2.3 V and
// LTH = 1.95 V derived from the Appendix A resistor network.
package energy

import "math"

// Diode models a rectifier diode's forward voltage drop as a function
// of forward current, using the logarithmic Shockley form
// Vf(I) = SlopeVolts * ln(1 + I/SatAmps). The drop is what each multiplier stage
// loses, so low-drop Schottky diodes are essential at the sub-volt
// input levels harvested from the BiW.
type Diode struct {
	Name string
	// SlopeVolts is the slope factor n*VT (volts).
	SlopeVolts float64
	// SatAmps is the saturation current (amperes).
	SatAmps float64
}

// Schottky returns the CDBU0130L low-drop Schottky diode used by the
// paper: forward drop below 0.15 V at the pump's operating current and
// under 0.2 V up to 1 mA.
func Schottky() Diode {
	return Diode{Name: "CDBU0130L", SlopeVolts: 0.0375, SatAmps: 7.5e-6}
}

// Silicon returns a conventional silicon diode (~0.7 V drop), used by
// the ablation benchmarks to show why a Schottky pump is mandatory.
func Silicon() Diode {
	return Diode{Name: "1N4148", SlopeVolts: 0.052, SatAmps: 1.0e-9}
}

// ForwardDrop returns the forward voltage (V) at forward current amps (A).
// Non-positive currents return zero drop.
func (d Diode) ForwardDrop(amps float64) float64 {
	if amps <= 0 {
		return 0
	}
	return d.SlopeVolts * math.Log(1+amps/d.SatAmps)
}

// PumpOperatingCurrent is the internal peak pulse current of the charge
// pump at which the effective per-diode drop is evaluated.
const PumpOperatingCurrent = 400e-6 // 400 uA

// EffectiveDrop is the forward drop at the pump operating current — the
// Von of the paper's Vdd = 2N(Vp - Von) formula.
func (d Diode) EffectiveDrop() float64 { return d.ForwardDrop(PumpOperatingCurrent) }
