package energy

import (
	"errors"
	"math"
	"testing"
)

func TestSlotJoules(t *testing.T) {
	b := DefaultBudget(100e-6)
	silent := b.SlotJoules(false)
	active := b.SlotJoules(true)
	if active <= silent {
		t.Fatal("transmitting slot must cost more")
	}
	// Silent slot: 100 ms RX + 900 ms idle.
	want := 24.8e-6*0.1 + 7.6e-6*0.9
	if math.Abs(silent-want) > 1e-9 {
		t.Errorf("silent slot = %v, want %v", silent, want)
	}
}

func TestAveragePowerMonotone(t *testing.T) {
	b := DefaultBudget(100e-6)
	prev := math.Inf(1)
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		avg := b.AveragePower(p)
		if avg >= prev {
			t.Fatalf("average power not decreasing at period %d", p)
		}
		prev = avg
	}
	if b.AveragePower(0) != b.AveragePower(1) {
		t.Error("period < 1 should clamp to 1")
	}
}

// TestPaperSustainabilityClaim verifies Sec. 6.2's conclusion: even the
// weakest tag (47.1 uW charging) sustains duty-cycled operation, since
// the silent-slot drain (~9.3 uW) and even per-slot transmission
// (~16 uW average at period 1) stay below supply.
func TestPaperSustainabilityClaim(t *testing.T) {
	weak := DefaultBudget(47.1e-6)
	p, err := weak.MinSustainablePeriod()
	if err != nil {
		t.Fatalf("weakest tag unsustainable: %v", err)
	}
	if p != 1 {
		t.Errorf("weakest tag min period = %d; the paper's budget allows every-slot TX", p)
	}
	if weak.HeadroomWatts(4) <= 0 {
		t.Error("no headroom at period 4")
	}
}

func TestSensorCostChangesThePicture(t *testing.T) {
	// The 1 mW / 2 ms ADC burst (2 uJ) is why tags sample at most once
	// per slot: with a heavy multi-sample payload the weakest positions
	// must slow down.
	weak := DefaultBudget(12e-6) // hypothetical far-off position
	weak.SensorJoules = 20e-6    // ten conversions per packet
	p, err := weak.MinSustainablePeriod()
	if err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	if p < 4 {
		t.Errorf("heavy sensing should force a longer period, got %d", p)
	}
	// The same tag with single-sample payloads can go faster.
	weak.SensorJoules = 2e-6
	p2, err := weak.MinSustainablePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if p2 > p {
		t.Errorf("lighter sensing must not need a longer period (%d vs %d)", p2, p)
	}
}

func TestNeverSustainable(t *testing.T) {
	b := DefaultBudget(5e-6) // below the ~9.3 uW standby floor
	if _, err := b.MinSustainablePeriod(); !errors.Is(err, ErrNeverSustainable) {
		t.Errorf("expected ErrNeverSustainable, got %v", err)
	}
	if b.Sustainable(1 << 20) {
		t.Error("no period should be sustainable below the standby floor")
	}
}

func TestDutyCycleBound(t *testing.T) {
	b := DefaultBudget(47.1e-6)
	d := b.DutyCycleBound()
	if d <= 0 || d > 1 {
		t.Fatalf("duty bound %v out of range", d)
	}
	// Consistency: a period at 1/d is sustainable, one much faster than
	// 1/d is not (when d < 1).
	if d < 1 {
		pOK := int(math.Ceil(1 / d))
		if !b.Sustainable(pOK + 1) {
			t.Errorf("period %d should be sustainable at duty bound %v", pOK+1, d)
		}
	}
	// Ample supply: bound saturates at 1.
	rich := DefaultBudget(1e-3)
	if rich.DutyCycleBound() != 1 {
		t.Error("rich supply should allow 100% duty")
	}
}
