package energy

import (
	"errors"
	"math"
)

// Harvester couples the PZT input to the supercapacitor through the
// multiplier and tracks the cutoff circuit: the complete energy path of
// Fig. 3. Integrate() advances the electrical state over a time step
// given the PZT peak voltage and the MCU load, using the first-order
// model
//
//	C dV/dt = (Vdd - V)/Rout - Iload - Ileak
//
// where Vdd and Rout come from the multiplier and Ileak bundles the
// capacitor's self-discharge, the cutoff circuit's quiescent draw and
// the DL demodulation front end (all present even while the MCU is
// unpowered, exactly as in the paper's Fig. 11(b) measurement).
type Harvester struct {
	Multiplier *Multiplier
	Cap        *Supercap
	Cutoff     *Cutoff
	// FrontEndAmps is the always-on draw of the envelope detector and
	// comparator used for DL demodulation.
	FrontEndAmps float64
	// AmbientWatts is auxiliary harvested power from the vehicle's own
	// sub-100 Hz vibrations through a dedicated low-frequency
	// transducer — the paper's Sec. 2.2 future-work enhancement. Zero
	// in the paper's deployed configuration (parked BiW in a lab).
	AmbientWatts float64
	// ShuntVolts clamps the storage voltage: the daughterboard feeds
	// the MCU 1.95-2.3 V straight from the capacitor (Sec. 6.1), so a
	// shunt keeps the cap just above HTH instead of letting the pump
	// drive it toward the 6 V rating (which would destroy the MCU).
	ShuntVolts float64
}

// NewHarvester assembles the paper's default energy subsystem with the
// given multiplier stage count.
func NewHarvester(stages int) *Harvester {
	return &Harvester{
		Multiplier:   NewMultiplier(stages),
		Cap:          NewSupercap(),
		Cutoff:       NewCutoff(),
		FrontEndAmps: 0.6e-6,
		ShuntVolts:   2.45,
	}
}

// Integrate advances the energy state by dtSeconds seconds with PZT peak
// input vpVolts and an MCU load drawing loadWatts (0 when the cutoff switch
// is open). It returns the new capacitor voltage and whether the MCU is
// powered after the step.
func (h *Harvester) Integrate(vpVolts, loadWatts, dtSeconds float64) (volts float64, mcuOn bool) {
	if dtSeconds <= 0 {
		return h.Cap.Volts(), h.Cutoff.PoweringMCU()
	}
	vdd := h.Multiplier.OpenCircuitVoltage(vpVolts)
	rout := h.Multiplier.OutputImpedance()
	v := h.Cap.Volts()

	var charge float64
	if rout > 0 && vdd > v {
		charge = (vdd - v) / rout
	}
	charge += h.ambientCurrent(v)
	leak := h.Cap.LeakCurrent() + h.Cutoff.QuiescentAmps + h.FrontEndAmps
	var load float64
	if h.Cutoff.PoweringMCU() && v > 0 {
		load = loadWatts / v
	}
	dv := (charge - leak - load) * dtSeconds / h.Cap.Farads
	nv := v + dv
	if h.ShuntVolts > 0 && nv > h.ShuntVolts {
		nv = h.ShuntVolts // shunt regulator burns the excess harvest
	}
	h.Cap.SetVolts(nv)
	on := h.Cutoff.Update(h.Cap.Volts())
	return h.Cap.Volts(), on
}

// ambientCurrent converts the auxiliary constant-power ambient harvest
// into charging current at capacitor voltage v; below 50 mV the
// rectifier is modeled as a current source to avoid the constant-power
// singularity.
func (h *Harvester) ambientCurrent(v float64) float64 {
	if h.AmbientWatts <= 0 {
		return 0
	}
	if v < 0.05 {
		v = 0.05
	}
	return h.AmbientWatts / v
}

// ErrNeverCharges is returned when the harvested input cannot lift the
// capacitor to the target voltage (the asymptote is below it).
var ErrNeverCharges = errors.New("energy: input too weak to reach target voltage")

// ChargingTime integrates the charge curve from the capacitor voltage
// fromVolts to toVolts under constant PZT input vpVolts with no MCU load,
// and returns the elapsed seconds. It mirrors the Fig. 11(b) measurement
// (charging time from 0 V to the 2.3 V activation threshold with the
// cutoff and demodulation circuits connected).
func (h *Harvester) ChargingTime(vpVolts, fromVolts, toVolts float64) (float64, error) {
	if toVolts <= fromVolts {
		return 0, nil
	}
	vdd := h.Multiplier.OpenCircuitVoltage(vpVolts)
	rout := h.Multiplier.OutputImpedance()
	if vdd <= toVolts && h.AmbientWatts <= 0 {
		// Without auxiliary harvesting the pump's open-circuit voltage
		// is the hard asymptote; with ambient power the loop below
		// detects infeasibility through the net-current sign.
		return 0, ErrNeverCharges
	}
	leakBase := h.Cutoff.QuiescentAmps + h.FrontEndAmps
	// Closed-form integration of C dV/((Vdd-V)/R - Ileak(V)) is messy
	// with the voltage-dependent capacitor leakage, so integrate
	// numerically with an adaptive step that keeps per-step dV small.
	v := fromVolts
	t := 0.0
	const maxTime = 1e5
	for v < toVolts {
		var charge float64
		if rout > 0 && vdd > v {
			// The pump's diodes block reverse flow: it only sources.
			charge = (vdd - v) / rout
		}
		charge += h.ambientCurrent(v)
		leak := leakBase + h.Cap.RatedLeakAmps*v/h.Cap.RatedVolts
		net := charge - leak
		if net <= 0 {
			return 0, ErrNeverCharges
		}
		dv := math.Min(0.002, toVolts-v)
		dtSeconds := dv * h.Cap.Farads / net
		v += dv
		t += dtSeconds
		if t > maxTime {
			return 0, ErrNeverCharges
		}
	}
	return t, nil
}

// NetChargingPower reports the paper's figure of merit for Fig. 11(b):
// the average net power that charging fromVolts to toVolts over
// elapsedSeconds represents, (1/2 C (to^2 - from^2)) / elapsed.
func (h *Harvester) NetChargingPower(fromVolts, toVolts, elapsedSeconds float64) float64 {
	if elapsedSeconds <= 0 {
		return 0
	}
	return 0.5 * h.Cap.Farads * (toVolts*toVolts - fromVolts*fromVolts) / elapsedSeconds
}
