package energy

import (
	"math"

	"repro/internal/obs"
)

// Supercap is the tag's energy store: a 1 mF tantalum capacitor (KEMET
// T491X108K006AT) chosen for its very low leakage (< 0.01*C*V uA at
// rated voltage). Voltage is the single state variable; energy moves in
// and out through Deposit/Withdraw, and Leak models self-discharge.
type Supercap struct {
	// Farads is the capacitance.
	Farads float64
	// RatedVolts is the maximum working voltage.
	RatedVolts float64
	// LeakAmpsAtRated is the DC leakage current at rated voltage; the
	// model scales it linearly with voltage.
	LeakAmpsAtRated float64

	// Trace, when set, receives an obs.KindBrownout event whenever a
	// withdrawal exhausts the capacitor. TraceTID identifies the owning
	// tag and Now supplies the simulated time in seconds (both optional).
	Trace    *obs.Tracer
	TraceTID int
	Now      func() float64

	volts float64
}

// NewSupercap returns the paper's 1 mF / 6 V tantalum capacitor.
func NewSupercap() *Supercap {
	return &Supercap{
		Farads:          1e-3,
		RatedVolts:      6.0,
		LeakAmpsAtRated: 0.25e-6,
	}
}

// Volts returns the current capacitor voltage.
func (s *Supercap) Volts() float64 { return s.volts }

// SetVolts forces the capacitor voltage (clamped to [0, rated]).
func (s *Supercap) SetVolts(v float64) {
	if v < 0 {
		v = 0
	}
	if v > s.RatedVolts {
		v = s.RatedVolts
	}
	s.volts = v
}

// EnergyJoules returns the stored energy 1/2 C V^2.
func (s *Supercap) EnergyJoules() float64 {
	return 0.5 * s.Farads * s.volts * s.volts
}

// Deposit adds charge from a current i (A) flowing for dt (s).
func (s *Supercap) Deposit(i, dt float64) {
	if i <= 0 || dt <= 0 {
		return
	}
	s.SetVolts(s.volts + i*dt/s.Farads)
}

// Withdraw removes the energy consumed by a load drawing power p (W)
// for dt (s). It reports whether the capacitor could supply it; on
// failure (the demand exceeds the stored energy) the voltage is left at
// zero. A withdrawal of exactly the stored energy succeeds and leaves
// the capacitor at 0 V — the boundary is not a brownout.
func (s *Supercap) Withdraw(p, dt float64) bool {
	if p <= 0 || dt <= 0 {
		return true
	}
	e := s.EnergyJoules() - p*dt
	if e < 0 {
		s.volts = 0
		if s.Trace.Enabled() {
			s.Trace.Emit(obs.Event{Kind: obs.KindBrownout, T: s.now(), TID: s.TraceTID, Value: p * dt})
		}
		return false
	}
	s.volts = math.Sqrt(2 * e / s.Farads)
	return true
}

// now resolves the trace timestamp (0 when no clock is wired).
func (s *Supercap) now() float64 {
	if s.Now == nil {
		return 0
	}
	return s.Now()
}

// LeakCurrent returns the leakage current at the present voltage.
func (s *Supercap) LeakCurrent() float64 {
	if s.RatedVolts <= 0 {
		return 0
	}
	return s.LeakAmpsAtRated * s.volts / s.RatedVolts
}

// Leak applies self-discharge over dt seconds.
func (s *Supercap) Leak(dt float64) {
	if dt <= 0 {
		return
	}
	s.SetVolts(s.volts - s.LeakCurrent()*dt/s.Farads)
}
