package energy

import (
	"math"

	"repro/internal/obs"
)

// Supercap is the tag's energy store: a 1 mF tantalum capacitor (KEMET
// T491X108K006AT) chosen for its very low leakage (< 0.01*C*V uA at
// rated voltage). Voltage is the single state variable; energy moves in
// and out through Deposit/Withdraw, and Leak models self-discharge.
type Supercap struct {
	// Farads is the capacitance.
	Farads float64
	// RatedVolts is the maximum working voltage.
	RatedVolts float64
	// RatedLeakAmps is the DC leakage current at rated voltage; the
	// model scales it linearly with voltage.
	RatedLeakAmps float64

	// Trace, when set, receives an obs.KindBrownout event whenever a
	// withdrawal exhausts the capacitor. TraceTID identifies the owning
	// tag and Now supplies the simulated time in seconds (both optional).
	Trace    *obs.Tracer
	TraceTID int
	Now      func() float64

	volts float64
}

// NewSupercap returns the paper's 1 mF / 6 V tantalum capacitor.
func NewSupercap() *Supercap {
	return &Supercap{
		Farads:        1e-3,
		RatedVolts:    6.0,
		RatedLeakAmps: 0.25e-6,
	}
}

// Volts returns the current capacitor voltage.
func (s *Supercap) Volts() float64 { return s.volts }

// SetVolts forces the capacitor voltage (clamped to [0, rated]).
func (s *Supercap) SetVolts(volts float64) {
	if volts < 0 {
		volts = 0
	}
	if volts > s.RatedVolts {
		volts = s.RatedVolts
	}
	s.volts = volts
}

// EnergyJoules returns the stored energy 1/2 C V^2.
func (s *Supercap) EnergyJoules() float64 {
	return 0.5 * s.Farads * s.volts * s.volts
}

// Deposit adds charge from a current amps (A) flowing for dtSeconds (s).
func (s *Supercap) Deposit(amps, dtSeconds float64) {
	if amps <= 0 || dtSeconds <= 0 {
		return
	}
	s.SetVolts(s.volts + amps*dtSeconds/s.Farads)
}

// Withdraw removes the energy consumed by a load drawing power p (W)
// for dtSeconds (s). It reports whether the capacitor could supply it; on
// failure (the demand exceeds the stored energy) the voltage is left at
// zero. A withdrawal of exactly the stored energy succeeds and leaves
// the capacitor at 0 V — the boundary is not a brownout.
func (s *Supercap) Withdraw(watts, dtSeconds float64) bool {
	if watts <= 0 || dtSeconds <= 0 {
		return true
	}
	e := s.EnergyJoules() - watts*dtSeconds
	if e < 0 {
		s.volts = 0
		if s.Trace.Enabled() {
			s.Trace.Emit(obs.Event{Kind: obs.KindBrownout, T: s.now(), TID: s.TraceTID, Value: watts * dtSeconds})
		}
		return false
	}
	s.volts = math.Sqrt(2 * e / s.Farads)
	return true
}

// now resolves the trace timestamp (0 when no clock is wired).
func (s *Supercap) now() float64 {
	if s.Now == nil {
		return 0
	}
	return s.Now()
}

// LeakCurrent returns the leakage current at the present voltage.
func (s *Supercap) LeakCurrent() float64 {
	if s.RatedVolts <= 0 {
		return 0
	}
	return s.RatedLeakAmps * s.volts / s.RatedVolts
}

// Leak applies self-discharge over dtSeconds.
func (s *Supercap) Leak(dtSeconds float64) {
	if dtSeconds <= 0 {
		return
	}
	s.SetVolts(s.volts - s.LeakCurrent()*dtSeconds/s.Farads)
}
