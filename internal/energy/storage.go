package energy

import "math"

// Supercap is the tag's energy store: a 1 mF tantalum capacitor (KEMET
// T491X108K006AT) chosen for its very low leakage (< 0.01*C*V uA at
// rated voltage). Voltage is the single state variable; energy moves in
// and out through Deposit/Withdraw, and Leak models self-discharge.
type Supercap struct {
	// Farads is the capacitance.
	Farads float64
	// RatedVolts is the maximum working voltage.
	RatedVolts float64
	// LeakAmpsAtRated is the DC leakage current at rated voltage; the
	// model scales it linearly with voltage.
	LeakAmpsAtRated float64

	volts float64
}

// NewSupercap returns the paper's 1 mF / 6 V tantalum capacitor.
func NewSupercap() *Supercap {
	return &Supercap{
		Farads:          1e-3,
		RatedVolts:      6.0,
		LeakAmpsAtRated: 0.25e-6,
	}
}

// Volts returns the current capacitor voltage.
func (s *Supercap) Volts() float64 { return s.volts }

// SetVolts forces the capacitor voltage (clamped to [0, rated]).
func (s *Supercap) SetVolts(v float64) {
	if v < 0 {
		v = 0
	}
	if v > s.RatedVolts {
		v = s.RatedVolts
	}
	s.volts = v
}

// EnergyJoules returns the stored energy 1/2 C V^2.
func (s *Supercap) EnergyJoules() float64 {
	return 0.5 * s.Farads * s.volts * s.volts
}

// Deposit adds charge from a current i (A) flowing for dt (s).
func (s *Supercap) Deposit(i, dt float64) {
	if i <= 0 || dt <= 0 {
		return
	}
	s.SetVolts(s.volts + i*dt/s.Farads)
}

// Withdraw removes the energy consumed by a load drawing power p (W)
// for dt (s). It reports whether the capacitor could supply it without
// hitting zero; on failure the voltage is left at zero.
func (s *Supercap) Withdraw(p, dt float64) bool {
	if p <= 0 || dt <= 0 {
		return true
	}
	e := s.EnergyJoules() - p*dt
	if e <= 0 {
		s.volts = 0
		return false
	}
	s.volts = math.Sqrt(2 * e / s.Farads)
	return true
}

// LeakCurrent returns the leakage current at the present voltage.
func (s *Supercap) LeakCurrent() float64 {
	if s.RatedVolts <= 0 {
		return 0
	}
	return s.LeakAmpsAtRated * s.volts / s.RatedVolts
}

// Leak applies self-discharge over dt seconds.
func (s *Supercap) Leak(dt float64) {
	if dt <= 0 {
		return
	}
	s.SetVolts(s.volts - s.LeakCurrent()*dt/s.Farads)
}
