package fleetd

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleetd/api"
)

// resumeSpec is slow enough (single worker, ~12 shards of 100k slots)
// that a drain reliably lands mid-sweep, and deterministic so the
// resumed fingerprint has a pinned reference.
const resumeSpec = `{"seed": 77, "workers": 1, "vehicles": [
	{"name": "long", "engine": "slots", "pattern": "c2", "slots": 100000, "replicate": 12}
]}`

// TestResumeAfterDrain is the kill/restart determinism leg: drain a
// daemon mid-sweep, restart over the same checkpoint directory, and
// require (a) completed shards are not recomputed and (b) the resumed
// report fingerprint equals an uninterrupted batch run's.
func TestResumeAfterDrain(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	want := batchFingerprint(t, resumeSpec)

	// First daemon: submit, let a few shards finish, then drain.
	s1, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	hs1 := httptest.NewServer(s1.Handler())
	c1 := api.NewClient(hs1.URL)
	sub, err := c1.Submit(ctx, []byte(resumeSpec))
	if err != nil {
		t.Fatal(err)
	}
	progressed := false
	for try := 0; try < 3000 && !progressed; try++ { // 3000 × 10ms = 30s cap
		st, err := c1.Status(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.StateDone {
			t.Fatal("sweep finished before the drain; slow the resume spec down")
		}
		if st.State == api.StateRunning && st.Done >= 2 {
			progressed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !progressed {
		t.Fatal("no shard progress within the polling budget")
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	hs1.Close()

	// The checkpoint must exist and carry completed shard outcomes.
	recs, report := mustStore(t, dir).Load()
	if !report.Clean() {
		t.Fatalf("checkpoint recovery not clean: %s", report)
	}
	if len(recs) != 1 || recs[0].ID != sub.ID || recs[0].State != StateRunningCkpt {
		t.Fatalf("unexpected checkpoints after drain: %+v", recs)
	}
	if len(recs[0].Outcomes) < 2 {
		t.Fatalf("drain checkpoint has %d outcomes, want >= 2", len(recs[0].Outcomes))
	}
	partial := len(recs[0].Outcomes)

	// Second daemon over the same directory: must auto-resume.
	s2, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	c2 := api.NewClient(hs2.URL)
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s2.Drain(dctx); err != nil {
			t.Errorf("drain s2: %v", err)
		}
	})

	st, err := c2.Wait(ctx, sub.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("resumed job ended %s: %s", st.State, st.Error)
	}
	if st.Resumed != partial {
		t.Errorf("resumed shard count = %d, want %d (checkpointed work was recomputed?)", st.Resumed, partial)
	}
	if st.Fingerprint != want {
		t.Errorf("resumed fingerprint %s != uninterrupted batch fingerprint %s", st.Fingerprint, want)
	}
	env, err := c2.Report(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if env.Report.Fingerprint() != want {
		t.Error("resumed report re-fingerprints differently from the batch reference")
	}
	if env.Report.Completed != 12 {
		t.Errorf("resumed report completed %d/12 shards", env.Report.Completed)
	}

	// The finished job persisted a done checkpoint, so a third daemon
	// serves its report without running anything — and its cache is
	// warm for resubmissions of the same spec.
	s3, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s3.Start()
	hs3 := httptest.NewServer(s3.Handler())
	defer hs3.Close()
	c3 := api.NewClient(hs3.URL)
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s3.Drain(dctx); err != nil {
			t.Errorf("drain s3: %v", err)
		}
	})
	env3, err := c3.Report(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if env3.Fingerprint != want {
		t.Errorf("restart-loaded report fingerprint %s != %s", env3.Fingerprint, want)
	}
	hit, err := c3.Submit(ctx, []byte(resumeSpec))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Fingerprint != want {
		t.Errorf("warm-restart cache miss or mismatch: %+v", hit)
	}
}

// TestQueuedJobSurvivesDrain: a job still waiting in the queue when
// the daemon drains is re-run from scratch by the next daemon.
func TestQueuedJobSurvivesDrain(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(Config{CheckpointDir: dir, Runners: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	hs1 := httptest.NewServer(s1.Handler())
	c1 := api.NewClient(hs1.URL)
	// Occupy the runner with a slow sweep, then queue a quick one.
	if _, err := c1.Submit(ctx, []byte(resumeSpec)); err != nil {
		t.Fatal(err)
	}
	quick := `{"seed": 3, "vehicles": [{"name": "q", "engine": "slots", "pattern": "c1", "slots": 2000, "replicate": 2}]}`
	sub, err := c1.Submit(ctx, []byte(quick))
	if err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	hs1.Close()

	s2, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Drain(dctx); err != nil {
			t.Errorf("drain s2: %v", err)
		}
	})
	c2 := api.NewClient(hs2.URL)
	st, err := c2.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("queued-then-drained job ended %s: %s", st.State, st.Error)
	}
	if want := batchFingerprint(t, quick); st.Fingerprint != want {
		t.Errorf("fingerprint %s != batch %s", st.Fingerprint, want)
	}
}

// TestCheckpointCorruptionTolerated: a stray temp file or corrupt
// checkpoint in the directory is quarantined as <id>.corrupt and
// reported, never fatal to the rest of the fleet.
func TestCheckpointCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000009"+ckptSuffix), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-000010"+ckptSuffix+".tmp"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := mustStore(t, dir)
	recs, report := store.Load()
	if len(recs) != 0 {
		t.Errorf("corrupt dir yielded records: %+v", recs)
	}
	if report.Loaded != 0 {
		t.Errorf("report claims %d loaded records", report.Loaded)
	}
	if len(report.Quarantined) != 1 || !strings.Contains(report.Quarantined[0].File, "job-000009") {
		t.Fatalf("want one quarantine naming the torn file, got %+v", report.Quarantined)
	}
	q := report.Quarantined[0]
	if q.MovedTo != "job-000009"+corruptSuffix {
		t.Errorf("quarantine destination = %q", q.MovedTo)
	}
	if q.Reason == "" {
		t.Error("quarantine carries no reason")
	}
	// The bytes must be preserved for post-mortem at the new name, and
	// the original file must be gone so the next load skips it.
	moved, err := os.ReadFile(filepath.Join(dir, q.MovedTo))
	if err != nil {
		t.Fatalf("quarantined bytes unreadable: %v", err)
	}
	if string(moved) != "{torn" {
		t.Errorf("quarantined bytes = %q, want the original torn content", moved)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-000009"+ckptSuffix)); !os.IsNotExist(err) {
		t.Errorf("torn checkpoint still present after quarantine (err=%v)", err)
	}
	// A second load over the same directory is clean: the quarantine is
	// not re-reported and the .corrupt file is ignored.
	recs2, report2 := store.Load()
	if len(recs2) != 0 || !report2.Clean() {
		t.Errorf("second load not clean: recs=%+v report=%s", recs2, report2)
	}
	// The daemon still constructs and serves over such a directory.
	s, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Error(err)
	}
}

// TestCheckpointCRCMismatchQuarantined: a version-2 envelope whose CRC
// disagrees with its record bytes is quarantined even though it parses
// as valid JSON — silent bit rot is caught, not half-trusted.
func TestCheckpointCRCMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	store := mustStore(t, dir)
	rec := Record{ID: "job-000001", State: StateQueuedCkpt, Spec: []byte(`{"seed":1}`)}
	if err := store.Write(rec); err != nil {
		t.Fatal(err)
	}
	name := "job-000001" + ckptSuffix
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the embedded record without breaking the JSON.
	tampered := strings.Replace(string(data), `"seed":1`, `"seed":2`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found in checkpoint bytes")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, report := store.Load()
	if len(recs) != 0 {
		t.Errorf("tampered checkpoint loaded: %+v", recs)
	}
	if len(report.Quarantined) != 1 || !strings.Contains(report.Quarantined[0].Reason, "crc mismatch") {
		t.Fatalf("want a crc-mismatch quarantine, got %+v", report.Quarantined)
	}
}

// TestCheckpointLegacyV1Loads: a pre-envelope (version 1) checkpoint
// still loads — upgrades must not orphan in-flight jobs.
func TestCheckpointLegacyV1Loads(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"version":1,"id":"job-000004","state":"queued","spec":{"seed":9}}`
	if err := os.WriteFile(filepath.Join(dir, "job-000004"+ckptSuffix), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, report := mustStore(t, dir).Load()
	if !report.Clean() || report.Loaded != 1 {
		t.Fatalf("legacy load not clean: %s", report)
	}
	if len(recs) != 1 || recs[0].ID != "job-000004" || recs[0].State != StateQueuedCkpt {
		t.Fatalf("legacy record mangled: %+v", recs)
	}
}

// mustStore opens a checkpoint store or fails the test.
func mustStore(t *testing.T, dir string) *CheckpointStore {
	t.Helper()
	st, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
