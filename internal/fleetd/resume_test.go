package fleetd

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleetd/api"
)

// resumeSpec is slow enough (single worker, ~12 shards of 100k slots)
// that a drain reliably lands mid-sweep, and deterministic so the
// resumed fingerprint has a pinned reference.
const resumeSpec = `{"seed": 77, "workers": 1, "vehicles": [
	{"name": "long", "engine": "slots", "pattern": "c2", "slots": 100000, "replicate": 12}
]}`

// TestResumeAfterDrain is the kill/restart determinism leg: drain a
// daemon mid-sweep, restart over the same checkpoint directory, and
// require (a) completed shards are not recomputed and (b) the resumed
// report fingerprint equals an uninterrupted batch run's.
func TestResumeAfterDrain(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	want := batchFingerprint(t, resumeSpec)

	// First daemon: submit, let a few shards finish, then drain.
	s1, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	hs1 := httptest.NewServer(s1.Handler())
	c1 := api.NewClient(hs1.URL)
	sub, err := c1.Submit(ctx, []byte(resumeSpec))
	if err != nil {
		t.Fatal(err)
	}
	progressed := false
	for try := 0; try < 3000 && !progressed; try++ { // 3000 × 10ms = 30s cap
		st, err := c1.Status(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.StateDone {
			t.Fatal("sweep finished before the drain; slow the resume spec down")
		}
		if st.State == api.StateRunning && st.Done >= 2 {
			progressed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !progressed {
		t.Fatal("no shard progress within the polling budget")
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	hs1.Close()

	// The checkpoint must exist and carry completed shard outcomes.
	recs, errs := mustStore(t, dir).Load()
	if len(errs) > 0 {
		t.Fatalf("checkpoint load errors: %v", errs)
	}
	if len(recs) != 1 || recs[0].ID != sub.ID || recs[0].State != StateRunningCkpt {
		t.Fatalf("unexpected checkpoints after drain: %+v", recs)
	}
	if len(recs[0].Outcomes) < 2 {
		t.Fatalf("drain checkpoint has %d outcomes, want >= 2", len(recs[0].Outcomes))
	}
	partial := len(recs[0].Outcomes)

	// Second daemon over the same directory: must auto-resume.
	s2, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	c2 := api.NewClient(hs2.URL)
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s2.Drain(dctx); err != nil {
			t.Errorf("drain s2: %v", err)
		}
	})

	st, err := c2.Wait(ctx, sub.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("resumed job ended %s: %s", st.State, st.Error)
	}
	if st.Resumed != partial {
		t.Errorf("resumed shard count = %d, want %d (checkpointed work was recomputed?)", st.Resumed, partial)
	}
	if st.Fingerprint != want {
		t.Errorf("resumed fingerprint %s != uninterrupted batch fingerprint %s", st.Fingerprint, want)
	}
	env, err := c2.Report(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if env.Report.Fingerprint() != want {
		t.Error("resumed report re-fingerprints differently from the batch reference")
	}
	if env.Report.Completed != 12 {
		t.Errorf("resumed report completed %d/12 shards", env.Report.Completed)
	}

	// The finished job persisted a done checkpoint, so a third daemon
	// serves its report without running anything — and its cache is
	// warm for resubmissions of the same spec.
	s3, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s3.Start()
	hs3 := httptest.NewServer(s3.Handler())
	defer hs3.Close()
	c3 := api.NewClient(hs3.URL)
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s3.Drain(dctx); err != nil {
			t.Errorf("drain s3: %v", err)
		}
	})
	env3, err := c3.Report(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if env3.Fingerprint != want {
		t.Errorf("restart-loaded report fingerprint %s != %s", env3.Fingerprint, want)
	}
	hit, err := c3.Submit(ctx, []byte(resumeSpec))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Fingerprint != want {
		t.Errorf("warm-restart cache miss or mismatch: %+v", hit)
	}
}

// TestQueuedJobSurvivesDrain: a job still waiting in the queue when
// the daemon drains is re-run from scratch by the next daemon.
func TestQueuedJobSurvivesDrain(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(Config{CheckpointDir: dir, Runners: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	hs1 := httptest.NewServer(s1.Handler())
	c1 := api.NewClient(hs1.URL)
	// Occupy the runner with a slow sweep, then queue a quick one.
	if _, err := c1.Submit(ctx, []byte(resumeSpec)); err != nil {
		t.Fatal(err)
	}
	quick := `{"seed": 3, "vehicles": [{"name": "q", "engine": "slots", "pattern": "c1", "slots": 2000, "replicate": 2}]}`
	sub, err := c1.Submit(ctx, []byte(quick))
	if err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	hs1.Close()

	s2, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Drain(dctx); err != nil {
			t.Errorf("drain s2: %v", err)
		}
	})
	c2 := api.NewClient(hs2.URL)
	st, err := c2.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("queued-then-drained job ended %s: %s", st.State, st.Error)
	}
	if want := batchFingerprint(t, quick); st.Fingerprint != want {
		t.Errorf("fingerprint %s != batch %s", st.Fingerprint, want)
	}
}

// TestCheckpointAtomicity: a stray temp file or corrupt checkpoint in
// the directory is skipped, never fatal to the rest of the fleet.
func TestCheckpointCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000009"+ckptSuffix), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-000010"+ckptSuffix+".tmp"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := mustStore(t, dir)
	recs, errs := store.Load()
	if len(recs) != 0 {
		t.Errorf("corrupt dir yielded records: %+v", recs)
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "job-000009") {
		t.Errorf("want one error naming the torn file, got %v", errs)
	}
	// The daemon still constructs and serves over such a directory.
	s, err := New(Config{CheckpointDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Error(err)
	}
}

// mustStore opens a checkpoint store or fails the test.
func mustStore(t *testing.T, dir string) *CheckpointStore {
	t.Helper()
	st, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
