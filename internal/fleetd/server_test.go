package fleetd

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/arachnet"
	"repro/internal/fleetd/api"
)

// testSpec is a small, fast slots sweep used across the server tests.
const testSpec = `{"seed": 42, "workers": 2, "vehicles": [
	{"name": "sweep", "engine": "slots", "pattern": "c1", "slots": 2000, "replicate": 4}
]}`

// startServer builds a daemon and serves it over httptest; the cleanup
// drains it.
func startServer(t *testing.T, cfg Config) (*Server, *api.Client) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		hs.Close()
	})
	return s, api.NewClient(hs.URL)
}

// batchFingerprint runs the spec through the plain batch engine — the
// reference every daemon path must match.
func batchFingerprint(t *testing.T, spec string) string {
	t.Helper()
	f, err := arachnet.UnmarshalFleetJSON([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := arachnet.RunFleet(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Fingerprint()
}

// TestSubmitRunReport is the fresh-run determinism leg: submit, wait,
// fetch the report, and require the fingerprint to equal a local batch
// run of the same (spec, seed).
func TestSubmitRunReport(t *testing.T) {
	_, c := startServer(t, Config{})
	ctx := context.Background()

	sub, err := c.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cached || sub.State != api.StateQueued || sub.Jobs != 4 {
		t.Fatalf("unexpected submit ack: %+v", sub)
	}
	st, err := c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Done != 4 || st.Error != "" {
		t.Fatalf("unexpected terminal status: %+v", st)
	}
	env, err := c.Report(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if env.Report == nil || !env.Report.Ok() {
		t.Fatalf("report not ok: %+v", env)
	}
	if got := env.Report.Fingerprint(); got != env.Fingerprint {
		t.Errorf("envelope fingerprint %s != report fingerprint %s", env.Fingerprint, got)
	}
	if want := batchFingerprint(t, testSpec); env.Fingerprint != want {
		t.Errorf("daemon fingerprint %s != batch CLI fingerprint %s", env.Fingerprint, want)
	}
}

// TestCacheHitEndToEnd is the cache-hit determinism leg: resubmitting
// the same spec (even reformatted) returns immediately with the same
// fingerprint and no new work.
func TestCacheHitEndToEnd(t *testing.T) {
	s, c := startServer(t, Config{})
	ctx := context.Background()

	first, err := c.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, first.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	// Same spec, different formatting and field order: must hit.
	reformatted := []byte(`{"workers":2,"vehicles":[{"replicate":4,"slots":2000,"pattern":"c1","engine":"slots","name":"sweep"}],"seed":42}`)
	second, err := c.Submit(ctx, reformatted)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("reformatted resubmission missed the response cache")
	}
	if second.Fingerprint != st.Fingerprint {
		t.Errorf("cache-hit fingerprint %s != fresh-run fingerprint %s", second.Fingerprint, st.Fingerprint)
	}
	env, err := c.Report(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Cached || env.Fingerprint != st.Fingerprint || env.Report.Fingerprint() != st.Fingerprint {
		t.Errorf("cached report not bit-identical: %+v vs %s", env.Fingerprint, st.Fingerprint)
	}
	if got := s.cache.Hits(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}

	// Different seed: must miss and queue fresh work.
	otherSeed := []byte(`{"seed": 43, "workers": 2, "vehicles": [
		{"name": "sweep", "engine": "slots", "pattern": "c1", "slots": 2000, "replicate": 4}
	]}`)
	third, err := c.Submit(ctx, otherSeed)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("differing seed hit the cache")
	}
	st3, err := c.Wait(ctx, third.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Fingerprint == st.Fingerprint {
		t.Error("different seed produced an identical fingerprint")
	}
}

// TestStream checks the JSONL progress stream shape: status line,
// per-shard lifecycle events, and a done line with the fingerprint.
func TestStream(t *testing.T) {
	_, c := startServer(t, Config{})
	ctx := context.Background()

	sub, err := c.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	var events int
	sawStatus := false
	done, err := c.Stream(ctx, sub.ID, func(line api.StreamLine) error {
		switch line.Type {
		case api.StreamStatus:
			sawStatus = true
		case api.StreamEvent:
			events++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawStatus {
		t.Error("stream did not open with a status line")
	}
	if done.Type != api.StreamDone || done.State != api.StateDone {
		t.Fatalf("stream did not close with done: %+v", done)
	}
	if done.Fingerprint == "" {
		t.Error("done line missing fingerprint")
	}
	// Events raced with the run: a late subscriber may have missed
	// early shards, but a subscriber attached at submit time should see
	// activity unless the whole sweep beat the HTTP round trip.
	t.Logf("streamed %d events, dropped %d", events, done.Dropped)

	// Streaming a finished job closes immediately with the same
	// fingerprint.
	late, err := c.Stream(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if late.State != api.StateDone || late.Fingerprint != done.Fingerprint {
		t.Errorf("late stream terminal line mismatch: %+v vs %+v", late, done)
	}
}

// TestBackpressure fills the queue and requires 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	// One runner, queue depth 1, and a job slow enough to hold the
	// runner while the queue fills.
	_, c := startServer(t, Config{QueueDepth: 1, Runners: 1})
	ctx := context.Background()
	slow := `{"seed": 5, "workers": 1, "vehicles": [
		{"name": "slow", "engine": "slots", "pattern": "c1", "slots": 400000, "replicate": 4}
	]}`
	quick := `{"seed": 6, "vehicles": [{"name": "q", "engine": "slots", "pattern": "c1", "slots": 1000}]}`

	first, err := c.Submit(ctx, []byte(slow))
	if err != nil {
		t.Fatal(err)
	}
	// The runner takes first off the queue quickly; saturate the queue
	// slot, then the next submit must bounce.
	var queued api.SubmitResponse
	for try := 0; ; try++ {
		queued, err = c.Submit(ctx, []byte(quick))
		if err == nil {
			break // occupied the single queue slot
		}
		if try >= 1000 { // 1000 × 5ms = 5s cap
			t.Fatalf("never managed to queue the second job: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	overflow := `{"seed": 9, "vehicles": [{"name": "x", "engine": "slots", "pattern": "c1", "slots": 1000}]}`
	_, err = c.Submit(ctx, []byte(overflow))
	busy, ok := err.(api.ErrBusy)
	if !ok {
		t.Fatalf("overflow submit: got %v, want ErrBusy", err)
	}
	if busy.RetryAfter <= 0 {
		t.Errorf("Retry-After not propagated: %+v", busy)
	}

	// Cancel the slow job so cleanup drains fast, then the queued one
	// completes.
	if err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, first.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateCancelled {
		t.Errorf("cancelled job state = %s", st.State)
	}
	st2, err := c.Wait(ctx, queued.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != api.StateDone {
		t.Errorf("queued job ended %s: %s", st2.State, st2.Error)
	}
}

// TestCancelQueued cancels a job that never started.
func TestCancelQueued(t *testing.T) {
	_, c := startServer(t, Config{QueueDepth: 2, Runners: 1})
	ctx := context.Background()
	slow := `{"seed": 5, "workers": 1, "vehicles": [
		{"name": "slow", "engine": "slots", "pattern": "c1", "slots": 400000, "replicate": 4}
	]}`
	quick := `{"seed": 6, "vehicles": [{"name": "q", "engine": "slots", "pattern": "c1", "slots": 1000}]}`
	if _, err := c.Submit(ctx, []byte(slow)); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, []byte(quick))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateCancelled {
		t.Errorf("state = %s, want cancelled", st.State)
	}
	// Cancelling a terminal job is a conflict, not a crash.
	if err := c.Cancel(ctx, sub.ID); err == nil {
		t.Error("second cancel succeeded, want conflict")
	}
}

// TestHealthAndList smoke-checks the operational endpoints.
func TestHealthAndList(t *testing.T) {
	_, c := startServer(t, Config{})
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Draining || h.QueueDepth != 64 {
		t.Errorf("unexpected health: %+v", h)
	}
	sub, err := c.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	lr, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Jobs) != 1 || lr.Jobs[0].ID != sub.ID {
		t.Errorf("unexpected job list: %+v", lr)
	}
	// Unknown job IDs are 404s.
	if _, err := c.Status(ctx, "job-999999"); err == nil {
		t.Error("status of unknown job succeeded")
	}
	// Bad specs are 400s.
	if _, err := c.Submit(ctx, []byte(`{"vehicles": []}`)); err == nil {
		t.Error("empty-fleet spec accepted")
	}
}

// TestDrainRejectsSubmits pins the shutdown contract: a draining
// daemon answers 503 to new work.
func TestDrainRejectsSubmits(t *testing.T) {
	cfg := Config{Logf: t.Logf}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := api.NewClient(hs.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, []byte(testSpec)); err == nil {
		t.Error("draining daemon accepted a submission")
	}
}

// TestAdmissionPublishBeforeEnqueue pins the submit admission ordering:
// the job must be registered and entered into the in-flight dedupe map
// before it can reach a runner. The enqueue-first ordering had a race —
// a runner could finalize the job before the inflight entry existed,
// leaving a stale entry that made every later submit of the same spec
// dedupe against the finished job (with caching disabled the spec could
// never run again). Sequential resubmits of one spec must therefore
// each queue a fresh run, and the dedupe map must be empty whenever no
// job is active.
func TestAdmissionPublishBeforeEnqueue(t *testing.T) {
	s, c := startServer(t, Config{CacheEntries: -1, Runners: 1})
	ctx := context.Background()
	spec := `{"seed": 7, "vehicles": [{"name": "q", "engine": "slots", "pattern": "c1", "slots": 1000}]}`

	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		sub, err := c.Submit(ctx, []byte(spec))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if sub.Cached || sub.State != api.StateQueued {
			t.Fatalf("iteration %d: submit deduped against a terminal job: %+v", i, sub)
		}
		if seen[sub.ID] {
			t.Fatalf("iteration %d: job ID %s reused", i, sub.ID)
		}
		seen[sub.ID] = true
		st, err := c.Wait(ctx, sub.ID, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != api.StateDone {
			t.Fatalf("iteration %d: state %s: %s", i, st.State, st.Error)
		}
		s.mu.Lock()
		stale := len(s.inflight)
		s.mu.Unlock()
		if stale != 0 {
			t.Fatalf("iteration %d: %d stale inflight entr(ies) after job finished", i, stale)
		}
	}
}

// TestBackpressureRollback pins the 429 path: a submit refused by a
// full queue must leave no ghost state behind — no registry entry, no
// listing slot, no in-flight dedupe entry — and the same spec must be
// admissible again once the queue has room.
func TestBackpressureRollback(t *testing.T) {
	s, c := startServer(t, Config{QueueDepth: 1, Runners: 1})
	ctx := context.Background()
	slow := `{"seed": 5, "workers": 1, "vehicles": [
		{"name": "slow", "engine": "slots", "pattern": "c1", "slots": 400000, "replicate": 4}
	]}`
	quick := `{"seed": 6, "vehicles": [{"name": "q", "engine": "slots", "pattern": "c1", "slots": 1000}]}`
	overflow := `{"seed": 9, "vehicles": [{"name": "x", "engine": "slots", "pattern": "c1", "slots": 1000}]}`

	first, err := c.Submit(ctx, []byte(slow))
	if err != nil {
		t.Fatal(err)
	}
	for try := 0; ; try++ {
		if _, err = c.Submit(ctx, []byte(quick)); err == nil {
			break // occupied the single queue slot
		}
		if try >= 1000 {
			t.Fatalf("never managed to queue the second job: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Submit(ctx, []byte(overflow)); err == nil {
		t.Fatal("overflow submit accepted, want 429")
	}
	s.mu.Lock()
	jobs, order, inflight := len(s.jobs), len(s.order), len(s.inflight)
	s.mu.Unlock()
	if jobs != 2 || order != 2 || inflight != 2 {
		t.Fatalf("rejected submit left ghost state: jobs=%d order=%d inflight=%d, want 2/2/2", jobs, order, inflight)
	}

	// Free the queue and prove the bounced spec is admissible again.
	if err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	var retry api.SubmitResponse
	for try := 0; ; try++ {
		if retry, err = c.Submit(ctx, []byte(overflow)); err == nil {
			break
		}
		if try >= 1000 {
			t.Fatalf("bounced spec never admitted after queue freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err := c.Wait(ctx, retry.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Errorf("readmitted job ended %s: %s", st.State, st.Error)
	}
}
