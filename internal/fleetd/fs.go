package fleetd

import (
	"io"
	"os"
)

// FS is the filesystem seam the checkpoint store writes through. The
// daemon runs on OSFS; the chaos harness substitutes a fault-injecting
// implementation to simulate torn writes, full disks, and processes
// killed between syscalls — without ever touching a real disk fault.
// The methods are exactly the operations a crash-safe write needs,
// so every fsync/rename the durability argument depends on crosses
// this boundary and is visible to fault injection.
type FS interface {
	// MkdirAll creates the checkpoint directory tree.
	MkdirAll(dir string, perm os.FileMode) error
	// Create opens name for writing, truncating any previous content.
	Create(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (callers tolerate fs.ErrNotExist).
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(dir string) ([]os.DirEntry, error)
	// ReadFile slurps a file.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory so a completed rename survives a
	// crash of the machine, not just of the process.
	SyncDir(dir string) error
}

// File is the writable handle Create returns: sequential writes, an
// explicit durability barrier, and close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// osFS is the real-disk FS.
type osFS struct{}

// OSFS returns the FS backed by the os package; the default for every
// production server.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
