package fleetd

import (
	"context"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/fleetd/api"
)

// collectStream replays a job's stream through a client and returns
// the event lines plus the terminal line.
func collectStream(t *testing.T, c *api.Client, id string) ([]api.StreamLine, api.StreamLine) {
	t.Helper()
	var events []api.StreamLine
	done, err := c.Stream(context.Background(), id, func(line api.StreamLine) error {
		if line.Type == api.StreamEvent {
			events = append(events, line)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return events, done
}

// TestStreamBinaryMatchesJSONL replays one finished job's stream in
// both encodings: the binary stream must deliver the same events with
// the same sequence numbers and close with the same fingerprint — the
// two formats are transfer encodings of one log, not two logs.
func TestStreamBinaryMatchesJSONL(t *testing.T) {
	_, c := startServer(t, Config{})
	ctx := context.Background()

	sub, err := c.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	jsonlEvents, jsonlDone := collectStream(t, c, sub.ID)
	bc := api.NewClient(c.Base(), api.WithStreamFormat(api.StreamFormatBinary))
	binEvents, binDone := collectStream(t, bc, sub.ID)

	if len(jsonlEvents) == 0 {
		t.Fatal("finished job replayed no events")
	}
	if !reflect.DeepEqual(binEvents, jsonlEvents) {
		t.Fatalf("binary stream events differ from JSONL:\n bin %+v\njson %+v", binEvents, jsonlEvents)
	}
	if binDone.State != jsonlDone.State || binDone.Fingerprint != jsonlDone.Fingerprint {
		t.Fatalf("terminal lines differ: binary %+v vs jsonl %+v", binDone, jsonlDone)
	}
	if binDone.Fingerprint == "" {
		t.Error("binary done line missing fingerprint")
	}
}

// TestStreamBinaryRawProtocol hits the endpoint without the client:
// the response must open with the wire header, carry the same
// sequence numbers the JSONL stream uses (so an ?after= offset
// learned over JSONL resumes a binary stream), and an unknown format
// must be refused with a 400 before any stream bytes.
func TestStreamBinaryRawProtocol(t *testing.T) {
	_, c := startServer(t, Config{})
	ctx := context.Background()

	sub, err := c.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	jsonlEvents, _ := collectStream(t, c, sub.ID)
	if len(jsonlEvents) < 2 {
		t.Fatalf("need at least 2 events to test resume, got %d", len(jsonlEvents))
	}
	after := jsonlEvents[len(jsonlEvents)/2].Seq

	get := func(query string) *http.Response {
		t.Helper()
		resp, err := http.Get(c.Base() + "/v1/jobs/" + sub.ID + "/stream" + query)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := get("?format=binary&after=" + strconv.FormatUint(after, 10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("binary stream content type %q", ct)
	}
	sr := api.NewStreamLineReader(resp.Body)
	var lines []api.StreamLine
	for {
		var line api.StreamLine
		err := sr.Read(&line)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	if len(lines) < 2 || lines[0].Type != api.StreamStatus || lines[len(lines)-1].Type != api.StreamDone {
		t.Fatalf("stream shape wrong: %+v", lines)
	}
	var resumed []api.StreamLine
	for _, line := range lines[1 : len(lines)-1] {
		if line.Type != api.StreamEvent {
			t.Fatalf("unexpected mid-stream line %+v", line)
		}
		if line.Seq <= after {
			t.Fatalf("resume replayed seq %d, asked for after=%d", line.Seq, after)
		}
		resumed = append(resumed, line)
	}
	want := jsonlEvents[len(jsonlEvents)/2+1:]
	if !reflect.DeepEqual(resumed, want) {
		t.Fatalf("cross-format resume mismatch:\n got %+v\nwant %+v", resumed, want)
	}

	if resp := get("?format=morse"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format answered %d, want 400", resp.StatusCode)
	}
}
