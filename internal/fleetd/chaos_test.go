package fleetd

// Chaos harness. Every scenario here injects a deterministic fault —
// torn checkpoint writes, a full disk, a process killed mid-
// checkpoint, a flaky client transport, transiently failing shards —
// and asserts the same convergence property: the system ends up with
// the bit-identical fingerprint an unfaulted run produces. No scenario
// touches a real disk fault or a real network failure; everything goes
// through the FS, WrapJob, and http.RoundTripper seams, so the tests
// are exact replays, not probabilistic soak runs.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/fleetd/api"
	"repro/internal/resilience"
)

// ---------------------------------------------------------------------
// Fault-injecting filesystem
// ---------------------------------------------------------------------

const (
	faultNone   = iota
	faultKill   // every op fails once armed: a process dead mid-checkpoint
	faultTorn   // writes silently persist only half their bytes: a lying disk
	faultENOSPC // write-path ops fail with a full-disk error until healed
)

// faultFS wraps an inner FS and injects one fault mode after a given
// number of operations. Every mutation the crash-safety argument
// depends on crosses FS, so arming the fault at op K deterministically
// simulates "the machine stopped cooperating at syscall K".
type faultFS struct {
	inner FS
	mu    sync.Mutex
	mode  int
	after int // ops that succeed before the fault arms
	ops   int
}

func newFaultFS(mode, after int) *faultFS {
	return &faultFS{inner: OSFS(), mode: mode, after: after}
}

// step counts one operation and reports the active fault mode.
func (f *faultFS) step() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.mode == faultNone || f.ops <= f.after {
		return faultNone
	}
	return f.mode
}

// heal clears the fault (the operator freed disk space).
func (f *faultFS) heal() {
	f.mu.Lock()
	f.mode = faultNone
	f.mu.Unlock()
}

var errKilled = errors.New("injected: process killed mid-checkpoint")
var errNoSpace = errors.New("injected: no space left on device")

func (f *faultFS) MkdirAll(dir string, perm os.FileMode) error {
	if f.step() == faultKill {
		return errKilled
	}
	return f.inner.MkdirAll(dir, perm)
}

func (f *faultFS) Create(name string) (File, error) {
	switch f.step() {
	case faultKill:
		return nil, errKilled
	case faultENOSPC:
		return nil, errNoSpace
	case faultTorn:
		inner, err := f.inner.Create(name)
		if err != nil {
			return nil, err
		}
		return &tornFile{inner: inner}, nil
	}
	return f.inner.Create(name)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.step() == faultKill {
		return errKilled
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if f.step() == faultKill {
		return errKilled
	}
	return f.inner.Remove(name)
}

func (f *faultFS) ReadDir(dir string) ([]os.DirEntry, error) {
	if f.step() == faultKill {
		return nil, errKilled
	}
	return f.inner.ReadDir(dir)
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if f.step() == faultKill {
		return nil, errKilled
	}
	return f.inner.ReadFile(name)
}

func (f *faultFS) SyncDir(dir string) error {
	switch f.step() {
	case faultKill:
		return errKilled
	case faultENOSPC:
		return errNoSpace
	}
	return f.inner.SyncDir(dir)
}

// tornFile persists only the first half of every write while reporting
// full success — the lying-disk failure the CRC envelope exists to
// catch. Sync and Close succeed, so the truncated bytes get committed.
type tornFile struct{ inner File }

func (t *tornFile) Write(p []byte) (int, error) {
	if _, err := t.inner.Write(p[:len(p)/2]); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (t *tornFile) Sync() error  { return t.inner.Sync() }
func (t *tornFile) Close() error { return t.inner.Close() }

// ---------------------------------------------------------------------
// Fault-injecting transports
// ---------------------------------------------------------------------

// flakyRT fails every third request with a transport error — a
// deterministic schedule (never two consecutive failures), so a client
// with MaxAttempts >= 2 always converges.
type flakyRT struct {
	next     http.RoundTripper
	n        atomic.Uint64
	injected atomic.Uint64
}

func (rt *flakyRT) RoundTrip(req *http.Request) (*http.Response, error) {
	if n := rt.n.Add(1); n%3 == 0 {
		rt.injected.Add(1)
		return nil, fmt.Errorf("injected: connection reset (request %d)", n)
	}
	return rt.next.RoundTrip(req)
}

// cutRT truncates the first `cuts` stream response bodies after
// `limit` bytes, forcing the client to reconnect mid-stream.
type cutRT struct {
	next  http.RoundTripper
	cuts  atomic.Int32
	limit int
}

func (rt *cutRT) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := rt.next.RoundTrip(req)
	if err != nil || !strings.Contains(req.URL.Path, "/stream") {
		return resp, err
	}
	if rt.cuts.Add(-1) >= 0 {
		resp.Body = &cutBody{inner: resp.Body, remain: rt.limit}
	}
	return resp, nil
}

type cutBody struct {
	inner interface {
		Read([]byte) (int, error)
		Close() error
	}
	remain int
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, errors.New("injected: stream connection torn")
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= n
	return n, err
}

func (b *cutBody) Close() error { return b.inner.Close() }

// chaosPolicy is the retry policy chaos clients run under: enough
// attempts to outlast every injected fault schedule, millisecond
// backoff so the suite stays fast.
func chaosPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Multiplier:  2,
	}
}

// chaosServer starts a daemon and returns it plus its base URL, so
// tests can attach clients with custom transports. Cleanup drains.
func chaosServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		hs.Close()
	})
	return s, hs.URL
}

// ---------------------------------------------------------------------
// Scenario: torn checkpoint writes
// ---------------------------------------------------------------------

// TestChaosTornWriteQuarantinedAndConverges: a disk that persists only
// half of every checkpoint write cannot poison a restart. The torn
// file fails its CRC, is quarantined as <id>.corrupt, and a
// resubmission of the spec converges to the unfaulted fingerprint.
func TestChaosTornWriteQuarantinedAndConverges(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	want := batchFingerprint(t, testSpec)

	// Daemon 1 writes every checkpoint through the lying disk. The run
	// itself is unaffected — only durability is compromised.
	s1, err := New(Config{CheckpointDir: dir, FS: newFaultFS(faultTorn, 0), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	hs1 := httptest.NewServer(s1.Handler())
	c1 := api.NewClient(hs1.URL)
	sub, err := c1.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c1.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Fingerprint != want {
		t.Fatalf("faulted-disk run: state=%s fp=%s want done/%s", st.State, st.Fingerprint, want)
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	hs1.Close()

	// Daemon 2 (honest disk): the torn checkpoint must be quarantined,
	// not half-trusted, and the spec must re-run to the same answer.
	s2, c2 := startServer(t, Config{CheckpointDir: dir})
	if _, err := os.Stat(filepath.Join(dir, sub.ID+corruptSuffix)); err != nil {
		t.Errorf("torn checkpoint not quarantined: %v", err)
	}
	h, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counters["ckpt_quarantined"] != 1 {
		t.Errorf("ckpt_quarantined = %d, want 1 (counters: %v)", h.Counters["ckpt_quarantined"], h.Counters)
	}
	lr, err := c2.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Jobs) != 0 {
		t.Errorf("quarantined checkpoint resurrected jobs: %+v", lr.Jobs)
	}
	sub2, err := c2.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c2.Wait(ctx, sub2.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Fingerprint != want {
		t.Errorf("post-quarantine rerun fingerprint %s != batch %s", st2.Fingerprint, want)
	}
	_ = s2
}

// ---------------------------------------------------------------------
// Scenario: process killed at a checkpoint boundary
// ---------------------------------------------------------------------

// chaosKillSpec is slow enough (single worker) that the drain lands
// mid-sweep and several periodic checkpoints get a chance to commit.
const chaosKillSpec = `{"seed": 123, "workers": 1, "vehicles": [
	{"name": "kill", "engine": "slots", "pattern": "c2", "slots": 30000, "replicate": 8}
]}`

// TestChaosKillAtCheckpoint: the filesystem dies at op K — before the
// admission write, right after it, or somewhere in the periodic flush
// stream. Whatever survived on disk, a restarted daemon (or, when
// nothing survived, a resubmission) converges to the unfaulted
// fingerprint: crash-safe rename means the last committed checkpoint
// is always a consistent one.
func TestChaosKillAtCheckpoint(t *testing.T) {
	want := batchFingerprint(t, chaosKillSpec)
	for _, after := range []int{2, 10, 26, 80} {
		after := after
		t.Run(fmt.Sprintf("kill-after-%d-ops", after), func(t *testing.T) {
			dir := t.TempDir()
			ctx := context.Background()
			s1, err := New(Config{
				CheckpointDir:   dir,
				FS:              newFaultFS(faultKill, after),
				CheckpointEvery: 15 * time.Millisecond,
				Logf:            t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			s1.Start()
			hs1 := httptest.NewServer(s1.Handler())
			c1 := api.NewClient(hs1.URL)
			sub, err := c1.Submit(ctx, []byte(chaosKillSpec))
			if err != nil {
				t.Fatal(err)
			}
			for try := 0; try < 3000; try++ {
				st, err := c1.Status(ctx, sub.ID)
				if err != nil {
					t.Fatal(err)
				}
				if st.State == api.StateDone || (st.State == api.StateRunning && st.Done >= 2) {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			dctx, cancel := context.WithTimeout(ctx, 15*time.Second)
			if err := s1.Drain(dctx); err != nil {
				t.Fatal(err)
			}
			cancel()
			hs1.Close()

			// Whatever the kill point, the directory holds either a
			// consistent checkpoint or nothing — never garbage.
			recs, report := mustStore(t, dir).Load()
			if !report.Clean() {
				t.Fatalf("kill left an inconsistent checkpoint behind: %s", report)
			}

			s2, c2 := startServer(t, Config{CheckpointDir: dir})
			_ = s2
			id := sub.ID
			if len(recs) == 0 {
				// Nothing durable survived (the kill landed before the
				// admission write committed): the contract is that the
				// client resubmits.
				var he *api.HTTPError
				if _, err := c2.Status(ctx, sub.ID); !errors.As(err, &he) || he.StatusCode != 404 {
					t.Fatalf("job survived without a checkpoint? err=%v", err)
				}
				resub, err := c2.Submit(ctx, []byte(chaosKillSpec))
				if err != nil {
					t.Fatal(err)
				}
				id = resub.ID
			}
			st, err := c2.Wait(ctx, id, 10*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != api.StateDone {
				t.Fatalf("post-kill run ended %s: %s", st.State, st.Error)
			}
			if st.Fingerprint != want {
				t.Errorf("post-kill fingerprint %s != unfaulted %s (resumed=%d)", st.Fingerprint, want, st.Resumed)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Scenario: full disk -> degraded mode -> recovery
// ---------------------------------------------------------------------

// TestChaosENOSPCDegradedAndRecovers: when the checkpoint dir stops
// accepting writes the daemon enters degraded mode — cached reports
// and health keep serving, new specs get 503 — and because every write
// attempt doubles as the recovery probe, the first successful write
// after the disk heals restores normal service.
func TestChaosENOSPCDegradedAndRecovers(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	fault := newFaultFS(faultNone, 0)
	s, base := chaosServer(t, Config{CheckpointDir: dir, FS: fault})
	c := api.NewClient(base)

	specA := testSpec
	wantA := batchFingerprint(t, specA)
	subA, err := c.Submit(ctx, []byte(specA))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, subA.ID, 10*time.Millisecond); err != nil || st.Fingerprint != wantA {
		t.Fatalf("healthy-phase run: %v / %+v", err, st)
	}

	// Disk fills. The next spec's admission write fails, flipping the
	// daemon degraded — but the job was already accepted and still
	// completes and serves its report.
	fault.mu.Lock()
	fault.mode = faultENOSPC
	fault.mu.Unlock()
	specB := `{"seed": 7, "vehicles": [{"name": "b", "engine": "slots", "pattern": "c1", "slots": 2000, "replicate": 3}]}`
	subB, err := c.Submit(ctx, []byte(specB))
	if err != nil {
		t.Fatalf("in-flight submit should be accepted even as the disk fills: %v", err)
	}
	if deg, reason := s.Degraded(); !deg || reason == "" {
		t.Fatalf("daemon not degraded after failed admission write (deg=%v reason=%q)", deg, reason)
	}
	if st, err := c.Wait(ctx, subB.ID, 10*time.Millisecond); err != nil || st.State != api.StateDone {
		t.Fatalf("accepted job must finish despite degraded mode: %v / %+v", err, st)
	}
	if st, _ := c.Wait(ctx, subB.ID, 10*time.Millisecond); st.Fingerprint != batchFingerprint(t, specB) {
		t.Errorf("degraded-phase run diverged: %s", st.Fingerprint)
	}

	// New work is refused with an explanatory 503; cached specs and
	// health still serve.
	specC := `{"seed": 11, "vehicles": [{"name": "c", "engine": "slots", "pattern": "c1", "slots": 2000, "replicate": 2}]}`
	var he *api.HTTPError
	if _, err := c.Submit(ctx, []byte(specC)); !errors.As(err, &he) || he.StatusCode != 503 || !strings.Contains(he.Message, "degraded") {
		t.Fatalf("degraded submit: want 503 degraded, got %v", err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Degraded || h.DegradedReason == "" {
		t.Errorf("health hides degraded state: %+v", h)
	}
	if h.Counters["ckpt_write_errors"] == 0 || h.Counters["degraded_entries"] != 1 {
		t.Errorf("degraded counters wrong: %v", h.Counters)
	}
	if hit, err := c.Submit(ctx, []byte(specA)); err != nil || !hit.Cached || hit.Fingerprint != wantA {
		t.Fatalf("cached spec must serve in degraded mode: %v / %+v", err, hit)
	}

	// Disk heals. The next cache-hit's checkpoint attempt is the probe
	// that flips the daemon healthy again — no dedicated prober.
	fault.heal()
	if hit, err := c.Submit(ctx, []byte(specA)); err != nil || !hit.Cached {
		t.Fatalf("post-heal cache hit: %v / %+v", err, hit)
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("daemon still degraded after a successful write probe")
	}
	subC, err := c.Submit(ctx, []byte(specC))
	if err != nil {
		t.Fatalf("healed daemon refuses new work: %v", err)
	}
	if st, err := c.Wait(ctx, subC.ID, 10*time.Millisecond); err != nil || st.Fingerprint != batchFingerprint(t, specC) {
		t.Fatalf("post-heal run diverged: %v / %+v", err, st)
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Degraded || h.Counters["degraded_exits"] != 1 {
		t.Errorf("recovery not reflected in health: %+v", h)
	}
}

// ---------------------------------------------------------------------
// Scenario: flaky client transport
// ---------------------------------------------------------------------

// TestChaosFlakyTransport: a transport that drops every third request
// is invisible to a retrying client — submit, status polling, and the
// report all succeed, and the fingerprint equals the unfaulted
// reference. The bare client, by contrast, surfaces the failure.
func TestChaosFlakyTransport(t *testing.T) {
	_, base := chaosServer(t, Config{})
	ctx := context.Background()
	want := batchFingerprint(t, testSpec)

	flaky := &flakyRT{next: http.DefaultTransport}
	c := api.NewClient(base,
		api.WithTransport(flaky),
		api.WithRetry(chaosPolicy(), 42),
	)
	sub, err := c.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatalf("retrying submit through flaky transport: %v", err)
	}
	st, err := c.Wait(ctx, sub.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Fingerprint != want {
		t.Fatalf("flaky-transport run: %+v, want done/%s", st, want)
	}
	env, err := c.Report(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if env.Fingerprint != want {
		t.Errorf("report fingerprint %s != %s", env.Fingerprint, want)
	}
	if flaky.injected.Load() == 0 {
		t.Fatal("fault never fired; the scenario tested nothing")
	}
	if c.Retries() == 0 {
		t.Error("client reports zero retries despite injected transport failures")
	}

	// Control: a bare client on the same transport schedule fails fast.
	bare := api.NewClient(base, api.WithTransport(&flakyRT{next: http.DefaultTransport}))
	var firstErr error
	for i := 0; i < 3 && firstErr == nil; i++ {
		_, firstErr = bare.Health(ctx)
	}
	if firstErr == nil {
		t.Error("bare client never surfaced the injected transport failure")
	}
}

// ---------------------------------------------------------------------
// Scenario: stream torn mid-flight, resumed by sequence number
// ---------------------------------------------------------------------

// TestChaosStreamResumesExactlyOnce: the first two stream connections
// are torn after a few hundred bytes. The client reconnects at
// ?after=<last seq> and must deliver every event exactly once, in
// order, with a single status line and zero drops — indistinguishable
// from an untorn stream.
func TestChaosStreamResumesExactlyOnce(t *testing.T) {
	_, base := chaosServer(t, Config{})
	ctx := context.Background()

	// Finish the job first so the event log is complete and the
	// expected event count (start+finish per shard) is exact.
	setup := api.NewClient(base)
	sub, err := setup.Submit(ctx, []byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Wait(ctx, sub.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	cut := &cutRT{next: http.DefaultTransport, limit: 350}
	cut.cuts.Store(2)
	c := api.NewClient(base,
		api.WithTransport(cut),
		api.WithRetry(chaosPolicy(), 99),
	)
	var statusLines, events int
	var lastSeq uint64
	seen := map[uint64]bool{}
	last, err := c.Stream(ctx, sub.ID, func(line api.StreamLine) error {
		switch line.Type {
		case api.StreamStatus:
			statusLines++
		case api.StreamEvent:
			events++
			if line.Seq <= lastSeq {
				t.Errorf("event seq %d not increasing (prev %d)", line.Seq, lastSeq)
			}
			if seen[line.Seq] {
				t.Errorf("event seq %d delivered twice", line.Seq)
			}
			seen[line.Seq] = true
			lastSeq = line.Seq
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream did not survive the torn connections: %v", err)
	}
	if cut.cuts.Load() >= 0 {
		t.Fatal("stream fault never fired; the scenario tested nothing")
	}
	if statusLines != 1 {
		t.Errorf("saw %d status lines across reconnects, want exactly 1", statusLines)
	}
	// testSpec compiles to 4 shards; each emits a start and a finish.
	if events != 8 {
		t.Errorf("saw %d events, want exactly 8 (4 shards x start+finish)", events)
	}
	if last.Type != api.StreamDone || last.State != api.StateDone {
		t.Errorf("terminal line: %+v", last)
	}
	if last.Dropped != 0 {
		t.Errorf("resumed stream reports %d drops, want 0", last.Dropped)
	}
}

// ---------------------------------------------------------------------
// Scenario: transient shard failures -> bounded re-execution
// ---------------------------------------------------------------------

// chaosShardSpec compiles to 6 single-worker-friendly shards.
const chaosShardSpec = `{"seed": 55, "workers": 2, "vehicles": [
	{"name": "shard", "engine": "slots", "pattern": "c1", "slots": 2000, "replicate": 6}
]}`

// TestChaosTransientShardsRerun: shards that fail with a
// transient-classified error are re-executed (bounded by JobRetries)
// while completed shards are preloaded, and the final report is
// fingerprint-identical to a run where the fault never fired.
func TestChaosTransientShardsRerun(t *testing.T) {
	want := batchFingerprint(t, chaosShardSpec)
	var mu sync.Mutex
	attempts := map[int]int{}
	wrap := func(run fleet.JobFunc) fleet.JobFunc {
		return func(ctx context.Context, info fleet.JobInfo) (fleet.Result, error) {
			mu.Lock()
			attempts[info.Index]++
			n := attempts[info.Index]
			mu.Unlock()
			if (info.Index == 1 || info.Index == 4) && n == 1 {
				return fleet.Result{}, resilience.MarkRetryable(errors.New("injected shard fault"))
			}
			return run(ctx, info)
		}
	}
	_, base := chaosServer(t, Config{JobRetries: 3, WrapJob: wrap})
	c := api.NewClient(base)
	ctx := context.Background()
	sub, err := c.Submit(ctx, []byte(chaosShardSpec))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Error != "" {
		t.Fatalf("rerun did not converge: %+v", st)
	}
	if st.Fingerprint != want {
		t.Errorf("rerun fingerprint %s != unfaulted %s", st.Fingerprint, want)
	}
	if st.Reruns != 1 {
		t.Errorf("reruns = %d, want 1 round", st.Reruns)
	}
	mu.Lock()
	if attempts[1] != 2 || attempts[4] != 2 {
		t.Errorf("faulted shards ran %d/%d times, want 2 each", attempts[1], attempts[4])
	}
	for _, idx := range []int{0, 2, 3, 5} {
		if attempts[idx] != 1 {
			t.Errorf("healthy shard %d recomputed %d times, want 1", idx, attempts[idx])
		}
	}
	mu.Unlock()
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counters["job_rerun_rounds"] != 1 || h.Counters["shards_rerun"] != 2 {
		t.Errorf("rerun counters wrong: %v", h.Counters)
	}
}

// TestChaosFatalShardsNotRerun: panics and non-transient failures must
// not trigger re-execution — re-running a deterministic failure cannot
// change the outcome, so burning retries on it would be pure waste.
func TestChaosFatalShardsNotRerun(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int]int{}
	wrap := func(run fleet.JobFunc) fleet.JobFunc {
		return func(ctx context.Context, info fleet.JobInfo) (fleet.Result, error) {
			mu.Lock()
			attempts[info.Index]++
			mu.Unlock()
			switch info.Index {
			case 2:
				panic("injected shard panic")
			case 3:
				return fleet.Result{}, errors.New("injected fatal shard fault")
			}
			return run(ctx, info)
		}
	}
	_, base := chaosServer(t, Config{JobRetries: 3, WrapJob: wrap})
	c := api.NewClient(base)
	ctx := context.Background()
	sub, err := c.Submit(ctx, []byte(chaosShardSpec))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Error == "" {
		t.Fatalf("job with fatal shards: %+v, want done with a first-error message", st)
	}
	if st.Reruns != 0 {
		t.Errorf("fatal failures triggered %d rerun rounds, want 0", st.Reruns)
	}
	env, err := c.Report(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if env.Report.Panicked != 1 || env.Report.Failed != 1 || env.Report.Completed != 4 {
		t.Errorf("report counts panicked=%d failed=%d completed=%d, want 1/1/4",
			env.Report.Panicked, env.Report.Failed, env.Report.Completed)
	}
	mu.Lock()
	for _, idx := range []int{2, 3} {
		if attempts[idx] != 1 {
			t.Errorf("fatal shard %d executed %d times, want exactly 1", idx, attempts[idx])
		}
	}
	mu.Unlock()
}

// ---------------------------------------------------------------------
// Scenario: job deadline
// ---------------------------------------------------------------------

// TestChaosJobDeadline: a job that outlives Config.JobDeadline fails
// with an explicit deadline message instead of running forever, and
// the overrun is counted.
func TestChaosJobDeadline(t *testing.T) {
	slow := `{"seed": 9, "workers": 1, "vehicles": [
		{"name": "slow", "engine": "slots", "pattern": "c2", "slots": 100000, "replicate": 12}
	]}`
	_, base := chaosServer(t, Config{JobDeadline: 60 * time.Millisecond})
	c := api.NewClient(base)
	ctx := context.Background()
	sub, err := c.Submit(ctx, []byte(slow))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline overrun reported as %+v", st)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counters["jobs_deadline_exceeded"] != 1 {
		t.Errorf("deadline counter = %d, want 1", h.Counters["jobs_deadline_exceeded"])
	}
}

// ---------------------------------------------------------------------
// Scenario: submit idempotency under client retries
// ---------------------------------------------------------------------

// TestChaosSubmitDedupe: a client that retries a submit (its ack was
// lost in flight) must not double-enqueue the spec — the daemon
// returns the in-flight job instead of a duplicate.
func TestChaosSubmitDedupe(t *testing.T) {
	_, base := chaosServer(t, Config{})
	c := api.NewClient(base)
	ctx := context.Background()
	slow := `{"seed": 31, "workers": 1, "vehicles": [
		{"name": "dup", "engine": "slots", "pattern": "c2", "slots": 60000, "replicate": 6}
	]}`
	first, err := c.Submit(ctx, []byte(slow))
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, []byte(slow))
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Errorf("retried submit enqueued a duplicate: %s then %s", first.ID, second.ID)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counters["submit_deduped"] != 1 {
		t.Errorf("submit_deduped = %d, want 1", h.Counters["submit_deduped"])
	}
	if st, err := c.Wait(ctx, first.ID, 10*time.Millisecond); err != nil || st.State != api.StateDone {
		t.Fatalf("deduped job did not finish: %v / %+v", err, st)
	}
}
