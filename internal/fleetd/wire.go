package fleetd

import (
	"bytes"
	"fmt"

	"repro/internal/fleet"
	"repro/internal/wire"
)

// Binary checkpoint encoding (internal/wire format, DESIGN.md §11).
// A binary checkpoint file is the 8-byte stream header followed by one
// CKP1 frame whose payload opens with a CRC-32C over the rest — the
// same torn-write detection the JSON envelope provides, moved into the
// binary layer. Spec and Report travel as their exact submitted JSON
// bytes (the daemon's cache key and the report fingerprint are
// functions of those bytes), and each shard outcome is a nested JOC1
// frame, so fingerprints survive a round trip through either store
// format bit-identically.

// MarshalCheckpointSize returns the encoded size of rec's file image.
func MarshalCheckpointSize(rec *Record) int {
	n := wire.HeaderSize + wire.FrameHeaderSize + 4 +
		wire.UvarintSize(uint64(checkpointVersion)) +
		wire.StringSize(rec.ID) +
		wire.StringSize(rec.State) +
		wire.BytesSize(rec.Spec) +
		wire.UvarintSize(uint64(len(rec.Outcomes)))
	for i := range rec.Outcomes {
		n += fleet.MarshalJobOutcomeSize(&rec.Outcomes[i])
	}
	n += wire.StringSize(rec.Fingerprint) +
		wire.BytesSize(rec.Report) +
		wire.StringSize(rec.Error)
	return n
}

// AppendCheckpoint appends rec's complete binary file image (header +
// CKP1 frame) to dst. The record's Version field is ignored: binary
// checkpoints always write the current schema version, mirroring
// CheckpointStore.Write.
func AppendCheckpoint(dst []byte, rec *Record) []byte {
	dst = wire.AppendHeader(dst)
	start := len(dst)
	dst = wire.BeginFrame(dst, wire.TagCheckpoint)
	crcAt := len(dst)
	dst = wire.AppendU32(dst, 0) // CRC backfilled below
	dst = wire.AppendUvarint(dst, uint64(checkpointVersion))
	dst = wire.AppendString(dst, rec.ID)
	dst = wire.AppendString(dst, rec.State)
	dst = wire.AppendBytes(dst, rec.Spec)
	dst = wire.AppendUvarint(dst, uint64(len(rec.Outcomes)))
	for i := range rec.Outcomes {
		dst = fleet.AppendJobOutcome(dst, &rec.Outcomes[i])
	}
	dst = wire.AppendString(dst, rec.Fingerprint)
	dst = wire.AppendBytes(dst, rec.Report)
	dst = wire.AppendString(dst, rec.Error)
	crc := wire.Checksum(dst[crcAt+4:])
	dst[crcAt] = byte(crc)
	dst[crcAt+1] = byte(crc >> 8)
	dst[crcAt+2] = byte(crc >> 16)
	dst[crcAt+3] = byte(crc >> 24)
	return wire.EndFrame(dst, start)
}

// MarshalCheckpoint encodes rec into buf, which must be at least
// MarshalCheckpointSize(rec) long; it returns the bytes written.
func MarshalCheckpoint(buf []byte, rec *Record) (int, error) {
	size := MarshalCheckpointSize(rec)
	if len(buf) < size {
		return 0, fmt.Errorf("%w: checkpoint needs %d bytes, buffer holds %d", wire.ErrShortBuffer, size, len(buf))
	}
	return len(AppendCheckpoint(buf[:0], rec)), nil
}

// UnmarshalCheckpoint parses a complete binary checkpoint file image,
// verifying the header, frame, and CRC. Hostile input returns
// wire-sentinel errors; it never panics.
func UnmarshalCheckpoint(data []byte) (Record, error) {
	var rec Record
	h, err := wire.ConsumeHeader(data)
	if err != nil {
		return rec, err
	}
	tag, payload, n, err := wire.ConsumeFrame(data[h:])
	if err != nil {
		return rec, err
	}
	if tag != wire.TagCheckpoint {
		return rec, fmt.Errorf("%w: %s, want %s", wire.ErrUnknownTag, tag, wire.TagCheckpoint)
	}
	if h+n != len(data) {
		return rec, fmt.Errorf("%w: %d trailing bytes after checkpoint frame", wire.ErrMalformed, len(data)-h-n)
	}
	crc, off, err := wire.ConsumeU32(payload)
	if err != nil {
		return rec, err
	}
	if got := wire.Checksum(payload[off:]); got != crc {
		return rec, fmt.Errorf("%w: checkpoint crc %08x, content is %08x", wire.ErrMalformed, crc, got)
	}
	version, m, err := wire.ConsumeUvarint(payload[off:])
	if err != nil {
		return rec, err
	}
	off += m
	if version != checkpointVersion {
		return rec, fmt.Errorf("%w: checkpoint schema version %d, this build reads %d", wire.ErrMalformed, version, checkpointVersion)
	}
	rec.Version = int(version)
	if rec.ID, m, err = wire.ConsumeString(payload[off:]); err != nil {
		return Record{}, err
	}
	off += m
	if rec.State, m, err = wire.ConsumeString(payload[off:]); err != nil {
		return Record{}, err
	}
	off += m
	spec, m, err := wire.ConsumeBytes(payload[off:])
	if err != nil {
		return Record{}, err
	}
	off += m
	rec.Spec = spec
	count, m, err := wire.ConsumeUvarint(payload[off:])
	if err != nil {
		return Record{}, err
	}
	off += m
	if count > uint64(len(payload)-off)/uint64(wire.FrameHeaderSize) {
		return Record{}, fmt.Errorf("%w: %d outcomes with %d bytes remaining", wire.ErrTruncated, count, len(payload)-off)
	}
	if count > 0 {
		rec.Outcomes = make([]fleet.JobOutcome, count)
		for i := uint64(0); i < count; i++ {
			m, err := fleet.UnmarshalJobOutcome(payload[off:], &rec.Outcomes[i])
			if err != nil {
				return Record{}, err
			}
			off += m
		}
	}
	if rec.Fingerprint, m, err = wire.ConsumeString(payload[off:]); err != nil {
		return Record{}, err
	}
	off += m
	report, m, err := wire.ConsumeBytes(payload[off:])
	if err != nil {
		return Record{}, err
	}
	off += m
	rec.Report = report
	if rec.Error, m, err = wire.ConsumeString(payload[off:]); err != nil {
		return Record{}, err
	}
	off += m
	if off != len(payload) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes in checkpoint payload", wire.ErrMalformed, len(payload)-off)
	}
	return rec, nil
}

// binaryCheckpoint reports whether a checkpoint file's bytes are in
// the binary wire format (vs. the JSON envelope) — dispatch is by
// content, not file name, so a renamed file still decodes.
func binaryCheckpoint(data []byte) bool {
	return len(data) >= 4 && bytes.HasPrefix(data, []byte("ARWB"))
}
