package fleetd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fleet"
)

// Checkpointed resume. While a job runs, the daemon accumulates its
// deterministic shard outcomes (status ok or failed — the statuses a
// resumed pool may preload) and periodically writes an atomic snapshot
// to <dir>/<id>.ckpt.json. A daemon killed mid-sweep therefore
// restarts, reloads the directory, and finishes interrupted jobs
// without recomputing done shards; finished jobs persist their full
// report so restarts also repopulate the response cache.

// checkpointVersion guards the on-disk schema.
const checkpointVersion = 1

// ckptSuffix names checkpoint files; anything else in the directory is
// ignored.
const ckptSuffix = ".ckpt.json"

// Record is the on-disk form of one job's checkpoint.
type Record struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	// State is queued, running, or done (cancelled jobs delete their
	// checkpoint instead — an operator abort should not resurrect).
	State string `json:"state"`
	// Spec is the submitted fleet spec, verbatim, so a restarted
	// daemon can rebuild and re-run the job list.
	Spec json.RawMessage `json:"spec"`
	// Outcomes are the deterministic shard results completed so far
	// (state running), or empty (queued), or complete (done).
	Outcomes []fleet.JobOutcome `json:"outcomes,omitempty"`
	// Fingerprint and Report are set once the job is done.
	Fingerprint string          `json:"fingerprint,omitempty"`
	Report      json.RawMessage `json:"report,omitempty"`
	// Error preserves a failed job's description across restarts.
	Error string `json:"error,omitempty"`
}

// CheckpointStore reads and writes job checkpoints in one directory.
// A nil store is valid and makes every operation a no-op, so the
// daemon runs fine with checkpointing disabled.
type CheckpointStore struct {
	dir string
}

// NewCheckpointStore opens (creating if needed) the checkpoint
// directory; dir == "" disables checkpointing and returns nil.
func NewCheckpointStore(dir string) (*CheckpointStore, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleetd: checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// path returns the checkpoint file for a job id.
func (s *CheckpointStore) path(id string) string {
	return filepath.Join(s.dir, id+ckptSuffix)
}

// Write persists a record atomically: the JSON is written to a
// temporary file in the same directory and renamed over the target, so
// a crash mid-write never leaves a torn checkpoint.
func (s *CheckpointStore) Write(rec Record) error {
	if s == nil {
		return nil
	}
	rec.Version = checkpointVersion
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleetd: marshal checkpoint %s: %w", rec.ID, err)
	}
	tmp := s.path(rec.ID) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("fleetd: write checkpoint %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp, s.path(rec.ID)); err != nil {
		return fmt.Errorf("fleetd: commit checkpoint %s: %w", rec.ID, err)
	}
	return nil
}

// Remove deletes a job's checkpoint (used when a job is cancelled).
func (s *CheckpointStore) Remove(id string) error {
	if s == nil {
		return nil
	}
	err := os.Remove(s.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Load reads every checkpoint in the directory, sorted by job ID so a
// restarted daemon re-queues interrupted jobs in their original
// submission order. Unreadable or foreign-version files are skipped
// with their errors collected, never fatal — one corrupt checkpoint
// must not block the rest of the fleet from resuming.
func (s *CheckpointStore) Load() ([]Record, []error) {
	if s == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, []error{fmt.Errorf("fleetd: read checkpoint dir: %w", err)}
	}
	var recs []Record
	var errs []error
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			errs = append(errs, fmt.Errorf("fleetd: checkpoint %s: %w", name, err))
			continue
		}
		if rec.Version != checkpointVersion {
			errs = append(errs, fmt.Errorf("fleetd: checkpoint %s: unsupported version %d", name, rec.Version))
			continue
		}
		if rec.ID == "" {
			errs = append(errs, fmt.Errorf("fleetd: checkpoint %s: missing id", name))
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, errs
}

// checkpointer accumulates one running job's deterministic shard
// outcomes; it implements fleet.Observer so workers feed it directly.
// flush() writes a snapshot when (and only when) new outcomes arrived
// since the last write, keeping the periodic ticker cheap.
type checkpointer struct {
	store *CheckpointStore
	id    string
	spec  json.RawMessage

	mu       sync.Mutex
	outcomes []fleet.JobOutcome
	dirty    bool
}

// newCheckpointer seeds the accumulator with outcomes preloaded from a
// previous checkpoint, so a resumed job's next snapshot is complete.
func newCheckpointer(store *CheckpointStore, id string, spec json.RawMessage, preloaded []fleet.JobOutcome) *checkpointer {
	return &checkpointer{
		store:    store,
		id:       id,
		spec:     spec,
		outcomes: append([]fleet.JobOutcome(nil), preloaded...),
	}
}

// JobStarted implements fleet.Observer.
func (c *checkpointer) JobStarted(fleet.JobInfo) {}

// JobFinished implements fleet.Observer: deterministic terminal
// outcomes (ok, failed) are recorded for resume; cancelled and
// timed-out shards are wall-clock artifacts and must recompute.
func (c *checkpointer) JobFinished(o fleet.JobOutcome) {
	if o.Status != fleet.StatusOK && o.Status != fleet.StatusFailed {
		return
	}
	c.mu.Lock()
	c.outcomes = append(c.outcomes, o)
	c.dirty = true
	c.mu.Unlock()
}

// snapshot returns the outcomes recorded so far, index-sorted so the
// on-disk record is independent of completion order.
func (c *checkpointer) snapshot() []fleet.JobOutcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]fleet.JobOutcome(nil), c.outcomes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// flush writes a running-state snapshot if anything changed since the
// last write (or always, when force is set — the drain path wants a
// final snapshot regardless).
func (c *checkpointer) flush(force bool) error {
	if c.store == nil {
		return nil
	}
	c.mu.Lock()
	if !c.dirty && !force {
		c.mu.Unlock()
		return nil
	}
	c.dirty = false
	c.mu.Unlock()
	return c.store.Write(Record{
		ID:       c.id,
		State:    StateRunningCkpt,
		Spec:     c.spec,
		Outcomes: c.snapshot(),
	})
}

// Checkpoint state names (distinct from the API job states only in
// that a checkpoint never records cancellation).
const (
	StateQueuedCkpt  = "queued"
	StateRunningCkpt = "running"
	StateDoneCkpt    = "done"
)
