package fleetd

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fleet"
)

// Checkpointed resume. While a job runs, the daemon accumulates its
// deterministic shard outcomes (status ok or failed — the statuses a
// resumed pool may preload) and periodically writes a crash-safe
// snapshot to <dir>/<id>.ckpt.json. A daemon killed mid-sweep
// therefore restarts, reloads the directory, and finishes interrupted
// jobs without recomputing done shards; finished jobs persist their
// full report so restarts also repopulate the response cache.
//
// Durability contract: Write stages the bytes in a temp file, fsyncs
// the file, renames it over the target, then fsyncs the directory —
// after Write returns, the checkpoint survives a machine crash, and a
// crash at any earlier point leaves the previous checkpoint intact.
// Records are wrapped in a CRC-tagged envelope; Load quarantines any
// file that fails to decode or whose CRC disagrees (renamed to
// <id>.corrupt, reported, never fatal) so one bad sector cannot block
// the rest of the fleet from resuming.

// checkpointVersion guards the on-disk schema. Version 2 wraps the
// record in a CRC32-C envelope; version-1 files (no envelope, no CRC)
// are still read.
const checkpointVersion = 2

// ckptSuffix names JSON checkpoint files and ckptBinSuffix their
// binary wire-format siblings; anything else in the directory is
// ignored.
const (
	ckptSuffix    = ".ckpt.json"
	ckptBinSuffix = ".ckpt.bin"
)

// Checkpoint store formats. JSON is the default debug-friendly store;
// binary is the wire-format store (same CRC protection, a fraction of
// the encode cost for outcome-heavy snapshots). Load reads both
// regardless of the configured write format, so a daemon can switch
// formats across a restart without losing resume state.
const (
	CheckpointJSON   = "json"
	CheckpointBinary = "binary"
)

// corruptSuffix is where Load quarantines files it cannot trust.
const corruptSuffix = ".corrupt"

// Record is the on-disk form of one job's checkpoint.
type Record struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	// State is queued, running, or done (cancelled jobs delete their
	// checkpoint instead — an operator abort should not resurrect).
	State string `json:"state"`
	// Spec is the submitted fleet spec, verbatim, so a restarted
	// daemon can rebuild and re-run the job list.
	Spec json.RawMessage `json:"spec"`
	// Outcomes are the deterministic shard results completed so far
	// (state running), or empty (queued), or complete (done).
	Outcomes []fleet.JobOutcome `json:"outcomes,omitempty"`
	// Fingerprint and Report are set once the job is done.
	Fingerprint string          `json:"fingerprint,omitempty"`
	Report      json.RawMessage `json:"report,omitempty"`
	// Error preserves a failed job's description across restarts.
	Error string `json:"error,omitempty"`
}

// envelope is the version-2 on-disk wrapper: the record's raw JSON
// plus a CRC32-C over exactly those bytes, so torn or bit-rotted
// checkpoints are detected instead of half-trusted.
type envelope struct {
	Version int             `json:"version"`
	CRC     string          `json:"crc"`
	Record  json.RawMessage `json:"record"`
}

// castagnoli is the CRC32-C table (hardware-accelerated on most CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcHex tags record bytes for the envelope.
func crcHex(b []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(b, castagnoli))
}

// Quarantine describes one checkpoint file Load refused to trust.
type Quarantine struct {
	// File is the original checkpoint file name (not path).
	File string `json:"file"`
	// MovedTo is the quarantine destination name, empty if the rename
	// itself failed (the file is left in place and skipped).
	MovedTo string `json:"moved_to,omitempty"`
	// Reason says why the file was rejected.
	Reason string `json:"reason"`
}

// RecoveryReport is Load's structured account of what it found:
// how many records loaded cleanly, which files were quarantined and
// why, and any directory-level errors. It replaces a bare error slice
// so operators (and tests) can distinguish "empty dir" from "ate a
// corrupt checkpoint" at a glance.
type RecoveryReport struct {
	// Loaded counts records decoded and CRC-verified.
	Loaded int `json:"loaded"`
	// Quarantined lists rejected files, in directory order.
	Quarantined []Quarantine `json:"quarantined,omitempty"`
	// Errors collects non-quarantine failures (unreadable dir or
	// files); these do not abort the load either.
	Errors []string `json:"errors,omitempty"`
}

// Clean reports whether the load saw no quarantines and no errors.
func (r RecoveryReport) Clean() bool {
	return len(r.Quarantined) == 0 && len(r.Errors) == 0
}

// String summarizes the report for logs.
func (r RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loaded %d checkpoint(s)", r.Loaded)
	for _, q := range r.Quarantined {
		dest := q.MovedTo
		if dest == "" {
			dest = "(left in place)"
		}
		fmt.Fprintf(&b, "; quarantined %s -> %s: %s", q.File, dest, q.Reason)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "; error: %s", e)
	}
	return b.String()
}

// CheckpointStore reads and writes job checkpoints in one directory.
// A nil store is valid and makes every operation a no-op, so the
// daemon runs fine with checkpointing disabled.
type CheckpointStore struct {
	dir string
	fs  FS
	// format selects the write encoding (CheckpointJSON when empty);
	// Load always reads both.
	format string
	// tmpSeq makes each write's staging file unique, so concurrent
	// writes for the same job (admission racing the first periodic
	// flush) never rename each other's temp file out from under them.
	tmpSeq atomic.Uint64
}

// NewCheckpointStore opens (creating if needed) the checkpoint
// directory on the real filesystem; dir == "" disables checkpointing
// and returns nil.
func NewCheckpointStore(dir string) (*CheckpointStore, error) {
	return NewCheckpointStoreFS(dir, OSFS())
}

// NewCheckpointStoreFS is NewCheckpointStore with an injected FS —
// the seam the chaos harness uses to put faults under every write.
func NewCheckpointStoreFS(dir string, fsys FS) (*CheckpointStore, error) {
	if dir == "" {
		return nil, nil
	}
	if fsys == nil {
		fsys = OSFS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleetd: checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir, fs: fsys}, nil
}

// SetFormat selects the write encoding; "" means CheckpointJSON. Safe
// on a nil (disabled) store.
func (s *CheckpointStore) SetFormat(format string) error {
	switch format {
	case "", CheckpointJSON, CheckpointBinary:
	default:
		return fmt.Errorf("fleetd: unknown checkpoint format %q (want %s or %s)", format, CheckpointJSON, CheckpointBinary)
	}
	if s != nil {
		s.format = format
	}
	return nil
}

// path returns the checkpoint file the configured format writes for a
// job id; sibling is the other format's file, which Write retires so a
// format switch never leaves two records for one job.
func (s *CheckpointStore) path(id string) (path, sibling string) {
	if s.format == CheckpointBinary {
		return filepath.Join(s.dir, id+ckptBinSuffix), filepath.Join(s.dir, id+ckptSuffix)
	}
	return filepath.Join(s.dir, id+ckptSuffix), filepath.Join(s.dir, id+ckptBinSuffix)
}

// Write persists a record crash-safely: marshal into the CRC envelope,
// stage in a temp file in the same directory, fsync the file, rename
// over the target, fsync the directory. A crash before the rename
// leaves the previous checkpoint; a crash after the directory sync
// leaves the new one; the CRC catches anything in between.
func (s *CheckpointStore) Write(rec Record) error {
	if s == nil {
		return nil
	}
	rec.Version = checkpointVersion
	var data []byte
	if s.format == CheckpointBinary {
		data = AppendCheckpoint(make([]byte, 0, MarshalCheckpointSize(&rec)), &rec)
	} else {
		raw, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("fleetd: marshal checkpoint %s: %w", rec.ID, err)
		}
		env, err := json.Marshal(envelope{Version: checkpointVersion, CRC: crcHex(raw), Record: raw})
		if err != nil {
			return fmt.Errorf("fleetd: marshal checkpoint envelope %s: %w", rec.ID, err)
		}
		data = append(env, '\n')
	}
	target, sibling := s.path(rec.ID)
	tmp := fmt.Sprintf("%s.%d.tmp", target, s.tmpSeq.Add(1))
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("fleetd: stage checkpoint %s: %w", rec.ID, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("fleetd: write checkpoint %s: %w", rec.ID, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fleetd: sync checkpoint %s: %w", rec.ID, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fleetd: close checkpoint %s: %w", rec.ID, err)
	}
	if err := s.fs.Rename(tmp, target); err != nil {
		return fmt.Errorf("fleetd: commit checkpoint %s: %w", rec.ID, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("fleetd: sync checkpoint dir for %s: %w", rec.ID, err)
	}
	// Retire the other format's file (best-effort) so a format switch
	// never leaves two live records for one job.
	_ = s.fs.Remove(sibling)
	return nil
}

// Remove deletes a job's checkpoint in both formats (used when a job
// is cancelled).
func (s *CheckpointStore) Remove(id string) error {
	if s == nil {
		return nil
	}
	target, sibling := s.path(id)
	err := s.fs.Remove(target)
	if os.IsNotExist(err) {
		err = nil
	}
	if serr := s.fs.Remove(sibling); serr != nil && !os.IsNotExist(serr) && err == nil {
		err = serr
	}
	return err
}

// Load reads every checkpoint in the directory, sorted by job ID so a
// restarted daemon re-queues interrupted jobs in their original
// submission order. Files that fail to decode or whose CRC disagrees
// are quarantined — renamed to <id>.corrupt and accounted for in the
// RecoveryReport — never fatal: one corrupt checkpoint must not block
// the rest of the fleet from resuming.
func (s *CheckpointStore) Load() ([]Record, RecoveryReport) {
	var report RecoveryReport
	if s == nil {
		return nil, report
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		report.Errors = append(report.Errors, fmt.Sprintf("read checkpoint dir: %v", err))
		return nil, report
	}
	var recs []Record
	seen := make(map[string]string) // job id -> file it loaded from
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || (!strings.HasSuffix(name, ckptSuffix) && !strings.HasSuffix(name, ckptBinSuffix)) {
			continue
		}
		data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			report.Errors = append(report.Errors, fmt.Sprintf("read %s: %v", name, err))
			continue
		}
		rec, reason := decodeCheckpoint(data)
		if reason != "" {
			report.Quarantined = append(report.Quarantined, s.quarantine(name, reason))
			continue
		}
		if prev, dup := seen[rec.ID]; dup {
			// Both formats present for one job (a crash between Write's
			// rename and its sibling cleanup): keep the first, flag the
			// other so operators know which file won.
			report.Errors = append(report.Errors, fmt.Sprintf("duplicate checkpoint for %s: kept %s, ignored %s", rec.ID, prev, name))
			continue
		}
		seen[rec.ID] = name
		recs = append(recs, rec)
		report.Loaded++
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, report
}

// decodeCheckpoint parses one checkpoint file. An empty reason means
// the record is trustworthy; otherwise reason says why it is not.
// Format dispatch is by content: binary files open with the wire
// magic, everything else parses as the JSON envelope.
func decodeCheckpoint(data []byte) (Record, string) {
	if binaryCheckpoint(data) {
		rec, err := UnmarshalCheckpoint(data)
		if err != nil {
			return Record{}, fmt.Sprintf("binary record undecodable: %v", err)
		}
		if rec.ID == "" {
			return Record{}, "binary record missing job id"
		}
		return rec, ""
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Record{}, fmt.Sprintf("undecodable: %v", err)
	}
	switch env.Version {
	case checkpointVersion:
		if got := crcHex(env.Record); got != env.CRC {
			return Record{}, fmt.Sprintf("crc mismatch: file says %s, content is %s", env.CRC, got)
		}
		var rec Record
		if err := json.Unmarshal(env.Record, &rec); err != nil {
			return Record{}, fmt.Sprintf("record undecodable: %v", err)
		}
		if rec.ID == "" {
			return Record{}, "missing job id"
		}
		return rec, ""
	case 1:
		// Legacy pre-envelope format: the whole file is the record.
		// No CRC to check; decode errors still quarantine.
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return Record{}, fmt.Sprintf("legacy record undecodable: %v", err)
		}
		if rec.ID == "" {
			return Record{}, "legacy record missing job id"
		}
		return rec, ""
	default:
		return Record{}, fmt.Sprintf("unsupported version %d", env.Version)
	}
}

// quarantine moves a rejected checkpoint aside as <id>.corrupt so the
// next load does not trip on it again; the bytes are preserved for
// post-mortem. If the rename fails the file stays put and is skipped.
func (s *CheckpointStore) quarantine(name, reason string) Quarantine {
	q := Quarantine{File: name, Reason: reason}
	base := strings.TrimSuffix(strings.TrimSuffix(name, ckptSuffix), ckptBinSuffix)
	dest := base + corruptSuffix
	if err := s.fs.Rename(filepath.Join(s.dir, name), filepath.Join(s.dir, dest)); err == nil {
		q.MovedTo = dest
	}
	return q
}

// checkpointer accumulates one running job's deterministic shard
// outcomes; it implements fleet.Observer so workers feed it directly.
// flush() writes a snapshot when (and only when) new outcomes arrived
// since the last write, keeping the periodic ticker cheap.
type checkpointer struct {
	store *CheckpointStore
	id    string
	spec  json.RawMessage
	// onWrite, when set, observes every write attempt's outcome — the
	// daemon hooks its degraded-mode accounting here so periodic
	// flushes double as recovery probes.
	onWrite func(error)

	mu       sync.Mutex
	outcomes []fleet.JobOutcome
	dirty    bool
}

// newCheckpointer seeds the accumulator with outcomes preloaded from a
// previous checkpoint, so a resumed job's next snapshot is complete.
func newCheckpointer(store *CheckpointStore, id string, spec json.RawMessage, preloaded []fleet.JobOutcome) *checkpointer {
	return &checkpointer{
		store:    store,
		id:       id,
		spec:     spec,
		outcomes: append([]fleet.JobOutcome(nil), preloaded...),
	}
}

// JobStarted implements fleet.Observer.
func (c *checkpointer) JobStarted(fleet.JobInfo) {}

// JobFinished implements fleet.Observer: deterministic terminal
// outcomes (ok, failed) are recorded for resume; cancelled and
// timed-out shards are wall-clock artifacts and must recompute.
func (c *checkpointer) JobFinished(o fleet.JobOutcome) {
	if o.Status != fleet.StatusOK && o.Status != fleet.StatusFailed {
		return
	}
	c.mu.Lock()
	c.outcomes = append(c.outcomes, o)
	c.dirty = true
	c.mu.Unlock()
}

// snapshot returns the outcomes recorded so far, index-sorted so the
// on-disk record is independent of completion order.
func (c *checkpointer) snapshot() []fleet.JobOutcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]fleet.JobOutcome(nil), c.outcomes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// flush writes a running-state snapshot if anything changed since the
// last write (or always, when force is set — the drain path wants a
// final snapshot regardless).
func (c *checkpointer) flush(force bool) error {
	if c.store == nil {
		return nil
	}
	c.mu.Lock()
	if !c.dirty && !force {
		c.mu.Unlock()
		return nil
	}
	c.dirty = false
	c.mu.Unlock()
	err := c.store.Write(Record{
		ID:       c.id,
		State:    StateRunningCkpt,
		Spec:     c.spec,
		Outcomes: c.snapshot(),
	})
	if c.onWrite != nil {
		c.onWrite(err)
	}
	return err
}

// Checkpoint state names (distinct from the API job states only in
// that a checkpoint never records cancellation).
const (
	StateQueuedCkpt  = "queued"
	StateRunningCkpt = "running"
	StateDoneCkpt    = "done"
)
