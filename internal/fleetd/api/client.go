package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a running arachnet-fleetd daemon. The zero value is
// not usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8040"). Streaming requests disable the client
// timeout; everything else uses a generous default.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// ErrBusy is returned by Submit when the daemon's admission queue is
// full; RetryAfter carries the server's suggested backoff.
type ErrBusy struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e ErrBusy) Error() string {
	return fmt.Sprintf("fleetd queue full; retry after %v", e.RetryAfter)
}

// decodeError turns a non-2xx response into an error.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("fleetd: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("fleetd: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

// Submit posts a fleet spec (the arachnet-fleet JSON schema) and
// returns the daemon's acknowledgement. A full queue yields ErrBusy.
func (c *Client) Submit(ctx context.Context, spec []byte) (SubmitResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(spec))
	if err != nil {
		return SubmitResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var sr SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return SubmitResponse{}, fmt.Errorf("fleetd: decode submit response: %w", err)
		}
		return sr, nil
	case http.StatusTooManyRequests:
		after := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return SubmitResponse{}, ErrBusy{RetryAfter: after}
	default:
		return SubmitResponse{}, decodeError(resp)
	}
}

// getJSON fetches path and decodes the 200 body into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Status fetches one job's lifecycle view.
func (c *Client) Status(ctx context.Context, id string) (StatusResponse, error) {
	var st StatusResponse
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// List enumerates all jobs known to the daemon.
func (c *Client) List(ctx context.Context) (ListResponse, error) {
	var lr ListResponse
	err := c.getJSON(ctx, "/v1/jobs", &lr)
	return lr, err
}

// Report fetches a finished job's full report and fingerprint.
func (c *Client) Report(ctx context.Context, id string) (ReportEnvelope, error) {
	var env ReportEnvelope
	err := c.getJSON(ctx, "/v1/jobs/"+id+"/report", &env)
	return env, err
}

// Health fetches the daemon's liveness/pressure view.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.getJSON(ctx, "/v1/healthz", &h)
	return h, err
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

// Stream follows a job's JSONL progress stream, invoking fn for each
// line until the stream ends (final "done" line included), fn returns
// an error, or ctx is cancelled. It returns the terminal line when the
// stream completed normally.
func (c *Client) Stream(ctx context.Context, id string, fn func(StreamLine) error) (StreamLine, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return StreamLine{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return StreamLine{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return StreamLine{}, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var last StreamLine
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line StreamLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return last, fmt.Errorf("fleetd: decode stream line: %w", err)
		}
		if fn != nil {
			if err := fn(line); err != nil {
				return last, err
			}
		}
		last = line
		if line.Type == StreamDone {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, errors.New("fleetd: stream ended without a done line")
}

// Wait polls until the job reaches a terminal state, checking every
// poll interval (default 100ms when zero).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (StatusResponse, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
