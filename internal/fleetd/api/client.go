package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// Client talks to a running arachnet-fleetd daemon. The zero value is
// not usable; construct with NewClient. The bare client (no options)
// performs each call exactly once; WithRetry turns on the resilience
// layer: transient transport failures and 5xx responses retry with
// seeded backoff, 429 responses honor the server's Retry-After, an
// optional circuit breaker fails fast during outages, and interrupted
// progress streams reconnect at their last event sequence number.
type Client struct {
	base    string
	http    *http.Client
	clock   resilience.Clock
	policy  *resilience.Policy
	seed    uint64
	breaker *resilience.Breaker
	// streamFormat selects the /stream encoding ("" means JSONL).
	streamFormat string

	retries atomic.Uint64
}

// Option configures a Client.
type Option func(*Client)

// WithTransport substitutes the HTTP transport — the seam the chaos
// harness uses to inject deterministic connection failures.
func WithTransport(rt http.RoundTripper) Option {
	return func(c *Client) { c.http.Transport = rt }
}

// WithHTTPClient substitutes the entire HTTP client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) {
		if h != nil {
			c.http = h
		}
	}
}

// WithClock substitutes the clock backoff waits go through; tests pass
// a resilience.FakeClock so retry schedules elapse instantly.
func WithClock(clock resilience.Clock) Option {
	return func(c *Client) { c.clock = clock }
}

// WithRetry enables retries under the given policy. The schedule is a
// pure function of (policy, seed, attempt), so a chaos run replays
// bit-identically from its seed.
func WithRetry(p resilience.Policy, seed uint64) Option {
	return func(c *Client) {
		c.policy = &p
		c.seed = seed
	}
}

// WithBreaker adds a circuit breaker in front of every call (only
// meaningful together with WithRetry; a bare call still consults it).
func WithBreaker(cfg resilience.BreakerConfig) Option {
	return func(c *Client) { c.breaker = resilience.NewBreaker(cfg, c.clock) }
}

// WithStreamFormat selects the /stream transfer encoding:
// StreamFormatJSONL (the default) or StreamFormatBinary. The callback
// surface is identical either way — Stream still delivers StreamLine
// values — only the bytes on the wire change.
func WithStreamFormat(format string) Option {
	return func(c *Client) {
		if format == StreamFormatJSONL {
			format = "" // the default; keep URLs minimal
		}
		c.streamFormat = format
	}
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8040"). Streaming requests disable the client
// timeout; everything else uses a generous default. With no options
// the client is bare: one attempt per call, errors surfaced as-is.
func NewClient(base string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		http:  &http.Client{},
		clock: resilience.Real(),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Base returns the daemon base URL this client talks to.
func (c *Client) Base() string { return c.base }

// Retries reports how many retry waits this client has performed —
// the number fleetd-smoke asserts is non-zero under a flaky transport.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// BreakerTrips reports how often the client's breaker opened (0
// without WithBreaker).
func (c *Client) BreakerTrips() uint64 {
	if c.breaker == nil {
		return 0
	}
	return c.breaker.Trips()
}

// ErrBusy is returned by Submit when the daemon's admission queue is
// full; RetryAfter carries the server's suggested backoff and Message
// the server's own description of the pressure.
type ErrBusy struct {
	RetryAfter time.Duration
	// Message is the server's error body (e.g. "job queue full (64
	// deep); retry later"), empty if the body carried none.
	Message string
}

// Error implements error.
func (e ErrBusy) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("fleetd busy: %s (retry after %v)", e.Message, e.RetryAfter)
	}
	return fmt.Sprintf("fleetd queue full; retry after %v", e.RetryAfter)
}

// ResilienceClass classifies backpressure as busy, never as an outage.
func (e ErrBusy) ResilienceClass() resilience.Class { return resilience.ClassBusy }

// HTTPError is a non-2xx response, normalized: the status code plus
// the server's error message (decoded from the standard error body
// when present, raw body text otherwise).
type HTTPError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("fleetd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// ResilienceClass maps server errors (5xx) to retryable and client
// errors (4xx) to fatal.
func (e *HTTPError) ResilienceClass() resilience.Class {
	if e.StatusCode >= 500 {
		return resilience.ClassRetryable
	}
	return resilience.ClassFatal
}

// closeBody drains and closes a response body so the underlying
// connection is always reusable, error paths included.
func closeBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// decodeError turns a non-2xx response into an *HTTPError, surfacing
// the server's message.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	var e ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	if msg == "" {
		msg = http.StatusText(resp.StatusCode)
	}
	return &HTTPError{StatusCode: resp.StatusCode, Message: msg}
}

// retryAfterOf parses a Retry-After header (seconds), defaulting to 1s.
func retryAfterOf(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return time.Second
}

// classifyTransport marks errors for the retry runner: transport
// failures are retryable, busy errors carry their Retry-After hint,
// HTTP errors classify themselves, context errors stay fatal.
func classifyTransport(err error) error {
	if err == nil {
		return nil
	}
	var busy ErrBusy
	if errors.As(err, &busy) {
		return resilience.MarkBusy(err, busy.RetryAfter)
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return err // self-classifying
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Anything else from the HTTP client is a transport-level failure:
	// connection refused, reset, torn body. Retryable.
	return resilience.MarkRetryable(err)
}

// run executes op through the retry layer when one is configured, or
// directly (one attempt, unwrapped errors) on a bare client.
func (c *Client) run(ctx context.Context, op func(ctx context.Context) error) error {
	if c.policy == nil {
		if c.breaker != nil {
			if err := c.breaker.Allow(); err != nil {
				return err
			}
			err := op(ctx)
			if err != nil && resilience.Classify(classifyTransport(err)) == resilience.ClassBusy {
				c.breaker.Record(nil) // backpressure is not an outage
			} else {
				c.breaker.Record(err)
			}
			return err
		}
		return op(ctx)
	}
	r := resilience.Runner{
		Policy:  *c.policy,
		Seed:    c.seed,
		Clock:   c.clock,
		Breaker: c.breaker,
		OnRetry: func(int, time.Duration, error) { c.retries.Add(1) },
	}
	err := r.Do(ctx, func(ctx context.Context) error {
		return classifyTransport(op(ctx))
	})
	return resilience.Unmark(err)
}

// Submit posts a fleet spec (the arachnet-fleet JSON schema) and
// returns the daemon's acknowledgement. A full queue yields ErrBusy
// (after the configured retries, when any, each honoring Retry-After).
func (c *Client) Submit(ctx context.Context, spec []byte) (SubmitResponse, error) {
	var sr SubmitResponse
	err := c.run(ctx, func(ctx context.Context) error {
		var err error
		sr, err = c.submitOnce(ctx, spec)
		return err
	})
	return sr, err
}

// submitOnce is one submission attempt.
func (c *Client) submitOnce(ctx context.Context, spec []byte) (SubmitResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(spec))
	if err != nil {
		return SubmitResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	defer closeBody(resp)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var sr SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return SubmitResponse{}, fmt.Errorf("fleetd: decode submit response: %w", err)
		}
		return sr, nil
	case http.StatusTooManyRequests:
		after := retryAfterOf(resp)
		busy := ErrBusy{RetryAfter: after}
		var he *HTTPError
		if err := decodeError(resp); errors.As(err, &he) {
			busy.Message = he.Message
		}
		return SubmitResponse{}, busy
	default:
		return SubmitResponse{}, decodeError(resp)
	}
}

// getJSON fetches path and decodes the 200 body into out, through the
// retry layer.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	return c.run(ctx, func(ctx context.Context) error {
		return c.getJSONOnce(ctx, path, out)
	})
}

// getJSONOnce is one GET attempt.
func (c *Client) getJSONOnce(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer closeBody(resp)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Status fetches one job's lifecycle view.
func (c *Client) Status(ctx context.Context, id string) (StatusResponse, error) {
	var st StatusResponse
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// List enumerates all jobs known to the daemon.
func (c *Client) List(ctx context.Context) (ListResponse, error) {
	var lr ListResponse
	err := c.getJSON(ctx, "/v1/jobs", &lr)
	return lr, err
}

// Report fetches a finished job's full report and fingerprint.
func (c *Client) Report(ctx context.Context, id string) (ReportEnvelope, error) {
	var env ReportEnvelope
	err := c.getJSON(ctx, "/v1/jobs/"+id+"/report", &env)
	return env, err
}

// Health fetches the daemon's liveness/pressure view.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.getJSON(ctx, "/v1/healthz", &h)
	return h, err
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.run(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer closeBody(resp)
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		return nil
	})
}

// streamState threads resume progress through stream attempts: the
// last event sequence seen (the reconnect offset) and whether the
// opening status line was already delivered to fn.
type streamState struct {
	lastSeq   uint64
	sawStatus bool
	dropped   uint64
}

// Stream follows a job's JSONL progress stream, invoking fn for each
// line until the stream ends (final "done" line included), fn returns
// an error, or ctx is cancelled. With retries configured, a transport
// failure mid-stream reconnects at ?after=<last seq> — the server
// replays only newer events, so fn sees every event exactly once and
// in order even across reconnects. It returns the terminal line when
// the stream completed normally.
func (c *Client) Stream(ctx context.Context, id string, fn func(StreamLine) error) (StreamLine, error) {
	var st streamState
	var last StreamLine
	var userErr error
	err := c.run(ctx, func(ctx context.Context) error {
		l, err := c.streamOnce(ctx, id, &st, func(line StreamLine) error {
			if fn == nil {
				return nil
			}
			if err := fn(line); err != nil {
				userErr = err
				return err
			}
			return nil
		})
		if err == nil {
			last = l
		}
		if userErr != nil {
			// fn's own error must not be retried or reclassified.
			return resilience.MarkFatal(userErr)
		}
		return err
	})
	if userErr != nil {
		return last, userErr
	}
	return last, err
}

// deliver folds one received line into the resume state and hands it
// to fn — the dedupe/resume bookkeeping shared by the JSONL and binary
// stream decoders. It returns the terminal line (non-nil) once the
// stream is complete; a nil terminal with nil error means keep
// reading.
func (st *streamState) deliver(line StreamLine, fn func(StreamLine) error) (*StreamLine, error) {
	switch line.Type {
	case StreamStatus:
		// Reconnects open with a fresh status snapshot; fn sees only
		// the first so its line sequence reads like one uninterrupted
		// stream.
		if st.sawStatus {
			return nil, nil
		}
		st.sawStatus = true
	case StreamEvent:
		if line.Seq != 0 {
			if line.Seq <= st.lastSeq {
				return nil, nil // replayed duplicate
			}
			st.lastSeq = line.Seq
		}
	case StreamDone:
		// Fold drops accumulated on earlier connections into the
		// terminal line the caller keeps.
		line.Dropped += st.dropped
		return &line, fn(line)
	}
	if line.Dropped > 0 {
		st.dropped += line.Dropped
	}
	return nil, fn(line)
}

// streamOnce runs one stream connection, resuming after st.lastSeq.
func (c *Client) streamOnce(ctx context.Context, id string, st *streamState, fn func(StreamLine) error) (StreamLine, error) {
	path := c.base + "/v1/jobs/" + id + "/stream"
	sep := "?"
	if st.lastSeq > 0 {
		path += sep + "after=" + strconv.FormatUint(st.lastSeq, 10)
		sep = "&"
	}
	if c.streamFormat != "" {
		path += sep + "format=" + c.streamFormat
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return StreamLine{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return StreamLine{}, err
	}
	defer closeBody(resp)
	if resp.StatusCode != http.StatusOK {
		return StreamLine{}, decodeError(resp)
	}

	if c.streamFormat == StreamFormatBinary {
		sr := NewStreamLineReader(resp.Body)
		for {
			var line StreamLine
			if err := sr.Read(&line); err != nil {
				if err == io.EOF {
					return StreamLine{}, errors.New("fleetd: stream ended without a done line")
				}
				return StreamLine{}, err
			}
			terminal, err := st.deliver(line, fn)
			if terminal != nil {
				return *terminal, err
			}
			if err != nil {
				return StreamLine{}, err
			}
		}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line StreamLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return StreamLine{}, fmt.Errorf("fleetd: decode stream line: %w", err)
		}
		terminal, err := st.deliver(line, fn)
		if terminal != nil {
			return *terminal, err
		}
		if err != nil {
			return StreamLine{}, err
		}
	}
	if err := sc.Err(); err != nil {
		return StreamLine{}, err
	}
	return StreamLine{}, errors.New("fleetd: stream ended without a done line")
}

// Wait polls until the job reaches a terminal state, checking every
// poll interval (default 100ms when zero). Each poll goes through the
// retry layer, so a briefly unreachable daemon does not abort a wait.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (StatusResponse, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
