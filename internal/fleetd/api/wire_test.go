package api

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
)

// streamFixtures is one line of each type, fields populated the way
// the server emits them.
func streamFixtures() []StreamLine {
	return []StreamLine{
		{
			Type: StreamStatus,
			Status: &StatusResponse{
				ID: "job-7", State: StateRunning, Done: 3, Total: 8,
				Resumed: 2, Reruns: 1, Cached: true,
				Fingerprint: "sha256:abc", Error: "",
			},
		},
		{
			Type: StreamEvent,
			Seq:  41,
			Event: &obs.Event{
				Kind: obs.KindJobStart, Job: 3, Seed: 42, Name: "sweep[3]",
			},
		},
		{
			Type: StreamDone, Seq: 97, State: StateDone,
			Fingerprint: "sha256:abc", Dropped: 5,
		},
		{
			Type: StreamDone, State: StateFailed, Error: "phy: carrier lost",
		},
	}
}

func TestStreamLineRoundTrip(t *testing.T) {
	for _, line := range streamFixtures() {
		line := line
		size, err := MarshalStreamLineSize(&line)
		if err != nil {
			t.Fatal(err)
		}
		data, err := AppendStreamLine(nil, &line)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != size {
			t.Fatalf("%s: size %d, wrote %d", line.Type, size, len(data))
		}

		buf := make([]byte, size)
		n, err := MarshalStreamLine(buf, &line)
		if err != nil || n != size {
			t.Fatalf("%s: MarshalStreamLine = (%d, %v)", line.Type, n, err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("%s: marshal image differs from append image", line.Type)
		}
		if _, err := MarshalStreamLine(make([]byte, size-1), &line); !errors.Is(err, wire.ErrShortBuffer) {
			t.Fatalf("%s: short buffer gave %v", line.Type, err)
		}

		var got StreamLine
		m, err := UnmarshalStreamLine(data, &got)
		if err != nil {
			t.Fatalf("%s: %v", line.Type, err)
		}
		if m != len(data) {
			t.Fatalf("%s: consumed %d of %d bytes", line.Type, m, len(data))
		}
		if !reflect.DeepEqual(got, line) {
			t.Fatalf("%s round trip mismatch:\n got %+v\nwant %+v", line.Type, got, line)
		}
	}
}

func TestStreamLineHostileInput(t *testing.T) {
	// Encoding refuses inconsistent lines rather than writing garbage.
	for _, bad := range []StreamLine{
		{Type: StreamStatus},        // status line without status
		{Type: StreamEvent, Seq: 1}, // event line without event
		{Type: "telepathy"},         // unknown type
	} {
		if _, err := MarshalStreamLineSize(&bad); !errors.Is(err, wire.ErrMalformed) {
			t.Fatalf("size of %+v: got %v, want ErrMalformed", bad, err)
		}
		if _, err := AppendStreamLine(nil, &bad); !errors.Is(err, wire.ErrMalformed) {
			t.Fatalf("append of %+v: got %v, want ErrMalformed", bad, err)
		}
	}

	for _, line := range streamFixtures() {
		line := line
		data, err := AppendStreamLine(nil, &line)
		if err != nil {
			t.Fatal(err)
		}
		// Every truncation point errors, never panics.
		var got StreamLine
		for cut := 0; cut < len(data); cut++ {
			if _, err := UnmarshalStreamLine(data[:cut], &got); err == nil {
				t.Fatalf("%s truncated at %d/%d decoded successfully", line.Type, cut, len(data))
			}
		}
		// Junk inside the frame: bump the declared length and append a
		// byte — the payload now has trailing garbage.
		junk := append([]byte(nil), data...)
		junk[4]++ // low byte of the u32 frame length
		junk = append(junk, 0xFF)
		if _, err := UnmarshalStreamLine(junk, &got); err == nil {
			t.Fatalf("%s with in-frame trailing junk decoded successfully", line.Type)
		}
	}

	// A non-stream tag refuses with ErrUnknownTag.
	var got StreamLine
	ckpt := wire.AppendFrame(nil, wire.TagCheckpoint, []byte("nope"))
	if _, err := UnmarshalStreamLine(ckpt, &got); !errors.Is(err, wire.ErrUnknownTag) {
		t.Fatalf("checkpoint tag: got %v, want ErrUnknownTag", err)
	}

	// A cached flag that is neither 0 nor 1 is malformed. The flag
	// sits after ID, State and the four varint counters.
	status := streamFixtures()[0]
	data, err := AppendStreamLine(nil, &status)
	if err != nil {
		t.Fatal(err)
	}
	st := status.Status
	flagAt := wire.FrameHeaderSize + wire.StringSize(st.ID) + wire.StringSize(st.State) +
		wire.VarintSize(int64(st.Done)) + wire.VarintSize(int64(st.Total)) +
		wire.VarintSize(int64(st.Resumed)) + wire.VarintSize(int64(st.Reruns))
	if data[flagAt] != 1 {
		t.Fatalf("fixture layout changed: byte at %d is %d, want cached flag 1", flagAt, data[flagAt])
	}
	data[flagAt] = 99
	if _, err := UnmarshalStreamLine(data, &got); !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("cached flag 99: got %v, want ErrMalformed", err)
	}
}

// TestStreamLineReader decodes a whole binary stream — header then one
// frame per line — and checks clean-EOF vs truncation behavior.
func TestStreamLineReader(t *testing.T) {
	lines := streamFixtures()[:3]
	stream := wire.AppendHeader(nil)
	for i := range lines {
		var err error
		stream, err = AppendStreamLine(stream, &lines[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	sr := NewStreamLineReader(bytes.NewReader(stream))
	var got []StreamLine
	for {
		var line StreamLine
		err := sr.Read(&line)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, line)
	}
	if !reflect.DeepEqual(got, lines) {
		t.Fatalf("stream decode mismatch:\n got %+v\nwant %+v", got, lines)
	}

	// A stream cut mid-frame must surface an error, not silent EOF.
	sr = NewStreamLineReader(bytes.NewReader(stream[:len(stream)-3]))
	var sawErr error
	for {
		var line StreamLine
		if err := sr.Read(&line); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == io.EOF || !errors.Is(sawErr, wire.ErrTruncated) {
		t.Fatalf("truncated stream gave %v, want ErrTruncated", sawErr)
	}

	// Garbage in place of the header refuses immediately.
	sr = NewStreamLineReader(bytes.NewReader([]byte("HTTP/1.1 200 OK\r\n")))
	var line StreamLine
	if err := sr.Read(&line); !errors.Is(err, wire.ErrBadHeader) {
		t.Fatalf("garbage stream gave %v, want ErrBadHeader", err)
	}
}
