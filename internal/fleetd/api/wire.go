package api

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Binary stream encoding (internal/wire format, DESIGN.md §11) for
// GET /v1/jobs/{id}/stream?format=binary. The stream is the 8-byte
// wire header followed by one frame per line: SST1 for the opening
// status snapshot, SEV1 per sequenced event (the obs event rides as a
// nested frame), SDN1 for the terminal line. Sequence numbers are the
// same 1-based event-log positions the JSONL stream carries, so
// ?after=<seq> resume works identically in both formats.

// MarshalStreamLineSize returns the encoded size of line's frame.
func MarshalStreamLineSize(line *StreamLine) (int, error) {
	switch line.Type {
	case StreamStatus:
		st := line.Status
		if st == nil {
			return 0, fmt.Errorf("%w: status line without status", wire.ErrMalformed)
		}
		return wire.FrameHeaderSize + wire.StringSize(st.ID) + wire.StringSize(st.State) +
			wire.VarintSize(int64(st.Done)) + wire.VarintSize(int64(st.Total)) +
			wire.VarintSize(int64(st.Resumed)) + wire.VarintSize(int64(st.Reruns)) +
			1 + wire.StringSize(st.Fingerprint) + wire.StringSize(st.Error), nil
	case StreamEvent:
		if line.Event == nil {
			return 0, fmt.Errorf("%w: event line without event", wire.ErrMalformed)
		}
		return wire.FrameHeaderSize + wire.UvarintSize(line.Seq) + obs.MarshalEventSize(line.Event), nil
	case StreamDone:
		return wire.FrameHeaderSize + wire.UvarintSize(line.Seq) +
			wire.StringSize(line.State) + wire.StringSize(line.Fingerprint) +
			wire.StringSize(line.Error) + wire.UvarintSize(line.Dropped), nil
	default:
		return 0, fmt.Errorf("%w: stream line type %q", wire.ErrMalformed, line.Type)
	}
}

// AppendStreamLine appends line as one wire frame.
func AppendStreamLine(dst []byte, line *StreamLine) ([]byte, error) {
	switch line.Type {
	case StreamStatus:
		st := line.Status
		if st == nil {
			return dst, fmt.Errorf("%w: status line without status", wire.ErrMalformed)
		}
		start := len(dst)
		dst = wire.BeginFrame(dst, wire.TagStreamStatus)
		dst = wire.AppendString(dst, st.ID)
		dst = wire.AppendString(dst, st.State)
		dst = wire.AppendVarint(dst, int64(st.Done))
		dst = wire.AppendVarint(dst, int64(st.Total))
		dst = wire.AppendVarint(dst, int64(st.Resumed))
		dst = wire.AppendVarint(dst, int64(st.Reruns))
		if st.Cached {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = wire.AppendString(dst, st.Fingerprint)
		dst = wire.AppendString(dst, st.Error)
		return wire.EndFrame(dst, start), nil
	case StreamEvent:
		if line.Event == nil {
			return dst, fmt.Errorf("%w: event line without event", wire.ErrMalformed)
		}
		start := len(dst)
		dst = wire.BeginFrame(dst, wire.TagStreamEvent)
		dst = wire.AppendUvarint(dst, line.Seq)
		dst = obs.AppendEvent(dst, line.Event)
		return wire.EndFrame(dst, start), nil
	case StreamDone:
		start := len(dst)
		dst = wire.BeginFrame(dst, wire.TagStreamDone)
		dst = wire.AppendUvarint(dst, line.Seq)
		dst = wire.AppendString(dst, line.State)
		dst = wire.AppendString(dst, line.Fingerprint)
		dst = wire.AppendString(dst, line.Error)
		dst = wire.AppendUvarint(dst, line.Dropped)
		return wire.EndFrame(dst, start), nil
	default:
		return dst, fmt.Errorf("%w: stream line type %q", wire.ErrMalformed, line.Type)
	}
}

// MarshalStreamLine encodes line into buf, which must be at least
// MarshalStreamLineSize(line) long; it returns the bytes written.
func MarshalStreamLine(buf []byte, line *StreamLine) (int, error) {
	size, err := MarshalStreamLineSize(line)
	if err != nil {
		return 0, err
	}
	if len(buf) < size {
		return 0, fmt.Errorf("%w: stream line needs %d bytes, buffer holds %d", wire.ErrShortBuffer, size, len(buf))
	}
	out, err := AppendStreamLine(buf[:0], line)
	if err != nil {
		return 0, err
	}
	return len(out), nil
}

// UnmarshalStreamLine parses one stream-line frame from the front of
// buf into line (overwriting it completely) and returns the bytes
// consumed. Hostile input returns wire-sentinel errors; never panics.
func UnmarshalStreamLine(buf []byte, line *StreamLine) (int, error) {
	tag, payload, n, err := wire.ConsumeFrame(buf)
	if err != nil {
		return 0, err
	}
	*line = StreamLine{}
	off := 0
	switch tag {
	case wire.TagStreamStatus:
		line.Type = StreamStatus
		var st StatusResponse
		var m int
		if st.ID, m, err = wire.ConsumeString(payload[off:]); err != nil {
			return 0, err
		}
		off += m
		if st.State, m, err = wire.ConsumeString(payload[off:]); err != nil {
			return 0, err
		}
		off += m
		fields := []*int{&st.Done, &st.Total, &st.Resumed, &st.Reruns}
		for _, f := range fields {
			v, m, err := wire.ConsumeVarint(payload[off:])
			if err != nil {
				return 0, err
			}
			*f, off = int(v), off+m
		}
		if off >= len(payload) {
			return 0, fmt.Errorf("%w: status cached flag", wire.ErrTruncated)
		}
		switch payload[off] {
		case 0:
		case 1:
			st.Cached = true
		default:
			return 0, fmt.Errorf("%w: status cached flag %d", wire.ErrMalformed, payload[off])
		}
		off++
		if st.Fingerprint, m, err = wire.ConsumeString(payload[off:]); err != nil {
			return 0, err
		}
		off += m
		if st.Error, m, err = wire.ConsumeString(payload[off:]); err != nil {
			return 0, err
		}
		off += m
		line.Status = &st
	case wire.TagStreamEvent:
		line.Type = StreamEvent
		seq, m, err := wire.ConsumeUvarint(payload)
		if err != nil {
			return 0, err
		}
		off = m
		line.Seq = seq
		var ev obs.Event
		if m, err = obs.UnmarshalEvent(payload[off:], &ev); err != nil {
			return 0, err
		}
		off += m
		line.Event = &ev
	case wire.TagStreamDone:
		line.Type = StreamDone
		seq, m, err := wire.ConsumeUvarint(payload)
		if err != nil {
			return 0, err
		}
		off = m
		line.Seq = seq
		if line.State, m, err = wire.ConsumeString(payload[off:]); err != nil {
			return 0, err
		}
		off += m
		if line.Fingerprint, m, err = wire.ConsumeString(payload[off:]); err != nil {
			return 0, err
		}
		off += m
		if line.Error, m, err = wire.ConsumeString(payload[off:]); err != nil {
			return 0, err
		}
		off += m
		var dropped uint64
		if dropped, m, err = wire.ConsumeUvarint(payload[off:]); err != nil {
			return 0, err
		}
		off += m
		line.Dropped = dropped
	default:
		return 0, fmt.Errorf("%w: %s is not a stream line tag", wire.ErrUnknownTag, tag)
	}
	if off != len(payload) {
		return 0, fmt.Errorf("%w: %d trailing bytes in %s stream line", wire.ErrMalformed, len(payload)-off, line.Type)
	}
	return n, nil
}

// StreamLineReader decodes a binary progress stream: the wire header,
// then one frame per line.
type StreamLineReader struct {
	fr *wire.FrameReader
}

// NewStreamLineReader reads the binary stream from r.
func NewStreamLineReader(r io.Reader) *StreamLineReader {
	return &StreamLineReader{fr: wire.NewFrameReader(r)}
}

// Read parses the next stream line into line. It returns io.EOF at a
// clean stream end and a wire error for truncated or malformed input.
func (sr *StreamLineReader) Read(line *StreamLine) error {
	_, frame, err := sr.fr.Next()
	if err != nil {
		return err
	}
	_, err = UnmarshalStreamLine(frame, line)
	return err
}
