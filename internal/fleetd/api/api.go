// Package api holds the wire types (and a small client) shared by the
// arachnet-fleetd daemon, the arachnet-fleet -server submit mode, and
// external automation. The request body for a job submission is
// exactly the JSON fleet specification that the batch CLI accepts
// (arachnet/fleetjson.go), so a spec file works unchanged against
// either front end — and, because a run is a pure function of (spec,
// seed), both front ends produce the same report fingerprint.
package api

import (
	"repro/internal/fleet"
	"repro/internal/obs"
)

// Job states reported by the daemon. A job is terminal in StateDone,
// StateFailed or StateCancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// TerminalState reports whether a job in this state will change no
// further.
func TerminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// SubmitResponse acknowledges a job submission.
//
//	POST /v1/jobs            body: fleet spec JSON
//	  202 → accepted (queued)
//	  200 → response-cache hit: Cached is set and the report is
//	        already available under /v1/jobs/{id}/report
//	  429 → queue full; Retry-After carries the suggested backoff
//	  503 → daemon is draining
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Cached is set when the (canonicalized spec, seed) response cache
	// already held the report; no new work was enqueued.
	Cached bool `json:"cached,omitempty"`
	// Fingerprint is the report fingerprint, present on cache hits.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Jobs is the compiled per-vehicle job count of the spec.
	Jobs int `json:"jobs"`
}

// StatusResponse is one job's lifecycle view (GET /v1/jobs/{id}).
type StatusResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Done / Total count finished vs. compiled per-vehicle jobs.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Resumed counts shards restored from a checkpoint rather than
	// recomputed (non-zero only after a daemon restart).
	Resumed int `json:"resumed,omitempty"`
	// Reruns counts bounded automatic re-executions the daemon ran for
	// shards that failed with retryable (transient) errors.
	Reruns int `json:"reruns,omitempty"`
	// Cached marks a response-cache hit.
	Cached bool `json:"cached,omitempty"`
	// Fingerprint is set once the job is done.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Error describes a failed or cancelled job.
	Error string `json:"error,omitempty"`
}

// ListResponse enumerates jobs in submission order (GET /v1/jobs).
type ListResponse struct {
	Jobs []StatusResponse `json:"jobs"`
}

// ReportEnvelope wraps a finished job's full fleet report
// (GET /v1/jobs/{id}/report) together with its deterministic
// fingerprint, so clients need not recompute it.
type ReportEnvelope struct {
	ID          string        `json:"id"`
	Fingerprint string        `json:"fingerprint"`
	Cached      bool          `json:"cached,omitempty"`
	Report      *fleet.Report `json:"report"`
}

// Stream line types (GET /v1/jobs/{id}/stream, one JSON object per
// line). A stream opens with a "status" line, carries "event" lines
// while the job runs, and ends with a "done" line.
const (
	StreamStatus = "status"
	StreamEvent  = "event"
	StreamDone   = "done"
)

// Stream encodings (?format=...). JSONL is the default debug-friendly
// stream; binary is the wire format (api/wire.go) with identical
// sequence numbers, so ?after= resume offsets transfer between the
// two.
const (
	StreamFormatJSONL  = "jsonl"
	StreamFormatBinary = "binary"
)

// StreamLine is one JSONL record of a job's progress stream.
type StreamLine struct {
	Type string `json:"type"`
	// Seq is the event's position in the job's ordered event log
	// (1-based, event lines only). A client that reconnects passes
	// ?after=<last seq> and the server replays everything newer, so an
	// interrupted stream resumes without gaps or duplicates.
	Seq uint64 `json:"seq,omitempty"`
	// Status is the snapshot opening the stream.
	Status *StatusResponse `json:"status,omitempty"`
	// Event is a job lifecycle event (obs vocabulary: job_start /
	// job_finish per vehicle shard).
	Event *obs.Event `json:"event,omitempty"`
	// Dropped counts events this subscriber lost to the slow-reader
	// policy, reported on the final line.
	Dropped uint64 `json:"dropped,omitempty"`
	// Fingerprint / State / Error close the stream on the "done" line.
	Fingerprint string `json:"fingerprint,omitempty"`
	State       string `json:"state,omitempty"`
	Error       string `json:"error,omitempty"`
}

// HealthResponse is the daemon's liveness/pressure view (GET
// /v1/healthz).
type HealthResponse struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	// QueueDepth is the admission-control capacity.
	QueueDepth int `json:"queue_depth"`
	// CacheEntries / CacheHits describe the response cache.
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	// Degraded is set while the checkpoint directory is unwritable:
	// the daemon keeps serving cached reports and health, refuses
	// non-cached submissions, and recovers automatically once a
	// checkpoint write succeeds again.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReason is the write error that triggered degraded mode.
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Counters is the daemon's metrics registry (checkpoint writes and
	// errors, quarantines, shard reruns, degraded transitions, ...),
	// keys sorted by Go's map marshalling.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
