package fleetd

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/fleet"
)

// Response cache. A fleet run is a pure function of its spec and its
// master seed (the determinism regression tests pin exactly this), so
// the daemon can return a stored report for a re-submitted spec
// without recomputing anything — the fingerprint of a cache hit is
// bit-identical to a fresh run's. The key is the canonicalized spec
// (field order and whitespace normalized away) plus the effective
// seed, which the spec itself carries.

// CanonicalSpec normalizes a JSON fleet spec: object keys are sorted,
// whitespace is collapsed, and number literals are preserved verbatim
// (no float round-trip, so 64-bit seeds survive). Two specs that
// differ only in formatting or field order canonicalize identically.
func CanonicalSpec(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("fleetd: parse spec: %w", err)
	}
	// Trailing non-whitespace after the document would silently change
	// the key; reject it.
	if dec.More() {
		return nil, fmt.Errorf("fleetd: trailing data after spec document")
	}
	out, err := json.Marshal(v) // map keys marshal sorted; json.Number keeps its text
	if err != nil {
		return nil, fmt.Errorf("fleetd: canonicalize spec: %w", err)
	}
	return out, nil
}

// CacheKey derives the response-cache key for a raw spec: the hex
// SHA-256 of its canonical form. The master seed is a field of the
// spec, so it is covered by construction; differing seeds always miss.
func CacheKey(raw []byte) (string, error) {
	canon, err := CanonicalSpec(raw)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// CacheEntry is one stored response.
type CacheEntry struct {
	Fingerprint string
	Report      *fleet.Report
}

// Cache is a size-capped LRU over completed reports, safe for
// concurrent use by HTTP handlers and job runners.
type Cache struct {
	mu   sync.Mutex
	max  int
	ll   *list.List // front = most recently used; values are *cacheItem
	byID map[string]*list.Element
	hits uint64
}

type cacheItem struct {
	key   string
	entry CacheEntry
}

// NewCache returns a cache holding at most max entries; max <= 0
// disables storage (every lookup misses).
func NewCache(max int) *Cache {
	return &Cache{max: max, ll: list.New(), byID: make(map[string]*list.Element)}
}

// Get returns the entry for key, marking it most recently used.
func (c *Cache) Get(key string) (CacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[key]
	if !ok {
		return CacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheItem).entry, true
}

// Put stores an entry, evicting the least recently used once the cap
// is exceeded. Re-putting an existing key refreshes its entry.
func (c *Cache) Put(key string, e CacheEntry) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[key]; ok {
		el.Value.(*cacheItem).entry = e
		c.ll.MoveToFront(el)
		return
	}
	c.byID[key] = c.ll.PushFront(&cacheItem{key: key, entry: e})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byID, oldest.Value.(*cacheItem).key)
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits reports the lifetime hit count.
func (c *Cache) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
