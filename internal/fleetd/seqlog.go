package fleetd

import (
	"sync"

	"repro/internal/obs"
)

// eventLog is a per-job sequenced event journal backing /stream. Every
// lifecycle event gets a 1-based sequence number at append time; a
// subscriber reads forward from any offset, so a client whose stream
// connection died reconnects with ?after=<last seq> and receives
// exactly the events it missed — the resumable-stream half of the
// resilience contract. The log retains the most recent max events:
// an offset that has fallen behind the retained window reports the gap
// as a drop count instead of blocking or duplicating.
//
// It implements obs.Sink, so the fleet pool's tracer observer feeds it
// directly from worker goroutines.
type eventLog struct {
	mu     sync.Mutex
	max    int
	base   uint64 // sequence of events[0] minus 1 (seqs are 1-based)
	events []obs.Event
	closed bool
	wake   chan struct{} // closed and replaced on every append/Close
}

// newEventLog builds a log retaining at most max events (min 1).
func newEventLog(max int) *eventLog {
	if max < 1 {
		max = 1
	}
	return &eventLog{max: max, wake: make(chan struct{})}
}

// Emit implements obs.Sink.
func (l *eventLog) Emit(ev obs.Event) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.events = append(l.events, ev)
	if len(l.events) > l.max {
		drop := len(l.events) - l.max
		l.events = append(l.events[:0:0], l.events[drop:]...)
		l.base += uint64(drop)
	}
	w := l.wake
	l.wake = make(chan struct{})
	l.mu.Unlock()
	close(w)
}

// Close marks the log complete (the job reached a terminal state) and
// wakes every waiting reader. Safe to call more than once.
func (l *eventLog) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	w := l.wake
	l.mu.Unlock()
	close(w)
}

// since returns the retained events with sequence > after: the batch,
// the sequence of its first element, how many requested events fell
// behind the retention window (counted as drops), whether the log is
// closed, and a channel that signals the next append or close. An
// empty batch with closed=true means the stream is complete.
func (l *eventLog) since(after uint64) (evs []obs.Event, first uint64, dropped uint64, closed bool, wait <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lo := after
	if lo < l.base {
		dropped = l.base - lo
		lo = l.base
	}
	if idx := int(lo - l.base); idx < len(l.events) {
		evs = append([]obs.Event(nil), l.events[idx:]...)
		first = lo + 1
	}
	return evs, first, dropped, l.closed, l.wake
}
