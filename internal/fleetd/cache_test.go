package fleetd

import (
	"context"
	"fmt"
	"testing"

	"repro/arachnet"
	"repro/internal/fleet"
)

// TestCanonicalSpecIgnoresFormatting pins the canonicalization
// contract: field order and whitespace never affect the cache key.
func TestCanonicalSpecIgnoresFormatting(t *testing.T) {
	a := []byte(`{"seed": 7, "vehicles": [{"name": "v", "pattern": "c1", "slots": 1000}]}`)
	b := []byte(`{
		"vehicles": [ {"slots":1000,"pattern":"c1","name":"v"} ],
		"seed":7
	}`)
	ka, err := CacheKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := CacheKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("reordered/reformatted spec changed the key:\n%s\n%s", ka, kb)
	}
}

// TestCacheKeySeedSensitive: a differing master seed must miss — the
// run is a pure function of (spec, seed), and the seed lives in the
// spec.
func TestCacheKeySeedSensitive(t *testing.T) {
	k7, err := CacheKey([]byte(`{"seed": 7, "vehicles": [{"name": "v"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	k8, err := CacheKey([]byte(`{"seed": 8, "vehicles": [{"name": "v"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if k7 == k8 {
		t.Error("differing seeds produced the same cache key")
	}
}

// TestCanonicalSpecPreservesBigSeeds guards the number handling: a
// 64-bit seed above 2^53 must survive canonicalization verbatim (a
// float64 round-trip would corrupt it).
func TestCanonicalSpecPreservesBigSeeds(t *testing.T) {
	raw := []byte(`{"seed": 18446744073709551615, "vehicles": [{"name": "v"}]}`)
	canon, err := CanonicalSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := `"seed":18446744073709551615`
	if !containsStr(string(canon), want) {
		t.Errorf("canonical form lost the 64-bit seed: %s", canon)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCanonicalSpecRejectsGarbage: invalid JSON and trailing data are
// errors, not silent cache keys.
func TestCanonicalSpecRejectsGarbage(t *testing.T) {
	if _, err := CanonicalSpec([]byte(`{"seed": `)); err == nil {
		t.Error("truncated JSON canonicalized without error")
	}
	if _, err := CanonicalSpec([]byte(`{"seed": 1} trailing`)); err == nil {
		t.Error("trailing data canonicalized without error")
	}
}

// TestCacheHitBitIdentical runs a real fleet, stores its report, and
// checks the cache returns the same object with a bit-identical
// fingerprint.
func TestCacheHitBitIdentical(t *testing.T) {
	spec := []byte(`{"seed": 11, "workers": 2, "vehicles": [{"name": "v", "engine": "slots", "pattern": "c1", "slots": 2000, "replicate": 3}]}`)
	f, err := arachnet.UnmarshalFleetJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := arachnet.RunFleet(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache claimed a hit")
	}
	c.Put(key, CacheEntry{Fingerprint: rep.Fingerprint(), Report: rep})
	entry, ok := c.Get(key)
	if !ok {
		t.Fatal("stored report missed")
	}
	if entry.Fingerprint != rep.Fingerprint() {
		t.Errorf("cache fingerprint %s != run fingerprint %s", entry.Fingerprint, rep.Fingerprint())
	}
	if entry.Report.Fingerprint() != rep.Fingerprint() {
		t.Error("cached report re-fingerprints differently")
	}
	if c.Hits() != 1 {
		t.Errorf("hit counter = %d, want 1", c.Hits())
	}
}

// TestCacheEviction pins the LRU policy under a size cap: the least
// recently used entry goes first, and touching an entry protects it.
func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	put := func(i int) string {
		key := fmt.Sprintf("key-%d", i)
		c.Put(key, CacheEntry{Fingerprint: key, Report: &fleet.Report{}})
		return key
	}
	k0, k1 := put(0), put(1)
	if _, ok := c.Get(k0); !ok { // touch k0: k1 becomes LRU
		t.Fatal("k0 missing before eviction")
	}
	k2 := put(2) // cap 2: evicts k1
	if _, ok := c.Get(k1); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, k := range []string{k0, k2} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("recently used entry %s was evicted", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("cache len = %d, want 2", c.Len())
	}
	// A disabled cache stores nothing.
	d := NewCache(0)
	d.Put("x", CacheEntry{})
	if d.Len() != 0 {
		t.Error("zero-cap cache stored an entry")
	}
}
