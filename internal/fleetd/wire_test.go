package fleetd

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/wire"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire fixtures")

// checkpointFixture is a mid-run record with every field populated:
// two deterministic shard outcomes, a verbatim spec, and the
// finished-job fields so the done-state shape is covered too.
func checkpointFixture() Record {
	return Record{
		ID:    "job-000042",
		State: StateRunningCkpt,
		Spec:  []byte(`{"seed":42,"vehicles":[{"name":"sweep","slots":2000}]}`),
		Outcomes: []fleet.JobOutcome{
			{
				JobInfo: fleet.JobInfo{Index: 0, Name: "sweep[0]", Seed: 42},
				Status:  fleet.StatusOK,
				Result: fleet.Result{
					Metrics:  map[string]float64{"collision_ratio": 0.125, "settle_slots": 1834},
					Counters: map[string]uint64{"decoded": 1997, "collisions": 3},
				},
				Elapsed: 1234567 * time.Nanosecond,
			},
			{
				JobInfo: fleet.JobInfo{Index: 1, Name: "sweep[1]", Seed: 43},
				Status:  fleet.StatusFailed,
				Err:     "phy: carrier lost",
				Elapsed: -1,
			},
		},
		Fingerprint: "sha256:deadbeef",
		Report:      []byte(`{"ok":true}`),
		Error:       "",
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rec := checkpointFixture()
	size := MarshalCheckpointSize(&rec)
	data := AppendCheckpoint(nil, &rec)
	if len(data) != size {
		t.Fatalf("MarshalCheckpointSize = %d, AppendCheckpoint wrote %d", size, len(data))
	}

	// Exact-size buffer marshal must match the append image; a buffer
	// one byte short must refuse.
	buf := make([]byte, size)
	n, err := MarshalCheckpoint(buf, &rec)
	if err != nil || n != size {
		t.Fatalf("MarshalCheckpoint = (%d, %v), want (%d, nil)", n, err, size)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("MarshalCheckpoint image differs from AppendCheckpoint")
	}
	if _, err := MarshalCheckpoint(make([]byte, size-1), &rec); !errors.Is(err, wire.ErrShortBuffer) {
		t.Fatalf("short buffer: got %v, want ErrShortBuffer", err)
	}

	got, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	want := rec
	want.Version = checkpointVersion // Write semantics: version is stamped, not copied
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Re-encoding the decoded record must be byte-identical — the
	// canonical-map ordering in the outcome codec makes the encoding a
	// pure function of the record.
	if again := AppendCheckpoint(nil, &got); !bytes.Equal(again, data) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}
}

// TestCheckpointEmptyRecord covers the queued-state shape: no
// outcomes, no report, empty strings everywhere but the ID.
func TestCheckpointEmptyRecord(t *testing.T) {
	rec := Record{ID: "job-1", State: StateQueuedCkpt, Spec: []byte(`{}`)}
	data := AppendCheckpoint(nil, &rec)
	got, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || got.State != rec.State || len(got.Outcomes) != 0 {
		t.Fatalf("empty-record round trip mismatch: %+v", got)
	}
}

func TestCheckpointHostileInput(t *testing.T) {
	rec := checkpointFixture()
	data := AppendCheckpoint(nil, &rec)

	// Every truncation point must error (ErrTruncated, ErrBadHeader
	// for a cut header, or ErrMalformed once the CRC no longer covers
	// the remaining payload) and never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := UnmarshalCheckpoint(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(data))
		}
	}

	// Trailing bytes after the frame.
	if _, err := UnmarshalCheckpoint(append(append([]byte(nil), data...), 0xFF)); !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("trailing byte: got %v, want ErrMalformed", err)
	}

	// A flipped payload byte must trip the CRC.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, err := UnmarshalCheckpoint(corrupt); !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("bit flip: got %v, want ErrMalformed (crc)", err)
	}

	// Wrong frame tag (valid header, wrong record kind).
	wrongTag := fleet.AppendJobOutcome(wire.AppendHeader(nil), &rec.Outcomes[0])
	if _, err := UnmarshalCheckpoint(wrongTag); !errors.Is(err, wire.ErrUnknownTag) {
		t.Fatalf("wrong tag: got %v, want ErrUnknownTag", err)
	}

	// A future schema version must refuse even with a valid CRC. The
	// version is the single uvarint byte right after the 4-byte CRC at
	// the front of the payload (offset header + frame header + 4).
	future := append([]byte(nil), data...)
	verAt := wire.HeaderSize + wire.FrameHeaderSize + 4
	if future[verAt] != checkpointVersion {
		t.Fatalf("fixture layout changed: byte at %d is %d, want version %d", verAt, future[verAt], checkpointVersion)
	}
	future[verAt] = checkpointVersion + 1
	crc := wire.Checksum(future[verAt:])
	future[verAt-4] = byte(crc)
	future[verAt-3] = byte(crc >> 8)
	future[verAt-2] = byte(crc >> 16)
	future[verAt-1] = byte(crc >> 24)
	if _, err := UnmarshalCheckpoint(future); !errors.Is(err, wire.ErrMalformed) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: got %v, want ErrMalformed mentioning version", err)
	}

	// Garbage that merely wears the magic must fail cleanly too.
	if _, err := UnmarshalCheckpoint([]byte("ARWB garbage that is not a checkpoint")); err == nil {
		t.Fatal("magic-prefixed garbage decoded successfully")
	}
}

// TestGoldenCheckpointV1 pins the version-1 binary checkpoint layout:
// the committed fixture must decode (and re-encode bit-identically)
// forever. Regenerate deliberately with -update after a versioned
// format change.
func TestGoldenCheckpointV1(t *testing.T) {
	golden := filepath.Join("testdata", "checkpoint_v1.bin")
	rec := checkpointFixture()
	data := AppendCheckpoint(nil, &rec)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("checkpoint encoding drifted from the committed v1 golden file")
	}
	got, err := UnmarshalCheckpoint(want)
	if err != nil {
		t.Fatal(err)
	}
	wantRec := rec
	wantRec.Version = checkpointVersion
	if !reflect.DeepEqual(got, wantRec) {
		t.Fatalf("golden fixture decoded to %+v, want %+v", got, wantRec)
	}
}

// FuzzUnmarshalCheckpoint drives hostile bytes through the decoder.
// Anything that decodes must reach a byte fixed point: re-encoding the
// decoded record and decoding again yields identical bytes.
func FuzzUnmarshalCheckpoint(f *testing.F) {
	rec := checkpointFixture()
	f.Add(AppendCheckpoint(nil, &rec))
	empty := Record{ID: "x"}
	f.Add(AppendCheckpoint(nil, &empty))
	f.Add([]byte("ARWB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := UnmarshalCheckpoint(data)
		if err != nil {
			return
		}
		canon := AppendCheckpoint(nil, &rec)
		rec2, err := UnmarshalCheckpoint(canon)
		if err != nil {
			t.Fatalf("re-decoding canonical bytes failed: %v", err)
		}
		if again := AppendCheckpoint(nil, &rec2); !bytes.Equal(again, canon) {
			t.Fatal("checkpoint encoding is not a fixed point")
		}
	})
}

// TestCheckpointStoreBinaryFormat exercises the dual-format store on a
// real directory: binary writes land as .ckpt.bin and load back
// exactly, a format switch retires the sibling file, corruption is
// quarantined, and Remove clears both formats.
func TestCheckpointStoreBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	s, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFormat("holographic"); err == nil {
		t.Fatal("SetFormat accepted an unknown format")
	}
	if err := s.SetFormat(CheckpointBinary); err != nil {
		t.Fatal(err)
	}

	rec := checkpointFixture()
	if err := s.Write(rec); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, rec.ID+ckptBinSuffix)
	raw, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatalf("binary checkpoint not written: %v", err)
	}
	if !binaryCheckpoint(raw) {
		t.Fatal("binary store wrote a file without the wire magic")
	}

	recs, report := s.Load()
	if !report.Clean() || len(recs) != 1 {
		t.Fatalf("load: %d records, report %s", len(recs), report)
	}
	want := rec
	want.Version = checkpointVersion
	if !reflect.DeepEqual(recs[0], want) {
		t.Fatalf("binary store round trip mismatch:\n got %+v\nwant %+v", recs[0], want)
	}

	// Switching the write format retires the other format's file, so a
	// job never has two live checkpoints.
	if err := s.SetFormat(CheckpointJSON); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(binPath); !os.IsNotExist(err) {
		t.Fatalf("format switch left the binary sibling behind: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, rec.ID+ckptSuffix)); err != nil {
		t.Fatalf("json checkpoint missing after format switch: %v", err)
	}

	// A corrupt binary file is quarantined, not fatal.
	if err := s.SetFormat(CheckpointBinary); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, "job-bad"+ckptBinSuffix), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, report = s.Load()
	if len(recs) != 1 || len(report.Quarantined) != 1 {
		t.Fatalf("corrupt binary file not quarantined: %d records, report %s", len(recs), report)
	}
	if q := report.Quarantined[0]; q.MovedTo != "job-bad"+corruptSuffix || !strings.Contains(q.Reason, "binary record undecodable") {
		t.Fatalf("unexpected quarantine: %+v", q)
	}

	// Remove clears whichever formats exist.
	if err := s.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(rec.ID); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{ckptSuffix, ckptBinSuffix} {
		if _, err := os.Stat(filepath.Join(dir, rec.ID+suffix)); !os.IsNotExist(err) {
			t.Fatalf("Remove left %s behind", suffix)
		}
	}
}

// TestCheckpointStoreDualFormatDedup: when a crash between Write's
// rename and sibling cleanup leaves both formats on disk, Load keeps
// one record per job and reports the duplicate.
func TestCheckpointStoreDualFormatDedup(t *testing.T) {
	dir := t.TempDir()
	s, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := checkpointFixture()
	if err := s.Write(rec); err != nil { // json
		t.Fatal(err)
	}
	// Plant the binary sibling directly, simulating the torn state.
	bin := AppendCheckpoint(nil, &rec)
	if err := os.WriteFile(filepath.Join(dir, rec.ID+ckptBinSuffix), bin, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, report := s.Load()
	if len(recs) != 1 {
		t.Fatalf("dual-format job loaded %d records", len(recs))
	}
	if len(report.Errors) != 1 || !strings.Contains(report.Errors[0], "duplicate checkpoint") {
		t.Fatalf("duplicate not reported: %s", report)
	}
}
