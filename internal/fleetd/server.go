// Package fleetd promotes the batch fleet engine (internal/fleet,
// surfaced as arachnet.RunFleet) to a long-running simulation service:
// an HTTP/JSONL daemon with a bounded job queue, streaming progress,
// a (spec, seed) response cache, and checkpointed resume.
//
// Design contract, inherited from the engine: a fleet run is a pure
// function of its spec and master seed. The daemon exploits this
// everywhere — cache hits return stored reports whose fingerprints are
// bit-identical to a fresh run's, and a daemon killed mid-sweep
// restarts, preloads the checkpointed shards, and finishes with the
// same fingerprint an uninterrupted run would have produced.
//
// Admission control: the queue is bounded. A full queue answers 429
// with Retry-After instead of buffering unboundedly, so overload is
// explicit backpressure rather than memory growth. A draining daemon
// (SIGTERM) answers 503 and checkpoints in-flight work before exit.
//
// Failure model (see DESIGN.md §9): checkpoints are crash-safe
// (fsync + rename + CRC, corrupt files quarantined); shards that fail
// with transient errors are re-executed a bounded number of times
// (panics and other fatal errors are not); each job can carry a
// deadline; and an unwritable checkpoint directory puts the daemon in
// degraded mode — cached reports and health keep serving, non-cached
// submissions get 503, and the next successful checkpoint write (every
// attempt doubles as the recovery probe) restores normal service.
package fleetd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/arachnet"
	"repro/internal/fleet"
	"repro/internal/fleetd/api"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/wire"
)

// Config parameterizes a daemon.
type Config struct {
	// QueueDepth bounds the admission queue (jobs accepted but not yet
	// running); <= 0 means the default 64.
	QueueDepth int
	// Runners is the number of concurrent fleet runs; <= 0 means 1.
	// Each run additionally shards across its own pool workers.
	Runners int
	// WorkerCap caps the per-job pool worker count regardless of what
	// the spec asks for; 0 leaves the spec (or GOMAXPROCS) in charge.
	WorkerCap int
	// CacheEntries caps the (spec, seed) response cache; 0 means the
	// default 128, negative disables caching entirely.
	CacheEntries int
	// CheckpointDir persists job checkpoints for resume-after-restart;
	// empty disables checkpointing.
	CheckpointDir string
	// CheckpointFormat selects the checkpoint write encoding:
	// CheckpointJSON (the default) or CheckpointBinary (the wire
	// format, internal/wire). Load reads both, so the format can change
	// across restarts without losing resume state.
	CheckpointFormat string
	// CheckpointEvery is the snapshot interval for running jobs;
	// <= 0 means the default 2s. The drain path always writes a final
	// snapshot regardless.
	CheckpointEvery time.Duration
	// RetryAfter is the backoff suggested on 429; <= 0 means 1s.
	RetryAfter time.Duration
	// StreamBuffer is the per-job retained event window for /stream;
	// <= 0 means the default 1024. Reconnecting clients whose offset
	// fell behind the window see the gap as a drop count.
	StreamBuffer int
	// JobDeadline bounds each job's wall-clock run; a job that exceeds
	// it fails with a deadline error (its shards are classified
	// timed-out). 0 means no deadline.
	JobDeadline time.Duration
	// JobRetries bounds automatic re-execution of shards that failed
	// with retryable (transient-classified) errors. Panics and other
	// fatal failures are never re-run. 0 disables re-execution.
	JobRetries int
	// FS is the filesystem the checkpoint store writes through; nil
	// means the real disk. The chaos harness injects faults here.
	FS FS
	// WrapJob, when non-nil, wraps every compiled shard run function —
	// the chaos harness's fault-injection seam. Production leaves it
	// nil.
	WrapJob func(fleet.JobFunc) fleet.JobFunc
	// Metrics receives the daemon's counters (checkpoint writes,
	// quarantines, reruns, degraded transitions); nil means a private
	// registry, exposed either way on /v1/healthz.
	Metrics *obs.Metrics
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// withDefaults resolves the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Runners <= 0 {
		c.Runners = 1
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 1024
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// job is one submitted fleet spec moving through the daemon.
type job struct {
	id    string
	spec  json.RawMessage
	key   string // response-cache key
	total int    // compiled per-vehicle job count
	log   *eventLog

	mu          sync.Mutex
	state       string
	cached      bool
	resumed     int
	reruns      int
	preloaded   []fleet.JobOutcome
	pool        *fleet.Pool
	cancel      context.CancelFunc
	fingerprint string
	report      *fleet.Report
	errMsg      string
	done        chan struct{} // closed when the job reaches a terminal state (or is interrupted by drain)
}

// status snapshots the job's API view.
func (j *job) status() api.StatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.StatusResponse{
		ID:          j.id,
		State:       j.state,
		Total:       j.total,
		Resumed:     j.resumed,
		Reruns:      j.reruns,
		Cached:      j.cached,
		Fingerprint: j.fingerprint,
		Error:       j.errMsg,
	}
	switch {
	case j.state == api.StateDone:
		st.Done = j.total
	case j.pool != nil:
		st.Done = j.pool.Snapshot().Done
	default:
		st.Done = len(j.preloaded)
	}
	return st
}

// Server is the fleetd daemon: construct with New, expose Handler()
// over any listener, Start() the runners, and Drain() on shutdown.
type Server struct {
	cfg     Config
	store   *CheckpointStore
	cache   *Cache
	mux     *http.ServeMux
	queue   chan *job
	metrics *obs.Metrics

	mu             sync.Mutex
	jobs           map[string]*job
	order          []string
	nextID         int
	draining       bool
	running        int
	degraded       bool
	degradedReason string
	inflight       map[string]string // cache key -> active (queued/running) job ID

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup
	resume    []*job // interrupted jobs recovered from checkpoints, enqueued by Start
}

// New builds a daemon, loading any checkpoints found in
// cfg.CheckpointDir: done jobs re-register with their reports (and
// rewarm the response cache); queued or running jobs are re-queued
// with their completed shards preloaded, so Start finishes them
// without recomputation. Corrupt checkpoint files are quarantined as
// <id>.corrupt and reported, never fatal.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := NewCheckpointStoreFS(cfg.CheckpointDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	if err := store.SetFormat(cfg.CheckpointFormat); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     store,
		cache:     NewCache(cfg.CacheEntries),
		queue:     make(chan *job, cfg.QueueDepth),
		metrics:   cfg.Metrics,
		jobs:      make(map[string]*job),
		inflight:  make(map[string]string),
		runCtx:    ctx,
		runCancel: cancel,
	}
	s.buildMux()
	if err := s.loadCheckpoints(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildMux installs the API routes; every handler goes through wrap,
// the recover middleware (a handler panic answers 500 instead of
// taking the daemon down).
func (s *Server) buildMux() {
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/jobs", s.wrap(s.handleSubmit))
	s.mux.Handle("GET /v1/jobs", s.wrap(s.handleList))
	s.mux.Handle("GET /v1/jobs/{id}", s.wrap(s.handleStatus))
	s.mux.Handle("DELETE /v1/jobs/{id}", s.wrap(s.handleCancel))
	s.mux.Handle("GET /v1/jobs/{id}/stream", s.wrap(s.handleStream))
	s.mux.Handle("GET /v1/jobs/{id}/report", s.wrap(s.handleReport))
	s.mux.Handle("GET /v1/healthz", s.wrap(s.handleHealth))
}

// Handler returns the daemon's HTTP interface.
func (s *Server) Handler() http.Handler { return s.mux }

// wrap is the recover middleware every route is registered through.
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.cfg.Logf("fleetd: panic in %s %s: %v", r.Method, r.URL.Path, rec)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		h(w, r)
	}
}

// Start launches the runner pool and re-queues checkpointed jobs.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Runners; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.runLoop()
		}()
	}
	// Interrupted jobs recovered from checkpoints go back on the queue
	// in ID (= original submission) order; the send blocks if the queue
	// is smaller than the backlog, so feed it from a goroutine.
	resume := s.resume
	s.resume = nil
	if len(resume) > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for _, j := range resume {
				select {
				case s.queue <- j:
				case <-s.runCtx.Done():
					return
				}
			}
		}()
	}
}

// Drain gracefully shuts the daemon down: new submissions are refused
// (503), running jobs are interrupted and their completed shards
// checkpointed, queued jobs keep the checkpoints written at admission,
// and the runners exit. It returns once all runners have stopped or
// ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.runCancel()
	done := make(chan struct{})
	// Forwards the WaitGroup join onto a channel so the drain can race it
	// against ctx; if ctx wins, the waiter exits when the runners do.
	//lint:allow goroutine-hygiene wait-forwarder exits when the joined runners finish
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleetd: drain timed out: %w", ctx.Err())
	}
}

// Degraded reports whether the daemon is in degraded mode and why.
func (s *Server) Degraded() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.degradedReason
}

// checkpointWrite routes every checkpoint write through the degraded
// mode accounting: a failure enters degraded mode, a success leaves
// it. Every attempt therefore doubles as the recovery probe — no
// separate probing machinery exists.
func (s *Server) checkpointWrite(rec Record) error {
	if s.store == nil {
		return nil
	}
	err := s.store.Write(rec)
	s.noteCheckpoint(err)
	return err
}

// noteCheckpoint folds one checkpoint write outcome into the degraded
// state machine and metrics.
func (s *Server) noteCheckpoint(err error) {
	if err == nil {
		s.metrics.Inc("ckpt_writes")
		s.mu.Lock()
		if s.degraded {
			s.degraded = false
			s.degradedReason = ""
			s.mu.Unlock()
			s.metrics.Inc("degraded_exits")
			s.cfg.Logf("fleetd: checkpoint dir writable again; leaving degraded mode")
			return
		}
		s.mu.Unlock()
		return
	}
	s.metrics.Inc("ckpt_write_errors")
	s.mu.Lock()
	if !s.degraded {
		s.degraded = true
		s.degradedReason = err.Error()
		s.mu.Unlock()
		s.metrics.Inc("degraded_entries")
		s.cfg.Logf("fleetd: entering degraded mode: %v", err)
		return
	}
	s.mu.Unlock()
}

// loadCheckpoints restores jobs persisted by a previous process.
func (s *Server) loadCheckpoints() error {
	recs, report := s.store.Load()
	if !report.Clean() {
		s.metrics.Add("ckpt_quarantined", uint64(len(report.Quarantined)))
		s.cfg.Logf("fleetd: checkpoint recovery: %s", report)
	}
	for _, rec := range recs {
		f, err := arachnet.UnmarshalFleetJSON(rec.Spec)
		if err != nil {
			s.cfg.Logf("fleetd: checkpoint %s: invalid spec: %v", rec.ID, err)
			continue
		}
		specs, err := f.Jobs()
		if err != nil {
			s.cfg.Logf("fleetd: checkpoint %s: %v", rec.ID, err)
			continue
		}
		key, err := CacheKey(rec.Spec)
		if err != nil {
			s.cfg.Logf("fleetd: checkpoint %s: %v", rec.ID, err)
			continue
		}
		j := &job{
			id:    rec.ID,
			spec:  rec.Spec,
			key:   key,
			total: len(specs),
			log:   newEventLog(s.cfg.StreamBuffer),
			done:  make(chan struct{}),
		}
		switch rec.State {
		case StateDoneCkpt:
			var rep fleet.Report
			if err := json.Unmarshal(rec.Report, &rep); err != nil {
				s.cfg.Logf("fleetd: checkpoint %s: report: %v", rec.ID, err)
				continue
			}
			j.state = api.StateDone
			j.report = &rep
			j.fingerprint = rec.Fingerprint
			j.errMsg = rec.Error
			j.log.Close()
			close(j.done)
			s.cache.Put(key, CacheEntry{Fingerprint: rec.Fingerprint, Report: &rep})
		case StateQueuedCkpt, StateRunningCkpt:
			j.state = api.StateQueued
			j.preloaded = rec.Outcomes
			j.resumed = len(rec.Outcomes)
			s.resume = append(s.resume, j)
			s.inflight[key] = j.id
		default:
			s.cfg.Logf("fleetd: checkpoint %s: unknown state %q", rec.ID, rec.State)
			continue
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if n := idNumber(rec.ID); n >= s.nextID {
			s.nextID = n + 1
		}
	}
	if len(s.resume) > 0 {
		s.cfg.Logf("fleetd: resuming %d interrupted job(s) from %s", len(s.resume), s.cfg.CheckpointDir)
	}
	return nil
}

// idNumber extracts the numeric suffix of a job ID (-1 if malformed).
func idNumber(id string) int {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return -1
	}
	n, err := strconv.Atoi(id[len(prefix):])
	if err != nil {
		return -1
	}
	return n
}

// runLoop is one runner: pull jobs until drain.
func (s *Server) runLoop() {
	for {
		select {
		case <-s.runCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// retryableFailed lists the indices of shards that failed with a
// transient-classified error — the candidates for bounded
// re-execution. Panicked, timed-out and fatally-failed shards are
// excluded: re-running them cannot change a deterministic outcome.
func retryableFailed(rep *fleet.Report) []int {
	var idx []int
	for _, o := range rep.Jobs {
		if o.Status == fleet.StatusFailed && resilience.ClassifyMessage(o.Err) == resilience.ClassRetryable {
			idx = append(idx, o.Index)
		}
	}
	return idx
}

// keepDeterministic filters a report's outcomes down to the ones a
// rerun pool may preload: successes and fatal (non-transient)
// failures.
func keepDeterministic(rep *fleet.Report) []fleet.JobOutcome {
	var keep []fleet.JobOutcome
	for _, o := range rep.Jobs {
		switch o.Status {
		case fleet.StatusOK:
			keep = append(keep, o)
		case fleet.StatusFailed:
			if resilience.ClassifyMessage(o.Err) == resilience.ClassFatal {
				keep = append(keep, o)
			}
		}
	}
	return keep
}

// runJob executes one fleet spec through the pool, checkpointing as it
// goes. It never panics the runner: spec errors fail the job, shards
// that failed transiently are re-executed up to Config.JobRetries
// times, a deadline overrun fails the job, and a drain interruption
// leaves a resumable checkpoint behind.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != api.StateQueued {
		j.mu.Unlock() // cancelled while queued
		return
	}
	base, cancel := context.WithCancel(s.runCtx)
	jctx := base
	dcancel := context.CancelFunc(func() {})
	if s.cfg.JobDeadline > 0 {
		//lint:allow determinism-taint job deadlines are wall-clock budgets, not simulation state
		jctx, dcancel = resilience.Tighten(base, time.Now(), s.cfg.JobDeadline)
	}
	j.state = api.StateRunning
	j.cancel = cancel
	pre := j.preloaded
	j.mu.Unlock()
	defer dcancel()
	defer cancel()

	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()

	f, err := arachnet.UnmarshalFleetJSON(j.spec)
	if err != nil {
		s.finalizeFailed(j, fmt.Errorf("spec no longer valid: %w", err))
		return
	}
	if s.cfg.WorkerCap > 0 && (f.Workers <= 0 || f.Workers > s.cfg.WorkerCap) {
		f.Workers = s.cfg.WorkerCap
	}
	specs, err := f.Jobs()
	if err != nil {
		s.finalizeFailed(j, err)
		return
	}
	if s.cfg.WrapJob != nil {
		for i := range specs {
			specs[i].Run = s.cfg.WrapJob(specs[i].Run)
		}
	}

	// buildPool assembles a fresh pool + checkpointer over the shared
	// shard list, preloading previously-settled outcomes.
	buildPool := func(pre []fleet.JobOutcome) (*fleet.Pool, *checkpointer, error) {
		ck := newCheckpointer(s.store, j.id, j.spec, pre)
		ck.onWrite = s.noteCheckpoint
		cfg := fleet.Config{
			Workers:    f.Workers,
			Seed:       f.Seed,
			JobTimeout: f.JobTimeout,
			Observer:   fleet.MultiObserver(ck, fleet.NewTracerObserver(obs.New(j.log))),
		}
		pool, err := fleet.NewPool(cfg, specs)
		if err != nil {
			return nil, nil, err
		}
		if len(pre) > 0 {
			if err := pool.Preload(pre); err != nil {
				return nil, nil, err
			}
		}
		return pool, ck, nil
	}

	// runPool runs one pool with the periodic checkpoint ticker.
	runPool := func(pool *fleet.Pool, ck *checkpointer) (*fleet.Report, error) {
		stopFlush := make(chan struct{})
		var fwg sync.WaitGroup
		if s.store != nil {
			fwg.Add(1)
			go func() {
				defer fwg.Done()
				t := time.NewTicker(s.cfg.CheckpointEvery)
				defer t.Stop()
				for {
					select {
					case <-stopFlush:
						return
					case <-t.C:
						if err := ck.flush(false); err != nil {
							s.cfg.Logf("fleetd: %s: checkpoint: %v", j.id, err)
						}
					}
				}
			}()
		}
		rep, runErr := pool.Run(jctx)
		close(stopFlush)
		fwg.Wait()
		return rep, runErr
	}

	pool, ck, err := buildPool(pre)
	if err != nil && len(pre) > 0 {
		// A checkpoint that no longer matches the spec is discarded:
		// recompute everything rather than corrupt the report.
		s.cfg.Logf("fleetd: %s: discarding checkpoint: %v", j.id, err)
		j.mu.Lock()
		j.resumed = 0
		j.mu.Unlock()
		pool, ck, err = buildPool(nil)
	}
	if err != nil {
		s.finalizeFailed(j, err)
		return
	}
	j.mu.Lock()
	j.pool = pool
	j.mu.Unlock()

	rep, runErr := runPool(pool, ck)

	// Bounded re-execution: shards that failed with transient errors
	// get fresh attempts (successes and fatal failures are preloaded,
	// so nothing deterministic is recomputed). Because every shard is
	// a pure function of its seed, the rerun report's fingerprint is
	// the one an unfaulted run produces.
	for runErr == nil && s.cfg.JobRetries > 0 {
		transient := retryableFailed(rep)
		j.mu.Lock()
		rounds := j.reruns
		j.mu.Unlock()
		if len(transient) == 0 || rounds >= s.cfg.JobRetries {
			break
		}
		j.mu.Lock()
		j.reruns++
		j.mu.Unlock()
		s.metrics.Inc("job_rerun_rounds")
		s.metrics.Add("shards_rerun", uint64(len(transient)))
		s.cfg.Logf("fleetd: %s: re-running %d shard(s) after transient failures (round %d/%d)",
			j.id, len(transient), rounds+1, s.cfg.JobRetries)
		pool, ck, err = buildPool(keepDeterministic(rep))
		if err != nil {
			s.finalizeFailed(j, err)
			return
		}
		j.mu.Lock()
		j.pool = pool
		j.mu.Unlock()
		rep, runErr = runPool(pool, ck)
	}

	if runErr != nil {
		// Interrupted. Under drain this is a checkpoint-and-exit; a
		// deadline overrun fails the job; a client cancel discards the
		// job and its checkpoint.
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		switch {
		case draining:
			if err := ck.flush(true); err != nil {
				s.cfg.Logf("fleetd: %s: final checkpoint: %v", j.id, err)
			}
			s.finalize(j, api.StateQueued, "", nil, "interrupted: daemon draining; resumes on restart")
		case errors.Is(runErr, context.DeadlineExceeded):
			s.metrics.Inc("jobs_deadline_exceeded")
			if err := s.store.Remove(j.id); err != nil {
				s.cfg.Logf("fleetd: %s: remove checkpoint: %v", j.id, err)
			}
			s.finalize(j, api.StateFailed, "", nil,
				fmt.Sprintf("job deadline %v exceeded", s.cfg.JobDeadline))
		default:
			if err := s.store.Remove(j.id); err != nil {
				s.cfg.Logf("fleetd: %s: remove checkpoint: %v", j.id, err)
			}
			s.finalize(j, api.StateCancelled, "", nil, "cancelled")
		}
		return
	}

	fp := rep.Fingerprint()
	errMsg := ""
	if !rep.Ok() {
		errMsg = rep.FirstError()
	}
	if s.store != nil {
		repJSON, err := json.Marshal(rep)
		if err != nil {
			s.cfg.Logf("fleetd: %s: marshal report: %v", j.id, err)
		} else if err := s.checkpointWrite(Record{
			ID: j.id, State: StateDoneCkpt, Spec: j.spec,
			Fingerprint: fp, Report: repJSON, Error: errMsg,
		}); err != nil {
			s.cfg.Logf("fleetd: %s: done checkpoint: %v", j.id, err)
		}
	}
	s.cache.Put(j.key, CacheEntry{Fingerprint: fp, Report: rep})
	s.finalize(j, api.StateDone, fp, rep, errMsg)
}

// finalize moves a job to its end state, releases its streamers, and
// retires its in-flight dedupe entry.
func (s *Server) finalize(j *job, state, fingerprint string, rep *fleet.Report, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.fingerprint = fingerprint
	j.report = rep
	j.errMsg = errMsg
	j.pool = nil
	j.mu.Unlock()
	j.log.Close()
	close(j.done)
	s.mu.Lock()
	if s.inflight[j.key] == j.id {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
	switch state {
	case api.StateDone:
		s.metrics.Inc("jobs_done")
	case api.StateFailed:
		s.metrics.Inc("jobs_failed")
	case api.StateCancelled:
		s.metrics.Inc("jobs_cancelled")
	}
	s.cfg.Logf("fleetd: %s: %s%s", j.id, state, suffixIf(errMsg))
}

// finalizeFailed records a spec-level failure.
func (s *Server) finalizeFailed(j *job, err error) {
	if rmErr := s.store.Remove(j.id); rmErr != nil {
		s.cfg.Logf("fleetd: %s: remove checkpoint: %v", j.id, rmErr)
	}
	s.finalize(j, api.StateFailed, "", nil, err.Error())
}

// suffixIf renders an optional log detail.
func suffixIf(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the standard error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, api.ErrorResponse{Error: msg})
}

// handleSubmit admits one fleet spec: validate, consult the response
// cache, dedupe against in-flight submissions of the same spec (so a
// client retrying a submit never double-enqueues), then enqueue with
// backpressure. In degraded mode only cache hits are served.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining; resubmit after restart")
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	f, err := arachnet.UnmarshalFleetJSON(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	specs, err := f.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := CacheKey(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Cache hit: the run is a pure function of (spec, seed), so the
	// stored report answers immediately — registered as a done job so
	// the usual status/report/stream endpoints all work. Served even
	// in degraded mode: the answer needs no new checkpoint to be
	// correct (the write below is attempted anyway — it doubles as the
	// degraded-mode recovery probe).
	if entry, ok := s.cache.Get(key); ok {
		j := s.newJob(raw, key, len(specs))
		j.state = api.StateDone
		j.cached = true
		j.fingerprint = entry.Fingerprint
		j.report = entry.Report
		j.log.Close()
		close(j.done)
		s.registerJob(j)
		if s.store != nil {
			repJSON, err := json.Marshal(entry.Report)
			if err == nil {
				err = s.checkpointWrite(Record{
					ID: j.id, State: StateDoneCkpt, Spec: j.spec,
					Fingerprint: entry.Fingerprint, Report: repJSON,
				})
			}
			if err != nil {
				s.cfg.Logf("fleetd: %s: cache-hit checkpoint: %v", j.id, err)
			}
		}
		s.metrics.Inc("submit_cache_hits")
		writeJSON(w, http.StatusOK, api.SubmitResponse{
			ID: j.id, State: api.StateDone, Cached: true,
			Fingerprint: entry.Fingerprint, Jobs: len(specs),
		})
		return
	}

	// In-flight dedupe: a retried submit of a spec that is already
	// queued or running returns the existing job instead of enqueuing
	// a duplicate — submission is idempotent under client retries.
	s.mu.Lock()
	if id, ok := s.inflight[key]; ok {
		dup := s.jobs[id]
		s.mu.Unlock()
		if dup != nil {
			s.metrics.Inc("submit_deduped")
			st := dup.status()
			writeJSON(w, http.StatusAccepted, api.SubmitResponse{
				ID: dup.id, State: st.State, Jobs: dup.total,
			})
			return
		}
		s.mu.Lock()
	}
	degraded, reason := s.degraded, s.degradedReason
	s.mu.Unlock()
	if degraded {
		// New work cannot be checkpointed, so it is refused rather
		// than silently losing its durability guarantee.
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("daemon degraded (checkpoint dir unwritable: %s); only cached specs are served", reason))
		return
	}

	j := s.newJob(raw, key, len(specs))
	j.state = api.StateQueued
	// Publish the job (registry + in-flight dedupe entry) BEFORE it can
	// reach a runner. Enqueue-first had an admission race: a runner could
	// dequeue and finalize the job before the inflight entry existed, so
	// finalize's conditional delete was a no-op and the terminal job
	// stayed registered as "in flight" — later submits of the same spec
	// then deduped against a finished job forever (with caching disabled
	// the spec could never run again). Registering first means finalize
	// always observes the entry it must clear.
	s.registerJob(j)
	s.mu.Lock()
	s.inflight[key] = j.id
	s.mu.Unlock()
	select {
	case s.queue <- j:
	default:
		// Backpressure: the queue is full. 429 + Retry-After instead of
		// unbounded buffering. Roll the admission back so the rejected
		// job leaves no ghost registry or dedupe entries behind.
		s.unregisterJob(j)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d deep); retry later", s.cfg.QueueDepth))
		return
	}
	// Checkpoint at admission so a daemon killed with the job still
	// queued re-runs it after restart.
	if err := s.checkpointWrite(Record{ID: j.id, State: StateQueuedCkpt, Spec: j.spec}); err != nil {
		s.cfg.Logf("fleetd: %s: admission checkpoint: %v", j.id, err)
	}
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: j.id, State: api.StateQueued, Jobs: len(specs)})
}

// newJob allocates a job with the next ID (not yet registered).
func (s *Server) newJob(raw []byte, key string, total int) *job {
	s.mu.Lock()
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.nextID++
	s.mu.Unlock()
	return &job{
		id: id, spec: raw, key: key, total: total,
		log: newEventLog(s.cfg.StreamBuffer), done: make(chan struct{}),
	}
}

// registerJob publishes a job in the registry.
func (s *Server) registerJob(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
}

// unregisterJob rolls back an admission whose enqueue was refused: the
// job vanishes from the registry, listing order and in-flight dedupe
// map as if the submit never happened.
func (s *Server) unregisterJob(j *job) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.inflight[j.key] == j.id {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// lookup finds a job by the {id} path value; nil means the 404 was
// already written.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return nil
	}
	return j
}

// handleList enumerates jobs in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	lr := api.ListResponse{Jobs: make([]api.StatusResponse, 0, len(jobs))}
	for _, j := range jobs {
		lr.Jobs = append(lr.Jobs, j.status())
	}
	writeJSON(w, http.StatusOK, lr)
}

// handleStatus reports one job's lifecycle view.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleReport serves a finished job's full report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	rep, fp, cached, state := j.report, j.fingerprint, j.cached, j.state
	j.mu.Unlock()
	if rep == nil {
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is %s; no report yet", j.id, state))
		return
	}
	writeJSON(w, http.StatusOK, api.ReportEnvelope{ID: j.id, Fingerprint: fp, Cached: cached, Report: rep})
}

// handleCancel aborts a queued or running job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	if state == api.StateQueued {
		// The runner skips jobs no longer queued; release streamers now.
		j.state = api.StateCancelled
		j.errMsg = "cancelled"
		j.mu.Unlock()
		j.log.Close()
		close(j.done)
		s.mu.Lock()
		if s.inflight[j.key] == j.id {
			delete(s.inflight, j.key)
		}
		s.mu.Unlock()
		if err := s.store.Remove(j.id); err != nil {
			s.cfg.Logf("fleetd: %s: remove checkpoint: %v", j.id, err)
		}
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	j.mu.Unlock()
	switch {
	case api.TerminalState(state):
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s already %s", j.id, state))
	case cancel != nil:
		cancel()
		writeJSON(w, http.StatusOK, j.status())
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is %s and not cancellable", j.id, state))
	}
}

// handleStream serves the progress stream: an opening status line, one
// sequenced line per lifecycle event, and a closing done line carrying
// the fingerprint. Event lines carry their position in the job's event
// log, and ?after=<seq> resumes from that position — a client whose
// connection died reconnects and receives exactly the events it
// missed. An offset that has fallen behind the retained window reports
// the gap on the done line's drop count. ?format=binary switches the
// encoding from JSONL to the wire format (internal/wire, DESIGN.md
// §11) with identical sequence numbers, so resume offsets are
// interchangeable between formats.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	var after uint64
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad after offset %q", v))
			return
		}
		after = n
	}

	var encode func(api.StreamLine) error
	switch format := r.URL.Query().Get("format"); format {
	case "", api.StreamFormatJSONL:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		encode = func(line api.StreamLine) error { return enc.Encode(line) }
	case api.StreamFormatBinary:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(wire.AppendHeader(nil)); err != nil {
			return
		}
		var buf []byte // reused frame scratch across lines
		encode = func(line api.StreamLine) error {
			out, err := api.AppendStreamLine(buf[:0], &line)
			if err != nil {
				return err
			}
			buf = out
			_, err = w.Write(out)
			return err
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad stream format %q (want %s or %s)", format, api.StreamFormatJSONL, api.StreamFormatBinary))
		return
	}

	st := j.status()
	if err := encode(api.StreamLine{Type: api.StreamStatus, Status: &st}); err != nil {
		return
	}
	flusher.Flush()

	var dropped uint64
	for {
		evs, first, gap, closed, wait := j.log.since(after)
		dropped += gap
		after += gap
		for i := range evs {
			seq := first + uint64(i)
			if err := encode(api.StreamLine{Type: api.StreamEvent, Seq: seq, Event: &evs[i]}); err != nil {
				return
			}
			after = seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if closed && len(evs) == 0 {
			st := j.status()
			_ = encode(api.StreamLine{
				Type: api.StreamDone, Seq: after, State: st.State,
				Fingerprint: st.Fingerprint, Error: st.Error,
				Dropped: dropped,
			})
			flusher.Flush()
			return
		}
		if len(evs) == 0 {
			select {
			case <-wait:
			case <-r.Context().Done():
				return
			}
		}
	}
}

// handleHealth reports liveness, pressure, degraded state, and the
// daemon's resilience counters.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := api.HealthResponse{
		OK:             !s.draining,
		Draining:       s.draining,
		Queued:         len(s.queue),
		Running:        s.running,
		QueueDepth:     s.cfg.QueueDepth,
		Degraded:       s.degraded,
		DegradedReason: s.degradedReason,
	}
	s.mu.Unlock()
	h.CacheEntries = s.cache.Len()
	h.CacheHits = s.cache.Hits()
	h.Counters = s.metrics.Counters()
	writeJSON(w, http.StatusOK, h)
}
