package reader

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
)

func newTestReader(t *testing.T, seed uint64) (*sim.Engine, *Device) {
	t.Helper()
	e := sim.NewEngine()
	periods := map[int]mac.Period{1: 4, 2: 4, 3: 8}
	d, err := New(e, DefaultConfig(), periods, sim.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestNewValidation(t *testing.T) {
	e := sim.NewEngine()
	if _, err := New(e, DefaultConfig(), map[int]mac.Period{1: 3}, sim.NewRand(1)); err == nil {
		t.Error("invalid period accepted")
	}
	cfg := DefaultConfig()
	cfg.SlotDuration = 0
	if _, err := New(e, cfg, map[int]mac.Period{1: 4}, sim.NewRand(1)); err == nil {
		t.Error("zero slot duration accepted")
	}
}

func TestFirstBeaconCarriesReset(t *testing.T) {
	e, d := newTestReader(t, 1)
	var first *BeaconTx
	d.Broadcast = func(bx BeaconTx) {
		if first == nil {
			b := bx
			first = &b
		}
	}
	d.Start()
	e.RunUntil(100 * sim.Millisecond)
	if first == nil {
		t.Fatal("no beacon broadcast")
	}
	if !first.Cmd.Has(phy.CmdRESET) {
		t.Errorf("first beacon cmd = %v, want RESET", first.Cmd)
	}
}

func TestBeaconEdgesDecodeAsPIE(t *testing.T) {
	e, d := newTestReader(t, 2)
	d.Cfg.SymbolJitter = 0 // exact edges for this check
	var bx BeaconTx
	got := false
	d.Broadcast = func(b BeaconTx) {
		if !got {
			bx, got = b, true
		}
	}
	d.Start()
	e.RunUntil(sim.Second / 2)
	if !got {
		t.Fatal("no beacon")
	}
	if len(bx.Edges)%2 != 0 {
		t.Fatalf("odd edge count %d", len(bx.Edges))
	}
	// Reconstruct high-pulse durations in chips and decode.
	chip := 1 / d.Cfg.DLRate
	var highs []float64
	for i := 0; i < len(bx.Edges); i += 2 {
		if !bx.Edges[i].Rising || bx.Edges[i+1].Rising {
			t.Fatalf("edge polarity broken at %d", i)
		}
		highs = append(highs, (bx.Edges[i+1].At-bx.Edges[i].At).Seconds()/chip)
	}
	bits, err := phy.PIEDecodeIntervals(highs)
	if err != nil {
		t.Fatal(err)
	}
	beacon, err := phy.UnmarshalDL(bits)
	if err != nil {
		t.Fatal(err)
	}
	if beacon.Cmd != bx.Cmd {
		t.Errorf("decoded cmd %v, want %v", beacon.Cmd, bx.Cmd)
	}
	// Duration ~100 ms at 250 bps.
	if dur := bx.End - bx.Start; dur < 80*sim.Millisecond || dur > 130*sim.Millisecond {
		t.Errorf("beacon duration %v", dur)
	}
}

func TestJitterBoundsRespected(t *testing.T) {
	e, d := newTestReader(t, 3)
	var all []BeaconTx
	d.Broadcast = func(b BeaconTx) { all = append(all, b) }
	d.Start()
	e.RunUntil(10 * sim.Second)
	if len(all) < 5 {
		t.Fatalf("%d beacons", len(all))
	}
	chip := sim.FromSeconds(1 / d.Cfg.DLRate)
	for _, bx := range all {
		for i := 0; i < len(bx.Edges); i += 2 {
			high := bx.Edges[i+1].At - bx.Edges[i].At
			// One or two chips, +/- 2*jitter.
			lo := chip - 2*d.Cfg.SymbolJitter
			hi := 2*chip + 2*d.Cfg.SymbolJitter
			if high < lo || high > hi {
				t.Fatalf("high pulse %v outside [%v, %v]", high, lo, hi)
			}
		}
	}
}

func TestSlotLoopAndDecode(t *testing.T) {
	e, d := newTestReader(t, 4)
	beacons := 0
	d.Broadcast = func(bx BeaconTx) {
		beacons++
		// Tag 1 answers every beacon, cleanly.
		d.OnTransmission(ULEvent{
			TID: 1, Start: bx.End + 20*sim.Millisecond,
			End: bx.End + 190*sim.Millisecond, Amplitude: 0.05, DecodeProb: 1.0,
			Payload: 0xABC,
		})
	}
	d.Start()
	e.RunUntil(10 * sim.Second)
	if beacons < 9 {
		t.Errorf("beacons = %d over 10 s of 1 s slots", beacons)
	}
	if d.SlotsRun < 9 {
		t.Errorf("slots = %d", d.SlotsRun)
	}
	if d.Decoded < 9 {
		t.Errorf("decoded = %d", d.Decoded)
	}
	if got := d.Payloads[1]; len(got) == 0 || got[len(got)-1] != 0xABC {
		t.Errorf("payloads = %v", got)
	}
	if len(d.PingPongs) == 0 {
		t.Fatal("no ping-pong samples")
	}
	pp := d.PingPongs[0]
	if pp.Stage2 < 200*sim.Millisecond || pp.Stage2 > 300*sim.Millisecond {
		t.Errorf("stage2 = %v", pp.Stage2)
	}
}

func TestCollisionHandling(t *testing.T) {
	e, d := newTestReader(t, 5)
	d.Cfg.CaptureProb = 1.0 // always capture the strongest
	d.Broadcast = func(bx BeaconTx) {
		d.OnTransmission(ULEvent{TID: 1, Amplitude: 0.05, DecodeProb: 1})
		d.OnTransmission(ULEvent{TID: 2, Amplitude: 0.01, DecodeProb: 1})
	}
	d.Start()
	e.RunUntil(5 * sim.Second)
	// Collisions observed, never ACK-settled.
	if d.Window.AverageCollisionRatio() < 0.9 {
		t.Errorf("collision ratio %.2f with two colliding tags", d.Window.AverageCollisionRatio())
	}
	if d.Proto.SettledCount() != 0 {
		t.Errorf("settled %d tags out of a permanent collision", d.Proto.SettledCount())
	}
	// Capture decodes the stronger tag's packets.
	if len(d.Payloads[1]) == 0 {
		t.Error("capture effect never decoded the strong tag")
	}
	if len(d.Payloads[2]) != 0 {
		t.Error("weak tag decoded during capture")
	}
}

func TestStopHaltsLoop(t *testing.T) {
	e, d := newTestReader(t, 6)
	d.Broadcast = func(BeaconTx) {}
	d.Start()
	e.RunUntil(3 * sim.Second)
	slots := d.SlotsRun
	d.Stop()
	e.RunUntil(10 * sim.Second)
	if d.SlotsRun > slots+1 {
		t.Errorf("slot loop kept running after Stop: %d -> %d", slots, d.SlotsRun)
	}
	// Start is idempotent while running.
	d2Slots := d.SlotsRun
	d.Start()
	e.RunUntil(12 * sim.Second)
	if d.SlotsRun <= d2Slots {
		t.Error("restart after Stop did not resume")
	}
}

func TestFeedbackToCommandMapping(t *testing.T) {
	cmd := feedbackToCommand(mac.Feedback{ACK: true, Empty: true, Reset: true})
	if !cmd.Has(phy.CmdACK) || !cmd.Has(phy.CmdEMPTY) || !cmd.Has(phy.CmdRESET) {
		t.Errorf("cmd = %v", cmd)
	}
	if feedbackToCommand(mac.Feedback{}) != 0 {
		t.Error("empty feedback should map to NACK (zero)")
	}
}
