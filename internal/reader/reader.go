// Package reader implements the ARACHNET reader device (Sec. 6.1): the
// slot scheduler that broadcasts PIE beacons through the BiW, collects
// backscattered uplink packets, infers collisions, and runs the
// reader-side half of the distributed slot allocation (mac package).
// The real reader's C++ signal chain is modeled by the dsp package; at
// network level its outcome is a per-transmission decode probability
// computed by the channel layer, plus the software-induced PIE timing
// jitter and processing delay the paper quantifies.
package reader

import (
	"fmt"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Config holds the reader's operating point.
type Config struct {
	// SlotDuration is the slot length (1 s, Sec. 6.4).
	SlotDuration sim.Time
	// DLRate is the downlink raw chip rate (bps).
	DLRate float64
	// SymbolJitter is the software PIE modulation imprecision: each
	// edge shifts by up to this much (0.3 ms, Sec. 6.3).
	SymbolJitter sim.Time
	// ProcessingDelay is the reader software's added latency from UL
	// end to decoded packet (~58.9 ms, Sec. 6.4).
	ProcessingDelay sim.Time
	// CaptureProb is the chance one packet decodes during a collision.
	CaptureProb float64
	// CollisionDetectProb is the IQ-clustering detection rate for true
	// collisions.
	CollisionDetectProb float64
}

// DefaultConfig returns the paper's reader settings.
func DefaultConfig() Config {
	return Config{
		SlotDuration:        sim.Second,
		DLRate:              phy.DefaultDLRate,
		SymbolJitter:        300 * sim.Microsecond,
		ProcessingDelay:     59 * sim.Millisecond,
		CaptureProb:         0.5,
		CollisionDetectProb: 1.0,
	}
}

// Edge is one comparator transition of the beacon envelope, in absolute
// simulation time at the reader's TX PZT (per-tag propagation is added
// by the channel).
type Edge struct {
	At     sim.Time
	Rising bool
}

// BeaconTx describes one broadcast beacon.
type BeaconTx struct {
	Cmd   phy.Command
	Start sim.Time
	End   sim.Time
	Edges []Edge
}

// ULEvent is a tag transmission as scored by the channel layer.
type ULEvent struct {
	TID        uint8
	Start      sim.Time
	End        sim.Time
	Amplitude  float64 // backscatter amplitude at the reader (capture ranking)
	DecodeProb float64 // solo decode success probability
	Payload    uint16
	// Chips and ChipRate carry the raw FM0 stream for waveform-mode
	// decoding (nil when the probabilistic link model is in use).
	Chips    phy.Bits
	ChipRate float64
}

// SlotDecodeResult is what a waveform-mode slot decoder reports.
type SlotDecodeResult struct {
	Obs       mac.Observation
	Packet    phy.ULPacket
	HasPacket bool
}

// SlotDecoder processes one slot's transmissions at waveform level
// (synthesis + DSP) instead of the probabilistic link model.
type SlotDecoder func(events []ULEvent) SlotDecodeResult

// PingPongSample is one Fig. 14 measurement.
type PingPongSample struct {
	Stage1 sim.Time // beacon transmission time
	Stage2 sim.Time // beacon end -> UL decode completion
}

// Device is the reader.
type Device struct {
	Cfg   Config
	Proto *mac.ReaderProtocol

	// Trace, when set, receives slot open/close events; assign it with
	// SetTracer so the protocol's settle/evict events share the sink.
	Trace *obs.Tracer

	engine *sim.Engine
	rng    *sim.Rand

	// Broadcast delivers a beacon to the channel.
	Broadcast func(bx BeaconTx)
	// DecodeSlot, when set, replaces the probabilistic per-event decode
	// with full waveform processing (the channel layer installs it).
	DecodeSlot SlotDecoder

	inbox        []ULEvent
	fb           mac.Feedback
	running      bool
	pendingReset bool

	// Stats.
	Window      *mac.WindowStats
	Convergence *mac.ConvergenceDetector
	PingPongs   []PingPongSample
	SlotsRun    int
	Decoded     uint64
	Payloads    map[uint8][]uint16 // last payloads per TID
}

// New builds a reader provisioned with every tag's period.
func New(engine *sim.Engine, cfg Config, periods map[int]mac.Period, rng *sim.Rand) (*Device, error) {
	proto, err := mac.NewReaderProtocol(periods)
	if err != nil {
		return nil, err
	}
	if cfg.SlotDuration <= 0 {
		return nil, fmt.Errorf("reader: non-positive slot duration")
	}
	return &Device{
		Cfg:         cfg,
		Proto:       proto,
		engine:      engine,
		rng:         rng,
		Window:      mac.NewWindowStats(),
		Convergence: mac.NewConvergenceDetector(),
		Payloads:    make(map[uint8][]uint16),
	}, nil
}

// SetTracer attaches an observability tracer to the device and its
// protocol state machine. A nil tracer (the default) costs nothing.
func (d *Device) SetTracer(t *obs.Tracer) {
	d.Trace = t
	d.Proto.Trace = t
}

// Start begins slotted operation with a RESET broadcast.
func (d *Device) Start() {
	if d.running {
		return
	}
	d.running = true
	d.fb = d.Proto.Reset()
	d.engine.After(0, "reader-slot", func(now sim.Time) { d.beginSlot(now) })
}

// Stop halts the slot loop after the current slot.
func (d *Device) Stop() { d.running = false }

// RequestReset makes the next beacon carry the RESET command: all
// protocol state (reader ledger, convergence detector) reinitializes
// and every tag re-randomizes — the measurement primitive behind the
// paper's first-convergence experiments (Sec. 6.4).
func (d *Device) RequestReset() { d.pendingReset = true }

// feedbackToCommand maps protocol feedback onto the 4-bit CMD field.
func feedbackToCommand(fb mac.Feedback) phy.Command {
	var cmd phy.Command
	if fb.ACK {
		cmd |= phy.CmdACK
	}
	if fb.Empty {
		cmd |= phy.CmdEMPTY
	}
	if fb.Reset {
		cmd |= phy.CmdRESET
	}
	return cmd
}

// beginSlot broadcasts the beacon that opens the slot and schedules the
// slot end.
func (d *Device) beginSlot(now sim.Time) {
	if !d.running {
		return
	}
	if d.pendingReset {
		d.pendingReset = false
		d.fb = d.Proto.Reset()
		d.Convergence = mac.NewConvergenceDetector()
	}
	cmd := feedbackToCommand(d.fb)
	if d.Trace.Enabled() {
		d.Trace.Emit(obs.Event{Kind: obs.KindSlotOpen, Slot: d.Proto.Slot(),
			T: now.Seconds(), ACK: d.fb.ACK, Empty: d.fb.Empty})
	}
	bx := d.modulateBeacon(cmd, now)
	d.inbox = d.inbox[:0]
	if d.Broadcast != nil {
		d.Broadcast(bx)
	}
	d.engine.After(d.Cfg.SlotDuration, "reader-slot-end", func(end sim.Time) {
		d.endSlot(bx, end)
	})
}

// modulateBeacon expands the command into jittered PIE envelope edges.
func (d *Device) modulateBeacon(cmd phy.Command, start sim.Time) BeaconTx {
	frame, err := (phy.Beacon{Cmd: cmd}).Marshal()
	if err != nil {
		// The command nibble is 4 bits by construction; this cannot
		// happen unless Config is corrupted.
		//lint:allow panic-hygiene command nibble is 4 bits by construction; marshal cannot fail on valid Config
		panic(fmt.Sprintf("reader: beacon marshal: %v", err))
	}
	chipDur := sim.FromSeconds(1 / d.Cfg.DLRate)
	jitter := func() sim.Time {
		if d.Cfg.SymbolJitter <= 0 || d.rng == nil {
			return 0
		}
		j := sim.Time(d.rng.Float64() * float64(d.Cfg.SymbolJitter) * 2)
		return j - d.Cfg.SymbolJitter
	}
	var edges []Edge
	t := start
	for _, bit := range frame {
		high := chipDur // PIE 0: one high chip
		if bit&1 == 1 {
			high = 2 * chipDur // PIE 1: two high chips
		}
		rise := t + jitter()
		fall := t + high + jitter()
		if fall <= rise {
			fall = rise + 1
		}
		edges = append(edges, Edge{At: rise, Rising: true}, Edge{At: fall, Rising: false})
		t += high + chipDur // one low separator chip
	}
	return BeaconTx{Cmd: cmd, Start: start, End: t, Edges: edges}
}

// OnTransmission is called by the channel when a tag's burst (with its
// channel-computed scores) arrives during the current slot.
func (d *Device) OnTransmission(ev ULEvent) {
	d.inbox = append(d.inbox, ev)
}

// endSlot scores the slot, runs the protocol, and opens the next slot.
func (d *Device) endSlot(bx BeaconTx, now sim.Time) {
	if !d.running {
		return
	}
	var seen mac.Observation
	var decodedEv *ULEvent
	if d.DecodeSlot != nil && len(d.inbox) > 0 {
		res := d.DecodeSlot(d.inbox)
		seen = res.Obs
		if res.HasPacket {
			// Bind the decode to the matching event (by TID) for the
			// latency bookkeeping; fall back to the first event.
			decodedEv = &d.inbox[0]
			for i := range d.inbox {
				if d.inbox[i].TID == res.Packet.TID {
					decodedEv = &d.inbox[i]
					break
				}
			}
			decodedEv.Payload = res.Packet.Payload
		}
	} else {
		switch len(d.inbox) {
		case 0:
		case 1:
			ev := d.inbox[0]
			if d.rng.Bool(ev.DecodeProb) {
				seen.Decoded = []int{int(ev.TID)}
				decodedEv = &d.inbox[0]
			}
		default:
			seen.Collision = d.rng.Bool(d.Cfg.CollisionDetectProb)
			if d.rng.Bool(d.Cfg.CaptureProb) {
				// Capture effect: the strongest burst survives.
				best := 0
				for i, ev := range d.inbox {
					if ev.Amplitude > d.inbox[best].Amplitude {
						best = i
					}
				}
				if d.rng.Bool(d.inbox[best].DecodeProb) {
					seen.Decoded = []int{int(d.inbox[best].TID)}
					decodedEv = &d.inbox[best]
				}
			}
		}
	}

	if decodedEv != nil {
		d.Decoded++
		tid := decodedEv.TID
		d.Payloads[tid] = append(d.Payloads[tid], decodedEv.Payload)
		if len(d.Payloads[tid]) > 64 {
			d.Payloads[tid] = d.Payloads[tid][1:]
		}
		d.PingPongs = append(d.PingPongs, PingPongSample{
			Stage1: bx.End - bx.Start,
			Stage2: decodedEv.End + d.Cfg.ProcessingDelay - bx.End,
		})
		if len(d.PingPongs) > 100000 {
			d.PingPongs = d.PingPongs[1:]
		}
	}

	d.Window.Observe(seen.NonEmpty(), seen.Collision)
	d.Convergence.Observe(seen.Collision)
	slot := d.Proto.Slot()
	d.SlotsRun++
	fb, err := d.Proto.EndSlot(seen)
	if err != nil {
		// The decode chain yields 4-bit TIDs, far inside the protocol
		// bound; reaching this means a corrupted inbox, so drop the
		// observation and keep beaconing the previous feedback.
		fb = d.fb
	}
	d.fb = fb
	if d.Trace.Enabled() {
		tids := make([]int, len(d.inbox))
		for i, ev := range d.inbox {
			tids[i] = int(ev.TID)
		}
		d.Trace.Emit(obs.Event{Kind: obs.KindSlotClose, Slot: slot, T: now.Seconds(),
			TIDs: tids, Decoded: seen.Decoded, Collision: seen.Collision,
			ACK: d.fb.ACK, Empty: d.fb.Empty})
	}
	d.beginSlot(now)
}
