// Package mcu simulates the tag's microcontroller — an MSP430G2553
// operated the way the paper operates it: 1.8-2.3 V supply straight
// from the supercapacitor, a 12 kHz low-frequency timer clock, and an
// interrupt-driven software architecture in which the CPU sleeps in
// LPM3 and wakes only for GPIO edges (DL demodulation), timer ticks
// (UL modulation) and software interrupts (network events).
//
// Power is accounted the way Table 2 measures it: the CPU draws its
// active current only for the cycles an ISR actually runs and the LPM3
// floor otherwise, so the RX/TX/IDLE averages *emerge* from interrupt
// activity rather than being looked up.
package mcu

import (
	"fmt"

	"repro/internal/sim"
)

// Mode is the network-level operating mode used for the Table 2 power
// breakdown.
type Mode int

const (
	// ModeIdle: deep sleep between slots, no traffic expected.
	ModeIdle Mode = iota
	// ModeRX: receiving a beacon (edge interrupts active).
	ModeRX
	// ModeTX: backscattering a packet (timer interrupts active).
	ModeTX
)

func (m Mode) String() string {
	switch m {
	case ModeIdle:
		return "IDLE"
	case ModeRX:
		return "RX"
	case ModeTX:
		return "TX"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config holds the electrical parameters of the MCU model. Defaults
// reproduce the MSP430G2553 at 2.0 V as measured in Table 2.
type Config struct {
	// SupplyVolts is the nominal MCU rail (cutoff output).
	SupplyVolts float64
	// ClockHz is the low-frequency timer clock (12 kHz).
	ClockHz float64
	// CPUHz is the CPU core clock while awake.
	CPUHz float64
	// ActiveAmps is the CPU current while executing.
	ActiveAmps float64
	// SleepAmps is the LPM3 floor.
	SleepAmps float64
	// ClockToleranceFrac is the 1-sigma relative frequency error of the
	// supercap-powered (non-LDO) clock; it limits PIE timing accuracy
	// at high DL rates (Sec. 6.3).
	ClockToleranceFrac float64
	// PeripheralIdleAmps / PeripheralRXAmps are the analog front-end
	// draws (envelope detector, comparator, cutoff monitor).
	PeripheralIdleAmps float64
	PeripheralRXAmps   float64
	// SwitchCapFarads is the effective capacitance of the PZT MOSFET
	// switch network; toggling it dominates TX power (Sec. 6.2).
	SwitchCapFarads float64
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		SupplyVolts:        2.0,
		ClockHz:            12_000,
		CPUHz:              1_000_000,
		ActiveAmps:         45e-6,
		SleepAmps:          0.6e-6,
		ClockToleranceFrac: 0.01,
		PeripheralIdleAmps: 3.2e-6,
		PeripheralRXAmps:   6.0e-6,
		SwitchCapFarads:    31e-9,
	}
}

// ISR cycle budgets used by the tag firmware. With the 1 MHz core
// clock these durations reproduce the Table 2 duty cycles: at 250 bps
// PIE (about 200 edges/s) the RX average lands at 6.4 uA; at 375 bps
// FM0 (375 timer ticks/s) the TX average lands at 4.7 uA.
const (
	// EdgeISRCycles is the cost of one DL edge interrupt: timer
	// reset/read, PIE classification and preamble matching.
	EdgeISRCycles = 650
	// TXTimerISRCycles is the cost of one UL timer interrupt: fetch the
	// next chip and drive the PZT switch pin.
	TXTimerISRCycles = 250
	// NetISRCycles is the cost of the software interrupt that runs the
	// network state machine after a complete beacon decodes.
	NetISRCycles = 400
)

// MCU is one simulated microcontroller bound to a simulation engine.
type MCU struct {
	Cfg    Config
	engine *sim.Engine
	rng    *sim.Rand

	mode     Mode
	lastAt   sim.Time
	clockPPM float64 // per-unit frequency error of this part

	meter    Meter
	timer    *Timer
	pinIn    *InputPin
	pinOut   *OutputPin
	toggles  uint64 // MOSFET switch transitions, for TX power
	lastPinO bool
}

// New creates an MCU on the engine. rng individualizes the clock error
// of this part (the non-LDO supply makes each tag's clock slightly
// different).
func New(engine *sim.Engine, cfg Config, rng *sim.Rand) *MCU {
	m := &MCU{
		Cfg:    cfg,
		engine: engine,
		rng:    rng,
		lastAt: engine.Now(),
	}
	if rng != nil && cfg.ClockToleranceFrac > 0 {
		m.clockPPM = rng.NormFloat64() * cfg.ClockToleranceFrac
	}
	m.timer = newTimer(m)
	m.pinIn = &InputPin{mcu: m}
	m.pinOut = &OutputPin{mcu: m}
	return m
}

// Engine exposes the simulation engine (for firmware scheduling).
func (m *MCU) Engine() *sim.Engine { return m.engine }

// Timer returns the MCU's timer peripheral.
func (m *MCU) Timer() *Timer { return m.timer }

// In returns the demodulator input pin.
func (m *MCU) In() *InputPin { return m.pinIn }

// Out returns the PZT switch control pin.
func (m *MCU) Out() *OutputPin { return m.pinOut }

// ClockHz returns this part's actual clock frequency including its
// supply-dependent error.
func (m *MCU) ClockHz() float64 { return m.Cfg.ClockHz * (1 + m.clockPPM) }

// TickDuration returns the duration of n clock ticks in simulation
// time, as experienced by this part's skewed clock.
func (m *MCU) TickDuration(n int) sim.Time {
	return sim.Time(float64(n) / m.ClockHz() * float64(sim.Second))
}

// Mode returns the current accounting mode.
func (m *MCU) Mode() Mode { return m.mode }

// SetMode checkpoints power accounting and switches mode.
func (m *MCU) SetMode(mode Mode) {
	m.checkpoint()
	m.mode = mode
}

// checkpoint integrates the sleep-floor and peripheral currents since
// the last accounting event into the meter.
func (m *MCU) checkpoint() {
	now := m.engine.Now()
	dt := (now - m.lastAt).Seconds()
	if dt > 0 {
		floor := m.Cfg.SleepAmps + m.peripheralAmps()
		m.meter.add(m.mode, floor*dt)
		m.meter.addTime(m.mode, dt)
	}
	m.lastAt = now
}

func (m *MCU) peripheralAmps() float64 {
	switch m.mode {
	case ModeRX:
		return m.Cfg.PeripheralRXAmps
	case ModeTX:
		// The front end stays powered during TX too (always-on design).
		return m.Cfg.PeripheralIdleAmps
	default:
		return m.Cfg.PeripheralIdleAmps
	}
}

// WakeFor accounts an ISR of the given CPU cycle count: the CPU's
// active-vs-sleep current delta for the execution window.
func (m *MCU) WakeFor(cycles int) {
	m.checkpoint()
	if cycles <= 0 {
		return
	}
	dur := float64(cycles) / m.Cfg.CPUHz
	extra := (m.Cfg.ActiveAmps - m.Cfg.SleepAmps) * dur
	m.meter.add(m.mode, extra)
}

// noteToggle accounts one MOSFET gate transition: Q = C*V of gate
// charge drawn from the rail.
func (m *MCU) noteToggle() {
	m.toggles++
	m.meter.add(m.mode, m.Cfg.SwitchCapFarads*m.Cfg.SupplyVolts)
}

// Toggles returns the number of PZT switch transitions so far.
func (m *MCU) Toggles() uint64 { return m.toggles }

// Meter checkpoints and returns a copy of the power accounting.
func (m *MCU) Meter() Meter {
	m.checkpoint()
	return m.meter
}
