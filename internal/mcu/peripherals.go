package mcu

import (
	"repro/internal/sim"
)

// Timer is the MSP430-style timer peripheral clocked at the (skewed)
// 12 kHz low-frequency clock. It serves two roles, matching Fig. 6:
//
//   - UL modulation: periodic interrupts at a clock-divider interval
//     wake the CPU to set the PZT switch for the next chip;
//   - DL demodulation: a free-running counter that the edge ISRs reset
//     and read to measure PIE pulse intervals, with the quantization of
//     a real 12 kHz counter.
type Timer struct {
	mcu *MCU

	periodic   *sim.Event
	resetAt    sim.Time
	isrCycles  int
	intervalTk int
	callback   func(now sim.Time)
}

func newTimer(m *MCU) *Timer { return &Timer{mcu: m, resetAt: m.engine.Now()} }

// StartPeriodic arranges for fn to be called every divider clock ticks,
// charging isrCycles of CPU time per invocation. Any previous periodic
// schedule is cancelled.
func (t *Timer) StartPeriodic(divider, isrCycles int, fn func(now sim.Time)) {
	t.StopPeriodic()
	if divider < 1 {
		divider = 1
	}
	t.intervalTk = divider
	t.isrCycles = isrCycles
	t.callback = fn
	t.schedule()
}

func (t *Timer) schedule() {
	t.periodic = t.mcu.engine.After(t.mcu.TickDuration(t.intervalTk), "mcu-timer", func(now sim.Time) {
		t.mcu.WakeFor(t.isrCycles)
		cb := t.callback
		if cb == nil {
			return
		}
		t.schedule()
		cb(now)
	})
}

// StopPeriodic cancels the periodic interrupt.
func (t *Timer) StopPeriodic() {
	if t.periodic != nil {
		t.mcu.engine.Cancel(t.periodic)
		t.periodic = nil
	}
	t.callback = nil
}

// Running reports whether a periodic interrupt is armed.
func (t *Timer) Running() bool { return t.callback != nil }

// ResetCounter zeroes the free-running counter (positive-edge ISR).
func (t *Timer) ResetCounter() { t.resetAt = t.mcu.engine.Now() }

// ReadCounter returns the elapsed ticks since the last reset, with the
// integer quantization of the real counter (negative-edge ISR).
func (t *Timer) ReadCounter() int {
	elapsed := (t.mcu.engine.Now() - t.resetAt).Seconds()
	return int(elapsed * t.mcu.ClockHz())
}

// InputPin is the demodulator GPIO: the comparator output wired to an
// edge-interrupt-capable pin. The channel simulation injects edges; the
// firmware registers a handler.
type InputPin struct {
	mcu     *MCU
	level   bool
	handler func(rising bool, now sim.Time)
	// ISRCycles is the CPU cost charged per edge interrupt.
	ISRCycles int
}

// OnEdge installs the edge ISR. cycles is the CPU cost per edge.
func (p *InputPin) OnEdge(cycles int, fn func(rising bool, now sim.Time)) {
	p.ISRCycles = cycles
	p.handler = fn
}

// ClearHandler disables the edge ISR.
func (p *InputPin) ClearHandler() { p.handler = nil }

// Level returns the current pin level.
func (p *InputPin) Level() bool { return p.level }

// Inject drives the pin to the given level at the current simulation
// time; a level change fires the edge ISR (waking the CPU).
func (p *InputPin) Inject(level bool) {
	if level == p.level {
		return
	}
	p.level = level
	if p.handler != nil {
		p.mcu.WakeFor(p.ISRCycles)
		p.handler(level, p.mcu.engine.Now())
	}
}

// OutputPin drives the PZT MOSFET switch. Each level change costs the
// gate charge accounted by the MCU (the dominant TX power term).
type OutputPin struct {
	mcu   *MCU
	level bool
}

// Set drives the pin; transitions are accounted as gate toggles.
func (p *OutputPin) Set(level bool) {
	if level == p.level {
		return
	}
	p.level = level
	p.mcu.noteToggle()
}

// Level returns the pin state.
func (p *OutputPin) Level() bool { return p.level }

// ADC is the 10-bit successive-approximation converter used by the
// strain module. A conversion is expensive (the pre-amplifier and ADC
// together draw about 1 mW, Sec. 6.5), so firmware samples at most once
// per slot.
type ADC struct {
	// VRefVolts is the full-scale reference.
	VRefVolts float64
	// Bits is the resolution (10 for the ADC10 block).
	Bits int
	// ConversionWatts is the burst power while converting.
	ConversionWatts float64
	// ConversionSeconds is the burst duration.
	ConversionSeconds float64
}

// NewADC returns the ADC10 at a 1.8 V reference.
func NewADC() *ADC {
	return &ADC{VRefVolts: 1.8, Bits: 10, ConversionWatts: 1e-3, ConversionSeconds: 2e-3}
}

// Convert quantizes an input voltage to a code, clamping to range.
func (a *ADC) Convert(volts float64) uint16 {
	max := (1 << a.Bits) - 1
	if volts <= 0 {
		return 0
	}
	if volts >= a.VRefVolts {
		return uint16(max)
	}
	return uint16(volts / a.VRefVolts * float64(max+1))
}

// ConversionEnergy returns the joules one conversion burst costs.
func (a *ADC) ConversionEnergy() float64 {
	return a.ConversionWatts * a.ConversionSeconds
}
