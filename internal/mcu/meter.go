package mcu

// Meter accumulates charge (ampere-seconds) and residency time per
// operating mode, from which the Table 2 current and power averages are
// derived.
type Meter struct {
	ChargeAs [3]float64 // indexed by Mode
	Seconds  [3]float64
}

func (p *Meter) add(m Mode, coulombs float64) { p.ChargeAs[m] += coulombs }
func (p *Meter) addTime(m Mode, s float64)    { p.Seconds[m] += s }

// AverageAmps returns the mean current in the given mode over its
// residency time, or 0 if the mode was never entered.
func (p Meter) AverageAmps(m Mode) float64 {
	if p.Seconds[m] <= 0 {
		return 0
	}
	return p.ChargeAs[m] / p.Seconds[m]
}

// AveragePowerWatts returns the mean power in the mode at the given
// supply voltage.
func (p Meter) AveragePowerWatts(m Mode, supplyVolts float64) float64 {
	return p.AverageAmps(m) * supplyVolts
}

// TotalCharge returns the total charge drawn across all modes.
func (p Meter) TotalCharge() float64 {
	return p.ChargeAs[ModeIdle] + p.ChargeAs[ModeRX] + p.ChargeAs[ModeTX]
}

// TotalSeconds returns total accounted time.
func (p Meter) TotalSeconds() float64 {
	return p.Seconds[ModeIdle] + p.Seconds[ModeRX] + p.Seconds[ModeTX]
}

// AverageWatts returns the long-run average power at the given supply.
func (p Meter) AverageWatts(supplyVolts float64) float64 {
	t := p.TotalSeconds()
	if t <= 0 {
		return 0
	}
	return p.TotalCharge() / t * supplyVolts
}
