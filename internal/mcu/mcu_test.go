package mcu

import (
	"math"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

func newTestMCU(seed uint64) (*sim.Engine, *MCU) {
	e := sim.NewEngine()
	return e, New(e, DefaultConfig(), sim.NewRand(seed))
}

func TestModeString(t *testing.T) {
	if ModeIdle.String() != "IDLE" || ModeRX.String() != "RX" || ModeTX.String() != "TX" {
		t.Error("mode names wrong")
	}
	if Mode(7).String() != "Mode(7)" {
		t.Error("unknown mode formatting")
	}
}

func TestClockSkewIndividualized(t *testing.T) {
	e := sim.NewEngine()
	a := New(e, DefaultConfig(), sim.NewRand(1))
	b := New(e, DefaultConfig(), sim.NewRand(2))
	if a.ClockHz() == b.ClockHz() {
		t.Error("two parts should have different clock errors")
	}
	// Error within a few sigma of the 1% tolerance.
	for _, m := range []*MCU{a, b} {
		if math.Abs(m.ClockHz()-12000)/12000 > 0.05 {
			t.Errorf("clock %v too far off nominal", m.ClockHz())
		}
	}
	// No RNG -> exact nominal clock.
	c := New(e, DefaultConfig(), nil)
	if c.ClockHz() != 12000 {
		t.Error("nil RNG should give nominal clock")
	}
}

func TestTickDuration(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, DefaultConfig(), nil)
	// 12 ticks of a 12 kHz clock = 1 ms.
	if d := m.TickDuration(12); d != sim.Millisecond {
		t.Errorf("12 ticks = %v, want 1 ms", d)
	}
}

func TestTimerPeriodicInterrupts(t *testing.T) {
	e, m := newTestMCU(3)
	count := 0
	m.Timer().StartPeriodic(32, TXTimerISRCycles, func(sim.Time) { count++ })
	e.RunUntil(sim.Second)
	// Divider 32 at ~12 kHz -> 375 interrupts/s.
	if count < 360 || count > 390 {
		t.Errorf("interrupts in 1 s = %d, want ~375", count)
	}
	if !m.Timer().Running() {
		t.Error("timer should still be running")
	}
	m.Timer().StopPeriodic()
	if m.Timer().Running() {
		t.Error("timer should be stopped")
	}
	before := count
	e.RunUntil(2 * sim.Second)
	if count != before {
		t.Error("stopped timer kept firing")
	}
}

func TestTimerRestartReplacesSchedule(t *testing.T) {
	e, m := newTestMCU(4)
	var a, b int
	m.Timer().StartPeriodic(12, 10, func(sim.Time) { a++ })
	m.Timer().StartPeriodic(24, 10, func(sim.Time) { b++ })
	e.RunUntil(sim.Second)
	if a != 0 {
		t.Errorf("first schedule fired %d times after replacement", a)
	}
	if b < 480 || b > 520 {
		t.Errorf("second schedule fired %d, want ~500", b)
	}
}

func TestTimerCounterQuantization(t *testing.T) {
	e, m := newTestMCU(5)
	m.Timer().ResetCounter()
	e.After(10*sim.Millisecond, "wait", func(sim.Time) {})
	e.Run()
	ticks := m.Timer().ReadCounter()
	// 10 ms at ~12 kHz is ~120 ticks; the count must be an integer and
	// close to the true value.
	if ticks < 115 || ticks > 125 {
		t.Errorf("counter = %d, want ~120", ticks)
	}
}

func TestInputPinEdges(t *testing.T) {
	_, m := newTestMCU(6)
	var edges []bool
	m.In().OnEdge(EdgeISRCycles, func(rising bool, now sim.Time) {
		edges = append(edges, rising)
	})
	m.In().Inject(true)
	m.In().Inject(true) // no change, no edge
	m.In().Inject(false)
	m.In().Inject(true)
	if len(edges) != 3 {
		t.Fatalf("edges = %v, want 3", edges)
	}
	if !edges[0] || edges[1] || !edges[2] {
		t.Errorf("edge polarity wrong: %v", edges)
	}
	if !m.In().Level() {
		t.Error("pin level wrong")
	}
	m.In().ClearHandler()
	m.In().Inject(false)
	if len(edges) != 3 {
		t.Error("cleared handler still fired")
	}
}

func TestOutputPinTogglesAccounted(t *testing.T) {
	_, m := newTestMCU(7)
	m.Out().Set(true)
	m.Out().Set(true) // no transition
	m.Out().Set(false)
	if m.Toggles() != 2 {
		t.Errorf("toggles = %d, want 2", m.Toggles())
	}
	if !m.Out().Level() == true && m.Out().Level() {
		t.Error("level wrong")
	}
}

func TestADCQuantization(t *testing.T) {
	a := NewADC()
	if a.Convert(0) != 0 {
		t.Error("zero input")
	}
	if a.Convert(-1) != 0 {
		t.Error("negative input must clamp")
	}
	if a.Convert(2.0) != 1023 {
		t.Error("over-range must clamp to full scale")
	}
	mid := a.Convert(0.9)
	if mid < 510 || mid > 514 {
		t.Errorf("midscale = %d, want ~512", mid)
	}
	if a.ConversionEnergy() <= 0 {
		t.Error("conversion energy must be positive")
	}
	// ~1 mW for 2 ms = 2 uJ: expensive relative to the 51 uW TX budget,
	// which is why the firmware samples once per slot (Sec. 6.5).
	if a.ConversionEnergy() < 1e-6 {
		t.Error("conversion energy implausibly low")
	}
}

// TestTable2RXCurrent drives the MCU with a realistic beacon edge
// pattern (PIE at 250 bps) and checks the emergent average RX current
// against the paper's 12.4 uA total / 24.8 uW.
func TestTable2RXCurrent(t *testing.T) {
	e, m := newTestMCU(8)
	m.SetMode(ModeRX)
	m.In().OnEdge(EdgeISRCycles, func(rising bool, now sim.Time) {})

	// A beacon is ~10 bits = ~25 chips of 4 ms: with continuous beacon
	// traffic there are 2 edges per PIE bit -> ~200 edges/s.
	frame, err := (phy.Beacon{Cmd: phy.CmdACK}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	chips := phy.PIEEncode(frame)
	chipDur := sim.Time(4 * sim.Millisecond)
	var inject func(i int) func(sim.Time)
	inject = func(i int) func(sim.Time) {
		return func(sim.Time) {
			m.In().Inject(chips[i%len(chips)]&1 == 1)
			e.After(chipDur, "chip", inject(i+1))
		}
	}
	e.After(0, "start", inject(0))
	e.RunUntil(20 * sim.Second)

	meter := m.Meter()
	gotUA := meter.AverageAmps(ModeRX) * 1e6
	if math.Abs(gotUA-12.4) > 2.5 {
		t.Errorf("RX current = %.1f uA, want 12.4 +/- 2.5", gotUA)
	}
	gotUW := meter.AveragePowerWatts(ModeRX, 2.0) * 1e6
	if math.Abs(gotUW-24.8) > 5 {
		t.Errorf("RX power = %.1f uW, want ~24.8", gotUW)
	}
}

// TestTable2TXCurrent drives the TX timer with FM0 chips at 375 bps and
// checks the emergent average against 25.5 uA / 51.0 uW.
func TestTable2TXCurrent(t *testing.T) {
	e, m := newTestMCU(9)
	m.SetMode(ModeTX)
	// A long random-ish FM0 chip sequence.
	frame, err := phy.ULPacket{TID: 5, Payload: 0x9A5}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	chips := phy.FM0Encode(frame, 0)
	i := 0
	m.Timer().StartPeriodic(32, TXTimerISRCycles, func(sim.Time) {
		m.Out().Set(chips[i%len(chips)]&1 == 1)
		i++
	})
	e.RunUntil(20 * sim.Second)
	meter := m.Meter()
	gotUA := meter.AverageAmps(ModeTX) * 1e6
	if math.Abs(gotUA-25.5) > 5 {
		t.Errorf("TX current = %.1f uA, want 25.5 +/- 5", gotUA)
	}
	gotUW := meter.AveragePowerWatts(ModeTX, 2.0) * 1e6
	if math.Abs(gotUW-51.0) > 10 {
		t.Errorf("TX power = %.1f uW, want ~51.0", gotUW)
	}
}

// TestTable2IdleCurrent checks the sleep floor: 3.8 uA / 7.6 uW.
func TestTable2IdleCurrent(t *testing.T) {
	e, m := newTestMCU(10)
	m.SetMode(ModeIdle)
	e.After(30*sim.Second, "wake", func(sim.Time) {})
	e.Run()
	meter := m.Meter()
	gotUA := meter.AverageAmps(ModeIdle) * 1e6
	if math.Abs(gotUA-3.8) > 0.5 {
		t.Errorf("IDLE current = %.2f uA, want 3.8", gotUA)
	}
	gotUW := meter.AveragePowerWatts(ModeIdle, 2.0) * 1e6
	if math.Abs(gotUW-7.6) > 1.0 {
		t.Errorf("IDLE power = %.2f uW, want 7.6", gotUW)
	}
}

// TestInterruptDrivenSavings reproduces the Sec. 4.3 claim: the
// interrupt-driven architecture cuts CPU current by over 80% versus
// keeping the CPU continuously active.
func TestInterruptDrivenSavings(t *testing.T) {
	cfg := DefaultConfig()
	// Continuous active mode: the CPU never sleeps.
	continuous := cfg.ActiveAmps // 45 uA

	// Interrupt-driven RX duty: ~200 ISRs/s * 650 cycles at 1 MHz.
	e, m := newTestMCU(11)
	m.SetMode(ModeRX)
	m.In().OnEdge(EdgeISRCycles, func(bool, sim.Time) {})
	toggle := false
	var step func(sim.Time)
	step = func(sim.Time) {
		toggle = !toggle
		m.In().Inject(toggle)
		e.After(5*sim.Millisecond, "edge", step) // 200 edges/s
	}
	e.After(0, "start", step)
	e.RunUntil(10 * sim.Second)
	meter := m.Meter()
	// Subtract the analog front end: compare CPU draw only.
	cpu := meter.AverageAmps(ModeRX) - cfg.PeripheralRXAmps
	saving := 1 - cpu/continuous
	if saving < 0.80 {
		t.Errorf("interrupt-driven saving = %.0f%%, want > 80%%", saving*100)
	}
}

func TestMeterAggregates(t *testing.T) {
	var p Meter
	p.add(ModeRX, 1e-6)
	p.addTime(ModeRX, 2)
	p.add(ModeTX, 2e-6)
	p.addTime(ModeTX, 1)
	if got := p.AverageAmps(ModeRX); math.Abs(got-0.5e-6) > 1e-12 {
		t.Errorf("RX avg = %v", got)
	}
	if p.AverageAmps(ModeIdle) != 0 {
		t.Error("unvisited mode should average 0")
	}
	if math.Abs(p.TotalCharge()-3e-6) > 1e-12 || p.TotalSeconds() != 3 {
		t.Error("totals wrong")
	}
	if got := p.AverageWatts(2.0); math.Abs(got-2e-6) > 1e-12 {
		t.Errorf("average watts = %v", got)
	}
	var empty Meter
	if empty.AverageWatts(2.0) != 0 {
		t.Error("empty meter should average 0")
	}
}
