package strain

import (
	"math"
	"testing"
)

func TestGaugeResistance(t *testing.T) {
	g := DefaultGauge()
	if r := g.Resistance(0); r != g.NominalOhms {
		t.Errorf("unstrained resistance = %v", r)
	}
	// 1000 microstrain with GF 2.1: dR/R = 2.1e-3.
	r := g.Resistance(1e-3)
	want := 350 * (1 + 2.1e-3)
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("R = %v, want %v", r, want)
	}
	// Compression decreases resistance.
	if g.Resistance(-1e-3) >= g.NominalOhms {
		t.Error("compression should lower resistance")
	}
}

func TestBridgeLinearAndSigned(t *testing.T) {
	b := DefaultBridge()
	if b.DifferentialVolts(0) != 0 {
		t.Error("balanced bridge should output zero")
	}
	v1 := b.DifferentialVolts(1e-3)
	v2 := b.DifferentialVolts(2e-3)
	if math.Abs(v2-2*v1) > 1e-12 {
		t.Error("bridge not linear")
	}
	if b.DifferentialVolts(-1e-3) != -v1 {
		t.Error("bridge not antisymmetric")
	}
	// Full bridge at 1.8 V, GF 2.1, 1 millistrain: 3.78 mV.
	if math.Abs(v1-1.8*2.1*1e-3) > 1e-12 {
		t.Errorf("sensitivity = %v", v1)
	}
}

func TestAmplifierOffsetAndClamp(t *testing.T) {
	a := DefaultAmplifier()
	if a.Output(0) != a.OffsetVolts {
		t.Error("zero input should sit at offset")
	}
	if a.Output(1.0) != a.RailVolts {
		t.Error("positive overload should clamp to rail")
	}
	if a.Output(-1.0) != 0 {
		t.Error("negative overload should clamp to zero")
	}
	// Small-signal gain.
	dv := a.Output(1e-3) - a.Output(0)
	if math.Abs(dv-0.07) > 1e-9 {
		t.Errorf("gain = %v, want 70 V/V", dv/1e-3)
	}
}

func TestBeamRange(t *testing.T) {
	b := DefaultBeam()
	if _, err := b.StrainAt(0.2); err == nil {
		t.Error("out-of-range displacement accepted")
	}
	eps, err := b.StrainAt(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 {
		t.Error("positive displacement should strain positively")
	}
}

// TestFig17Shape verifies the case study's observable: voltage is
// monotone in displacement over the +/-10 cm sweep, spans a clearly
// measurable range, and stays within the 1.8 V single-supply rails.
func TestFig17Shape(t *testing.T) {
	s := NewSensor()
	prev := -1.0
	var minV, maxV = math.Inf(1), math.Inf(-1)
	for d := -0.10; d <= 0.101; d += 0.02 {
		v, err := s.VoltageAt(d)
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		if v <= prev {
			t.Fatalf("voltage not strictly increasing at d=%v", d)
		}
		prev = v
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if minV < 0 || maxV > 1.8 {
		t.Errorf("range [%v, %v] escapes the rails", minV, maxV)
	}
	if maxV-minV < 0.5 {
		t.Errorf("span %.3f V too small to digitize meaningfully", maxV-minV)
	}
	// Zero displacement sits at the amplifier offset midpoint.
	mid, _ := s.VoltageAt(0)
	if math.Abs(mid-0.9) > 1e-9 {
		t.Errorf("midpoint = %v, want 0.9", mid)
	}
}

func TestSensorOutOfRange(t *testing.T) {
	s := NewSensor()
	if _, err := s.VoltageAt(0.5); err == nil {
		t.Error("out-of-range displacement accepted")
	}
}
