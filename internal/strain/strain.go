// Package strain models the tag's sensing front end for the Sec. 6.5
// case study: a metal-foil strain gauge in a full Wheatstone bridge,
// a bridge amplifier running from the tag's 1.8 V rail, and the
// displacement-to-voltage chain used to monitor metal bending.
package strain

import (
	"fmt"
	"math"
)

// Gauge is a metal-foil strain gauge bonded to the monitored surface.
type Gauge struct {
	// NominalOhms is the unstrained resistance (120 or 350 typical).
	NominalOhms float64
	// GaugeFactor relates relative resistance change to strain:
	// dR/R = GF * epsilon.
	GaugeFactor float64
}

// DefaultGauge returns a 350-ohm foil gauge with GF 2.1.
func DefaultGauge() Gauge { return Gauge{NominalOhms: 350, GaugeFactor: 2.1} }

// Resistance returns the gauge resistance under strain epsilon
// (dimensionless, e.g. 1e-3 = 1000 microstrain).
func (g Gauge) Resistance(epsilon float64) float64 {
	return g.NominalOhms * (1 + g.GaugeFactor*epsilon)
}

// Bridge is a full Wheatstone bridge: four gauges, two in tension and
// two in compression, which quadruples sensitivity and cancels
// temperature drift.
type Bridge struct {
	Gauge Gauge
	// ExcitationVolts is the bridge supply (the tag's 1.8 V rail; the
	// TI reference design the paper adapts runs at 3.3 V, lowered here
	// for the energy budget).
	ExcitationVolts float64
}

// DefaultBridge returns the paper's 1.8 V full bridge.
func DefaultBridge() Bridge {
	return Bridge{Gauge: DefaultGauge(), ExcitationVolts: 1.8}
}

// DifferentialVolts returns the bridge output for strain epsilon. For a
// full bridge: Vout = Vex * GF * epsilon.
func (b Bridge) DifferentialVolts(epsilon float64) float64 {
	return b.ExcitationVolts * b.Gauge.GaugeFactor * epsilon
}

// Amplifier is the instrumentation stage between bridge and ADC.
type Amplifier struct {
	// Gain is the voltage gain.
	Gain float64
	// OffsetVolts shifts the output midscale so the single-supply ADC
	// can see both strain polarities.
	OffsetVolts float64
	// RailVolts clamps the output.
	RailVolts float64
}

// DefaultAmplifier matches the single-supply reference design adapted
// to the 1.8 V rail; the gain is set so the Fig. 17 +/-10 cm sweep
// spans ~0.4-1.4 V without hitting the rails.
func DefaultAmplifier() Amplifier {
	return Amplifier{Gain: 70, OffsetVolts: 0.9, RailVolts: 1.8}
}

// Output returns the amplified, offset, rail-clamped voltage.
func (a Amplifier) Output(diffVolts float64) float64 {
	v := a.OffsetVolts + a.Gain*diffVolts
	if v < 0 {
		return 0
	}
	if v > a.RailVolts {
		return a.RailVolts
	}
	return v
}

// Beam converts end displacement of the Sec. 6.5 test plate into strain
// at the gauge location: a cantilever-like linear relation within the
// tested range, epsilon = k * displacement.
type Beam struct {
	// StrainPerMeter is the strain induced per meter of end
	// displacement at the gauge position.
	StrainPerMeter float64
	// MaxDisplacementM bounds the linear model's validity.
	MaxDisplacementM float64
}

// DefaultBeam is calibrated so the +/-10 cm sweep of Fig. 17 spans
// most of the amplifier's output range.
func DefaultBeam() Beam {
	return Beam{StrainPerMeter: 0.018, MaxDisplacementM: 0.12}
}

// StrainAt returns the strain for an end displacement (meters).
func (b Beam) StrainAt(displacementM float64) (float64, error) {
	if math.Abs(displacementM) > b.MaxDisplacementM {
		return 0, fmt.Errorf("strain: displacement %.3f m outside linear range", displacementM)
	}
	return b.StrainPerMeter * displacementM, nil
}

// Sensor is the complete chain: beam -> gauge bridge -> amplifier.
type Sensor struct {
	Beam   Beam
	Bridge Bridge
	Amp    Amplifier
}

// NewSensor assembles the default Fig. 17 chain.
func NewSensor() *Sensor {
	return &Sensor{Beam: DefaultBeam(), Bridge: DefaultBridge(), Amp: DefaultAmplifier()}
}

// VoltageAt returns the amplifier output for a given end displacement.
func (s *Sensor) VoltageAt(displacementM float64) (float64, error) {
	eps, err := s.Beam.StrainAt(displacementM)
	if err != nil {
		return 0, err
	}
	return s.Amp.Output(s.Bridge.DifferentialVolts(eps)), nil
}
