package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"
)

// Distribution summarizes one metric's per-job samples fleet-wide.
// All statistics, including the mean, are computed over the sorted
// sample multiset, so a Distribution is a pure function of the sample
// values — independent of completion order.
type Distribution struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P75   float64 `json:"p75"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// NewDistribution aggregates samples; the zero Distribution is
// returned for an empty slice.
func NewDistribution(samples []float64) Distribution {
	if len(samples) == 0 {
		return Distribution{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Distribution{
		Count: len(s), Sum: sum, Mean: sum / float64(len(s)),
		Min: s[0], P25: q(0.25), P50: q(0.5), P75: q(0.75),
		P90: q(0.90), P99: q(0.99), Max: s[len(s)-1],
	}
}

// String renders the headline statistics.
func (d Distribution) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g min=%.3g max=%.3g",
		d.Count, d.Mean, d.P50, d.P90, d.P99, d.Min, d.Max)
}

// Snapshot is the live progress view of a running pool.
type Snapshot struct {
	Total     int `json:"total"`
	Done      int `json:"done"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Panicked  int `json:"panicked"`
	TimedOut  int `json:"timed_out"`
	Cancelled int `json:"cancelled"`

	Metrics  map[string]Distribution `json:"metrics"`
	Counters map[string]uint64       `json:"counters"`
	Elapsed  time.Duration           `json:"elapsed_ns"`
}

// String renders a one-line progress summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("%d/%d done (ok=%d failed=%d panicked=%d timed-out=%d cancelled=%d)",
		s.Done, s.Total, s.Completed, s.Failed, s.Panicked, s.TimedOut, s.Cancelled)
}

// aggregator is the streaming side of the metrics layer: workers feed
// outcomes as they finish, snapshots are served on demand.
type aggregator struct {
	mu       sync.Mutex
	start    time.Time
	total    int
	counts   [StatusCancelled + 1]int
	samples  map[string][]float64
	counters map[string]uint64
}

func newAggregator(total int) *aggregator {
	return &aggregator{
		start:    time.Now(), //lint:allow determinism-taint live progress view elapsed time; not part of any fingerprint
		total:    total,
		samples:  make(map[string][]float64),
		counters: make(map[string]uint64),
	}
}

func (a *aggregator) add(o JobOutcome) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if o.Status >= 0 && int(o.Status) < len(a.counts) {
		a.counts[o.Status]++
	}
	if o.Status != StatusOK {
		return
	}
	for name, v := range o.Result.Metrics {
		a.samples[name] = append(a.samples[name], v)
	}
	for name, v := range o.Result.Counters {
		a.counters[name] += v
	}
}

func (a *aggregator) snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	sn := Snapshot{
		Total:     a.total,
		Completed: a.counts[StatusOK],
		Failed:    a.counts[StatusFailed],
		Panicked:  a.counts[StatusPanicked],
		TimedOut:  a.counts[StatusTimedOut],
		Cancelled: a.counts[StatusCancelled],
		Metrics:   make(map[string]Distribution, len(a.samples)),
		Counters:  make(map[string]uint64, len(a.counters)),
		Elapsed:   time.Since(a.start), //lint:allow determinism-taint live progress view elapsed time; not part of any fingerprint
	}
	sn.Done = sn.Completed + sn.Failed + sn.Panicked + sn.TimedOut + sn.Cancelled
	for name, s := range a.samples {
		sn.Metrics[name] = NewDistribution(s)
	}
	for name, v := range a.counters {
		sn.Counters[name] = v
	}
	return sn
}

// Fingerprint hashes everything deterministic about the report — job
// identities, statuses, errors, per-job metrics and counters, and the
// fleet-wide aggregates — and excludes all wall-clock fields. Two runs
// of the same fleet spec must produce the same fingerprint regardless
// of worker count; the determinism regression tests assert exactly
// that.
func (r *Report) Fingerprint() string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	wdist := func(d Distribution) {
		wu(uint64(d.Count))
		for _, v := range []float64{d.Sum, d.Mean, d.Min, d.P25, d.P50, d.P75, d.P90, d.P99, d.Max} {
			wf(v)
		}
	}
	wu(uint64(len(r.Jobs)))
	for _, j := range r.Jobs {
		wu(uint64(j.Index))
		ws(j.Name)
		wu(j.Seed)
		wu(uint64(j.Status))
		ws(j.Err)
		names := make([]string, 0, len(j.Result.Metrics))
		for name := range j.Result.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ws(name)
			wf(j.Result.Metrics[name])
		}
		names = names[:0]
		for name := range j.Result.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ws(name)
			wu(j.Result.Counters[name])
		}
	}
	names := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws(name)
		wdist(r.Metrics[name])
	}
	names = names[:0]
	for name := range r.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws(name)
		wu(r.Counters[name])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
