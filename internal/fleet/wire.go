package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/wire"
)

// Binary wire codecs (internal/wire format, DESIGN.md §11) for the two
// fleet records that cross process boundaries: the job descriptor
// (JDS1) and the job outcome (JOC1) the fleetd checkpoint store
// persists. Both use fixed field order rather than presence bitmaps —
// they are envelope records, not hot-path trace events — and encode
// Result maps in strictly ascending key order, so the encoding is
// canonical: byte-identical bytes in means byte-identical bytes out,
// which is what lets checkpoint CRCs and fingerprints survive a round
// trip through the binary store.

// MarshalJobInfoSize returns the encoded size of info's frame.
func MarshalJobInfoSize(info *JobInfo) int {
	return wire.FrameHeaderSize + wire.VarintSize(int64(info.Index)) +
		wire.StringSize(info.Name) + 8
}

// AppendJobInfo appends info as one JDS1 frame.
func AppendJobInfo(dst []byte, info *JobInfo) []byte {
	start := len(dst)
	dst = wire.BeginFrame(dst, wire.TagJobDescriptor)
	dst = appendJobInfoFields(dst, info)
	return wire.EndFrame(dst, start)
}

func appendJobInfoFields(dst []byte, info *JobInfo) []byte {
	dst = wire.AppendVarint(dst, int64(info.Index))
	dst = wire.AppendString(dst, info.Name)
	return wire.AppendU64(dst, info.Seed)
}

// MarshalJobInfo encodes info into buf, which must be at least
// MarshalJobInfoSize(info) long; it returns the bytes written.
func MarshalJobInfo(buf []byte, info *JobInfo) (int, error) {
	size := MarshalJobInfoSize(info)
	if len(buf) < size {
		return 0, fmt.Errorf("%w: job descriptor needs %d bytes, buffer holds %d", wire.ErrShortBuffer, size, len(buf))
	}
	return len(AppendJobInfo(buf[:0], info)), nil
}

// UnmarshalJobInfo parses a JDS1 frame from the front of buf into info
// and returns the bytes consumed.
func UnmarshalJobInfo(buf []byte, info *JobInfo) (int, error) {
	tag, payload, n, err := wire.ConsumeFrame(buf)
	if err != nil {
		return 0, err
	}
	if tag != wire.TagJobDescriptor {
		return 0, fmt.Errorf("%w: %s, want %s", wire.ErrUnknownTag, tag, wire.TagJobDescriptor)
	}
	off, err := consumeJobInfoFields(payload, info)
	if err != nil {
		return 0, err
	}
	if off != len(payload) {
		return 0, fmt.Errorf("%w: %d trailing bytes in job descriptor", wire.ErrMalformed, len(payload)-off)
	}
	return n, nil
}

func consumeJobInfoFields(payload []byte, info *JobInfo) (int, error) {
	idx, off, err := wire.ConsumeVarint(payload)
	if err != nil {
		return 0, err
	}
	name, m, err := wire.ConsumeString(payload[off:])
	if err != nil {
		return 0, err
	}
	off += m
	seed, m, err := wire.ConsumeU64(payload[off:])
	if err != nil {
		return 0, err
	}
	off += m
	*info = JobInfo{Index: int(idx), Name: name, Seed: seed}
	return off, nil
}

// sortedKeys returns m's keys in ascending order (the canonical wire
// order; also the order the deterministic fingerprint walks).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func resultSize(r *Result) int {
	n := wire.UvarintSize(uint64(len(r.Metrics)))
	for k := range r.Metrics {
		n += wire.StringSize(k) + 8
	}
	n += wire.UvarintSize(uint64(len(r.Counters)))
	for k := range r.Counters {
		n += wire.StringSize(k) + 8
	}
	return n
}

func appendResult(dst []byte, r *Result) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(r.Metrics)))
	for _, k := range sortedKeys(r.Metrics) {
		dst = wire.AppendString(dst, k)
		dst = wire.AppendF64Bits(dst, r.Metrics[k])
	}
	dst = wire.AppendUvarint(dst, uint64(len(r.Counters)))
	for _, k := range sortedKeys(r.Counters) {
		dst = wire.AppendString(dst, k)
		dst = wire.AppendU64(dst, r.Counters[k])
	}
	return dst
}

// consumeResult parses a Result, requiring strictly ascending keys (the
// canonical order appendResult writes) so duplicates and shuffled
// re-encodings are rejected rather than silently normalized.
func consumeResult(payload []byte, r *Result) (int, error) {
	*r = Result{}
	nMetrics, off, err := wire.ConsumeUvarint(payload)
	if err != nil {
		return 0, err
	}
	if nMetrics > uint64(len(payload)-off) { // each entry is ≥ 9 bytes
		return 0, fmt.Errorf("%w: %d metrics with %d bytes remaining", wire.ErrTruncated, nMetrics, len(payload)-off)
	}
	var prev string
	for i := uint64(0); i < nMetrics; i++ {
		k, m, err := wire.ConsumeString(payload[off:])
		if err != nil {
			return 0, err
		}
		off += m
		v, m, err := wire.ConsumeF64Bits(payload[off:])
		if err != nil {
			return 0, err
		}
		off += m
		if i > 0 && k <= prev {
			return 0, fmt.Errorf("%w: metric key %q out of order after %q", wire.ErrMalformed, k, prev)
		}
		prev = k
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64, nMetrics)
		}
		r.Metrics[k] = v
	}
	nCounters, m, err := wire.ConsumeUvarint(payload[off:])
	if err != nil {
		return 0, err
	}
	off += m
	if nCounters > uint64(len(payload)-off) {
		return 0, fmt.Errorf("%w: %d counters with %d bytes remaining", wire.ErrTruncated, nCounters, len(payload)-off)
	}
	prev = ""
	for i := uint64(0); i < nCounters; i++ {
		k, m, err := wire.ConsumeString(payload[off:])
		if err != nil {
			return 0, err
		}
		off += m
		v, m, err := wire.ConsumeU64(payload[off:])
		if err != nil {
			return 0, err
		}
		off += m
		if i > 0 && k <= prev {
			return 0, fmt.Errorf("%w: counter key %q out of order after %q", wire.ErrMalformed, k, prev)
		}
		prev = k
		if r.Counters == nil {
			r.Counters = make(map[string]uint64, nCounters)
		}
		r.Counters[k] = v
	}
	return off, nil
}

// MarshalJobOutcomeSize returns the encoded size of o's frame.
func MarshalJobOutcomeSize(o *JobOutcome) int {
	return wire.FrameHeaderSize +
		wire.VarintSize(int64(o.Index)) + wire.StringSize(o.Name) + 8 +
		wire.UvarintSize(uint64(o.Status)) +
		resultSize(&o.Result) +
		wire.StringSize(o.Err) +
		wire.VarintSize(int64(o.Elapsed))
}

// AppendJobOutcome appends o as one JOC1 frame.
func AppendJobOutcome(dst []byte, o *JobOutcome) []byte {
	start := len(dst)
	dst = wire.BeginFrame(dst, wire.TagJobOutcome)
	dst = appendJobInfoFields(dst, &o.JobInfo)
	dst = wire.AppendUvarint(dst, uint64(o.Status))
	dst = appendResult(dst, &o.Result)
	dst = wire.AppendString(dst, o.Err)
	dst = wire.AppendVarint(dst, int64(o.Elapsed))
	return wire.EndFrame(dst, start)
}

// MarshalJobOutcome encodes o into buf, which must be at least
// MarshalJobOutcomeSize(o) long; it returns the bytes written.
func MarshalJobOutcome(buf []byte, o *JobOutcome) (int, error) {
	size := MarshalJobOutcomeSize(o)
	if len(buf) < size {
		return 0, fmt.Errorf("%w: job outcome needs %d bytes, buffer holds %d", wire.ErrShortBuffer, size, len(buf))
	}
	return len(AppendJobOutcome(buf[:0], o)), nil
}

// UnmarshalJobOutcome parses a JOC1 frame from the front of buf into o
// (overwriting it completely) and returns the bytes consumed. Hostile
// input returns wire-sentinel errors; it never panics.
func UnmarshalJobOutcome(buf []byte, o *JobOutcome) (int, error) {
	tag, payload, n, err := wire.ConsumeFrame(buf)
	if err != nil {
		return 0, err
	}
	if tag != wire.TagJobOutcome {
		return 0, fmt.Errorf("%w: %s, want %s", wire.ErrUnknownTag, tag, wire.TagJobOutcome)
	}
	*o = JobOutcome{}
	off, err := consumeJobInfoFields(payload, &o.JobInfo)
	if err != nil {
		return 0, err
	}
	status, m, err := wire.ConsumeUvarint(payload[off:])
	if err != nil {
		return 0, err
	}
	off += m
	if status > uint64(StatusCancelled) {
		return 0, fmt.Errorf("%w: job status %d out of range", wire.ErrMalformed, status)
	}
	o.Status = Status(status)
	m, err = consumeResult(payload[off:], &o.Result)
	if err != nil {
		return 0, err
	}
	off += m
	errText, m, err := wire.ConsumeString(payload[off:])
	if err != nil {
		return 0, err
	}
	off += m
	o.Err = errText
	elapsed, m, err := wire.ConsumeVarint(payload[off:])
	if err != nil {
		return 0, err
	}
	off += m
	o.Elapsed = time.Duration(elapsed)
	if off != len(payload) {
		return 0, fmt.Errorf("%w: %d trailing bytes in job outcome", wire.ErrMalformed, len(payload)-off)
	}
	return n, nil
}
