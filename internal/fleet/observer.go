package fleet

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// Observer receives job lifecycle events from the pool. Methods are
// invoked from worker goroutines; implementations must be safe for
// concurrent use.
type Observer interface {
	JobStarted(job JobInfo)
	JobFinished(outcome JobOutcome)
}

// JobStartEvent converts a job start into the shared observability
// event type; every fleet observer renders or forwards this record.
func JobStartEvent(job JobInfo) obs.Event {
	return obs.Event{Kind: obs.KindJobStart, Job: job.Index, Name: job.Name, Seed: job.Seed}
}

// JobFinishEvent converts a job outcome into the shared observability
// event type. Value carries the wall-clock elapsed seconds; Detail is
// the status, with the error text appended for failed jobs.
func JobFinishEvent(o JobOutcome) obs.Event {
	ev := obs.Event{
		Kind:   obs.KindJobFinish,
		Job:    o.Index,
		Name:   o.Name,
		Seed:   o.Seed,
		Value:  o.Elapsed.Seconds(),
		Detail: o.Status.String(),
	}
	if o.Err != "" {
		ev.Detail += ": " + o.Err
	}
	return ev
}

// ObserverFuncs adapts plain functions to the Observer interface;
// nil fields are skipped.
type ObserverFuncs struct {
	OnStart  func(job JobInfo)
	OnFinish func(outcome JobOutcome)
}

// JobStarted implements Observer.
func (o ObserverFuncs) JobStarted(job JobInfo) {
	if o.OnStart != nil {
		o.OnStart(job)
	}
}

// JobFinished implements Observer.
func (o ObserverFuncs) JobFinished(outcome JobOutcome) {
	if o.OnFinish != nil {
		o.OnFinish(outcome)
	}
}

// MultiObserver fans lifecycle events out to several observers; nil
// entries are skipped.
func MultiObserver(observers ...Observer) Observer {
	kept := make(multiObserver, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			kept = append(kept, o)
		}
	}
	return kept
}

type multiObserver []Observer

// JobStarted implements Observer.
func (m multiObserver) JobStarted(job JobInfo) {
	for _, o := range m {
		o.JobStarted(job)
	}
}

// JobFinished implements Observer.
func (m multiObserver) JobFinished(outcome JobOutcome) {
	for _, o := range m {
		o.JobFinished(outcome)
	}
}

// TracerObserver forwards job lifecycle events to an obs.Tracer, so a
// fleet run shares one sink (and one metrics registry) with the
// per-vehicle simulations. The tracer itself serializes concurrent
// emits.
type TracerObserver struct {
	T *obs.Tracer
}

// NewTracerObserver wraps a tracer as a fleet observer.
func NewTracerObserver(t *obs.Tracer) TracerObserver { return TracerObserver{T: t} }

// JobStarted implements Observer.
func (t TracerObserver) JobStarted(job JobInfo) { t.T.Emit(JobStartEvent(job)) }

// JobFinished implements Observer.
func (t TracerObserver) JobFinished(o JobOutcome) { t.T.Emit(JobFinishEvent(o)) }

// TraceObserver writes one line per lifecycle event, serialized by an
// internal mutex so interleaved workers never garble the stream. The
// text is a rendering of the same obs events TracerObserver forwards.
type TraceObserver struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTraceObserver traces lifecycle events to w.
func NewTraceObserver(w io.Writer) *TraceObserver { return &TraceObserver{w: w} }

// JobStarted implements Observer.
func (t *TraceObserver) JobStarted(job JobInfo) {
	ev := JobStartEvent(job)
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "start  job %4d %-24s seed=%d\n", ev.Job, ev.Name, ev.Seed)
}

// JobFinished implements Observer.
func (t *TraceObserver) JobFinished(o JobOutcome) {
	ev := JobFinishEvent(o)
	elapsed := time.Duration(ev.Value * float64(time.Second)).Round(fmtRound)
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "finish job %4d %-24s %s (%v)\n", ev.Job, ev.Name, ev.Detail, elapsed)
}

// fmtRound keeps traced durations readable.
const fmtRound = 100 * time.Microsecond
