package fleet

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Observer receives job lifecycle events from the pool. Methods are
// invoked from worker goroutines; implementations must be safe for
// concurrent use.
type Observer interface {
	JobStarted(job JobInfo)
	JobFinished(outcome JobOutcome)
}

// ObserverFuncs adapts plain functions to the Observer interface;
// nil fields are skipped.
type ObserverFuncs struct {
	OnStart  func(job JobInfo)
	OnFinish func(outcome JobOutcome)
}

// JobStarted implements Observer.
func (o ObserverFuncs) JobStarted(job JobInfo) {
	if o.OnStart != nil {
		o.OnStart(job)
	}
}

// JobFinished implements Observer.
func (o ObserverFuncs) JobFinished(outcome JobOutcome) {
	if o.OnFinish != nil {
		o.OnFinish(outcome)
	}
}

// TraceObserver writes one line per lifecycle event, serialized by an
// internal mutex so interleaved workers never garble the stream.
type TraceObserver struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTraceObserver traces lifecycle events to w.
func NewTraceObserver(w io.Writer) *TraceObserver { return &TraceObserver{w: w} }

// JobStarted implements Observer.
func (t *TraceObserver) JobStarted(job JobInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "start  job %4d %-24s seed=%d\n", job.Index, job.Name, job.Seed)
}

// JobFinished implements Observer.
func (t *TraceObserver) JobFinished(o JobOutcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if o.Err != "" {
		fmt.Fprintf(t.w, "finish job %4d %-24s %s (%v): %s\n", o.Index, o.Name, o.Status, o.Elapsed.Round(fmtRound), o.Err)
		return
	}
	fmt.Fprintf(t.w, "finish job %4d %-24s %s (%v)\n", o.Index, o.Name, o.Status, o.Elapsed.Round(fmtRound))
}

// fmtRound keeps traced durations readable.
const fmtRound = 100 * time.Microsecond
