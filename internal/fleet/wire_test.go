package fleet

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/wire"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format fixtures")

func outcomeFixtures() []JobOutcome {
	return []JobOutcome{
		{
			JobInfo: JobInfo{Index: 0, Name: "veh-0", Seed: 0x9e3779b97f4a7c15},
			Status:  StatusOK,
			Result: Result{
				Metrics:  map[string]float64{"convergence_s": 12.5, "collision_ratio": 0.0625, "abs": -3},
				Counters: map[string]uint64{"decoded": 4096, "beacons": 3000},
			},
			Elapsed: 1500 * time.Millisecond,
		},
		{
			JobInfo: JobInfo{Index: 63, Name: "veh-63", Seed: 1},
			Status:  StatusFailed,
			Err:     "simulate: supercap under-volt",
			Elapsed: -1, // hostile clock skew must still round-trip
		},
		{
			JobInfo: JobInfo{Index: -2, Name: ""},
			Status:  StatusCancelled,
		},
	}
}

func TestJobInfoRoundTrip(t *testing.T) {
	want := JobInfo{Index: 7, Name: "sweep-7", Seed: 0xcafef00d}
	frame := AppendJobInfo(nil, &want)
	if len(frame) != MarshalJobInfoSize(&want) {
		t.Fatalf("frame is %d bytes, MarshalJobInfoSize says %d", len(frame), MarshalJobInfoSize(&want))
	}
	exact := make([]byte, MarshalJobInfoSize(&want))
	if n, err := MarshalJobInfo(exact, &want); err != nil || n != len(exact) {
		t.Fatalf("MarshalJobInfo: %d, %v", n, err)
	}
	if !bytes.Equal(exact, frame) {
		t.Fatal("MarshalJobInfo bytes differ from AppendJobInfo")
	}
	if _, err := MarshalJobInfo(make([]byte, 3), &want); !errors.Is(err, wire.ErrShortBuffer) {
		t.Fatalf("short buffer: %v", err)
	}
	var got JobInfo
	n, err := UnmarshalJobInfo(frame, &got)
	if err != nil || n != len(frame) || got != want {
		t.Fatalf("round trip: %+v, %d, %v", got, n, err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := UnmarshalJobInfo(frame[:cut], &got); err == nil {
			t.Fatalf("cut at %d decoded successfully", cut)
		}
	}
	wrong := wire.AppendFrame(nil, wire.TagJobOutcome, frame[wire.FrameHeaderSize:])
	if _, err := UnmarshalJobInfo(wrong, &got); !errors.Is(err, wire.ErrUnknownTag) {
		t.Fatalf("wrong tag: %v", err)
	}
}

func TestJobOutcomeRoundTrip(t *testing.T) {
	for _, want := range outcomeFixtures() {
		want := want
		frame := AppendJobOutcome(nil, &want)
		if len(frame) != MarshalJobOutcomeSize(&want) {
			t.Fatalf("job %d: frame is %d bytes, MarshalJobOutcomeSize says %d", want.Index, len(frame), MarshalJobOutcomeSize(&want))
		}
		exact := make([]byte, MarshalJobOutcomeSize(&want))
		if n, err := MarshalJobOutcome(exact, &want); err != nil || n != len(exact) {
			t.Fatalf("job %d: MarshalJobOutcome: %d, %v", want.Index, n, err)
		}
		if !bytes.Equal(exact, frame) {
			t.Fatalf("job %d: MarshalJobOutcome bytes differ from AppendJobOutcome", want.Index)
		}
		var got JobOutcome
		n, err := UnmarshalJobOutcome(frame, &got)
		if err != nil || n != len(frame) {
			t.Fatalf("job %d: UnmarshalJobOutcome: %d, %v", want.Index, n, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("job %d round trip mangled outcome:\n got %+v\nwant %+v", want.Index, got, want)
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, err := UnmarshalJobOutcome(frame[:cut], &got); err == nil {
				t.Fatalf("job %d cut at %d decoded successfully", want.Index, cut)
			}
		}
	}
}

func TestJobOutcomeEncodingDeterministic(t *testing.T) {
	// Map iteration order must never leak into the encoding: the wire
	// order is sorted keys, so repeated encodes are byte-identical (the
	// checkpoint CRC depends on this).
	o := outcomeFixtures()[0]
	first := AppendJobOutcome(nil, &o)
	for i := 0; i < 20; i++ {
		if again := AppendJobOutcome(nil, &o); !bytes.Equal(again, first) {
			t.Fatalf("encode %d differs from first encode", i)
		}
	}
}

func TestJobOutcomeHostileInput(t *testing.T) {
	var got JobOutcome

	// An out-of-range status is refused.
	o := JobOutcome{JobInfo: JobInfo{Index: 1, Name: "x"}, Status: StatusOK}
	frame := AppendJobOutcome(nil, &o)
	// The status byte sits right after index varint (1 byte), name
	// (1+1 bytes) and seed (8 bytes) in the payload.
	statusAt := wire.FrameHeaderSize + 1 + 2 + 8
	bad := append([]byte(nil), frame...)
	bad[statusAt] = 99
	if _, err := UnmarshalJobOutcome(bad, &got); !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("bogus status: %v, want ErrMalformed", err)
	}

	// Unsorted (or duplicate) result keys are refused, keeping the
	// encoding canonical.
	shuffled := outcomeFixtures()[0]
	frame = AppendJobOutcome(nil, &shuffled)
	// Swap the first two metric key initials to break the ordering.
	i := bytes.Index(frame, []byte("abs"))
	j := bytes.Index(frame, []byte("collision_ratio"))
	if i < 0 || j < 0 {
		t.Fatal("fixture keys not found in encoding")
	}
	frame[i], frame[j] = frame[j], frame[i]
	if _, err := UnmarshalJobOutcome(frame, &got); !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("shuffled keys: %v, want ErrMalformed", err)
	}

	// A hostile element count is refused before allocation.
	hostile := wire.AppendVarint(nil, 0)
	hostile = wire.AppendString(hostile, "n")
	hostile = wire.AppendU64(hostile, 0)
	hostile = wire.AppendUvarint(hostile, 0)     // status
	hostile = wire.AppendUvarint(hostile, 1<<40) // metric count
	f := wire.AppendFrame(nil, wire.TagJobOutcome, hostile)
	if _, err := UnmarshalJobOutcome(f, &got); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("hostile metric count: %v, want ErrTruncated", err)
	}
}

// TestGoldenJobOutcomeV1 freezes the version-1 JOC1 encoding: the
// committed fixture must decode forever. Regenerate with -update only
// alongside a tag version bump.
func TestGoldenJobOutcomeV1(t *testing.T) {
	path := filepath.Join("testdata", "outcomes_v1.bin")
	var stream []byte
	for _, o := range outcomeFixtures() {
		o := o
		stream = AppendJobOutcome(stream, &o)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, stream, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/fleet -run TestGoldenJobOutcomeV1 -update)", err)
	}
	if !bytes.Equal(stream, golden) {
		t.Fatal("current encoder no longer reproduces the golden v1 outcomes")
	}
	off := 0
	for i := range outcomeFixtures() {
		var got JobOutcome
		n, err := UnmarshalJobOutcome(golden[off:], &got)
		if err != nil {
			t.Fatalf("outcome %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, outcomeFixtures()[i]) {
			t.Fatalf("outcome %d decodes differently from the fixture: %+v", i, got)
		}
		off += n
	}
	if off != len(golden) {
		t.Fatalf("golden stream has %d trailing bytes", len(golden)-off)
	}
}

func FuzzUnmarshalJobOutcome(f *testing.F) {
	for _, o := range outcomeFixtures() {
		o := o
		f.Add(AppendJobOutcome(nil, &o))
	}
	f.Add([]byte("JOC1\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var o JobOutcome
		n, err := UnmarshalJobOutcome(data, &o)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Decode-encode must be a byte-level fixed point (sorted-key
		// canonical form is enforced on decode; floats travel as bits).
		canon := AppendJobOutcome(nil, &o)
		var o2 JobOutcome
		m, err := UnmarshalJobOutcome(canon, &o2)
		if err != nil || m != len(canon) {
			t.Fatalf("re-decode of re-encoded outcome failed: %d, %v", m, err)
		}
		if again := AppendJobOutcome(nil, &o2); !bytes.Equal(again, canon) {
			t.Fatal("decode/encode not a fixed point")
		}
	})
}
