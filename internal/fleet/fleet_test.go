package fleet

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// workJob is a deterministic CPU-bound job: a short PRNG walk whose
// result depends only on the seed.
func workJob(ctx context.Context, job JobInfo) (Result, error) {
	rng := sim.NewRand(job.Seed)
	var acc float64
	for i := 0; i < 2000; i++ {
		acc += rng.Float64()
		if i%500 == 0 && ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
	}
	return Result{
		Metrics:  map[string]float64{"acc": acc},
		Counters: map[string]uint64{"steps": 2000},
	}, nil
}

func makeSpecs(n int) []JobSpec {
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = JobSpec{Name: fmt.Sprintf("job-%d", i), Run: workJob}
	}
	return specs
}

// TestDeterminismAcrossWorkerCounts is the determinism regression: the
// same fleet run with 1, 3, and 8 workers must produce bit-identical
// reports (fingerprints cover per-job seeds, metrics and fleet
// aggregates).
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	var prints []string
	for _, workers := range []int{1, 3, 8} {
		rep, err := Run(context.Background(), Config{Workers: workers, Seed: 42}, makeSpecs(37))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Ok() {
			t.Fatalf("workers=%d: %s", workers, rep.FirstError())
		}
		if rep.Completed != 37 {
			t.Fatalf("workers=%d: completed %d", workers, rep.Completed)
		}
		prints = append(prints, rep.Fingerprint())
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Errorf("fingerprint diverges with worker count: %s vs %s", prints[i], prints[0])
		}
	}
}

// TestSeedDerivation pins the derivation's independence properties.
func TestSeedDerivation(t *testing.T) {
	seen := map[uint64]bool{}
	for idx := uint64(0); idx < 1000; idx++ {
		s := DeriveSeed(7, idx)
		if seen[s] {
			t.Fatalf("seed collision at index %d", idx)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("fleet seed does not influence derivation")
	}
	if DeriveSeed(5, 3) != DeriveSeed(5, 3) {
		t.Error("derivation is not a pure function")
	}
	// Explicit seeds pass through untouched.
	rep, err := Run(context.Background(), Config{Workers: 2, Seed: 9},
		[]JobSpec{{Name: "explicit", Seed: 1234, HasSeed: true, Run: workJob},
			{Name: "derived", Run: workJob}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Seed != 1234 {
		t.Errorf("explicit seed overridden: %d", rep.Jobs[0].Seed)
	}
	if rep.Jobs[1].Seed != DeriveSeed(9, 1) {
		t.Errorf("derived seed mismatch: %d", rep.Jobs[1].Seed)
	}
}

// TestFaultIsolation injects a panicking job, an erroring job, and a
// timeout-exceeding job among healthy siblings: each failure is
// counted in the report and no sibling is poisoned.
func TestFaultIsolation(t *testing.T) {
	specs := makeSpecs(12)
	specs[3].Run = func(ctx context.Context, job JobInfo) (Result, error) {
		panic("injected fault")
	}
	specs[5].Run = func(ctx context.Context, job JobInfo) (Result, error) {
		return Result{}, fmt.Errorf("injected error")
	}
	specs[7].Run = func(ctx context.Context, job JobInfo) (Result, error) {
		// Cooperative slow job: waits far beyond the pool timeout.
		select {
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-time.After(10 * time.Second):
			return workJob(ctx, job)
		}
	}
	rep, err := Run(context.Background(),
		Config{Workers: 4, Seed: 1, JobTimeout: 30 * time.Millisecond}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 9 || rep.Panicked != 1 || rep.Failed != 1 || rep.TimedOut != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.Jobs[3].Status != StatusPanicked || !strings.Contains(rep.Jobs[3].Err, "injected fault") {
		t.Errorf("job 3: %+v", rep.Jobs[3])
	}
	if rep.Jobs[5].Status != StatusFailed {
		t.Errorf("job 5: %+v", rep.Jobs[5])
	}
	if rep.Jobs[7].Status != StatusTimedOut {
		t.Errorf("job 7: %+v", rep.Jobs[7])
	}
	for _, i := range []int{0, 1, 2, 4, 6, 8, 9, 10, 11} {
		if rep.Jobs[i].Status != StatusOK {
			t.Errorf("sibling job %d poisoned: %+v", i, rep.Jobs[i])
		}
	}
	if rep.Ok() {
		t.Error("report claims success despite failures")
	}
	if rep.FirstError() == "" {
		t.Error("FirstError empty")
	}
}

// TestUncooperativeTimeout: a job that never checks its context is
// still reported as timed out and the pool moves on.
func TestUncooperativeTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	specs := makeSpecs(3)
	specs[1].Run = func(ctx context.Context, job JobInfo) (Result, error) {
		<-block // ignores ctx entirely
		return Result{}, nil
	}
	rep, err := Run(context.Background(),
		Config{Workers: 2, JobTimeout: 20 * time.Millisecond}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[1].Status != StatusTimedOut {
		t.Fatalf("job 1: %+v", rep.Jobs[1])
	}
	if rep.Completed != 2 {
		t.Fatalf("siblings: %+v", rep)
	}
}

// TestCancellation: cancelling the run context mid-flight yields a
// partial report with the remaining jobs marked cancelled.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	specs := make([]JobSpec, 64)
	for i := range specs {
		specs[i] = JobSpec{Name: fmt.Sprintf("job-%d", i),
			Run: func(c context.Context, job JobInfo) (Result, error) {
				if started.Add(1) == 4 {
					cancel()
				}
				select {
				case <-c.Done():
					return Result{}, c.Err()
				case <-time.After(time.Millisecond):
					return Result{Metrics: map[string]float64{"v": 1}}, nil
				}
			}}
	}
	rep, err := Run(ctx, Config{Workers: 2}, specs)
	if err == nil {
		t.Fatal("expected context error")
	}
	if rep == nil {
		t.Fatal("no partial report on cancellation")
	}
	if rep.Cancelled == 0 {
		t.Errorf("no jobs recorded cancelled: %+v", rep)
	}
	if len(rep.Jobs) != 64 {
		t.Errorf("report holds %d jobs", len(rep.Jobs))
	}
	for i, j := range rep.Jobs {
		if j.Status == StatusPending {
			t.Errorf("job %d left pending", i)
		}
	}
}

// TestSnapshot exercises the streaming metrics view during and after a
// run.
func TestSnapshot(t *testing.T) {
	p, err := NewPool(Config{Workers: 2, Seed: 3}, makeSpecs(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sn := p.Snapshot()
	if sn.Done != 16 || sn.Completed != 16 || sn.Total != 16 {
		t.Fatalf("snapshot: %+v", sn)
	}
	if sn.Metrics["acc"].Count != 16 {
		t.Errorf("metric samples: %+v", sn.Metrics["acc"])
	}
	if sn.Counters["steps"] != 16*2000 {
		t.Errorf("counter: %d", sn.Counters["steps"])
	}
	if !strings.Contains(sn.String(), "16/16 done") {
		t.Errorf("snapshot string: %s", sn)
	}
}

// TestDistribution pins the percentile arithmetic.
func TestDistribution(t *testing.T) {
	if d := NewDistribution(nil); d.Count != 0 {
		t.Errorf("empty distribution: %+v", d)
	}
	d := NewDistribution([]float64{5, 1, 3, 2, 4})
	if d.Count != 5 || d.Min != 1 || d.Max != 5 || d.P50 != 3 || d.Mean != 3 {
		t.Errorf("distribution: %+v", d)
	}
	// Order independence, including the mean's summation order.
	d2 := NewDistribution([]float64{4, 2, 1, 3, 5})
	if d != d2 {
		t.Errorf("distribution depends on sample order: %+v vs %+v", d, d2)
	}
}

// TestPoolValidation covers constructor errors.
func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(Config{}, nil); err == nil {
		t.Error("empty job list accepted")
	}
	if _, err := NewPool(Config{}, []JobSpec{{Name: "x"}}); err == nil {
		t.Error("nil run function accepted")
	}
}

// TestObservers checks lifecycle delivery and the trace writer.
func TestObservers(t *testing.T) {
	var starts, finishes atomic.Int32
	obs := ObserverFuncs{
		OnStart:  func(JobInfo) { starts.Add(1) },
		OnFinish: func(JobOutcome) { finishes.Add(1) },
	}
	if _, err := Run(context.Background(), Config{Workers: 3, Observer: obs}, makeSpecs(10)); err != nil {
		t.Fatal(err)
	}
	if starts.Load() != 10 || finishes.Load() != 10 {
		t.Errorf("observer calls: %d starts, %d finishes", starts.Load(), finishes.Load())
	}

	var b strings.Builder
	mu := &syncWriter{b: &b}
	tr := NewTraceObserver(mu)
	if _, err := Run(context.Background(), Config{Workers: 2, Observer: tr}, makeSpecs(4)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "start  job") || !strings.Contains(out, "finish job") {
		t.Errorf("trace output:\n%s", out)
	}
}

// syncWriter guards the strings.Builder (TraceObserver already locks,
// but the builder itself is not otherwise protected from misuse).
type syncWriter struct{ b *strings.Builder }

func (w *syncWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

// TestInlineFaultIsolation covers the no-timeout fast path: with
// JobTimeout unset the pool runs jobs inline on the worker goroutine
// (no per-job goroutine, channel or timer), and panic/error isolation
// must still hold there.
func TestInlineFaultIsolation(t *testing.T) {
	specs := makeSpecs(8)
	specs[2].Run = func(ctx context.Context, job JobInfo) (Result, error) {
		panic("inline fault")
	}
	specs[4].Run = func(ctx context.Context, job JobInfo) (Result, error) {
		return Result{}, fmt.Errorf("inline error")
	}
	rep, err := Run(context.Background(), Config{Workers: 3, Seed: 4}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 6 || rep.Panicked != 1 || rep.Failed != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.Jobs[2].Status != StatusPanicked || !strings.Contains(rep.Jobs[2].Err, "inline fault") {
		t.Errorf("job 2: %+v", rep.Jobs[2])
	}
	if rep.Jobs[4].Status != StatusFailed || rep.Jobs[4].Err != "inline error" {
		t.Errorf("job 4: %+v", rep.Jobs[4])
	}
	// Healthy siblings keep their results.
	if rep.Jobs[0].Status != StatusOK || rep.Jobs[0].Result.Metrics["acc"] == 0 {
		t.Errorf("job 0: %+v", rep.Jobs[0])
	}
}
