package fleet

// DeriveSeed maps (fleetSeed, jobIndex) to a per-job seed. The
// derivation is a pure function of its arguments — never of worker
// count, scheduling order, or wall time — which is what makes fleet
// results reproducible from a single master seed. Two SplitMix64
// finalization rounds over the golden-ratio-stepped inputs give
// well-mixed, collision-resistant streams even for adjacent indices.
func DeriveSeed(fleetSeed, jobIndex uint64) uint64 {
	z := fleetSeed ^ (jobIndex+1)*0x9e3779b97f4a7c15
	for i := 0; i < 2; i++ {
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}
