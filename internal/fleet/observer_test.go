package fleet

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestTracerObserver checks that the pool's lifecycle reaches an
// obs.Tracer as the shared job event types, with starts and finishes
// paired per job.
func TestTracerObserver(t *testing.T) {
	mem := obs.NewMemorySink()
	tr := obs.New(mem)
	tr.AttachMetrics(obs.NewMetrics())
	if _, err := Run(context.Background(), Config{Workers: 3, Observer: NewTracerObserver(tr)}, makeSpecs(8)); err != nil {
		t.Fatal(err)
	}
	evs := mem.Events()
	starts := obs.OfKind(evs, obs.KindJobStart)
	finishes := obs.OfKind(evs, obs.KindJobFinish)
	if len(starts) != 8 || len(finishes) != 8 {
		t.Fatalf("got %d starts, %d finishes, want 8 each", len(starts), len(finishes))
	}
	seen := make(map[int]bool)
	for _, ev := range finishes {
		if ev.Detail != StatusOK.String() {
			t.Fatalf("job %d finished %q", ev.Job, ev.Detail)
		}
		if ev.Value < 0 {
			t.Fatalf("job %d negative elapsed %v", ev.Job, ev.Value)
		}
		seen[ev.Job] = true
	}
	if len(seen) != 8 {
		t.Fatalf("finish events cover %d distinct jobs, want 8", len(seen))
	}
	sn := tr.Metrics().Snapshot()
	counts := map[string]uint64{}
	for _, c := range sn.Counters {
		counts[c.Name] = c.Value
	}
	if counts["events_job_start"] != 8 || counts["events_job_finish"] != 8 {
		t.Fatalf("metrics counters wrong: %+v", sn.Counters)
	}
}

// TestJobFinishEventError checks that failures carry the error text in
// the event detail.
func TestJobFinishEventError(t *testing.T) {
	ev := JobFinishEvent(JobOutcome{
		JobInfo: JobInfo{Index: 3, Name: "veh-3"},
		Status:  StatusFailed,
		Err:     "boom",
	})
	if ev.Kind != obs.KindJobFinish || ev.Job != 3 {
		t.Fatalf("event wrong: %+v", ev)
	}
	if want := StatusFailed.String() + ": boom"; ev.Detail != want {
		t.Fatalf("detail = %q, want %q", ev.Detail, want)
	}
}
