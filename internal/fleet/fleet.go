// Package fleet is the fleet-scale simulation orchestrator: a job
// queue plus a sharded worker pool that runs many independent
// simulations (one vehicle / network per job) across GOMAXPROCS
// workers.
//
// The design contract is determinism at scale: every job's seed is
// fixed at submission time (either explicitly or derived from the
// fleet seed and the job index, see DeriveSeed), and the final Report
// is assembled from the per-job outcomes in job-index order. Results
// are therefore bit-identical regardless of worker count or goroutine
// scheduling — the property the determinism regression tests pin.
//
// Failure isolation: a job that panics, returns an error, or exceeds
// its timeout is recorded in the report (StatusPanicked / StatusFailed
// / StatusTimedOut) and never poisons sibling jobs or the pool.
// Cancelling the run context stops feeding the queue; jobs that never
// started are reported as StatusCancelled, and the partial report is
// still returned.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Result is what one job hands back to the aggregation layer.
type Result struct {
	// Metrics are scalar samples (one value per job) that the report
	// aggregates into fleet-wide percentile distributions, e.g. a
	// convergence time or a collision ratio.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Counters are additive totals summed fleet-wide, e.g. decoded
	// packets.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// JobInfo identifies one job to its run function and to observers.
type JobInfo struct {
	// Index is the job's position in the submission order; it is the
	// aggregation key that makes reports scheduling-independent.
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Seed is the job's resolved random seed.
	Seed uint64 `json:"seed"`
}

// JobFunc runs one simulation. Implementations should poll ctx at
// convenient boundaries (every few hundred slots or simulated seconds)
// so timeouts and cancellation take effect; a job that ignores ctx is
// still reported as timed out, but its goroutine runs to completion in
// the background.
type JobFunc func(ctx context.Context, job JobInfo) (Result, error)

// JobSpec describes one queued job.
type JobSpec struct {
	Name string
	// Seed is used verbatim when HasSeed is set; otherwise the pool
	// derives DeriveSeed(Config.Seed, index).
	Seed    uint64
	HasSeed bool
	Run     JobFunc
}

// Config parameterizes a pool.
type Config struct {
	// Workers is the shard count; <= 0 means GOMAXPROCS.
	Workers int
	// Seed is the fleet master seed that per-job seeds derive from.
	Seed uint64
	// JobTimeout bounds each job's wall-clock run; 0 means no limit.
	JobTimeout time.Duration
	// Observer receives job lifecycle events; nil means none. Its
	// methods are called concurrently from worker goroutines.
	Observer Observer
}

// Status classifies a job outcome.
type Status int

const (
	// StatusPending is the zero value: the job has not finished.
	StatusPending Status = iota
	StatusOK
	StatusFailed
	StatusPanicked
	StatusTimedOut
	StatusCancelled
)

// String names the status for reports and traces.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusOK:
		return "ok"
	case StatusFailed:
		return "failed"
	case StatusPanicked:
		return "panicked"
	case StatusTimedOut:
		return "timed_out"
	case StatusCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// MarshalJSON renders the status as its name.
func (s Status) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON parses a status name back into its value, so reports
// and checkpoints round-trip through JSON (the fleetd daemon persists
// job outcomes and clients decode reports over the wire).
func (s *Status) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("fleet: parse status: %w", err)
	}
	for cand := StatusPending; cand <= StatusCancelled; cand++ {
		if cand.String() == name {
			*s = cand
			return nil
		}
	}
	return fmt.Errorf("fleet: unknown status %q", name)
}

// JobOutcome is one job's full record in the report.
type JobOutcome struct {
	JobInfo
	Status Status `json:"status"`
	Result Result `json:"result"`
	// Err is the failure description (error text or panic value);
	// empty on success.
	Err string `json:"error,omitempty"`
	// Elapsed is wall-clock job time. It is diagnostic only and is
	// excluded from the deterministic fingerprint.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Report is the aggregated outcome of a fleet run, assembled in
// job-index order so it is independent of scheduling.
type Report struct {
	Workers int `json:"workers"`
	// Jobs holds every outcome, indexed by submission order.
	Jobs []JobOutcome `json:"jobs"`

	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Panicked  int `json:"panicked"`
	TimedOut  int `json:"timed_out"`
	Cancelled int `json:"cancelled"`

	// Metrics are per-metric distributions over successful jobs.
	Metrics map[string]Distribution `json:"metrics"`
	// Counters are fleet-wide sums over successful jobs.
	Counters map[string]uint64 `json:"counters"`
	// Latency is the distribution of per-job wall times (seconds);
	// diagnostic only, excluded from the fingerprint.
	Latency Distribution `json:"latency_s"`
	// Wall is the whole run's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
}

// Ok reports whether every job completed successfully.
func (r *Report) Ok() bool {
	return r.Failed == 0 && r.Panicked == 0 && r.TimedOut == 0 && r.Cancelled == 0
}

// FirstError returns the first non-OK job's description, or "".
func (r *Report) FirstError() string {
	for _, j := range r.Jobs {
		if j.Status != StatusOK {
			return fmt.Sprintf("job %d (%s): %s: %s", j.Index, j.Name, j.Status, j.Err)
		}
	}
	return ""
}

// Pool is a reusable fleet runner over one fixed job list: construct
// with NewPool, start with Run, and poll Snapshot from other
// goroutines for live progress. Preload (before Run) marks jobs from a
// previous, interrupted run as already complete, so checkpointed
// sweeps resume without recomputing finished shards.
type Pool struct {
	cfg       Config
	specs     []JobSpec
	outcomes  []JobOutcome
	agg       *aggregator
	preloaded int
	started   bool
}

// NewPool validates the configuration and builds a pool over the jobs.
func NewPool(cfg Config, specs []JobSpec) (*Pool, error) {
	if len(specs) == 0 {
		return nil, errors.New("fleet: no jobs")
	}
	for i, s := range specs {
		if s.Run == nil {
			return nil, fmt.Errorf("fleet: job %d (%q) has no run function", i, s.Name)
		}
	}
	return &Pool{
		cfg:      cfg,
		specs:    specs,
		outcomes: make([]JobOutcome, len(specs)),
		agg:      newAggregator(len(specs)),
	}, nil
}

// Preload records outcomes recovered from a checkpoint as already
// complete: Run skips their indices and the final report contains them
// verbatim, so a resumed sweep's fingerprint matches an uninterrupted
// run (every job is a pure function of its seed, and wall-clock fields
// are excluded from the fingerprint).
//
// Only deterministic terminal statuses are accepted — StatusOK and
// StatusFailed; cancelled or timed-out shards must be recomputed
// because their outcomes depend on wall-clock scheduling. Each outcome
// is validated against the pool's job list (index range, name, and
// resolved seed), so a checkpoint taken under a different spec is
// rejected instead of silently corrupting the report.
func (p *Pool) Preload(outcomes []JobOutcome) error {
	if p.started {
		return errors.New("fleet: Preload after Run")
	}
	for _, o := range outcomes {
		if o.Index < 0 || o.Index >= len(p.specs) {
			return fmt.Errorf("fleet: preload outcome index %d out of range [0,%d)", o.Index, len(p.specs))
		}
		if o.Status != StatusOK && o.Status != StatusFailed {
			return fmt.Errorf("fleet: preload job %d has non-deterministic status %s", o.Index, o.Status)
		}
		want := p.jobInfo(o.Index)
		if o.Seed != want.Seed || o.Name != want.Name {
			return fmt.Errorf("fleet: preload job %d is %q seed %d, but the spec resolves %q seed %d (checkpoint from a different spec?)",
				o.Index, o.Name, o.Seed, want.Name, want.Seed)
		}
		if p.outcomes[o.Index].Status != StatusPending {
			return fmt.Errorf("fleet: preload job %d already loaded", o.Index)
		}
		p.outcomes[o.Index] = o
		p.agg.add(o)
		p.preloaded++
	}
	return nil
}

// Preloaded reports how many jobs were restored by Preload.
func (p *Pool) Preloaded() int { return p.preloaded }

// Run executes every job and returns the aggregated report. The report
// is non-nil even when ctx is cancelled mid-run (the error is then
// ctx's error and unfinished jobs are marked cancelled).
func (p *Pool) Run(ctx context.Context) (*Report, error) {
	p.started = true
	workers := p.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if rest := len(p.specs) - p.preloaded; workers > rest && rest > 0 {
		workers = rest
	}
	if workers > len(p.specs) {
		workers = len(p.specs)
	}
	start := time.Now() //lint:allow determinism-taint wall-clock fleet timing; excluded from the deterministic fingerprint

	queue := make(chan int)
	go func() {
		defer close(queue)
		for i := range p.specs {
			if p.outcomes[i].Status != StatusPending {
				continue // preloaded from a checkpoint
			}
			select {
			case queue <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range queue {
				out := p.runJob(ctx, idx)
				p.outcomes[idx] = out
				p.agg.add(out)
				if p.cfg.Observer != nil {
					p.cfg.Observer.JobFinished(out)
				}
			}
		}()
	}
	wg.Wait()

	// Jobs the feeder never handed out (cancellation or an expired
	// run deadline) are pending in the outcome table; record them so
	// the report stays complete, classified by which way the parent
	// context stopped.
	if stop := ctx.Err(); stop != nil {
		for i := range p.outcomes {
			if p.outcomes[i].Status == StatusPending {
				out := JobOutcome{
					JobInfo: p.jobInfo(i),
					Status:  parentStopStatus(stop),
					Err:     stop.Error(),
				}
				p.outcomes[i] = out
				p.agg.add(out)
			}
		}
	}

	rep := p.buildReport(workers, time.Since(start)) //lint:allow determinism-taint wall-clock fleet timing; excluded from the deterministic fingerprint
	return rep, ctx.Err()
}

// jobInfo resolves a job's identity, deriving the seed when the spec
// does not pin one.
func (p *Pool) jobInfo(idx int) JobInfo {
	spec := p.specs[idx]
	info := JobInfo{Index: idx, Name: spec.Name, Seed: spec.Seed}
	if !spec.HasSeed {
		info.Seed = DeriveSeed(p.cfg.Seed, uint64(idx))
	}
	return info
}

// runJob executes one job with panic recovery and timeout isolation.
func (p *Pool) runJob(ctx context.Context, idx int) JobOutcome {
	info := p.jobInfo(idx)
	out := JobOutcome{JobInfo: info}
	if err := ctx.Err(); err != nil {
		out.Status = parentStopStatus(err)
		out.Err = err.Error()
		return out
	}
	if p.cfg.Observer != nil {
		p.cfg.Observer.JobStarted(info)
	}

	start := time.Now() //lint:allow determinism-taint per-job wall latency for operator reporting only
	if p.cfg.JobTimeout <= 0 {
		// Fast path: with no deadline to enforce, the job runs inline on
		// the worker goroutine — no per-job goroutine, channel or timer.
		// Panic isolation is a deferred recover, so the steady-state
		// control-plane cost of a job is zero allocations.
		res, err, panicked := p.callJob(ctx, idx, info)
		out.Elapsed = time.Since(start) //lint:allow determinism-taint per-job wall latency for operator reporting only
		p.classify(&out, res, err, panicked)
		return out
	}

	jctx, cancel := context.WithTimeout(ctx, p.cfg.JobTimeout)
	defer cancel()

	type jobReturn struct {
		res      Result
		err      error
		panicked bool
	}
	done := make(chan jobReturn, 1)
	// Deliberately abandoned on timeout: the buffered channel lets the
	// late result be dropped without blocking the stuck job forever.
	//lint:allow goroutine-hygiene abandoned on timeout by design; buffered done never blocks it
	go func() {
		res, err, panicked := p.callJob(jctx, idx, info)
		done <- jobReturn{res: res, err: err, panicked: panicked}
	}()

	select {
	case ret := <-done:
		out.Elapsed = time.Since(start) //lint:allow determinism-taint per-job wall latency for operator reporting only
		p.classify(&out, ret.res, ret.err, ret.panicked)
	case <-jctx.Done():
		// The job ignored its context; abandon its goroutine (the
		// buffered channel lets it finish and be collected) and
		// classify by which context fired.
		out.Elapsed = time.Since(start) //lint:allow determinism-taint per-job wall latency for operator reporting only
		if err := ctx.Err(); err != nil {
			out.Status = parentStopStatus(err)
			out.Err = err.Error()
		} else {
			out.Status = StatusTimedOut
			out.Err = fmt.Sprintf("job exceeded timeout %v", p.cfg.JobTimeout)
		}
	}
	return out
}

// parentStopStatus classifies a run stopped by its parent context: an
// expired deadline is a timeout (the run-level budget ran out), an
// explicit cancel is a cancellation. Both are wall-clock artifacts a
// resumed pool must recompute.
func parentStopStatus(err error) Status {
	if errors.Is(err, context.DeadlineExceeded) {
		return StatusTimedOut
	}
	return StatusCancelled
}

// callJob invokes the job function with panic recovery.
//
//alloc:hot per-job dispatch; the recovery closure is the only deliberate escape
func (p *Pool) callJob(ctx context.Context, idx int, info JobInfo) (res Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			err = fmt.Errorf("panic: %v", r)
			panicked = true
		}
	}()
	res, err = p.specs[idx].Run(ctx, info)
	return res, err, false
}

// classify maps a job return onto the outcome record.
func (p *Pool) classify(out *JobOutcome, res Result, err error, panicked bool) {
	switch {
	case panicked:
		out.Status = StatusPanicked
		out.Err = err.Error()
	case err == nil:
		out.Status = StatusOK
		out.Result = res
	case errors.Is(err, context.DeadlineExceeded):
		out.Status = StatusTimedOut
		out.Err = err.Error()
	case errors.Is(err, context.Canceled):
		out.Status = StatusCancelled
		out.Err = err.Error()
	default:
		out.Status = StatusFailed
		out.Err = err.Error()
	}
}

// buildReport folds the outcome table, in index order, into the final
// deterministic report.
func (p *Pool) buildReport(workers int, wall time.Duration) *Report {
	rep := &Report{
		Workers:  workers,
		Jobs:     p.outcomes,
		Metrics:  make(map[string]Distribution),
		Counters: make(map[string]uint64),
		Wall:     wall,
	}
	samples := make(map[string][]float64)
	lat := make([]float64, 0, len(p.outcomes))
	for _, o := range p.outcomes {
		switch o.Status {
		case StatusOK:
			rep.Completed++
		case StatusFailed:
			rep.Failed++
		case StatusPanicked:
			rep.Panicked++
		case StatusTimedOut:
			rep.TimedOut++
		case StatusCancelled:
			rep.Cancelled++
		}
		if o.Status == StatusOK {
			for name, v := range o.Result.Metrics {
				samples[name] = append(samples[name], v)
			}
			for name, v := range o.Result.Counters {
				rep.Counters[name] += v
			}
			lat = append(lat, o.Elapsed.Seconds())
		}
	}
	for name, s := range samples {
		rep.Metrics[name] = NewDistribution(s)
	}
	rep.Latency = NewDistribution(lat)
	return rep
}

// Snapshot returns the live progress view; safe to call concurrently
// with Run. Percentiles are exact over the jobs finished so far, but
// the view reflects completion order — the final Report is the
// canonical index-ordered aggregate.
func (p *Pool) Snapshot() Snapshot { return p.agg.snapshot() }

// Run is the one-shot convenience wrapper: build a pool and run it.
func Run(ctx context.Context, cfg Config, specs []JobSpec) (*Report, error) {
	p, err := NewPool(cfg, specs)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}
