// Package resilience is a small, deterministic, stdlib-only
// reliability kit for the service layer: an error classifier
// (retryable / fatal / busy), a capped-exponential retry policy with
// seeded jitter, deadline/budget propagation helpers over context, a
// half-open circuit breaker, and a retry runner that composes them.
//
// Everything time-dependent goes through the Clock seam, and every
// randomized quantity (the jitter) is a pure function of (policy,
// seed, attempt) — the same discipline internal/faults applies to
// channel fades is applied here to sockets and disks, so a chaos run
// with injected transport failures replays bit-identically from its
// seed.
//
// The classifier convention survives flattening: layers that persist
// errors as plain strings (fleet job outcomes, checkpoint records)
// keep the class, because MarkRetryable renders with the stable
// TransientPrefix and ClassifyMessage recovers it.
package resilience

import (
	"context"
	"errors"
	"strings"
	"time"
)

// Class partitions errors by how the caller should respond.
type Class int

const (
	// ClassFatal errors must not be retried: the operation is invalid
	// or the outcome would not change. Unknown errors default to fatal
	// so a misclassification can never cause a retry storm.
	ClassFatal Class = iota
	// ClassRetryable errors are transient: retry after backoff.
	ClassRetryable
	// ClassBusy errors are explicit backpressure (HTTP 429, an open
	// circuit): retry, but honor the server-suggested wait.
	ClassBusy
)

// String names the class for logs and metrics.
func (c Class) String() string {
	switch c {
	case ClassFatal:
		return "fatal"
	case ClassRetryable:
		return "retryable"
	case ClassBusy:
		return "busy"
	}
	return "unknown"
}

// TransientPrefix is the stable rendering prefix of retryable errors.
// It is part of the wire/persistence contract: an error that crossed a
// string boundary (a fleet job outcome, a checkpoint record) is still
// classifiable by ClassifyMessage.
const TransientPrefix = "transient: "

// Classifier is implemented by errors that carry their own class.
type Classifier interface {
	ResilienceClass() Class
}

// Waiter is implemented by busy errors that carry a suggested wait.
type Waiter interface {
	RetryAfter() time.Duration
}

// classified wraps an error with an explicit class (and, for busy
// errors, a suggested wait).
type classified struct {
	err   error
	class Class
	after time.Duration
}

func (c *classified) Error() string {
	if c.class == ClassRetryable {
		return TransientPrefix + c.err.Error()
	}
	return c.err.Error()
}

func (c *classified) Unwrap() error             { return c.err }
func (c *classified) ResilienceClass() Class    { return c.class }
func (c *classified) RetryAfter() time.Duration { return c.after }

// MarkRetryable wraps err as explicitly retryable. The wrapped error
// renders with TransientPrefix so the class survives string
// flattening. A nil err stays nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ClassRetryable}
}

// MarkFatal wraps err as explicitly fatal (never retried), overriding
// any class carried deeper in the chain. A nil err stays nil.
func MarkFatal(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ClassFatal}
}

// MarkBusy wraps err as backpressure with a suggested wait. A nil err
// stays nil.
func MarkBusy(err error, retryAfter time.Duration) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ClassBusy, after: retryAfter}
}

// Unmark strips the outermost classification wrapper, returning the
// error as it was before Mark*. Callers that classify internally (a
// retrying client) use it so their public errors keep their original
// types and messages. Non-wrapped errors pass through unchanged.
func Unmark(err error) error {
	if c, ok := err.(*classified); ok {
		return c.err
	}
	return err
}

// Classify maps an error to its class. Explicit marks win (outermost
// first), context cancellation and expiry are fatal (the caller's
// budget is spent — retrying cannot help), and everything unknown is
// fatal by default.
func Classify(err error) Class {
	if err == nil {
		return ClassFatal
	}
	var c Classifier
	if errors.As(err, &c) {
		return c.ResilienceClass()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassFatal
	}
	return ClassFatal
}

// Retryable reports whether err should be retried (retryable or busy).
func Retryable(err error) bool {
	cl := Classify(err)
	return cl == ClassRetryable || cl == ClassBusy
}

// RetryAfterHint extracts the suggested wait of a busy error; ok is
// false when the chain carries none.
func RetryAfterHint(err error) (time.Duration, bool) {
	var w Waiter
	if errors.As(err, &w) && w.RetryAfter() > 0 {
		return w.RetryAfter(), true
	}
	return 0, false
}

// ClassifyMessage recovers the class of an error that was flattened to
// a string by a persistence or wire layer. Only the TransientPrefix
// convention survives flattening; everything else is fatal.
func ClassifyMessage(msg string) Class {
	if strings.HasPrefix(msg, TransientPrefix) {
		return ClassRetryable
	}
	return ClassFatal
}

// mix64 is a SplitMix64 finalizer over the seed/counter pair: the same
// construction internal/fleet derives job seeds with, so jitter
// streams are well-mixed for adjacent attempts yet a pure function of
// their inputs.
func mix64(seed, n uint64) uint64 {
	z := seed ^ (n+1)*0x9e3779b97f4a7c15
	for i := 0; i < 2; i++ {
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// unitFloat maps a mixed word onto [0, 1) with 53-bit resolution.
func unitFloat(u uint64) float64 {
	return float64(u>>11) / float64(1<<53)
}
