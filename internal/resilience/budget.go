package resilience

import (
	"context"
	"time"
)

// Deadline/budget propagation. A budget is just a context deadline
// viewed as "time remaining": helpers here make the arithmetic at the
// boundaries (no deadline, zero, expired, inherited-tighter) explicit
// and testable, because that is exactly where ad-hoc deadline code
// goes wrong.

// Remaining reports the budget left before ctx's deadline at the given
// instant. ok is false when ctx carries no deadline (the budget is
// unbounded); an expired deadline reports a zero budget, never a
// negative one.
func Remaining(ctx context.Context, now time.Time) (time.Duration, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	d := dl.Sub(now)
	if d < 0 {
		d = 0
	}
	return d, true
}

// Expired reports whether ctx's deadline has passed at now (false when
// there is no deadline).
func Expired(ctx context.Context, now time.Time) bool {
	dl, ok := ctx.Deadline()
	return ok && !now.Before(dl)
}

// Tighten derives a child context whose budget is the smaller of the
// parent's and d measured from now: an inherited tighter deadline is
// kept, a looser one is clipped. d <= 0 yields an already-expired
// child (a spent budget must fail fast, not hang). The CancelFunc must
// be called to release the child.
func Tighten(ctx context.Context, now time.Time, d time.Duration) (context.Context, context.CancelFunc) {
	if d < 0 {
		d = 0
	}
	return context.WithDeadline(ctx, now.Add(d))
}

// Affordable reports whether a wait of d fits inside ctx's remaining
// budget at now. With no deadline every wait is affordable.
func Affordable(ctx context.Context, now time.Time, d time.Duration) bool {
	rem, ok := Remaining(ctx, now)
	if !ok {
		return true
	}
	return d <= rem
}
