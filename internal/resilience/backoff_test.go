package resilience

import (
	"testing"
	"testing/quick"
	"time"
)

// TestBackoffPureFunction pins the core property: the schedule is a
// pure function of (policy, seed, attempt). Two evaluations with the
// same inputs must agree bit-for-bit, and evaluation order must not
// matter (no hidden RNG state).
func TestBackoffPureFunction(t *testing.T) {
	prop := func(seed uint64, attempt uint8, basems uint16, jitterQ uint8) bool {
		p := Policy{
			MaxAttempts: 8,
			BaseDelay:   time.Duration(basems%500+1) * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Multiplier:  2,
			Jitter:      float64(jitterQ%101) / 100,
		}
		a := int(attempt%10) + 1
		first := p.Backoff(seed, a)
		// Interleave evaluations at other attempts, then re-ask: the
		// answer must not have moved.
		for i := 1; i <= 5; i++ {
			p.Backoff(seed+uint64(i), i)
		}
		return p.Backoff(seed, a) == first
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffBounds checks every delay respects the cap and the
// jitter floor: delay ∈ [(1−Jitter)·raw, raw] and raw ≤ MaxDelay.
func TestBackoffBounds(t *testing.T) {
	prop := func(seed uint64, attempt uint8) bool {
		p := Policy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 800 * time.Millisecond, Multiplier: 3, Jitter: 0.5}
		a := int(attempt%12) + 1
		d := p.Backoff(seed, a)
		raw := float64(10 * time.Millisecond)
		for i := 1; i < a; i++ {
			raw *= 3
			if raw > float64(800*time.Millisecond) {
				break
			}
		}
		if raw > float64(800*time.Millisecond) {
			raw = float64(800 * time.Millisecond)
		}
		return float64(d) >= 0.5*raw-1 && float64(d) <= raw+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffNoJitterExact pins the exact unjittered schedule.
func TestBackoffNoJitterExact(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond, // after attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1000 * time.Millisecond, // capped
	}
	got := p.Schedule(12345)
	if len(got) != len(want) {
		t.Fatalf("schedule length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delay[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Jitter 0 makes the schedule seed-independent.
	for i, d := range p.Schedule(999) {
		if d != want[i] {
			t.Errorf("unjittered schedule depends on seed at %d: %v != %v", i, d, want[i])
		}
	}
}

// TestBackoffSeedSensitivity: with jitter on, distinct seeds produce
// distinct schedules (overwhelmingly), while one seed replays exactly.
func TestBackoffSeedSensitivity(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, Jitter: 0.9}
	a := p.Schedule(1)
	b := p.Schedule(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical jittered schedules")
	}
	c := p.Schedule(1)
	for i := range a {
		if a[i] != c[i] {
			t.Errorf("seed 1 did not replay: delay[%d] %v != %v", i, c[i], a[i])
		}
	}
}

// TestPolicyDefaults pins the zero-value resolution.
func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.MaxAttempts != 4 || p.BaseDelay != 50*time.Millisecond || p.MaxDelay != 5*time.Second || p.Multiplier != 2 {
		t.Errorf("unexpected defaults: %+v", p)
	}
	if got := (Policy{}).Attempts(); got != 4 {
		t.Errorf("Attempts() = %d, want 4", got)
	}
	if (Policy{MaxAttempts: 1}).Schedule(0) != nil {
		t.Error("single-attempt policy should have an empty schedule")
	}
}

// TestClassifyMessageRoundTrip: the retryable mark survives string
// flattening (the contract fleet job outcomes rely on).
func TestClassifyMessageRoundTrip(t *testing.T) {
	err := MarkRetryable(errTest("disk hiccup"))
	if ClassifyMessage(err.Error()) != ClassRetryable {
		t.Errorf("flattened retryable error lost its class: %q", err.Error())
	}
	if ClassifyMessage(errTest("no convergence").Error()) != ClassFatal {
		t.Error("plain message classified retryable")
	}
	if Classify(err) != ClassRetryable {
		t.Error("chain classification broken")
	}
	if Classify(MarkFatal(err)) != ClassFatal {
		t.Error("outer fatal mark did not win")
	}
	busy := MarkBusy(errTest("full"), 3*time.Second)
	if Classify(busy) != ClassBusy {
		t.Error("busy mark lost")
	}
	if after, ok := RetryAfterHint(busy); !ok || after != 3*time.Second {
		t.Errorf("RetryAfterHint = %v, %v", after, ok)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
