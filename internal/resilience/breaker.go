package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes calls through, counting consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits one probe call at a time; enough
	// consecutive probe successes re-close, any failure re-opens.
	BreakerHalfOpen
)

// String names the state for logs and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker; the zero value resolves to
// the documented defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit; <= 0 means 5.
	FailureThreshold int
	// Cooldown is how long an open circuit fails fast before admitting
	// a half-open probe; <= 0 means 2s.
	Cooldown time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close
	// the circuit again; <= 0 means 1.
	HalfOpenSuccesses int
}

// withDefaults resolves the documented zero-value defaults.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 1
	}
	return c
}

// ErrCircuitOpen is wrapped by the error Allow returns while the
// circuit is open; callers can errors.Is against it.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// circuitOpenError carries the remaining cooldown, classified busy so
// the retry runner waits it out instead of hammering.
type circuitOpenError struct {
	retryIn time.Duration
}

func (e *circuitOpenError) Error() string {
	return ErrCircuitOpen.Error() + "; retry in " + e.retryIn.String()
}

func (e *circuitOpenError) Is(target error) bool      { return target == ErrCircuitOpen }
func (e *circuitOpenError) ResilienceClass() Class    { return ClassBusy }
func (e *circuitOpenError) RetryAfter() time.Duration { return e.retryIn }

// Breaker is a half-open circuit breaker. All time arithmetic goes
// through the injected Clock, so the state machine is deterministic
// under test. Safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	probing   bool      // a half-open probe is in flight
	openedAt  time.Time // when the circuit last opened
	trips     uint64    // lifetime closed→open transitions
}

// NewBreaker builds a breaker on the given clock (nil means Real()).
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = Real()
	}
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

// Allow gates a call: nil admits it (Record must follow with the
// outcome), a busy-classified error wrapping ErrCircuitOpen rejects
// it. An open circuit whose cooldown has elapsed moves to half-open
// and admits a single probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		elapsed := b.clock.Now().Sub(b.openedAt)
		if elapsed < b.cfg.Cooldown {
			return &circuitOpenError{retryIn: b.cfg.Cooldown - elapsed}
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		b.probing = true
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			return &circuitOpenError{retryIn: b.cfg.Cooldown}
		}
		b.probing = true
		return nil
	}
}

// Record reports the outcome of an admitted call. Failures while
// closed open the circuit at the threshold; any failure while
// half-open re-opens it; successes close it again after the configured
// probe count.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.probing = false
		if err != nil {
			b.open()
			return
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.state = BreakerClosed
			b.failures = 0
		}
	case BreakerOpen:
		// A straggler finishing after the circuit opened: a success is
		// stale information, a failure just confirms the open state.
	}
}

// open transitions to BreakerOpen (caller holds the lock).
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.clock.Now()
	b.failures = 0
	b.successes = 0
	b.probing = false
	b.trips++
}

// State reports the current position (resolving an elapsed cooldown
// lazily, on the next Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports the lifetime number of closed/half-open → open
// transitions; the obs counter fleetd exports on /healthz.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
