package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// step is one row of the breaker transition table: perform the action
// and expect the resulting state.
type step struct {
	action string // "fail", "ok", "allow", "allow-denied", "advance"
	want   BreakerState
}

// TestBreakerTransitionTable drives the state machine through its
// full transition table on a fake clock.
func TestBreakerTransitionTable(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	cfg := BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Second, HalfOpenSuccesses: 2}
	b := NewBreaker(cfg, clock)

	steps := []step{
		// Closed absorbs sub-threshold failures; a success resets.
		{"fail", BreakerClosed},
		{"fail", BreakerClosed},
		{"ok", BreakerClosed},
		{"fail", BreakerClosed},
		{"fail", BreakerClosed},
		// Third consecutive failure trips it open.
		{"fail", BreakerOpen},
		// Open fails fast during cooldown.
		{"allow-denied", BreakerOpen},
		// Cooldown elapses: next Allow admits a half-open probe.
		{"advance", BreakerOpen},
		{"allow", BreakerHalfOpen},
		// A second caller is rejected while the probe is in flight.
		{"allow-denied", BreakerHalfOpen},
		// First probe success: still half-open (needs 2).
		{"ok", BreakerHalfOpen},
		{"allow", BreakerHalfOpen},
		// Second probe success closes it.
		{"ok", BreakerClosed},
		// Re-open, then a failed probe re-opens immediately.
		{"fail", BreakerClosed},
		{"fail", BreakerClosed},
		{"fail", BreakerOpen},
		{"advance", BreakerOpen},
		{"allow", BreakerHalfOpen},
		{"fail", BreakerOpen},
	}
	for i, s := range steps {
		switch s.action {
		case "fail":
			b.Record(errBoom)
		case "ok":
			b.Record(nil)
		case "allow":
			if err := b.Allow(); err != nil {
				t.Fatalf("step %d: Allow denied: %v", i, err)
			}
		case "allow-denied":
			err := b.Allow()
			if err == nil {
				t.Fatalf("step %d: Allow admitted, want denial", i)
			}
			if !errors.Is(err, ErrCircuitOpen) {
				t.Fatalf("step %d: denial is not ErrCircuitOpen: %v", i, err)
			}
			if Classify(err) != ClassBusy {
				t.Fatalf("step %d: open-circuit error not busy-classified", i)
			}
		case "advance":
			clock.Advance(cfg.Cooldown)
		}
		if got := b.State(); got != s.want {
			t.Fatalf("step %d (%s): state %v, want %v", i, s.action, got, s.want)
		}
	}
	if got := b.Trips(); got != 3 {
		t.Errorf("trips = %d, want 3", got)
	}
}

// TestBreakerOpenCarriesRetryIn: the fail-fast error tells callers how
// long until a probe is possible, and the hint shrinks as time passes.
func TestBreakerOpenCarriesRetryIn(t *testing.T) {
	clock := NewFakeClock(time.Unix(100, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 8 * time.Second}, clock)
	b.Record(errBoom)
	if b.State() != BreakerOpen {
		t.Fatal("threshold 1 did not open on first failure")
	}
	err := b.Allow()
	if after, ok := RetryAfterHint(err); !ok || after != 8*time.Second {
		t.Errorf("retry hint = %v, %v; want 8s", after, ok)
	}
	clock.Advance(5 * time.Second)
	err = b.Allow()
	if after, ok := RetryAfterHint(err); !ok || after != 3*time.Second {
		t.Errorf("retry hint after 5s = %v, %v; want 3s", after, ok)
	}
}

// TestBreakerStragglerRecord: outcomes arriving after the circuit
// opened neither close nor re-trip it.
func TestBreakerStragglerRecord(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute}, clock)
	b.Record(errBoom)
	trips := b.Trips()
	b.Record(nil)     // stale success
	b.Record(errBoom) // stale failure
	if b.State() != BreakerOpen || b.Trips() != trips {
		t.Errorf("straggler records disturbed the open state: %v, trips %d", b.State(), b.Trips())
	}
}

// TestRunnerRetriesThenSucceeds: the Do loop sleeps the policy
// schedule through the clock and stops at first success.
func TestRunnerRetriesThenSucceeds(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	var retried []int
	r := Runner{
		Policy:  Policy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0},
		Seed:    7,
		Clock:   clock,
		OnRetry: func(attempt int, delay time.Duration, err error) { retried = append(retried, attempt) },
	}
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return MarkRetryable(errBoom)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	slept := clock.Slept()
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep[%d] = %v, want %v", i, slept[i], want[i])
		}
	}
	if len(retried) != 2 || retried[0] != 1 || retried[1] != 2 {
		t.Errorf("OnRetry attempts = %v", retried)
	}
}

// TestRunnerFatalStopsImmediately: fatal classification short-circuits.
func TestRunnerFatalStopsImmediately(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	err := Runner{Policy: Policy{MaxAttempts: 5}, Clock: clock}.Do(context.Background(), func(context.Context) error {
		calls++
		return errBoom // unknown ⇒ fatal
	})
	if !errors.Is(err, errBoom) || calls != 1 || len(clock.Slept()) != 0 {
		t.Errorf("fatal error retried: calls=%d slept=%v err=%v", calls, clock.Slept(), err)
	}
}

// TestRunnerHonorsRetryAfter: a busy error's hint extends the wait
// beyond the policy backoff.
func TestRunnerHonorsRetryAfter(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	err := Runner{
		Policy: Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Jitter: 0},
		Clock:  clock,
	}.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return MarkBusy(errBoom, 4*time.Second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	slept := clock.Slept()
	if len(slept) != 1 || slept[0] != 4*time.Second {
		t.Errorf("slept %v, want [4s]", slept)
	}
}

// TestRunnerRespectsBudget: a wait that does not fit the remaining
// deadline budget is not slept; the last error returns immediately.
// The fake clock starts at real now so the context deadline (which the
// runtime checks against wall time) stays in the future; durations are
// in seconds so fake-time arithmetic dwarfs real elapsed time.
func TestRunnerRespectsBudget(t *testing.T) {
	//lint:allow determinism-taint fake clock must start near real time for context deadlines
	clock := NewFakeClock(time.Now())
	ctx, cancel := Tighten(context.Background(), clock.Now(), 150*time.Second)
	defer cancel()
	calls := 0
	err := Runner{
		Policy: Policy{MaxAttempts: 10, BaseDelay: 100 * time.Second, MaxDelay: time.Hour, Multiplier: 2, Jitter: 0},
		Clock:  clock,
	}.Do(ctx, func(context.Context) error {
		calls++
		return MarkRetryable(errBoom)
	})
	if err == nil || Classify(err) != ClassRetryable {
		t.Fatalf("want the retryable error back, got %v", err)
	}
	// First backoff (100s) fits the 150s budget; the second (200s)
	// does not, so exactly two attempts run and one sleep happens.
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
	if slept := clock.Slept(); len(slept) != 1 || slept[0] != 100*time.Second {
		t.Errorf("slept %v, want [100s]", slept)
	}
}

// TestRunnerBreakerIntegration: the breaker opens under repeated
// failure and Do fails fast on it; busy outcomes do not feed it.
func TestRunnerBreakerIntegration(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}, clock)
	r := Runner{Policy: Policy{MaxAttempts: 6, BaseDelay: time.Millisecond, Jitter: 0}, Clock: clock, Breaker: b}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return MarkRetryable(errBoom)
	})
	if err == nil {
		t.Fatal("want error")
	}
	// Attempts 1-2 run op and trip the breaker. Attempt 3 is denied
	// (busy, Retry-After = cooldown) and the fake clock sleeps the
	// cooldown instantly, so attempt 4 runs a half-open probe that
	// fails and re-opens; attempt 5 is denied; attempt 6 probes again.
	// Net: op runs on attempts 1, 2, 4, 6 and the circuit trips three
	// times (threshold, then each failed probe).
	if calls != 4 {
		t.Errorf("op calls = %d, want 4 (attempts 3 and 5 fail fast)", calls)
	}
	if b.State() != BreakerOpen {
		t.Errorf("breaker state %v after a failed probe, want open", b.State())
	}
	if b.Trips() != 3 {
		t.Errorf("trips = %d, want 3", b.Trips())
	}

	busyB := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}, clock)
	busyR := Runner{Policy: Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: 0}, Clock: clock, Breaker: busyB}
	_ = busyR.Do(context.Background(), func(context.Context) error {
		return MarkBusy(errBoom, time.Millisecond)
	})
	if busyB.State() != BreakerClosed || busyB.Trips() != 0 {
		t.Errorf("busy outcomes fed the breaker: %v trips=%d", busyB.State(), busyB.Trips())
	}
}
