package resilience

import "time"

// Policy is a capped exponential backoff schedule with seeded jitter.
// The zero value resolves to the documented defaults; Backoff is a
// pure function of (policy, seed, attempt) — the property the schedule
// tests pin — so two runs with the same seed retry on identical
// schedules regardless of wall clock or scheduling.
type Policy struct {
	// MaxAttempts is the total number of tries including the first;
	// <= 0 means 4. 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; <= 0 means
	// 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; <= 0 means 5s.
	MaxDelay time.Duration
	// Multiplier is the per-retry growth factor; values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized (0 keeps
	// the schedule exact, 1 spreads each delay over [0, delay)). Values
	// outside [0, 1] are clamped. The jitter stream derives from the
	// seed passed to Backoff, never from a global RNG.
	Jitter float64
}

// Defaults for the zero Policy.
const (
	defaultMaxAttempts = 4
	defaultBaseDelay   = 50 * time.Millisecond
	defaultMaxDelay    = 5 * time.Second
	defaultMultiplier  = 2.0
)

// withDefaults resolves the documented zero-value defaults.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultMaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = defaultMultiplier
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Attempts reports the resolved total attempt budget.
func (p Policy) Attempts() int { return p.withDefaults().MaxAttempts }

// Backoff returns the delay to wait after the given failed attempt
// (attempt 1 is the first try; the returned delay precedes attempt
// attempt+1). It is a pure function of (p, seed, attempt): the raw
// delay is BaseDelay·Multiplier^(attempt-1) capped at MaxDelay, and
// the jittered delay keeps the deterministic (1−Jitter) share and
// draws the rest from a SplitMix64 stream over (seed, attempt).
func (p Policy) Backoff(seed uint64, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	cap := float64(p.MaxDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= cap {
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	if p.Jitter > 0 {
		u := unitFloat(mix64(seed, uint64(attempt)))
		d = d*(1-p.Jitter) + d*p.Jitter*u
	}
	return time.Duration(d)
}

// Schedule materializes the full retry schedule for a seed: the delays
// after attempts 1..MaxAttempts-1. Diagnostic/test helper.
func (p Policy) Schedule(seed uint64) []time.Duration {
	p = p.withDefaults()
	if p.MaxAttempts <= 1 {
		return nil
	}
	out := make([]time.Duration, p.MaxAttempts-1)
	for i := range out {
		out[i] = p.Backoff(seed, i+1)
	}
	return out
}
