package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock is the seam every delay in the service layer goes through.
// Production code uses Real(); tests and the chaos harness substitute
// a FakeClock so retry/backoff schedules run instantly and
// deterministically. The arachnet-lint sleep-discipline check enforces
// that internal/fleetd and its api package never call time.Sleep (or
// time.After) directly — delays must be routed here, where they are
// injectable.
type Clock interface {
	// Now reports the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case (nil otherwise). Non-positive d returns
	// immediately.
	Sleep(ctx context.Context, d time.Duration) error
}

// Real returns the wall-clock Clock.
func Real() Clock { return realClock{} }

type realClock struct{}

// Now implements Clock.
//
//lint:allow determinism-taint realClock is the production seam; tests use FakeClock
func (realClock) Now() time.Time { return time.Now() }

// Sleep implements Clock with a context-aware timer.
func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FakeClock is a deterministic Clock for tests: Sleep returns
// immediately, advancing the fake time by the requested duration and
// recording it, so a retry schedule can be asserted without waiting
// for it. Safe for concurrent use.
type FakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

// Now implements Clock.
func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the fake time forward without recording a sleep.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// Sleep implements Clock: the requested duration is recorded and the
// fake time advances, but the call never blocks (beyond an immediate
// ctx check).
func (f *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.slept = append(f.slept, d)
	f.mu.Unlock()
	return nil
}

// Slept returns the recorded sleep durations in call order.
func (f *FakeClock) Slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}
