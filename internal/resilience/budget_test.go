package resilience

import (
	"context"
	"testing"
	"time"
)

// TestRemainingBoundaries: no deadline, future, exact-now, and past
// deadlines.
func TestRemainingBoundaries(t *testing.T) {
	now := time.Unix(1000, 0)

	if _, ok := Remaining(context.Background(), now); ok {
		t.Error("background context reported a deadline")
	}

	ctx, cancel := context.WithDeadline(context.Background(), now.Add(2*time.Second))
	defer cancel()
	if rem, ok := Remaining(ctx, now); !ok || rem != 2*time.Second {
		t.Errorf("Remaining = %v, %v; want 2s, true", rem, ok)
	}

	// Exactly at the deadline: zero budget, expired.
	if rem, ok := Remaining(ctx, now.Add(2*time.Second)); !ok || rem != 0 {
		t.Errorf("Remaining at deadline = %v, %v; want 0, true", rem, ok)
	}
	if !Expired(ctx, now.Add(2*time.Second)) {
		t.Error("deadline instant not reported expired")
	}
	if Expired(ctx, now.Add(2*time.Second-time.Nanosecond)) {
		t.Error("one ns before deadline reported expired")
	}

	// Past the deadline: clamped to zero, never negative.
	if rem, _ := Remaining(ctx, now.Add(time.Minute)); rem != 0 {
		t.Errorf("expired budget = %v, want 0", rem)
	}

	if Expired(context.Background(), now) {
		t.Error("no-deadline context reported expired")
	}
}

// TestTightenInherited: a tighter parent deadline survives Tighten; a
// looser one is clipped.
func TestTightenInherited(t *testing.T) {
	now := time.Unix(0, 0)
	parent, pcancel := context.WithDeadline(context.Background(), now.Add(time.Second))
	defer pcancel()

	// Looser child request: parent's 1s wins.
	child, cancel := Tighten(parent, now, time.Minute)
	defer cancel()
	if rem, ok := Remaining(child, now); !ok || rem != time.Second {
		t.Errorf("loose Tighten kept %v, want inherited 1s", rem)
	}

	// Tighter child request: child's 100ms wins.
	child2, cancel2 := Tighten(parent, now, 100*time.Millisecond)
	defer cancel2()
	if rem, _ := Remaining(child2, now); rem != 100*time.Millisecond {
		t.Errorf("tight Tighten kept %v, want 100ms", rem)
	}

	// No parent deadline: child gets exactly d.
	child3, cancel3 := Tighten(context.Background(), now, 5*time.Second)
	defer cancel3()
	if rem, ok := Remaining(child3, now); !ok || rem != 5*time.Second {
		t.Errorf("unbounded parent Tighten = %v, %v; want 5s", rem, ok)
	}
}

// TestTightenZeroAndNegative: a spent budget yields an already-expired
// child that fails fast.
func TestTightenZeroAndNegative(t *testing.T) {
	now := time.Unix(0, 0)
	for _, d := range []time.Duration{0, -time.Second} {
		ctx, cancel := Tighten(context.Background(), now, d)
		if !Expired(ctx, now) {
			t.Errorf("Tighten(%v) child not expired at now", d)
		}
		// The runtime also agrees once it observes the deadline.
		select {
		case <-ctx.Done():
		case <-time.After(time.Second):
			t.Fatalf("Tighten(%v) child never became Done", d)
		}
		cancel()
	}
}

// TestAffordableBoundaries: exact fit is affordable, one ns over is
// not, and no deadline affords everything.
func TestAffordableBoundaries(t *testing.T) {
	now := time.Unix(0, 0)
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(time.Second))
	defer cancel()
	if !Affordable(ctx, now, time.Second) {
		t.Error("exact-fit wait reported unaffordable")
	}
	if Affordable(ctx, now, time.Second+time.Nanosecond) {
		t.Error("over-budget wait reported affordable")
	}
	if !Affordable(context.Background(), now, 24*time.Hour) {
		t.Error("no-deadline context refused a wait")
	}
	if Affordable(ctx, now.Add(2*time.Second), time.Nanosecond) {
		t.Error("expired budget afforded a wait")
	}
	if !Affordable(ctx, now.Add(time.Second), 0) {
		t.Error("zero wait should fit a zero budget")
	}
}

// TestFakeClockSleep: the fake clock advances instantly, records the
// request, and still honors context cancellation.
func TestFakeClockSleep(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	if err := clock.Sleep(context.Background(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now(); !got.Equal(time.Unix(3, 0)) {
		t.Errorf("Now = %v after 3s sleep", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := clock.Sleep(ctx, time.Second); err == nil {
		t.Error("sleep on cancelled ctx returned nil")
	}
	slept := clock.Slept()
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Errorf("Slept() = %v, want [3s]", slept)
	}
}

// TestRealClockSleepCancel: the real clock's sleep is ctx-aware.
func TestRealClockSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	//lint:allow determinism-taint measures that a cancelled sleep returns promptly
	start := time.Now()
	if err := Real().Sleep(ctx, 10*time.Second); err == nil {
		t.Fatal("sleep ignored cancelled context")
	}
	//lint:allow determinism-taint measures that a cancelled sleep returns promptly
	if time.Since(start) > time.Second {
		t.Error("cancelled sleep blocked")
	}
	if err := Real().Sleep(context.Background(), 0); err != nil {
		t.Errorf("zero sleep: %v", err)
	}
}
