package resilience

import (
	"context"
	"time"
)

// Runner composes the kit into a retry loop: policy + seed fix the
// schedule, the clock makes waits injectable, the optional breaker
// fails fast during outages, and OnRetry feeds metrics.
type Runner struct {
	// Policy is the backoff schedule (zero value = defaults).
	Policy Policy
	// Seed drives the jitter stream; the schedule is a pure function
	// of (Policy, Seed, attempt).
	Seed uint64
	// Clock provides Now/Sleep; nil means Real().
	Clock Clock
	// Breaker, when non-nil, gates every attempt.
	Breaker *Breaker
	// OnRetry is invoked before each backoff wait with the attempt
	// number (1-based), the chosen delay, and the error that caused
	// the retry; nil means no hook.
	OnRetry func(attempt int, delay time.Duration, err error)
}

// Do runs op with retries. Retryable errors back off per the policy;
// busy errors wait at least their Retry-After hint; fatal errors (and
// exhausted budgets) return immediately. A wait that cannot fit in
// ctx's remaining deadline budget is not slept: the last error returns
// right away, so callers never burn their budget inside a doomed wait.
func (r Runner) Do(ctx context.Context, op func(ctx context.Context) error) error {
	clock := r.Clock
	if clock == nil {
		clock = Real()
	}
	p := r.Policy.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err := r.attempt(ctx, op)
		if err == nil {
			return nil
		}
		lastErr = err
		class := Classify(err)
		if class == ClassFatal || attempt >= p.MaxAttempts {
			return err
		}
		delay := p.Backoff(r.Seed, attempt)
		if hint, ok := RetryAfterHint(err); ok && hint > delay {
			delay = hint
		}
		if !Affordable(ctx, clock.Now(), delay) {
			return err
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt, delay, err)
		}
		if serr := clock.Sleep(ctx, delay); serr != nil {
			return err
		}
	}
}

// attempt runs op once through the breaker gate (when present).
func (r Runner) attempt(ctx context.Context, op func(ctx context.Context) error) error {
	if r.Breaker != nil {
		if err := r.Breaker.Allow(); err != nil {
			return err
		}
	}
	err := op(ctx)
	if r.Breaker != nil {
		// Backpressure is the server working as designed, not an
		// outage signal: busy outcomes do not feed the breaker.
		if err != nil && Classify(err) == ClassBusy {
			r.Breaker.Record(nil)
		} else {
			r.Breaker.Record(err)
		}
	}
	return err
}
