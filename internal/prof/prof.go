// Package prof wires the standard runtime/pprof CPU and heap profilers
// into the command-line tools, so a perf investigation is one flag away:
//
//	arachnet-experiments -cpuprofile cpu.out fig12b
//	go tool pprof cpu.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function is always non-nil and
// safe to call exactly once, including when both paths are empty.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
