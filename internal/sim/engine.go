package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Event is a scheduled callback. Events fire in timestamp order; events
// with equal timestamps fire in the order they were scheduled (FIFO),
// which keeps multi-entity simulations deterministic.
type Event struct {
	At    Time
	Name  string // optional label for tracing
	Fire  func(now Time)
	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all entities in a simulation share one engine and
// run on its virtual clock.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	stopped bool
	trace   *obs.Tracer
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine { return &Engine{} }

// SetTracer attaches an observability tracer; every fired event is then
// emitted as an obs.KindSimEvent record. A nil tracer (the default)
// costs nothing. Event-level simulations fire many thousands of events
// per simulated second — mute obs.KindSimEvent on the tracer when only
// protocol or energy events are wanted.
func (e *Engine) SetTracer(t *obs.Tracer) { e.trace = t }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("sim: event scheduled in the past")

// Schedule enqueues fn to run at absolute time at. It returns a handle
// that can be cancelled. Scheduling at the current time is allowed (the
// event fires within the current Run loop, after already-queued events
// with the same timestamp).
func (e *Engine) Schedule(at Time, name string, fn func(now Time)) (*Event, error) {
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v (%s)", ErrPast, at, e.now, name)
	}
	e.seq++
	ev := &Event{At: at, Name: name, Fire: fn, seq: e.seq}
	heap.Push(&e.queue, ev)
	return ev, nil
}

// After enqueues fn to run delay ticks from now. Negative delays are
// clamped to zero.
func (e *Engine) After(delay Time, name string, fn func(now Time)) *Event {
	if delay < 0 {
		delay = 0
	}
	ev, _ := e.Schedule(e.now+delay, name, fn) // never in the past
	return ev
}

// Cancel removes a pending event from the queue. Cancelling an event
// that already fired (or was cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index == -1 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Stop makes the current Run/RunUntil call return after the in-flight
// event completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest event and advances the clock to it.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.fired++
	if e.trace.Enabled() {
		e.trace.Emit(obs.Event{Kind: obs.KindSimEvent, T: ev.At.Seconds(), Name: ev.Name})
	}
	ev.Fire(e.now)
	return true
}

// RunUntil fires events in order until the queue drains, the deadline
// passes, or Stop is called. The clock never advances past the deadline:
// if the next event is later, the clock is set to exactly the deadline
// and RunUntil returns. It returns the time at which it stopped.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			if e.now < deadline && deadline != Never {
				e.now = deadline
			}
			return e.now
		}
		next := e.queue[0]
		if next.At > deadline {
			e.now = deadline
			return e.now
		}
		e.Step()
	}
	return e.now
}

// Run fires events until the queue drains or Stop is called, returning
// the final clock value.
func (e *Engine) Run() Time { return e.RunUntil(Never) }
