package sim

import (
	"math"
	"math/bits"
)

// Rand is a small, fast, deterministic PRNG (SplitMix64 core feeding an
// xoshiro256** state). Every simulation entity that needs randomness
// derives its own Rand from the experiment seed so results are
// reproducible and independent of entity iteration order.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via SplitMix64 expansion,
// which guarantees a well-mixed nonzero state even for small seeds.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed reinitializes the generator in place, bit-identically to
// NewRand(seed). Pooled simulation state uses it to rewind an existing
// stream to a fresh trial without allocating a new generator.
//
//alloc:hot in-place rewind for pooled simulation state
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Fork derives an independent stream labelled by id. Two forks of the
// same parent with different ids produce uncorrelated sequences.
func (r *Rand) Fork(id uint64) *Rand {
	f := &Rand{}
	f.ReseedFork(r, id)
	return f
}

// ReseedFork reinitializes r in place as a fork of parent labelled by
// id, consuming exactly the parent state a Fork call would: the
// resulting stream is bit-identical to parent.Fork(id). This is the
// allocation-free reset path for clone pools that must replay a
// construction-time fork sequence.
//
//alloc:hot allocation-free fork-replay reset for clone pools
func (r *Rand) ReseedFork(parent *Rand, id uint64) {
	r.Seed(parent.Uint64() ^ (id * 0x9e3779b97f4a7c15) ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
//
//alloc:hot core PRNG step on every simulated slot
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		//lint:allow panic-hygiene documented API contract mirroring math/rand.Intn
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
