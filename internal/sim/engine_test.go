package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0µs"},
		{999, "999µs"},
		{Millisecond, "1.000ms"},
		{1500, "1.500ms"},
		{Second, "1.000000s"},
		{90*Second + 500*Millisecond, "90.500000s"},
		{Never, "never"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromSeconds(-1) != 0 {
		t.Errorf("FromSeconds(-1) = %v, want 0", FromSeconds(-1))
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3.0 {
		t.Errorf("Milliseconds() = %v", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30, "c", func(Time) { order = append(order, 3) })
	e.After(10, "a", func(Time) { order = append(order, 1) })
	e.After(20, "b", func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("clock = %v, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("fired = %d, want 3", e.Fired())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5, "tie", func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestEngineSchedulePast(t *testing.T) {
	e := NewEngine()
	e.After(10, "x", func(Time) {})
	e.Run()
	if _, err := e.Schedule(5, "past", func(Time) {}); err == nil {
		t.Fatal("expected error scheduling in the past")
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(10, "x", func(Time) { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Error("event not marked cancelled")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and nil-cancel must be safe.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	events := make([]*Event, 20)
	for i := range events {
		i := i
		events[i] = e.After(Time(i), "n", func(Time) { fired = append(fired, i) })
	}
	for i := 5; i < 15; i++ {
		e.Cancel(events[i])
	}
	e.Run()
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10: %v", len(fired), fired)
	}
	for _, v := range fired {
		if v >= 5 && v < 15 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(Time)
	tick = func(Time) {
		count++
		e.After(10, "tick", tick)
	}
	e.After(10, "tick", tick)
	end := e.RunUntil(100)
	if end != 100 {
		t.Errorf("RunUntil returned %v, want 100", end)
	}
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if e.Now() != 100 {
		t.Errorf("clock = %v, want exactly the deadline", e.Now())
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("idle RunUntil left clock at %v", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(Time)
	tick = func(Time) {
		count++
		if count == 5 {
			e.Stop()
		}
		e.After(1, "tick", tick)
	}
	e.After(1, "tick", tick)
	e.Run()
	if count != 5 {
		t.Errorf("Stop did not halt the loop: count=%d", count)
	}
	if e.Pending() == 0 {
		t.Error("Stop should leave pending events queued")
	}
}

func TestEngineScheduleDuringEvent(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(10, "outer", func(now Time) {
		order = append(order, "outer")
		// Same-time event scheduled from within an event must still fire.
		e.After(0, "inner", func(Time) { order = append(order, "inner") })
	})
	e.Run()
	if len(order) != 2 || order[1] != "inner" {
		t.Fatalf("inner event mishandled: %v", order)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/1000", same)
	}
}

func TestRandForkIndependence(t *testing.T) {
	parent := NewRand(7)
	f1 := parent.Fork(1)
	f2 := parent.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forks correlated: %d/1000 identical", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(1)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandIntnUniform(t *testing.T) {
	r := NewRand(99)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d counts, want ~%.0f", i, c, want)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandBool(t *testing.T) {
	r := NewRand(3)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate %.4f", p)
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %.4f", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %.4f", variance)
	}
}

func TestRandExpFloat64Mean(t *testing.T) {
	r := NewRand(12)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %.4f", mean)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(5)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%64), "bench", func(Time) {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
