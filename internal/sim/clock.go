// Package sim provides a deterministic discrete-event simulation engine
// used by every ARACHNET subsystem: a virtual clock with microsecond
// resolution, a binary-heap event queue with stable FIFO ordering for
// simultaneous events, and a seedable random source so every experiment
// is reproducible from its seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual simulation timestamp measured in microseconds since
// the start of the simulation. A dedicated type (rather than
// time.Duration) keeps arithmetic explicit and avoids accidental mixing
// with wall-clock values.
type Time int64

// Common time unit constants, expressed in simulation ticks.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Never is a sentinel timestamp that sorts after every reachable event.
const Never Time = 1<<63 - 1

// Duration converts the timestamp to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// Seconds returns the timestamp in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the timestamp in (fractional) milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the timestamp using the most natural unit.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(t))
	}
}

// FromSeconds converts fractional seconds to a simulation timestamp,
// rounding to the nearest microsecond.
func FromSeconds(s float64) Time {
	if s < 0 {
		return 0
	}
	return Time(s*float64(Second) + 0.5)
}

// FromDuration converts a time.Duration to a simulation timestamp.
func FromDuration(d time.Duration) Time { return Time(d / time.Microsecond) }
