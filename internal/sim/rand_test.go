package sim

import "testing"

// Seed must rewind an existing generator to exactly the stream a fresh
// NewRand would produce — the clone pools rely on bit-identical replay.
func TestSeedMatchesNewRand(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF, ^uint64(0)} {
		fresh := NewRand(seed)
		reused := NewRand(seed ^ 0x1234) // dirty it first
		for i := 0; i < 17; i++ {
			reused.Uint64()
		}
		reused.Seed(seed)
		for i := 0; i < 100; i++ {
			if a, b := fresh.Uint64(), reused.Uint64(); a != b {
				t.Fatalf("seed %d draw %d: %x != %x", seed, i, a, b)
			}
		}
	}
}

// ReseedFork must consume the parent identically to Fork and yield the
// same child stream.
func TestReseedForkMatchesFork(t *testing.T) {
	p1, p2 := NewRand(7), NewRand(7)
	c1 := p1.Fork(3)
	var c2 Rand
	c2.ReseedFork(p2, 3)
	for i := 0; i < 100; i++ {
		if a, b := c1.Uint64(), c2.Uint64(); a != b {
			t.Fatalf("child draw %d: %x != %x", i, a, b)
		}
	}
	// Parents consumed the same amount of state.
	if a, b := p1.Uint64(), p2.Uint64(); a != b {
		t.Fatalf("parent streams diverged after fork: %x != %x", a, b)
	}
}

// A reset loop on pooled generators must not allocate.
func TestSeedAllocationFree(t *testing.T) {
	r := NewRand(1)
	var child Rand
	n := testing.AllocsPerRun(100, func() {
		r.Seed(9)
		child.ReseedFork(r, 2)
		_ = child.Uint64()
	})
	if n != 0 {
		t.Fatalf("Seed/ReseedFork allocate %v per run, want 0", n)
	}
}
