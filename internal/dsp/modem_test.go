package dsp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

func TestChipSamplerIntegrateAndDump(t *testing.T) {
	c, err := NewChipSampler(4)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Process([]float64{1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2})
	want := []float64{1, 0, 2}
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestChipSamplerChunked(t *testing.T) {
	c1, _ := NewChipSampler(5)
	c2, _ := NewChipSampler(5)
	sig := make([]float64, 50)
	for i := range sig {
		sig[i] = float64(i % 7)
	}
	whole := c1.Process(sig)
	var chunked []float64
	chunked = append(chunked, c2.Process(sig[:13])...)
	chunked = append(chunked, c2.Process(sig[13:29])...)
	chunked = append(chunked, c2.Process(sig[29:])...)
	if len(whole) != len(chunked) {
		t.Fatalf("lengths differ: %d vs %d", len(whole), len(chunked))
	}
	for i := range whole {
		if math.Abs(whole[i]-chunked[i]) > 1e-12 {
			t.Fatalf("chunked processing diverged at %d", i)
		}
	}
}

func TestChipSamplerErrors(t *testing.T) {
	if _, err := NewChipSampler(1); err == nil {
		t.Error("1 sample/chip accepted")
	}
}

func TestSliceChips(t *testing.T) {
	bits, th := SliceChips([]float64{0.1, 0.9, 0.15, 0.85})
	if !bits.Equal(phy.Bits{0, 1, 0, 1}) {
		t.Errorf("bits = %v", bits)
	}
	if th < 0.4 || th > 0.6 {
		t.Errorf("threshold = %v", th)
	}
	if b, _ := SliceChips(nil); b != nil {
		t.Error("empty input should return nil")
	}
}

func TestFindULFrame(t *testing.T) {
	frame, err := phy.ULPacket{TID: 3, Payload: 0x123}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	chips := phy.FM0Encode(frame, 0)
	// Prepend idle chips.
	stream := append(phy.Bits{0, 0, 1, 0, 0, 1}, chips...)
	start, inv, err := FindULFrame(stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inv {
		t.Error("unexpected polarity inversion")
	}
	if start != 6 {
		t.Errorf("start = %d, want 6", start)
	}
}

func TestFindULFrameInverted(t *testing.T) {
	frame, _ := phy.ULPacket{TID: 1, Payload: 7}.Marshal()
	chips := phy.FM0Encode(frame, 0).Invert()
	start, inv, err := FindULFrame(chips, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !inv || start != 0 {
		t.Errorf("start=%d inv=%v, want 0,true", start, inv)
	}
}

func TestFindULFrameTolerance(t *testing.T) {
	frame, _ := phy.ULPacket{TID: 2, Payload: 9}.Marshal()
	chips := phy.FM0Encode(frame, 0)
	chips[3] ^= 1 // corrupt one preamble chip
	if _, _, err := FindULFrame(chips, 0); err == nil {
		t.Error("zero-tolerance search should miss the damaged preamble")
	}
	start, _, err := FindULFrame(chips, 1)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Errorf("start = %d", start)
	}
}

func TestFindULFrameMissing(t *testing.T) {
	if _, _, err := FindULFrame(make(phy.Bits, 100), 1); !errors.Is(err, ErrNoPreamble) {
		t.Errorf("got %v, want ErrNoPreamble", err)
	}
}

func TestDecodeULFrameCleanBaseband(t *testing.T) {
	pkt := phy.ULPacket{TID: 9, Payload: 0xABC}
	frame, _ := pkt.Marshal()
	chips := phy.FM0Encode(frame, 0)
	p := ULSynthParams{
		CarrierHz: 90000, Fs: 500000, ChipRate: 750,
		Leakage: 0.2, Backscatter: 0.05, NoiseRMS: 0,
	}
	soft := SynthesizeULBaseband(chips, 16, p, nil)
	// Average per chip: 16 samples per chip.
	sampler, _ := NewChipSampler(16)
	chipMeans := sampler.Process(soft)
	got, err := DecodeULFrame(chipMeans)
	if err != nil {
		t.Fatal(err)
	}
	if got != pkt {
		t.Errorf("decoded %+v, want %+v", got, pkt)
	}
}

func TestDecodeULFrameNoisyBaseband(t *testing.T) {
	rng := sim.NewRand(77)
	pkt := phy.ULPacket{TID: 5, Payload: 0x5A5}
	frame, _ := pkt.Marshal()
	chips := phy.FM0Encode(frame, 0)
	p := ULSynthParams{
		CarrierHz: 90000, Fs: 500000, ChipRate: 375,
		Leakage: 0.2, Backscatter: 0.05, NoiseRMS: 0.03,
	}
	ok := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		soft := SynthesizeULBaseband(chips, 32, p, rng)
		sampler, _ := NewChipSampler(32)
		got, err := DecodeULFrame(sampler.Process(soft))
		if err == nil && got == pkt {
			ok++
		}
	}
	// At the default 375 bps the paper sees <0.5% loss; our noisy
	// baseband should decode nearly always.
	if ok < trials-1 {
		t.Errorf("decoded %d/%d noisy frames", ok, trials)
	}
}

func TestDecodeULFramePassbandChain(t *testing.T) {
	// End-to-end: passband synthesis at 500 kHz -> down-conversion ->
	// magnitude -> chip sampling -> decode. This is the full reader
	// chain from Sec. 6.1.
	pkt := phy.ULPacket{TID: 12, Payload: 0x3C3}
	frame, _ := pkt.Marshal()
	// Carrier-only guard chips bracket the frame, as on the real link
	// where the tag idles in the absorptive state around a packet.
	chips := append(make(phy.Bits, 8), phy.FM0Encode(frame, 0)...)
	chips = append(chips, make(phy.Bits, 4)...)
	const fs = 500000.0
	const chipRate = 3000.0 // keep the test fast
	p := ULSynthParams{
		CarrierHz: 90000, Fs: fs, ChipRate: chipRate,
		Leakage: 0.2, Backscatter: 0.06, NoiseRMS: 0.01,
	}
	wave := SynthesizeUL(chips, p, sim.NewRand(3))

	dc, err := NewDownConverter(90000, fs, 8000, 101)
	if err != nil {
		t.Fatal(err)
	}
	iq := dc.Process(wave)
	mags := Magnitudes(iq)
	// Drop the filter transient; DecodeULFromBaseband recovers the
	// remaining unknown chip phase itself.
	got, err := DecodeULFromBaseband(mags[101:], fs/chipRate)
	if err != nil {
		t.Fatalf("passband decode failed: %v", err)
	}
	if got != pkt {
		t.Errorf("decoded %+v, want %+v", got, pkt)
	}
}

func TestSynthesizeULBasebandLevels(t *testing.T) {
	p := ULSynthParams{Fs: 500000, ChipRate: 375, Leakage: 0.5, Backscatter: 0.1}
	soft := SynthesizeULBaseband(phy.Bits{0, 1}, 4, p, nil)
	if len(soft) != 8 {
		t.Fatalf("length %d", len(soft))
	}
	for i := 0; i < 4; i++ {
		if soft[i] != 0.5 {
			t.Errorf("chip 0 sample %d = %v, want leakage", i, soft[i])
		}
	}
	for i := 4; i < 8; i++ {
		if math.Abs(soft[i]-0.6) > 1e-12 {
			t.Errorf("chip 1 sample %d = %v, want leakage+backscatter", i, soft[i])
		}
	}
}

func TestSynthesizeDLEnvelopeRingEffect(t *testing.T) {
	const fs = 100000.0
	p := DLSynthParams{
		ChipSeconds: 0.004, HighVolts: 1.0, LowLeak: 0.05,
		RingTau: 0.002, // exaggerated ring for the test
	}
	env := SynthesizeDLEnvelope(phy.Bits{1, 0, 0}, fs, p, nil)
	spc := int(p.ChipSeconds * fs)
	// Right after the high->low transition the envelope must still be
	// elevated (the ring tail)...
	after := env[spc+spc/10]
	if after < 0.3 {
		t.Errorf("ring tail missing: %v just after transition", after)
	}
	// ...but decays toward the leakage floor by the end.
	tail := env[3*spc-2]
	if tail > 0.3 {
		t.Errorf("ring tail did not decay: %v", tail)
	}
}

func TestSynthesizeDLEnvelopeNoRingWithShortTau(t *testing.T) {
	const fs = 100000.0
	p := DLSynthParams{
		ChipSeconds: 0.004, HighVolts: 1.0, LowLeak: 0.05,
		RingTau: 160e-6, // the real PZT tau: short vs a 4 ms chip
	}
	env := SynthesizeDLEnvelope(phy.Bits{1, 0}, fs, p, nil)
	spc := int(p.ChipSeconds * fs)
	mid := env[spc+spc/2]
	if mid > 0.1 {
		t.Errorf("envelope at low-chip midpoint = %v, ring should be gone", mid)
	}
}

func TestIQMagnitudePhase(t *testing.T) {
	s := IQ{I: 3, Q: 4}
	if s.Magnitude() != 5 {
		t.Errorf("magnitude = %v", s.Magnitude())
	}
	if math.Abs(IQ{I: 0, Q: 1}.Phase()-math.Pi/2) > 1e-12 {
		t.Error("phase wrong")
	}
}

func TestEnvelopeDetector(t *testing.T) {
	const fs = 500000.0
	ed, err := NewEnvelopeDetector(100e-6, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a 90 kHz burst; the envelope should rise to near the
	// amplitude and hold between carrier peaks.
	var out float64
	for i := 0; i < 2000; i++ {
		x := 0.8 * math.Sin(2*math.Pi*90000*float64(i)/fs)
		out = ed.ProcessSample(x)
	}
	if out < 0.6 {
		t.Errorf("envelope = %v, want near 0.8", out)
	}
	// After the burst stops it decays.
	for i := 0; i < 200000; i++ {
		out = ed.ProcessSample(0)
	}
	if out > 0.01 {
		t.Errorf("envelope did not decay: %v", out)
	}
	if _, err := NewEnvelopeDetector(0, fs); err == nil {
		t.Error("zero tau accepted")
	}
}
