package dsp

import (
	"testing"

	"repro/internal/sim"
)

// makeIQBlock builds an IQ block whose magnitudes cycle through the
// given levels with additive noise.
func makeIQBlock(levels []float64, perLevel int, noise float64, rng *sim.Rand) []IQ {
	var out []IQ
	for _, l := range levels {
		for i := 0; i < perLevel; i++ {
			m := l
			if rng != nil {
				m += rng.NormFloat64() * noise
			}
			out = append(out, IQ{I: m, Q: 0})
		}
	}
	return out
}

func TestCountClustersSingleTag(t *testing.T) {
	rng := sim.NewRand(5)
	// One tag OOKing produces two levels: leakage and leakage+bs.
	block := makeIQBlock([]float64{0.20, 0.25, 0.20, 0.25, 0.20, 0.25}, 200, 0.004, rng)
	n := CountClusters(block, 0.015, 0.05)
	if n != 2 {
		t.Errorf("clusters = %d, want 2 for a single tag", n)
	}
	if CollisionDetected(block, 0.015, 0.05) {
		t.Error("single tag flagged as collision")
	}
}

func TestCountClustersTwoTags(t *testing.T) {
	rng := sim.NewRand(6)
	// Two tags superposed: four distinct levels.
	block := makeIQBlock([]float64{0.20, 0.25, 0.28, 0.33, 0.20, 0.33, 0.25, 0.28}, 150, 0.004, rng)
	n := CountClusters(block, 0.015, 0.05)
	if n < 3 {
		t.Errorf("clusters = %d, want > 2 for two tags", n)
	}
	if !CollisionDetected(block, 0.015, 0.05) {
		t.Error("two-tag superposition not flagged as collision")
	}
}

func TestCountClustersIgnoresTransients(t *testing.T) {
	rng := sim.NewRand(7)
	block := makeIQBlock([]float64{0.2, 0.3}, 500, 0.003, rng)
	// A handful of mid-transition samples must not create a third
	// cluster.
	block = append(block, IQ{I: 0.25, Q: 0}, IQ{I: 0.251, Q: 0}, IQ{I: 0.249, Q: 0})
	n := CountClusters(block, 0.02, 0.05)
	if n != 2 {
		t.Errorf("clusters = %d, transients not suppressed", n)
	}
}

func TestCountClustersDegenerate(t *testing.T) {
	if CountClusters(nil, 0.1, 0.1) != 0 {
		t.Error("empty block should have 0 clusters")
	}
	if CountClusters([]IQ{{I: 1}}, 0, 0.1) != 0 {
		t.Error("zero radius should return 0")
	}
	if CountClusters([]IQ{{I: 1}}, 0.1, 0.1) != 1 {
		t.Error("single sample should form 1 cluster")
	}
}

func TestCaptureEffectScenario(t *testing.T) {
	// The motivating case from Sec. 5.3: a strong and a weak tag
	// transmit concurrently; the strong one may decode fine, but the
	// cluster count must still reveal the collision.
	rng := sim.NewRand(8)
	strong, weak, leak := 0.10, 0.03, 0.20
	levels := []float64{
		leak,                 // both absorptive
		leak + strong,        // strong reflective
		leak + weak,          // weak reflective
		leak + strong + weak, // both reflective
	}
	block := makeIQBlock(levels, 300, 0.004, rng)
	if !CollisionDetected(block, 0.012, 0.04) {
		t.Error("capture-effect collision went undetected")
	}
}
