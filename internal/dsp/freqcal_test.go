package dsp

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func carrierCapture(fHz, fs float64, n int, noise float64, rng *sim.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / fs
		out[i] = 0.3 * math.Sin(2*math.Pi*fHz*t)
		if noise > 0 && rng != nil {
			out[i] += rng.NormFloat64() * noise
		}
	}
	return out
}

func TestEstimateFrequencyOffsetExact(t *testing.T) {
	const fs = 500_000.0
	for _, trueOff := range []float64{0, 12.5, -40, 150, -300} {
		sig := carrierCapture(90_000+trueOff, fs, 60_000, 0, nil)
		got, err := EstimateFrequencyOffset(sig, fs, 90_000)
		if err != nil {
			t.Fatal(err)
		}
		// Rectangular-window leakage biases the estimate by under
		// ~1 Hz (10 ppm at 90 kHz) — far inside the chip-timing budget.
		if math.Abs(got-trueOff) > 1.5 {
			t.Errorf("offset %v Hz estimated as %v", trueOff, got)
		}
	}
}

func TestEstimateFrequencyOffsetNoisy(t *testing.T) {
	const fs = 500_000.0
	rng := sim.NewRand(4)
	sig := carrierCapture(90_000+77, fs, 60_000, 0.05, rng)
	got, err := EstimateFrequencyOffset(sig, fs, 90_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-77) > 3 {
		t.Errorf("noisy estimate %v, want ~77", got)
	}
}

func TestEstimateFrequencyOffsetErrors(t *testing.T) {
	if _, err := EstimateFrequencyOffset(make([]float64, 100), 500_000, 90_000); err == nil {
		t.Error("short capture accepted")
	}
	if _, err := EstimateFrequencyOffset(make([]float64, 100_000), 0, 90_000); err == nil {
		t.Error("zero fs accepted")
	}
}

func TestCalibrateDownConverter(t *testing.T) {
	const fs = 500_000.0
	const trueCarrier = 90_000 + 120.0
	sig := carrierCapture(trueCarrier, fs, 80_000, 0.01, sim.NewRand(5))
	dc, off, err := CalibrateDownConverter(sig, fs, 90_000, 8_000, 101)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(off-120) > 2 {
		t.Errorf("offset = %v, want ~120", off)
	}
	if math.Abs(dc.LOHz-trueCarrier) > 2 {
		t.Errorf("LO retuned to %v, want ~%v", dc.LOHz, trueCarrier)
	}
	// The calibrated converter produces a near-DC baseband: the phase
	// of consecutive IQ samples barely advances.
	iq := dc.Process(sig[:40_000])
	late := iq[20_000:]
	var rot float64
	for i := 1; i < len(late); i++ {
		d := late[i].Phase() - late[i-1].Phase()
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d <= -math.Pi {
			d += 2 * math.Pi
		}
		rot += d
	}
	residualHz := rot / (2 * math.Pi) * fs / float64(len(late)-1)
	if math.Abs(residualHz) > 5 {
		t.Errorf("residual baseband rotation %v Hz after calibration", residualHz)
	}
}
