package dsp

import (
	"fmt"
	"math"
)

// DownConverter mixes the real passband ADC stream with quadrature
// local oscillators at the carrier frequency and low-pass filters the
// products, producing baseband I/Q samples. A frequency-offset
// calibration (Sec. 6.1) can be applied by adjusting LOHz.
type DownConverter struct {
	LOHz   float64
	Fs     float64
	iFIR   *FIR
	qFIR   *FIR
	sample int
	// Block fast-path state (ProcessBlockDecim): a recurrence
	// oscillator replacing the per-sample Sin/Cos, contiguous mixed-
	// sample delay lines for the two FIR branches, and the decimation
	// phase carried across blocks.
	osc        *QuadOsc
	workI      []float64
	workQ      []float64
	decimPhase int
}

// NewDownConverter builds a converter with a low-pass corner suitable
// for backscatter chip rates (a few kHz).
func NewDownConverter(loHz, fs, cutoffHz float64, taps int) (*DownConverter, error) {
	if loHz <= 0 || fs <= 0 || loHz >= fs/2 {
		return nil, fmt.Errorf("dsp: LO %v Hz invalid for fs %v", loHz, fs)
	}
	i, err := NewLowPassFIR(cutoffHz, fs, taps)
	if err != nil {
		return nil, err
	}
	q, err := NewLowPassFIR(cutoffHz, fs, taps)
	if err != nil {
		return nil, err
	}
	return &DownConverter{LOHz: loHz, Fs: fs, iFIR: i, qFIR: q}, nil
}

// IQ is one complex baseband sample.
type IQ struct {
	I, Q float64
}

// Magnitude returns |IQ|.
func (s IQ) Magnitude() float64 { return math.Hypot(s.I, s.Q) }

// Phase returns the angle in radians.
func (s IQ) Phase() float64 { return math.Atan2(s.Q, s.I) }

// Reset rewinds the converter to sample zero and clears all filter and
// oscillator state, so one instance can process independent captures
// (e.g. successive slots) without reallocation.
func (d *DownConverter) Reset() {
	d.sample = 0
	d.iFIR.Reset()
	d.qFIR.Reset()
	if d.osc != nil {
		d.osc.n = 0
		d.osc.anchor()
	}
	d.decimPhase = 0
	for i := range d.workI {
		d.workI[i] = 0
	}
	for i := range d.workQ {
		d.workQ[i] = 0
	}
}

// Process mixes and filters a block of passband samples.
func (d *DownConverter) Process(block []float64) []IQ {
	out := make([]IQ, len(block))
	for n, x := range block {
		t := float64(d.sample) / d.Fs
		ph := 2 * math.Pi * d.LOHz * t
		// Factor 2 restores the baseband amplitude lost in mixing.
		out[n] = IQ{
			I: d.iFIR.ProcessSample(2 * x * math.Cos(ph)),
			Q: d.qFIR.ProcessSample(-2 * x * math.Sin(ph)),
		}
		d.sample++
	}
	return out
}

// ProcessBlockDecim is the fused block fast path: it mixes a block of
// passband samples with the quadrature LO (recurrence oscillator, no
// per-sample Sin/Cos), low-pass filters, and decimates by factor in a
// single pass, appending the surviving baseband samples to dst. Because
// the baseband is consumed at chip rate rather than the ADC rate, the
// FIR dot products are evaluated only at the decimated output instants,
// cutting the filter work by ~factor. Streaming state (oscillator
// phase, delay lines, decimation phase) carries across blocks; factor
// must stay constant within a capture and the scalar Process path must
// not be interleaved with this one on the same instance (Reset starts a
// fresh capture). With sufficient dst capacity the steady state
// performs no allocations.
//
//alloc:hot per-block decimating kernel; error path is the only deliberate escape
func (d *DownConverter) ProcessBlockDecim(dst []IQ, block []float64, factor int) ([]IQ, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor %d < 1", factor)
	}
	taps := len(d.iFIR.taps)
	m := taps - 1
	if d.osc == nil {
		d.osc = NewQuadOsc(d.LOHz, d.Fs, 0)
		d.osc.Skip(d.sample)
		if d.workI == nil {
			d.workI = make([]float64, m)
			d.workQ = make([]float64, m)
		}
	}
	need := m + len(block)
	if cap(d.workI) < need {
		wi := make([]float64, m, need)
		wq := make([]float64, m, need)
		copy(wi, d.workI[:m])
		copy(wq, d.workQ[:m])
		d.workI, d.workQ = wi, wq
	}
	workI := d.workI[:need]
	workQ := d.workQ[:need]
	for i, x := range block {
		c, s := d.osc.Next()
		// Factor 2 restores the baseband amplitude lost in mixing.
		workI[m+i] = 2 * x * c
		workQ[m+i] = -2 * x * s
	}
	rtI, rtQ := d.iFIR.rtaps, d.qFIR.rtaps
	for i := range block {
		if d.decimPhase == 0 {
			dst = append(dst, IQ{
				I: dot(rtI, workI[i:i+taps]),
				Q: dot(rtQ, workQ[i:i+taps]),
			})
		}
		d.decimPhase++
		if d.decimPhase == factor {
			d.decimPhase = 0
		}
	}
	copy(workI[:m], workI[len(block):])
	copy(workQ[:m], workQ[len(block):])
	d.workI = workI[:m]
	d.workQ = workQ[:m]
	d.sample += len(block)
	return dst, nil
}

// Magnitudes extracts |IQ| from a block.
func Magnitudes(block []IQ) []float64 {
	out := make([]float64, len(block))
	for i, s := range block {
		out[i] = s.Magnitude()
	}
	return out
}

// EnvelopeDetector is the tag-side analog front end: an ideal rectifier
// followed by a single-pole RC low-pass. Paired with a comparator it
// turns the keyed carrier into the binary levels the MCU's GPIO edge
// interrupts consume (Sec. 4.3, Fig. 6a).
type EnvelopeDetector struct {
	// TauSeconds is the RC constant; must be several carrier cycles but
	// well under a chip.
	TauSeconds float64
	Fs         float64
	state      float64
}

// NewEnvelopeDetector returns a detector for the given sample rate.
func NewEnvelopeDetector(tauSeconds, fs float64) (*EnvelopeDetector, error) {
	if tauSeconds <= 0 || fs <= 0 {
		return nil, fmt.Errorf("dsp: invalid envelope detector params")
	}
	return &EnvelopeDetector{TauSeconds: tauSeconds, Fs: fs}, nil
}

// ProcessSample rectifies and smooths one sample.
func (e *EnvelopeDetector) ProcessSample(x float64) float64 {
	r := math.Abs(x)
	alpha := 1 / (e.TauSeconds*e.Fs + 1)
	if r > e.state {
		// Fast attack: the diode charges the capacitor directly.
		e.state = r
	} else {
		e.state += alpha * (r - e.state)
	}
	return e.state
}

// Process runs a block through the detector.
func (e *EnvelopeDetector) Process(block []float64) []float64 {
	out := make([]float64, len(block))
	for i, x := range block {
		out[i] = e.ProcessSample(x)
	}
	return out
}
