package dsp

import (
	"fmt"
	"math"
)

// DownConverter mixes the real passband ADC stream with quadrature
// local oscillators at the carrier frequency and low-pass filters the
// products, producing baseband I/Q samples. A frequency-offset
// calibration (Sec. 6.1) can be applied by adjusting LOHz.
type DownConverter struct {
	LOHz   float64
	Fs     float64
	iFIR   *FIR
	qFIR   *FIR
	sample int
}

// NewDownConverter builds a converter with a low-pass corner suitable
// for backscatter chip rates (a few kHz).
func NewDownConverter(loHz, fs, cutoffHz float64, taps int) (*DownConverter, error) {
	if loHz <= 0 || fs <= 0 || loHz >= fs/2 {
		return nil, fmt.Errorf("dsp: LO %v Hz invalid for fs %v", loHz, fs)
	}
	i, err := NewLowPassFIR(cutoffHz, fs, taps)
	if err != nil {
		return nil, err
	}
	q, err := NewLowPassFIR(cutoffHz, fs, taps)
	if err != nil {
		return nil, err
	}
	return &DownConverter{LOHz: loHz, Fs: fs, iFIR: i, qFIR: q}, nil
}

// IQ is one complex baseband sample.
type IQ struct {
	I, Q float64
}

// Magnitude returns |IQ|.
func (s IQ) Magnitude() float64 { return math.Hypot(s.I, s.Q) }

// Phase returns the angle in radians.
func (s IQ) Phase() float64 { return math.Atan2(s.Q, s.I) }

// Process mixes and filters a block of passband samples.
func (d *DownConverter) Process(block []float64) []IQ {
	out := make([]IQ, len(block))
	for n, x := range block {
		t := float64(d.sample) / d.Fs
		ph := 2 * math.Pi * d.LOHz * t
		// Factor 2 restores the baseband amplitude lost in mixing.
		out[n] = IQ{
			I: d.iFIR.ProcessSample(2 * x * math.Cos(ph)),
			Q: d.qFIR.ProcessSample(-2 * x * math.Sin(ph)),
		}
		d.sample++
	}
	return out
}

// Magnitudes extracts |IQ| from a block.
func Magnitudes(block []IQ) []float64 {
	out := make([]float64, len(block))
	for i, s := range block {
		out[i] = s.Magnitude()
	}
	return out
}

// EnvelopeDetector is the tag-side analog front end: an ideal rectifier
// followed by a single-pole RC low-pass. Paired with a comparator it
// turns the keyed carrier into the binary levels the MCU's GPIO edge
// interrupts consume (Sec. 4.3, Fig. 6a).
type EnvelopeDetector struct {
	// TauSeconds is the RC constant; must be several carrier cycles but
	// well under a chip.
	TauSeconds float64
	Fs         float64
	state      float64
}

// NewEnvelopeDetector returns a detector for the given sample rate.
func NewEnvelopeDetector(tauSeconds, fs float64) (*EnvelopeDetector, error) {
	if tauSeconds <= 0 || fs <= 0 {
		return nil, fmt.Errorf("dsp: invalid envelope detector params")
	}
	return &EnvelopeDetector{TauSeconds: tauSeconds, Fs: fs}, nil
}

// ProcessSample rectifies and smooths one sample.
func (e *EnvelopeDetector) ProcessSample(x float64) float64 {
	r := math.Abs(x)
	alpha := 1 / (e.TauSeconds*e.Fs + 1)
	if r > e.state {
		// Fast attack: the diode charges the capacitor directly.
		e.state = r
	} else {
		e.state += alpha * (r - e.state)
	}
	return e.state
}

// Process runs a block through the detector.
func (e *EnvelopeDetector) Process(block []float64) []float64 {
	out := make([]float64, len(block))
	for i, x := range block {
		out[i] = e.ProcessSample(x)
	}
	return out
}
