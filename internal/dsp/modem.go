package dsp

import (
	"errors"
	"fmt"

	"repro/internal/phy"
)

// Uplink demodulation: from baseband envelope samples to a decoded UL
// frame. The flow mirrors the paper's reader software: per-chip
// integrate-and-dump, adaptive slicing, FM0 preamble correlation,
// FM0 decode and CRC check.

// ChipSampler integrates the baseband signal over each chip period and
// dumps the mean — the optimal (matched) detector for rectangular
// chips. Chip boundaries are tracked in absolute sample coordinates,
// so fractional samples-per-chip rates stay aligned over arbitrarily
// long frames (no cumulative drift).
type ChipSampler struct {
	SamplesPerChip float64
	acc            float64
	count          int
	consumed       float64 // total samples seen
	boundary       float64 // absolute sample index closing the current chip
}

// NewChipSampler returns a sampler; samplesPerChip must be >= 2.
func NewChipSampler(samplesPerChip float64) (*ChipSampler, error) {
	if samplesPerChip < 2 {
		return nil, fmt.Errorf("dsp: %v samples per chip is too few", samplesPerChip)
	}
	return &ChipSampler{SamplesPerChip: samplesPerChip, boundary: samplesPerChip}, nil
}

// Process consumes baseband samples and returns the chip-rate means
// completed within this block.
func (c *ChipSampler) Process(block []float64) []float64 {
	var out []float64
	for _, x := range block {
		c.acc += x
		c.count++
		c.consumed++
		if c.consumed >= c.boundary-1e-9 {
			out = append(out, c.acc/float64(c.count))
			c.acc, c.count = 0, 0
			c.boundary += c.SamplesPerChip
		}
	}
	return out
}

// SliceChips converts soft chip values into hard bits around an
// adaptive threshold: the midpoint of the observed min/max. It returns
// the bits and the threshold used.
func SliceChips(soft []float64) (phy.Bits, float64) {
	if len(soft) == 0 {
		return nil, 0
	}
	lo, hi := soft[0], soft[0]
	for _, v := range soft {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	th := (lo + hi) / 2
	bits := make(phy.Bits, len(soft))
	for i, v := range soft {
		if v > th {
			bits[i] = 1
		}
	}
	return bits, th
}

// ulPreambleChips is the FM0 chip expansion of the UL preamble with the
// transmitter's initial level 0.
var ulPreambleChips = phy.FM0Encode(phy.ULPreamble, 0)

// ErrNoPreamble is returned when no UL preamble is found in the stream.
var ErrNoPreamble = errors.New("dsp: no UL preamble found")

// FindULFrame scans hard chips for the FM0-encoded UL preamble
// (tolerating maxChipErrors mismatches, in either polarity) and returns
// the index of the first frame chip. Polarity inversion happens when
// the slicer locks onto the complementary level.
func FindULFrame(chips phy.Bits, maxChipErrors int) (start int, inverted bool, err error) {
	n := len(ulPreambleChips)
	for off := 0; off+2*phy.ULFrameBits <= len(chips); off++ {
		direct, inverse := 0, 0
		for i := 0; i < n; i++ {
			if chips[off+i]&1 == ulPreambleChips[i] {
				direct++
			} else {
				inverse++
			}
		}
		if n-direct <= maxChipErrors {
			return off, false, nil
		}
		if n-inverse <= maxChipErrors {
			return off, true, nil
		}
	}
	return 0, false, ErrNoPreamble
}

// DecodeULFromBaseband recovers a UL frame from baseband magnitude
// samples with unknown symbol timing: it sweeps fractional chip-phase
// offsets (an eighth of a chip at a time), runs the chip sampler at
// each candidate phase, and returns the first clean decode. This is the
// symbol-timing synchronization step of the reader's receive chain.
func DecodeULFromBaseband(mags []float64, samplesPerChip float64) (phy.ULPacket, error) {
	if samplesPerChip < 2 {
		return phy.ULPacket{}, fmt.Errorf("dsp: %v samples per chip is too few", samplesPerChip)
	}
	step := samplesPerChip / 8
	if step < 1 {
		step = 1
	}
	var lastErr error = ErrNoPreamble
	for phase := 0.0; phase < samplesPerChip; phase += step {
		off := int(phase)
		if off >= len(mags) {
			break
		}
		sampler, err := NewChipSampler(samplesPerChip)
		if err != nil {
			return phy.ULPacket{}, err
		}
		pkt, err := DecodeULFrame(sampler.Process(mags[off:]))
		if err == nil {
			return pkt, nil
		}
		lastErr = err
	}
	return phy.ULPacket{}, lastErr
}

// DecodeULFrame slices, synchronizes and decodes one UL frame from soft
// chip values. It applies the full receive chain error handling: frame
// alignment, FM0 boundary checking and CRC verification.
func DecodeULFrame(soft []float64) (phy.ULPacket, error) {
	chips, _ := SliceChips(soft)
	start, inverted, err := FindULFrame(chips, 1)
	if err != nil {
		return phy.ULPacket{}, err
	}
	frameChips := chips[start:]
	if len(frameChips) < 2*phy.ULFrameBits {
		return phy.ULPacket{}, fmt.Errorf("dsp: truncated frame: %d chips", len(frameChips))
	}
	frameChips = frameChips[:2*phy.ULFrameBits]
	if inverted {
		frameChips = frameChips.Invert()
	}
	bits, err := phy.FM0Decode(frameChips, 0)
	if err != nil {
		return phy.ULPacket{}, err
	}
	return phy.UnmarshalUL(bits)
}
