package dsp

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestPipelineOrderPreserved(t *testing.T) {
	double := func(b Block) Block {
		out := make(Block, len(b))
		for i, v := range b {
			out[i] = 2 * v
		}
		return out
	}
	addOne := func(b Block) Block {
		out := make(Block, len(b))
		for i, v := range b {
			out[i] = v + 1
		}
		return out
	}
	p := NewPipeline(2, double, addOne)
	out := p.ProcessAll([]float64{1, 2, 3, 4, 5}, 2)
	want := []float64{3, 5, 7, 9, 11}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestPipelineBackPressure(t *testing.T) {
	// A slow downstream stage must throttle the producer: with buffer
	// size 1 the producer cannot run far ahead. The counters are shared
	// between the producer and the stage goroutine, hence atomics.
	var produced, consumed atomic.Int64
	slow := func(b Block) Block {
		time.Sleep(2 * time.Millisecond)
		consumed.Add(1)
		return b
	}
	p := NewPipeline(1, slow)
	in := make(chan Block, 1)
	out := p.Run(context.Background(), in)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range out {
		}
	}()
	for i := 0; i < 10; i++ {
		in <- Block{float64(i)}
		produced.Add(1)
		// The producer can be at most buffers+in-flight ahead.
		if p, c := produced.Load(), consumed.Load(); p-c > 4 {
			t.Errorf("producer ran ahead: produced=%d consumed=%d", p, c)
		}
	}
	close(in)
	<-done
	if c := consumed.Load(); c != 10 {
		t.Errorf("consumed %d blocks", c)
	}
}

func TestPipelineContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	stage := func(b Block) Block { return b }
	p := NewPipeline(1, stage)
	in := make(chan Block)
	out := p.Run(ctx, in)
	in <- Block{1}
	<-out
	cancel()
	// After cancellation the output channel must close even though the
	// input stays open.
	select {
	case _, ok := <-out:
		if ok {
			// A block may have been in flight; the next read must
			// observe closure.
			if _, ok2 := <-out; ok2 {
				t.Error("pipeline kept producing after cancel")
			}
		}
	case <-time.After(time.Second):
		t.Error("pipeline did not shut down after cancel")
	}
}

func TestPipelineRealChain(t *testing.T) {
	// Assemble filter -> decimate as pipeline stages and verify the
	// result equals running the blocks directly.
	mkStages := func() (Stage, Stage) {
		fir, err := NewLowPassFIR(1000, 48000, 31)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecimator(4)
		if err != nil {
			t.Fatal(err)
		}
		return func(b Block) Block { return fir.Process(b) },
			func(b Block) Block { return dec.Process(b) }
	}
	sig := make([]float64, 1024)
	for i := range sig {
		sig[i] = math.Sin(2*math.Pi*440*float64(i)/48000) + 0.2*math.Sin(2*math.Pi*9000*float64(i)/48000)
	}
	s1, s2 := mkStages()
	got := NewPipeline(4, s1, s2).ProcessAll(sig, 128)

	r1, r2 := mkStages()
	var want []float64
	for off := 0; off < len(sig); off += 128 {
		want = append(want, r2(r1(sig[off:off+128]))...)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("pipeline diverged at %d", i)
		}
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	p := NewPipeline(1, func(b Block) Block { return b })
	if out := p.ProcessAll(nil, 8); out != nil {
		t.Errorf("empty input produced %v", out)
	}
}

func TestPipelineDefaultChunk(t *testing.T) {
	p := NewPipeline(0, func(b Block) Block { return b })
	out := p.ProcessAll([]float64{1, 2, 3}, 0)
	if len(out) != 3 {
		t.Errorf("out = %v", out)
	}
}

func TestProcessAllIntoMatchesProcessAll(t *testing.T) {
	mkPipe := func() *Pipeline {
		fir, err := NewLowPassFIR(1000, 48000, 31)
		if err != nil {
			t.Fatal(err)
		}
		return NewPipeline(4,
			func(b Block) Block { return fir.ProcessBlock(b[:0], b) },
			func(b Block) Block {
				for i := range b {
					b[i] *= 2
				}
				return b
			})
	}
	sig := make([]float64, 2048)
	for i := range sig {
		sig[i] = math.Sin(float64(i) * 0.05)
	}
	want := mkPipe().ProcessAll(sig, 128)
	p := mkPipe()
	dst := make([]float64, 0, len(sig))
	for round := 0; round < 3; round++ { // pool reuse across calls
		dst = p.ProcessAllInto(dst[:0], sig, 128)
		if len(dst) != len(want) {
			t.Fatalf("round %d: %d samples, want %d", round, len(dst), len(want))
		}
		// A fresh FIR per round would be needed for identical output;
		// round 0 must match exactly, later rounds carry filter state.
		if round == 0 {
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("sample %d: %v vs %v", i, dst[i], want[i])
				}
			}
		}
	}
}

func TestBlockPoolRecycles(t *testing.T) {
	var pool blockPool
	b := pool.get(64)
	if cap(b) < 64 || len(b) != 0 {
		t.Fatalf("get: len=%d cap=%d", len(b), cap(b))
	}
	pool.put(b)
	c := pool.get(32)
	if &b[:1][0] != &c[:1][0] {
		t.Error("pool did not reuse the free block")
	}
	if d := pool.get(32); cap(d) < 32 {
		t.Error("exhausted pool returned undersized block")
	}
	pool.put(nil) // must not panic or store empties
	if len(pool.free) != 0 {
		t.Error("nil block stored in pool")
	}
}
