package dsp

import (
	"math"
	"sort"
)

// IQ-domain collision detection (Sec. 5.3). With a single tag
// backscattering, the baseband constellation collapses onto two
// clusters (reflective / absorptive states, shifted by the carrier
// leakage). With k concurrently transmitting tags the reflections
// superpose and up to 2^k clusters appear. The reader counts clusters
// and declares a collision when it sees more than two, even if the
// capture effect would let it decode one packet.

// CountClusters estimates the number of distinct amplitude clusters in
// the IQ block. Samples are clustered greedily on their magnitude with
// the given merge radius (same units as the samples); clusters holding
// fewer than minFraction of the samples are discarded as transient
// edges between states.
func CountClusters(block []IQ, radius float64, minFraction float64) int {
	if len(block) == 0 || radius <= 0 {
		return 0
	}
	mags := make([]float64, len(block))
	for i, s := range block {
		mags[i] = s.Magnitude()
	}
	sort.Float64s(mags)

	type cluster struct {
		center float64
		count  int
	}
	var clusters []cluster
	for _, m := range mags {
		placed := false
		for i := range clusters {
			if math.Abs(m-clusters[i].center) <= radius {
				// Incremental mean keeps centers tracking the data.
				clusters[i].center += (m - clusters[i].center) / float64(clusters[i].count+1)
				clusters[i].count++
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, cluster{center: m, count: 1})
		}
	}
	minCount := int(minFraction * float64(len(block)))
	if minCount < 1 {
		minCount = 1
	}
	n := 0
	for _, c := range clusters {
		if c.count >= minCount {
			n++
		}
	}
	return n
}

// CollisionDetected applies the paper's rule: more than two significant
// clusters means at least two tags transmitted concurrently.
func CollisionDetected(block []IQ, radius, minFraction float64) bool {
	return CountClusters(block, radius, minFraction) > 2
}
