package dsp

import (
	"context"
	"sync"
)

// Streaming pipeline with back-pressure (Sec. 6.1: "Each two adjacent
// blocks share a buffer with a back-pressure mechanism to manage data
// flow"). Stages are goroutines connected by bounded channels: when a
// downstream stage stalls, the bounded buffer fills and the upstream
// stage blocks, exactly like the shared ring buffers in the paper's
// C++ reader.

// Block is one chunk of samples flowing through the pipeline.
type Block []float64

// Stage transforms one chunk. Stages run concurrently; each instance
// processes chunks in order.
type Stage func(Block) Block

// Pipeline is a chain of stages with bounded buffers between them.
type Pipeline struct {
	stages  []Stage
	bufSize int
	pool    blockPool
}

// blockPool is a deterministic free list of chunk buffers: a
// mutex-guarded stack rather than a sync.Pool, so recycling does not
// depend on GC timing and steady-state allocation counts are stable
// enough to assert in benchmarks. The sink returns every block it has
// consumed; the source reuses the largest-capacity free block that
// fits. With in-place stages the whole stream converges to a handful of
// buffers regardless of signal length.
type blockPool struct {
	mu   sync.Mutex
	free []Block
}

// get returns a zero-length block with capacity >= n, reusing a free one
// when possible.
func (p *blockPool) get(n int) Block {
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			b := p.free[i]
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			p.mu.Unlock()
			return b[:0]
		}
	}
	p.mu.Unlock()
	return make(Block, 0, n)
}

// put returns a consumed block to the free list.
func (p *blockPool) put(b Block) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, b[:0])
	p.mu.Unlock()
}

// NewPipeline builds a pipeline; bufSize is the per-link buffer depth
// (the back-pressure window), minimum 1.
func NewPipeline(bufSize int, stages ...Stage) *Pipeline {
	if bufSize < 1 {
		bufSize = 1
	}
	return &Pipeline{stages: stages, bufSize: bufSize}
}

// Run consumes blocks from in and delivers processed blocks on the
// returned channel, which closes when in closes or ctx is cancelled.
// Each stage runs in its own goroutine.
func (p *Pipeline) Run(ctx context.Context, in <-chan Block) <-chan Block {
	cur := in
	for _, st := range p.stages {
		next := make(chan Block, p.bufSize)
		go func(st Stage, in <-chan Block, out chan<- Block) {
			defer close(out)
			for {
				select {
				case <-ctx.Done():
					return
				case b, ok := <-in:
					if !ok {
						return
					}
					select {
					case <-ctx.Done():
						return
					case out <- st(b):
					}
				}
			}
		}(st, cur, next)
		cur = next
	}
	return cur
}

// Collect drains a pipeline output into one flat slice; convenient for
// offline (whole-capture) processing in tests and experiments.
func Collect(ch <-chan Block) []float64 {
	var out []float64
	for b := range ch {
		out = append(out, b...)
	}
	return out
}

// ProcessAll pushes a whole signal through the pipeline in chunks of
// chunkSize and returns the concatenated output.
func (p *Pipeline) ProcessAll(signal []float64, chunkSize int) []float64 {
	return p.ProcessAllInto(nil, signal, chunkSize)
}

// ProcessAllInto is ProcessAll appending into dst. Chunk buffers come
// from the pipeline's free list and every block arriving at the sink is
// recycled, so with in-place stages, a dst of sufficient capacity, and a
// warm pool, a steady-state call allocates only the fixed Run plumbing
// (channels and goroutines), independent of signal length.
func (p *Pipeline) ProcessAllInto(dst, signal []float64, chunkSize int) []float64 {
	if chunkSize < 1 {
		chunkSize = len(signal)
		if chunkSize == 0 {
			return dst
		}
	}
	in := make(chan Block, p.bufSize)
	ctx := context.Background()
	out := p.Run(ctx, in)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := range out {
			dst = append(dst, b...)
			p.pool.put(b)
		}
	}()
	for off := 0; off < len(signal); off += chunkSize {
		end := off + chunkSize
		if end > len(signal) {
			end = len(signal)
		}
		chunk := p.pool.get(end - off)
		chunk = append(chunk, signal[off:end]...)
		in <- chunk
	}
	close(in)
	wg.Wait()
	return dst
}
