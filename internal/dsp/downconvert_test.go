package dsp

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// refDownConvertDecim is the pre-fusion pipeline: scalar per-sample
// Sin/Cos mixing + full-rate FIR (DownConverter.Process) followed by a
// separate Decimator. ProcessBlockDecim must match it within 1e-9.
func refDownConvertDecim(dc *DownConverter, capture []float64, factor int) []IQ {
	full := dc.Process(capture)
	out := make([]IQ, 0, len(full)/factor+1)
	phase := 0
	for _, s := range full {
		if phase == 0 {
			out = append(out, s)
		}
		phase++
		if phase == factor {
			phase = 0
		}
	}
	return out
}

func TestProcessBlockDecimMatchesScalar(t *testing.T) {
	rng := sim.NewRand(33)
	for trial := 0; trial < 8; trial++ {
		fs := 200_000 + rng.Float64()*400_000
		lo := fs * (0.1 + 0.2*rng.Float64())
		cutoff := fs * 0.02
		taps := 31 + 2*int(rng.Uint64()%40)
		factor := 1 + int(rng.Uint64()%25)
		n := 3000 + int(rng.Uint64()%2000)
		capture := make([]float64, n)
		for i := range capture {
			capture[i] = math.Sin(2*math.Pi*lo*float64(i)/fs) * (1 + 0.3*rng.NormFloat64())
		}

		ref, err := NewDownConverter(lo, fs, cutoff, taps)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewDownConverter(lo, fs, cutoff, taps)
		if err != nil {
			t.Fatal(err)
		}
		want := refDownConvertDecim(ref, capture, factor)

		// Feed the fused path in random chunk sizes to exercise the
		// carried oscillator/delay-line/decimation-phase state.
		var got []IQ
		for off := 0; off < n; {
			c := 1 + int(rng.Uint64()%700)
			if off+c > n {
				c = n - off
			}
			got, err = fast.ProcessBlockDecim(got, capture[off:off+c], factor)
			if err != nil {
				t.Fatal(err)
			}
			off += c
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d fused samples vs %d reference", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].I-want[i].I) > 1e-9 || math.Abs(got[i].Q-want[i].Q) > 1e-9 {
				t.Fatalf("trial %d (taps=%d factor=%d) sample %d: fused (%v,%v) vs scalar (%v,%v)",
					trial, taps, factor, i, got[i].I, got[i].Q, want[i].I, want[i].Q)
			}
		}
	}
}

func TestProcessBlockDecimReset(t *testing.T) {
	dc, err := NewDownConverter(90_000, 500_000, 12_000, 101)
	if err != nil {
		t.Fatal(err)
	}
	capture := make([]float64, 4000)
	for i := range capture {
		capture[i] = math.Sin(2 * math.Pi * 90_000 * float64(i) / 500_000)
	}
	first, err := dc.ProcessBlockDecim(nil, capture, 10)
	if err != nil {
		t.Fatal(err)
	}
	dc.Reset()
	second, err := dc.ProcessBlockDecim(nil, capture, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("lengths differ after Reset: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("sample %d differs after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestProcessBlockDecimErrors(t *testing.T) {
	dc, _ := NewDownConverter(90_000, 500_000, 12_000, 31)
	if _, err := dc.ProcessBlockDecim(nil, []float64{1, 2, 3}, 0); err == nil {
		t.Error("factor 0 accepted")
	}
}

func TestProcessBlockDecimZeroAlloc(t *testing.T) {
	dc, _ := NewDownConverter(90_000, 500_000, 12_000, 101)
	capture := make([]float64, 8192)
	for i := range capture {
		capture[i] = math.Sin(2 * math.Pi * 90_000 * float64(i) / 500_000)
	}
	dst := make([]IQ, 0, len(capture))
	if _, err := dc.ProcessBlockDecim(dst, capture, 6); err != nil { // warm scratch
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(10, func() {
		out, _ := dc.ProcessBlockDecim(dst[:0], capture, 6)
		dst = out[:0]
	}); n != 0 {
		t.Errorf("steady-state ProcessBlockDecim allocates %v per block", n)
	}
}
