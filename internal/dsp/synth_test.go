package dsp

import (
	"math"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

func randomChips(rng *sim.Rand, n int) phy.Bits {
	chips := make(phy.Bits, n)
	for i := range chips {
		chips[i] = byte(rng.Uint64() & 1)
	}
	return chips
}

// TestSynthesizeULCursorMatchesRef pins the monotone-cursor fast path to
// the scalar reference (per-sample Sin carrier + binary-search chip
// lookup) on jittered chip streams: identical RNG consumption, waveforms
// within 1e-9.
func TestSynthesizeULCursorMatchesRef(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := uint64(100 + trial)
		chipRng := sim.NewRand(seed)
		chips := randomChips(chipRng, 200+int(chipRng.Uint64()%200))
		p := ULSynthParams{
			CarrierHz:      90_000,
			Fs:             500_000,
			ChipRate:       3000,
			Leakage:        1.0,
			Backscatter:    0.25,
			NoiseRMS:       0.05,
			PhaseRad:       0.4,
			TimingJitterPC: 0.08, // heavy per-chip boundary jitter
		}
		got := SynthesizeUL(chips, p, sim.NewRand(seed*7+1))
		want := synthesizeULRef(chips, p, sim.NewRand(seed*7+1))
		if len(got) != len(want) {
			t.Fatalf("trial %d: lengths %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d sample %d: cursor %v vs ref %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestChipCursorMatchesBinarySearch checks the cursor's chip selection
// directly against the reference binary search on jittered boundaries —
// sample indices only ever increase, so the monotone cursor must land on
// exactly the same chip at every sample.
func TestChipCursorMatchesBinarySearch(t *testing.T) {
	rng := sim.NewRand(55)
	chips := randomChips(rng, 500)
	const spc = 500_000.0 / 3000.0
	bounds := ulChipBounds(chips, spc, 0.1, sim.NewRand(56))
	binSearch := func(s float64) int {
		lo, hi := 0, len(chips)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if bounds[mid+1] <= s {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	n := int(float64(len(chips))*spc) + 1
	cur := 0
	for i := 0; i < n; i++ {
		s := float64(i)
		for cur < len(chips)-1 && bounds[cur+1] <= s {
			cur++
		}
		if want := binSearch(s); cur != want {
			t.Fatalf("sample %d: cursor chip %d vs binary search %d", i, cur, want)
		}
	}
}

// TestULChipBoundsRNGOrder verifies the shared boundary helper draws the
// jitter values in chip order, one per chip — the contract that keeps the
// fast path and the reference consuming seeded streams draw-for-draw.
func TestULChipBoundsRNGOrder(t *testing.T) {
	chips := make(phy.Bits, 64)
	rng := sim.NewRand(9)
	ulChipBounds(chips, 100, 0.05, rng)
	ref := sim.NewRand(9)
	for i := 0; i < len(chips); i++ {
		ref.NormFloat64()
	}
	if rng.Uint64() != ref.Uint64() {
		t.Fatal("ulChipBounds consumed the RNG differently than one NormFloat64 per chip")
	}
}
