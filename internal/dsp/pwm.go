package dsp

import "math"

// Reader transmit path (Sec. 6.1): the DAQ emits a PWM square wave at
// the 90 kHz resonance, an 18 W class-D style amplifier raises it to
// 36 V peak, and the TX PZT — itself a sharp mechanical resonator —
// filters the harmonics down to a near-sinusoidal vibration. PWM keeps
// the amplifier in switching mode (high efficiency), which is how a
// modest 18 W amplifier drives the whole BiW.

// PWM describes the reader's carrier drive.
type PWM struct {
	// FrequencyHz is the fundamental (90 kHz).
	FrequencyHz float64
	// DutyCycle in (0,1); 0.5 maximizes the fundamental and nulls even
	// harmonics.
	DutyCycle float64
	// AmplitudeVolts is the rail voltage after the amplifier (36 V).
	AmplitudeVolts float64
}

// NewPWM returns the paper's drive: 90 kHz, 50% duty, 36 V rails.
func NewPWM() PWM {
	return PWM{FrequencyHz: 90_000, DutyCycle: 0.5, AmplitudeVolts: 36}
}

// Sample returns the PWM level (+A or -A) at time t.
func (p PWM) Sample(t float64) float64 {
	phase := t*p.FrequencyHz - math.Floor(t*p.FrequencyHz)
	if phase < p.DutyCycle {
		return p.AmplitudeVolts
	}
	return -p.AmplitudeVolts
}

// Synthesize renders n samples at rate fs.
func (p PWM) Synthesize(n int, fs float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Sample(float64(i) / fs)
	}
	return out
}

// HarmonicAmplitude returns the peak amplitude of harmonic k (k=1 is
// the fundamental) from the Fourier series of the rectangular wave:
// |c_k| = (4A/k*pi) * |sin(k*pi*D)| for the bipolar PWM.
func (p PWM) HarmonicAmplitude(k int) float64 {
	if k < 1 {
		return 0
	}
	return 4 * p.AmplitudeVolts / (float64(k) * math.Pi) *
		math.Abs(math.Sin(float64(k)*math.Pi*p.DutyCycle))
}

// FundamentalThroughResonator returns the vibration drive that reaches
// the BiW: the fundamental passes the PZT resonance at unit response,
// harmonic k is attenuated by the resonator response at k*f0. The
// result is the effective sinusoidal drive amplitude plus the residual
// total harmonic distortion (THD) after filtering.
func (p PWM) FundamentalThroughResonator(resonance func(fHz float64) float64) (fundamental, thd float64) {
	fundamental = p.HarmonicAmplitude(1) * resonance(p.FrequencyHz)
	var residual float64
	for k := 2; k <= 15; k++ {
		a := p.HarmonicAmplitude(k) * resonance(float64(k)*p.FrequencyHz)
		residual += a * a
	}
	if fundamental > 0 {
		thd = math.Sqrt(residual) / fundamental
	}
	return fundamental, thd
}
