package dsp

import (
	"math"
	"testing"

	"repro/internal/biw"
)

func TestPWMSampleLevels(t *testing.T) {
	p := NewPWM()
	if v := p.Sample(0); v != 36 {
		t.Errorf("start of period = %v, want +36", v)
	}
	// Just past half a period at 50% duty: negative rail.
	if v := p.Sample(0.51 / 90_000); v != -36 {
		t.Errorf("second half = %v, want -36", v)
	}
}

func TestPWMSynthesizeMeanZeroAt50(t *testing.T) {
	p := NewPWM()
	const fs = 1_800_000.0 // 20 samples per period
	sig := p.Synthesize(20_000, fs)
	var mean float64
	for _, v := range sig {
		mean += v
	}
	mean /= float64(len(sig))
	if math.Abs(mean) > 0.5 {
		t.Errorf("50%% duty should average ~0, got %v", mean)
	}
}

func TestPWMHarmonics(t *testing.T) {
	p := NewPWM()
	// Fundamental of a +/-36 V square: 4*36/pi ~ 45.8 V.
	if f := p.HarmonicAmplitude(1); math.Abs(f-4*36/math.Pi) > 1e-9 {
		t.Errorf("fundamental = %v", f)
	}
	// Even harmonics null at 50% duty.
	for _, k := range []int{2, 4, 6} {
		if a := p.HarmonicAmplitude(k); a > 1e-9 {
			t.Errorf("harmonic %d = %v, want 0", k, a)
		}
	}
	// Odd harmonics fall as 1/k.
	h3 := p.HarmonicAmplitude(3)
	if math.Abs(h3*3-p.HarmonicAmplitude(1)) > 1e-9 {
		t.Errorf("3rd harmonic scaling wrong: %v", h3)
	}
	if p.HarmonicAmplitude(0) != 0 {
		t.Error("harmonic 0 should be 0")
	}
	// Asymmetric duty re-introduces even harmonics.
	p.DutyCycle = 0.3
	if p.HarmonicAmplitude(2) < 1 {
		t.Error("30% duty should have even harmonics")
	}
}

func TestPWMHarmonicsMatchFFT(t *testing.T) {
	p := NewPWM()
	const periods = 64
	const spp = 64 // samples per period
	sig := p.Synthesize(periods*spp, p.FrequencyHz*spp)
	buf := make([]complex128, len(sig))
	for i, v := range sig {
		buf[i] = complex(v, 0)
	}
	if err := FFT(buf); err != nil {
		t.Fatal(err)
	}
	// Harmonic k sits at bin k*periods; peak amplitude = 2|X|/N.
	for _, k := range []int{1, 3, 5} {
		got := 2 * math.Hypot(real(buf[k*periods]), imag(buf[k*periods])) / float64(len(sig))
		want := p.HarmonicAmplitude(k)
		if math.Abs(got-want) > want*0.02 {
			t.Errorf("harmonic %d: FFT %v vs series %v", k, got, want)
		}
	}
}

func TestFundamentalThroughResonator(t *testing.T) {
	p := NewPWM()
	fund, thd := p.FundamentalThroughResonator(biw.ResonanceResponse)
	// The resonator passes the fundamental nearly intact...
	if fund < 40 || fund > 46 {
		t.Errorf("fundamental drive = %v V", fund)
	}
	// ...and crushes the harmonics: the vibration is nearly sinusoidal.
	if thd > 0.02 {
		t.Errorf("THD after resonator = %.4f, want < 2%%", thd)
	}
	// Without the resonator the square wave's THD is large (~40%+).
	_, rawTHD := p.FundamentalThroughResonator(func(float64) float64 { return 1 })
	if rawTHD < 0.3 {
		t.Errorf("raw PWM THD = %v, expected the square-wave harmonics", rawTHD)
	}
}
