package dsp

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/phy"
)

// ReaderChain is the complete uplink receive path of the paper's
// reader software (Sec. 6.1): down-conversion of the raw ADC stream,
// magnitude extraction, chip-rate matched filtering with symbol-timing
// search, FM0 frame decoding with CRC, and IQ-cluster collision
// inference. One instance processes one slot's capture.
type ReaderChain struct {
	// CarrierHz is the local oscillator (90 kHz).
	CarrierHz float64
	// Fs is the ADC sample rate (500 kHz).
	Fs float64
	// ChipRate is the expected uplink chip rate.
	ChipRate float64
	// FilterTaps sizes the down-converter low-pass.
	FilterTaps int
	// ClusterRadius and ClusterMinFraction parameterize collision
	// detection; zero values select defaults scaled to the signal.
	ClusterRadius      float64
	ClusterMinFraction float64
	// Trace, when set, receives a decode-outcome event per processed
	// slot capture. A nil tracer (the default) costs nothing.
	Trace *obs.Tracer
}

// NewReaderChain returns a chain at the paper's operating point.
func NewReaderChain(chipRate float64) *ReaderChain {
	return &ReaderChain{
		CarrierHz:          90_000,
		Fs:                 500_000,
		ChipRate:           chipRate,
		FilterTaps:         101,
		ClusterMinFraction: 0.04,
	}
}

// SlotVerdict is what one slot's processing yields.
type SlotVerdict struct {
	// Packet is the decoded frame, valid when Decoded is true.
	Packet  phy.ULPacket
	Decoded bool
	// Clusters is the IQ amplitude cluster count; more than two means
	// a collision (Sec. 5.3).
	Clusters  int
	Collision bool
}

// Process runs the full chain over one slot's passband capture.
func (c *ReaderChain) Process(capture []float64) (SlotVerdict, error) {
	if len(capture) == 0 {
		return SlotVerdict{}, fmt.Errorf("dsp: empty capture")
	}
	if c.Fs <= 0 || c.ChipRate <= 0 || c.CarrierHz <= 0 {
		return SlotVerdict{}, fmt.Errorf("dsp: reader chain misconfigured")
	}
	cutoff := 4 * c.ChipRate
	if max := c.Fs / 2 * 0.8; cutoff > max {
		cutoff = max
	}
	dc, err := NewDownConverter(c.CarrierHz, c.Fs, cutoff, c.FilterTaps)
	if err != nil {
		return SlotVerdict{}, err
	}
	iq := dc.Process(capture)
	// Skip the filter transient.
	skip := c.FilterTaps
	if skip >= len(iq) {
		skip = 0
	}
	iq = iq[skip:]

	verdict := SlotVerdict{}
	// Collision inference from the IQ amplitude clusters.
	radius := c.ClusterRadius
	if radius <= 0 {
		radius = c.autoRadius(iq)
	}
	verdict.Clusters = CountClusters(iq, radius, c.ClusterMinFraction)
	verdict.Collision = verdict.Clusters > 2

	// Frame decode with symbol-timing search.
	mags := Magnitudes(iq)
	pkt, err := DecodeULFromBaseband(mags, c.Fs/c.ChipRate)
	if err == nil {
		verdict.Packet = pkt
		verdict.Decoded = true
	}
	if c.Trace.Enabled() {
		ev := obs.Event{Kind: obs.KindDecode, Collision: verdict.Collision,
			Value: float64(verdict.Clusters), Detail: "crc_fail"}
		if verdict.Decoded {
			ev.TID = int(pkt.TID)
			ev.Detail = "ok"
		}
		c.Trace.Emit(ev)
	}
	return verdict, nil
}

// autoRadius picks a cluster merge radius from the observed amplitude
// spread: a quarter of the min-max span, floor-limited by an estimate
// of the noise.
func (c *ReaderChain) autoRadius(iq []IQ) float64 {
	if len(iq) == 0 {
		return 1e-6
	}
	lo := iq[0].Magnitude()
	hi := lo
	for _, s := range iq {
		m := s.Magnitude()
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	r := (hi - lo) / 8
	if r <= 0 {
		r = 1e-6
	}
	return r
}
