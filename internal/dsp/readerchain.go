package dsp

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/phy"
)

// ReaderChain is the complete uplink receive path of the paper's
// reader software (Sec. 6.1): down-conversion of the raw ADC stream,
// magnitude extraction, chip-rate matched filtering with symbol-timing
// search, FM0 frame decoding with CRC, and IQ-cluster collision
// inference. One instance processes one slot's capture.
type ReaderChain struct {
	// CarrierHz is the local oscillator (90 kHz).
	CarrierHz float64
	// Fs is the ADC sample rate (500 kHz).
	Fs float64
	// ChipRate is the expected uplink chip rate.
	ChipRate float64
	// FilterTaps sizes the down-converter low-pass.
	FilterTaps int
	// ClusterRadius and ClusterMinFraction parameterize collision
	// detection; zero values select defaults scaled to the signal.
	ClusterRadius      float64
	ClusterMinFraction float64
	// Decim is the down-converter decimation factor. The baseband is
	// consumed at chip rate, not the ADC rate, so the default (0 =
	// auto) keeps ≥16 baseband samples per chip — enough that the
	// amplitude-cluster statistics stay sample-count-stable — and lets
	// the fused mix+filter+decimate kernel skip ~Decim-1 of every
	// Decim FIR dot products. Set 1 to disable decimation.
	Decim int
	// Trace, when set, receives a decode-outcome event per processed
	// slot capture. A nil tracer (the default) costs nothing.
	Trace *obs.Tracer

	// Steady-state scratch, reused across Process calls so a chain
	// instance decoding thousands of slot captures performs no
	// per-slot allocations beyond decode bookkeeping: the cached
	// down-converter (rebuilt only when the operating point changes)
	// and the baseband IQ/magnitude buffers.
	dc       *DownConverter
	dcCutoff float64
	iqBuf    []IQ
	magBuf   []float64
}

// NewReaderChain returns a chain at the paper's operating point.
func NewReaderChain(chipRate float64) *ReaderChain {
	return &ReaderChain{
		CarrierHz:          90_000,
		Fs:                 500_000,
		ChipRate:           chipRate,
		FilterTaps:         101,
		ClusterMinFraction: 0.04,
	}
}

// SlotVerdict is what one slot's processing yields.
type SlotVerdict struct {
	// Packet is the decoded frame, valid when Decoded is true.
	Packet  phy.ULPacket
	Decoded bool
	// Clusters is the IQ amplitude cluster count; more than two means
	// a collision (Sec. 5.3).
	Clusters  int
	Collision bool
}

// decimFactor resolves the configured decimation, keeping at least 16
// baseband samples per chip so symbol-timing search and the cluster
// statistics retain their resolution.
func (c *ReaderChain) decimFactor() int {
	if c.Decim > 0 {
		return c.Decim
	}
	d := int(c.Fs / c.ChipRate / 16)
	if d < 1 {
		d = 1
	}
	return d
}

// Process runs the full chain over one slot's passband capture through
// the fused block kernels: recurrence-oscillator mixing, decimated FIR
// evaluation, and scratch buffers reused across calls.
func (c *ReaderChain) Process(capture []float64) (SlotVerdict, error) {
	if len(capture) == 0 {
		return SlotVerdict{}, fmt.Errorf("dsp: empty capture")
	}
	if c.Fs <= 0 || c.ChipRate <= 0 || c.CarrierHz <= 0 {
		return SlotVerdict{}, fmt.Errorf("dsp: reader chain misconfigured")
	}
	cutoff := 4 * c.ChipRate
	if max := c.Fs / 2 * 0.8; cutoff > max {
		cutoff = max
	}
	if c.dc == nil || c.dcCutoff != cutoff || c.dc.LOHz != c.CarrierHz || c.dc.Fs != c.Fs {
		dc, err := NewDownConverter(c.CarrierHz, c.Fs, cutoff, c.FilterTaps)
		if err != nil {
			return SlotVerdict{}, err
		}
		c.dc, c.dcCutoff = dc, cutoff
	} else {
		c.dc.Reset()
	}
	decim := c.decimFactor()
	iq, err := c.dc.ProcessBlockDecim(c.iqBuf[:0], capture, decim)
	if err != nil {
		return SlotVerdict{}, err
	}
	c.iqBuf = iq[:0]
	// Skip the filter transient (FilterTaps passband samples).
	skip := (c.FilterTaps + decim - 1) / decim
	if skip >= len(iq) {
		skip = 0
	}
	iq = iq[skip:]

	verdict := SlotVerdict{}
	// Collision inference from the IQ amplitude clusters.
	radius := c.ClusterRadius
	if radius <= 0 {
		radius = c.autoRadius(iq)
	}
	verdict.Clusters = CountClusters(iq, radius, c.ClusterMinFraction)
	verdict.Collision = verdict.Clusters > 2

	// Frame decode with symbol-timing search.
	if cap(c.magBuf) < len(iq) {
		c.magBuf = make([]float64, len(iq))
	}
	mags := c.magBuf[:len(iq)]
	for i, s := range iq {
		mags[i] = s.Magnitude()
	}
	pkt, err := DecodeULFromBaseband(mags, c.Fs/c.ChipRate/float64(decim))
	if err == nil {
		verdict.Packet = pkt
		verdict.Decoded = true
	}
	if c.Trace.Enabled() {
		ev := obs.Event{Kind: obs.KindDecode, Collision: verdict.Collision,
			Value: float64(verdict.Clusters), Detail: "crc_fail"}
		if verdict.Decoded {
			ev.TID = int(pkt.TID)
			ev.Detail = "ok"
		}
		c.Trace.Emit(ev)
	}
	return verdict, nil
}

// autoRadius picks a cluster merge radius from the observed amplitude
// spread: a quarter of the min-max span, floor-limited by an estimate
// of the noise.
func (c *ReaderChain) autoRadius(iq []IQ) float64 {
	if len(iq) == 0 {
		return 1e-6
	}
	lo := iq[0].Magnitude()
	hi := lo
	for _, s := range iq {
		m := s.Magnitude()
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	r := (hi - lo) / 8
	if r <= 0 {
		r = 1e-6
	}
	return r
}
