package dsp

import (
	"context"
	"math"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

// Micro and end-to-end benchmarks for the block DSP fast path. The
// {ref,fused} pairs keep the pre-fusion scalar pipeline runnable so the
// recorded perf trajectory (BENCH_5.json) compares like against like.

func BenchmarkQuadOscBlock(b *testing.B) {
	o := NewQuadOsc(90_000, 500_000, 0)
	cos := make([]float64, 4096)
	sin := make([]float64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Block(cos, sin)
	}
}

func BenchmarkQuadOscScalarRef(b *testing.B) {
	// The per-sample math.Sincos the oscillator replaces.
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 4096; n++ {
			s, c := math.Sincos(2 * math.Pi * 90_000 * (float64(n) / 500_000))
			sink += s + c
		}
	}
	_ = sink
}

func BenchmarkFIRBlock(b *testing.B) {
	in := make([]float64, 4096)
	for i := range in {
		in[i] = math.Sin(float64(i) * 0.01)
	}
	b.Run("sample", func(b *testing.B) {
		f, _ := NewLowPassFIR(12_000, 500_000, 101)
		var sink float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, x := range in {
				sink += f.ProcessSample(x)
			}
		}
		_ = sink
	})
	b.Run("block", func(b *testing.B) {
		f, _ := NewLowPassFIR(12_000, 500_000, 101)
		out := make([]float64, 0, len(in))
		f.ProcessBlock(out, in) // warm scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = f.ProcessBlock(out[:0], in)
		}
	})
}

func BenchmarkDownConvert(b *testing.B) {
	const fs, lo, factor = 500_000.0, 90_000.0, 10
	capture := make([]float64, 50_000)
	for i := range capture {
		capture[i] = math.Sin(2 * math.Pi * lo * float64(i) / fs)
	}
	b.Run("scalar", func(b *testing.B) {
		dc, _ := NewDownConverter(lo, fs, 12_000, 101)
		dec, _ := NewDecimator(factor)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dc.Reset()
			dec.phase = 0
			iq := dc.Process(capture)
			mags := Magnitudes(iq)
			_ = dec.Process(mags)
		}
	})
	b.Run("fused", func(b *testing.B) {
		dc, _ := NewDownConverter(lo, fs, 12_000, 101)
		dst := make([]IQ, 0, len(capture)/factor+1)
		if out, _ := dc.ProcessBlockDecim(dst[:0], capture, factor); out != nil {
			dst = out[:0] // warm the oscillator and delay-line scratch
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dc.Reset()
			out, _ := dc.ProcessBlockDecim(dst[:0], capture, factor)
			dst = out[:0]
		}
	})
}

func BenchmarkSynthesizeUL(b *testing.B) {
	rng := sim.NewRand(77)
	chips := randomChipsB(rng, 600)
	p := ULSynthParams{
		CarrierHz: 90_000, Fs: 500_000, ChipRate: 3000,
		Leakage: 1, Backscatter: 0.25, NoiseRMS: 0.02,
		PhaseRad: 0.3, TimingJitterPC: 0.02,
	}
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = synthesizeULRef(chips, p, sim.NewRand(uint64(i)))
		}
	})
	b.Run("cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = SynthesizeUL(chips, p, sim.NewRand(uint64(i)))
		}
	})
}

func randomChipsB(rng *sim.Rand, n int) phy.Bits {
	chips := make(phy.Bits, n)
	for i := range chips {
		chips[i] = byte(rng.Uint64() & 1)
	}
	return chips
}

// benchCapture renders one tag's full passband frame for the end-to-end
// chain benchmarks.
func benchCapture(b *testing.B, chipRate float64) []float64 {
	b.Helper()
	const fs = 500_000.0
	pkt := phy.ULPacket{TID: 6, Payload: 0x2A5}
	frame, err := pkt.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	chips := append(make(phy.Bits, 8), phy.FM0Encode(frame, 0)...)
	chips = append(chips, make(phy.Bits, 4)...)
	rng := sim.NewRand(1)
	n := int(float64(len(chips))*fs/chipRate) + 1
	out := make([]float64, n)
	for i := range out {
		tt := float64(i) / fs
		amp := 0.2
		if ci := int(tt * chipRate); ci < len(chips) && chips[ci]&1 == 1 {
			amp += 0.05
		}
		out[i] = amp*math.Sin(2*math.Pi*90_000*tt) + rng.NormFloat64()*0.01
	}
	return out
}

// BenchmarkReaderChainE2E is the headline end-to-end waveform
// benchmark: one slot capture (500 kHz passband, 3000 bps frame)
// through the complete uplink receive path. "ref" reconstructs the
// pre-fusion chain from the scalar public APIs (per-sample Sin/Cos
// mixing, full-rate 101-tap FIR, allocated magnitude buffer, no
// decimation); "fused" is ReaderChain.Process with the block kernels.
func BenchmarkReaderChainE2E(b *testing.B) {
	const chipRate = 3000.0
	capture := benchCapture(b, chipRate)
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := refChainProcess(b, capture, chipRate)
			if !v.Decoded {
				b.Fatal("reference chain failed to decode")
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		chain := NewReaderChain(chipRate)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := chain.Process(capture)
			if err != nil {
				b.Fatal(err)
			}
			if !v.Decoded {
				b.Fatal("fused chain failed to decode")
			}
		}
	})
}

// refChainProcess is the pre-fusion uplink receive path, assembled from
// the scalar building blocks exactly as ReaderChain.Process did before
// the block kernels: mix+filter every ADC sample, then cluster and
// decode at the full rate.
func refChainProcess(b *testing.B, capture []float64, chipRate float64) SlotVerdict {
	const fs, carrier = 500_000.0, 90_000.0
	const filterTaps = 101
	cutoff := 4 * chipRate
	if max := fs / 2 * 0.8; cutoff > max {
		cutoff = max
	}
	dc, err := NewDownConverter(carrier, fs, cutoff, filterTaps)
	if err != nil {
		b.Fatal(err)
	}
	iq := dc.Process(capture)
	skip := filterTaps
	if skip >= len(iq) {
		skip = 0
	}
	iq = iq[skip:]
	verdict := SlotVerdict{}
	lo := iq[0].Magnitude()
	hi := lo
	for _, s := range iq {
		m := s.Magnitude()
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	radius := (hi - lo) / 8
	if radius <= 0 {
		radius = 1e-6
	}
	verdict.Clusters = CountClusters(iq, radius, 0.04)
	verdict.Collision = verdict.Clusters > 2
	mags := Magnitudes(iq)
	if pkt, err := DecodeULFromBaseband(mags, fs/chipRate); err == nil {
		verdict.Packet = pkt
		verdict.Decoded = true
	}
	return verdict
}

// BenchmarkPipelineBlocks streams blocks through a Run()ing pipeline
// with the free-list recycling chunk buffers: per-block steady state
// allocates nothing (the in-place FIR stage reuses the block, the sink
// returns it to the pool, the source reuses it).
func BenchmarkPipelineBlocks(b *testing.B) {
	fir, _ := NewLowPassFIR(12_000, 500_000, 101)
	p := NewPipeline(4, func(blk Block) Block { return fir.ProcessBlock(blk[:0], blk) })
	src := make([]float64, 4096)
	for i := range src {
		src[i] = math.Sin(float64(i) * 0.01)
	}
	// Warm the pool and the FIR work buffer.
	for i := 0; i < 8; i++ {
		p.pool.put(p.pool.get(len(src)))
	}
	_ = fir.ProcessBlock(make([]float64, 0, len(src)), src)
	in := make(chan Block, 4)
	out := p.Run(context.Background(), in)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for blk := range out {
			p.pool.put(blk)
		}
	}()
	for i := 0; i < 32; i++ { // warm the stage goroutines' stacks and the pool
		c := p.pool.get(len(src))
		in <- append(c, src...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := p.pool.get(len(src))
		c = append(c, src...)
		in <- c
	}
	close(in)
	<-done
}
