package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter with streaming state, so it
// can process a signal in chunks inside the pipeline.
//
// Two processing paths share the coefficient set but keep separate
// streaming state: the scalar reference path (ProcessSample/Process)
// uses a modulo ring, and the block fast path (ProcessBlock) keeps a
// contiguous linear delay line so the dot product is a forward,
// cache-friendly scan with no per-tap wraparound branch. A given
// instance should stick to one path per stream; Reset clears both.
type FIR struct {
	taps  []float64
	delay []float64
	pos   int
	// Block-path state: the last len(taps)-1 inputs in chronological
	// order, plus a reusable work buffer holding history ++ block.
	hist []float64
	work []float64
	// rtaps is taps reversed, so the block dot product scans both the
	// coefficients and the delay line forward.
	rtaps []float64
}

// NewLowPassFIR designs a Hamming-windowed sinc low-pass filter with
// the given cutoff (Hz), sample rate (Hz) and tap count (odd
// recommended).
func NewLowPassFIR(cutoffHz, fs float64, taps int) (*FIR, error) {
	if taps < 3 {
		return nil, fmt.Errorf("dsp: need at least 3 taps, got %d", taps)
	}
	if cutoffHz <= 0 || cutoffHz >= fs/2 {
		return nil, fmt.Errorf("dsp: cutoff %v Hz outside (0, fs/2)", cutoffHz)
	}
	h := make([]float64, taps)
	fc := cutoffHz / fs
	mid := float64(taps-1) / 2
	var sum float64
	for i := range h {
		x := float64(i) - mid
		var s float64
		if x == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*x) / (math.Pi * x)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = s * w
		sum += h[i]
	}
	for i := range h { // normalize to unity DC gain
		h[i] /= sum
	}
	return newFIR(h), nil
}

// newFIR builds the filter state around a finished coefficient set.
func newFIR(h []float64) *FIR {
	r := make([]float64, len(h))
	for i, t := range h {
		r[len(h)-1-i] = t
	}
	return &FIR{
		taps:  h,
		delay: make([]float64, len(h)),
		hist:  make([]float64, len(h)-1),
		rtaps: r,
	}
}

// Taps returns a copy of the filter coefficients.
func (f *FIR) Taps() []float64 { return append([]float64(nil), f.taps...) }

// Reset clears the delay line (both the scalar ring and the block
// history).
func (f *FIR) Reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
	for i := range f.hist {
		f.hist[i] = 0
	}
}

// ProcessSample pushes one sample through the filter.
func (f *FIR) ProcessSample(x float64) float64 {
	f.delay[f.pos] = x
	var y float64
	idx := f.pos
	for _, t := range f.taps {
		y += t * f.delay[idx]
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return y
}

// Process filters a block in place-order and returns the output block.
func (f *FIR) Process(block []float64) []float64 {
	out := make([]float64, len(block))
	for i, x := range block {
		out[i] = f.ProcessSample(x)
	}
	return out
}

// ProcessBlock filters a whole block through the contiguous delay line
// and appends the outputs to dst, returning the extended slice. With a
// dst of sufficient capacity the call performs no allocations after the
// first block of a given size (the internal work buffer is grown once
// and reused). dst may alias src: output i only reads the work buffer,
// never src. The result matches ProcessSample within floating-point
// reassociation error (the property tests pin ≤1e-9).
//
//alloc:hot work buffer amortized across blocks; zero allocs once dst and work have capacity
func (f *FIR) ProcessBlock(dst, src []float64) []float64 {
	if len(src) == 0 {
		return dst
	}
	m := len(f.hist)
	need := m + len(src)
	if cap(f.work) < need {
		f.work = make([]float64, need)
	}
	work := f.work[:need]
	copy(work, f.hist)
	copy(work[m:], src)
	for i := 0; i < len(src); i++ {
		dst = append(dst, dot(f.rtaps, work[i:i+len(f.rtaps)]))
	}
	copy(f.hist, work[len(src):])
	return dst
}

// dot is the FIR inner product with four independent accumulators, so
// the loop is bounded by FP-add throughput instead of the latency of a
// single serial accumulation chain. The summation order differs from the
// scalar reference only by reassociation; the property tests bound the
// divergence at 1e-9.
//
//alloc:hot pure inner product over caller slices
func dot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for j := 0; j < n; j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	for j := n; j < len(a); j++ {
		s0 += a[j] * b[j]
	}
	return (s0 + s1) + (s2 + s3)
}

// Decimator keeps every factor-th sample, with phase preserved across
// chunk boundaries.
type Decimator struct {
	Factor int
	phase  int
}

// NewDecimator returns a decimator; factor must be >= 1.
func NewDecimator(factor int) (*Decimator, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor %d < 1", factor)
	}
	return &Decimator{Factor: factor}, nil
}

// Process returns the decimated chunk.
func (d *Decimator) Process(block []float64) []float64 {
	out := make([]float64, 0, len(block)/d.Factor+1)
	for _, x := range block {
		if d.phase == 0 {
			out = append(out, x)
		}
		d.phase++
		if d.phase == d.Factor {
			d.phase = 0
		}
	}
	return out
}

// DCBlocker removes the DC component (the un-modulated carrier
// leakage) with a single-pole high-pass: y[n] = x[n] - x[n-1] + a*y[n-1].
type DCBlocker struct {
	A       float64
	prevIn  float64
	prevOut float64
	primed  bool
}

// NewDCBlocker returns a DC blocker with pole a (0.9..0.999 typical).
func NewDCBlocker(a float64) *DCBlocker { return &DCBlocker{A: a} }

// ProcessSample pushes one sample.
func (d *DCBlocker) ProcessSample(x float64) float64 {
	if !d.primed {
		d.prevIn = x
		d.primed = true
	}
	y := x - d.prevIn + d.A*d.prevOut
	d.prevIn = x
	d.prevOut = y
	return y
}

// Process filters a block.
func (d *DCBlocker) Process(block []float64) []float64 {
	out := make([]float64, len(block))
	for i, x := range block {
		out[i] = d.ProcessSample(x)
	}
	return out
}

// SchmittTrigger converts an analog waveform into binary levels with
// hysteresis — the reader-side equivalent of the tag's comparator.
type SchmittTrigger struct {
	High, Low float64
	state     bool
}

// NewSchmittTrigger returns a trigger with the given thresholds.
func NewSchmittTrigger(low, high float64) (*SchmittTrigger, error) {
	if high <= low {
		return nil, fmt.Errorf("dsp: schmitt high %v <= low %v", high, low)
	}
	return &SchmittTrigger{High: high, Low: low}, nil
}

// ProcessSample returns the binary state after seeing x.
func (s *SchmittTrigger) ProcessSample(x float64) bool {
	if x >= s.High {
		s.state = true
	} else if x <= s.Low {
		s.state = false
	}
	return s.state
}

// Process converts a block to levels.
func (s *SchmittTrigger) Process(block []float64) []bool {
	out := make([]bool, len(block))
	for i, x := range block {
		out[i] = s.ProcessSample(x)
	}
	return out
}
