package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter with streaming state, so it
// can process a signal in chunks inside the pipeline.
type FIR struct {
	taps  []float64
	delay []float64
	pos   int
}

// NewLowPassFIR designs a Hamming-windowed sinc low-pass filter with
// the given cutoff (Hz), sample rate (Hz) and tap count (odd
// recommended).
func NewLowPassFIR(cutoffHz, fs float64, taps int) (*FIR, error) {
	if taps < 3 {
		return nil, fmt.Errorf("dsp: need at least 3 taps, got %d", taps)
	}
	if cutoffHz <= 0 || cutoffHz >= fs/2 {
		return nil, fmt.Errorf("dsp: cutoff %v Hz outside (0, fs/2)", cutoffHz)
	}
	h := make([]float64, taps)
	fc := cutoffHz / fs
	mid := float64(taps-1) / 2
	var sum float64
	for i := range h {
		x := float64(i) - mid
		var s float64
		if x == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*x) / (math.Pi * x)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = s * w
		sum += h[i]
	}
	for i := range h { // normalize to unity DC gain
		h[i] /= sum
	}
	return &FIR{taps: h, delay: make([]float64, taps)}, nil
}

// Taps returns a copy of the filter coefficients.
func (f *FIR) Taps() []float64 { return append([]float64(nil), f.taps...) }

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
}

// ProcessSample pushes one sample through the filter.
func (f *FIR) ProcessSample(x float64) float64 {
	f.delay[f.pos] = x
	var y float64
	idx := f.pos
	for _, t := range f.taps {
		y += t * f.delay[idx]
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return y
}

// Process filters a block in place-order and returns the output block.
func (f *FIR) Process(block []float64) []float64 {
	out := make([]float64, len(block))
	for i, x := range block {
		out[i] = f.ProcessSample(x)
	}
	return out
}

// Decimator keeps every factor-th sample, with phase preserved across
// chunk boundaries.
type Decimator struct {
	Factor int
	phase  int
}

// NewDecimator returns a decimator; factor must be >= 1.
func NewDecimator(factor int) (*Decimator, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor %d < 1", factor)
	}
	return &Decimator{Factor: factor}, nil
}

// Process returns the decimated chunk.
func (d *Decimator) Process(block []float64) []float64 {
	out := make([]float64, 0, len(block)/d.Factor+1)
	for _, x := range block {
		if d.phase == 0 {
			out = append(out, x)
		}
		d.phase++
		if d.phase == d.Factor {
			d.phase = 0
		}
	}
	return out
}

// DCBlocker removes the DC component (the un-modulated carrier
// leakage) with a single-pole high-pass: y[n] = x[n] - x[n-1] + a*y[n-1].
type DCBlocker struct {
	A       float64
	prevIn  float64
	prevOut float64
	primed  bool
}

// NewDCBlocker returns a DC blocker with pole a (0.9..0.999 typical).
func NewDCBlocker(a float64) *DCBlocker { return &DCBlocker{A: a} }

// ProcessSample pushes one sample.
func (d *DCBlocker) ProcessSample(x float64) float64 {
	if !d.primed {
		d.prevIn = x
		d.primed = true
	}
	y := x - d.prevIn + d.A*d.prevOut
	d.prevIn = x
	d.prevOut = y
	return y
}

// Process filters a block.
func (d *DCBlocker) Process(block []float64) []float64 {
	out := make([]float64, len(block))
	for i, x := range block {
		out[i] = d.ProcessSample(x)
	}
	return out
}

// SchmittTrigger converts an analog waveform into binary levels with
// hysteresis — the reader-side equivalent of the tag's comparator.
type SchmittTrigger struct {
	High, Low float64
	state     bool
}

// NewSchmittTrigger returns a trigger with the given thresholds.
func NewSchmittTrigger(low, high float64) (*SchmittTrigger, error) {
	if high <= low {
		return nil, fmt.Errorf("dsp: schmitt high %v <= low %v", high, low)
	}
	return &SchmittTrigger{High: high, Low: low}, nil
}

// ProcessSample returns the binary state after seeing x.
func (s *SchmittTrigger) ProcessSample(x float64) bool {
	if x >= s.High {
		s.state = true
	} else if x <= s.Low {
		s.state = false
	}
	return s.state
}

// Process converts a block to levels.
func (s *SchmittTrigger) Process(block []float64) []bool {
	out := make([]bool, len(block))
	for i, x := range block {
		out[i] = s.ProcessSample(x)
	}
	return out
}
