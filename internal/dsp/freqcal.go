package dsp

import (
	"fmt"
	"math"
)

// Frequency-offset calibration (Sec. 6.1): the reader's DAQ clock and
// the 90 kHz drive synthesis drift relative to each other, so the
// receive chain estimates the actual carrier frequency from the
// captured samples and retunes the down-converter's local oscillator.
// The estimator measures the carrier phase advance between two
// Goertzel-like windows: a frequency error df produces a phase slope
// of 2*pi*df between window centers.

// EstimateFrequencyOffset returns the difference (Hz) between the true
// carrier in `signal` and nominalHz. The unambiguous range is
// +/- fs/(2*gap) where gap is the window spacing chosen internally;
// for a 500 kHz capture this comfortably covers the +/-few-hundred-Hz
// drift of real oscillators.
func EstimateFrequencyOffset(signal []float64, fs, nominalHz float64) (float64, error) {
	if fs <= 0 || nominalHz <= 0 {
		return 0, fmt.Errorf("dsp: invalid rates")
	}
	// Two windows of wlen samples, spaced gap samples apart.
	wlen := int(fs / nominalHz * 32) // ~32 carrier cycles per window
	gap := 4 * wlen
	if len(signal) < gap+wlen {
		return 0, fmt.Errorf("dsp: capture too short for offset estimation (%d < %d)",
			len(signal), gap+wlen)
	}
	// Correlate each window against the recurrence quadrature
	// oscillator; the periodic exact re-anchor keeps it within 1e-9 of
	// the per-sample Cos/Sin reference over any window length.
	phase := func(start int) float64 {
		osc := NewQuadOsc(nominalHz, fs, 0)
		osc.Skip(start)
		var i, q float64
		for _, s := range signal[start : start+wlen] {
			c, sn := osc.Next()
			i += s * c
			q += s * -sn
		}
		return math.Atan2(q, i)
	}
	p1 := phase(0)
	p2 := phase(gap)
	dphi := p2 - p1
	// Wrap to (-pi, pi].
	for dphi > math.Pi {
		dphi -= 2 * math.Pi
	}
	for dphi <= -math.Pi {
		dphi += 2 * math.Pi
	}
	dt := float64(gap) / fs
	return dphi / (2 * math.Pi * dt), nil
}

// CalibrateDownConverter estimates the carrier offset from a capture
// and returns a down-converter retuned to the measured frequency.
func CalibrateDownConverter(capture []float64, fs, nominalHz, cutoffHz float64, taps int) (*DownConverter, float64, error) {
	off, err := EstimateFrequencyOffset(capture, fs, nominalHz)
	if err != nil {
		return nil, 0, err
	}
	dc, err := NewDownConverter(nominalHz+off, fs, cutoffHz, taps)
	if err != nil {
		return nil, 0, err
	}
	return dc, off, nil
}
