package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1 (flat spectrum of impulse)", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 64
	x := make([]complex128, n)
	k := 5
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(k*i)/n), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Errorf("bin %d = %v, want %v", i, mag, n/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("leakage at bin %d: %v", i, mag)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("expected error for length 12")
	}
	if err := FFT(nil); err != nil {
		t.Errorf("empty FFT should be a no-op: %v", err)
	}
}

func TestFFTLinearity(t *testing.T) {
	const n = 32
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := range a {
		a[i] = complex(math.Sin(float64(i)), 0)
		b[i] = complex(math.Cos(float64(2*i)), 0)
		sum[i] = a[i] + b[i]
	}
	if err := FFT(a); err != nil {
		t.Fatal(err)
	}
	if err := FFT(b); err != nil {
		t.Fatal(err)
	}
	if err := FFT(sum); err != nil {
		t.Fatal(err)
	}
	for i := range sum {
		if cmplx.Abs(sum[i]-a[i]-b[i]) > 1e-9 {
			t.Fatalf("FFT not linear at bin %d", i)
		}
	}
}

func TestPSDToneLocation(t *testing.T) {
	const fs = 10000.0
	const f0 = 1000.0
	n := 4096
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	density, binHz, err := PSD(sig, fs)
	if err != nil {
		t.Fatal(err)
	}
	peak, peakIdx := 0.0, 0
	for i, d := range density {
		if d > peak {
			peak, peakIdx = d, i
		}
	}
	peakHz := float64(peakIdx) * binHz
	if math.Abs(peakHz-f0) > 2*binHz {
		t.Errorf("PSD peak at %v Hz, want %v", peakHz, f0)
	}
}

func TestPSDParseval(t *testing.T) {
	// Total band power of a unit sine is ~0.5 V^2.
	const fs = 8000.0
	n := 8192
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 440 * float64(i) / fs)
	}
	density, binHz, err := PSD(sig, fs)
	if err != nil {
		t.Fatal(err)
	}
	total := BandPower(density, binHz, 0, fs/2)
	if math.Abs(total-0.5) > 0.05 {
		t.Errorf("total power = %v, want ~0.5", total)
	}
}

func TestPSDErrors(t *testing.T) {
	if _, _, err := PSD(nil, 100); err == nil {
		t.Error("empty signal accepted")
	}
	if _, _, err := PSD([]float64{1}, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestBandPowerEdges(t *testing.T) {
	density := []float64{1, 1, 1, 1}
	if BandPower(density, 0, 0, 10) != 0 {
		t.Error("zero bin width should return 0")
	}
	if BandPower(density, 1, 5, 2) != 0 {
		t.Error("inverted band should return 0")
	}
	if got := BandPower(density, 1, 0, 3); got != 4 {
		t.Errorf("full band = %v, want 4", got)
	}
}

func TestGoertzelMatchesTone(t *testing.T) {
	const fs = 10000.0
	n := 1000
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = 2 * math.Sin(2*math.Pi*500*float64(i)/fs)
	}
	atTone := Goertzel(sig, fs, 500)
	offTone := Goertzel(sig, fs, 1500)
	if atTone <= 10*offTone {
		t.Errorf("Goertzel selectivity poor: on=%v off=%v", atTone, offTone)
	}
	if Goertzel(nil, fs, 500) != 0 {
		t.Error("empty signal should be 0")
	}
	if Goertzel(sig, 0, 500) != 0 {
		t.Error("zero fs should be 0")
	}
}

func TestMeasureSNRdBTracksInjectedSNR(t *testing.T) {
	// Build an FM0-like square modulation plus white noise and verify
	// the PSD-based meter reports higher SNR for stronger signals.
	const fs = 12000.0
	const chipRate = 750.0
	rngState := uint64(12345)
	nextNoise := func() float64 {
		// Small deterministic LCG-based Gaussian-ish noise (sum of
		// uniforms) to avoid importing sim here.
		var s float64
		for k := 0; k < 12; k++ {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			s += float64(rngState>>11) / (1 << 53)
		}
		return s - 6
	}
	gen := func(amp float64) []float64 {
		n := 8192
		sig := make([]float64, n)
		spc := int(fs / chipRate)
		level := 0.0
		for i := range sig {
			if i%spc == 0 {
				if level == 0 {
					level = amp
				} else {
					level = 0
				}
			}
			sig[i] = level + 0.01*nextNoise()
		}
		return sig
	}
	weak, err := MeasureSNRdB(gen(0.05), fs, chipRate)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := MeasureSNRdB(gen(0.5), fs, chipRate)
	if err != nil {
		t.Fatal(err)
	}
	if strong <= weak+10 {
		t.Errorf("SNR meter not tracking: weak=%v strong=%v", weak, strong)
	}
}
