package dsp

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestLowPassFIRDCGain(t *testing.T) {
	f, err := NewLowPassFIR(1000, 10000, 31)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, tap := range f.Taps() {
		sum += tap
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("DC gain = %v, want 1", sum)
	}
}

func TestLowPassFIRSelectivity(t *testing.T) {
	const fs = 10000.0
	f, err := NewLowPassFIR(500, fs, 101)
	if err != nil {
		t.Fatal(err)
	}
	rms := func(freq float64) float64 {
		f.Reset()
		var sum float64
		n := 2000
		for i := 0; i < n; i++ {
			y := f.ProcessSample(math.Sin(2 * math.Pi * freq * float64(i) / fs))
			if i > 200 { // skip transient
				sum += y * y
			}
		}
		return math.Sqrt(sum / float64(n-200))
	}
	pass := rms(100)
	stop := rms(2000)
	if pass < 0.6 {
		t.Errorf("passband rms = %v, want ~0.707", pass)
	}
	if stop > pass/30 {
		t.Errorf("stopband leakage: pass=%v stop=%v", pass, stop)
	}
}

func TestLowPassFIRErrors(t *testing.T) {
	if _, err := NewLowPassFIR(1000, 10000, 2); err == nil {
		t.Error("too few taps accepted")
	}
	if _, err := NewLowPassFIR(0, 10000, 31); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := NewLowPassFIR(6000, 10000, 31); err == nil {
		t.Error("cutoff above Nyquist accepted")
	}
}

func TestFIRBlockEqualsSampleBySample(t *testing.T) {
	f1, _ := NewLowPassFIR(800, 8000, 21)
	f2, _ := NewLowPassFIR(800, 8000, 21)
	in := make([]float64, 100)
	for i := range in {
		in[i] = math.Sin(float64(i) * 0.3)
	}
	blockOut := f1.Process(in)
	for i, x := range in {
		if y := f2.ProcessSample(x); math.Abs(y-blockOut[i]) > 1e-12 {
			t.Fatalf("sample %d: block %v vs stream %v", i, blockOut[i], y)
		}
	}
}

func TestDecimator(t *testing.T) {
	d, err := NewDecimator(4)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8}
	out := d.Process(in)
	want := []float64{0, 4, 8}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestDecimatorPhaseAcrossChunks(t *testing.T) {
	d, _ := NewDecimator(3)
	var out []float64
	out = append(out, d.Process([]float64{0, 1})...)
	out = append(out, d.Process([]float64{2, 3, 4, 5, 6})...)
	want := []float64{0, 3, 6}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("chunked decimation = %v, want %v", out, want)
		}
	}
}

func TestDecimatorErrors(t *testing.T) {
	if _, err := NewDecimator(0); err == nil {
		t.Error("factor 0 accepted")
	}
	d, _ := NewDecimator(1)
	in := []float64{1, 2, 3}
	out := d.Process(in)
	if len(out) != 3 {
		t.Error("factor 1 should pass everything")
	}
}

func TestDCBlockerRemovesOffset(t *testing.T) {
	b := NewDCBlocker(0.995)
	var last float64
	for i := 0; i < 5000; i++ {
		last = b.ProcessSample(3.0) // pure DC
	}
	if math.Abs(last) > 0.01 {
		t.Errorf("DC residue = %v", last)
	}
}

func TestDCBlockerPassesAC(t *testing.T) {
	b := NewDCBlocker(0.995)
	var sumIn, sumOut float64
	n := 4000
	for i := 0; i < n; i++ {
		x := 2 + math.Sin(2*math.Pi*float64(i)/20) // DC + tone
		y := b.ProcessSample(x)
		if i > 1000 {
			sumIn += math.Sin(2*math.Pi*float64(i)/20) * math.Sin(2*math.Pi*float64(i)/20)
			sumOut += y * y
		}
	}
	if sumOut < 0.5*sumIn {
		t.Errorf("AC attenuated too much: %v vs %v", sumOut, sumIn)
	}
}

func TestDCBlockerFirstSampleNoTransient(t *testing.T) {
	b := NewDCBlocker(0.99)
	if y := b.ProcessSample(5); y != 0 {
		t.Errorf("first sample output %v, want 0 (primed)", y)
	}
}

func TestSchmittTriggerHysteresis(t *testing.T) {
	s, err := NewSchmittTrigger(0.3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	seq := []float64{0, 0.5, 0.8, 0.5, 0.4, 0.2, 0.5, 0.69}
	want := []bool{false, false, true, true, true, false, false, false}
	for i, x := range seq {
		if got := s.ProcessSample(x); got != want[i] {
			t.Fatalf("step %d (x=%v): got %v, want %v", i, x, got, want[i])
		}
	}
}

func TestSchmittTriggerRejectsNoiseInBand(t *testing.T) {
	s, _ := NewSchmittTrigger(0.4, 0.6)
	s.ProcessSample(1.0) // latch high
	flips := 0
	prev := true
	for i := 0; i < 1000; i++ {
		x := 0.5 + 0.05*math.Sin(float64(i)) // noise inside band
		cur := s.ProcessSample(x)
		if cur != prev {
			flips++
		}
		prev = cur
	}
	if flips != 0 {
		t.Errorf("in-band noise caused %d flips", flips)
	}
}

func TestSchmittTriggerErrors(t *testing.T) {
	if _, err := NewSchmittTrigger(0.7, 0.3); err == nil {
		t.Error("inverted thresholds accepted")
	}
}

func TestSchmittBlockProcess(t *testing.T) {
	s, _ := NewSchmittTrigger(0.3, 0.7)
	out := s.Process([]float64{0, 1, 0.5, 0})
	want := []bool{false, true, true, false}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("block = %v, want %v", out, want)
		}
	}
}

func TestFIRProcessBlockMatchesScalar(t *testing.T) {
	rng := sim.NewRand(21)
	for trial := 0; trial < 12; trial++ {
		taps := 3 + int(rng.Uint64()%64)
		h := make([]float64, taps)
		for i := range h {
			h[i] = rng.NormFloat64()
		}
		ref := newFIR(h)
		fast := newFIR(h)
		in := make([]float64, 700+int(rng.Uint64()%300))
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		want := ref.Process(in)
		var got []float64
		// Random chunking, including 1-sample and larger-than-taps blocks.
		for off := 0; off < len(in); {
			n := 1 + int(rng.Uint64()%97)
			if off+n > len(in) {
				n = len(in) - off
			}
			got = fast.ProcessBlock(got, in[off:off+n])
			off += n
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d (taps=%d) sample %d: block %v vs scalar %v",
					trial, taps, i, got[i], want[i])
			}
		}
	}
}

func TestFIRProcessBlockAliasing(t *testing.T) {
	f1, _ := NewLowPassFIR(800, 8000, 21)
	f2, _ := NewLowPassFIR(800, 8000, 21)
	in := make([]float64, 128)
	for i := range in {
		in[i] = math.Sin(float64(i) * 0.17)
	}
	want := f1.ProcessBlock(nil, in)
	buf := make([]float64, 128)
	copy(buf, in)
	got := f2.ProcessBlock(buf[:0], buf) // dst aliases src
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased sample %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFIRProcessBlockZeroAlloc(t *testing.T) {
	f, _ := NewLowPassFIR(4000, 500_000, 101)
	in := make([]float64, 4096)
	for i := range in {
		in[i] = math.Sin(float64(i) * 0.01)
	}
	out := make([]float64, 0, len(in))
	f.ProcessBlock(out, in) // warm the work buffer
	if n := testing.AllocsPerRun(10, func() {
		out = f.ProcessBlock(out[:0], in)
	}); n != 0 {
		t.Errorf("steady-state ProcessBlock allocates %v per block", n)
	}
}
