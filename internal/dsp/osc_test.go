package dsp

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestQuadOscMatchesSincos pins the recurrence oscillator to the
// closed-form math.Sin/Cos the scalar reference path evaluates, across
// randomized frequencies, sample rates and initial phases, over streams
// long enough to cross many renormalization anchors.
func TestQuadOscMatchesSincos(t *testing.T) {
	rng := sim.NewRand(11)
	for trial := 0; trial < 20; trial++ {
		fs := 100_000 + rng.Float64()*900_000
		freq := fs * (0.01 + 0.45*rng.Float64()) // well inside Nyquist
		phase := (rng.Float64()*2 - 1) * math.Pi
		o := NewQuadOsc(freq, fs, phase)
		n := 3 * oscReseedEvery
		if trial == 0 {
			n = 50 * oscReseedEvery // one long-stream trial
		}
		var worst float64
		for i := 0; i < n; i++ {
			c, s := o.Next()
			ph := 2*math.Pi*freq*(float64(i)/fs) + phase
			if d := math.Abs(c - math.Cos(ph)); d > worst {
				worst = d
			}
			if d := math.Abs(s - math.Sin(ph)); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			t.Fatalf("trial %d (f=%.0f fs=%.0f): worst divergence %.3g > 1e-9",
				trial, freq, fs, worst)
		}
	}
}

// TestQuadOscBlockAndSkip checks the block fill and Skip agree with the
// per-sample path.
func TestQuadOscBlockAndSkip(t *testing.T) {
	const fs, freq = 500_000.0, 90_000.0
	a := NewQuadOsc(freq, fs, 0.3)
	b := NewQuadOsc(freq, fs, 0.3)
	cos := make([]float64, 1500)
	sin := make([]float64, 1500)
	a.Block(cos, sin)
	for i := range cos {
		c, s := b.Next()
		if cos[i] != c || sin[i] != s {
			t.Fatalf("sample %d: block (%v,%v) vs next (%v,%v)", i, cos[i], sin[i], c, s)
		}
	}
	a.Skip(777)
	if a.SampleIndex() != 1500+777 {
		t.Fatalf("index after skip = %d", a.SampleIndex())
	}
	c, s := a.Next()
	ph := 2 * math.Pi * freq * (float64(2277) / fs)
	if math.Abs(c-math.Cos(ph+0.3)) > 1e-9 || math.Abs(s-math.Sin(ph+0.3)) > 1e-9 {
		t.Fatalf("post-skip sample diverges: (%v,%v)", c, s)
	}
	// A sin-only / cos-only block fill also advances correctly.
	a.Block(nil, sin[:7])
	if a.SampleIndex() != 2278+7 {
		t.Fatalf("index after nil-cos block = %d", a.SampleIndex())
	}
}

// TestQuadOscBlockZeroAlloc asserts the steady-state oscillator block
// fill allocates nothing.
func TestQuadOscBlockZeroAlloc(t *testing.T) {
	o := NewQuadOsc(90_000, 500_000, 0)
	cos := make([]float64, 4096)
	sin := make([]float64, 4096)
	if n := testing.AllocsPerRun(10, func() { o.Block(cos, sin) }); n != 0 {
		t.Errorf("QuadOsc.Block allocates %v per block", n)
	}
}
