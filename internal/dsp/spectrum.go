// Package dsp implements the reader's signal-processing chain
// (Sec. 6.1): down-conversion of the 500 kHz ADC stream to baseband
// I/Q, low-pass filtering and decimation, Schmitt triggering, FM0 chip
// recovery, PSD-based SNR measurement, and the IQ-domain cluster
// counting the reader uses to detect collisions despite the capture
// effect (Sec. 5.3). Blocks can run standalone on slices or be
// assembled into a streaming pipeline with back-pressure, mirroring the
// paper's C++ reader software.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// FFT computes the in-place radix-2 Cooley-Tukey FFT of x. The length
// must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PSD estimates the one-sided power spectral density of a real signal
// sampled at fs using a Hann-windowed periodogram, zero-padded to a
// power of two. It returns the density values (V^2/Hz) and the bin
// width in Hz.
func PSD(signal []float64, fs float64) (density []float64, binHz float64, err error) {
	if len(signal) == 0 {
		return nil, 0, fmt.Errorf("dsp: empty signal")
	}
	if fs <= 0 {
		return nil, 0, fmt.Errorf("dsp: non-positive sample rate")
	}
	n := nextPow2(len(signal))
	buf := make([]complex128, n)
	var winPower float64
	for i, v := range signal {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(len(signal)-1+1)))
		buf[i] = complex(v*w, 0)
		winPower += w * w
	}
	if winPower == 0 {
		winPower = 1
	}
	if err := FFT(buf); err != nil {
		return nil, 0, err
	}
	half := n/2 + 1
	density = make([]float64, half)
	scale := 1 / (fs * winPower)
	for i := 0; i < half; i++ {
		p := real(buf[i])*real(buf[i]) + imag(buf[i])*imag(buf[i])
		density[i] = p * scale
		if i != 0 && i != n/2 {
			density[i] *= 2 // fold negative frequencies
		}
	}
	return density, fs / float64(n), nil
}

// BandPower integrates a PSD over [loHz, hiHz].
func BandPower(density []float64, binHz, loHz, hiHz float64) float64 {
	if binHz <= 0 || hiHz <= loHz {
		return 0
	}
	var p float64
	for i, d := range density {
		f := float64(i) * binHz
		if f >= loHz && f <= hiHz {
			p += d * binHz
		}
	}
	return p
}

// MeasureSNRdB reproduces the paper's uplink SNR metric (Sec. 6.3):
// "dividing the backscattering frequency power by the surrounding
// frequency power via PSD". The measurement assumes the tag toggles a
// square test pattern (FM0 of all-zero data), which concentrates the
// backscatter in a tone at half the chip rate. The tone's power is
// integrated over a few bins; the surrounding shelf is the median bin
// density across the modulation band excluding the tone's
// neighbourhood. The result is normalized to the OOK sideband-power
// convention (square-wave fundamental carries (8/pi^2)x the average
// sideband power) so it is directly comparable to link-budget SNR over
// the 2x-chip-rate FM0 bandwidth.
func MeasureSNRdB(baseband []float64, fs, chipRate float64) (float64, error) {
	density, binHz, err := PSD(baseband, fs)
	if err != nil {
		return 0, err
	}
	tone := chipRate / 2
	toneBin := int(tone/binHz + 0.5)
	const guard = 6 // bins around the tone excluded from the shelf
	lo, hi := toneBin-3, toneBin+3
	if lo < 0 {
		lo = 0
	}
	var sig float64
	for i := lo; i <= hi && i < len(density); i++ {
		sig += density[i] * binHz
	}
	var ref []float64
	bandLo, bandHi := 0.25*chipRate, 1.25*chipRate
	for i, d := range density {
		f := float64(i) * binHz
		if f < bandLo || f > bandHi {
			continue
		}
		if i >= toneBin-guard && i <= toneBin+guard {
			continue
		}
		ref = append(ref, d)
	}
	if len(ref) == 0 {
		return math.Inf(1), nil
	}
	sort.Float64s(ref)
	noisePower := ref[len(ref)/2] * 2 * chipRate // FM0 occupied bandwidth
	if noisePower <= 0 {
		return math.Inf(1), nil
	}
	net := sig - ref[len(ref)/2]*7*binHz // remove in-window noise
	if net <= 0 {
		return math.Inf(-1), nil
	}
	// Square-wave fundamental power -> average OOK sideband power.
	const conventionDB = 2.1
	return 10*math.Log10(net/noisePower) - conventionDB, nil
}

// Goertzel computes the signal power at a single frequency f — the
// cheap single-bin DFT the reader uses for carrier tracking.
func Goertzel(signal []float64, fs, f float64) float64 {
	if len(signal) == 0 || fs <= 0 {
		return 0
	}
	w := 2 * math.Pi * f / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range signal {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(len(signal)*len(signal)/4)
}
