package dsp

import (
	"math"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

// synthCapture renders one or more overlapping tag bursts plus carrier
// leakage at the reader ADC.
func synthCapture(t *testing.T, chipRate float64, tags []struct {
	pkt phy.ULPacket
	amp float64
}, noise float64, seed uint64) []float64 {
	t.Helper()
	const fs = 500_000.0
	rng := sim.NewRand(seed)
	var longest int
	chipStreams := make([]phy.Bits, len(tags))
	for i, tg := range tags {
		frame, err := tg.pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		chips := append(make(phy.Bits, 8), phy.FM0Encode(frame, 0)...)
		chips = append(chips, make(phy.Bits, 4)...)
		chipStreams[i] = chips
		if n := int(float64(len(chips)) * fs / chipRate); n > longest {
			longest = n
		}
	}
	out := make([]float64, longest+1)
	for n := range out {
		tt := float64(n) / fs
		carrier := math.Sin(2 * math.Pi * 90_000 * tt)
		amp := 0.2 // leakage
		for i, tg := range tags {
			chipIdx := int(tt * chipRate)
			if chipIdx < len(chipStreams[i]) && chipStreams[i][chipIdx]&1 == 1 {
				amp += tg.amp
			}
		}
		v := amp * carrier
		if noise > 0 {
			v += rng.NormFloat64() * noise
		}
		out[n] = v
	}
	return out
}

func TestReaderChainSoloDecode(t *testing.T) {
	pkt := phy.ULPacket{TID: 6, Payload: 0x2A5}
	capture := synthCapture(t, 3000, []struct {
		pkt phy.ULPacket
		amp float64
	}{{pkt, 0.05}}, 0.01, 1)

	chain := NewReaderChain(3000)
	v, err := chain.Process(capture)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoded {
		t.Fatal("solo packet not decoded")
	}
	if v.Packet != pkt {
		t.Errorf("decoded %+v, want %+v", v.Packet, pkt)
	}
	if v.Collision {
		t.Errorf("false collision: %d clusters", v.Clusters)
	}
	if v.Clusters != 2 {
		t.Errorf("clusters = %d, want 2 (leakage and leakage+backscatter)", v.Clusters)
	}
}

func TestReaderChainDetectsCollisionDespiteCapture(t *testing.T) {
	// Two overlapping tags: the strong one may decode (capture effect),
	// but the cluster count must expose the collision — the Sec. 5.3
	// mechanism end-to-end in the DSP domain.
	strong := phy.ULPacket{TID: 3, Payload: 0x111}
	weak := phy.ULPacket{TID: 9, Payload: 0x777}
	capture := synthCapture(t, 3000, []struct {
		pkt phy.ULPacket
		amp float64
	}{{strong, 0.06}, {weak, 0.025}}, 0.004, 2)

	chain := NewReaderChain(3000)
	v, err := chain.Process(capture)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Collision {
		t.Errorf("collision undetected: %d clusters", v.Clusters)
	}
}

func TestReaderChainSilence(t *testing.T) {
	// Carrier-only capture: nothing decodes, no collision.
	rng := sim.NewRand(3)
	capture := make([]float64, 60_000)
	for n := range capture {
		tt := float64(n) / 500_000
		capture[n] = 0.2*math.Sin(2*math.Pi*90_000*tt) + rng.NormFloat64()*0.005
	}
	chain := NewReaderChain(3000)
	v, err := chain.Process(capture)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decoded {
		t.Error("decoded a packet out of silence")
	}
	if v.Collision {
		t.Error("collision out of silence")
	}
}

func TestReaderChainValidation(t *testing.T) {
	chain := NewReaderChain(3000)
	if _, err := chain.Process(nil); err == nil {
		t.Error("empty capture accepted")
	}
	bad := NewReaderChain(0)
	if _, err := bad.Process([]float64{1, 2, 3}); err == nil {
		t.Error("zero chip rate accepted")
	}
}
