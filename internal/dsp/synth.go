package dsp

import (
	"math"

	"repro/internal/phy"
	"repro/internal/sim"
)

// Waveform synthesis for the waveform-level experiments: passband and
// baseband-equivalent models of the backscatter uplink and the keyed
// (PIE) downlink, including carrier leakage, the PZT ring effect and
// additive noise.

// ULSynthParams describes one tag's backscatter transmission as seen at
// the reader ADC.
type ULSynthParams struct {
	CarrierHz      float64 // 90 kHz resonance
	Fs             float64 // ADC sample rate (500 kHz in the paper)
	ChipRate       float64 // raw chip rate
	Leakage        float64 // un-modulated carrier amplitude at the RX PZT
	Backscatter    float64 // backscatter amplitude swing (reflective-absorptive)
	NoiseRMS       float64 // additive white noise
	PhaseRad       float64 // backscatter phase relative to leakage
	TimingJitterPC float64 // per-chip boundary jitter, fraction of a chip
}

// SynthesizeUL renders the passband waveform of one chip stream.
//
// This is the block fast path: the carrier comes from a recurrence
// quadrature oscillator instead of a per-sample math.Sin, and the
// jittered chip boundary for each sample is found by a monotone cursor
// instead of the O(log m) binary search the scalar reference performs
// per sample — sample indices only ever increase, so the cursor only
// ever advances. RNG draw order (per-chip jitter first, then per-sample
// noise) is identical to the reference, so seeded outputs line up
// draw-for-draw; synthesizeULRef retains the scalar implementation and
// the property tests pin the two paths together.
func SynthesizeUL(chips phy.Bits, p ULSynthParams, rng *sim.Rand) []float64 {
	spc := p.Fs / p.ChipRate
	n := int(float64(len(chips))*spc) + 1
	out := make([]float64, n)
	bounds := ulChipBounds(chips, spc, p.TimingJitterPC, rng)
	osc := NewQuadOsc(p.CarrierHz, p.Fs, 0)
	high := p.Leakage + p.Backscatter*math.Cos(p.PhaseRad)
	noisy := p.NoiseRMS > 0 && rng != nil
	cur := 0
	for i := 0; i < n; i++ {
		s := float64(i)
		for cur < len(chips)-1 && bounds[cur+1] <= s {
			cur++
		}
		_, carrier := osc.Next()
		amp := p.Leakage
		if chips[cur]&1 == 1 {
			amp = high
		}
		v := amp * carrier
		if noisy {
			v += rng.NormFloat64() * p.NoiseRMS
		}
		out[i] = v
	}
	return out
}

// ulChipBounds precomputes the jittered chip boundaries in samples;
// shared by the fast path and the scalar reference so both consume the
// RNG identically.
func ulChipBounds(chips phy.Bits, spc, jitterPC float64, rng *sim.Rand) []float64 {
	bounds := make([]float64, len(chips)+1)
	for i := 1; i <= len(chips); i++ {
		j := 0.0
		if jitterPC > 0 && rng != nil {
			j = rng.NormFloat64() * jitterPC
		}
		bounds[i] = (float64(i) + j) * spc
	}
	bounds[len(chips)] = float64(len(chips)) * spc
	return bounds
}

// synthesizeULRef is the retained scalar reference implementation of
// SynthesizeUL: per-sample math.Sin carrier and a per-sample binary
// search over the jittered chip boundaries. The property tests pin the
// fast path to it — identical chip selection on jittered streams, and
// waveforms within 1e-9.
func synthesizeULRef(chips phy.Bits, p ULSynthParams, rng *sim.Rand) []float64 {
	spc := p.Fs / p.ChipRate
	n := int(float64(len(chips))*spc) + 1
	out := make([]float64, n)
	bounds := ulChipBounds(chips, spc, p.TimingJitterPC, rng)
	chipAt := func(s float64) byte {
		lo, hi := 0, len(chips)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if bounds[mid+1] <= s {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return chips[lo] & 1
	}
	for i := 0; i < n; i++ {
		t := float64(i) / p.Fs
		carrier := math.Sin(2 * math.Pi * p.CarrierHz * t)
		amp := p.Leakage
		if chipAt(float64(i)) == 1 {
			amp += p.Backscatter * math.Cos(p.PhaseRad)
		}
		v := amp * carrier
		if p.NoiseRMS > 0 && rng != nil {
			v += rng.NormFloat64() * p.NoiseRMS
		}
		out[i] = v
	}
	return out
}

// SynthesizeULBaseband renders the baseband-equivalent envelope of a
// chip stream directly (no carrier), at samplesPerChip resolution. Bulk
// experiments (1,000-packet loss counts) use this fast path; the full
// passband chain is exercised by the integration tests.
func SynthesizeULBaseband(chips phy.Bits, samplesPerChip int, p ULSynthParams, rng *sim.Rand) []float64 {
	out := make([]float64, len(chips)*samplesPerChip)
	// Baseband noise bandwidth is fs' = chipRate * samplesPerChip; keep
	// the same noise density as the passband model.
	noise := p.NoiseRMS * math.Sqrt(float64(samplesPerChip)*p.ChipRate/p.Fs)
	idx := 0
	for _, c := range chips {
		level := p.Leakage
		if c&1 == 1 {
			level += p.Backscatter
		}
		for s := 0; s < samplesPerChip; s++ {
			v := level
			if noise > 0 && rng != nil {
				v += rng.NormFloat64() * noise
			}
			out[idx] = v
			idx++
		}
	}
	return out
}

// DLSynthParams describes the reader's keyed carrier as seen by a tag's
// envelope detector.
type DLSynthParams struct {
	ChipSeconds float64 // duration of one PIE chip
	HighVolts   float64 // envelope during a "high" chip (resonant tone)
	LowLeak     float64 // envelope during a "low" chip (off-resonant tone leakage)
	RingTau     float64 // PZT ring-down time constant (s)
	NoiseRMS    float64
	// ReaderJitterSec models the reader's software PIE modulation
	// imprecision (0.1-0.3 ms per symbol, Sec. 6.3): each chip boundary
	// shifts by a uniform offset up to this magnitude.
	ReaderJitterSec float64
}

// SynthesizeDLEnvelope renders the tag-side envelope of a PIE chip
// stream at the given sample rate, including the exponential ring tail
// after each high-to-low transition.
func SynthesizeDLEnvelope(chips phy.Bits, fs float64, p DLSynthParams, rng *sim.Rand) []float64 {
	spc := p.ChipSeconds * fs
	n := int(float64(len(chips))*spc) + 1
	out := make([]float64, n)
	// Jittered boundaries in samples.
	bounds := make([]float64, len(chips)+1)
	for i := 1; i <= len(chips); i++ {
		j := 0.0
		if p.ReaderJitterSec > 0 && rng != nil {
			j = (rng.Float64()*2 - 1) * p.ReaderJitterSec * fs
		}
		bounds[i] = float64(i)*spc + j
	}
	level := 0.0
	chipIdx := 0
	for i := 0; i < n; i++ {
		for chipIdx < len(chips)-1 && float64(i) >= bounds[chipIdx+1] {
			chipIdx++
		}
		target := p.LowLeak
		if chips[chipIdx]&1 == 1 {
			target = p.HighVolts
		}
		if target >= level {
			level = target // drive rises immediately
		} else {
			// Ring-down: decay toward the low level.
			decay := math.Exp(-1 / (p.RingTau * fs))
			level = target + (level-target)*decay
		}
		v := level
		if p.NoiseRMS > 0 && rng != nil {
			v += rng.NormFloat64() * p.NoiseRMS
		}
		out[i] = v
	}
	return out
}
