package dsp

import "math"

// Quadrature oscillator for the block-processing fast path. The scalar
// reference chain calls math.Sin/math.Cos once per 500 kHz ADC sample;
// at the paper's rates that is the single largest cost in the receive
// path. QuadOsc replaces the per-sample transcendental calls with a
// complex rotation
//
//	(c, s) <- (c·cosΔ − s·sinΔ, s·cosΔ + c·sinΔ)
//
// which is four multiplies and two adds per sample. Rounding error in
// the recurrence drifts the phasor's phase and magnitude by O(n·ε), so
// every oscReseedEvery samples the oscillator renormalizes by
// re-anchoring to the closed form math.Sincos(2π·f·(n/fs) + φ₀) — the
// exact expression the scalar reference path evaluates. Between anchors
// the divergence from the reference is bounded by ~oscReseedEvery·ε
// (≈2e-13), far inside the 1e-9 contract the property tests pin, and
// the periodic exact re-anchor keeps the bound independent of stream
// length. That bound is what lets the fast kernels replace the scalar
// path without moving any experiment table: downstream decisions
// (slicer thresholds, CRC pass/fail, cluster counts) have margins many
// orders of magnitude wider.
type QuadOsc struct {
	freqHz float64
	fs     float64
	phase0 float64
	n      uint64 // absolute sample index of the *next* output
	c, s   float64
	dc, ds float64
}

// oscReseedEvery is the renormalization period in samples. Power of two
// so the modulo folds to a mask-like test; small enough that recurrence
// drift stays ~1e-13, large enough that the Sincos amortizes to noise.
const oscReseedEvery = 1024

// NewQuadOsc returns an oscillator producing cos/sin(2π·freqHz·t + phase0)
// with t = n/fs, starting at sample index 0.
func NewQuadOsc(freqHz, fs, phase0 float64) *QuadOsc {
	o := &QuadOsc{freqHz: freqHz, fs: fs, phase0: phase0}
	o.ds, o.dc = math.Sincos(2 * math.Pi * freqHz / fs)
	o.anchor()
	return o
}

// anchor re-seeds the phasor from the closed form at the current index.
func (o *QuadOsc) anchor() {
	o.s, o.c = math.Sincos(2*math.Pi*o.freqHz*(float64(o.n)/o.fs) + o.phase0)
}

// Next returns cos/sin at the current sample index and advances by one.
func (o *QuadOsc) Next() (cos, sin float64) {
	if o.n%oscReseedEvery == 0 {
		o.anchor()
	}
	cos, sin = o.c, o.s
	o.c, o.s = cos*o.dc-sin*o.ds, sin*o.dc+cos*o.ds
	o.n++
	return cos, sin
}

// Block fills cos[i], sin[i] for the next len(cos) samples. The two
// slices must have equal length; either may be nil to skip that phase.
//
//alloc:hot steady-state mixer kernel; writes only into caller-provided slices
func (o *QuadOsc) Block(cos, sin []float64) {
	n := len(cos)
	if cos == nil {
		n = len(sin)
	}
	for i := 0; i < n; i++ {
		c, s := o.Next()
		if cos != nil {
			cos[i] = c
		}
		if sin != nil {
			sin[i] = s
		}
	}
}

// Skip advances the oscillator by n samples without producing output.
func (o *QuadOsc) Skip(n int) {
	o.n += uint64(n)
	o.anchor()
}

// SampleIndex reports the absolute index of the next sample.
func (o *QuadOsc) SampleIndex() uint64 { return o.n }
