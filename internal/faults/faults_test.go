package faults

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/mac"
	"repro/internal/obs"
)

func moderatePlan() Plan {
	return Plan{
		Name:      "moderate",
		Fades:     &FadeSpec{Burst: Burst{EnterProb: 0.005, MeanSlots: 10}, DepthDB: 6},
		Feedback:  &FeedbackSpec{LossProb: 0.003, CorruptProb: 0.001},
		Brownouts: &BrownoutSpec{Prob: 0.0005, OffSlots: 10},
		ReaderOutages: &OutageSpec{
			Burst: Burst{EnterProb: 0.0003, MeanSlots: 5},
		},
		ClockJitter: &JitterSpec{SlipProb: 0.002},
	}
}

func TestPlanValidate(t *testing.T) {
	if err := moderatePlan().Validate(); err != nil {
		t.Fatalf("moderate plan invalid: %v", err)
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("empty plan invalid: %v", err)
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
	if moderatePlan().Empty() {
		t.Error("moderate plan reported Empty")
	}
	bad := []Plan{
		{Fades: &FadeSpec{Burst: Burst{EnterProb: 1.5, MeanSlots: 5}}},
		{Fades: &FadeSpec{Burst: Burst{EnterProb: 0.1, MeanSlots: 0.5}}},
		{Fades: &FadeSpec{Burst: Burst{EnterProb: 0.1, MeanSlots: 5}, DepthDB: -3}},
		{Feedback: &FeedbackSpec{LossProb: -0.1}},
		{Feedback: &FeedbackSpec{CorruptProb: 2}},
		{Brownouts: &BrownoutSpec{Prob: 0.1, OffSlots: 0}},
		{ReaderOutages: &OutageSpec{Burst: Burst{EnterProb: -1}}},
		{ClockJitter: &JitterSpec{SlipProb: 1.1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	want := moderatePlan()
	want.ReaderOutages.ResetOnRestart = true
	want.Fades.Tags = []int{2, 5}
	if err := SavePlanFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, err := UnmarshalPlan([]byte(`{"feedback":{"loss_prob":3}}`)); err == nil {
		t.Error("invalid plan unmarshalled without error")
	}
	if _, err := UnmarshalPlan([]byte(`{`)); err == nil {
		t.Error("malformed JSON unmarshalled without error")
	}
}

func TestRandomPlanValid(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p := RandomPlan(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("RandomPlan(%d) invalid: %v", seed, err)
		}
		if p.Empty() {
			t.Fatalf("RandomPlan(%d) empty", seed)
		}
	}
	a, b := RandomPlan(7), RandomPlan(7)
	if !reflect.DeepEqual(a, b) {
		t.Error("RandomPlan not deterministic")
	}
}

func TestUlFailDerivedFromDepth(t *testing.T) {
	f := FadeSpec{DepthDB: 6}
	p := f.ulFail()
	if p < 0.6 || p > 0.7 {
		t.Errorf("derived ulFail(6 dB) = %v, want ~0.63", p)
	}
	f.ULFailProb = 0.25
	if f.ulFail() != 0.25 {
		t.Errorf("explicit ULFailProb not honored")
	}
}

// runChaos executes a slot-level run under the plan and returns the
// event stream and final simulator.
func runChaos(t *testing.T, plan Plan, seed uint64, slots int) ([]obs.Event, *mac.SlotSim, *Injector) {
	t.Helper()
	// c7: mixed periods, 10 tags, utilization 0.75. Saturated workloads
	// (c5, U = 1.0) are excluded on purpose: there a rejoiner can need a
	// full Sec. 5.6 eviction cascade to reopen a residue class, so no
	// small resettle bound holds under continued fault pressure.
	pt := mac.Table3Patterns()[6]
	sink := obs.NewMemorySink()
	tr := obs.New(sink)
	tr.Mute(obs.KindSlotOpen, obs.KindSlotClose)
	inj, err := NewInjector(plan, seed, pt.NumTags(), tr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := mac.NewSlotSim(mac.SlotSimConfig{Pattern: pt, Seed: seed, Trace: tr, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(slots)
	return sink.Events(), s, inj
}

func TestInjectorDeterminism(t *testing.T) {
	plan := moderatePlan()
	ev1, s1, inj1 := runChaos(t, plan, 42, 20000)
	ev2, s2, inj2 := runChaos(t, plan, 42, 20000)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event streams diverged: %d vs %d events", len(ev1), len(ev2))
	}
	if !reflect.DeepEqual(inj1.Injected(), inj2.Injected()) {
		t.Fatalf("fault census diverged:\n %v\n %v", inj1.Injected(), inj2.Injected())
	}
	if s1.SlotsRun != s2.SlotsRun || s1.TruthNonEmpty != s2.TruthNonEmpty ||
		s1.TruthCollisions != s2.TruthCollisions {
		t.Fatal("simulator counters diverged")
	}
	if inj1.InjectedTotal() == 0 {
		t.Fatal("moderate plan injected nothing in 20k slots")
	}
	// A different seed must give a different fault sequence.
	ev3, _, _ := runChaos(t, plan, 43, 20000)
	if reflect.DeepEqual(ev1, ev3) {
		t.Fatal("different seeds produced identical event streams")
	}
}

func TestInjectorBeginSlotOrderPanics(t *testing.T) {
	inj, err := NewInjector(moderatePlan(), 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.BeginSlot(0)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order BeginSlot did not panic")
		}
	}()
	inj.BeginSlot(5)
}

func TestChaosInvariants(t *testing.T) {
	// The acceptance bar: the protocol invariants hold under at least
	// three distinct randomized fault plans (run this under -race).
	for _, seed := range []uint64{1, 2, 3, 4} {
		seed := seed
		t.Run(RandomPlan(seed).Name, func(t *testing.T) {
			plan := RandomPlan(seed)
			events, _, inj := runChaos(t, plan, seed, 30000)
			if inj.InjectedTotal() == 0 {
				t.Fatal("random plan injected nothing")
			}
			if err := CheckInvariants(events, InvariantConfig{}); err != nil {
				t.Fatalf("invariants: %v\ncensus: %s", err, inj.CensusString())
			}
			rep := Analyze(events)
			if rep.DuplicateSlotViolations != 0 {
				t.Errorf("duplicate-slot violations: %d", rep.DuplicateSlotViolations)
			}
			if rep.Settles == 0 {
				t.Error("no settles under chaos — network never formed")
			}
			if rep.Brownouts > 0 && rep.Rejoins == 0 {
				t.Error("brownouts injected but no rejoins observed")
			}
			t.Logf("%s", rep.String())
		})
	}
}

func TestRecoveryReportSynthetic(t *testing.T) {
	// A hand-built trace: tag 1 settles, browns out at slot 100 (fault),
	// rejoins at 110, re-settles at 126 (4 periods of 4); tag 2 settles
	// conflicting with tag 1's schedule (violation).
	events := []obs.Event{
		{Kind: obs.KindTagSettle, Slot: 10, TID: 1, Period: 4, Offset: 2},
		{Kind: obs.KindFaultInject, Slot: 100, TID: 1, Detail: "brownout", Value: 10},
		{Kind: obs.KindTagUnsettle, Slot: 104, TID: 1, Detail: "missed"},
		{Kind: obs.KindTagRejoin, Slot: 110, TID: 1, Period: 4},
		{Kind: obs.KindTagSettle, Slot: 126, TID: 1, Period: 4, Offset: 2},
		{Kind: obs.KindTagSettle, Slot: 130, TID: 2, Period: 8, Offset: 6},
	}
	rep := Analyze(events)
	if rep.Brownouts != 1 || rep.Rejoins != 1 {
		t.Fatalf("brownouts=%d rejoins=%d", rep.Brownouts, rep.Rejoins)
	}
	if len(rep.Resettles) != 1 || rep.Resettles[0].ResettleSlot != 126 {
		t.Fatalf("resettles = %+v", rep.Resettles)
	}
	if rep.Resettles[0].Periods != 4 {
		t.Errorf("resettle periods = %v, want 4", rep.Resettles[0].Periods)
	}
	// 6 mod 4 == 2: tag 2's schedule collides with tag 1's.
	if rep.DuplicateSlotViolations != 1 {
		t.Errorf("duplicate violations = %d, want 1", rep.DuplicateSlotViolations)
	}
	if rep.ReconvergeSlots != 30 { // last change 130, last fault 100
		t.Errorf("reconverge = %d, want 30", rep.ReconvergeSlots)
	}
	if err := CheckInvariants(events, InvariantConfig{}); err == nil {
		t.Error("conflicting settle passed CheckInvariants")
	}
	// Unrecovered arc: brownout + rejoin, trace ends before settle.
	open := []obs.Event{
		{Kind: obs.KindFaultInject, Slot: 5, TID: 3, Detail: "brownout", Value: 2},
		{Kind: obs.KindTagRejoin, Slot: 8, TID: 3, Period: 8},
	}
	rep = Analyze(open)
	if rep.Unrecovered != 1 {
		t.Errorf("unrecovered = %d, want 1", rep.Unrecovered)
	}
	if err := CheckInvariants(open, InvariantConfig{}); err != nil {
		t.Errorf("open window at horizon flagged: %v", err)
	}
}

func TestInvariantBounds(t *testing.T) {
	// Eviction with no unsettle past the bound must trip.
	events := []obs.Event{
		{Kind: obs.KindTagEvict, Slot: 10, TID: 1},
		{Kind: obs.KindSlotClose, Slot: 10 + 16*32 + 1},
	}
	if err := CheckInvariants(events, InvariantConfig{}); err == nil {
		t.Error("unterminated eviction passed")
	}
	// Same trace with the unsettle in time passes.
	ok := []obs.Event{
		{Kind: obs.KindTagEvict, Slot: 10, TID: 1},
		{Kind: obs.KindTagUnsettle, Slot: 50, TID: 1, Detail: "evicted"},
		{Kind: obs.KindSlotClose, Slot: 10 + 16*32 + 1},
	}
	if err := CheckInvariants(ok, InvariantConfig{}); err != nil {
		t.Errorf("terminated eviction flagged: %v", err)
	}
	// Rejoin with no settle past ResettleBoundPeriods*period trips.
	late := []obs.Event{
		{Kind: obs.KindTagRejoin, Slot: 0, TID: 2, Period: 4},
		{Kind: obs.KindSlotClose, Slot: 4*64 + 16*32 + 1},
	}
	if err := CheckInvariants(late, InvariantConfig{}); err == nil {
		t.Error("unrecovered rejoin past bound passed")
	}
}

func TestFadeDepthHook(t *testing.T) {
	plan := Plan{Fades: &FadeSpec{Burst: Burst{EnterProb: 1, MeanSlots: 1e9}, DepthDB: 7}}
	inj, err := NewInjector(plan, 9, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := inj.FadeDepthDB(1); d != 0 {
		t.Errorf("fade depth before first slot = %v", d)
	}
	inj.BeginSlot(0)
	for tid := 1; tid <= 3; tid++ {
		if d := inj.FadeDepthDB(tid); d != 7 {
			t.Errorf("tid %d fade depth = %v, want 7", tid, d)
		}
	}
	if d := inj.FadeDepthDB(99); d != 0 {
		t.Errorf("out-of-range tid depth = %v", d)
	}
}
