package faults

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mac"
	"repro/internal/obs"
)

// Resettle tracks one browned-out tag's road back: the slot it went
// dark, the slot it rejoined as a newcomer, and the slot the reader
// re-accepted its schedule. Periods expresses the rejoin->resettle
// latency in units of the tag's own period, the natural recovery bound
// (a tag gets roughly one contention opportunity per period).
type Resettle struct {
	TID          int
	BrownoutSlot int
	RejoinSlot   int
	ResettleSlot int // -1 while unrecovered
	Periods      float64
}

// RecoveryReport aggregates the robustness metrics the chaos sweeps
// report, computed purely from an obs event stream (Analyze).
type RecoveryReport struct {
	// Slots is the trace horizon (highest slot seen + 1).
	Slots int
	// Injected is the fault census keyed "kind:detail".
	Injected map[string]int
	// LastFaultSlot is the slot of the final injected fault (-1 if none).
	LastFaultSlot int

	// Settles / Unsettles / Evictions count ledger transitions.
	Settles   int
	Unsettles int
	Evictions int
	// SettledChurn counts every change to the settled set (settles of
	// new tids, re-settles to a different schedule, unsettles) — the
	// paper-style stability metric under fault pressure.
	SettledChurn int
	// FinalSettled is the settled-set size at end of trace.
	FinalSettled int
	// DuplicateSlotViolations counts settle events whose schedule
	// conflicted with an already-settled other tag — zero when the
	// no-two-settled-tags-share-a-slot invariant held throughout.
	DuplicateSlotViolations int
	// ReconvergeSlots is the time-to-reconverge: slots from the last
	// injected fault to the last settled-set change (0 when the set was
	// already stable when the final fault hit).
	ReconvergeSlots int

	// Brownouts / Rejoins count the tag power-cycle path.
	Brownouts int
	Rejoins   int
	// Resettles tracks every brownout->rejoin->resettle arc.
	Resettles []Resettle
	// MaxResettlePeriods is the worst rejoin->resettle latency in
	// periods; Unrecovered counts tags still dark or unsettled at end.
	MaxResettlePeriods float64
	Unrecovered        int
}

// Analyze replays an obs event stream and computes the recovery
// metrics. The stream is what a slot-level chaos run emits into a
// MemorySink: fault_inject/fault_clear from the Injector, tag_settle /
// tag_unsettle / tag_evict from the reader protocol, tag_rejoin from
// the simulator.
func Analyze(events []obs.Event) RecoveryReport {
	rep := RecoveryReport{Injected: make(map[string]int), LastFaultSlot: -1}
	settled := make(map[int]mac.Assignment)
	lastChange := -1
	// In-flight brownout arcs per tid.
	type arc struct {
		brownoutSlot int
		rejoinSlot   int // -1 until rejoined
		period       int
	}
	open := make(map[int]*arc)

	for _, ev := range events {
		if ev.Slot >= rep.Slots {
			rep.Slots = ev.Slot + 1
		}
		switch ev.Kind {
		case obs.KindFaultInject:
			rep.Injected[string(ev.Kind)+":"+ev.Detail]++
			rep.LastFaultSlot = ev.Slot
			if ev.Detail == "reader_reset" && len(settled) > 0 {
				// The restarted reader lost its ledger; every belief
				// vanishing at once is settled-set churn.
				rep.SettledChurn += len(settled)
				settled = make(map[int]mac.Assignment)
				lastChange = ev.Slot
			}
			if ev.Detail == "brownout" {
				rep.Brownouts++
				// A re-brownout before resettling restarts the arc; the
				// abandoned one stays unrecovered only if the trace ends
				// here, which the final sweep below handles.
				open[ev.TID] = &arc{brownoutSlot: ev.Slot, rejoinSlot: -1}
			}
		case obs.KindFaultClear:
			rep.Injected[string(ev.Kind)+":"+ev.Detail]++
		case obs.KindTagRejoin:
			rep.Rejoins++
			if a := open[ev.TID]; a != nil && a.rejoinSlot < 0 {
				a.rejoinSlot = ev.Slot
				a.period = ev.Period
			}
		case obs.KindTagSettle:
			rep.Settles++
			cand := mac.Assignment{Period: mac.Period(ev.Period), Offset: ev.Offset}
			// The same tid re-settling replaces its old belief before the
			// conflict check — only distinct tags sharing a slot violate.
			prev, had := settled[ev.TID]
			delete(settled, ev.TID)
			for _, other := range settled {
				if cand.Conflicts(other) {
					rep.DuplicateSlotViolations++
					break
				}
			}
			settled[ev.TID] = cand
			if !had || prev != cand {
				rep.SettledChurn++
				lastChange = ev.Slot
			}
			if a := open[ev.TID]; a != nil && a.rejoinSlot >= 0 {
				r := Resettle{TID: ev.TID, BrownoutSlot: a.brownoutSlot,
					RejoinSlot: a.rejoinSlot, ResettleSlot: ev.Slot}
				if a.period > 0 {
					r.Periods = float64(ev.Slot-a.rejoinSlot) / float64(a.period)
				}
				rep.Resettles = append(rep.Resettles, r)
				if r.Periods > rep.MaxResettlePeriods {
					rep.MaxResettlePeriods = r.Periods
				}
				delete(open, ev.TID)
			}
		case obs.KindTagUnsettle:
			rep.Unsettles++
			if _, had := settled[ev.TID]; had {
				delete(settled, ev.TID)
				rep.SettledChurn++
				lastChange = ev.Slot
			}
		case obs.KindTagEvict:
			rep.Evictions++
		}
	}

	rep.FinalSettled = len(settled)
	if rep.LastFaultSlot >= 0 && lastChange > rep.LastFaultSlot {
		rep.ReconvergeSlots = lastChange - rep.LastFaultSlot
	}
	// Arcs still open at end of trace never recovered.
	for tid, a := range open {
		rep.Unrecovered++
		rep.Resettles = append(rep.Resettles, Resettle{TID: tid,
			BrownoutSlot: a.brownoutSlot, RejoinSlot: a.rejoinSlot, ResettleSlot: -1})
	}
	sort.Slice(rep.Resettles, func(i, j int) bool {
		if rep.Resettles[i].BrownoutSlot != rep.Resettles[j].BrownoutSlot {
			return rep.Resettles[i].BrownoutSlot < rep.Resettles[j].BrownoutSlot
		}
		return rep.Resettles[i].TID < rep.Resettles[j].TID
	})
	return rep
}

// String renders the report deterministically for CLI output.
func (r RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery: slots=%d settled=%d churn=%d reconverge=%d slots after last fault\n",
		r.Slots, r.FinalSettled, r.SettledChurn, r.ReconvergeSlots)
	fmt.Fprintf(&b, "  ledger: settles=%d unsettles=%d evictions=%d duplicate_slot_violations=%d\n",
		r.Settles, r.Unsettles, r.Evictions, r.DuplicateSlotViolations)
	fmt.Fprintf(&b, "  power:  brownouts=%d rejoins=%d resettled=%d unrecovered=%d max_resettle=%.1f periods\n",
		r.Brownouts, r.Rejoins, len(r.Resettles)-r.Unrecovered, r.Unrecovered, r.MaxResettlePeriods)
	keys := make([]string, 0, len(r.Injected))
	for k := range r.Injected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "  faults:")
	if len(keys) == 0 {
		fmt.Fprintf(&b, " none")
	}
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, r.Injected[k])
	}
	return b.String()
}
