package faults

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sim"
)

// UnmarshalPlan parses and eagerly validates a JSON plan, so a typo'd
// probability fails at load time, not a million slots into a sweep.
func UnmarshalPlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// LoadPlanFile reads a plan from a JSON file.
func LoadPlanFile(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: read plan: %w", err)
	}
	return UnmarshalPlan(data)
}

// SavePlanFile writes the plan as indented JSON.
func SavePlanFile(path string, p Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RandomPlan derives a randomized but recoverable chaos plan from a
// seed: every parameter is drawn from a moderate range (fault pressure
// high enough to exercise the recovery paths, low enough that the
// protocol invariants — eviction terminates, browned-out tags re-settle
// — remain satisfiable). The invariant suite runs these.
func RandomPlan(seed uint64) Plan {
	r := sim.NewRand(seed ^ 0x9A7)
	uniform := func(lo, hi float64) float64 { return lo + r.Float64()*(hi-lo) }
	p := Plan{
		Name: fmt.Sprintf("random-%d", seed),
		Fades: &FadeSpec{
			Burst:   Burst{EnterProb: uniform(0.002, 0.01), MeanSlots: uniform(5, 20)},
			DepthDB: uniform(3, 9),
		},
		Feedback: &FeedbackSpec{
			LossProb:    uniform(0.001, 0.005),
			CorruptProb: uniform(0.0005, 0.002),
		},
		Brownouts: &BrownoutSpec{
			Prob:     uniform(0.0002, 0.001),
			OffSlots: uniform(5, 20),
		},
		ReaderOutages: &OutageSpec{
			Burst:          Burst{EnterProb: uniform(0.0002, 0.0005), MeanSlots: uniform(3, 10)},
			ResetOnRestart: r.Bool(0.5),
		},
		ClockJitter: &JitterSpec{
			SlipProb: uniform(0.0005, 0.003),
		},
	}
	return p
}
