package faults

import (
	"fmt"
	"sort"

	"repro/internal/mac"
	"repro/internal/obs"
)

// InvariantConfig bounds the protocol-recovery invariants. The zero
// value resolves to defaults sized for the paper's deployment (max
// period 32, NackThreshold 3).
type InvariantConfig struct {
	// EvictBoundSlots bounds how long after a tag_evict the victim's
	// unsettle may arrive (the eviction-terminates invariant). The
	// default of 16*32 covers NackThreshold expected-slot misses at the
	// longest period with wide margin.
	EvictBoundSlots int
	// ResettleBoundPeriods bounds a rejoined tag's return to SETTLE, in
	// units of its own period. Default 64: a rejoiner gets one
	// contention opportunity per period, and under moderate fault
	// pressure the EMPTY-gated join succeeds within a few tries. The
	// deadline also absorbs one EvictBoundSlots allowance, because a
	// short-period rejoiner whose residue class was taken during its
	// darkness must wait out a full eviction round (the victim shows up
	// on schedule NackThreshold times at up to the longest period)
	// before any offset becomes feasible.
	ResettleBoundPeriods int
}

func (c InvariantConfig) withDefaults() InvariantConfig {
	if c.EvictBoundSlots <= 0 {
		c.EvictBoundSlots = 16 * 32
	}
	if c.ResettleBoundPeriods <= 0 {
		c.ResettleBoundPeriods = 64
	}
	return c
}

// InvariantError pinpoints the first violated invariant.
type InvariantError struct {
	Invariant string
	Slot      int
	TID       int
	Msg       string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("faults: invariant %q violated at slot %d (tid %d): %s",
		e.Invariant, e.Slot, e.TID, e.Msg)
}

// CheckInvariants replays an obs event stream and verifies the
// protocol's recovery invariants under fault injection:
//
//  1. no-duplicate-slot: no two settled tags ever hold conflicting
//     (period, offset) schedules — the ledger plus future-collision
//     veto keep the settled set collision-free even while faults churn
//     it.
//  2. eviction-terminates: every tag_evict is followed by the victim's
//     unsettle within EvictBoundSlots (unless the trace ends first —
//     an eviction still in flight at the horizon is not a violation).
//  3. bounded-resettle: every browned-out tag's rejoin is followed by
//     a settle within ResettleBoundPeriods of its own period (again,
//     windows still open at the horizon are skipped; a re-brownout
//     restarts the window).
func CheckInvariants(events []obs.Event, cfg InvariantConfig) error {
	cfg = cfg.withDefaults()
	settled := make(map[int]mac.Assignment)
	evictDeadline := make(map[int]int) // tid -> slot bound
	type window struct {
		rejoinSlot int
		deadline   int
	}
	resettle := make(map[int]*window)
	horizon := 0

	for _, ev := range events {
		if ev.Slot > horizon {
			horizon = ev.Slot
		}
		switch ev.Kind {
		case obs.KindTagSettle:
			cand := mac.Assignment{Period: mac.Period(ev.Period), Offset: ev.Offset}
			delete(settled, ev.TID)
			for _, tid := range sortedTIDs(settled) {
				if other := settled[tid]; cand.Conflicts(other) {
					return &InvariantError{Invariant: "no-duplicate-slot", Slot: ev.Slot, TID: ev.TID,
						Msg: fmt.Sprintf("schedule (p=%d,o=%d) conflicts with settled tid %d (p=%d,o=%d)",
							ev.Period, ev.Offset, tid, other.Period, other.Offset)}
				}
			}
			settled[ev.TID] = cand
			delete(resettle, ev.TID)
		case obs.KindTagUnsettle:
			delete(settled, ev.TID)
			delete(evictDeadline, ev.TID)
		case obs.KindTagEvict:
			if _, pending := evictDeadline[ev.TID]; !pending {
				evictDeadline[ev.TID] = ev.Slot + cfg.EvictBoundSlots
			}
		case obs.KindFaultInject:
			switch ev.Detail {
			case "brownout":
				// Darkness voids any open resettle window; a new one
				// opens at the rejoin.
				delete(resettle, ev.TID)
			case "reader_reset":
				// The restarted reader lost its ledger: settled beliefs,
				// in-flight evictions and open resettle windows all
				// restart from scratch (RESET re-randomizes every tag).
				settled = make(map[int]mac.Assignment)
				evictDeadline = make(map[int]int)
				resettle = make(map[int]*window)
			}
		case obs.KindTagRejoin:
			bound := cfg.ResettleBoundPeriods * ev.Period
			if bound <= 0 {
				bound = cfg.ResettleBoundPeriods
			}
			bound += cfg.EvictBoundSlots
			resettle[ev.TID] = &window{rejoinSlot: ev.Slot, deadline: ev.Slot + bound}
		}

		// Deadlines are checked against the advancing slot clock, so a
		// violation is reported at the first event past the bound; tids
		// are visited sorted so the reported victim is deterministic
		// when several deadlines expire on the same event.
		for _, tid := range sortedTIDs(evictDeadline) {
			if ev.Slot > evictDeadline[tid] {
				return &InvariantError{Invariant: "eviction-terminates", Slot: ev.Slot, TID: tid,
					Msg: fmt.Sprintf("victim not unsettled within %d slots of eviction", cfg.EvictBoundSlots)}
			}
		}
		for _, tid := range sortedTIDs(resettle) {
			if w := resettle[tid]; ev.Slot > w.deadline {
				return &InvariantError{Invariant: "bounded-resettle", Slot: ev.Slot, TID: tid,
					Msg: fmt.Sprintf("not settled within %d periods of rejoin at slot %d",
						cfg.ResettleBoundPeriods, w.rejoinSlot)}
			}
		}
	}
	// Deadlines still pending at the horizon are not violations: the
	// trace simply ended before the window elapsed.
	_ = horizon
	return nil
}

// sortedTIDs returns the keys of a tid-keyed map in ascending order, so
// invariant violations are attributed deterministically regardless of
// map iteration order.
func sortedTIDs[V any](m map[int]V) []int {
	tids := make([]int, 0, len(m))
	for tid := range m {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	return tids
}
