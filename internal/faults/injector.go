package faults

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/energy"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Injector compiles a Plan into a running fault environment. It
// implements mac.FaultSource for the slot-level simulator and exposes
// FadeDepthDB for the event-level channel hook. All randomness comes
// from per-process forks of one seed, and BeginSlot draws in a fixed
// slot/tag order, so the full fault sequence is a pure function of
// (Plan, seed, tag count) — the determinism the fleet's chaos sweeps
// rely on.
type Injector struct {
	plan    Plan
	numTags int
	tr      *obs.Tracer

	// One independent stream per fault process, so adding a process to
	// a plan never perturbs the draws of the others.
	fadeRNG, fbRNG, brownRNG, outageRNG, jitterRNG *sim.Rand

	fadeMask, fbMask, brownMask, jitterMask []bool

	// Per-tag fade burst state: 0 = clear, else slot the fade started.
	fadeSince []int
	// Outage burst state.
	outageActive bool
	outageSince  int
	pendingReset bool

	nextSlot int
	counts   map[string]int
}

// NewInjector compiles the plan for a population of numTags tags. The
// tracer may be nil; fault events are then not recorded (the injection
// itself is unaffected).
func NewInjector(plan Plan, seed uint64, numTags int, tr *obs.Tracer) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if numTags < 1 {
		return nil, fmt.Errorf("faults: numTags %d < 1", numTags)
	}
	root := sim.NewRand(seed ^ 0xFA17)
	inj := &Injector{
		plan:      plan,
		numTags:   numTags,
		tr:        tr,
		fadeRNG:   root.Fork(1),
		fbRNG:     root.Fork(2),
		brownRNG:  root.Fork(3),
		outageRNG: root.Fork(4),
		jitterRNG: root.Fork(5),
		fadeSince: make([]int, numTags),
		counts:    make(map[string]int),
	}
	if plan.Fades != nil {
		inj.fadeMask = tagSet(plan.Fades.Tags, numTags)
	}
	if plan.Feedback != nil {
		inj.fbMask = tagSet(plan.Feedback.Tags, numTags)
	}
	if plan.Brownouts != nil {
		inj.brownMask = tagSet(plan.Brownouts.Tags, numTags)
	}
	if plan.ClockJitter != nil {
		inj.jitterMask = tagSet(plan.ClockJitter.Tags, numTags)
	}
	return inj, nil
}

// Plan returns the compiled plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// emit records a fault event (nil-safe via the tracer).
func (inj *Injector) emit(ev obs.Event) {
	inj.counts[string(ev.Kind)+":"+ev.Detail]++
	if inj.tr.Enabled() {
		inj.tr.Emit(ev)
	}
}

// BeginSlot advances every fault process by one slot and returns the
// slot's fault environment. Slots must be presented in order (the
// simulator guarantees this); a gap or repeat indicates a harness bug.
func (inj *Injector) BeginSlot(slot int) mac.SlotFaults {
	if slot != inj.nextSlot {
		//lint:allow panic-hygiene slot-ordering invariant: callers drive BeginSlot monotonically by construction
		panic(fmt.Sprintf("faults: BeginSlot(%d) out of order, want %d", slot, inj.nextSlot))
	}
	inj.nextSlot++

	var fs mac.SlotFaults

	// Reader outage first: a dark slot still advances the burst
	// processes (the physical fades don't pause for the reader), but
	// the per-tag faults below are moot while no beacon exists.
	if o := inj.plan.ReaderOutages; o != nil && o.active() {
		if inj.outageActive {
			if inj.outageRNG.Bool(o.exitProb()) {
				inj.outageActive = false
				inj.emit(obs.Event{Kind: obs.KindFaultClear, Slot: slot, Detail: "outage_end",
					Value: float64(slot - inj.outageSince)})
				if o.ResetOnRestart {
					inj.pendingReset = true
				}
			}
		} else if inj.outageRNG.Bool(o.EnterProb) {
			inj.outageActive = true
			inj.outageSince = slot
			inj.emit(obs.Event{Kind: obs.KindFaultInject, Slot: slot, Detail: "outage_start"})
		}
	}
	fs.ReaderDown = inj.outageActive
	if !inj.outageActive && inj.pendingReset {
		fs.ReaderReset = true
		inj.pendingReset = false
		// The restarted reader lost its ledger: replayed analyses clear
		// their settled model on this event.
		inj.emit(obs.Event{Kind: obs.KindFaultInject, Slot: slot, Detail: "reader_reset"})
	}

	// Fades: per-tag Markov bursts, advanced in tag order.
	if f := inj.plan.Fades; f != nil && f.active() {
		ulFail := f.ulFail()
		for i := 0; i < inj.numTags; i++ {
			if !inj.fadeMask[i] {
				continue
			}
			if inj.fadeSince[i] != 0 {
				if inj.fadeRNG.Bool(f.exitProb()) {
					inj.emit(obs.Event{Kind: obs.KindFaultClear, Slot: slot, TID: i + 1,
						Detail: "fade_end", Value: float64(slot - (inj.fadeSince[i] - 1))})
					inj.fadeSince[i] = 0
				}
			} else if inj.fadeRNG.Bool(f.EnterProb) {
				inj.fadeSince[i] = slot + 1 // +1 so slot 0 is representable
				inj.emit(obs.Event{Kind: obs.KindFaultInject, Slot: slot, TID: i + 1,
					Detail: "fade_start", Value: f.DepthDB})
			}
			if inj.fadeSince[i] != 0 {
				if ulFail > 0 {
					if fs.ULFailProb == nil {
						fs.ULFailProb = make([]float64, inj.numTags)
					}
					fs.ULFailProb[i] = ulFail
				}
				if f.BeaconLossProb > 0 && inj.fadeRNG.Bool(f.BeaconLossProb) {
					if fs.BeaconLoss == nil {
						fs.BeaconLoss = make([]bool, inj.numTags)
					}
					fs.BeaconLoss[i] = true
					inj.emit(obs.Event{Kind: obs.KindFaultInject, Slot: slot, TID: i + 1,
						Detail: "beacon_loss"})
				}
			}
		}
	}

	// Feedback: memoryless loss / ACK corruption per tag.
	if f := inj.plan.Feedback; f != nil {
		for i := 0; i < inj.numTags; i++ {
			if !inj.fbMask[i] {
				continue
			}
			if f.LossProb > 0 && inj.fbRNG.Bool(f.LossProb) {
				if fs.BeaconLoss == nil {
					fs.BeaconLoss = make([]bool, inj.numTags)
				}
				fs.BeaconLoss[i] = true
				inj.emit(obs.Event{Kind: obs.KindFaultInject, Slot: slot, TID: i + 1,
					Detail: "beacon_loss"})
			}
			if f.CorruptProb > 0 && inj.fbRNG.Bool(f.CorruptProb) {
				if fs.CorruptACK == nil {
					fs.CorruptACK = make([]bool, inj.numTags)
				}
				fs.CorruptACK[i] = true
				inj.emit(obs.Event{Kind: obs.KindFaultInject, Slot: slot, TID: i + 1,
					Detail: "ack_corrupt"})
			}
		}
	}

	// Brownouts: forced drains with geometric off-times.
	if b := inj.plan.Brownouts; b != nil && b.Prob > 0 {
		for i := 0; i < inj.numTags; i++ {
			if !inj.brownMask[i] {
				continue
			}
			if inj.brownRNG.Bool(b.Prob) {
				off := 1
				if b.OffSlots > 1 {
					// Geometric with mean OffSlots, support >= 1.
					off = 1 + int(math.Floor(inj.brownRNG.ExpFloat64()*(b.OffSlots-1)))
				}
				if fs.Brownout == nil {
					fs.Brownout = make([]bool, inj.numTags)
					fs.RejoinDelay = make([]int, inj.numTags)
				}
				fs.Brownout[i] = true
				fs.RejoinDelay[i] = off
				inj.emit(obs.Event{Kind: obs.KindFaultInject, Slot: slot, TID: i + 1,
					Detail: "brownout", Value: float64(off)})
			}
		}
	}

	// Clock jitter: memoryless slot-boundary slips.
	if j := inj.plan.ClockJitter; j != nil && j.SlipProb > 0 {
		for i := 0; i < inj.numTags; i++ {
			if !inj.jitterMask[i] {
				continue
			}
			if inj.jitterRNG.Bool(j.SlipProb) {
				if fs.SlipSlot == nil {
					fs.SlipSlot = make([]bool, inj.numTags)
				}
				fs.SlipSlot[i] = true
				inj.emit(obs.Event{Kind: obs.KindFaultInject, Slot: slot, TID: i + 1,
					Detail: "jitter_slip"})
			}
		}
	}

	return fs
}

// FadeDepthDB returns the current extra path loss for a 1-based tag id
// — the event-level channel hook (biw.Channel.GainOffsetDB). Zero when
// the tag is not fading.
func (inj *Injector) FadeDepthDB(tid int) float64 {
	i := tid - 1
	if i < 0 || i >= inj.numTags || inj.plan.Fades == nil {
		return 0
	}
	if inj.fadeSince[i] != 0 {
		return inj.plan.Fades.DepthDB
	}
	return 0
}

// OutageActive reports whether a reader carrier outage is in progress
// (event-level runs toggle the carrier off this).
func (inj *Injector) OutageActive() bool { return inj.outageActive }

// Injected returns the cumulative fault census keyed "kind:detail",
// e.g. "fault_inject:brownout". The map is a copy.
func (inj *Injector) Injected() map[string]int {
	out := make(map[string]int, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

// InjectedTotal sums every injected fault (clears excluded).
func (inj *Injector) InjectedTotal() int {
	n := 0
	for k, v := range inj.counts {
		if len(k) > len(obs.KindFaultInject) && k[:len(obs.KindFaultInject)] == string(obs.KindFaultInject) {
			n += v
		}
	}
	return n
}

// CensusString renders the fault census deterministically (sorted keys)
// for reports.
func (inj *Injector) CensusString() string {
	keys := make([]string, 0, len(inj.counts))
	for k := range inj.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, inj.counts[k])
	}
	return s
}

// ForceBrownout drains c past empty so the withdrawal fails and the
// capacitor's own brownout trace event fires — the event-level
// injection path for BrownoutSpec (the slot-level path goes through
// mac.SlotFaults.Brownout instead).
func ForceBrownout(c *energy.Supercap) {
	// Demand strictly more than the stored energy over one second.
	p := c.EnergyJoules() + 1e-9
	c.Withdraw(p, 1)
}
