// Package faults is the deterministic fault-injection layer: a
// seedable engine that composes hostile-channel fault processes —
// transient per-tag fades with Markov burst durations, downlink
// feedback loss and corruption, mid-slot supercapacitor brownouts,
// reader carrier dropouts, and clock jitter on slot boundaries — behind
// a single Plan that compiles into a mac.FaultSource for the slot-level
// simulator and into channel/energy hooks for the event-level system.
//
// The design contract mirrors the fleet pool's: determinism at scale.
// An Injector's entire fault sequence is a pure function of (Plan,
// seed, tag count); every random draw happens in a fixed slot/tag
// order, so chaos sweeps are bit-identical across runs and worker
// counts. Every injected fault is emitted as an obs.KindFaultInject
// trace event, which is what the recovery analysis (RecoveryReport) and
// the protocol-invariant checks consume.
package faults

import (
	"fmt"
	"math"
)

// Burst is a two-state Markov (Gilbert-Elliott) process at slot
// granularity: each slot outside a burst enters one with probability
// EnterProb; inside, the burst ends each slot with probability
// 1/MeanSlots, so burst lengths are geometric with the given mean —
// the bursty multi-dB fades and interference windows reported for
// intra-vehicle energy-harvesting links.
type Burst struct {
	// EnterProb is the per-slot probability of starting a burst.
	EnterProb float64 `json:"enter_prob"`
	// MeanSlots is the mean burst duration in slots (>= 1).
	MeanSlots float64 `json:"mean_slots"`
}

func (b Burst) validate(what string) error {
	if b.EnterProb < 0 || b.EnterProb > 1 {
		return fmt.Errorf("faults: %s enter_prob %v outside [0, 1]", what, b.EnterProb)
	}
	if b.EnterProb > 0 && b.MeanSlots < 1 {
		return fmt.Errorf("faults: %s mean_slots %v < 1", what, b.MeanSlots)
	}
	return nil
}

// active reports whether the process injects anything at all.
func (b Burst) active() bool { return b.EnterProb > 0 }

// exitProb is the per-slot probability an ongoing burst ends.
func (b Burst) exitProb() float64 {
	if b.MeanSlots <= 1 {
		return 1
	}
	return 1 / b.MeanSlots
}

// FadeSpec injects transient per-tag channel fades: while a tag's fade
// burst is active, its uplink SNR drops by DepthDB, solo uplinks fail
// decode with ULFailProb, and beacons are additionally lost with
// BeaconLossProb.
type FadeSpec struct {
	Burst
	// DepthDB is the SNR penalty while faded; it drives the event-level
	// channel-gain hook and, when ULFailProb is zero, derives it.
	DepthDB float64 `json:"depth_db,omitempty"`
	// ULFailProb is the probability a solo uplink fails decode while
	// the fade is active; 0 derives 1 - exp(-DepthDB/6) — roughly 40%
	// loss at 3 dB, 80% at 9 dB, matching the steep PER cliff of the
	// FM0 link budget.
	ULFailProb float64 `json:"ul_fail_prob,omitempty"`
	// BeaconLossProb is the extra per-slot downlink loss while faded
	// (the downlink has far more margin, so the default is 0).
	BeaconLossProb float64 `json:"beacon_loss_prob,omitempty"`
	// Tags restricts the fault to these 1-based tag ids; empty = all.
	Tags []int `json:"tags,omitempty"`
}

// ulFail resolves the effective decode-failure probability.
func (f FadeSpec) ulFail() float64 {
	if f.ULFailProb > 0 {
		return f.ULFailProb
	}
	if f.DepthDB > 0 {
		return 1 - math.Exp(-f.DepthDB/6)
	}
	return 0
}

// FeedbackSpec injects memoryless downlink feedback faults: whole-beacon
// loss and single-flag corruption (the beacon has no CRC, Sec. 4.2, so
// a flipped ACK bit passes the decoder undetected).
type FeedbackSpec struct {
	// LossProb is the per-slot per-tag probability the beacon is lost.
	LossProb float64 `json:"loss_prob,omitempty"`
	// CorruptProb is the per-slot per-tag probability the received ACK
	// flag is inverted.
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	// Tags restricts the fault to these 1-based tag ids; empty = all.
	Tags []int `json:"tags,omitempty"`
}

// BrownoutSpec injects mid-slot supercapacitor drains: the afflicted
// tag loses its response on air and all volatile protocol state, stays
// dark while it recharges, then rejoins as a newcomer — the weak-far-tag
// duty-cycle starvation path.
type BrownoutSpec struct {
	// Prob is the per-slot per-tag probability of a forced drain.
	Prob float64 `json:"prob"`
	// OffSlots is the mean number of whole slots the tag stays dark
	// (geometric, >= 1); it models the LTH->HTH recharge time.
	OffSlots float64 `json:"off_slots"`
	// Tags restricts the fault to these 1-based tag ids; empty = all.
	Tags []int `json:"tags,omitempty"`
}

// OutageSpec injects reader carrier dropouts: while the outage burst is
// active no beacon is broadcast, tags migrate on their beacon-loss
// timers, and browned-out tags cannot recharge.
type OutageSpec struct {
	Burst
	// ResetOnRestart makes the recovering reader broadcast RESET (a
	// restart that lost the ledger) instead of resuming its belief.
	ResetOnRestart bool `json:"reset_on_restart,omitempty"`
}

// JitterSpec injects clock jitter on slot boundaries: with SlipProb a
// tag samples the beacon across the boundary and loses the slot,
// indistinguishable from a beacon loss at the protocol layer.
type JitterSpec struct {
	// SlipProb is the per-slot per-tag probability of a boundary slip.
	SlipProb float64 `json:"slip_prob"`
	// Tags restricts the fault to these 1-based tag ids; empty = all.
	Tags []int `json:"tags,omitempty"`
}

// Plan composes the fault processes of one chaos scenario. The zero
// value injects nothing; nil sections are disabled. Plans are
// JSON-native (see LoadPlanFile) so chaos sweeps are reproducible from
// a checked-in file plus a seed.
type Plan struct {
	// Name labels the plan in reports and traces.
	Name string `json:"name,omitempty"`
	// Fades: transient per-tag channel fades with Markov bursts.
	Fades *FadeSpec `json:"fades,omitempty"`
	// Feedback: downlink beacon loss and ACK corruption.
	Feedback *FeedbackSpec `json:"feedback,omitempty"`
	// Brownouts: mid-slot supercapacitor drains.
	Brownouts *BrownoutSpec `json:"brownouts,omitempty"`
	// ReaderOutages: carrier dropout/restart windows.
	ReaderOutages *OutageSpec `json:"reader_outages,omitempty"`
	// ClockJitter: slot-boundary clock slips.
	ClockJitter *JitterSpec `json:"clock_jitter,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return (p.Fades == nil || !p.Fades.active()) &&
		(p.Feedback == nil || (p.Feedback.LossProb <= 0 && p.Feedback.CorruptProb <= 0)) &&
		(p.Brownouts == nil || p.Brownouts.Prob <= 0) &&
		(p.ReaderOutages == nil || !p.ReaderOutages.active()) &&
		(p.ClockJitter == nil || p.ClockJitter.SlipProb <= 0)
}

func probRange(what string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("faults: %s %v outside [0, 1]", what, v)
	}
	return nil
}

// Validate checks every section's parameters.
func (p Plan) Validate() error {
	if f := p.Fades; f != nil {
		if err := f.validate("fades"); err != nil {
			return err
		}
		if err := probRange("fades ul_fail_prob", f.ULFailProb); err != nil {
			return err
		}
		if err := probRange("fades beacon_loss_prob", f.BeaconLossProb); err != nil {
			return err
		}
		if f.DepthDB < 0 {
			return fmt.Errorf("faults: fades depth_db %v negative", f.DepthDB)
		}
	}
	if f := p.Feedback; f != nil {
		if err := probRange("feedback loss_prob", f.LossProb); err != nil {
			return err
		}
		if err := probRange("feedback corrupt_prob", f.CorruptProb); err != nil {
			return err
		}
	}
	if b := p.Brownouts; b != nil {
		if err := probRange("brownouts prob", b.Prob); err != nil {
			return err
		}
		if b.Prob > 0 && b.OffSlots < 1 {
			return fmt.Errorf("faults: brownouts off_slots %v < 1", b.OffSlots)
		}
	}
	if o := p.ReaderOutages; o != nil {
		if err := o.validate("reader_outages"); err != nil {
			return err
		}
	}
	if j := p.ClockJitter; j != nil {
		if err := probRange("clock_jitter slip_prob", j.SlipProb); err != nil {
			return err
		}
	}
	return nil
}

// tagSet expands a 1-based tag filter into a 0-based membership mask
// over numTags entries; an empty filter selects every tag.
func tagSet(tags []int, numTags int) []bool {
	mask := make([]bool, numTags)
	if len(tags) == 0 {
		for i := range mask {
			mask[i] = true
		}
		return mask
	}
	for _, tid := range tags {
		if tid >= 1 && tid <= numTags {
			mask[tid-1] = true
		}
	}
	return mask
}
