package mac

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Protocol invariants under adversarial inputs, beyond the scripted
// scenarios of proto_test.go.

// TestTagProtocolOffsetAlwaysInRange: whatever feedback a tag sees, its
// offset stays within [0, period).
func TestTagProtocolOffsetAlwaysInRange(t *testing.T) {
	f := func(seed uint64, feedback []uint8) bool {
		tag, err := NewTagProtocol(8, sim.NewRand(seed))
		if err != nil {
			return false
		}
		for _, fb := range feedback {
			switch fb % 5 {
			case 4:
				tag.OnBeaconLoss()
			default:
				tag.OnBeacon(Feedback{
					ACK:   fb&1 != 0,
					Empty: fb&2 != 0,
					Reset: fb&4 != 0,
				})
			}
			if off := tag.Offset(); off < 0 || off >= 8 {
				return false
			}
			if tag.Migrations() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTagProtocolTransmitPhaseConsistent: between migrations, a tag's
// transmissions are exactly one period apart in its own counter.
func TestTagProtocolTransmitPhaseConsistent(t *testing.T) {
	f := func(seed uint64, acks []bool) bool {
		tag, err := NewTagProtocol(4, sim.NewRand(seed))
		if err != nil {
			return false
		}
		tag.ResetState()
		lastTxCounter := -1
		lastOffset := tag.Offset()
		for _, ack := range acks {
			tx := tag.OnBeacon(Feedback{ACK: ack, Empty: true})
			if tx {
				if tag.Offset() == lastOffset && lastTxCounter >= 0 {
					if (tag.Counter()-lastTxCounter)%4 != 0 {
						return false
					}
				}
				lastTxCounter = tag.Counter()
				lastOffset = tag.Offset()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// settledConflictFree checks the reader invariant: with the future-
// collision veto active, the belief set is always pairwise
// conflict-free.
func settledConflictFree(r *ReaderProtocol) bool {
	as := r.SettledAssignments()
	for i := range as {
		for j := i + 1; j < len(as); j++ {
			if as[i].Conflicts(as[j]) {
				return false
			}
		}
	}
	return true
}

// TestReaderBeliefAlwaysConflictFree feeds the reader random
// observation streams and verifies its settled-belief invariant after
// every slot.
func TestReaderBeliefAlwaysConflictFree(t *testing.T) {
	f := func(seed uint64, stream []uint16) bool {
		r, err := NewReaderProtocol(map[int]Period{1: 2, 2: 4, 3: 4, 4: 8})
		if err != nil {
			return false
		}
		r.Reset()
		for _, ev := range stream {
			var obs Observation
			switch ev % 4 {
			case 0: // silence
			case 1: // solo decode from a random tag
				obs.Decoded = []int{int(ev/4)%4 + 1}
			case 2: // collision, nothing decoded
				obs.Collision = true
			case 3: // capture: collision plus one decode
				obs.Collision = true
				obs.Decoded = []int{int(ev/4)%4 + 1}
			}
			r.EndSlot(obs)
			if !settledConflictFree(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReaderBeliefCanConflictWithoutVeto documents that the invariant
// really is the veto's doing: with the ablation flag set, a conflicting
// belief is reachable.
func TestReaderBeliefCanConflictWithoutVeto(t *testing.T) {
	r, err := NewReaderProtocol(map[int]Period{1: 4, 2: 2})
	if err != nil {
		t.Fatal(err)
	}
	r.DisableFutureVeto = true
	r.Reset()
	// Tag 1 (p=4) settles at slot 0; tag 2 (p=2) decodes solo at slot
	// 2 — offset 0 mod 2, conflicting with tag 1 at slots 4, 8, ...
	r.EndSlot(Observation{Decoded: []int{1}})
	r.EndSlot(Observation{})
	fb, _ := r.EndSlot(Observation{Decoded: []int{2}})
	if !fb.ACK {
		t.Fatal("veto disabled but solo decode NACKed")
	}
	if settledConflictFree(r) {
		t.Error("expected a conflicting belief with the veto disabled")
	}
}

// TestSlotSimLongRandomizedRuns is a randomized soak: many short runs
// with random loss/capture settings must neither panic nor violate the
// global invariants tracked by the stats.
func TestSlotSimLongRandomizedRuns(t *testing.T) {
	rng := sim.NewRand(2024)
	pats := Table3Patterns()
	for trial := 0; trial < 25; trial++ {
		pt := pats[rng.Intn(len(pats))]
		loss := make([]float64, pt.NumTags())
		for i := range loss {
			loss[i] = rng.Float64() * 0.01
		}
		s, err := NewSlotSim(SlotSimConfig{
			Pattern:        pt,
			Seed:           rng.Uint64(),
			BeaconLossProb: loss,
			CaptureProb:    rng.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(2000)
		if s.TruthNonEmpty > s.SlotsRun || s.TruthCollisions > s.TruthNonEmpty {
			t.Fatalf("trial %d: inconsistent counters: %d/%d/%d",
				trial, s.TruthCollisions, s.TruthNonEmpty, s.SlotsRun)
		}
		if r := s.Window.AverageNonEmptyRatio(); r < 0 || r > 1 {
			t.Fatalf("ratio %v out of range", r)
		}
		if !settledConflictFree(s.Reader()) {
			t.Fatalf("trial %d: reader belief conflicted", trial)
		}
	}
}
