package mac

import (
	"sync"
	"testing"
)

func snapshotTestConfig() SlotSimConfig {
	return SlotSimConfig{
		Pattern:          Table3Patterns()[2], // c3
		BeaconLossProb:   []float64{0.01, 0.01, 0.02, 0.01, 0.03},
		ULDecodeFailProb: []float64{0.02, 0.01},
		CaptureProb:      0.1,
		JoinSlot:         []int{0, 0, 5, 9, 0},
	}
}

// stepTrace runs n slots and folds every observable slot outcome into a
// comparable trace.
func stepTrace(t *testing.T, s *SlotSim, n int) []SlotResult {
	t.Helper()
	out := make([]SlotResult, 0, n)
	for i := 0; i < n; i++ {
		res := s.Step()
		// The result aliases simulator scratch: deep-copy for retention.
		cp := res
		cp.Transmitters = append([]int(nil), res.Transmitters...)
		cp.Obs.Decoded = append([]int(nil), res.Obs.Decoded...)
		out = append(out, cp)
	}
	return out
}

func sameTrace(a, b []SlotResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Slot != y.Slot || x.Feedback != y.Feedback || x.Obs.Collision != y.Obs.Collision {
			return false
		}
		if len(x.Transmitters) != len(y.Transmitters) || len(x.Obs.Decoded) != len(y.Obs.Decoded) {
			return false
		}
		for j := range x.Transmitters {
			if x.Transmitters[j] != y.Transmitters[j] {
				return false
			}
		}
		for j := range x.Obs.Decoded {
			if x.Obs.Decoded[j] != y.Obs.Decoded[j] {
				return false
			}
		}
	}
	return true
}

// A pooled clone reset to a seed must replay the exact slot-by-slot
// trace of a freshly constructed simulator with that seed — the whole
// snapshot/clone seam rests on this.
func TestSnapshotCloneBitIdentical(t *testing.T) {
	cfg := snapshotTestConfig()
	sn, err := NewSlotSimSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 42, 0xFEEDFACE} {
		// Dirty the pooled clone with a different trial first.
		dirty := sn.Acquire(seed^0xABCD, nil, nil)
		dirty.Run(257)
		sn.Release(dirty)

		clone := sn.Acquire(seed, nil, nil)
		fcfg := cfg
		fcfg.Seed = seed
		fresh, err := NewSlotSim(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		got := stepTrace(t, clone, 600)
		want := stepTrace(t, fresh, 600)
		if !sameTrace(got, want) {
			t.Fatalf("seed %d: pooled clone trace diverges from fresh build", seed)
		}
		if clone.TruthNonEmpty != fresh.TruthNonEmpty ||
			clone.TruthCollisions != fresh.TruthCollisions ||
			clone.Reader().SettledCount() != fresh.Reader().SettledCount() ||
			clone.Window.AverageNonEmptyRatio() != fresh.Window.AverageNonEmptyRatio() ||
			clone.Window.AverageCollisionRatio() != fresh.Window.AverageCollisionRatio() ||
			clone.Convergence.ConvergenceSlot() != fresh.Convergence.ConvergenceSlot() {
			t.Fatalf("seed %d: aggregate state diverges between clone and fresh build", seed)
		}
		for tid := 1; tid <= cfg.Pattern.NumTags(); tid++ {
			ctx, cack, _ := clone.TagCounters(tid)
			ftx, fack, _ := fresh.TagCounters(tid)
			if ctx != ftx || cack != fack {
				t.Fatalf("seed %d tid %d: counters (%d,%d) != (%d,%d)", seed, tid, ctx, cack, ftx, fack)
			}
		}
		sn.Release(clone)
	}
}

// The steady-state trial loop — acquire, run, release — must not
// allocate once the pool is warm. This is the ISSUE 7 alloc gate for
// the mac layer.
func TestSlotSimPooledTrialAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	sn, err := NewSlotSimSnapshot(snapshotTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool.
	s := sn.Acquire(1, nil, nil)
	s.Run(64)
	sn.Release(s)

	seed := uint64(2)
	n := testing.AllocsPerRun(50, func() {
		s := sn.Acquire(seed, nil, nil)
		s.Run(64)
		sn.Release(s)
		seed++
	})
	if n != 0 {
		t.Fatalf("pooled trial allocates %v per run, want 0", n)
	}
}

// Concurrent acquire/release across goroutines: exercised under -race
// by make check; traces must still be bit-identical per seed.
func TestSnapshotClonePoolConcurrent(t *testing.T) {
	sn, err := NewSlotSimSnapshot(snapshotTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSlotSim(SlotSimConfig{Pattern: sn.Config().Pattern,
		BeaconLossProb: sn.Config().BeaconLossProb, ULDecodeFailProb: sn.Config().ULDecodeFailProb,
		CaptureProb: sn.Config().CaptureProb, JoinSlot: sn.Config().JoinSlot, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(400)
	wantNE, wantCol := ref.TruthNonEmpty, ref.TruthCollisions

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := 0; trial < 8; trial++ {
				s := sn.Acquire(99, nil, nil)
				s.Run(400)
				if s.TruthNonEmpty != wantNE || s.TruthCollisions != wantCol {
					errs <- "clone diverged from reference under concurrency"
				}
				sn.Release(s)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
