package mac

import (
	"fmt"

	"repro/internal/sim"
)

// TagState is the protocol state of Fig. 7.
type TagState int

const (
	// Migrate: probing for a collision-free slot with random offsets.
	Migrate TagState = iota
	// Settle: holding a seemingly collision-free offset.
	Settle
)

func (s TagState) String() string {
	switch s {
	case Migrate:
		return "MIGRATE"
	case Settle:
		return "SETTLE"
	default:
		return fmt.Sprintf("TagState(%d)", int(s))
	}
}

// DefaultNackThreshold is N in Fig. 7: consecutive NACKs a settled tag
// tolerates before migrating.
const DefaultNackThreshold = 3

// Feedback is the protocol-relevant content of one received beacon.
type Feedback struct {
	ACK   bool // uplink in the previous slot acknowledged
	Empty bool // reader predicts the current slot unoccupied
	Reset bool // reinitialize protocol state
}

// TagProtocol is the distributed slot-allocation state machine run by
// each tag. It is pure: inputs are beacon events and beacon-loss
// timeouts, the output is the transmit decision for the slot that just
// opened. The enclosing firmware owns timers and radios.
type TagProtocol struct {
	// Period is this tag's transmission period (known a priori from its
	// monitoring task).
	Period Period
	// NackThreshold is N.
	NackThreshold int
	// DisableEmptyGate turns off the Sec. 5.5 late-arrival gate
	// (ablation only).
	DisableEmptyGate bool

	rng *sim.Rand

	state       TagState
	offset      int
	counter     int // local slot index s_i
	nacks       int // consecutive NACK count c_i
	transmitted bool
	newcomer    bool // never ACKed since (re)joining: EMPTY-gated
	// Stats.
	migrations int
}

// NewTagProtocol returns a tag protocol in the initial MIGRATE state
// with a random offset. A freshly powered-on tag is a "newcomer": the
// Sec. 5.5 EMPTY gate applies to its transmissions until it either
// receives its first ACK (it has integrated) or observes a RESET (the
// whole network is recontending, so the gate is moot).
func NewTagProtocol(p Period, rng *sim.Rand) (*TagProtocol, error) {
	if !ValidPeriod(p) {
		return nil, fmt.Errorf("mac: invalid period %d", p)
	}
	if rng == nil {
		return nil, fmt.Errorf("mac: TagProtocol needs a random source")
	}
	t := &TagProtocol{
		Period:        p,
		NackThreshold: DefaultNackThreshold,
		rng:           rng,
		newcomer:      true,
	}
	t.offset = rng.Intn(int(p))
	return t, nil
}

// reinit rewinds the protocol to its NewTagProtocol post-construction
// state: MIGRATE, EMPTY-gated newcomer, fresh offset drawn from the
// (externally reseeded) rng. Pooled simulators use it between trials so
// a reset tag is bit-identical to a freshly constructed one.
func (t *TagProtocol) reinit() {
	t.NackThreshold = DefaultNackThreshold
	t.state = Migrate
	t.counter = 0
	t.nacks = 0
	t.transmitted = false
	t.newcomer = true
	t.migrations = 0
	t.offset = t.rng.Intn(int(t.Period))
}

// State returns the protocol state.
func (t *TagProtocol) State() TagState { return t.state }

// Offset returns the current slot offset a_i.
func (t *TagProtocol) Offset() int { return t.offset }

// Counter returns the local slot index s_i.
func (t *TagProtocol) Counter() int { return t.counter }

// Migrations returns how many times the tag re-randomized its offset.
func (t *TagProtocol) Migrations() int { return t.migrations }

// Newcomer reports whether the tag is still EMPTY-gated.
func (t *TagProtocol) Newcomer() bool { return t.newcomer }

func (t *TagProtocol) migrate() {
	t.state = Migrate
	t.offset = t.rng.Intn(int(t.Period))
	t.nacks = 0
	t.migrations++
}

// OnBeacon processes one received beacon and returns whether the tag
// should transmit in the slot the beacon just opened.
//
// Ordering per Sec. 5.3: the feedback applies to the slot that just
// ended and only tags that transmitted there react to ACK/NACK; then
// the local counter advances and the transmit rule s mod p == a decides
// this slot, with newcomers additionally gated by the EMPTY flag.
func (t *TagProtocol) OnBeacon(fb Feedback) bool {
	if fb.Reset {
		t.ResetState()
		// Fall through: the tag may transmit right away if gated in.
	} else if t.transmitted {
		if fb.ACK {
			t.state = Settle
			t.nacks = 0
			t.newcomer = false
		} else {
			switch t.state {
			case Migrate:
				t.migrate()
			case Settle:
				t.nacks++
				if t.nacks >= t.NackThreshold {
					t.migrate()
				}
			}
		}
	}
	t.transmitted = false
	t.counter++
	if t.counter%int(t.Period) != t.offset {
		return false
	}
	if t.newcomer && !fb.Empty && !t.DisableEmptyGate {
		// Late-arriving tags may only probe advertised-empty slots
		// (Sec. 5.5). An occupied slot is as good as a NACK: re-draw
		// the offset so the search keeps moving instead of waiting
		// forever on a taken slot.
		t.migrate()
		return false
	}
	t.transmitted = true
	return true
}

// OnBeaconLoss is the Sec. 5.4 refinement: a tag whose beacon timer
// expires re-enters MIGRATE immediately instead of waiting to collide.
// The local counter does not advance — that is the desynchronization.
func (t *TagProtocol) OnBeaconLoss() {
	t.transmitted = false
	t.migrate()
}

// Rejoin reinitializes the protocol after a power cycle: the tag lost
// all volatile state while the cutoff was open, so it comes back as a
// late arrival — MIGRATE, random offset, EMPTY-gated until it either
// earns an ACK or sees a RESET.
func (t *TagProtocol) Rejoin() {
	t.state = Migrate
	t.offset = t.rng.Intn(int(t.Period))
	t.counter = 0
	t.nacks = 0
	t.transmitted = false
	t.newcomer = true
}

// ResetState reinitializes the protocol (RESET command): back to
// MIGRATE with a fresh random offset. A RESET synchronizes the whole
// population, so the tag is no longer a "late arrival": it contends
// freely like everyone else (the EMPTY gate of Sec. 5.5 applies only to
// tags that power on into an already-running network).
func (t *TagProtocol) ResetState() {
	t.state = Migrate
	t.offset = t.rng.Intn(int(t.Period))
	t.counter = -1 // advances to 0 in the beacon that carried RESET
	t.nacks = 0
	t.transmitted = false
	t.newcomer = false
	t.migrations = 0
}
