package mac

import (
	"fmt"
	"math"
	"sort"
)

// Analytical convergence estimate. The exact chain (internal/core) is
// only tractable for a handful of tags; for deployment-scale patterns
// this gives a closed-form approximation of the Fig. 15 first-
// convergence time, exposing *why* utilization dominates.
//
// Model: all migrating tags probe in parallel, but free slots erode as
// tags settle (shortest periods first — they probe most often and win
// contention). The tag that settles k-th sees free-offset fraction
// 1 - U_settled(k) and contention from the still-migrating tags; its
// expected settle time is a geometric wait of its own period length.
// Because probing is concurrent, the convergence time is governed by
// the WORST single tag's wait — the last settler facing the residual
// free slots — not the sum. Adding the 32-slot confirmation window
// yields the estimate. At full utilization the last tag must find the
// single remaining class of its period, giving the characteristic
// p^2 blow-up that Fig. 15(a) shows.

// EstimateConvergenceSlots returns the analytical approximation of the
// expected first-convergence time for a pattern, in slots.
func EstimateConvergenceSlots(pt Pattern) (float64, error) {
	if err := pt.Validate(); err != nil {
		return 0, err
	}
	// Settle order: ascending period (most aggressive first).
	periods := append([]Period(nil), pt.Periods...)
	sort.Slice(periods, func(a, b int) bool { return periods[a] < periods[b] })

	var worst float64
	var settledUtil float64 // fraction of slots consumed by settled tags
	for i, p := range periods {
		// Free-offset fraction for this tag given settled load.
		free := 1 - settledUtil
		if free <= 0 {
			free = 1 / float64(2*p) // capacity edge: one offset effectively
		}
		// Probability another still-migrating tag probes the same slot
		// this attempt: each of the m-1 remaining migrators covers 1/p_j
		// of the slots.
		var contention float64
		for j := i + 1; j < len(periods); j++ {
			contention += 1 / float64(periods[j])
		}
		pClear := math.Exp(-contention) // Poisson-style thinning
		pSuccess := free * pClear
		if pSuccess < 1e-6 {
			pSuccess = 1e-6
		}
		// Each attempt costs one period worth of slots; a failed attempt
		// (NACK) re-randomizes immediately. Concurrent probing means the
		// slowest settler sets the pace.
		if w := float64(p) / pSuccess; w > worst {
			worst = w
		}
		settledUtil += 1 / float64(p)
	}
	// The detector then needs 32 clean slots.
	return worst + 32, nil
}

// CompareConvergenceEstimate runs the simulator for a pattern and
// reports (analytical, simulated-median, ratio) — used by tests to keep
// the approximation honest.
func CompareConvergenceEstimate(pt Pattern, seeds int) (analytical, simMedian float64, err error) {
	analytical, err = EstimateConvergenceSlots(pt)
	if err != nil {
		return 0, 0, err
	}
	var times []int
	for seed := 0; seed < seeds; seed++ {
		s, err := NewSlotSim(SlotSimConfig{Pattern: pt, Seed: uint64(seed)})
		if err != nil {
			return 0, 0, err
		}
		t, ok := s.RunUntilConverged(500_000)
		if !ok {
			return 0, 0, fmt.Errorf("mac: %s seed %d did not converge", pt.Name, seed)
		}
		times = append(times, t)
	}
	sort.Ints(times)
	return analytical, float64(times[len(times)/2]), nil
}
