package mac

import (
	"sync"

	"repro/internal/obs"
)

// SlotSimSnapshot is the frozen, shareable half of the slot-simulator
// snapshot/clone seam. It captures one validated SlotSimConfig —
// pattern, link probabilities, join schedule, protocol knobs — and
// hands out pooled, resettable SlotSim clones. The per-config work
// (validation, period table, tag/reader construction) happens once;
// every Acquire after warm-up is a pure in-place rewind, so
// steady-state Monte Carlo trials and fleet jobs allocate nothing in
// the control plane.
//
// The contract (see DESIGN.md "Snapshot/clone"):
//
//   - Immutable per config: everything in the SlotSimConfig except
//     Seed, Trace and Faults. The snapshot's config is copied at
//     construction; callers must not mutate referenced slices after
//     NewSlotSimSnapshot.
//   - Mutable per trial: the seed (full RNG replay via SlotSim.Reset),
//     the tracer and the fault source (attached on Acquire, detached on
//     Release so a parked clone never pins a job's sink).
//
// A SlotSimSnapshot is safe for concurrent Acquire/Release from many
// goroutines; each acquired *SlotSim belongs to one goroutine at a
// time.
type SlotSimSnapshot struct {
	cfg  SlotSimConfig
	pool sync.Pool
}

// NewSlotSimSnapshot validates cfg once and returns a snapshot whose
// clones all simulate that config. The Seed, Trace and Faults fields of
// cfg are ignored — they are per-trial inputs to Acquire.
func NewSlotSimSnapshot(cfg SlotSimConfig) (*SlotSimSnapshot, error) {
	cfg.Seed = 0
	cfg.Trace = nil
	cfg.Faults = nil
	probe, err := NewSlotSim(cfg)
	if err != nil {
		return nil, err
	}
	sn := &SlotSimSnapshot{cfg: cfg}
	sn.pool.New = func() any {
		s, err := NewSlotSim(sn.cfg)
		if err != nil {
			// The config was validated by the probe build above and is
			// never mutated afterwards, so construction cannot fail.
			//lint:allow panic-hygiene config validated at snapshot construction; failure here is a programming bug
			panic(err)
		}
		return s
	}
	sn.pool.Put(probe)
	return sn, nil
}

// Config returns the frozen per-config state (Seed/Trace/Faults zeroed).
func (sn *SlotSimSnapshot) Config() SlotSimConfig { return sn.cfg }

// Acquire returns a clone reset to the given seed with the trial's
// observers attached: bit-identical to NewSlotSim with the same config
// and seed. Pass the clone to Release when the trial ends.
//
//alloc:hot pool hit serves a recycled clone; the reset path allocates nothing
func (sn *SlotSimSnapshot) Acquire(seed uint64, trace *obs.Tracer, faults FaultSource) *SlotSim {
	s := sn.pool.Get().(*SlotSim)
	s.AttachObservers(trace, faults)
	s.Reset(seed)
	return s
}

// Release detaches the trial's observers and parks the clone for reuse.
// The caller must not touch s afterwards.
//
//alloc:hot parks the clone back into the pool without copying
func (sn *SlotSimSnapshot) Release(s *SlotSim) {
	if s == nil {
		return
	}
	s.AttachObservers(nil, nil)
	sn.pool.Put(s)
}
