package mac

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestVanillaAllocateTable3(t *testing.T) {
	// Every admissible Table 3 pattern must have a static collision-free
	// schedule.
	for _, pt := range Table3Patterns() {
		as, err := VanillaAllocate(pt)
		if err != nil {
			t.Errorf("%s: %v", pt.Name, err)
			continue
		}
		if len(as) != pt.NumTags() {
			t.Errorf("%s: %d assignments for %d tags", pt.Name, len(as), pt.NumTags())
		}
		if err := VerifySchedule(as); err != nil {
			t.Errorf("%s: %v", pt.Name, err)
		}
		// Assignments preserve tag order.
		for i, a := range as {
			if a.Period != pt.Periods[i] {
				t.Errorf("%s: tag %d period %d, want %d", pt.Name, i, a.Period, pt.Periods[i])
			}
		}
	}
}

func TestVanillaAllocateFullUtilization(t *testing.T) {
	pt := Pattern{Periods: []Period{2, 4, 8, 8}}
	as, err := VanillaAllocate(pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(as); err != nil {
		t.Fatal(err)
	}
}

func TestVanillaAllocateRequiresBacktracking(t *testing.T) {
	// Two period-4 tags and one period-2 tag: greedy placement of the
	// period-4 tags at offsets 0 and 1 would strand the period-2 tag,
	// but a valid schedule exists (0, 2, 1).
	pt := Pattern{Periods: []Period{4, 4, 2}}
	as, err := VanillaAllocate(pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(as); err != nil {
		t.Fatal(err)
	}
}

func TestVanillaAllocateInvalidPattern(t *testing.T) {
	if _, err := VanillaAllocate(Pattern{Periods: []Period{2, 2, 2}}); err == nil {
		t.Error("over-capacity pattern allocated")
	}
	if _, err := VanillaAllocate(Pattern{Periods: []Period{5}}); err == nil {
		t.Error("invalid period allocated")
	}
}

// Property (DESIGN.md): any pattern with power-of-two periods and
// utilization <= 1 is allocatable collision-free.
func TestVanillaAllocateAlwaysFeasibleUnderCapacity(t *testing.T) {
	f := func(raw []uint8) bool {
		var ps []Period
		var u float64
		for _, r := range raw {
			p := Period(1 << (1 + r%5)) // 2..32
			if u+1/float64(p) > 1 {
				continue
			}
			u += 1 / float64(p)
			ps = append(ps, p)
		}
		if len(ps) == 0 {
			return true
		}
		as, err := VanillaAllocate(Pattern{Periods: ps})
		if err != nil {
			return false
		}
		return VerifySchedule(as) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVerifyScheduleDetectsCollision(t *testing.T) {
	bad := []Assignment{
		{Period: 4, Offset: 1},
		{Period: 8, Offset: 5}, // 5 mod 4 == 1
	}
	if err := VerifySchedule(bad); err == nil {
		t.Error("collision not detected")
	}
}

func TestFeasibleOffset(t *testing.T) {
	existing := []Assignment{
		{Period: 2, Offset: 0},
		{Period: 4, Offset: 1},
	}
	// Free slots are ...3 mod 4.
	off := FeasibleOffset(existing, 4)
	if off != 3 {
		t.Errorf("offset = %d, want 3", off)
	}
	// A period-2 tag has no room (slots 0 mod 2 and 1 mod 4 taken).
	if off := FeasibleOffset(existing, 2); off != -1 {
		t.Errorf("infeasible case returned %d", off)
	}
	// Empty network: everything is free.
	if off := FeasibleOffset(nil, 8); off != 0 {
		t.Errorf("empty network offset = %d", off)
	}
}

func TestChooseVictimSec56Example(t *testing.T) {
	// The Sec. 5.6 example: tags A and B settled with period 4 at
	// offsets 2 and 3; late tag C has period 2. C needs offsets {0,1}
	// mod 2 free, but A occupies 0-parity and B 1-parity: no viable
	// offset without eviction.
	existing := []Assignment{
		{Period: 4, Offset: 2}, // tag A
		{Period: 4, Offset: 3}, // tag B
	}
	if FeasibleOffset(existing, 2) != -1 {
		t.Fatal("precondition: C must be blocked")
	}
	v := ChooseVictim(existing, 2)
	if v < 0 {
		t.Fatal("no victim found though evicting either A or B works")
	}
	// After evicting the victim, C fits, and the victim can re-settle.
	rest := append([]Assignment{}, existing[:v]...)
	rest = append(rest, existing[v+1:]...)
	cOff := FeasibleOffset(rest, 2)
	if cOff < 0 {
		t.Fatal("C still blocked after eviction")
	}
	after := append(rest, Assignment{Period: 2, Offset: cOff})
	if FeasibleOffset(after, 4) < 0 {
		t.Fatal("victim cannot re-settle")
	}
}

func TestChooseVictimNoneHelps(t *testing.T) {
	// Full period-2 network: a period-1 newcomer can never fit even
	// with one eviction.
	existing := []Assignment{
		{Period: 2, Offset: 0},
		{Period: 2, Offset: 1},
	}
	if v := ChooseVictim(existing, 1); v != -1 {
		t.Errorf("victim %d chosen though eviction cannot help", v)
	}
}

func TestVanillaAllocateErrInfeasible(t *testing.T) {
	// Utilization exactly 1 but structurally infeasible patterns don't
	// exist for powers of two; force infeasibility via a pattern check
	// bypass: three period-2 tags fail Validate, so check the error
	// type through FeasibleOffset-style saturation instead.
	pt := Pattern{Periods: []Period{1, 2}}
	_, err := VanillaAllocate(pt)
	// U = 1.5 > 1: rejected by validation, not ErrInfeasible.
	if err == nil {
		t.Fatal("expected error")
	}
	if errors.Is(err, ErrInfeasible) {
		t.Fatal("validation failure misreported as infeasible")
	}
}
