package mac

import (
	"testing"
)

func zonesOf(n int, pt Pattern) []Pattern {
	out := make([]Pattern, n)
	for i := range out {
		out[i] = pt
	}
	return out
}

func TestMultiReaderValidation(t *testing.T) {
	if _, err := NewMultiReaderSim(MultiReaderConfig{}); err == nil {
		t.Error("no zones accepted")
	}
	if _, err := NewMultiReaderSim(MultiReaderConfig{
		Zones: []Pattern{{Periods: []Period{3}}},
	}); err == nil {
		t.Error("invalid zone pattern accepted")
	}
	if _, err := NewMultiReaderSim(MultiReaderConfig{
		Zones: zonesOf(2, Table3Patterns()[8]), LeakProb: 1.5,
	}); err == nil {
		t.Error("leak probability > 1 accepted")
	}
}

func TestMultiReaderSingleZoneMatchesSlotSimScale(t *testing.T) {
	pt := Table3Patterns()[8] // c9
	m, err := NewMultiReaderSim(MultiReaderConfig{Zones: zonesOf(1, pt), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10_000)
	// A lone zone at U=0.75 should deliver close to 0.75 per slot once
	// converged.
	if th := m.Throughput(); th < 0.70 || th > 0.76 {
		t.Errorf("single-zone throughput %.3f, want ~0.75", th)
	}
}

func TestMultiReaderScalesWithoutLeakage(t *testing.T) {
	pt := Table3Patterns()[8]
	th := make(map[int]float64)
	for _, k := range []int{1, 3} {
		m, err := NewMultiReaderSim(MultiReaderConfig{Zones: zonesOf(k, pt), Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(10_000)
		th[k] = m.Throughput()
	}
	// Perfect isolation: aggregate throughput ~K-fold.
	if th[3] < 2.6*th[1] {
		t.Errorf("3 readers deliver %.3f vs 1 reader %.3f: no spatial gain", th[3], th[1])
	}
	// And beyond the single-reader 1.0 ceiling.
	if th[3] <= 1.0 {
		t.Errorf("aggregate %.3f never exceeded a single channel", th[3])
	}
}

func TestMultiReaderLeakageHurts(t *testing.T) {
	pt := Table3Patterns()[8]
	run := func(leak float64) float64 {
		m, err := NewMultiReaderSim(MultiReaderConfig{
			Zones: zonesOf(4, pt), LeakProb: leak, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(10_000)
		return m.Throughput()
	}
	clean := run(0)
	leaky := run(0.2)
	if leaky >= clean {
		t.Errorf("leakage did not hurt: %.3f vs %.3f", leaky, clean)
	}
	if clean-leaky < 0.5 {
		t.Errorf("20%% leakage cost only %.3f packets/slot across 4 zones", clean-leaky)
	}
}

func TestMultiReaderPerZoneCounters(t *testing.T) {
	pt := Table3Patterns()[8]
	m, err := NewMultiReaderSim(MultiReaderConfig{Zones: zonesOf(2, pt), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5000)
	if m.Slots() != 5000 {
		t.Errorf("slots = %d", m.Slots())
	}
	total := 0
	for zi := 0; zi < 2; zi++ {
		d := m.ZoneDelivered(zi)
		if d == 0 {
			t.Errorf("zone %d delivered nothing", zi)
		}
		total += d
	}
	if total != m.TotalDelivered() {
		t.Error("per-zone sums disagree with total")
	}
	if m.Throughput() <= 0 {
		t.Error("zero throughput")
	}
	var empty MultiReaderSim
	if empty.Throughput() != 0 {
		t.Error("unstepped sim should report 0 throughput")
	}
}

func TestSplitPattern(t *testing.T) {
	pt := Pattern{Name: "x", Periods: []Period{2, 4, 8, 16, 32}}
	zones := SplitPattern(pt, 2)
	if len(zones) != 2 {
		t.Fatalf("%d zones", len(zones))
	}
	total := 0
	for _, z := range zones {
		total += z.NumTags()
	}
	if total != pt.NumTags() {
		t.Errorf("tags lost in split: %d vs %d", total, pt.NumTags())
	}
	// Degenerate k.
	z1 := SplitPattern(pt, 0)
	if len(z1) != 1 || z1[0].NumTags() != pt.NumTags() {
		t.Error("k<1 should collapse to one zone")
	}
}
