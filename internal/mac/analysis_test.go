package mac

import "testing"

func TestEstimateConvergenceValidation(t *testing.T) {
	if _, err := EstimateConvergenceSlots(Pattern{Periods: []Period{3}}); err == nil {
		t.Error("invalid pattern accepted")
	}
	if _, err := EstimateConvergenceSlots(Pattern{Periods: []Period{2, 2, 2}}); err == nil {
		t.Error("over-capacity pattern accepted")
	}
}

func TestEstimateGrowsWithUtilization(t *testing.T) {
	pats := Table3Patterns()
	e1, err := EstimateConvergenceSlots(pats[0]) // c1, U=0.375
	if err != nil {
		t.Fatal(err)
	}
	e5, err := EstimateConvergenceSlots(pats[4]) // c5, U=1.0
	if err != nil {
		t.Fatal(err)
	}
	if e5 <= 2*e1 {
		t.Errorf("estimate does not grow with utilization: c1=%v c5=%v", e1, e5)
	}
}

// TestEstimateTracksSimulator keeps the closed form honest against the
// simulator across the Table 3 workloads: within a factor of ~2.5 of
// the simulated median (measured spread is 0.8-1.4x at large seed
// counts; medians of heavy-tailed convergence times are noisy at the
// seed counts a unit test can afford).
func TestEstimateTracksSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator sweep")
	}
	for _, pt := range Table3Patterns() {
		analytical, sim, err := CompareConvergenceEstimate(pt, 15)
		if err != nil {
			t.Fatalf("%s: %v", pt.Name, err)
		}
		ratio := analytical / sim
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: analytical %v vs simulated %v (ratio %.2f)",
				pt.Name, analytical, sim, ratio)
		}
	}
}
