package mac

import (
	"testing"

	"repro/internal/obs"
)

// evictFixture provisions three tags — tid 1 and 2 with period 4, tid 3
// with period 2 — and settles tids 1 and 2 at offsets 0 and 1. Both
// congruence classes mod 2 are then occupied, so the period-2 newcomer
// (tid 3) is blocked with no feasible offset: the Sec. 5.6 eviction
// machinery must kick in.
func evictFixture(t *testing.T) (*ReaderProtocol, *obs.MemorySink) {
	t.Helper()
	mem := obs.NewMemorySink()
	r, err := NewReaderProtocol(map[int]Period{1: 4, 2: 4, 3: 2})
	if err != nil {
		t.Fatal(err)
	}
	r.Trace = obs.New(mem)
	r.Reset()

	// Slot 0: tid 1 settles at (4,0). Slot 1: tid 2 settles at (4,1).
	if fb, _ := r.EndSlot(Observation{Decoded: []int{1}}); !fb.ACK {
		t.Fatal("tid 1 not ACKed on settle")
	}
	if fb, _ := r.EndSlot(Observation{Decoded: []int{2}}); !fb.ACK {
		t.Fatal("tid 2 not ACKed on settle")
	}
	if r.SettledCount() != 2 {
		t.Fatalf("settled = %d, want 2", r.SettledCount())
	}
	return r, mem
}

// TestEvictionLifecycle drives the full Sec. 5.6 eviction arc: a blocked
// newcomer causes a victim to be chosen, the victim is NACKed on its own
// schedule until the threshold, then unsettled with evictTID cleared,
// and the newcomer finally settles into the freed class.
func TestEvictionLifecycle(t *testing.T) {
	r, mem := evictFixture(t)

	// Slot 2: blocked newcomer. Equal-period candidates tie, so the
	// lowest-tid settled tag (tid 1) becomes the victim.
	if fb, _ := r.EndSlot(Observation{Decoded: []int{3}}); fb.ACK {
		t.Fatal("blocked newcomer was ACKed")
	}
	if got := r.EvictTarget(); got != 1 {
		t.Fatalf("EvictTarget = %d, want 1", got)
	}

	// The victim keeps transmitting on schedule (slots 4, 8, 12) and is
	// decoded cleanly each time; the reader must NACK it every time and
	// drop it exactly at the threshold. tid 2 shows up in its own slots
	// (5, 9, 13) so trackExpected doesn't unsettle it as a bystander.
	for round := 0; round < DefaultNackThreshold; round++ {
		r.EndSlot(Observation{}) // slots 3, 7, 11: empty
		if fb, _ := r.EndSlot(Observation{Decoded: []int{1}}); fb.ACK {
			t.Fatalf("victim ACKed in round %d", round)
		}
		if fb, _ := r.EndSlot(Observation{Decoded: []int{2}}); !fb.ACK {
			t.Fatalf("bystander tid 2 NACKed in round %d", round)
		}
		r.EndSlot(Observation{Decoded: []int{3}}) // still blocked until victim drops
	}
	if got := r.EvictTarget(); got != -1 {
		t.Fatalf("EvictTarget after completed eviction = %d, want -1", got)
	}
	if r.SettledCount() != 2 { // tid 2 remains; tid 3 settled in slot 14
		t.Fatalf("settled = %d, want 2", r.SettledCount())
	}

	evs := mem.Events()
	settles := obs.OfKind(evs, obs.KindTagSettle)
	if len(settles) != 3 || settles[2].TID != 3 || settles[2].Period != 2 || settles[2].Offset != 0 {
		t.Fatalf("settle events wrong: %+v", settles)
	}
	evicts := obs.OfKind(evs, obs.KindTagEvict)
	if len(evicts) != 1 || evicts[0].TID != 1 || evicts[0].Slot != 2 || evicts[0].Detail != "blocked_tid=3" {
		t.Fatalf("evict events wrong: %+v", evicts)
	}
	unsettles := obs.OfKind(evs, obs.KindTagUnsettle)
	if len(unsettles) != 1 || unsettles[0].TID != 1 || unsettles[0].Detail != "evicted" {
		t.Fatalf("unsettle events wrong: %+v", unsettles)
	}
	if unsettles[0].Slot != 12 {
		t.Fatalf("victim dropped in slot %d, want 12", unsettles[0].Slot)
	}
}

// TestEvictionVictimGoesSilent exercises the race where the eviction
// victim stops showing up mid-eviction (browned out or desynchronized):
// trackExpected reaches its own miss threshold first, and must both
// unsettle the victim and clear the eviction so a stale evictTID cannot
// NACK a future reincarnation of the tag forever.
func TestEvictionVictimGoesSilent(t *testing.T) {
	r, mem := evictFixture(t)

	r.EndSlot(Observation{Decoded: []int{3}}) // slot 2: victim tid 1 chosen
	if got := r.EvictTarget(); got != 1 {
		t.Fatalf("EvictTarget = %d, want 1", got)
	}

	// The victim never transmits again. Its expected slots (4, 8, 12)
	// pass empty; tid 2 stays alive in slots 5, 9, 13.
	for round := 0; round < DefaultNackThreshold; round++ {
		r.EndSlot(Observation{})                  // slots 3, 7, 11
		r.EndSlot(Observation{})                  // slots 4, 8, 12: victim silent
		r.EndSlot(Observation{Decoded: []int{2}}) // slots 5, 9, 13
		r.EndSlot(Observation{})                  // slots 6, 10, 14
	}
	if got := r.EvictTarget(); got != -1 {
		t.Fatalf("EvictTarget after silent victim = %d, want -1", got)
	}
	if r.SettledCount() != 1 {
		t.Fatalf("settled = %d, want 1 (only tid 2)", r.SettledCount())
	}

	// The freed even class must now admit the newcomer with a plain
	// ACK. Slot 15 is odd (candidate (2,1) would conflict with tid 2 at
	// (4,1)), so the newcomer probes in slot 16.
	r.EndSlot(Observation{}) // slot 15
	if fb, _ := r.EndSlot(Observation{Decoded: []int{3}}); !fb.ACK {
		t.Fatal("newcomer still blocked after eviction cleared")
	}

	unsettles := obs.OfKind(mem.Events(), obs.KindTagUnsettle)
	if len(unsettles) != 1 || unsettles[0].TID != 1 || unsettles[0].Detail != "missed" {
		t.Fatalf("unsettle events wrong: %+v", unsettles)
	}
	if unsettles[0].Slot != 12 {
		t.Fatalf("victim dropped in slot %d, want 12", unsettles[0].Slot)
	}
}
