package mac

import (
	"errors"
	"fmt"
	"sort"
)

// Vanilla (centralized) slot allocation, Sec. 5.2: with periods known
// up front and perfect synchronization, the offsets a_i can be chosen
// statically so no two tags ever share a slot. The paper shows why this
// breaks in practice (beacon loss, late arrival); it remains the
// baseline and the reader's internal feasibility oracle.

// Assignment is a tag's static schedule: transmit when
// slot mod Period == Offset.
type Assignment struct {
	Period Period
	Offset int
}

// Conflicts reports whether two assignments ever transmit in the same
// slot. For power-of-two periods this happens iff the offsets are
// congruent modulo the smaller period.
func (a Assignment) Conflicts(b Assignment) bool {
	m := a.Period
	if b.Period < m {
		m = b.Period
	}
	return a.Offset%int(m) == b.Offset%int(m)
}

// TransmitsAt reports whether the assignment fires in absolute slot s.
func (a Assignment) TransmitsAt(s int) bool {
	return s%int(a.Period) == a.Offset%int(a.Period)
}

// ErrInfeasible is returned when no collision-free allocation exists.
var ErrInfeasible = errors.New("mac: no collision-free allocation exists")

// VanillaAllocate computes a non-overlapping static schedule for the
// pattern (Table 1 generalized), or ErrInfeasible. It assigns tags in
// ascending period order with backtracking; the result maps tag index
// to its assignment.
func VanillaAllocate(pt Pattern) ([]Assignment, error) {
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	// Work on tags sorted by period (shortest first — they are the
	// most constrained), remembering original indices.
	order := make([]int, pt.NumTags())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return pt.Periods[order[a]] < pt.Periods[order[b]]
	})

	chosen := make([]Assignment, 0, pt.NumTags())
	var backtrack func(k int) bool
	backtrack = func(k int) bool {
		if k == len(order) {
			return true
		}
		p := pt.Periods[order[k]]
		for off := 0; off < int(p); off++ {
			cand := Assignment{Period: p, Offset: off}
			ok := true
			for _, prev := range chosen {
				if cand.Conflicts(prev) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen = append(chosen, cand)
			if backtrack(k + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	if !backtrack(0) {
		return nil, ErrInfeasible
	}
	out := make([]Assignment, pt.NumTags())
	for k, idx := range order {
		out[idx] = chosen[k]
	}
	return out, nil
}

// VerifySchedule exhaustively checks a schedule over its hyperperiod
// and returns an error naming the first colliding slot, or nil.
func VerifySchedule(as []Assignment) error {
	h := 1
	for _, a := range as {
		if int(a.Period) > h {
			h = int(a.Period)
		}
	}
	for s := 0; s < h; s++ {
		count := 0
		for _, a := range as {
			if a.TransmitsAt(s) {
				count++
			}
		}
		if count > 1 {
			return fmt.Errorf("mac: %d tags collide in slot %d", count, s)
		}
	}
	return nil
}

// FeasibleOffset returns an offset for a new tag with period p that
// avoids all existing assignments, or -1 when none exists — the
// reader's Sec. 5.6 oracle ("the reader analyzes the periods of each
// tag and the current slot occupancy").
func FeasibleOffset(existing []Assignment, p Period) int {
	for off := 0; off < int(p); off++ {
		cand := Assignment{Period: p, Offset: off}
		ok := true
		for _, a := range existing {
			if cand.Conflicts(a) {
				ok = false
				break
			}
		}
		if ok {
			return off
		}
	}
	return -1
}

// ChooseVictim selects which settled tag the reader should evict (by
// successive NACKs) to make room for a blocked newcomer with period p
// (Sec. 5.6: "the reader prioritizes selecting less crowded slots").
// It returns the index into existing whose removal leaves a feasible
// offset for the newcomer, preferring the victim with the longest
// period (most flexible to relocate); -1 if no single eviction helps.
func ChooseVictim(existing []Assignment, p Period) int {
	best := -1
	for i := range existing {
		rest := make([]Assignment, 0, len(existing)-1)
		rest = append(rest, existing[:i]...)
		rest = append(rest, existing[i+1:]...)
		if FeasibleOffset(rest, p) < 0 {
			continue
		}
		// The evicted tag must itself be re-placeable afterwards.
		withNew := append(append([]Assignment{}, rest...), Assignment{Period: p, Offset: FeasibleOffset(rest, p)})
		if FeasibleOffset(withNew, existing[i].Period) < 0 {
			continue
		}
		if best < 0 || existing[i].Period > existing[best].Period {
			best = i
		}
	}
	return best
}

// Table1Example returns the paper's illustrative allocation: four tags
// with periods 2, 4, 8, 8 and offsets 0, 1, 7, 3 — full utilization
// with zero overlap.
func Table1Example() []Assignment {
	return []Assignment{
		{Period: 2, Offset: 0},
		{Period: 4, Offset: 1},
		{Period: 8, Offset: 7},
		{Period: 8, Offset: 3},
	}
}
