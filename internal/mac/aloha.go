package mac

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Pure-ALOHA baseline (Appendix B): each battery-free tag transmits the
// moment it has harvested enough energy (capacitor at HTH), then
// recharges from LTH — which takes only ~15.2% of the full charge — and
// repeats. There is no coordination whatsoever; overlapping 200 ms
// transmissions collide.

// AlohaConfig parameterizes the Appendix B simulation.
type AlohaConfig struct {
	// FullChargeSeconds is each tag's 0 -> HTH charging time (the
	// measured 4.5-56.2 s range).
	FullChargeSeconds []float64
	// RechargeFraction is the LTH -> HTH recharge cost relative to a
	// full charge (0.152 in the paper).
	RechargeFraction float64
	// PacketSeconds is the transmission duration (0.2 s).
	PacketSeconds float64
	// NoiseFraction is the Gaussian jitter applied to each recharge
	// (0.02 in the paper).
	NoiseFraction float64
	// DurationSeconds is the simulated horizon (10,000 s).
	DurationSeconds float64
	Seed            uint64
}

// DefaultAlohaConfig returns the paper's settings for the given per-tag
// charge times.
func DefaultAlohaConfig(chargeTimes []float64) AlohaConfig {
	return AlohaConfig{
		FullChargeSeconds: chargeTimes,
		RechargeFraction:  0.152,
		PacketSeconds:     0.2,
		NoiseFraction:     0.02,
		DurationSeconds:   10_000,
		Seed:              1,
	}
}

// AlohaTagStats is one bar pair of Fig. 19.
type AlohaTagStats struct {
	Tag        int // 1-based
	Total      int
	Collided   int
	SuccessPct float64
}

// AlohaResult aggregates the simulation.
type AlohaResult struct {
	PerTag []AlohaTagStats
	// TotalTransmissions and CollisionFreePct summarize the run (the
	// paper reports 34.0% collision-free overall).
	TotalTransmissions int
	CollisionFreePct   float64
}

type alohaTx struct {
	tag        int
	start, end float64
}

// SimulateAloha runs the Appendix B experiment.
func SimulateAloha(cfg AlohaConfig) (AlohaResult, error) {
	if len(cfg.FullChargeSeconds) == 0 {
		return AlohaResult{}, fmt.Errorf("mac: no tags configured")
	}
	if cfg.PacketSeconds <= 0 || cfg.DurationSeconds <= 0 {
		return AlohaResult{}, fmt.Errorf("mac: invalid durations")
	}
	rng := sim.NewRand(cfg.Seed)
	var events []alohaTx
	for i, full := range cfg.FullChargeSeconds {
		if full <= 0 {
			return AlohaResult{}, fmt.Errorf("mac: tag %d charge time %v", i+1, full)
		}
		r := rng.Fork(uint64(i + 1))
		// First activation: full charge from empty.
		t := full * (1 + cfg.NoiseFraction*r.NormFloat64())
		recharge := full * cfg.RechargeFraction
		// A packet must fit entirely inside the horizon: a transmission
		// whose end would spill past DurationSeconds is never started
		// (the run ends), so it must not be generated or counted.
		for t+cfg.PacketSeconds <= cfg.DurationSeconds {
			// Transmit now; charging pauses during the packet.
			events = append(events, alohaTx{tag: i + 1, start: t, end: t + cfg.PacketSeconds})
			t += cfg.PacketSeconds
			t += recharge * (1 + cfg.NoiseFraction*r.NormFloat64())
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].start < events[b].start })

	// Exact overlap sweep: events are sorted by start, and packets are
	// short, so the inner loop scans only the few events that can still
	// overlap event i.
	collided := make([]bool, len(events))
	for i := 0; i < len(events); i++ {
		for j := i + 1; j < len(events) && events[j].start < events[i].end; j++ {
			collided[i] = true
			collided[j] = true
		}
	}

	res := AlohaResult{PerTag: make([]AlohaTagStats, len(cfg.FullChargeSeconds))}
	for i := range res.PerTag {
		res.PerTag[i].Tag = i + 1
	}
	clean := 0
	for i, e := range events {
		st := &res.PerTag[e.tag-1]
		st.Total++
		if collided[i] {
			st.Collided++
		} else {
			clean++
		}
	}
	for i := range res.PerTag {
		st := &res.PerTag[i]
		if st.Total > 0 {
			st.SuccessPct = 100 * float64(st.Total-st.Collided) / float64(st.Total)
		}
	}
	res.TotalTransmissions = len(events)
	if len(events) > 0 {
		res.CollisionFreePct = 100 * float64(clean) / float64(len(events))
	}
	return res, nil
}
