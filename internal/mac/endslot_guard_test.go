package mac

import (
	"errors"
	"testing"
)

// EndSlot must reject observations carrying impossible tag ids with a
// typed error and leave all protocol state untouched — a corrupted
// decode chain may hand the reader garbage, and garbage must not
// advance the slot clock or poison the ledger.
func TestEndSlotRejectsBadTIDs(t *testing.T) {
	r, err := NewReaderProtocol(map[int]Period{1: 4, 2: 8})
	if err != nil {
		t.Fatal(err)
	}
	r.Reset()
	// Establish some state: tag 1 decodes cleanly and settles.
	if fb, err := r.EndSlot(Observation{Decoded: []int{1}}); err != nil || !fb.ACK {
		t.Fatalf("clean decode: fb=%+v err=%v", fb, err)
	}
	slotBefore := r.Slot()
	settledBefore := r.SettledCount()

	for _, bad := range [][]int{{0}, {-1}, {MaxObservationTID + 1}, {2, -7}} {
		fb, err := r.EndSlot(Observation{Decoded: bad})
		if err == nil {
			t.Fatalf("EndSlot(%v) accepted", bad)
		}
		var bt *BadTIDError
		if !errors.As(err, &bt) {
			t.Fatalf("EndSlot(%v) error %T, want *BadTIDError", bad, err)
		}
		if bt.TID != bad[len(bad)-1] && bt.TID != bad[0] {
			t.Errorf("EndSlot(%v) reported tid %d", bad, bt.TID)
		}
		if fb != (Feedback{}) {
			t.Errorf("EndSlot(%v) returned non-zero feedback %+v", bad, fb)
		}
		if r.Slot() != slotBefore {
			t.Fatalf("EndSlot(%v) advanced the slot clock to %d", bad, r.Slot())
		}
		if r.SettledCount() != settledBefore {
			t.Fatalf("EndSlot(%v) mutated the ledger", bad)
		}
	}

	// The boundary id itself is valid.
	if _, err := r.EndSlot(Observation{Decoded: []int{MaxObservationTID}}); err != nil {
		t.Fatalf("EndSlot at MaxObservationTID rejected: %v", err)
	}
	// And the protocol still works after rejections.
	if _, err := r.EndSlot(Observation{Decoded: []int{2}}); err != nil {
		t.Fatalf("valid call after rejections failed: %v", err)
	}
}
