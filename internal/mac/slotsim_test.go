package mac

import (
	"sort"
	"testing"
)

func TestSlotSimConvergesPerfectLinks(t *testing.T) {
	for _, pt := range Table3Patterns() {
		s, err := NewSlotSim(SlotSimConfig{Pattern: pt, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		slots, ok := s.RunUntilConverged(100_000)
		if !ok {
			t.Errorf("%s never converged", pt.Name)
			continue
		}
		if slots < 32 {
			t.Errorf("%s converged in %d slots (< window)", pt.Name, slots)
		}
		// Once converged with perfect links, the settled schedule is
		// collision-free (Lemma 1): run on and demand zero further
		// collisions.
		before := s.TruthCollisions
		s.Run(500)
		if s.TruthCollisions != before {
			t.Errorf("%s: %d collisions after convergence", pt.Name, s.TruthCollisions-before)
		}
	}
}

func TestSlotSimAllSettledAfterConvergence(t *testing.T) {
	pt := Table3Patterns()[2] // c3
	s, err := NewSlotSim(SlotSimConfig{Pattern: pt, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.RunUntilConverged(100_000); !ok {
		t.Fatal("no convergence")
	}
	// Let the last ACKs land.
	s.Run(2 * pt.Hyperperiod())
	if !s.AllSettled() {
		t.Errorf("states after convergence: %v", s.TagStates())
	}
	// The settled assignments must be mutually conflict-free.
	if err := VerifySchedule(s.Assignments()); err != nil {
		t.Errorf("settled schedule collides: %v", err)
	}
}

// TestLemma1SettledImpliesCollisionFree is the DESIGN.md safety
// property: whenever all tags are in SETTLE (with synchronized
// counters, i.e. no beacon loss), no slot has two transmitters.
func TestLemma1SettledImpliesCollisionFree(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		pt := Table3Patterns()[int(seed)%len(Table3Patterns())]
		s, err := NewSlotSim(SlotSimConfig{Pattern: pt, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30_000; i++ {
			res := s.Step()
			if s.AllSettled() && len(res.Transmitters) > 1 {
				t.Fatalf("seed %d %s: collision in slot %d with all tags settled",
					seed, pt.Name, res.Slot)
			}
			if s.Convergence.Converged() && s.SlotsRun > s.Convergence.ConvergenceSlot()+500 {
				break
			}
		}
	}
}

func TestConvergenceGrowsWithUtilization(t *testing.T) {
	// Fig. 15(a): median first-convergence time rises steeply from c1
	// (U=0.38) to c5 (U=1.0).
	median := func(pt Pattern) int {
		var times []int
		for seed := uint64(0); seed < 15; seed++ {
			s, err := NewSlotSim(SlotSimConfig{Pattern: pt, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			slots, ok := s.RunUntilConverged(300_000)
			if !ok {
				t.Fatalf("%s seed %d: no convergence", pt.Name, seed)
			}
			times = append(times, slots)
		}
		sort.Ints(times)
		return times[len(times)/2]
	}
	pats := Table3Patterns()
	c1 := median(pats[0])
	c5 := median(pats[4])
	if c5 < 4*c1 {
		t.Errorf("c5 median (%d) should dwarf c1 median (%d)", c5, c1)
	}
	if c1 < 32 || c1 > 600 {
		t.Errorf("c1 median %d outside plausible band (paper: 139)", c1)
	}
	if c5 < 300 || c5 > 8000 {
		t.Errorf("c5 median %d outside plausible band (paper: 1712)", c5)
	}
}

func TestBeaconLossRecovery(t *testing.T) {
	// With 1% beacon loss the network keeps getting disrupted but must
	// keep re-settling: over a long run the collision ratio stays low
	// and the non-empty ratio near the bound (Fig. 16 behaviour).
	pt := Table3Patterns()[2] // c3, bound 0.84375
	loss := make([]float64, pt.NumTags())
	for i := range loss {
		loss[i] = 0.001
	}
	s, err := NewSlotSim(SlotSimConfig{
		Pattern:        pt,
		Seed:           11,
		BeaconLossProb: loss,
		CaptureProb:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10_000)
	nonEmpty := s.Window.AverageNonEmptyRatio()
	collision := s.Window.AverageCollisionRatio()
	if nonEmpty < 0.70 || nonEmpty > 0.86 {
		t.Errorf("non-empty ratio %.3f, want near 0.812 (paper)", nonEmpty)
	}
	if collision > 0.12 {
		t.Errorf("collision ratio %.3f too high (paper: 0.056)", collision)
	}
}

func TestLateArrivalIntegratesWithoutDisruption(t *testing.T) {
	// Tags 1..11 converge first; tag 12 (period 16) joins at slot 3000.
	// The EMPTY gate should let it integrate while settled tags keep
	// their slots.
	pt := Table3Patterns()[1] // c2: 12 tags period 16, U = 0.75
	join := make([]int, 12)
	join[11] = 3000
	s, err := NewSlotSim(SlotSimConfig{Pattern: pt, Seed: 5, JoinSlot: join})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3000)
	if !s.Convergence.Converged() {
		t.Fatal("first 11 tags did not converge before the join")
	}
	// Record settled offsets of the early tags.
	pre := s.Assignments()[:11]
	// Run long enough for tag 12 to integrate.
	collisionsBefore := s.TruthCollisions
	s.Run(4000)
	if !s.AllSettled() {
		t.Fatalf("late tag never settled; states %v", s.TagStates())
	}
	post := s.Assignments()
	for i := 0; i < 11; i++ {
		if post[i] != pre[i] {
			t.Errorf("settled tag %d moved from %+v to %+v during late join",
				i+1, pre[i], post[i])
		}
	}
	if err := VerifySchedule(post); err != nil {
		t.Errorf("final schedule collides: %v", err)
	}
	// The EMPTY gate means integration happens with almost no new
	// collisions.
	if d := s.TruthCollisions - collisionsBefore; d > 3 {
		t.Errorf("late join caused %d collisions", d)
	}
}

func TestFutureCollisionScenarioEndToEnd(t *testing.T) {
	// Sec. 5.6: A and B (period 4) early, C (period 2) late. C is
	// structurally blocked until the reader evicts one of A/B; then all
	// three settle.
	pt := Pattern{Name: "sec5.6", Periods: []Period{4, 4, 2}}
	join := []int{0, 0, 400}
	var settledAll bool
	for seed := uint64(0); seed < 10 && !settledAll; seed++ {
		s, err := NewSlotSim(SlotSimConfig{Pattern: pt, Seed: seed, JoinSlot: join})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(6000)
		settledAll = s.AllSettled() && VerifySchedule(s.Assignments()) == nil
	}
	if !settledAll {
		t.Error("the Sec. 5.6 deadlock was never resolved in 10 seeds")
	}
}

func TestSlotSimDeterministic(t *testing.T) {
	cfg := SlotSimConfig{Pattern: Table3Patterns()[3], Seed: 99,
		BeaconLossProb: []float64{0.01, 0.01, 0.01}}
	a, err := NewSlotSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSlotSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		ra, rb := a.Step(), b.Step()
		if len(ra.Transmitters) != len(rb.Transmitters) || ra.Feedback != rb.Feedback {
			t.Fatalf("same seed diverged at slot %d", i)
		}
	}
}

func TestSlotSimTagCounters(t *testing.T) {
	s, err := NewSlotSim(SlotSimConfig{Pattern: Pattern{Periods: []Period{2}}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	tx, acks, err := s.TagCounters(1)
	if err != nil {
		t.Fatal(err)
	}
	if tx < 40 || acks == 0 {
		t.Errorf("tx=%d acks=%d for a lone period-2 tag over 100 slots", tx, acks)
	}
	if _, _, err := s.TagCounters(2); err == nil {
		t.Error("out-of-range tid accepted")
	}
}

func TestSlotSimRejectsBadPattern(t *testing.T) {
	if _, err := NewSlotSim(SlotSimConfig{Pattern: Pattern{Periods: []Period{3}}}); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestConvergenceDetector(t *testing.T) {
	d := NewConvergenceDetector()
	for i := 0; i < 31; i++ {
		if d.Observe(false) {
			t.Fatal("converged early")
		}
	}
	if !d.Observe(false) {
		t.Fatal("did not converge at 32 clean slots")
	}
	if !d.Converged() || d.ConvergenceSlot() != 32 {
		t.Errorf("slot = %d", d.ConvergenceSlot())
	}
	// A collision resets the run.
	d2 := NewConvergenceDetector()
	for i := 0; i < 31; i++ {
		d2.Observe(false)
	}
	d2.Observe(true)
	for i := 0; i < 31; i++ {
		if d2.Observe(false) {
			t.Fatal("converged before a fresh 32-run")
		}
	}
	if !d2.Observe(false) {
		t.Fatal("never converged after reset")
	}
	if d2.ConvergenceSlot() != 64 {
		t.Errorf("slot = %d, want 64", d2.ConvergenceSlot())
	}
}

func TestWindowStats(t *testing.T) {
	w := NewWindowStats()
	for i := 0; i < 16; i++ {
		w.Observe(true, false)
	}
	for i := 0; i < 16; i++ {
		w.Observe(false, false)
	}
	if r := w.NonEmptyRatio(); r != 0.5 {
		t.Errorf("windowed non-empty = %v", r)
	}
	w.Observe(true, true)
	if w.CollisionRatio() == 0 {
		t.Error("collision not reflected in window")
	}
	if w.Slots() != 33 {
		t.Errorf("slots = %d", w.Slots())
	}
	if w.AverageNonEmptyRatio() <= 0.5 || w.AverageNonEmptyRatio() >= 0.6 {
		t.Errorf("avg non-empty = %v", w.AverageNonEmptyRatio())
	}
	var empty WindowStats
	if empty.NonEmptyRatio() != 0 || empty.AverageCollisionRatio() != 0 {
		t.Error("empty stats should be zero")
	}
}

// TestMillionSlotSoak runs the protocol for a million slots (c3 with
// realistic impairments) and checks the long-run metrics stay at the
// Fig. 16 operating point throughout. Skipped under -short.
func TestMillionSlotSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	pt := Table3Patterns()[2]
	loss := make([]float64, pt.NumTags())
	ulf := make([]float64, pt.NumTags())
	for i := range loss {
		loss[i] = 0.001
		ulf[i] = 0.005
	}
	s, err := NewSlotSim(SlotSimConfig{
		Pattern:          pt,
		Seed:             777,
		BeaconLossProb:   loss,
		ULDecodeFailProb: ulf,
		CaptureProb:      0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 1_000_000
	for done := 0; done < total; done += 100_000 {
		s.Run(100_000)
		ne := s.Window.AverageNonEmptyRatio()
		cr := s.Window.AverageCollisionRatio()
		if ne < 0.74 || ne > 0.86 {
			t.Fatalf("at slot %d: non-empty drifted to %.3f", s.SlotsRun, ne)
		}
		if cr > 0.11 {
			t.Fatalf("at slot %d: collision ratio drifted to %.3f", s.SlotsRun, cr)
		}
	}
	// Tag counters stay self-consistent over the whole run.
	for tid := 1; tid <= pt.NumTags(); tid++ {
		tx, acks, err := s.TagCounters(tid)
		if err != nil {
			t.Fatal(err)
		}
		if acks > tx {
			t.Fatalf("tag %d: %d acks for %d transmissions", tid, acks, tx)
		}
		if tx == 0 {
			t.Fatalf("tag %d never transmitted in a million slots", tid)
		}
	}
}
