package mac

import "fmt"

// Fault-injection seam of the slot-level simulator. The protocol layer
// does not know how faults are generated — internal/faults compiles a
// deterministic fault plan into a FaultSource — it only knows how each
// fault manifests in a slot: a beacon that never arrives, an ACK flag
// that flips in one tag's receiver, an uplink that fades below the
// decode threshold, a tag that browns out mid-response, a reader whose
// carrier drops, a clock that slips a slot boundary.

// SlotFaults describes the fault environment of one slot. All per-tag
// slices are indexed 0-based (tag i has TID i+1); nil or short slices
// mean "no fault" for the missing tags, so the zero value is a
// fault-free slot.
type SlotFaults struct {
	// ReaderDown suppresses the slot entirely: no beacon is broadcast,
	// every powered tag experiences a beacon loss, and the reader
	// neither observes the channel nor advances its slot counter.
	ReaderDown bool
	// ReaderReset makes the recovering reader open this slot with a
	// RESET beacon (carrier restart with state loss), forcing a full
	// network recontention.
	ReaderReset bool
	// BeaconLoss marks tags whose downlink beacon is lost this slot
	// (feedback corruption severe enough to fail the decode).
	BeaconLoss []bool
	// CorruptACK marks tags whose received ACK flag is inverted this
	// slot (a single-bit downlink corruption that passes the decoder —
	// the beacon deliberately has no CRC, Sec. 4.2).
	CorruptACK []bool
	// SlipSlot marks tags whose clock jittered across the slot
	// boundary: the beacon is sampled at the wrong time and the slot is
	// lost, indistinguishable from a beacon loss at the protocol layer.
	SlipSlot []bool
	// ULFailProb adds a per-tag probability that a solo uplink fails to
	// decode this slot (transient channel fade).
	ULFailProb []float64
	// Brownout marks tags whose supercapacitor is force-drained this
	// slot. The tag heard the beacon (the drain is mid-slot) but its
	// response, if any, dies on air; all volatile protocol state is
	// lost and the tag is dark until it recharges.
	Brownout []bool
	// RejoinDelay is the per-tag number of whole slots a browned-out
	// tag stays dark before recharging past HTH and rejoining as a
	// newcomer; entries < 1 are clamped to 1. Only read for tags whose
	// Brownout entry is set.
	RejoinDelay []int
}

// FaultSource supplies the fault environment slot by slot. BeginSlot is
// called exactly once per simulated slot with monotonically increasing
// slot indices, which lets implementations advance burst processes
// deterministically.
type FaultSource interface {
	BeginSlot(slot int) SlotFaults
}

// MaxObservationTID bounds the tag ids EndSlot accepts in an
// Observation. The hardware TID field is 4 bits (phy.MaxTags), but the
// simulator allows larger synthetic populations; the bound exists to
// reject garbage from corrupted decodes, not to constrain experiments.
const MaxObservationTID = 1 << 16

// BadTIDError reports an Observation carrying an impossible tag id —
// the typed error EndSlot returns instead of trusting the caller.
type BadTIDError struct {
	TID int
}

func (e *BadTIDError) Error() string {
	return fmt.Sprintf("mac: observation tid %d out of range [1, %d]", e.TID, MaxObservationTID)
}

// validate rejects observations whose decoded tag ids cannot have come
// from a real decode chain.
func (o Observation) validate() error {
	for _, tid := range o.Decoded {
		if tid < 1 || tid > MaxObservationTID {
			return &BadTIDError{TID: tid}
		}
	}
	return nil
}
