package mac

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// ReaderProtocol is the reader-side half of the distributed slot
// allocation: it turns per-slot channel observations into the broadcast
// feedback (ACK/NACK + EMPTY) and implements the Sec. 5.6
// future-collision avoidance using its a-priori knowledge of every
// tag's period.
//
// The per-slot state (settled beliefs, miss counters, appearance set)
// lives in dense tid-indexed tables sized to the provisioned
// population, so the EndSlot hot path runs without a single allocation
// or map operation — the fleet pool executes millions of slots per
// sweep through this code. Observations may still carry any tid up to
// MaxObservationTID (the reader tolerates unprovisioned tags); ids
// beyond the dense range spill into a lazily-built overflow set.
type ReaderProtocol struct {
	// Periods maps TID to its transmission period (known to the reader
	// by provisioning, Sec. 5.5).
	Periods map[int]Period
	// NackThreshold mirrors the tags' N: after this many consecutive
	// missed expected slots the reader un-settles its belief about a
	// tag.
	NackThreshold int
	// DisableFutureVeto turns off the Sec. 5.6 future-collision
	// avoidance (ablation only): every clean solo decode is ACKed.
	DisableFutureVeto bool
	// Trace, when set, receives settle / unsettle / evict events as the
	// reader's belief changes. A nil tracer costs nothing.
	Trace *obs.Tracer

	slot int // index of the slot that is about to end
	maxP int // largest provisioned period

	// Dense tid-indexed protocol state, length maxTID+1 (index 0
	// unused). settledOK[tid] gates settled[tid]/misses[tid];
	// settledCount mirrors the number of true entries.
	settled      []Assignment
	settledOK    []bool
	misses       []int
	appeared     []bool // T_a of Eq. 4, dense portion
	appearedHi   map[int]bool
	settledCount int

	// Scratch for settledExcept, reused across slots (callers must not
	// retain the returned slices).
	exAs   []Assignment
	exTIDs []int
	// Scratch for victim selection (chooseVictim).
	vScratch []Assignment

	evictTID   int // tag being force-migrated for a blocked newcomer; -1 if none
	evictNacks int
}

// Observation is what the reader's PHY chain reports for one slot.
type Observation struct {
	// Decoded lists the TIDs of CRC-valid uplink packets (usually one;
	// the capture effect can deliver one even during a collision).
	Decoded []int
	// Collision is the IQ-cluster inference: more than one tag
	// transmitted, regardless of decode success.
	Collision bool
}

// NonEmpty reports whether anything was on the channel.
func (o Observation) NonEmpty() bool { return len(o.Decoded) > 0 || o.Collision }

// decodedHas reports whether tid decoded this slot. Linear scan: the
// list holds at most a handful of entries, and avoiding a per-slot map
// keeps EndSlot allocation-free.
func (o Observation) decodedHas(tid int) bool {
	for _, d := range o.Decoded {
		if d == tid {
			return true
		}
	}
	return false
}

// NewReaderProtocol builds the reader state machine for the
// provisioned tag population.
func NewReaderProtocol(periods map[int]Period) (*ReaderProtocol, error) {
	maxP := 1
	maxTID := 0
	// Validate in sorted tid order so the reported offender does not
	// depend on map iteration order.
	tids := make([]int, 0, len(periods))
	for tid := range periods {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		p := periods[tid]
		if !ValidPeriod(p) {
			return nil, fmt.Errorf("mac: tag %d has invalid period %d", tid, p)
		}
		if int(p) > maxP {
			maxP = int(p)
		}
		if tid > maxTID {
			maxTID = tid
		}
	}
	r := &ReaderProtocol{
		Periods:       periods,
		NackThreshold: DefaultNackThreshold,
		maxP:          maxP,
		settled:       make([]Assignment, maxTID+1),
		settledOK:     make([]bool, maxTID+1),
		misses:        make([]int, maxTID+1),
		appeared:      make([]bool, maxTID+1),
		exAs:          make([]Assignment, 0, maxTID+1),
		exTIDs:        make([]int, 0, maxTID+1),
		vScratch:      make([]Assignment, 0, maxTID+2),
	}
	r.reset()
	return r, nil
}

// reset clears all protocol state in place; no allocation, so pooled
// simulators rewind through it between trials.
func (r *ReaderProtocol) reset() {
	r.slot = 0
	for i := range r.settled {
		r.settled[i] = Assignment{}
		r.settledOK[i] = false
		r.misses[i] = 0
		r.appeared[i] = false
	}
	clear(r.appearedHi)
	r.settledCount = 0
	r.evictTID = -1
	r.evictNacks = 0
}

// Reset clears all protocol state and returns the RESET beacon
// feedback to broadcast.
func (r *ReaderProtocol) Reset() Feedback {
	r.reset()
	return Feedback{Reset: true, Empty: true}
}

// Slot returns the index of the currently open slot.
func (r *ReaderProtocol) Slot() int { return r.slot }

// SyncSlot aligns the reader's slot counter with an external clock. The
// slot simulator uses it across carrier outages and restarts: the
// mains-powered reader keeps absolute time while unpowered tags freeze,
// so trace events from reader and simulator stay in one slot frame and
// settled beliefs are judged against real elapsed slots.
func (r *ReaderProtocol) SyncSlot(slot int) {
	if slot > r.slot {
		r.slot = slot
	}
}

// SettledCount returns how many tags the reader believes are settled.
func (r *ReaderProtocol) SettledCount() int { return r.settledCount }

// EvictTarget returns the TID currently being force-migrated for a
// blocked newcomer, or -1 when no eviction is in progress.
func (r *ReaderProtocol) EvictTarget() int { return r.evictTID }

// markAppeared records tid in the appearance set T_a.
func (r *ReaderProtocol) markAppeared(tid int) {
	if tid < len(r.appeared) {
		r.appeared[tid] = true
		return
	}
	if r.appearedHi == nil {
		r.appearedHi = make(map[int]bool)
	}
	r.appearedHi[tid] = true
}

// SettledAssignments returns a copy of the reader's current belief in
// ascending tid order, so the slice is identical across runs.
func (r *ReaderProtocol) SettledAssignments() []Assignment {
	out := make([]Assignment, 0, r.settledCount)
	for tid, ok := range r.settledOK {
		if ok {
			out = append(out, r.settled[tid])
		}
	}
	return out
}

// settledExcept gathers the settled assignments of all tags other than
// tid in ascending tid order, paired with their tids, into reusable
// scratch (valid until the next call). The dense walk is already
// tid-ordered, so victim selection stays deterministic without a sort.
func (r *ReaderProtocol) settledExcept(tid int) ([]Assignment, []int) {
	r.exAs = r.exAs[:0]
	r.exTIDs = r.exTIDs[:0]
	for id, ok := range r.settledOK {
		if ok && id != tid {
			r.exAs = append(r.exAs, r.settled[id])
			r.exTIDs = append(r.exTIDs, id)
		}
	}
	return r.exAs, r.exTIDs
}

// EndSlot ingests the observation for the slot that just ended and
// returns the feedback to broadcast in the beacon that opens the next
// slot. Observations carrying impossible tag ids (non-positive, or
// beyond MaxObservationTID — a corrupted decode, not a real tag) are
// rejected with a *BadTIDError before any state changes: the slot has
// not ended and the reader's belief is untouched.
func (r *ReaderProtocol) EndSlot(o Observation) (Feedback, error) {
	if err := o.validate(); err != nil {
		return Feedback{}, err
	}
	s := r.slot

	ack := false
	switch {
	case o.Collision || len(o.Decoded) > 1:
		// Definite collision: broadcast NACK (Sec. 5.3 "we set the ACK
		// flag to false, even if the reader successfully decodes a UL
		// packet").
	case len(o.Decoded) == 1:
		ack = r.judgeSolo(o.Decoded[0], s)
	}

	r.trackExpected(o, s)

	r.slot++
	return Feedback{ACK: ack, Empty: r.emptyFlag(r.slot)}, nil
}

// judgeSolo decides ACK for a cleanly decoded single packet from tid in
// slot s, applying future-collision avoidance.
func (r *ReaderProtocol) judgeSolo(tid, s int) bool {
	p, known := r.Periods[tid]
	if !known {
		// A tag the reader was not provisioned for: tolerate it with a
		// plain ACK (it cannot be checked for future collisions).
		r.markAppeared(tid)
		return true
	}
	r.markAppeared(tid)
	cand := Assignment{Period: p, Offset: s % int(p)}

	if r.settledOK[tid] && r.settled[tid] == cand {
		// Settled tag on its usual schedule.
		r.misses[tid] = 0
		if r.evictTID == tid {
			// This tag is being evicted for a blocked newcomer: keep
			// NACKing it (Sec. 5.6) until it migrates.
			r.evictNacks++
			if r.evictNacks >= r.NackThreshold {
				r.unsettle(tid)
				r.evictTID = -1
				if r.Trace.Enabled() {
					r.Trace.Emit(obs.Event{Kind: obs.KindTagUnsettle, Slot: s, TID: tid, Detail: "evicted"})
				}
			}
			return false
		}
		return true
	}

	// New tag, or a settled tag showing up off-schedule (it migrated).
	others, otherTIDs := r.settledExcept(tid)
	if conflictsAny(cand, others) && !r.DisableFutureVeto {
		// Settling here would collide with an already-settled tag in a
		// future slot: veto.
		if FeasibleOffset(others, p) < 0 && r.evictTID < 0 {
			// No offset works at all: pick a victim to force-migrate.
			if v := r.chooseVictim(others, p); v >= 0 {
				r.evictTID = otherTIDs[v]
				r.evictNacks = 0
				if r.Trace.Enabled() {
					r.Trace.Emit(obs.Event{Kind: obs.KindTagEvict, Slot: s, TID: r.evictTID,
						Detail: fmt.Sprintf("blocked_tid=%d", tid)})
				}
			}
		}
		return false
	}
	// Viable: accept and record the belief.
	if !r.settledOK[tid] {
		r.settledOK[tid] = true
		r.settledCount++
	}
	r.settled[tid] = cand
	r.misses[tid] = 0
	if r.Trace.Enabled() {
		r.Trace.Emit(obs.Event{Kind: obs.KindTagSettle, Slot: s, TID: tid,
			Period: int(cand.Period), Offset: cand.Offset})
	}
	return true
}

// chooseVictim is ChooseVictim on reader-owned scratch: identical
// selection (same candidate order, same feasibility checks, same
// longest-period preference) without the per-candidate slice builds, so
// eviction decisions stay off the allocator during convergence.
func (r *ReaderProtocol) chooseVictim(existing []Assignment, p Period) int {
	if cap(r.vScratch) < len(existing)+1 {
		r.vScratch = make([]Assignment, 0, len(existing)+1)
	}
	best := -1
	for i := range existing {
		rest := r.vScratch[:0]
		rest = append(rest, existing[:i]...)
		rest = append(rest, existing[i+1:]...)
		off := FeasibleOffset(rest, p)
		if off < 0 {
			continue
		}
		// The evicted tag must itself be re-placeable afterwards.
		withNew := append(rest, Assignment{Period: p, Offset: off})
		if FeasibleOffset(withNew, existing[i].Period) < 0 {
			continue
		}
		if best < 0 || existing[i].Period > existing[best].Period {
			best = i
		}
	}
	return best
}

func conflictsAny(a Assignment, others []Assignment) bool {
	for _, o := range others {
		if a.Conflicts(o) {
			return true
		}
	}
	return false
}

func (r *ReaderProtocol) unsettle(tid int) {
	if r.settledOK[tid] {
		r.settledOK[tid] = false
		r.settled[tid] = Assignment{}
		r.misses[tid] = 0
		r.settledCount--
	}
}

// trackExpected updates the reader's per-tag belief: a settled tag that
// fails to show in its expected slot for NackThreshold consecutive
// rounds is dropped (it migrated, desynchronized or browned out). The
// ascending dense walk visits tags in tid order — the same order the
// old sorted-snapshot scan used — so the tag_unsettle trace events
// appear identically on every run.
func (r *ReaderProtocol) trackExpected(o Observation, s int) {
	for tid, ok := range r.settledOK {
		if !ok {
			continue
		}
		a := r.settled[tid]
		if !a.TransmitsAt(s) {
			continue
		}
		if o.decodedHas(tid) {
			continue // seen (judgeSolo already reset misses on ACK path)
		}
		// Missed its expected slot (whether silent or lost in a
		// collision): after N consecutive misses the belief is stale.
		r.misses[tid]++
		if r.misses[tid] >= r.NackThreshold {
			if r.evictTID == tid {
				r.evictTID = -1
			}
			r.unsettle(tid)
			if r.Trace.Enabled() {
				r.Trace.Emit(obs.Event{Kind: obs.KindTagUnsettle, Slot: s, TID: tid, Detail: "missed"})
			}
		}
	}
}

// emptyFlag computes the EMPTY prediction for the slot about to open.
// Eq. 4 phrases it as "no packet received in slot s - p_i for every
// appeared tag i"; for settled (hence periodic) tags that is exactly
// "no settled tag owns slot s", which is how we evaluate it. Naively
// replaying the receive history would also count one-off probe packets
// from migrating tags, and a single probe by a short-period tag would
// then gate newcomers off slots that are actually free — poisoning the
// very mechanism meant to integrate them (Sec. 5.5/5.6).
func (r *ReaderProtocol) emptyFlag(s int) bool {
	for tid, ok := range r.settledOK {
		if ok && r.settled[tid].TransmitsAt(s) {
			return false
		}
	}
	return true
}
