package mac

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// ReaderProtocol is the reader-side half of the distributed slot
// allocation: it turns per-slot channel observations into the broadcast
// feedback (ACK/NACK + EMPTY) and implements the Sec. 5.6
// future-collision avoidance using its a-priori knowledge of every
// tag's period.
type ReaderProtocol struct {
	// Periods maps TID to its transmission period (known to the reader
	// by provisioning, Sec. 5.5).
	Periods map[int]Period
	// NackThreshold mirrors the tags' N: after this many consecutive
	// missed expected slots the reader un-settles its belief about a
	// tag.
	NackThreshold int
	// DisableFutureVeto turns off the Sec. 5.6 future-collision
	// avoidance (ablation only): every clean solo decode is ACKed.
	DisableFutureVeto bool
	// Trace, when set, receives settle / unsettle / evict events as the
	// reader's belief changes. A nil tracer costs nothing.
	Trace *obs.Tracer

	slot     int          // index of the slot that is about to end
	maxP     int          // largest provisioned period
	appeared map[int]bool // T_a of Eq. 4
	settled  map[int]Assignment
	misses   map[int]int // consecutive expected-slot misses per settled tag

	evictTID   int // tag being force-migrated for a blocked newcomer; -1 if none
	evictNacks int
}

// Observation is what the reader's PHY chain reports for one slot.
type Observation struct {
	// Decoded lists the TIDs of CRC-valid uplink packets (usually one;
	// the capture effect can deliver one even during a collision).
	Decoded []int
	// Collision is the IQ-cluster inference: more than one tag
	// transmitted, regardless of decode success.
	Collision bool
}

// NonEmpty reports whether anything was on the channel.
func (o Observation) NonEmpty() bool { return len(o.Decoded) > 0 || o.Collision }

// NewReaderProtocol builds the reader state machine for the
// provisioned tag population.
func NewReaderProtocol(periods map[int]Period) (*ReaderProtocol, error) {
	maxP := 1
	// Validate in sorted tid order so the reported offender does not
	// depend on map iteration order.
	tids := make([]int, 0, len(periods))
	for tid := range periods {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		p := periods[tid]
		if !ValidPeriod(p) {
			return nil, fmt.Errorf("mac: tag %d has invalid period %d", tid, p)
		}
		if int(p) > maxP {
			maxP = int(p)
		}
	}
	r := &ReaderProtocol{
		Periods:       periods,
		NackThreshold: DefaultNackThreshold,
		maxP:          maxP,
	}
	r.reset()
	return r, nil
}

func (r *ReaderProtocol) reset() {
	r.slot = 0
	r.appeared = make(map[int]bool)
	r.settled = make(map[int]Assignment)
	r.misses = make(map[int]int)
	r.evictTID = -1
	r.evictNacks = 0
}

// Reset clears all protocol state and returns the RESET beacon
// feedback to broadcast.
func (r *ReaderProtocol) Reset() Feedback {
	r.reset()
	return Feedback{Reset: true, Empty: true}
}

// Slot returns the index of the currently open slot.
func (r *ReaderProtocol) Slot() int { return r.slot }

// SyncSlot aligns the reader's slot counter with an external clock. The
// slot simulator uses it across carrier outages and restarts: the
// mains-powered reader keeps absolute time while unpowered tags freeze,
// so trace events from reader and simulator stay in one slot frame and
// settled beliefs are judged against real elapsed slots.
func (r *ReaderProtocol) SyncSlot(slot int) {
	if slot > r.slot {
		r.slot = slot
	}
}

// SettledCount returns how many tags the reader believes are settled.
func (r *ReaderProtocol) SettledCount() int { return len(r.settled) }

// EvictTarget returns the TID currently being force-migrated for a
// blocked newcomer, or -1 when no eviction is in progress.
func (r *ReaderProtocol) EvictTarget() int { return r.evictTID }

// SettledAssignments returns a copy of the reader's current belief in
// ascending tid order, so the slice is identical across runs (map
// iteration order must not leak into outputs).
func (r *ReaderProtocol) SettledAssignments() []Assignment {
	out := make([]Assignment, 0, len(r.settled))
	for _, tid := range r.settledTIDs() {
		out = append(out, r.settled[tid])
	}
	return out
}

// settledTIDs returns the settled tag ids in ascending order.
func (r *ReaderProtocol) settledTIDs() []int {
	tids := make([]int, 0, len(r.settled))
	for tid := range r.settled {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	return tids
}

// settledExcept returns the settled assignments of all tags other than
// tid in ascending tid order, paired with their tids. Map iteration
// order must not leak into protocol decisions: victim selection has to
// be deterministic for reproducible runs.
func (r *ReaderProtocol) settledExcept(tid int) ([]Assignment, []int) {
	tids := make([]int, 0, len(r.settled))
	for id := range r.settled {
		if id != tid {
			tids = append(tids, id)
		}
	}
	sort.Ints(tids)
	out := make([]Assignment, len(tids))
	for i, id := range tids {
		out[i] = r.settled[id]
	}
	return out, tids
}

// EndSlot ingests the observation for the slot that just ended and
// returns the feedback to broadcast in the beacon that opens the next
// slot. Observations carrying impossible tag ids (non-positive, or
// beyond MaxObservationTID — a corrupted decode, not a real tag) are
// rejected with a *BadTIDError before any state changes: the slot has
// not ended and the reader's belief is untouched.
func (r *ReaderProtocol) EndSlot(o Observation) (Feedback, error) {
	if err := o.validate(); err != nil {
		return Feedback{}, err
	}
	s := r.slot

	ack := false
	switch {
	case o.Collision || len(o.Decoded) > 1:
		// Definite collision: broadcast NACK (Sec. 5.3 "we set the ACK
		// flag to false, even if the reader successfully decodes a UL
		// packet").
	case len(o.Decoded) == 1:
		ack = r.judgeSolo(o.Decoded[0], s)
	}

	r.trackExpected(o, s)

	r.slot++
	return Feedback{ACK: ack, Empty: r.emptyFlag(r.slot)}, nil
}

// judgeSolo decides ACK for a cleanly decoded single packet from tid in
// slot s, applying future-collision avoidance.
func (r *ReaderProtocol) judgeSolo(tid, s int) bool {
	p, known := r.Periods[tid]
	if !known {
		// A tag the reader was not provisioned for: tolerate it with a
		// plain ACK (it cannot be checked for future collisions).
		r.appeared[tid] = true
		return true
	}
	r.appeared[tid] = true
	cand := Assignment{Period: p, Offset: s % int(p)}

	if cur, ok := r.settled[tid]; ok && cur == cand {
		// Settled tag on its usual schedule.
		r.misses[tid] = 0
		if r.evictTID == tid {
			// This tag is being evicted for a blocked newcomer: keep
			// NACKing it (Sec. 5.6) until it migrates.
			r.evictNacks++
			if r.evictNacks >= r.NackThreshold {
				r.unsettle(tid)
				r.evictTID = -1
				if r.Trace.Enabled() {
					r.Trace.Emit(obs.Event{Kind: obs.KindTagUnsettle, Slot: s, TID: tid, Detail: "evicted"})
				}
			}
			return false
		}
		return true
	}

	// New tag, or a settled tag showing up off-schedule (it migrated).
	others, otherTIDs := r.settledExcept(tid)
	if conflictsAny(cand, others) && !r.DisableFutureVeto {
		// Settling here would collide with an already-settled tag in a
		// future slot: veto.
		if FeasibleOffset(others, p) < 0 && r.evictTID < 0 {
			// No offset works at all: pick a victim to force-migrate.
			if v := ChooseVictim(others, p); v >= 0 {
				r.evictTID = otherTIDs[v]
				r.evictNacks = 0
				if r.Trace.Enabled() {
					r.Trace.Emit(obs.Event{Kind: obs.KindTagEvict, Slot: s, TID: r.evictTID,
						Detail: fmt.Sprintf("blocked_tid=%d", tid)})
				}
			}
		}
		return false
	}
	// Viable: accept and record the belief.
	r.settled[tid] = cand
	r.misses[tid] = 0
	if r.Trace.Enabled() {
		r.Trace.Emit(obs.Event{Kind: obs.KindTagSettle, Slot: s, TID: tid,
			Period: int(cand.Period), Offset: cand.Offset})
	}
	return true
}

func conflictsAny(a Assignment, others []Assignment) bool {
	for _, o := range others {
		if a.Conflicts(o) {
			return true
		}
	}
	return false
}

func (r *ReaderProtocol) unsettle(tid int) {
	delete(r.settled, tid)
	delete(r.misses, tid)
}

// trackExpected updates the reader's per-tag belief: a settled tag that
// fails to show in its expected slot for NackThreshold consecutive
// rounds is dropped (it migrated, desynchronized or browned out).
func (r *ReaderProtocol) trackExpected(o Observation, s int) {
	decoded := make(map[int]bool, len(o.Decoded))
	for _, tid := range o.Decoded {
		decoded[tid] = true
	}
	// Snapshot the settled set in tid order: unsettle mutates r.settled
	// mid-scan, and the tag_unsettle trace events emitted below must
	// appear in the same order on every run for JSONL traces (and the
	// fault-recovery fingerprints built on them) to be reproducible.
	for _, tid := range r.settledTIDs() {
		a := r.settled[tid]
		if !a.TransmitsAt(s) {
			continue
		}
		if decoded[tid] {
			continue // seen (judgeSolo already reset misses on ACK path)
		}
		// Missed its expected slot (whether silent or lost in a
		// collision): after N consecutive misses the belief is stale.
		r.misses[tid]++
		if r.misses[tid] >= r.NackThreshold {
			if r.evictTID == tid {
				r.evictTID = -1
			}
			r.unsettle(tid)
			if r.Trace.Enabled() {
				r.Trace.Emit(obs.Event{Kind: obs.KindTagUnsettle, Slot: s, TID: tid, Detail: "missed"})
			}
		}
	}
}

// emptyFlag computes the EMPTY prediction for the slot about to open.
// Eq. 4 phrases it as "no packet received in slot s - p_i for every
// appeared tag i"; for settled (hence periodic) tags that is exactly
// "no settled tag owns slot s", which is how we evaluate it. Naively
// replaying the receive history would also count one-off probe packets
// from migrating tags, and a single probe by a short-period tag would
// then gate newcomers off slots that are actually free — poisoning the
// very mechanism meant to integrate them (Sec. 5.5/5.6).
func (r *ReaderProtocol) emptyFlag(s int) bool {
	for _, a := range r.settled {
		if a.TransmitsAt(s) {
			return false
		}
	}
	return true
}
