package mac

import (
	"testing"

	"repro/internal/sim"
)

func newTag(t *testing.T, p Period, seed uint64) *TagProtocol {
	t.Helper()
	tag, err := NewTagProtocol(p, sim.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tag
}

func TestTagStateString(t *testing.T) {
	if Migrate.String() != "MIGRATE" || Settle.String() != "SETTLE" {
		t.Error("state names")
	}
	if TagState(5).String() != "TagState(5)" {
		t.Error("unknown state")
	}
}

func TestNewTagProtocolValidation(t *testing.T) {
	if _, err := NewTagProtocol(3, sim.NewRand(1)); err == nil {
		t.Error("period 3 accepted")
	}
	if _, err := NewTagProtocol(4, nil); err == nil {
		t.Error("nil rng accepted")
	}
	tag := newTag(t, 8, 1)
	if tag.State() != Migrate {
		t.Error("should start in MIGRATE")
	}
	if off := tag.Offset(); off < 0 || off >= 8 {
		t.Errorf("offset %d out of range", off)
	}
	if !tag.Newcomer() {
		t.Error("fresh tag should be a newcomer")
	}
}

// runToTransmit advances beacons (free slots, no gate) until the tag
// transmits, returning how many beacons it took.
func runToTransmit(t *testing.T, tag *TagProtocol, fb Feedback) int {
	t.Helper()
	for i := 1; i <= 64; i++ {
		if tag.OnBeacon(fb) {
			return i
		}
	}
	t.Fatal("tag never transmitted")
	return 0
}

func TestTagMigrateToSettleOnACK(t *testing.T) {
	tag := newTag(t, 4, 2)
	tag.ResetState() // synchronized start: no EMPTY gating
	runToTransmit(t, tag, Feedback{})
	// The beacon after its transmission carries ACK.
	tag.OnBeacon(Feedback{ACK: true})
	if tag.State() != Settle {
		t.Errorf("state = %v after ACK, want SETTLE", tag.State())
	}
	if tag.Newcomer() {
		t.Error("ACKed tag is not a newcomer")
	}
}

func TestTagMigrateOnNACKRandomizes(t *testing.T) {
	tag := newTag(t, 32, 3)
	tag.ResetState()
	before := tag.Offset()
	mig := tag.Migrations()
	runToTransmit(t, tag, Feedback{})
	tag.OnBeacon(Feedback{ACK: false})
	if tag.State() != Migrate {
		t.Error("should stay in MIGRATE after NACK")
	}
	if tag.Migrations() != mig+1 {
		t.Error("migration not counted")
	}
	// With period 32 a re-randomized offset almost surely differs; run
	// a few rounds and require at least one change.
	changed := tag.Offset() != before
	for i := 0; i < 5 && !changed; i++ {
		runToTransmit(t, tag, Feedback{})
		tag.OnBeacon(Feedback{ACK: false})
		changed = tag.Offset() != before
	}
	if !changed {
		t.Error("offset never re-randomized after NACKs")
	}
}

func TestTagSettleToleratesNMinusOneNACKs(t *testing.T) {
	tag := newTag(t, 4, 4)
	tag.ResetState()
	runToTransmit(t, tag, Feedback{})
	tag.OnBeacon(Feedback{ACK: true}) // SETTLE
	offset := tag.Offset()

	// Two consecutive NACKs (< N=3): stays settled on the same offset.
	for k := 0; k < 2; k++ {
		runToTransmit(t, tag, Feedback{})
		tag.OnBeacon(Feedback{ACK: false})
		if tag.State() != Settle {
			t.Fatalf("left SETTLE after %d NACKs", k+1)
		}
		if tag.Offset() != offset {
			t.Fatal("offset changed while settled")
		}
	}
	// An ACK resets the failure counter.
	runToTransmit(t, tag, Feedback{})
	tag.OnBeacon(Feedback{ACK: true})
	// Two more NACKs still tolerated after the reset.
	for k := 0; k < 2; k++ {
		runToTransmit(t, tag, Feedback{})
		tag.OnBeacon(Feedback{ACK: false})
	}
	if tag.State() != Settle {
		t.Error("failure counter did not reset on ACK")
	}
	// The third consecutive NACK trips migration.
	runToTransmit(t, tag, Feedback{})
	tag.OnBeacon(Feedback{ACK: false})
	if tag.State() != Migrate {
		t.Error("did not migrate after N consecutive NACKs")
	}
}

func TestTagIgnoresFeedbackWhenSilent(t *testing.T) {
	// Sec. 5.3: tags respond to ACK/NACK only if they transmitted in
	// the last slot.
	tag := newTag(t, 8, 5)
	tag.ResetState()
	runToTransmit(t, tag, Feedback{})
	tag.OnBeacon(Feedback{ACK: true}) // settle
	// Beacons for slots where the tag is silent carry NACKs (other
	// tags colliding); they must not disturb this tag.
	state := tag.State()
	offset := tag.Offset()
	for i := 0; i < 7; i++ {
		if tag.OnBeacon(Feedback{ACK: false}) {
			tag.OnBeacon(Feedback{ACK: true})
		}
	}
	if tag.State() != state || tag.Offset() != offset {
		t.Error("silent tag reacted to other tags' NACKs")
	}
}

func TestTagBeaconLossTriggersMigrate(t *testing.T) {
	tag := newTag(t, 8, 6)
	tag.ResetState()
	runToTransmit(t, tag, Feedback{})
	tag.OnBeacon(Feedback{ACK: true})
	if tag.State() != Settle {
		t.Fatal("setup failed")
	}
	tag.OnBeaconLoss()
	if tag.State() != Migrate {
		t.Error("beacon loss must re-enter MIGRATE (Sec. 5.4 refinement)")
	}
}

func TestTagTransmitPeriodicity(t *testing.T) {
	tag := newTag(t, 4, 7)
	tag.ResetState()
	var txSlots []int
	for s := 0; s < 32; s++ {
		if tag.OnBeacon(Feedback{ACK: true}) {
			txSlots = append(txSlots, s)
		}
	}
	if len(txSlots) != 8 {
		t.Fatalf("%d transmissions in 32 slots with period 4", len(txSlots))
	}
	for i := 1; i < len(txSlots); i++ {
		if txSlots[i]-txSlots[i-1] != 4 {
			t.Fatalf("irregular schedule: %v", txSlots)
		}
	}
}

func TestNewcomerGatedByEmpty(t *testing.T) {
	tag := newTag(t, 2, 8)
	// Power-on without RESET: the tag is a late arrival.
	if !tag.Newcomer() {
		t.Fatal("setup")
	}
	// With EMPTY always false it must never transmit.
	for s := 0; s < 16; s++ {
		if tag.OnBeacon(Feedback{Empty: false}) {
			t.Fatal("gated newcomer transmitted")
		}
	}
	// Once EMPTY slots appear it probes them.
	transmitted := false
	for s := 0; s < 16 && !transmitted; s++ {
		transmitted = tag.OnBeacon(Feedback{Empty: true})
	}
	if !transmitted {
		t.Fatal("newcomer never probed an EMPTY slot")
	}
	// After its first ACK it stops consulting EMPTY.
	tag.OnBeacon(Feedback{ACK: true, Empty: false})
	saw := false
	for s := 0; s < 8; s++ {
		if tag.OnBeacon(Feedback{ACK: true, Empty: false}) {
			saw = true
		}
	}
	if !saw {
		t.Error("integrated tag still gated by EMPTY")
	}
}

func TestResetClearsGateAndState(t *testing.T) {
	tag := newTag(t, 4, 9)
	if !tag.Newcomer() {
		t.Fatal("setup")
	}
	tag.OnBeacon(Feedback{Reset: true, Empty: true})
	if tag.Newcomer() {
		t.Error("RESET should clear the late-arrival gate")
	}
	if tag.State() != Migrate {
		t.Error("RESET should enter MIGRATE")
	}
	if tag.Counter() != 0 {
		t.Errorf("counter = %d after reset beacon, want 0", tag.Counter())
	}
}

func TestReaderACKSettlesTag(t *testing.T) {
	r, err := NewReaderProtocol(map[int]Period{1: 4, 2: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.Reset()
	fb, _ := r.EndSlot(Observation{Decoded: []int{1}})
	if !fb.ACK {
		t.Error("clean solo decode should be ACKed")
	}
	if r.SettledCount() != 1 {
		t.Errorf("settled = %d", r.SettledCount())
	}
}

func TestReaderNACKOnCollision(t *testing.T) {
	r, _ := NewReaderProtocol(map[int]Period{1: 4, 2: 4})
	r.Reset()
	// Capture effect: packet decoded but collision inferred.
	fb, _ := r.EndSlot(Observation{Decoded: []int{1}, Collision: true})
	if fb.ACK {
		t.Error("collision must be NACKed even with a decoded packet (Sec. 5.3)")
	}
	fb, _ = r.EndSlot(Observation{Decoded: []int{1, 2}})
	if fb.ACK {
		t.Error("two decodes must be NACKed")
	}
}

func TestReaderEmptyFlagEq4(t *testing.T) {
	r, _ := NewReaderProtocol(map[int]Period{1: 2})
	r.Reset()
	// Slot 0: tag 1 decoded -> appears. Slot 1 opens.
	fb, _ := r.EndSlot(Observation{Decoded: []int{1}})
	if !fb.Empty {
		t.Error("slot 1 should be EMPTY (no packet at slot 1-2)")
	}
	// Slot 1: silence. Slot 2 opens: tag 1 was seen at slot 0 = 2-2,
	// so slot 2 is predicted occupied.
	fb, _ = r.EndSlot(Observation{})
	if fb.Empty {
		t.Error("slot 2 should be non-EMPTY (packet seen one period ago)")
	}
	// Slot 2: silence. Slot 3 opens: slot 1 was silent -> EMPTY.
	fb, _ = r.EndSlot(Observation{})
	if !fb.Empty {
		t.Error("slot 3 should be EMPTY")
	}
}

func TestReaderFutureCollisionVeto(t *testing.T) {
	// Settle tag 1 (period 4) at slot 0; then tag 2 (period 2) shows up
	// solo at slot 2. Its candidate (p=2, offset 0) collides with tag 1
	// in future slots 4, 8, ... -> must be NACKed though decoded clean.
	r, _ := NewReaderProtocol(map[int]Period{1: 4, 2: 2})
	r.Reset()
	fb, _ := r.EndSlot(Observation{Decoded: []int{1}}) // slot 0: tag1
	if !fb.ACK {
		t.Fatal("tag 1 should settle")
	}
	r.EndSlot(Observation{})                          // slot 1
	fb, _ = r.EndSlot(Observation{Decoded: []int{2}}) // slot 2: tag2, offset 0 mod 2
	if fb.ACK {
		t.Error("future-colliding newcomer must be vetoed (Sec. 5.6)")
	}
	// At slot 3 (offset 1 mod 2) tag 2 is compatible with tag 1 at
	// offset 0 mod 4? 3 mod 2 = 1; tag1 offset 0: 0 mod 2 = 0 != 1: OK.
	fb, _ = r.EndSlot(Observation{Decoded: []int{2}})
	if !fb.ACK {
		t.Error("compatible offset should be ACKed")
	}
	if r.SettledCount() != 2 {
		t.Errorf("settled = %d", r.SettledCount())
	}
}

func TestReaderEvictionBreaksDeadlock(t *testing.T) {
	// Sec. 5.6 example: A and B (period 4) settled at offsets 2 and 3;
	// newcomer C (period 2) is structurally blocked. The reader must
	// veto C and start evicting one of A/B with successive NACKs.
	r, _ := NewReaderProtocol(map[int]Period{1: 4, 2: 4, 3: 2})
	r.Reset()
	r.EndSlot(Observation{})                           // slot 0
	r.EndSlot(Observation{})                           // slot 1
	fb, _ := r.EndSlot(Observation{Decoded: []int{1}}) // slot 2: A settles
	if !fb.ACK {
		t.Fatal("A should settle")
	}
	fb, _ = r.EndSlot(Observation{Decoded: []int{2}}) // slot 3: B settles
	if !fb.ACK {
		t.Fatal("B should settle")
	}
	// Slot 4: C transmits (4 mod 2 = 0). Blocked: NACK + eviction arms.
	fb, _ = r.EndSlot(Observation{Decoded: []int{3}})
	if fb.ACK {
		t.Fatal("blocked C must be NACKed")
	}
	// The victim now gets NACKed at its own slots despite clean
	// decodes, until the reader unsettles it.
	evictionsSeen := 0
	for round := 0; round < 12 && r.SettledCount() == 2; round++ {
		slot := r.Slot()
		var obs Observation
		switch slot % 4 {
		case 2:
			obs = Observation{Decoded: []int{1}}
		case 3:
			obs = Observation{Decoded: []int{2}}
		}
		fb, _ = r.EndSlot(obs)
		if len(obs.Decoded) == 1 && !fb.ACK {
			evictionsSeen++
		}
	}
	if r.SettledCount() != 1 {
		t.Fatalf("victim never unsettled (settled=%d)", r.SettledCount())
	}
	if evictionsSeen < DefaultNackThreshold {
		t.Errorf("eviction NACKs = %d, want >= %d", evictionsSeen, DefaultNackThreshold)
	}
}

func TestReaderUnsettlesMissingTag(t *testing.T) {
	r, _ := NewReaderProtocol(map[int]Period{1: 2})
	r.Reset()
	r.EndSlot(Observation{Decoded: []int{1}}) // settle at offset 0
	if r.SettledCount() != 1 {
		t.Fatal("setup")
	}
	// Tag 1 goes dark; after N missed expected slots the belief drops.
	for i := 0; i < 2*DefaultNackThreshold+2 && r.SettledCount() > 0; i++ {
		r.EndSlot(Observation{})
	}
	if r.SettledCount() != 0 {
		t.Error("missing tag never unsettled")
	}
}

func TestReaderUnknownTagTolerated(t *testing.T) {
	r, _ := NewReaderProtocol(map[int]Period{1: 4})
	r.Reset()
	fb, _ := r.EndSlot(Observation{Decoded: []int{99}})
	if !fb.ACK {
		t.Error("unprovisioned tag should still be ACKed")
	}
}

func TestReaderRejectsInvalidPeriods(t *testing.T) {
	if _, err := NewReaderProtocol(map[int]Period{1: 3}); err == nil {
		t.Error("invalid period accepted")
	}
}
