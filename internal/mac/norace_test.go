//go:build !race

package mac

const raceEnabled = false
