package mac

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// unsettleStorm drives a reader protocol through a scenario where four
// tags share the same (period, offset) schedule (future-collision veto
// disabled, as in the ablation) and then all cross the NACK threshold
// in the same slot, so trackExpected emits four tag_unsettle events
// from one invocation. Before the settled-set snapshot fix their order
// — and therefore the JSONL trace fingerprint — depended on map
// iteration order.
func unsettleStorm(t *testing.T) ([]obs.Event, []byte) {
	t.Helper()
	sink := obs.NewMemorySink()
	var jsonl bytes.Buffer
	r, err := NewReaderProtocol(map[int]Period{1: 4, 2: 4, 3: 4, 4: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.DisableFutureVeto = true
	js := obs.NewJSONLSink(&jsonl)
	r.Trace = obs.New(sink, js)

	// Settle phase: one solo decode per tag on the shared residue
	// class. A high threshold keeps the earlier settlers from being
	// dropped while the later ones join.
	r.NackThreshold = 100
	for slot := 0; slot <= 12; slot++ {
		var o Observation
		switch slot {
		case 0:
			o.Decoded = []int{1}
		case 4:
			o.Decoded = []int{2}
		case 8:
			o.Decoded = []int{3}
		case 12:
			o.Decoded = []int{4}
		}
		if _, err := r.EndSlot(o); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.SettledCount(); got != 4 {
		t.Fatalf("settle phase: %d settled, want 4", got)
	}

	// Miss phase: zero the accumulated misses so all four tags cross
	// the real threshold together, three missed expected slots later.
	for tid := range r.misses {
		r.misses[tid] = 0
	}
	r.NackThreshold = DefaultNackThreshold
	for slot := 13; slot <= 24; slot++ {
		if _, err := r.EndSlot(Observation{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.SettledCount(); got != 0 {
		t.Fatalf("miss phase: %d still settled, want 0", got)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Events(), jsonl.Bytes()
}

// TestUnsettleTraceDeterministic pins the trace across two runs: the
// event streams (and their JSONL serializations, the fingerprint input
// of the fault-recovery suite) must be byte-identical, and the
// simultaneous unsettles must come out in ascending tid order.
func TestUnsettleTraceDeterministic(t *testing.T) {
	ev1, fp1 := unsettleStorm(t)
	ev2, fp2 := unsettleStorm(t)

	if !bytes.Equal(fp1, fp2) {
		t.Fatalf("JSONL trace fingerprints differ across identical runs:\n run1:\n%s\n run2:\n%s", fp1, fp2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if fmt.Sprintf("%+v", ev1[i]) != fmt.Sprintf("%+v", ev2[i]) {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}

	var unsettled []int
	for _, ev := range ev1 {
		if ev.Kind == obs.KindTagUnsettle {
			if ev.Slot != 24 {
				t.Errorf("unsettle for tid %d at slot %d, want 24", ev.TID, ev.Slot)
			}
			unsettled = append(unsettled, ev.TID)
		}
	}
	if len(unsettled) != 4 {
		t.Fatalf("got %d unsettle events, want 4 (one per tag): %v", len(unsettled), unsettled)
	}
	for i, tid := range unsettled {
		if tid != i+1 {
			t.Fatalf("unsettle order %v, want ascending tids [1 2 3 4]", unsettled)
		}
	}
}
