//go:build race

package mac

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool deliberately drops items (to shake out
// lifetime bugs) and allocation counts are therefore meaningless.
const raceEnabled = true
