package mac

// ConvergenceDetector implements the paper's first-convergence-time
// metric (Sec. 6.4): the number of slots until the reader has seen 32
// consecutive non-collision slots after a RESET.
type ConvergenceDetector struct {
	// Window is the required clean-slot run (32 in the paper).
	Window int

	slots     int
	cleanRun  int
	converged bool
	at        int
}

// NewConvergenceDetector returns a detector with the paper's window.
func NewConvergenceDetector() *ConvergenceDetector {
	return &ConvergenceDetector{Window: 32}
}

// Observe ingests one slot outcome and returns true the first time the
// clean-run criterion is met.
func (c *ConvergenceDetector) Observe(collision bool) bool {
	c.slots++
	if collision {
		c.cleanRun = 0
		return false
	}
	c.cleanRun++
	if !c.converged && c.cleanRun >= c.Window {
		c.converged = true
		c.at = c.slots
		return true
	}
	return false
}

// Reset rewinds the detector to its freshly constructed state (keeping
// the configured window) without allocating.
func (c *ConvergenceDetector) Reset() {
	c.slots = 0
	c.cleanRun = 0
	c.converged = false
	c.at = 0
}

// Converged reports whether the criterion was met.
func (c *ConvergenceDetector) Converged() bool { return c.converged }

// ConvergenceSlot returns the slot count at which convergence was
// declared (0 if not yet).
func (c *ConvergenceDetector) ConvergenceSlot() int { return c.at }

// WindowStats tracks the Fig. 16 long-running metrics over a sliding
// window: the non-empty ratio (slots with at least one transmission,
// collisions included) and the collision ratio (slots with more than
// one transmitter).
type WindowStats struct {
	// Window is the sliding-window length (32 slots in the paper).
	Window int

	nonEmpty []bool
	collide  []bool
	pos      int
	filled   int

	totalSlots     int
	totalNonEmpty  int
	totalCollision int
}

// NewWindowStats returns stats with the paper's 32-slot window.
func NewWindowStats() *WindowStats {
	return &WindowStats{Window: 32, nonEmpty: make([]bool, 32), collide: make([]bool, 32)}
}

// Observe ingests one slot.
func (w *WindowStats) Observe(nonEmpty, collision bool) {
	if len(w.nonEmpty) != w.Window {
		w.nonEmpty = make([]bool, w.Window)
		w.collide = make([]bool, w.Window)
		w.pos, w.filled = 0, 0
	}
	w.nonEmpty[w.pos] = nonEmpty
	w.collide[w.pos] = collision
	w.pos = (w.pos + 1) % w.Window
	if w.filled < w.Window {
		w.filled++
	}
	w.totalSlots++
	if nonEmpty {
		w.totalNonEmpty++
	}
	if collision {
		w.totalCollision++
	}
}

// Reset rewinds the stats to empty (keeping the configured window and
// its ring buffers) without allocating.
func (w *WindowStats) Reset() {
	for i := range w.nonEmpty {
		w.nonEmpty[i] = false
		w.collide[i] = false
	}
	w.pos = 0
	w.filled = 0
	w.totalSlots = 0
	w.totalNonEmpty = 0
	w.totalCollision = 0
}

// NonEmptyRatio returns the windowed non-empty ratio.
func (w *WindowStats) NonEmptyRatio() float64 {
	if w.filled == 0 {
		return 0
	}
	n := 0
	for i := 0; i < w.filled; i++ {
		if w.nonEmpty[i] {
			n++
		}
	}
	return float64(n) / float64(w.filled)
}

// CollisionRatio returns the windowed collision ratio.
func (w *WindowStats) CollisionRatio() float64 {
	if w.filled == 0 {
		return 0
	}
	n := 0
	for i := 0; i < w.filled; i++ {
		if w.collide[i] {
			n++
		}
	}
	return float64(n) / float64(w.filled)
}

// AverageNonEmptyRatio returns the whole-run average (the 81.2% of
// Sec. 6.4).
func (w *WindowStats) AverageNonEmptyRatio() float64 {
	if w.totalSlots == 0 {
		return 0
	}
	return float64(w.totalNonEmpty) / float64(w.totalSlots)
}

// AverageCollisionRatio returns the whole-run average (the 0.056 of
// Sec. 6.4).
func (w *WindowStats) AverageCollisionRatio() float64 {
	if w.totalSlots == 0 {
		return 0
	}
	return float64(w.totalCollision) / float64(w.totalSlots)
}

// Slots returns the number of observed slots.
func (w *WindowStats) Slots() int { return w.totalSlots }
