// Package mac implements ARACHNET's distributed slot allocation
// protocol (Sec. 5): the permissible-period algebra, the vanilla static
// allocator it improves upon, the MIGRATE/SETTLE tag state machine with
// beacon-loss and late-arrival handling, the reader-side feedback
// policy with EMPTY-flag gating and future-collision avoidance, the
// convergence detector, and the pure-ALOHA baseline of Appendix B.
//
// The package is deliberately free of I/O and hardware concerns: the
// same state machines drive both the fast slot-level simulator and the
// waveform-level integration, so protocol behaviour cannot diverge
// between fidelity layers.
package mac

import (
	"fmt"
	"math/bits"
)

// Period is a tag's transmission period in slots. Permissible periods
// are powers of two (P = {2^k}), which makes slot allocation
// composable: two tags with periods p <= q collide iff their offsets
// are congruent modulo p.
type Period int

// ValidPeriod reports whether p is a permissible period (a positive
// power of two).
func ValidPeriod(p Period) bool {
	return p > 0 && p&(p-1) == 0
}

// MustPeriod validates p and panics otherwise; for literals in tests
// and pattern tables.
func MustPeriod(p int) Period {
	if !ValidPeriod(Period(p)) {
		panic(fmt.Sprintf("mac: %d is not a power-of-two period", p))
	}
	return Period(p)
}

// Log2 returns k for p = 2^k.
func (p Period) Log2() int { return bits.TrailingZeros64(uint64(p)) }

// Pattern is a workload: the transmission period of every tag, indexed
// by tag. It corresponds to one column of Table 3.
type Pattern struct {
	Name    string
	Periods []Period
}

// Utilization returns the combined transmission rate U = sum(1/p_i)
// (Eq. 1). A pattern is admissible only if U <= 1.
func (pt Pattern) Utilization() float64 {
	var u float64
	for _, p := range pt.Periods {
		u += 1 / float64(p)
	}
	return u
}

// Validate checks that every period is permissible and the utilization
// does not exceed channel capacity.
func (pt Pattern) Validate() error {
	for i, p := range pt.Periods {
		if !ValidPeriod(p) {
			return fmt.Errorf("mac: tag %d period %d not a power of two", i, p)
		}
	}
	if u := pt.Utilization(); u > 1+1e-12 {
		return fmt.Errorf("mac: utilization %.4f exceeds capacity", u)
	}
	return nil
}

// NumTags returns the number of tags in the pattern.
func (pt Pattern) NumTags() int { return len(pt.Periods) }

// Hyperperiod returns the least common multiple of all periods — the
// schedule repeats with this length.
func (pt Pattern) Hyperperiod() int {
	h := 1
	for _, p := range pt.Periods {
		if int(p) > h {
			h = int(p)
		}
	}
	return h
}

// patternOf expands a Table 3 column: counts of tags at periods
// 4, 8, 16 and 32 slots.
func patternOf(name string, n4, n8, n16, n32 int) Pattern {
	var ps []Period
	for i := 0; i < n4; i++ {
		ps = append(ps, 4)
	}
	for i := 0; i < n8; i++ {
		ps = append(ps, 8)
	}
	for i := 0; i < n16; i++ {
		ps = append(ps, 16)
	}
	for i := 0; i < n32; i++ {
		ps = append(ps, 32)
	}
	return Pattern{Name: name, Periods: ps}
}

// Table3Patterns returns the paper's nine evaluation workloads.
// c1..c5 keep 12 tags and sweep utilization 0.38 -> 1.0; c2 and c6..c9
// hold utilization at 0.75 with varying tag counts.
func Table3Patterns() []Pattern {
	return []Pattern{
		patternOf("c1", 0, 0, 0, 12),
		patternOf("c2", 0, 0, 12, 0),
		patternOf("c3", 1, 2, 2, 7),
		patternOf("c4", 0, 6, 0, 6),
		patternOf("c5", 1, 3, 4, 4),
		patternOf("c6", 0, 1, 10, 0),
		patternOf("c7", 1, 1, 4, 4),
		patternOf("c8", 1, 1, 6, 0),
		patternOf("c9", 2, 0, 4, 0),
	}
}
