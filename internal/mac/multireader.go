package mac

import (
	"fmt"

	"repro/internal/sim"
)

// Multi-reader spatial multiplexing — the paper's Sec. 6.3 future-work
// direction ("spatial multiplexing via multiple readers distributed
// across the BiW"). K readers each own a zone of tags and run the
// slotted protocol concurrently on the shared metal body. Acoustic
// separation between zones is imperfect: a transmission in one zone
// leaks into another with probability LeakProb per (transmission,
// foreign zone, slot), where it raises the victim reader's IQ cluster
// count exactly like a home-zone collider.

// MultiReaderConfig parameterizes the extension study.
type MultiReaderConfig struct {
	// Zones lists one workload per reader.
	Zones []Pattern
	// LeakProb is the per-transmission inter-zone leakage probability.
	LeakProb float64
	Seed     uint64
}

// zoneState is one reader's domain.
type zoneState struct {
	reader *ReaderProtocol
	tags   []*TagProtocol
	fb     Feedback
	// Stats.
	delivered  int
	collisions int
}

// MultiReaderSim steps all zones in lockstep slots.
type MultiReaderSim struct {
	cfg   MultiReaderConfig
	rng   *sim.Rand
	zones []*zoneState
	slots int
}

// NewMultiReaderSim builds the K-zone simulator.
func NewMultiReaderSim(cfg MultiReaderConfig) (*MultiReaderSim, error) {
	if len(cfg.Zones) == 0 {
		return nil, fmt.Errorf("mac: no zones configured")
	}
	if cfg.LeakProb < 0 || cfg.LeakProb > 1 {
		return nil, fmt.Errorf("mac: leak probability %v outside [0,1]", cfg.LeakProb)
	}
	rng := sim.NewRand(cfg.Seed)
	m := &MultiReaderSim{cfg: cfg, rng: rng.Fork(0xABCD)}
	for zi, pt := range cfg.Zones {
		if err := pt.Validate(); err != nil {
			return nil, fmt.Errorf("mac: zone %d: %w", zi, err)
		}
		periods := make(map[int]Period, pt.NumTags())
		z := &zoneState{}
		for i, p := range pt.Periods {
			tid := i + 1
			periods[tid] = p
			proto, err := NewTagProtocol(p, rng.Fork(uint64(zi)<<16|uint64(tid)))
			if err != nil {
				return nil, err
			}
			z.tags = append(z.tags, proto)
		}
		reader, err := NewReaderProtocol(periods)
		if err != nil {
			return nil, err
		}
		z.reader = reader
		z.fb = reader.Reset()
		m.zones = append(m.zones, z)
	}
	return m, nil
}

// Step advances all zones by one slot, with same-slot cross-zone
// leakage.
func (m *MultiReaderSim) Step() {
	// Phase 1: every zone's tags decide on this slot.
	txByZone := make([][]int, len(m.zones))
	for zi, z := range m.zones {
		for i, t := range z.tags {
			if t.OnBeacon(z.fb) {
				txByZone[zi] = append(txByZone[zi], i+1)
			}
		}
	}
	// Phase 2: leakage and per-zone observation.
	for zi, z := range m.zones {
		foreign := 0
		for oj, txs := range txByZone {
			if oj == zi {
				continue
			}
			for range txs {
				if m.rng.Bool(m.cfg.LeakProb) {
					foreign++
				}
			}
		}
		var obs Observation
		own := txByZone[zi]
		switch {
		case len(own) == 1 && foreign == 0:
			obs.Decoded = []int{own[0]}
		case len(own)+foreign >= 2:
			// The victim reader's IQ clustering sees extra energy:
			// collision, even if only one (or zero) home tags spoke.
			obs.Collision = len(own) > 0 || foreign >= 2
			// With exactly one home transmitter the capture effect may
			// still deliver its packet; keep the pessimistic NACK path
			// by reporting the collision without a decode.
		}
		if len(obs.Decoded) == 1 {
			z.delivered++
		}
		if len(own) > 1 {
			z.collisions++
		}
		fb, err := z.reader.EndSlot(obs)
		if err != nil {
			// Zone observations are built from this simulator's own
			// tags; an invalid tid is a programming error.
			//lint:allow panic-hygiene observations are built from this simulator's own tag ids; invalid tid is a programming bug
			panic(err)
		}
		z.fb = fb
	}
	m.slots++
}

// Run advances n slots.
func (m *MultiReaderSim) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// Slots returns the number of simulated slots.
func (m *MultiReaderSim) Slots() int { return m.slots }

// ZoneDelivered returns the clean deliveries in zone zi.
func (m *MultiReaderSim) ZoneDelivered(zi int) int { return m.zones[zi].delivered }

// TotalDelivered sums deliveries across zones.
func (m *MultiReaderSim) TotalDelivered() int {
	n := 0
	for _, z := range m.zones {
		n += z.delivered
	}
	return n
}

// Throughput returns delivered packets per slot across the whole BiW —
// the spatial-multiplexing figure of merit (a single reader is bounded
// by 1.0).
func (m *MultiReaderSim) Throughput() float64 {
	if m.slots == 0 {
		return 0
	}
	return float64(m.TotalDelivered()) / float64(m.slots)
}

// SplitPattern partitions a workload across k zones round-robin,
// preserving per-tag periods.
func SplitPattern(pt Pattern, k int) []Pattern {
	if k < 1 {
		k = 1
	}
	out := make([]Pattern, k)
	for i := range out {
		out[i].Name = fmt.Sprintf("%s/z%d", pt.Name, i)
	}
	for i, p := range pt.Periods {
		out[i%k].Periods = append(out[i%k].Periods, p)
	}
	return out
}
