package mac

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidPeriod(t *testing.T) {
	for _, p := range []Period{1, 2, 4, 8, 16, 32, 1024} {
		if !ValidPeriod(p) {
			t.Errorf("%d should be valid", p)
		}
	}
	for _, p := range []Period{0, -1, 3, 6, 12, 33} {
		if ValidPeriod(p) {
			t.Errorf("%d should be invalid", p)
		}
	}
}

func TestMustPeriod(t *testing.T) {
	if MustPeriod(8) != 8 {
		t.Error("MustPeriod(8)")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPeriod(3) did not panic")
		}
	}()
	MustPeriod(3)
}

func TestPeriodLog2(t *testing.T) {
	if Period(1).Log2() != 0 || Period(8).Log2() != 3 || Period(32).Log2() != 5 {
		t.Error("Log2 wrong")
	}
}

func TestPatternUtilization(t *testing.T) {
	pt := Pattern{Periods: []Period{2, 4, 8, 8}}
	// 1/2 + 1/4 + 1/8 + 1/8 = 1.0 (Table 1).
	if u := pt.Utilization(); math.Abs(u-1.0) > 1e-12 {
		t.Errorf("U = %v, want 1.0", u)
	}
	if err := pt.Validate(); err != nil {
		t.Errorf("Table 1 pattern invalid: %v", err)
	}
	over := Pattern{Periods: []Period{2, 2, 4}}
	if err := over.Validate(); err == nil {
		t.Error("overloaded pattern accepted")
	}
	bad := Pattern{Periods: []Period{3}}
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestPatternHyperperiod(t *testing.T) {
	pt := Pattern{Periods: []Period{2, 8, 4}}
	if h := pt.Hyperperiod(); h != 8 {
		t.Errorf("hyperperiod = %d, want 8", h)
	}
}

// TestTable3PatternsMatchPaper locks every pattern to the published
// tag counts and slot utilizations.
func TestTable3PatternsMatchPaper(t *testing.T) {
	want := []struct {
		name string
		tags int
		util float64
	}{
		{"c1", 12, 0.375},
		{"c2", 12, 0.75},
		{"c3", 12, 0.84375},
		{"c4", 12, 0.9375},
		{"c5", 12, 1.0},
		{"c6", 11, 0.75},
		{"c7", 10, 0.75},
		{"c8", 8, 0.75},
		{"c9", 6, 0.75},
	}
	pats := Table3Patterns()
	if len(pats) != len(want) {
		t.Fatalf("got %d patterns", len(pats))
	}
	for i, w := range want {
		p := pats[i]
		if p.Name != w.name {
			t.Errorf("pattern %d name %q", i, p.Name)
		}
		if p.NumTags() != w.tags {
			t.Errorf("%s: %d tags, want %d", w.name, p.NumTags(), w.tags)
		}
		if math.Abs(p.Utilization()-w.util) > 1e-9 {
			t.Errorf("%s: U = %v, want %v", w.name, p.Utilization(), w.util)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.name, err)
		}
	}
}

func TestAssignmentConflicts(t *testing.T) {
	a := Assignment{Period: 4, Offset: 2}
	b := Assignment{Period: 8, Offset: 6}
	// 6 mod 4 == 2: they share slots 6, 14, ...
	if !a.Conflicts(b) || !b.Conflicts(a) {
		t.Error("conflict not detected")
	}
	c := Assignment{Period: 8, Offset: 5}
	if a.Conflicts(c) {
		t.Error("false conflict")
	}
	// Same period, same offset.
	if !a.Conflicts(Assignment{Period: 4, Offset: 2}) {
		t.Error("identical assignments must conflict")
	}
}

// Property: Conflicts agrees with brute-force slot expansion.
func TestConflictsMatchesBruteForce(t *testing.T) {
	f := func(k1, k2 uint8, o1, o2 uint8) bool {
		p1 := Period(1 << (k1 % 6))
		p2 := Period(1 << (k2 % 6))
		a := Assignment{Period: p1, Offset: int(o1) % int(p1)}
		b := Assignment{Period: p2, Offset: int(o2) % int(p2)}
		brute := false
		h := int(p1)
		if int(p2) > h {
			h = int(p2)
		}
		for s := 0; s < h; s++ {
			if a.TransmitsAt(s) && b.TransmitsAt(s) {
				brute = true
				break
			}
		}
		return a.Conflicts(b) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTable1Example(t *testing.T) {
	as := Table1Example()
	if err := VerifySchedule(as); err != nil {
		t.Errorf("Table 1 schedule collides: %v", err)
	}
	// Every slot 0..7 is covered exactly once (full utilization).
	for s := 0; s < 8; s++ {
		n := 0
		for _, a := range as {
			if a.TransmitsAt(s) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("slot %d covered %d times", s, n)
		}
	}
}
