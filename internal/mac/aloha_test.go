package mac

import (
	"math"
	"testing"
)

// paperChargeTimes spreads 12 tags linearly across the measured
// 4.5-56.2 s charging range (Sec. 6.2), with tag 8 — the tag next to
// the reader — the fastest at 4.5 s, matching Appendix B's "over
// 11,000 transmissions" anchor.
func paperChargeTimes() []float64 {
	times := make([]float64, 12)
	step := (56.2 - 4.5) / 11
	k := 1
	for i := range times {
		if i == 7 {
			times[i] = 4.5
			continue
		}
		times[i] = 4.5 + float64(k)*step
		k++
	}
	return times
}

func TestAlohaFig19Shape(t *testing.T) {
	res, err := SimulateAloha(DefaultAlohaConfig(paperChargeTimes()))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: only 34.0% of transmissions are collision-free overall.
	if res.CollisionFreePct < 20 || res.CollisionFreePct > 50 {
		t.Errorf("collision-free = %.1f%%, want ~34%% (paper)", res.CollisionFreePct)
	}
	// The fastest-charging tag (tag 8, 4.5 s) transmits over 11,000
	// times in 10,000 s thanks to the 15.2% recharge shortcut.
	tag8 := res.PerTag[7]
	if tag8.Total < 9_000 || tag8.Total > 14_000 {
		t.Errorf("tag 8 transmissions = %d, want ~11,000", tag8.Total)
	}
	// Fast tags still collide in more than half their attempts.
	if tag8.SuccessPct > 50 {
		t.Errorf("tag 8 success = %.1f%%, want < 50%% (paper: <40%%)", tag8.SuccessPct)
	}
	// The slowest tag (tag 11, 56.2 s) transmits far less but still
	// collides most of the time.
	tag11 := res.PerTag[10]
	if tag11.Total > tag8.Total/5 {
		t.Errorf("slow tag transmitted %d vs fast %d", tag11.Total, tag8.Total)
	}
	if tag11.SuccessPct > 60 {
		t.Errorf("tag 11 success = %.1f%% too high", tag11.SuccessPct)
	}
}

func TestAlohaTransmissionRateArithmetic(t *testing.T) {
	// A single tag never collides, and its packet count follows the
	// charge + recharge cycle arithmetic.
	cfg := DefaultAlohaConfig([]float64{10.0})
	cfg.NoiseFraction = 0
	res, err := SimulateAloha(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionFreePct != 100 {
		t.Errorf("lone tag collided: %v", res.CollisionFreePct)
	}
	// Cycle after first activation: 0.2 s packet + 1.52 s recharge.
	wantCount := 1 + int(math.Floor((10_000-10.0)/(0.2+10.0*0.152)))
	got := res.PerTag[0].Total
	if math.Abs(float64(got-wantCount)) > 3 {
		t.Errorf("packet count = %d, want ~%d", got, wantCount)
	}
}

func TestAlohaImbalanceAcrossChargeTimes(t *testing.T) {
	// Appendix B's fairness point: channel access is heavily skewed
	// toward fast-charging tags.
	res, err := SimulateAloha(DefaultAlohaConfig([]float64{4.5, 56.2}))
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := res.PerTag[0].Total, res.PerTag[1].Total
	if fast < 8*slow {
		t.Errorf("fast/slow = %d/%d, expected ~12x imbalance", fast, slow)
	}
}

func TestAlohaConfigValidation(t *testing.T) {
	if _, err := SimulateAloha(AlohaConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := DefaultAlohaConfig([]float64{5})
	cfg.PacketSeconds = 0
	if _, err := SimulateAloha(cfg); err == nil {
		t.Error("zero packet duration accepted")
	}
	cfg = DefaultAlohaConfig([]float64{0})
	if _, err := SimulateAloha(cfg); err == nil {
		t.Error("zero charge time accepted")
	}
}

func TestAlohaDeterministic(t *testing.T) {
	a, err := SimulateAloha(DefaultAlohaConfig(paperChargeTimes()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateAloha(DefaultAlohaConfig(paperChargeTimes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTransmissions != b.TotalTransmissions || a.CollisionFreePct != b.CollisionFreePct {
		t.Error("same seed produced different results")
	}
}

// TestAlohaVsDistributed quantifies the paper's core comparison: under
// the same per-tag packet budget, the distributed slot allocation turns
// most transmissions into successes while ALOHA wastes most of them.
func TestAlohaVsDistributed(t *testing.T) {
	aloha, err := SimulateAloha(DefaultAlohaConfig(paperChargeTimes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlotSim(SlotSimConfig{Pattern: Table3Patterns()[2], Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10_000)
	distributedSuccess := 100 * (1 - float64(s.TruthCollisions)/float64(s.TruthNonEmpty))
	if distributedSuccess < 2*aloha.CollisionFreePct {
		t.Errorf("distributed %.1f%% vs ALOHA %.1f%%: expected a large win",
			distributedSuccess, aloha.CollisionFreePct)
	}
}
