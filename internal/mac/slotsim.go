package mac

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// SlotSim is the slot-granularity protocol simulator: every tick is one
// slot (1 s in the deployment), link outcomes are drawn from a
// calibrated link model, and the exact TagProtocol / ReaderProtocol
// state machines run unmodified. The convergence (Fig. 15) and
// long-running (Fig. 16) experiments execute here, where a million
// slots cost milliseconds.
type SlotSim struct {
	cfg    SlotSimConfig
	rng    *sim.Rand
	reader *ReaderProtocol
	tags   []*simTag
	fb     Feedback

	// Per-slot scratch, reused across Step calls so the steady-state
	// slot loop is allocation-free (see SlotResult for the aliasing
	// contract).
	txScratch  []*simTag
	tidScratch []int
	decScratch []int

	Window      *WindowStats
	Convergence *ConvergenceDetector
	// TruthNonEmpty / TruthCollisions count ground-truth slot states
	// (vs the reader-observed ratios in Window).
	TruthNonEmpty   int
	TruthCollisions int
	SlotsRun        int
}

type simTag struct {
	tid      int
	proto    *TagProtocol
	joinSlot int
	// Brownout state: while down, the tag is dark until downUntil.
	down      bool
	downUntil int
	// Per-tag counters.
	txCount    int
	ackCount   int
	lastTxSlot int // global slot of the most recent transmission; -1 if none
}

// SlotSimConfig parameterizes a run. Zero values mean: perfect links,
// perfect collision detection, all tags present from slot 0.
type SlotSimConfig struct {
	Pattern Pattern
	Seed    uint64
	// BeaconLossProb is the per-slot probability a tag misses the
	// beacon (per tag; nil or short slice means 0).
	BeaconLossProb []float64
	// ULDecodeFailProb is the probability a solo uplink packet fails
	// CRC at the reader (per tag).
	ULDecodeFailProb []float64
	// CaptureProb is the chance the reader still decodes one packet
	// during a collision (capture effect, Sec. 5.3).
	CaptureProb float64
	// CollisionDetectProb is the chance the IQ clustering flags a true
	// collision; 0 means use the default of 1.0.
	CollisionDetectProb float64
	// JoinSlot defers each tag's activation (variable charging delay,
	// Sec. 5.5); nil means all join at slot 0.
	JoinSlot []int
	// NackThreshold overrides N for all tags and the reader (0 keeps
	// the default of 3). Ablation: BenchmarkAblationNackThreshold.
	NackThreshold int
	// DisableBeaconLossTimer removes the Sec. 5.4 refinement: a tag
	// that misses a beacon silently desynchronizes instead of
	// migrating. Ablation only.
	DisableBeaconLossTimer bool
	// DisableEmptyGate removes the Sec. 5.5 newcomer gate.
	DisableEmptyGate bool
	// DisableFutureVeto removes the Sec. 5.6 reader-side check.
	DisableFutureVeto bool
	// Trace, when set, receives slot open/close events from the
	// simulator and settle/unsettle/evict events from the reader
	// protocol. A nil tracer (the default) costs nothing.
	Trace *obs.Tracer
	// Faults, when set, injects a deterministic fault environment into
	// every slot: beacon loss, feedback corruption, uplink fades,
	// mid-slot brownouts, reader outages and clock jitter (see
	// internal/faults for the plan compiler). Nil means no faults; the
	// random stream is then bit-identical to a fault-free build.
	Faults FaultSource
}

func (c SlotSimConfig) beaconLoss(i int) float64 {
	if i < len(c.BeaconLossProb) {
		return c.BeaconLossProb[i]
	}
	return 0
}

func (c SlotSimConfig) ulFail(i int) float64 {
	if i < len(c.ULDecodeFailProb) {
		return c.ULDecodeFailProb[i]
	}
	return 0
}

func (c SlotSimConfig) joinSlot(i int) int {
	if i < len(c.JoinSlot) {
		return c.JoinSlot[i]
	}
	return 0
}

// NewSlotSim builds a simulator: the reader is provisioned with every
// tag's period, tags start in MIGRATE, and the first beacon carries
// RESET (the Fig. 15 measurement protocol).
func NewSlotSim(cfg SlotSimConfig) (*SlotSim, error) {
	if err := cfg.Pattern.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRand(cfg.Seed)
	periods := make(map[int]Period, cfg.Pattern.NumTags())
	tags := make([]*simTag, cfg.Pattern.NumTags())
	for i, p := range cfg.Pattern.Periods {
		tid := i + 1
		periods[tid] = p
		proto, err := NewTagProtocol(p, rng.Fork(uint64(tid)))
		if err != nil {
			return nil, err
		}
		if cfg.NackThreshold > 0 {
			proto.NackThreshold = cfg.NackThreshold
		}
		proto.DisableEmptyGate = cfg.DisableEmptyGate
		tags[i] = &simTag{tid: tid, proto: proto, joinSlot: cfg.joinSlot(i), lastTxSlot: -1}
	}
	reader, err := NewReaderProtocol(periods)
	if err != nil {
		return nil, err
	}
	if cfg.NackThreshold > 0 {
		reader.NackThreshold = cfg.NackThreshold
	}
	reader.DisableFutureVeto = cfg.DisableFutureVeto
	reader.Trace = cfg.Trace
	detect := cfg.CollisionDetectProb
	if detect == 0 {
		detect = 1.0
	}
	cfg.CollisionDetectProb = detect
	s := &SlotSim{
		cfg:         cfg,
		rng:         rng.Fork(0xC0FFEE),
		reader:      reader,
		tags:        tags,
		fb:          reader.Reset(),
		txScratch:   make([]*simTag, 0, len(tags)),
		tidScratch:  make([]int, 0, len(tags)),
		decScratch:  make([]int, 0, 1),
		Window:      NewWindowStats(),
		Convergence: NewConvergenceDetector(),
	}
	return s, nil
}

// Reset rewinds the simulator in place to the state NewSlotSim would
// produce for the same pattern with the given seed, without allocating.
// It replays the construction-time RNG fork sequence exactly — root
// seeded from seed, one fork per tag in pattern order (each drawing the
// initial offset), then the simulator's own fork — so a reset simulator
// is bit-identical to a freshly built one. Pooled clones
// (SlotSimSnapshot) call this between trials.
func (s *SlotSim) Reset(seed uint64) {
	s.cfg.Seed = seed
	var root sim.Rand //lint:allow rng-discipline seeded in place on the next line; avoids an allocation per reset
	root.Seed(seed)
	for i, t := range s.tags {
		t.proto.rng.ReseedFork(&root, uint64(t.tid))
		t.proto.reinit()
		if s.cfg.NackThreshold > 0 {
			t.proto.NackThreshold = s.cfg.NackThreshold
		}
		t.proto.DisableEmptyGate = s.cfg.DisableEmptyGate
		t.joinSlot = s.cfg.joinSlot(i)
		t.down = false
		t.downUntil = 0
		t.txCount = 0
		t.ackCount = 0
		t.lastTxSlot = -1
	}
	s.rng.ReseedFork(&root, 0xC0FFEE)
	if s.cfg.NackThreshold > 0 {
		s.reader.NackThreshold = s.cfg.NackThreshold
	} else {
		s.reader.NackThreshold = DefaultNackThreshold
	}
	s.fb = s.reader.Reset()
	s.Window.Reset()
	s.Convergence.Reset()
	s.TruthNonEmpty = 0
	s.TruthCollisions = 0
	s.SlotsRun = 0
}

// AttachObservers points the simulator (and its reader protocol) at a
// per-trial tracer and fault source. Pooled clones carry no observers
// while parked; the pool attaches the job's own pair on Acquire and
// detaches on Release so a parked clone never retains a job's sink.
func (s *SlotSim) AttachObservers(trace *obs.Tracer, faults FaultSource) {
	s.cfg.Trace = trace
	s.cfg.Faults = faults
	s.reader.Trace = trace
}

// SlotResult reports one simulated slot.
//
// Transmitters and Obs.Decoded alias per-simulator scratch that the
// next Step call overwrites — the slot loop runs allocation-free.
// Callers that need a slot's lists beyond the following Step must copy
// them.
type SlotResult struct {
	Slot         int
	Transmitters []int
	Obs          Observation
	Feedback     Feedback // broadcast at the END of this slot
}

// Step simulates one slot and returns what happened in it.
func (s *SlotSim) Step() SlotResult {
	slot := s.SlotsRun
	var fs SlotFaults
	if s.cfg.Faults != nil {
		fs = s.cfg.Faults.BeginSlot(slot)
	}
	if fs.ReaderDown {
		return s.stepReaderDown(slot)
	}
	fb := s.fb
	if fs.ReaderReset {
		// Carrier restart with reader state loss: the recovering
		// reader opens this slot with a RESET beacon, forcing a full
		// network recontention. The slot clock is resynced so the
		// restarted reader stays in the global frame.
		fb = s.reader.Reset()
		s.reader.SyncSlot(slot)
	}
	if s.cfg.Trace.Enabled() {
		s.cfg.Trace.Emit(obs.Event{Kind: obs.KindSlotOpen, Slot: slot, ACK: fb.ACK, Empty: fb.Empty})
	}

	transmitters := s.txScratch[:0]
	for i, t := range s.tags {
		if slot < t.joinSlot {
			continue
		}
		if t.down {
			if slot < t.downUntil {
				continue
			}
			// Recharged past HTH before this slot's beacon: the tag
			// rejoins as a newcomer with all volatile state lost.
			t.down = false
			t.proto.Rejoin()
			if s.cfg.Trace.Enabled() {
				s.cfg.Trace.Emit(obs.Event{Kind: obs.KindTagRejoin, Slot: slot, TID: t.tid,
					Period: int(t.proto.Period)})
			}
		}
		lost := s.rng.Bool(s.cfg.beaconLoss(i)) ||
			(i < len(fs.BeaconLoss) && fs.BeaconLoss[i]) ||
			(i < len(fs.SlipSlot) && fs.SlipSlot[i])
		if lost {
			if !s.cfg.DisableBeaconLossTimer {
				t.proto.OnBeaconLoss()
			}
			// Without the timer refinement the tag just fails to
			// advance its counter — the silent desynchronization of
			// Sec. 5.4's analysis.
			continue
		}
		fbi := fb
		if i < len(fs.CorruptACK) && fs.CorruptACK[i] {
			fbi.ACK = !fbi.ACK
		}
		if t.proto.OnBeacon(fbi) {
			transmitters = append(transmitters, t)
			t.txCount++
			t.lastTxSlot = slot
		}
	}

	// Mid-slot brownouts: the drain hits after the beacon, so the tag
	// took part in the slot, but its response (if any) dies on air and
	// its volatile state is gone by the time it recharges.
	for i, t := range s.tags {
		if i < len(fs.Brownout) && fs.Brownout[i] && !t.down && slot >= t.joinSlot {
			t.down = true
			delay := 1
			if i < len(fs.RejoinDelay) && fs.RejoinDelay[i] > 1 {
				delay = fs.RejoinDelay[i]
			}
			// Dark for delay whole slots after this one.
			t.downUntil = slot + 1 + delay
		}
	}

	var seen Observation
	s.decScratch = s.decScratch[:0]
	switch len(transmitters) {
	case 0:
	case 1:
		t := transmitters[0]
		failP := s.cfg.ulFail(t.tid - 1)
		if i := t.tid - 1; i < len(fs.ULFailProb) && fs.ULFailProb[i] > 0 {
			failP = 1 - (1-failP)*(1-fs.ULFailProb[i])
		}
		if t.down {
			failP = 1 // the packet was truncated mid-air
		}
		if !s.rng.Bool(failP) {
			s.decScratch = append(s.decScratch, t.tid)
			seen.Decoded = s.decScratch
		}
	default:
		seen.Collision = s.rng.Bool(s.cfg.CollisionDetectProb)
		if s.rng.Bool(s.cfg.CaptureProb) {
			// Capture: one packet survives; pick uniformly (the
			// waveform layer would pick the strongest).
			t := transmitters[s.rng.Intn(len(transmitters))]
			if !t.down {
				s.decScratch = append(s.decScratch, t.tid)
				seen.Decoded = s.decScratch
			}
		}
	}

	next, err := s.reader.EndSlot(seen)
	if err != nil {
		// The simulator reports only its own tags' ids; an invalid
		// observation here is a programming error, not bad input.
		//lint:allow panic-hygiene observations are built from this simulator's own tag ids; invalid tid is a programming bug
		panic(err)
	}
	// Tags that transmitted learn their fate from the next beacon; ACK
	// accounting here mirrors what they will see.
	if next.ACK && len(transmitters) == 1 {
		transmitters[0].ackCount++
	}

	s.Window.Observe(seen.NonEmpty(), seen.Collision)
	truthCollision := len(transmitters) > 1
	if len(transmitters) > 0 {
		s.TruthNonEmpty++
	}
	if truthCollision {
		s.TruthCollisions++
	}
	s.Convergence.Observe(truthCollision)

	s.fb = next
	s.SlotsRun++

	s.txScratch = transmitters // keep any growth for the next slot
	tids := s.tidScratch[:0]
	for _, t := range transmitters {
		tids = append(tids, t.tid)
	}
	s.tidScratch = tids
	if s.cfg.Trace.Enabled() {
		// Events outlive the slot (sinks retain them), so they get
		// copies, not the reused scratch.
		tidsCopy := make([]int, len(tids))
		copy(tidsCopy, tids)
		var decCopy []int
		if seen.Decoded != nil {
			decCopy = make([]int, len(seen.Decoded))
			copy(decCopy, seen.Decoded)
		}
		s.cfg.Trace.Emit(obs.Event{Kind: obs.KindSlotClose, Slot: slot, TIDs: tidsCopy,
			Decoded: decCopy, Collision: seen.Collision, ACK: next.ACK, Empty: next.Empty})
	}
	return SlotResult{Slot: slot, Transmitters: tids, Obs: seen, Feedback: next}
}

// stepReaderDown simulates one slot with the reader carrier dark: no
// beacon is broadcast, so every powered tag experiences a beacon loss
// (and migrates, per Sec. 5.4), the reader neither observes the channel
// nor advances its slot counter, and browned-out tags cannot recharge —
// their rejoin deadline slides by one slot per outage slot.
func (s *SlotSim) stepReaderDown(slot int) SlotResult {
	if s.cfg.Trace.Enabled() {
		s.cfg.Trace.Emit(obs.Event{Kind: obs.KindSlotOpen, Slot: slot, Detail: "reader_down"})
	}
	for _, t := range s.tags {
		if slot < t.joinSlot {
			continue
		}
		if t.down {
			t.downUntil++ // no carrier, no harvesting
			continue
		}
		if !s.cfg.DisableBeaconLossTimer {
			t.proto.OnBeaconLoss()
		}
	}
	s.SlotsRun++
	// The outage slot still elapsed in absolute time: keep the reader's
	// clock in the global frame, so beliefs from before the outage are
	// judged against real elapsed slots once the carrier returns.
	s.reader.SyncSlot(s.SlotsRun)
	if s.cfg.Trace.Enabled() {
		s.cfg.Trace.Emit(obs.Event{Kind: obs.KindSlotClose, Slot: slot, Detail: "reader_down"})
	}
	return SlotResult{Slot: slot, Feedback: s.fb}
}

// Run advances n slots.
func (s *SlotSim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// RunUntilConverged steps until the convergence criterion fires or
// maxSlots elapse; it returns the first-convergence time in slots and
// whether it converged.
func (s *SlotSim) RunUntilConverged(maxSlots int) (int, bool) {
	for s.SlotsRun < maxSlots {
		s.Step()
		if s.Convergence.Converged() {
			return s.Convergence.ConvergenceSlot(), true
		}
	}
	return s.SlotsRun, false
}

// TagStates returns the protocol state of every tag (for assertions and
// displays).
func (s *SlotSim) TagStates() []TagState {
	out := make([]TagState, len(s.tags))
	for i, t := range s.tags {
		out[i] = t.proto.State()
	}
	return out
}

// AllSettled reports whether every joined tag is in SETTLE. A
// browned-out tag is dark, not settled, whatever its stale state says.
func (s *SlotSim) AllSettled() bool {
	for _, t := range s.tags {
		if s.SlotsRun <= t.joinSlot || t.down || t.proto.State() != Settle {
			return false
		}
	}
	return true
}

// Assignments returns the current (period, offset) of every tag in the
// GLOBAL slot frame, so schedules of tags that joined at different
// times (or desynchronized) are directly comparable. A tag's local
// offset is translated via its most recent transmission slot; a tag
// that never transmitted reports its local offset unchanged.
func (s *SlotSim) Assignments() []Assignment {
	out := make([]Assignment, len(s.tags))
	for i, t := range s.tags {
		p := t.proto.Period
		off := t.proto.Offset()
		if t.lastTxSlot >= 0 {
			// The last transmission happened at the then-current
			// offset; if the tag has not migrated since, this is its
			// global congruence class.
			off = t.lastTxSlot % int(p)
		}
		out[i] = Assignment{Period: p, Offset: off}
	}
	return out
}

// TagCounters returns (transmissions, acks) for 1-based tid.
func (s *SlotSim) TagCounters(tid int) (tx, acks int, err error) {
	if tid < 1 || tid > len(s.tags) {
		return 0, 0, fmt.Errorf("mac: tid %d out of range", tid)
	}
	t := s.tags[tid-1]
	return t.txCount, t.ackCount, nil
}

// Reader exposes the reader protocol (read-only use intended).
func (s *SlotSim) Reader() *ReaderProtocol { return s.reader }
