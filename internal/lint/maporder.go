package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerMapOrder flags `for … range` over a map whose body lets the
// (randomized) iteration order escape into an observable artifact:
//
//   - appending to a slice that is not bucketed by the range key,
//     unless a sort call follows later in the same function;
//   - returning a value derived from the iteration variables (the
//     "first match wins" pattern picks a random winner);
//   - emitting output or scheduling simulator events inside the body
//     (fmt printing, Write*, obs sink emission, engine After/Schedule —
//     the discrete-event engine breaks timestamp ties in scheduling
//     order, so map order would leak into event order).
//
// Aggregations that are order-independent (summing, writing into
// another map, per-key buckets like samples[k] = append(samples[k], v))
// are not flagged.
var AnalyzerMapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "flag map iteration whose order leaks into slices, returns, output or event schedules",
	Run:  runMapOrder,
}

// emitMethodNames are callee names that move data toward an observable
// output or the event queue.
var emitMethodNames = map[string]bool{
	"Emit": true, "Event": true, "Record": true,
	"After": true, "Schedule": true, "At": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapOrder(p *Pass) {
	if isDriverPath(p.Pkg.Path) || p.Pkg.Info == nil {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(p, fd)
		}
	}
}

func checkMapRanges(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		keyName := identName(rs.Key)
		valName := identName(rs.Value)
		sortedAfter := hasSortAfter(fd, rs)
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.RangeStmt:
				// Nested map ranges get their own visit from the outer
				// pass; skip their bodies to avoid double reports.
				// Nested slice ranges stay in scope: they still run
				// once per (randomized) outer key.
				if t := p.Pkg.Info.TypeOf(m.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			case *ast.AssignStmt:
				reportUnsortedAppends(p, m, keyName, sortedAfter)
			case *ast.ReturnStmt:
				if returnUsesIterationVars(m, keyName, valName) {
					p.Reportf(m.Pos(), "return inside map iteration selects a winner in randomized map order; iterate sorted keys so the result is deterministic")
				}
			case *ast.CallExpr:
				if name, ok := calleeName(m); ok && emitMethodNames[name] {
					p.Reportf(m.Pos(), "%s call inside map iteration emits in randomized map order; iterate sorted keys (or collect and sort first)", name)
				}
			}
			return true
		})
		return true
	})
}

// reportUnsortedAppends flags x = append(x, …) growing a slice in map
// order, unless the target is a per-key bucket (indexed by the range
// key) or a sort call follows the loop.
func reportUnsortedAppends(p *Pass, as *ast.AssignStmt, keyName string, sortedAfter bool) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		if sortedAfter {
			continue
		}
		if i < len(as.Lhs) {
			if idx, ok := as.Lhs[i].(*ast.IndexExpr); ok && keyName != "" && identName(idx.Index) == keyName {
				continue // samples[key] = append(samples[key], v): per-key bucket
			}
		}
		p.Reportf(call.Pos(), "append inside map iteration builds a slice in randomized map order; sort it afterwards or iterate sorted keys")
	}
}

// hasSortAfter reports whether the enclosing function contains a
// sort-like call lexically after the range statement.
func hasSortAfter(fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if name, ok := calleeName(call); ok && strings.Contains(name, "Sort") {
			found = true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
				found = true
			}
		}
		return !found
	})
	return found
}

// returnUsesIterationVars reports whether any returned expression
// references the range key or value by name.
func returnUsesIterationVars(ret *ast.ReturnStmt, keyName, valName string) bool {
	uses := false
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if (keyName != "" && id.Name == keyName) || (valName != "" && id.Name == valName) {
					uses = true
				}
			}
			return !uses
		})
	}
	return uses
}

// identName returns the name of expr if it is a plain identifier
// (excluding the blank identifier).
func identName(expr ast.Expr) string {
	if id, ok := expr.(*ast.Ident); ok && id.Name != "_" {
		return id.Name
	}
	return ""
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}
