package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockFuncs are ambient-state entry points, keyed by package path
// then function name, with the reason they break reproducibility.
var wallClockFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall clock",
		"Since": "wall clock",
		"Until": "wall clock",
	},
	"os": {
		"Getenv":    "process environment",
		"LookupEnv": "process environment",
		"Environ":   "process environment",
	},
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// backed by the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// randPackages are the ambient-PRNG standard-library packages.
var randPackages = map[string]bool{"math/rand": true, "math/rand/v2": true}

// AnalyzerDeterminismTaint is the module-wide successor of the old
// per-package determinism check. Two layers:
//
//  1. Inside the simulation core and service layers (everything outside
//     cmd/, examples/, experiments/) ambient sources — wall clock,
//     process environment, global math/rand — are forbidden outright,
//     exactly as before: these packages must be pure functions of
//     (spec, seed) everywhere, not just on the paths we can trace.
//
//  2. The driver layers were previously unchecked. Now a source inside
//     driver code is flagged when the function containing it is
//     reachable, through the module call graph, from a
//     fingerprint-producing root: fleet report construction
//     (fleet.buildReport / Report.Fingerprint), obs trace emission
//     (obs.Tracer.Emit), or an experiment table writer (exported
//     experiments.Run*/Fig*/Table*/Appendix*). The diagnostic carries
//     the call path so the leak is auditable. Map iteration in a
//     reachable driver function is part of layer 2: randomized order
//     leaking into an emitted table is the same class of taint.
//
// A per-package check provably misses layer 2: the source and the root
// live in different packages and the old check skipped driver paths
// entirely (the fixture pins this).
var AnalyzerDeterminismTaint = &Analyzer{
	Name:      "determinism-taint",
	Doc:       "forbid ambient time/env/global-rand in simulation code, and taint driver-layer sources reachable from fingerprint/report roots via the module call graph",
	RunModule: runDeterminismTaint,
}

func runDeterminismTaint(p *Pass) {
	// Layer 1: direct sources in non-driver packages.
	for _, pkg := range p.Mod.Pkgs {
		if isDriverPath(pkg.Path) {
			continue
		}
		for _, f := range pkg.AllFiles() {
			reportDirectSources(p, f, "")
		}
	}
	// Layer 2: call-graph taint into driver packages.
	g := p.Mod.CallGraph()
	pred := g.ReachableFrom(fingerprintRoots(g))
	for _, node := range g.Nodes {
		if node.InTest || !isDriverPath(node.Pkg.Path) {
			continue
		}
		if _, reached := pred[node]; !reached {
			continue
		}
		via := strings.Join(PathTo(pred, node), " -> ")
		reportDirectSources(p, wrapDeclAsFile(node), via)
		reportTaintedMapRanges(p, node, via)
	}
}

// fingerprintRoots returns the curated set of functions whose output is
// part of the reproducibility contract: fleet report/fingerprint
// construction, obs trace emission, and experiment table writers.
func fingerprintRoots(g *CallGraph) []*FuncNode {
	var roots []*FuncNode
	for _, node := range g.Nodes {
		if node.InTest {
			continue
		}
		seg := lastSegment(node.Pkg.Path)
		name := node.Decl.Name.Name
		recv := ""
		if node.Decl.Recv != nil && len(node.Decl.Recv.List) == 1 {
			recv = recvTypeName(node.Decl.Recv.List[0].Type)
		}
		switch {
		case seg == "fleet" && (name == "buildReport" || name == "Fingerprint"):
			roots = append(roots, node)
		case seg == "obs" && recv == "Tracer" && name == "Emit":
			roots = append(roots, node)
		case hasPathSegment(node.Pkg.Path, "experiments") && ast.IsExported(name) &&
			(strings.HasPrefix(name, "Run") || strings.HasPrefix(name, "Fig") ||
				strings.HasPrefix(name, "Table") || strings.HasPrefix(name, "Appendix")):
			roots = append(roots, node)
		}
	}
	return roots
}

// hasPathSegment reports whether any slash-separated segment of the
// import path equals seg.
func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// declFileView lets reportDirectSources walk either a whole file
// (layer 1) or a single reachable declaration (layer 2) with the right
// import table.
type declFileView struct {
	node    ast.Node
	imports map[string]string
}

func wrapDeclAsFile(node *FuncNode) declFileView {
	return declFileView{node: node.Decl, imports: importTable(node.File)}
}

// reportDirectSources flags wall-clock/env reads, global math/rand use
// and unseeded rand.New under view. via, when non-empty, is the call
// path from a fingerprint root and is appended to the message.
func reportDirectSources(p *Pass, view any, via string) {
	var root ast.Node
	var imports map[string]string
	switch v := view.(type) {
	case *ast.File:
		root, imports = v, importTable(v)
	case declFileView:
		root, imports = v.node, v.imports
	}
	suffix := ""
	if via != "" {
		suffix = " (reaches fingerprint root via " + via + ")"
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, name, ok := qualified(n.Fun, imports)
			if ok && randPackages[imports[id]] && name == "New" && len(n.Args) == 0 {
				p.Reportf(n.Pos(), "%s.New without an explicit seeded source; pass a source derived from the experiment seed%s", id, suffix)
			}
		case *ast.SelectorExpr:
			id, name, ok := qualified(n, imports)
			if !ok {
				return true
			}
			path := imports[id]
			if why, bad := wallClockFuncs[path][name]; bad {
				p.Reportf(n.Pos(), "%s.%s reads the ambient %s; simulation output must be a pure function of (spec, seed) — thread time through the sim clock or annotate measurement code with //lint:allow%s",
					id, name, why, suffix)
			}
			if randPackages[path] && globalRandFuncs[name] {
				p.Reportf(n.Pos(), "%s.%s draws from the global PRNG; derive a seeded stream with sim.NewRand(seed) or rng.Fork(id) instead%s",
					id, name, suffix)
			}
		}
		return true
	})
}

// reportTaintedMapRanges flags map iteration inside a driver function
// on a fingerprint path when the body appends to a slice or emits
// output and no sort follows: randomized order would leak into the
// fingerprinted artifact. Non-driver packages are covered (more
// thoroughly) by the map-order analyzer.
func reportTaintedMapRanges(p *Pass, node *FuncNode, via string) {
	info := node.Pkg.Info
	if info == nil {
		return
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if hasSortAfter(node.Decl, rs) {
			return true
		}
		leaky := false
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for _, rhs := range m.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
							leaky = true
						}
					}
				}
			case *ast.CallExpr:
				if name, ok := calleeName(m); ok && emitMethodNames[name] {
					leaky = true
				}
			}
			return !leaky
		})
		if leaky {
			p.Reportf(rs.Pos(), "map iteration order leaks into a fingerprinted artifact (reaches fingerprint root via %s); iterate sorted keys", via)
		}
		return true
	})
}

// qualified decomposes expr as a pkg.Name selector where pkg is an
// imported package in the file's import table.
func qualified(expr ast.Expr, imports map[string]string) (pkgLocal, name string, ok bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	if _, imported := imports[id.Name]; !imported {
		return "", "", false
	}
	return id.Name, sel.Sel.Name, true
}
