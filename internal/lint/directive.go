package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// DirectiveCheck is the pseudo-check name under which malformed or
// stale //lint:allow directives are reported. Directive findings are
// not themselves suppressible.
const DirectiveCheck = "directive"

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:allow"

// Directive is one parsed //lint:allow comment.
type Directive struct {
	File   string // module-relative path
	Line   int
	Check  string
	Reason string
	// Err is a non-empty parse/validation problem ("missing reason",
	// "unknown check ..."); invalid directives never suppress anything.
	Err string
	// used is set when the directive suppressed at least one finding.
	used bool
}

// parseDirective splits the text of a single comment. ok is false when
// the comment is not a lint directive at all. For lint directives with
// problems, ok is true and d.Err describes the problem.
func parseDirective(text string, known map[string]bool) (d Directive, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := text[len(directivePrefix):]
	// Require "//lint:allow " (or exactly the bare prefix): reject
	// look-alikes such as //lint:allowed.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return Directive{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Directive{Err: "missing check name and reason"}, true
	}
	d.Check = fields[0]
	d.Reason = strings.Join(fields[1:], " ")
	switch {
	case !known[d.Check]:
		d.Err = "unknown check " + strconv.Quote(d.Check)
	case d.Reason == "":
		d.Err = "missing reason (write //lint:allow " + d.Check + " <why this is safe>)"
	}
	return d, true
}

// collectDirectives scans every comment in the module (non-test and
// test files alike) for //lint:allow directives.
func collectDirectives(m *Module, known map[string]bool) []*Directive {
	var out []*Directive
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.AllFiles() {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c.Text, known)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					d.File = m.relPath(pos.Filename)
					d.Line = pos.Line
					dd := d
					out = append(out, &dd)
				}
			}
		}
	}
	return out
}

// applyDirectives filters diags through the directives: a valid
// directive suppresses findings of its check in the same file on its
// own line or the line immediately below. Invalid directives and valid
// directives that suppressed nothing (stale allows) are appended as
// DirectiveCheck findings.
func applyDirectives(diags []Diagnostic, dirs []*Directive) []Diagnostic {
	kept := diags[:0:0]
	for _, diag := range diags {
		suppressed := false
		for _, d := range dirs {
			if d.Err != "" || d.Check != diag.Check || d.File != diag.File {
				continue
			}
			if diag.Line == d.Line || diag.Line == d.Line+1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	for _, d := range dirs {
		switch {
		case d.Err != "":
			kept = append(kept, Diagnostic{
				File: d.File, Line: d.Line, Col: 1,
				Check:   DirectiveCheck,
				Message: "malformed //lint:allow: " + d.Err,
			})
		case !d.used:
			kept = append(kept, Diagnostic{
				File: d.File, Line: d.Line, Col: 1,
				Check:   DirectiveCheck,
				Message: "stale //lint:allow " + d.Check + ": no matching finding on this or the next line",
			})
		}
	}
	return kept
}

// fileOf returns the *ast.File in pkg containing pos, for analyzers
// that need the file's import table while walking declarations.
func fileOf(m *Module, pkg *Package, node ast.Node) *ast.File {
	for _, f := range pkg.AllFiles() {
		if f.FileStart <= node.Pos() && node.Pos() <= f.FileEnd {
			return f
		}
	}
	return nil
}
