package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// StaleFix records one //lint:allow directive removed by FixStale.
type StaleFix struct {
	File string // module-relative path
	Line int
}

// FixStale runs the analyzer suite over the module at root and deletes
// every stale //lint:allow directive — one that is well-formed but no
// longer suppresses any finding. A directive alone on its line is
// removed with the line; a trailing directive is stripped, keeping the
// code. Malformed directives (unknown check, missing reason) are left
// in place: they need a human, not deletion. Returns the fixes applied,
// sorted by file then line.
func FixStale(root string) ([]StaleFix, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	byFile := make(map[string][]int)
	for _, d := range RunModule(mod) {
		if d.Check == DirectiveCheck && strings.HasPrefix(d.Message, "stale") {
			byFile[d.File] = append(byFile[d.File], d.Line)
		}
	}
	var fixes []StaleFix
	for file, lineNos := range byFile {
		// Edit bottom-up so earlier line numbers stay valid.
		sort.Sort(sort.Reverse(sort.IntSlice(lineNos)))
		abs := filepath.Join(mod.Root, filepath.FromSlash(file))
		data, err := os.ReadFile(abs)
		if err != nil {
			return nil, err
		}
		lines := strings.Split(string(data), "\n")
		for _, n := range lineNos {
			if n < 1 || n > len(lines) {
				continue
			}
			src := lines[n-1]
			idx := strings.Index(src, directivePrefix)
			if idx < 0 {
				continue
			}
			if strings.TrimSpace(src[:idx]) == "" {
				lines = append(lines[:n-1], lines[n:]...)
			} else {
				lines[n-1] = strings.TrimRight(src[:idx], " \t")
			}
			fixes = append(fixes, StaleFix{File: file, Line: n})
		}
		if err := os.WriteFile(abs, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
			return nil, err
		}
	}
	sort.Slice(fixes, func(i, j int) bool {
		if fixes[i].File != fixes[j].File {
			return fixes[i].File < fixes[j].File
		}
		return fixes[i].Line < fixes[j].Line
	})
	return fixes, nil
}
