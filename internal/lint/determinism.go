package lint

import (
	"go/ast"
)

// wallClockFuncs are ambient-state entry points, keyed by package path
// then function name, with the reason they break reproducibility.
var wallClockFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall clock",
		"Since": "wall clock",
		"Until": "wall clock",
	},
	"os": {
		"Getenv":    "process environment",
		"LookupEnv": "process environment",
		"Environ":   "process environment",
	},
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// backed by the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// randPackages are the ambient-PRNG standard-library packages.
var randPackages = map[string]bool{"math/rand": true, "math/rand/v2": true}

// AnalyzerDeterminism forbids wall-clock reads, environment access and
// global math/rand use everywhere outside the driver layers
// (cmd/, examples/, experiments/). Simulation output must be a pure
// function of (spec, seed): PR 1 pins fleet fingerprints to it and
// PR 3 pins fault sequences to it. Measurement code (internal/fleet
// wall timing, benchmarks in _test.go files) states its exemption in
// line with a //lint:allow determinism directive, so every escape is
// explicit and reviewed.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now/time.Since, os.Getenv and global math/rand in simulation code",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	if isDriverPath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.AllFiles() {
		imports := importTable(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				id, name, ok := qualified(n.Fun, imports)
				if ok && randPackages[imports[id]] && name == "New" && len(n.Args) == 0 {
					p.Reportf(n.Pos(), "%s.New without an explicit seeded source; pass a source derived from the experiment seed", id)
				}
			case *ast.SelectorExpr:
				id, name, ok := qualified(n, imports)
				if !ok {
					return true
				}
				path := imports[id]
				if why, bad := wallClockFuncs[path][name]; bad {
					p.Reportf(n.Pos(), "%s.%s reads the ambient %s; simulation output must be a pure function of (spec, seed) — thread time through the sim clock or annotate measurement code with //lint:allow",
						id, name, why)
				}
				if randPackages[path] && globalRandFuncs[name] {
					p.Reportf(n.Pos(), "%s.%s draws from the global PRNG; derive a seeded stream with sim.NewRand(seed) or rng.Fork(id) instead",
						id, name)
				}
			}
			return true
		})
	}
}

// qualified decomposes expr as a pkg.Name selector where pkg is an
// imported package in the file's import table.
func qualified(expr ast.Expr, imports map[string]string) (pkgLocal, name string, ok bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	if _, imported := imports[id.Name]; !imported {
		return "", "", false
	}
	return id.Name, sel.Sel.Name, true
}
