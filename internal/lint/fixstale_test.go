package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixStale builds a throwaway module with one stale directive on
// its own line, one stale trailing directive, one live directive and
// one malformed directive, then checks FixStale removes exactly the
// stale two.
func TestFixStale(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixme\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `// Package fixme exercises -fix-stale.
package fixme

//lint:allow map-order stale, on its own line
func A() {}

func B(x int) {
	if x < 0 {
		panic("impossible") //lint:allow panic-hygiene live directive stays
	}
}

func C() {} //lint:allow rng-discipline stale trailing directive

//lint:allow nosuch malformed stays for a human
func D() {}
`
	path := filepath.Join(dir, "fixme.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	fixes, err := FixStale(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes) != 2 {
		t.Fatalf("fixes = %+v, want 2", fixes)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(out)
	if strings.Contains(got, "map-order") || strings.Contains(got, "rng-discipline") {
		t.Errorf("stale directives survive:\n%s", got)
	}
	if !strings.Contains(got, "panic-hygiene live directive stays") {
		t.Errorf("live directive removed:\n%s", got)
	}
	if !strings.Contains(got, "nosuch malformed stays") {
		t.Errorf("malformed directive removed (needs a human):\n%s", got)
	}
	if !strings.Contains(got, "func C() {}") {
		t.Errorf("code stripped along with trailing directive:\n%s", got)
	}
	// The cleaned file must now be free of stale reports (only the
	// malformed one remains).
	diags, err := Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("stale finding survives the fix: %s", d)
		}
	}
}
