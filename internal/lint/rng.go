package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerRNGDiscipline enforces the repo's PRNG rules: the sanctioned
// generator is sim.Rand, seeded explicitly (sim.NewRand) or forked from
// a parent stream (Rand.Fork), so every random sequence is a pure
// function of the experiment seed and a stable stream id. The analyzer
// flags (1) any import of math/rand or math/rand/v2 outside the driver
// layers — their generators carry ambient global state and seed
// themselves nondeterministically — and (2) zero-value construction of
// sim.Rand (var x sim.Rand, sim.Rand{}, new(sim.Rand)), whose all-zero
// xoshiro state is degenerate and bypasses seed derivation.
var AnalyzerRNGDiscipline = &Analyzer{
	Name: "rng-discipline",
	Doc:  "require sim.Rand seeded via NewRand/Fork; forbid math/rand and zero-value sim.Rand",
	Run:  runRNGDiscipline,
}

func runRNGDiscipline(p *Pass) {
	if isDriverPath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.AllFiles() {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if randPackages[path] {
				p.Reportf(imp.Pos(), "import of %s: use repro/internal/sim.Rand (sim.NewRand(seed) / rng.Fork(id)) so random streams are a pure function of the experiment seed", path)
			}
		}
	}
	// Zero-value construction needs type information; sim itself is
	// exempt (its constructor builds the zero value before seeding).
	if p.Pkg.Info == nil || lastSegment(p.Pkg.Path) == "sim" {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isSimRand(p.Pkg.Info.Types[n].Type) {
					p.Reportf(n.Pos(), "zero-value sim.Rand composite literal has degenerate all-zero state; use sim.NewRand(seed) or Fork")
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if isSimRand(p.Pkg.Info.Types[n.Args[0]].Type) {
						p.Reportf(n.Pos(), "new(sim.Rand) has degenerate all-zero state; use sim.NewRand(seed) or Fork")
					}
				}
			case *ast.ValueSpec:
				if n.Type == nil || len(n.Values) > 0 {
					return true
				}
				if isSimRand(p.Pkg.Info.Types[n.Type].Type) {
					p.Reportf(n.Pos(), "zero-value sim.Rand variable has degenerate all-zero state; use sim.NewRand(seed) or Fork")
				}
			}
			return true
		})
	}
}

// isSimRand reports whether t is the named type Rand from a package
// whose import path ends in /sim (value type, not pointer: a nil
// *sim.Rand is a legitimate "no randomness" sentinel).
func isSimRand(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	return lastSegment(obj.Pkg().Path()) == "sim"
}
