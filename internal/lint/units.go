package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerUnits enforces the unit-suffix convention in the physics
// packages (biw, pzt, energy, strain), where the paper mixes dB,
// linear-gain, volt, hertz and second quantities (Fig. 11, Table 2,
// Appendix A). Two rules:
//
//  1. Exported float64 struct fields, and the float64 parameters and
//     named results of exported functions/methods, must end in a
//     registered unit suffix (DB, Hz, Volts, Amps, Watts, Ohms,
//     Farads, Joules, Seconds, Meters, M, BPS, PerMeter, PerSecond,
//     PerHz) or a registered dimensionless suffix (Ratio, Fraction,
//     Efficiency, Factor, Coefficient, Compression, Gain, Reflectance,
//     Depth, Exponent, Index, Epsilon, Prob, Probability). Bare
//     coordinates (X, Y, Z) are exempt by exact name.
//
//  2. Binary + / - must not mix a *DB identifier with an identifier
//     carrying a linear suffix (Volts, Amps, Watts, Ratio, Gain):
//     logarithmic and linear quantities add on different axes.
//
// The suffix tables live in this file; extend them here (with a DESIGN.md
// note) when a new physical dimension enters the model.
var AnalyzerUnits = &Analyzer{
	Name: "units",
	Doc:  "require unit suffixes on float64 physics APIs; forbid dB + linear arithmetic",
	Run:  runUnits,
}

// unitSuffixes (length >= 2 matched case-insensitively at the end of
// the name; ordering is irrelevant).
var unitSuffixes = []string{
	"DB", "Hz", "KHz", "Volts", "Amps", "Watts", "Ohms", "Farads",
	"Joules", "Seconds", "Meters", "BPS", "PerMeter", "PerSecond", "PerHz",
}

// dimensionlessSuffixes mark explicitly unitless quantities.
var dimensionlessSuffixes = []string{
	"Ratio", "Fraction", "Efficiency", "Factor", "Coefficient",
	"Compression", "Gain", "Reflectance", "Depth", "Exponent", "Index",
	"Epsilon", "Prob", "Probability",
}

// linearSuffixes participate in the dB-mixing check as linear-axis
// quantities.
var linearSuffixes = []string{"Volts", "Amps", "Watts", "Ratio", "Gain"}

// unitExemptNames are allowed verbatim (coordinates are meters by
// deployment convention, documented on biw.Position).
var unitExemptNames = map[string]bool{"X": true, "Y": true, "Z": true, "x": true, "y": true, "z": true}

func hasAnySuffix(name string, suffixes []string) bool {
	lower := strings.ToLower(name)
	for _, s := range suffixes {
		if strings.HasSuffix(lower, strings.ToLower(s)) {
			return true
		}
	}
	return false
}

// hasUnitSuffix accepts registered unit suffixes plus the single-letter
// meters shorthand "M" (trailing capital M after a lowercase letter, as
// in OffsetM / displacementM, or the bare name "m").
func hasUnitSuffix(name string) bool {
	if hasAnySuffix(name, unitSuffixes) {
		return true
	}
	if name == "m" {
		return true
	}
	if len(name) >= 2 && name[len(name)-1] == 'M' {
		prev := name[len(name)-2]
		return prev >= 'a' && prev <= 'z'
	}
	return false
}

func unitNameOK(name string) bool {
	return unitExemptNames[name] || hasUnitSuffix(name) || hasAnySuffix(name, dimensionlessSuffixes)
}

func runUnits(p *Pass) {
	if !isPhysicsPackage(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						checkStructFields(p, st)
					}
				}
			case *ast.FuncDecl:
				if decl.Name.IsExported() {
					checkSignature(p, decl.Type)
				}
			}
		}
		// dB-mixing applies to every expression in the file, exported
		// or not: the arithmetic bug does not care about visibility.
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			checkDBMixing(p, be)
			return true
		})
	}
}

func checkStructFields(p *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isFloat64Expr(p, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() && !unitNameOK(name.Name) {
				p.Reportf(name.Pos(), "exported float64 field %s needs a unit suffix (DB, Hz, Volts, Seconds, ...) or a dimensionless suffix (Ratio, Factor, ...)", name.Name)
			}
		}
	}
}

func checkSignature(p *Pass, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if !isFloat64Expr(p, field.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				if !unitNameOK(name.Name) {
					p.Reportf(name.Pos(), "float64 %s %s of exported function needs a unit suffix (DB, Hz, Volts, Seconds, ...) or a dimensionless suffix (Ratio, Factor, ...)", kind, name.Name)
				}
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// isFloat64Expr reports whether the type expression denotes float64,
// preferring type information and falling back to the literal
// identifier.
func isFloat64Expr(p *Pass, expr ast.Expr) bool {
	if p.Pkg.Info != nil {
		if t := p.Pkg.Info.TypeOf(expr); t != nil {
			if b, ok := t.(*types.Basic); ok {
				return b.Kind() == types.Float64
			}
			return false
		}
	}
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "float64"
}

// checkDBMixing flags lossDB + gainRatio style arithmetic.
func checkDBMixing(p *Pass, be *ast.BinaryExpr) {
	if be.Op.String() != "+" && be.Op.String() != "-" {
		return
	}
	xName, yName := trailingName(be.X), trailingName(be.Y)
	xDB, yDB := hasAnySuffix(xName, []string{"DB"}), hasAnySuffix(yName, []string{"DB"})
	xLin, yLin := isLinearName(xName), isLinearName(yName)
	if (xDB && yLin) || (yDB && xLin) {
		p.Reportf(be.OpPos, "%s %s %s mixes a dB quantity with a linear quantity; convert with 10*log10/10^(x/10) first", xName, be.Op, yName)
	}
}

// isLinearName: a linear suffix, where a trailing DB does not override
// (GainDB is a dB quantity even though it contains "Gain").
func isLinearName(name string) bool {
	return hasAnySuffix(name, linearSuffixes) && !hasAnySuffix(name, []string{"DB"})
}

// trailingName extracts the rightmost identifier of an expression
// (x, c.x, f(…) -> "").
func trailingName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return trailingName(e.X)
	}
	return ""
}
