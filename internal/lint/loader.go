package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded module package: parsed syntax plus (for
// non-test files) tolerant type information.
type Package struct {
	Path      string // import path, e.g. "repro/internal/mac"
	Dir       string
	Files     []*ast.File // non-test files
	TestFiles []*ast.File // *_test.go files (in-package and external)
	Types     *types.Package
	Info      *types.Info
}

// AllFiles returns non-test then test files.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// Module is a fully loaded Go module.
type Module struct {
	Root      string // absolute directory containing go.mod
	Path      string // module path from go.mod
	Fset      *token.FileSet
	Pkgs      []*Package // sorted by import path
	byPath    map[string]*Package
	callgraph *CallGraph // lazily built by CallGraph()
}

// relPath renders an absolute file name relative to the module root
// with forward slashes, for stable diagnostics and golden files.
func (m *Module) relPath(file string) string {
	if rel, err := filepath.Rel(m.Root, file); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// LoadModule parses and type-checks every package under root (the
// directory containing go.mod). Type checking is tolerant: standard
// library imports are stubbed with empty packages, so expressions
// involving them type as invalid without stopping the checker. Module
// internal imports are resolved from source, so cross-package types
// (sim.Rand, mac.Assignment, map fields, ...) are exact.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   abs,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	if err := m.parseTree(); err != nil {
		return nil, err
	}
	m.sortPackages()
	im := &moduleImporter{
		mod:      m,
		stubs:    make(map[string]*types.Package),
		checking: make(map[*Package]bool),
	}
	// Type-check in dependency order so every module-internal import is
	// already a real (non-stub) *types.Package by the time its importers
	// are checked: cross-package selections, method sets and interface
	// satisfaction then resolve exactly, which the call-graph analyzers
	// depend on. The importer still resolves on demand as a fallback, so
	// an accidental cycle degrades to a stub instead of an error.
	for _, pkg := range m.dependencyOrder() {
		im.check(pkg)
	}
	return m, nil
}

// dependencyOrder topologically sorts the module packages so that every
// package appears after all module-internal packages it imports. Ties
// and (impossible in a buildable module) cycles fall back to import-path
// order, keeping the result deterministic.
func (m *Module) dependencyOrder() []*Package {
	deps := make(map[*Package][]*Package, len(m.Pkgs))
	for _, pkg := range m.Pkgs {
		seen := make(map[*Package]bool)
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if dep, ok := m.byPath[path]; ok && dep != pkg && !seen[dep] {
					seen[dep] = true
					deps[pkg] = append(deps[pkg], dep)
				}
			}
		}
		sort.Slice(deps[pkg], func(i, j int) bool { return deps[pkg][i].Path < deps[pkg][j].Path })
	}
	order := make([]*Package, 0, len(m.Pkgs))
	state := make(map[*Package]int, len(m.Pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(*Package)
	visit = func(pkg *Package) {
		if state[pkg] != 0 {
			return // done, or a cycle — either way stop descending
		}
		state[pkg] = 1
		for _, dep := range deps[pkg] {
			visit(dep)
		}
		state[pkg] = 2
		order = append(order, pkg)
	}
	for _, pkg := range m.Pkgs {
		visit(pkg)
	}
	return order
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (is the root a module directory?)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// parseTree walks the module directory and parses every package. The
// conventional ignored directories (testdata, vendor, hidden) are
// skipped, matching the go tool.
func (m *Module) parseTree() error {
	return filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != m.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		importPath := m.Path
		if rel, err := filepath.Rel(m.Root, dir); err == nil && rel != "." {
			importPath = m.Path + "/" + filepath.ToSlash(rel)
		}
		f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", path, err)
		}
		pkg := m.byPath[importPath]
		if pkg == nil {
			pkg = &Package{Path: importPath, Dir: dir}
			m.byPath[importPath] = pkg
			m.Pkgs = append(m.Pkgs, pkg)
		}
		if strings.HasSuffix(path, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
		return nil
	})
}

// moduleImporter resolves module-internal imports by type-checking them
// from source on demand and stubs everything else (the standard
// library) with empty placeholder packages.
type moduleImporter struct {
	mod      *Module
	stubs    map[string]*types.Package
	checking map[*Package]bool
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.mod.byPath[path]; ok {
		im.check(pkg)
		if pkg.Types == nil {
			// Import cycle or empty package; stub it so the checker
			// can continue (go build would have rejected a real cycle).
			return im.stub(path), nil
		}
		return pkg.Types, nil
	}
	return im.stub(path), nil
}

func (im *moduleImporter) stub(path string) *types.Package {
	if p, ok := im.stubs[path]; ok {
		return p
	}
	p := types.NewPackage(path, lastSegment(path))
	p.MarkComplete()
	im.stubs[path] = p
	return p
}

// check type-checks pkg's non-test files once, tolerating errors.
func (im *moduleImporter) check(pkg *Package) {
	if pkg.Types != nil || len(pkg.Files) == 0 || im.checking[pkg] {
		return
	}
	im.checking[pkg] = true
	defer delete(im.checking, pkg)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer:         im,
		Error:            func(error) {}, // stub imports make errors routine
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
	tpkg, _ := cfg.Check(pkg.Path, im.mod.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
}

// sortPackages fixes the analysis order.
func (m *Module) sortPackages() {
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
}
