package lint

import (
	"go/ast"
	"strings"
)

// AnalyzerPanicHygiene forbids panic in non-test library code outside
// designated must*/Must* helpers. Library panics take down a whole
// fleet worker (PR 1 isolates them, but at the cost of losing the job);
// invariant guards that genuinely cannot fire in correct code state
// their justification in line with //lint:allow panic-hygiene <reason>.
//
// In files importing net/http the check extends to handler wiring: a
// handler registered bare (Handle/HandleFunc with an identifier, method
// value, or func literal) has no recover frame between it and the
// serving goroutine, so one panicking request kills the daemon. The
// handler argument must pass through a wrapping call — e.g.
// mux.Handle(pat, s.wrap(h)) — that installs recover middleware.
var AnalyzerPanicHygiene = &Analyzer{
	Name: "panic-hygiene",
	Doc:  "no panic outside must*/Must* helpers; HTTP handlers need a recover wrapper",
	Run:  runPanicHygiene,
}

func runPanicHygiene(p *Pass) {
	if isDriverPath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "must") || strings.HasPrefix(fd.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					p.Reportf(call.Pos(), "panic in library code; return an error, move it into a must* helper, or justify the invariant with //lint:allow panic-hygiene")
				}
				return true
			})
		}
		checkHandlerRegistrations(p, f)
	}
}

// checkHandlerRegistrations flags Handle/HandleFunc calls whose handler
// argument is registered bare. Only files importing net/http are
// examined, so unrelated Handle methods elsewhere are untouched.
func checkHandlerRegistrations(p *Pass, f *ast.File) {
	importsHTTP := false
	for _, path := range importTable(f) {
		if path == "net/http" {
			importsHTTP = true
			break
		}
	}
	if !importsHTTP {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
			return true
		}
		switch call.Args[1].(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.FuncLit:
			p.Reportf(call.Args[1].Pos(), "HTTP handler registered without a recover wrapper; pass it through recover middleware (e.g. mux.%s(pattern, wrap(handler))) so a panicking request answers 500 instead of killing the daemon", sel.Sel.Name)
		}
		return true
	})
}
