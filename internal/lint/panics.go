package lint

import (
	"go/ast"
	"strings"
)

// AnalyzerPanicHygiene forbids panic in non-test library code outside
// designated must*/Must* helpers. Library panics take down a whole
// fleet worker (PR 1 isolates them, but at the cost of losing the job);
// invariant guards that genuinely cannot fire in correct code state
// their justification in line with //lint:allow panic-hygiene <reason>.
var AnalyzerPanicHygiene = &Analyzer{
	Name: "panic-hygiene",
	Doc:  "no panic outside must*/Must* helpers in non-test library code",
	Run:  runPanicHygiene,
}

func runPanicHygiene(p *Pass) {
	if isDriverPath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "must") || strings.HasPrefix(fd.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					p.Reportf(call.Pos(), "panic in library code; return an error, move it into a must* helper, or justify the invariant with //lint:allow panic-hygiene")
				}
				return true
			})
		}
	}
}
