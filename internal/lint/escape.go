package lint

import (
	"fmt"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Static zero-alloc gate. The compiler's escape analysis
// (`go build -gcflags=-m`) reports every value that escapes to the
// heap; inside an //alloc:hot function such an escape is a steady-state
// allocation the AllocsPerRun tests would eventually catch — but only
// on the inputs they run. The gate makes the compiler's verdict the
// contract: escapes inside annotated functions are normalized into
// stable entries, compared against a checked-in baseline
// (scripts/escape-baseline.txt), and any NEW entry fails `make lint`.
//
// Entries are line-number-free ("file:Func: message") so that edits
// elsewhere in a file do not churn the baseline; the message itself
// names the escaping expression, which is what a reviewer needs.

// escapeMarkers are the -m diagnostics that mean a heap allocation.
var escapeMarkers = []string{"escapes to heap", "moved to heap"}

// ParseEscapeDiagnostics maps raw `go build -gcflags=-m` output into
// normalized gate entries: one "file:Func: message" per escape
// diagnostic that lands inside an //alloc:hot function from the
// manifest. Output lines outside annotated ranges, and non-escape
// diagnostics (inlining reports, leaking-param notes), are ignored.
// The result is sorted and deduplicated.
func ParseEscapeDiagnostics(output string, manifest []AllocHotFunc) []string {
	seen := make(map[string]bool)
	var entries []string
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		file, lineNo, msg, ok := splitDiagnostic(line)
		if !ok {
			continue
		}
		marked := false
		for _, marker := range escapeMarkers {
			if strings.Contains(msg, marker) {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		fn := lookupHotFunc(manifest, file, lineNo)
		if fn == nil {
			continue
		}
		entry := fn.File + ":" + fn.Func + ": " + strings.TrimSuffix(msg, ":")
		if !seen[entry] {
			seen[entry] = true
			entries = append(entries, entry)
		}
	}
	sort.Strings(entries)
	return entries
}

// splitDiagnostic decomposes "file.go:line:col: message" (the col part
// is optional in older toolchains).
func splitDiagnostic(line string) (file string, lineNo int, msg string, ok bool) {
	goIdx := strings.Index(line, ".go:")
	if goIdx < 0 {
		return "", 0, "", false
	}
	file = strings.TrimPrefix(line[:goIdx+3], "./")
	rest := line[goIdx+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) < 2 {
		return "", 0, "", false
	}
	lineNo, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, "", false
	}
	// parts[1] is either the column (followed by the message in
	// parts[2]) or already the message.
	if len(parts) == 3 {
		if _, err := strconv.Atoi(parts[1]); err == nil {
			return file, lineNo, strings.TrimSpace(parts[2]), true
		}
	}
	return file, lineNo, strings.TrimSpace(strings.Join(parts[1:], ":")), true
}

// lookupHotFunc finds the manifest entry whose line range contains
// (file, line). Compiler paths may be package-relative
// ("filter.go:131") or root-relative ("internal/dsp/filter.go:131");
// both resolve, preferring the exact match.
func lookupHotFunc(manifest []AllocHotFunc, file string, line int) *AllocHotFunc {
	var suffixHit *AllocHotFunc
	for i := range manifest {
		fn := &manifest[i]
		if line < fn.StartLine || line > fn.EndLine {
			continue
		}
		if fn.File == file {
			return fn
		}
		if strings.HasSuffix(fn.File, "/"+file) {
			suffixHit = fn
		}
	}
	return suffixHit
}

// DiffEscapeBaseline compares current gate entries against the
// checked-in baseline: added entries are new heap escapes (a gate
// failure), removed entries are stale baseline lines (an improvement —
// refresh the baseline).
func DiffEscapeBaseline(current, baseline []string) (added, removed []string) {
	cur := make(map[string]bool, len(current))
	for _, e := range current {
		cur[e] = true
	}
	base := make(map[string]bool, len(baseline))
	for _, e := range baseline {
		base[e] = true
	}
	for _, e := range current {
		if !base[e] {
			added = append(added, e)
		}
	}
	for _, e := range baseline {
		if !cur[e] {
			removed = append(removed, e)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// ParseBaseline reads baseline file content: one entry per line, blank
// lines and #-comments ignored.
func ParseBaseline(content string) []string {
	var out []string
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

// RunEscapeGate compiles the packages containing //alloc:hot functions
// with -gcflags=-m and returns the normalized gate entries. The -a flag
// defeats the build cache: a cached package would compile nothing and
// print nothing, silently passing the gate.
func RunEscapeGate(root string, manifest []AllocHotFunc) ([]string, error) {
	if len(manifest) == 0 {
		return nil, nil
	}
	pkgSet := make(map[string]bool)
	var pkgs []string
	for _, fn := range manifest {
		if !pkgSet[fn.Pkg] {
			pkgSet[fn.Pkg] = true
			pkgs = append(pkgs, fn.Pkg)
		}
	}
	sort.Strings(pkgs)
	args := append([]string{"build", "-a", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	return ParseEscapeDiagnostics(string(out), manifest), nil
}
