package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockDiscipline enforces two rules on the concurrent service
// layers (internal/fleetd, internal/obs, internal/resilience):
//
//  1. A mutex acquired in a function is released on every return path —
//     either by a defer or by a provable straight-line unlock. A return
//     reached with a lock still held (and no deferred unlock) is a
//     leak: the next Lock deadlocks the daemon.
//
//  2. A held lock must not be held across a blocking operation: channel
//     send/receive, select without a default, range over a channel,
//     time.Sleep / clock Sleep, net/http round trips, WaitGroup/Cond
//     Wait, resilience Runner.Do, and file fsync (Sync/SyncDir).
//     Blocking propagates through the module call graph: calling a
//     module function that transitively blocks counts as blocking.
//
// The tracker is a linear abstract interpretation per function:
// branches fork the held-lock state and merge by intersection
// (conservative — a lock released on only one arm is not reported),
// terminating branches do not merge back, loop and select-clause bodies
// are analyzed against a copy of the entry state, and function literals
// are analyzed as independent functions. select with a default case is
// non-blocking by construction (the obs.Broadcaster fan-out relies on
// this).
var AnalyzerLockDiscipline = &Analyzer{
	Name:      "lock-discipline",
	Doc:       "mutexes in fleetd/obs/resilience must unlock on all paths and never be held across blocking operations",
	RunModule: runLockDiscipline,
}

// lockScopeSegments are the import-path segments that opt a package
// into lock-discipline checking.
var lockScopeSegments = map[string]bool{"fleetd": true, "obs": true, "resilience": true}

func isLockScoped(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if lockScopeSegments[seg] {
			return true
		}
	}
	return false
}

// blockingWaitMethods are method names that block the calling
// goroutine regardless of receiver: fsync, waits and sleeps.
var blockingWaitMethods = map[string]string{
	"Sync":    "file fsync",
	"SyncDir": "directory fsync",
	"Wait":    "wait",
	"Sleep":   "sleep",
}

// httpCallFuncs are the net/http package-level round-trip entry points.
var httpCallFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true, "Do": true,
}

func runLockDiscipline(p *Pass) {
	g := p.Mod.CallGraph()
	blocking := blockingModuleFuncs(g)
	for _, node := range g.Nodes {
		if node.InTest || !isLockScoped(node.Pkg.Path) {
			continue
		}
		lt := &lockTracker{
			pass:     p,
			graph:    g,
			blocking: blocking,
			pkg:      node.Pkg,
			imports:  importTable(node.File),
		}
		lt.checkFunc(node.Decl.Body)
	}
}

// blockingModuleFuncs computes the transitive set of module functions
// whose bodies reach a blocking primitive, by fixed point over the
// call graph.
func blockingModuleFuncs(g *CallGraph) map[*FuncNode]bool {
	blocking := make(map[*FuncNode]bool)
	for _, node := range g.Nodes {
		imports := importTable(node.File)
		if bodyHasBlockingPrimitive(node, imports) {
			blocking[node] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.Nodes {
			if blocking[node] {
				continue
			}
			for _, callee := range node.Callees {
				if blocking[callee] {
					blocking[node] = true
					changed = true
					break
				}
			}
		}
	}
	return blocking
}

// bodyHasBlockingPrimitive reports whether node's body directly
// contains a blocking primitive (outside nested function literals and
// go statements, which run on other goroutines).
func bodyHasBlockingPrimitive(node *FuncNode, imports map[string]string) bool {
	found := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false // runs later or elsewhere
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				found = true
			}
			// Clause bodies run after the select unblocks; the select
			// itself is the primitive, so stop descending.
			return false
		case *ast.RangeStmt:
			if node.Pkg.Info != nil && isChannelType(node, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if why, _ := classifyBlockingCall(n, imports); why != "" {
				found = true
			}
		}
		return !found
	})
	return found
}

// classifyBlockingCall reports why a call expression blocks ("" when it
// does not), based on the primitive tables (std behavior is not in the
// call graph).
func classifyBlockingCall(call *ast.CallExpr, imports map[string]string) (why, what string) {
	if id, name, ok := qualified(call.Fun, imports); ok {
		path := imports[id]
		if path == "time" && name == "Sleep" {
			return "sleep", id + "." + name
		}
		if path == "net/http" && httpCallFuncs[name] {
			return "HTTP round trip", id + "." + name
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if why, ok := blockingWaitMethods[name]; ok {
		return why, exprString(call.Fun)
	}
	if name == "Do" {
		// Runner.Do retry loops and http.Client.Do round trips block for
		// seconds; sync.Once.Do and friends do not carry these names.
		recv := strings.ToLower(exprString(sel.X))
		if strings.Contains(recv, "runner") || strings.Contains(recv, "client") {
			return "retry/HTTP round trip", exprString(call.Fun)
		}
	}
	return "", ""
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isChannelType reports whether expr types as a channel in node's
// package (false when type info is unavailable).
func isChannelType(node *FuncNode, expr ast.Expr) bool {
	t := node.Pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// lockState is the abstract state at one program point: which lock
// expressions are held, and which of those a defer will release.
type lockState struct {
	held     map[string]token.Pos // lock key -> acquisition position
	deferred map[string]bool      // keys with a pending deferred unlock
}

func newLockState() *lockState {
	return &lockState{held: make(map[string]token.Pos), deferred: make(map[string]bool)}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// intersect keeps only locks held in both states (conservative merge).
func (s *lockState) intersect(o *lockState) {
	for k := range s.held {
		if _, ok := o.held[k]; !ok {
			delete(s.held, k)
			delete(s.deferred, k)
		}
	}
}

// heldKeys returns the held lock keys in sorted order for deterministic
// diagnostics.
func (s *lockState) heldKeys() []string {
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockTracker runs the per-function abstract interpretation.
type lockTracker struct {
	pass     *Pass
	graph    *CallGraph
	blocking map[*FuncNode]bool
	pkg      *Package
	imports  map[string]string
}

// checkFunc analyzes one function (or function literal) body with a
// fresh lock state, then recursively analyzes every nested literal the
// same way.
func (lt *lockTracker) checkFunc(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	st := newLockState()
	terminated := lt.stmts(body.List, st)
	if !terminated {
		lt.reportLeaks(st, body.End())
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lt.checkFunc(lit.Body)
			return false
		}
		return true
	})
}

// stmts interprets a statement list, mutating st. It returns true when
// the list definitely terminates the enclosing function (every path
// returns or panics), in which case leaks were already reported.
func (lt *lockTracker) stmts(list []ast.Stmt, st *lockState) bool {
	for _, stmt := range list {
		if lt.stmt(stmt, st) {
			return true
		}
	}
	return false
}

func (lt *lockTracker) stmt(stmt ast.Stmt, st *lockState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lt.lockOp(call, st) {
				return false
			}
			if isPanicCall(call) {
				return true // panic unwinds; deferred unlocks run
			}
		}
		lt.checkExpr(s.X, st)
	case *ast.DeferStmt:
		lt.recordDeferredUnlocks(s.Call, st)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			lt.checkExpr(res, st)
		}
		lt.reportLeaks(st, s.Pos())
		return true
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			lt.checkExpr(rhs, st)
		}
	case *ast.SendStmt:
		lt.reportBlocked(st, s.Pos(), "channel send")
		lt.checkExpr(s.Value, st)
	case *ast.IfStmt:
		if s.Init != nil {
			lt.stmt(s.Init, st)
		}
		lt.checkExpr(s.Cond, st)
		bodySt := st.clone()
		bodyTerm := lt.stmts(s.Body.List, bodySt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = lt.stmt(s.Else, elseSt)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			*st = *elseSt
		case elseTerm:
			*st = *bodySt
		default:
			bodySt.intersect(elseSt)
			*st = *bodySt
		}
	case *ast.BlockStmt:
		return lt.stmts(s.List, st)
	case *ast.LabeledStmt:
		return lt.stmt(s.Stmt, st)
	case *ast.ForStmt:
		if s.Init != nil {
			lt.stmt(s.Init, st)
		}
		if s.Cond != nil {
			lt.checkExpr(s.Cond, st)
		}
		// One symbolic iteration against a copy: lock changes inside the
		// body do not escape the loop (conservative).
		bodySt := st.clone()
		lt.stmts(s.Body.List, bodySt)
	case *ast.RangeStmt:
		if lt.pkg.Info != nil {
			if t := lt.pkg.Info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					lt.reportBlocked(st, s.Pos(), "range over channel")
				}
			}
		}
		bodySt := st.clone()
		lt.stmts(s.Body.List, bodySt)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			lt.reportBlocked(st, s.Pos(), "select without default")
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				clauseSt := st.clone()
				lt.stmts(cc.Body, clauseSt)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			lt.stmt(s.Init, st)
		}
		if s.Tag != nil {
			lt.checkExpr(s.Tag, st)
		}
		lt.switchClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		lt.switchClauses(s.Body, st)
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently; its body is analyzed
		// as an independent function by checkFunc's literal sweep.
	}
	return false
}

// switchClauses analyzes each case body against a copy of the entry
// state and merges the non-terminating ones by intersection.
func (lt *lockTracker) switchClauses(body *ast.BlockStmt, st *lockState) {
	var merged *lockState
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauseSt := st.clone()
		if lt.stmts(cc.Body, clauseSt) {
			continue
		}
		if merged == nil {
			merged = clauseSt
		} else {
			merged.intersect(clauseSt)
		}
	}
	if merged != nil {
		merged.intersect(st) // a missing default means fall-through with entry state
		*st = *merged
	}
}

// lockOp handles X.Lock/RLock/Unlock/RUnlock statements; returns true
// when the call was a lock operation.
func (lt *lockTracker) lockOp(call *ast.CallExpr, st *lockState) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	key := exprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		// Skip pkg-qualified look-alikes (no real ones in the module).
		if _, isPkg := lt.imports[key]; isPkg {
			return false
		}
		st.held[key] = call.Pos()
		return true
	case "Unlock", "RUnlock":
		delete(st.held, key)
		delete(st.deferred, key)
		return true
	}
	return false
}

// recordDeferredUnlocks marks locks released by `defer X.Unlock()` or by
// unlock calls inside a deferred function literal.
func (lt *lockTracker) recordDeferredUnlocks(call *ast.CallExpr, st *lockState) {
	mark := func(c *ast.CallExpr) {
		if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
				st.deferred[exprString(sel.X)] = true
			}
		}
	}
	mark(call)
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				mark(c)
			}
			return true
		})
	}
}

// checkExpr scans an expression for blocking operations (receives and
// blocking calls) evaluated at this program point. Function literals
// are skipped: they execute later.
func (lt *lockTracker) checkExpr(expr ast.Expr, st *lockState) {
	if expr == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lt.reportBlocked(st, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			lt.checkCallBlocking(n, st)
		}
		return true
	})
}

// checkCallBlocking reports a call that blocks (primitive table or
// transitively-blocking module function) while locks are held.
func (lt *lockTracker) checkCallBlocking(call *ast.CallExpr, st *lockState) {
	if why, what := classifyBlockingCall(call, lt.imports); why != "" {
		lt.reportBlocked(st, call.Pos(), what+" ("+why+")")
		return
	}
	for _, target := range lt.graph.resolveCall(lt.pkg, lt.imports, call) {
		if lt.blocking[target] {
			lt.reportBlocked(st, call.Pos(), "call to "+target.Name+", which blocks")
			return
		}
	}
}

func (lt *lockTracker) reportBlocked(st *lockState, pos token.Pos, what string) {
	for _, key := range st.heldKeys() {
		lt.pass.Reportf(pos, "%s held across blocking operation: %s; release the lock first (blocking while locked stalls every other caller)", key, what)
	}
}

// reportLeaks flags locks still held (with no deferred unlock) at a
// return point or at the end of the function body.
func (lt *lockTracker) reportLeaks(st *lockState, pos token.Pos) {
	for _, key := range st.heldKeys() {
		if st.deferred[key] {
			continue
		}
		lt.pass.Reportf(pos, "%s is still held on this return path; unlock before returning or use defer %s.Unlock()", key, key)
	}
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
