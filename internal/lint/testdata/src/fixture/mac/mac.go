// Package mac is a fixture core package carrying determinism,
// rng-discipline and panic-hygiene violations for the golden tests.
package mac

import (
	"math/rand"
	"os"
	"time"

	"fixture/sim"
)

// Jitter reads three kinds of ambient state.
func Jitter() float64 {
	_ = time.Now()
	_ = os.Getenv("SEED")
	return rand.Float64()
}

// Age uses the wall clock through time.Since.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Source builds a generator without an explicit seeded source.
func Source() any {
	return rand.New()
}

// Zero constructs sim.Rand three degenerate ways.
func Zero() *sim.Rand {
	r := sim.Rand{}
	_ = new(sim.Rand)
	var s sim.Rand
	_ = s
	return &r
}

// Seeded is the sanctioned pattern and must not be flagged.
func Seeded(seed uint64) float64 {
	rng := sim.NewRand(seed)
	return rng.Fork(7).Float64()
}

// Validate panics in plain library code.
func Validate(x int) {
	if x < 0 {
		panic("negative")
	}
}

// mustPositive is a designated panic helper and must not be flagged.
func mustPositive(x int) {
	if x <= 0 {
		panic("not positive")
	}
}
