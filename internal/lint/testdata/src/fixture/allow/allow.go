// Package allow exercises the //lint:allow directive layer: one valid
// suppression, one stale directive, one unknown check name and one
// missing reason.
package allow

// Guarded panics behind a directive; the panic-hygiene finding is
// suppressed and the directive counts as used.
func Guarded(x int) {
	if x < 0 {
		panic("impossible") //lint:allow panic-hygiene fixture invariant cannot fire
	}
}

//lint:allow map-order this directive matches nothing and is reported stale
func Stale() {}

//lint:allow nosuch bogus check name
func Unknown() {}

//lint:allow determinism-taint
func NoReason() {}
