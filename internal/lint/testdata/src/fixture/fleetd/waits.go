// Package fleetd is a fixture service package carrying
// sleep-discipline violations for the golden tests: bare time.Sleep,
// time.After and time.Tick in service code, alongside the compliant
// stoppable-ticker form.
package fleetd

import "time"

// retryLoop waits three non-compliant ways (flagged).
func retryLoop(done chan struct{}) {
	time.Sleep(100 * time.Millisecond)
	select {
	case <-time.After(time.Second):
	case <-done:
	}
	for range time.Tick(time.Second) {
		return
	}
}

// pollLoop waits the compliant way: a ticker that shutdown can stop.
func pollLoop(done chan struct{}) {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-done:
			return
		}
	}
}

// allowedWait states its exemption in line; the directive suppresses
// the finding and the golden for the directive check stays clean.
func allowedWait() {
	//lint:allow sleep-discipline startup grace period measured in wall time
	time.Sleep(time.Millisecond)
}
