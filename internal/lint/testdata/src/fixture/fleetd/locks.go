// Lock fixtures for the lock-discipline analyzer: leaks on return
// paths, blocking operations under a held mutex (direct and through a
// transitively-blocking helper), and the compliant shapes that must
// stay quiet.
package fleetd

import "sync"

// Registry mimics the daemon's mutex-guarded job table.
type Registry struct {
	mu    sync.Mutex
	ch    chan int
	items map[string]int
}

// LeakOnError returns with the mutex still held on the miss path.
func (r *Registry) LeakOnError(key string) bool {
	r.mu.Lock()
	if _, ok := r.items[key]; !ok {
		return false
	}
	r.mu.Unlock()
	return true
}

// SendWhileLocked blocks on a channel send with the mutex held.
func (r *Registry) SendWhileLocked(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ch <- v
}

// SyncWhileLocked holds the mutex across an fsync.
func (r *Registry) SyncWhileLocked(f interface{ Sync() error }) {
	r.mu.Lock()
	_ = f.Sync()
	r.mu.Unlock()
}

// WaitsViaHelper blocks transitively: drain receives from the channel,
// and the call graph propagates that back to the locked caller.
func (r *Registry) WaitsViaHelper() {
	r.mu.Lock()
	r.drain()
	r.mu.Unlock()
}

func (r *Registry) drain() {
	<-r.ch
}

// TryPublish is the compliant non-blocking fan-out: a select with a
// default case never blocks, so holding the mutex is fine.
func (r *Registry) TryPublish(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- v:
	default:
	}
}

// Balanced unlocks on every path.
func (r *Registry) Balanced(key string) bool {
	r.mu.Lock()
	_, ok := r.items[key]
	r.mu.Unlock()
	return ok
}
