// Package experiments mirrors the repo's driver-layer table writers:
// exported Run*/Fig*/Table*/Appendix* functions are fingerprint roots
// for the determinism-taint analyzer.
package experiments

import (
	"fmt"

	"fixture/examples/seeds"
)

// RunTable1 is a fingerprint root reaching seeds.DefaultSeed in another
// driver package; the wall-clock read there taints this table. The old
// per-package determinism check skipped driver paths wholesale, so it
// could not see either side of this edge.
func RunTable1() {
	seed := seeds.DefaultSeed()
	fmt.Println("table", seed)
}

// RunTable2 leaks randomized map iteration order straight into the
// emitted table.
func RunTable2(rows map[string]float64) {
	for name, v := range rows {
		fmt.Printf("%s %v\n", name, v)
	}
}

// RunTable3 is the compliant shape: sorted keys, fixed seed.
func RunTable3(rows map[string]float64, keys []string) {
	for _, k := range keys {
		fmt.Printf("%s %v\n", k, rows[k])
	}
}
