// Package seeds mimics a driver-layer helper (examples/): previously
// outside every determinism check's scope.
package seeds

import "time"

// DefaultSeed derives a seed from the wall clock. It is reachable from
// the experiments.RunTable1 fingerprint root, so determinism-taint
// flags it cross-package.
func DefaultSeed() int64 {
	return time.Now().UnixNano()
}

// UnreachableNow also reads the clock, but no fingerprint root reaches
// it, so the taint analyzer stays quiet (reachability, not presence, is
// the violation in driver code).
func UnreachableNow() int64 {
	return time.Now().UnixNano()
}
