package dsp

// BenchHelper carries an //alloc:hot annotation in a test file; the
// escape gate only compiles production packages, so this gates nothing
// and the analyzer flags it.
//
//alloc:hot test files are not gated
func BenchHelper() {}
