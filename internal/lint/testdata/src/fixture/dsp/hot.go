// Hot-path fixtures for the alloc-discipline annotation grammar.
package dsp

// Accumulate is a compliant hot kernel: annotated in its doc comment
// with a note.
//
//alloc:hot steady-state kernel; scratch is caller-provided
func Accumulate(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}

// MissingNote is annotated without saying why it must stay clean.
//
//alloc:hot
func MissingNote(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// SpawnsInHot launches a goroutine from inside a hot function, which
// allocates and schedules.
//
//alloc:hot but spawns anyway
func SpawnsInHot(done chan struct{}) {
	go func() {
		<-done
	}()
}

func floating() {
	//alloc:hot this annotation is attached to nothing
	_ = 0
}
