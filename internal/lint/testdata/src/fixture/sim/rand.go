// Package sim is the fixture's stand-in for the repository's seeded
// PRNG package: the rng-discipline analyzer recognizes the named type
// Rand in any package whose import path ends in /sim.
package sim

// Rand is a tiny deterministic PRNG used by the fixture packages.
type Rand struct{ state uint64 }

// NewRand returns a seeded generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed | 1} }

// Fork derives an independent stream for the given id.
func (r *Rand) Fork(id uint64) *Rand {
	return &Rand{state: r.state ^ (id*0x9e3779b97f4a7c15 | 1)}
}

// Float64 returns the next sample in [0, 1).
func (r *Rand) Float64() float64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / (1 << 53)
}
