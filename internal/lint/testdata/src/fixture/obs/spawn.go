// Goroutine fixtures for the goroutine-hygiene analyzer: leaked
// goroutines (no join, no seam), named launches, and the three accepted
// lifecycle shapes.
package obs

import (
	"context"
	"sync"
)

// FireAndForget leaks a goroutine: nothing joins it, nothing stops it.
func FireAndForget(work func()) {
	go func() {
		work()
	}()
}

// Worker drains a job channel.
type Worker struct{ jobs chan int }

func (w *Worker) loop() {
	for range w.jobs {
	}
}

// NamedLaunch hides the lifecycle behind a named method; the seam must
// be visible at the launch site.
func NamedLaunch(w *Worker) {
	go w.loop()
}

// Joined counts the goroutine into a WaitGroup.
func Joined(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Cancellable ties the goroutine to ctx cancellation.
func Cancellable(ctx context.Context, tick func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				tick()
			}
		}
	}()
}

// Drainer ends when the queue channel closes.
func Drainer(jobs chan int, handle func(int)) {
	go func() {
		for j := range jobs {
			handle(j)
		}
	}()
}
