// Package faults is a fixture core package exercising the map-order
// analyzer: three leaks and two order-independent aggregations.
package faults

import (
	"fmt"
	"sort"
)

// Values builds a slice in map order and never sorts it.
func Values(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// SortedKeys appends in map order but sorts before returning; the
// analyzer must stay quiet.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AnyKey returns the first key the runtime happens to yield.
func AnyKey(m map[int]int) int {
	for k := range m {
		return k
	}
	return -1
}

// Dump prints in map order.
func Dump(m map[int]int) {
	for k, v := range m {
		fmt.Printf("%d=%d\n", k, v)
	}
}

// Bucket groups values per key; the per-key append is order-independent
// and must not be flagged.
func Bucket(m map[int]int) map[int][]int {
	out := make(map[int][]int)
	for k, v := range m {
		out[k] = append(out[k], v)
	}
	return out
}

// Sum is an order-independent reduction and must not be flagged.
func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
