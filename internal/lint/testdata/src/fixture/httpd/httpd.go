// Package httpd is a fixture service package carrying panic-hygiene
// handler-registration violations for the golden tests: HTTP handlers
// registered bare (no recover wrapper between the handler and the
// serving goroutine).
package httpd

import "net/http"

// Daemon owns the route table.
type Daemon struct {
	mux *http.ServeMux
}

func handleRoot(w http.ResponseWriter, r *http.Request) {}

func (d *Daemon) status(w http.ResponseWriter, r *http.Request) {}

// wrap installs recover middleware; registrations through it comply.
func wrap(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() { _ = recover() }()
		h(w, r)
	})
}

// Routes registers handlers three bare ways (flagged) and one wrapped
// way (clean).
func (d *Daemon) Routes() {
	d.mux.HandleFunc("/bare", handleRoot)
	d.mux.HandleFunc("/lit", func(w http.ResponseWriter, r *http.Request) {})
	http.HandleFunc("/global", d.status)
	d.mux.Handle("/wrapped", wrap(handleRoot))
}
