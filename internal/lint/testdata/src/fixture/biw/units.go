// Package biw is a fixture physics package exercising the units
// analyzer: unsuffixed exported float64s, a dB-with-linear sum, and a
// set of compliant declarations that must stay quiet.
package biw

// Panel mixes compliant and non-compliant fields.
type Panel struct {
	// Threshold has no unit suffix: finding.
	Threshold float64
	// PeakVolts, DampingRatio, OffsetM, and the coordinates are all
	// compliant spellings.
	PeakVolts    float64
	DampingRatio float64
	OffsetM      float64
	X, Y, Z      float64

	raw float64 // unexported: not checked
}

// Attenuate has an unsuffixed parameter: finding.
func Attenuate(loss float64) float64 {
	return loss * 0.5
}

// Peak has an unsuffixed named result: finding.
func Peak() (amp float64) {
	return 0.05
}

// Combine adds a dB quantity to a linear one: finding on the +.
func Combine(lossDB, gainRatio float64) float64 {
	return lossDB + gainRatio
}

// CombineDB adds two dB quantities and must not be flagged.
func CombineDB(pathDB, couplingDB float64) float64 {
	return pathDB + couplingDB
}
