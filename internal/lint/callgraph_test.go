package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule loads the fixture once per test (cheap: a few files).
func fixtureModule(t *testing.T) *Module {
	t.Helper()
	mod, err := LoadModule(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestCallGraphCrossPackageEdge checks the load-bearing edge of the
// taint analyzer: experiments.RunTable1 -> seeds.DefaultSeed crosses a
// package boundary and must be resolved through the dependency-ordered
// type information.
func TestCallGraphCrossPackageEdge(t *testing.T) {
	g := fixtureModule(t).CallGraph()
	var run *FuncNode
	for _, n := range g.Nodes {
		if n.Name == "experiments.RunTable1" {
			run = n
		}
	}
	if run == nil {
		t.Fatal("experiments.RunTable1 not in the call graph")
	}
	for _, callee := range run.Callees {
		if callee.Name == "seeds.DefaultSeed" {
			return
		}
	}
	t.Fatalf("RunTable1 callees %v missing cross-package edge to seeds.DefaultSeed", nodeNames(run.Callees))
}

// TestCallGraphMethodEdge checks same-package method resolution
// (Registry.WaitsViaHelper -> Registry.drain), which lock-discipline's
// transitive-blocking propagation rides on.
func TestCallGraphMethodEdge(t *testing.T) {
	g := fixtureModule(t).CallGraph()
	for _, n := range g.Nodes {
		if n.Name != "fleetd.Registry.WaitsViaHelper" {
			continue
		}
		for _, callee := range n.Callees {
			if callee.Name == "fleetd.Registry.drain" {
				return
			}
		}
		t.Fatalf("WaitsViaHelper callees %v missing method edge to drain", nodeNames(n.Callees))
	}
	t.Fatal("fleetd.Registry.WaitsViaHelper not in the call graph")
}

// TestReachableFromPath checks BFS predecessor bookkeeping: the path
// from a root to a reached node reconstructs in call order.
func TestReachableFromPath(t *testing.T) {
	g := fixtureModule(t).CallGraph()
	pred := g.ReachableFrom(fingerprintRoots(g))
	for _, n := range g.Nodes {
		if n.Name != "seeds.DefaultSeed" {
			continue
		}
		if _, ok := pred[n]; !ok {
			t.Fatal("seeds.DefaultSeed not reached from the fingerprint roots")
		}
		path := PathTo(pred, n)
		want := "experiments.RunTable1 -> seeds.DefaultSeed"
		if got := strings.Join(path, " -> "); got != want {
			t.Errorf("path = %q, want %q", got, want)
		}
		return
	}
	t.Fatal("seeds.DefaultSeed not in the call graph")
}

// TestReachabilityExcludesUnreachable pins the negative: a source with
// no inbound path from a root stays untainted.
func TestReachabilityExcludesUnreachable(t *testing.T) {
	g := fixtureModule(t).CallGraph()
	pred := g.ReachableFrom(fingerprintRoots(g))
	for _, n := range g.Nodes {
		if n.Name == "seeds.UnreachableNow" {
			if _, ok := pred[n]; ok {
				t.Error("seeds.UnreachableNow is reached, but nothing calls it")
			}
			return
		}
	}
	t.Fatal("seeds.UnreachableNow not in the call graph")
}

// TestDependencyOrder checks the loader's topological ordering:
// examples/seeds must be type-checked before experiments, which
// imports it.
func TestDependencyOrder(t *testing.T) {
	mod := fixtureModule(t)
	order := mod.dependencyOrder()
	pos := make(map[string]int)
	for i, pkg := range order {
		pos[pkg.Path] = i
	}
	if len(pos) != len(mod.Pkgs) {
		t.Fatalf("dependency order covers %d packages, module has %d", len(pos), len(mod.Pkgs))
	}
	if pos["fixture/examples/seeds"] > pos["fixture/experiments"] {
		t.Errorf("importee fixture/examples/seeds ordered after its importer fixture/experiments")
	}
}

func nodeNames(nodes []*FuncNode) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}
