package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoroutineHygiene requires every goroutine launched in
// production code to be either joined or cancellable. A `go` statement
// passes when its function literal body shows one of the accepted
// lifecycle seams:
//
//   - a join: `defer wg.Done()` (WaitGroup / errgroup-style counting);
//   - a cancellation seam: a channel receive — `<-ctx.Done()`, a done
//     channel, a select over either — so closing the channel or
//     cancelling the context terminates the goroutine;
//   - a drain seam: `for x := range ch` over a channel, so closing the
//     queue ends the loop.
//
// A `go` statement with none of these is a leak: nothing can wait for
// it and nothing can stop it, so shutdown becomes racy (the fleetd
// drain path and -race chaos runs depend on goroutine counts reaching
// zero). Launching a named function is flagged too — the lifecycle
// contract should be visible at the launch site. Intentional
// fire-and-forget sites state their case with
// //lint:allow goroutine-hygiene <why>.
//
// Scope: every production (non-test) file except the examples/ tree;
// tests may spawn freely, the test binary's exit reaps them.
var AnalyzerGoroutineHygiene = &Analyzer{
	Name: "goroutine-hygiene",
	Doc:  "every production go statement must be joined (defer wg.Done) or tied to a cancellation/drain seam, or carry //lint:allow",
	Run:  runGoroutineHygiene,
}

func runGoroutineHygiene(p *Pass) {
	if hasPathSegment(p.Pkg.Path, "examples") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				p.Reportf(gs.Pos(), "go statement launches a named function; the lifecycle seam (join or cancellation) must be visible at the launch site — wrap it in a managed literal or annotate //lint:allow goroutine-hygiene")
				return true
			}
			if !hasLifecycleSeam(p, lit.Body) {
				p.Reportf(gs.Pos(), "goroutine is neither joined (defer wg.Done) nor tied to a cancellation/drain seam (ctx.Done, done channel, range over a closable channel); shutdown cannot account for it — add a seam or //lint:allow goroutine-hygiene")
			}
			return true
		})
	}
}

// hasLifecycleSeam scans one goroutine body (excluding nested function
// literals, which belong to other goroutines or deferred calls) for a
// join or cancellation seam.
func hasLifecycleSeam(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			// defer wg.Done() — a WaitGroup join.
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
			return false
		case *ast.UnaryExpr:
			// Any channel receive is a seam: the launcher can unblock the
			// goroutine by sending or closing (covers <-ctx.Done()).
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// Draining a closable channel: close(queue) ends the loop.
			if p.Pkg.Info != nil {
				if t := p.Pkg.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
