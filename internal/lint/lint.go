// Package lint is a stdlib-only static-analysis framework for the
// arachnet reproduction. It enforces the domain invariants the Go
// compiler cannot see: simulation code must be a pure function of
// (spec, seed), map iteration order must not leak into outputs,
// physical quantities must carry their units in their names, and
// library code must not panic outside designated helpers.
//
// The framework is deliberately small: a Module loader built on
// go/parser + go/types (tolerant of unresolved standard-library
// imports, which are stubbed), an Analyzer interface, and a directive
// layer that lets call sites suppress a finding with an explicit
// reason:
//
//	//lint:allow <check> <reason>
//
// A directive suppresses findings of the named check on its own line or
// the line immediately below. A directive that suppresses nothing is
// itself reported (stale allows rot), as are unknown check names and
// missing reasons.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in module-relative coordinates.
type Diagnostic struct {
	File    string // path relative to the module root
	Line    int
	Col     int
	Check   string
	Message string
}

// String renders the canonical "file:line:col: [check] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named invariant check. Exactly one of Run and
// RunModule is set: Run is invoked once per package (the v1 shape),
// RunModule once per module with Pass.Pkg == nil (the v2 shape — these
// analyzers see the whole call graph and cross-package types).
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*Pass)
}

// Pass carries one (analyzer, package) unit of work. For module-level
// analyzers Pkg is nil and the pass spans every package in Mod.
type Pass struct {
	Mod   *Module
	Pkg   *Package
	check string
	emit  func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	p.emit(Diagnostic{
		File:    p.Mod.relPath(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the registered analyzer suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminismTaint,
		AnalyzerRNGDiscipline,
		AnalyzerMapOrder,
		AnalyzerUnits,
		AnalyzerPanicHygiene,
		AnalyzerSleepDiscipline,
		AnalyzerLockDiscipline,
		AnalyzerGoroutineHygiene,
		AnalyzerAllocDiscipline,
	}
}

// analyzerNames returns the set of valid check names (used to validate
// //lint:allow directives).
func analyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// corePackages are the simulation-core package names (final import-path
// segment): code here must be a pure function of its inputs and the
// experiment seed. Wall-clock time, the process environment and global
// PRNG state are forbidden.
var corePackages = map[string]bool{
	"biw": true, "pzt": true, "energy": true, "mcu": true, "mac": true,
	"phy": true, "dsp": true, "tag": true, "reader": true, "sim": true,
	"faults": true, "strain": true, "core": true, "wire": true,
}

// physicsPackages carry dimensioned physical quantities (dB, volts,
// hertz, ...) and are subject to the units analyzer.
var physicsPackages = map[string]bool{
	"biw": true, "pzt": true, "energy": true, "strain": true,
}

// driverSegments name presentation/driver layers that sit outside the
// deterministic simulation core; the determinism, rng-discipline,
// map-order and panic-hygiene analyzers skip them.
var driverSegments = map[string]bool{
	"cmd": true, "examples": true, "experiments": true,
}

// lastSegment returns the final segment of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isDriverPath reports whether any segment of the import path names a
// driver/presentation layer.
func isDriverPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if driverSegments[seg] {
			return true
		}
	}
	return false
}

// isCorePackage reports whether the package is part of the simulation
// core (classified by its final import-path segment).
func isCorePackage(path string) bool { return corePackages[lastSegment(path)] }

// isPhysicsPackage reports whether the package carries dimensioned
// physical quantities.
func isPhysicsPackage(path string) bool { return physicsPackages[lastSegment(path)] }

// importTable maps the local name of each import in f to its path.
// Unnamed imports default to the path's final segment, which is correct
// for the standard library and for this module's packages.
func importTable(f *ast.File) map[string]string {
	t := make(map[string]string)
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := lastSegment(path)
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		t[name] = path
	}
	return t
}

// sortDiagnostics orders findings by file, line, column, then check.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
