package lint

import (
	"go/ast"
	"strings"
)

// bareWaitFuncs are the time-package waits that cannot be cancelled or
// faked: Sleep blocks the goroutine unconditionally, and After/Tick
// leak their timer when the select takes another branch. In service
// code every wait must either go through the resilience clock seam
// (so chaos tests and retry schedules run on a fake clock) or use
// time.NewTicker/time.NewTimer, whose Stop makes shutdown deterministic.
var bareWaitFuncs = map[string]string{
	"Sleep": "blocks the goroutine with no cancellation and no clock seam",
	"After": "leaks its timer when the select takes another branch",
	"Tick":  "leaks its ticker forever",
}

// AnalyzerSleepDiscipline bans bare time.Sleep/time.After/time.Tick in
// the fleetd service layer (daemon, API client, and their CLIs).
// time.NewTicker and time.NewTimer stay allowed — they are stoppable —
// and retry/backoff waits belong on resilience.Clock.Sleep, which
// honors context cancellation and fakes cleanly in tests. Test files
// are exempt: polling loops in tests are fine.
var AnalyzerSleepDiscipline = &Analyzer{
	Name: "sleep-discipline",
	Doc:  "forbid bare time.Sleep/time.After/time.Tick in fleetd service code; wait via resilience.Clock or a stoppable ticker",
	Run:  runSleepDiscipline,
}

// isFleetdPath reports whether the import path belongs to the fleetd
// service layer: the daemon package tree plus its command wrappers.
func isFleetdPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "fleetd" || seg == "arachnet-fleetd" || seg == "arachnet-fleet" {
			return true
		}
	}
	return false
}

func runSleepDiscipline(p *Pass) {
	if !isFleetdPath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files { // production files only; tests may poll
		imports := importTable(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, name, ok := qualified(sel, imports)
			if !ok || imports[id] != "time" {
				return true
			}
			if why, bad := bareWaitFuncs[name]; bad {
				p.Reportf(sel.Pos(), "%s.%s %s; wait via resilience.Clock.Sleep (cancellable, fakeable) or a stopped time.NewTicker/NewTimer",
					id, name, why)
			}
			return true
		})
	}
}
