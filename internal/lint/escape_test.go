package lint

import (
	"reflect"
	"testing"
)

var escapeManifest = []AllocHotFunc{
	{Pkg: "repro/internal/dsp", File: "internal/dsp/filter.go", Func: "FIR.ProcessBlock", StartLine: 120, EndLine: 148},
	{Pkg: "repro/internal/dsp", File: "internal/dsp/osc.go", Func: "QuadOsc.Block", StartLine: 60, EndLine: 90},
}

// TestParseEscapeDiagnostics maps canned -gcflags=-m output into gate
// entries: only escape diagnostics inside annotated line ranges count,
// and entries are line-number-free so unrelated edits don't churn the
// baseline.
func TestParseEscapeDiagnostics(t *testing.T) {
	output := `# repro/internal/dsp
internal/dsp/filter.go:125:13: make([]float64, n) escapes to heap:
internal/dsp/filter.go:125:13:   flow: dst = &{storage for make([]float64, n)}:
internal/dsp/filter.go:200:6: make([]float64, n) escapes to heap
internal/dsp/filter.go:130:9: inlining call to dot
internal/dsp/osc.go:65:2: moved to heap: anchor
internal/dsp/osc.go:61:7: leaking param: o
internal/dsp/other.go:10:2: x escapes to heap
not a diagnostic line
`
	got := ParseEscapeDiagnostics(output, escapeManifest)
	want := []string{
		"internal/dsp/filter.go:FIR.ProcessBlock: make([]float64, n) escapes to heap",
		"internal/dsp/osc.go:QuadOsc.Block: moved to heap: anchor",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("entries = %q, want %q", got, want)
	}
}

// TestParseEscapeDiagnosticsRelativePaths accepts package-relative
// compiler paths ("filter.go:125") by suffix match.
func TestParseEscapeDiagnosticsRelativePaths(t *testing.T) {
	got := ParseEscapeDiagnostics("./filter.go:125:13: v escapes to heap\n", escapeManifest)
	want := []string{"internal/dsp/filter.go:FIR.ProcessBlock: v escapes to heap"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("entries = %q, want %q", got, want)
	}
}

func TestDiffEscapeBaseline(t *testing.T) {
	current := []string{"a.go:F: x escapes to heap", "b.go:G: y escapes to heap"}
	baseline := []string{"a.go:F: x escapes to heap", "c.go:H: gone escapes to heap"}
	added, removed := DiffEscapeBaseline(current, baseline)
	if !reflect.DeepEqual(added, []string{"b.go:G: y escapes to heap"}) {
		t.Errorf("added = %q", added)
	}
	if !reflect.DeepEqual(removed, []string{"c.go:H: gone escapes to heap"}) {
		t.Errorf("removed = %q", removed)
	}
}

func TestParseBaseline(t *testing.T) {
	got := ParseBaseline("# comment\n\nb.go:G: y escapes to heap\na.go:F: x escapes to heap\n")
	want := []string{"a.go:F: x escapes to heap", "b.go:G: y escapes to heap"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("entries = %q, want %q", got, want)
	}
}

// TestAllocManifestFixture checks annotation harvesting end to end on
// the fixture module.
func TestAllocManifestFixture(t *testing.T) {
	manifest := AllocManifest(fixtureModule(t))
	byFunc := make(map[string]AllocHotFunc)
	for _, fn := range manifest {
		byFunc[fn.Func] = fn
	}
	acc, ok := byFunc["Accumulate"]
	if !ok {
		t.Fatalf("Accumulate missing from manifest: %+v", manifest)
	}
	if acc.File != "dsp/hot.go" || acc.Note == "" || acc.StartLine >= acc.EndLine {
		t.Errorf("bad manifest entry: %+v", acc)
	}
	if _, ok := byFunc["BenchHelper"]; ok {
		t.Error("test-file annotation harvested into the manifest")
	}
	if _, ok := byFunc["floating"]; ok {
		t.Error("floating annotation harvested into the manifest")
	}
}
