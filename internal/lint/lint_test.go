package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// fixtureChecks lists every check exercised by the fixture module; each
// must produce at least one finding (a true positive) and match its
// golden file.
var fixtureChecks = []string{
	"determinism-taint", "rng-discipline", "map-order", "units",
	"panic-hygiene", "sleep-discipline", "lock-discipline",
	"goroutine-hygiene", "alloc-discipline", DirectiveCheck,
}

// loadFixture runs the full analyzer suite over the fixture module.
func loadFixture(t *testing.T) []Diagnostic {
	t.Helper()
	diags, err := Run(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatalf("Run(fixture): %v", err)
	}
	return diags
}

// TestFixtureGolden pins the complete diagnostic output per check
// against golden files. Regenerate with `go test -run Golden -update`.
func TestFixtureGolden(t *testing.T) {
	byCheck := make(map[string][]string)
	for _, d := range loadFixture(t) {
		byCheck[d.Check] = append(byCheck[d.Check], d.String())
	}
	for check := range byCheck {
		found := false
		for _, want := range fixtureChecks {
			if check == want {
				found = true
			}
		}
		if !found {
			t.Errorf("fixture produced findings for unlisted check %q", check)
		}
	}
	for _, check := range fixtureChecks {
		t.Run(check, func(t *testing.T) {
			got := strings.Join(byCheck[check], "\n") + "\n"
			path := filepath.Join("testdata", "golden", check+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
			if len(byCheck[check]) == 0 {
				t.Errorf("check %s produced no findings: the fixture must contain a true positive", check)
			}
		})
	}
}

// TestFixtureNegatives spot-checks that the compliant fixture
// declarations stay quiet: a finding pointing at any of these lines
// means a false positive crept in.
func TestFixtureNegatives(t *testing.T) {
	clean := map[string]bool{
		"faults/order.go:24":         true, // append followed by sort.Strings
		"faults/order.go:50":         true, // per-key bucket append
		"faults/order.go:59":         true, // order-independent sum
		"mac/mac.go:41":              true, // sim.NewRand(seed)
		"mac/mac.go:54":              true, // panic inside must* helper
		"biw/units.go:38":            true, // dB + dB arithmetic
		"httpd/httpd.go:20":          true, // http.HandlerFunc conversion, not a registration
		"httpd/httpd.go:32":          true, // handler passed through wrap()
		"examples/seeds/seeds.go:18": true, // time.Now unreachable from any fingerprint root
		"experiments/tables.go:31":   true, // sorted-keys iteration in a root
		"fleetd/locks.go:57":         true, // select with default under the lock is non-blocking
		"fleetd/locks.go:66":         true, // straight-line lock/unlock
		"obs/spawn.go:35":            true, // goroutine joined via defer wg.Done
		"obs/spawn.go:43":            true, // goroutine tied to ctx.Done
		"obs/spawn.go:56":            true, // goroutine drains a closable channel
		"dsp/hot.go:8":               true, // well-formed //alloc:hot with a note
	}
	for _, d := range loadFixture(t) {
		if clean[fmt.Sprintf("%s:%d", d.File, d.Line)] {
			t.Errorf("false positive on compliant line: %s", d)
		}
	}
}

func TestParseDirective(t *testing.T) {
	known := map[string]bool{"determinism": true, "map-order": true}
	// "determinism" stays a *syntactically* known name in this table to
	// keep the parser cases focused; validity against the live registry
	// is covered by the fixture goldens.
	tests := []struct {
		name   string
		text   string
		ok     bool
		check  string
		reason string
		errSub string
	}{
		{name: "valid", text: "//lint:allow determinism wall-clock benchmark", ok: true, check: "determinism", reason: "wall-clock benchmark"},
		{name: "valid multiword reason", text: "//lint:allow map-order keys sorted upstream", ok: true, check: "map-order", reason: "keys sorted upstream"},
		{name: "unknown check", text: "//lint:allow nosuch some reason", ok: true, check: "nosuch", errSub: `unknown check "nosuch"`},
		{name: "missing reason", text: "//lint:allow determinism", ok: true, check: "determinism", errSub: "missing reason"},
		{name: "missing everything", text: "//lint:allow", ok: true, errSub: "missing check name and reason"},
		{name: "look-alike prefix", text: "//lint:allowed determinism reason", ok: false},
		{name: "ordinary comment", text: "// this is not a directive", ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, ok := parseDirective(tt.text, known)
			if ok != tt.ok {
				t.Fatalf("ok = %v, want %v", ok, tt.ok)
			}
			if !ok {
				return
			}
			if d.Check != tt.check {
				t.Errorf("check = %q, want %q", d.Check, tt.check)
			}
			if tt.errSub == "" {
				if d.Err != "" {
					t.Errorf("unexpected error %q", d.Err)
				}
				if d.Reason != tt.reason {
					t.Errorf("reason = %q, want %q", d.Reason, tt.reason)
				}
			} else if !strings.Contains(d.Err, tt.errSub) {
				t.Errorf("error %q does not contain %q", d.Err, tt.errSub)
			}
		})
	}
}

func TestApplyDirectives(t *testing.T) {
	diag := func(file string, line int, check string) Diagnostic {
		return Diagnostic{File: file, Line: line, Col: 1, Check: check, Message: "m"}
	}
	t.Run("suppresses same line and next line", func(t *testing.T) {
		diags := []Diagnostic{diag("a.go", 10, "determinism"), diag("a.go", 11, "determinism")}
		dirs := []*Directive{{File: "a.go", Line: 10, Check: "determinism", Reason: "r"}}
		got := applyDirectives(diags, dirs)
		if len(got) != 0 {
			t.Fatalf("want all suppressed, got %v", got)
		}
	})
	t.Run("wrong check does not suppress", func(t *testing.T) {
		diags := []Diagnostic{diag("a.go", 10, "determinism")}
		dirs := []*Directive{{File: "a.go", Line: 10, Check: "map-order", Reason: "r"}}
		got := applyDirectives(diags, dirs)
		// The finding survives and the directive is reported stale.
		if len(got) != 2 {
			t.Fatalf("want finding + stale report, got %v", got)
		}
		if got[1].Check != DirectiveCheck || !strings.Contains(got[1].Message, "stale") {
			t.Errorf("want stale directive report, got %v", got[1])
		}
	})
	t.Run("stale allow is a finding", func(t *testing.T) {
		dirs := []*Directive{{File: "b.go", Line: 3, Check: "determinism", Reason: "r"}}
		got := applyDirectives(nil, dirs)
		if len(got) != 1 || got[0].Check != DirectiveCheck || !strings.Contains(got[0].Message, "stale") {
			t.Fatalf("want one stale finding, got %v", got)
		}
	})
	t.Run("malformed allow is a finding and never suppresses", func(t *testing.T) {
		diags := []Diagnostic{diag("c.go", 5, "determinism")}
		dirs := []*Directive{{File: "c.go", Line: 5, Check: "determinism", Err: "missing reason"}}
		got := applyDirectives(diags, dirs)
		if len(got) != 2 {
			t.Fatalf("want surviving finding + malformed report, got %v", got)
		}
		if got[1].Check != DirectiveCheck || !strings.Contains(got[1].Message, "malformed") {
			t.Errorf("want malformed directive report, got %v", got[1])
		}
	})
}

// TestModuleIsClean runs the analyzer suite over the real repository:
// the shipped tree must have zero findings, so `go test` enforces the
// same bar as `make lint`.
func TestModuleIsClean(t *testing.T) {
	diags, err := Run(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Run(repo root): %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("repository tree has %d lint finding(s); fix them or add //lint:allow with a reason", len(diags))
	}
}

// TestAnalyzerDocs keeps the registry well-formed: unique names and
// non-empty docs (the -list flag of cmd/arachnet-lint prints them).
func TestAnalyzerDocs(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name == DirectiveCheck {
			t.Errorf("analyzer name %q collides with the directive pseudo-check", a.Name)
		}
	}
}

// TestCrossPackageTaintMiss pins the headline v2 capability: the
// wall-clock read in examples/seeds is only a violation because the
// experiments.RunTable1 fingerprint root reaches it through the module
// call graph — across a package boundary, in a driver package. The old
// per-package determinism check returned early on every driver path
// (cmd/, examples/, experiments/), so it provably could not report
// either side of this edge; determinism-taint must.
func TestCrossPackageTaintMiss(t *testing.T) {
	const taintedFile = "examples/seeds/seeds.go"
	// The old check's scope gate: driver paths were skipped wholesale.
	if !isDriverPath("fixture/examples/seeds") || !isDriverPath("fixture/experiments") {
		t.Fatal("fixture packages are not driver paths; the old-check-misses premise is broken")
	}
	var hit *Diagnostic
	for _, d := range loadFixture(t) {
		if d.Check == "determinism-taint" && d.File == taintedFile {
			dd := d
			hit = &dd
			break
		}
	}
	if hit == nil {
		t.Fatalf("determinism-taint produced no finding in %s; the cross-package taint was missed", taintedFile)
	}
	if !strings.Contains(hit.Message, "experiments.RunTable1") || !strings.Contains(hit.Message, "seeds.DefaultSeed") {
		t.Errorf("finding does not carry the root->source call path: %s", hit.Message)
	}
}
