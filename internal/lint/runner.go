package lint

// Run loads the module rooted at root (the directory containing
// go.mod), applies every registered analyzer to every package, filters
// the findings through the //lint:allow directive layer and returns the
// surviving diagnostics in a stable order. An empty slice means the
// tree is clean.
func Run(root string) ([]Diagnostic, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return RunModule(mod), nil
}

// RunModule runs the analyzer suite over an already loaded module.
func RunModule(mod *Module) []Diagnostic {
	var diags []Diagnostic
	emit := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range mod.Pkgs {
		for _, a := range Analyzers() {
			a.Run(&Pass{Mod: mod, Pkg: pkg, check: a.Name, emit: emit})
		}
	}
	diags = applyDirectives(diags, collectDirectives(mod, analyzerNames()))
	sortDiagnostics(diags)
	return diags
}
