package lint

// Run loads the module rooted at root (the directory containing
// go.mod), applies every registered analyzer to every package, filters
// the findings through the //lint:allow directive layer and returns the
// surviving diagnostics in a stable order. An empty slice means the
// tree is clean.
func Run(root string) ([]Diagnostic, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return RunModule(mod), nil
}

// RunModule runs the analyzer suite over an already loaded module.
// Per-package analyzers run for every package; module-level analyzers
// (those with RunModule set) run once against the whole module so they
// can consult the call graph.
func RunModule(mod *Module) []Diagnostic {
	var diags []Diagnostic
	emit := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range mod.Pkgs {
		for _, a := range Analyzers() {
			if a.Run != nil {
				a.Run(&Pass{Mod: mod, Pkg: pkg, check: a.Name, emit: emit})
			}
		}
	}
	for _, a := range Analyzers() {
		if a.RunModule != nil {
			a.RunModule(&Pass{Mod: mod, check: a.Name, emit: emit})
		}
	}
	diags = applyDirectives(diags, collectDirectives(mod, analyzerNames()))
	sortDiagnostics(diags)
	return diags
}
