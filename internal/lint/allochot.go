package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// allocHotPrefix marks a function whose steady state must not allocate.
const allocHotPrefix = "//alloc:hot"

// AnalyzerAllocDiscipline validates the //alloc:hot annotation layer
// that feeds the static escape-analysis gate (`make lint-alloc`):
//
//	//alloc:hot <why this function must stay allocation-free>
//
// The annotation goes in the doc comment of a production function whose
// steady state must not allocate (the PR 5/7 zero-alloc kernels: DSP
// block kernels, pooled slot-sim acquire/release, inline fleet jobs).
// The gate parses `go build -gcflags=-m` escape diagnostics and fails
// when a new heap escape appears inside an annotated function's line
// range, so the compiler — not a benchmark that happens to run — holds
// the zero-alloc line.
//
// The analyzer enforces the grammar statically: an annotation must sit
// in a function's doc comment (floating annotations silently gate
// nothing), must carry a note, and must not appear in _test.go files
// (the gate only compiles production packages). It also flags `go`
// statements inside annotated functions: spawning a goroutine allocates
// and schedules, which contradicts the hot-path contract.
var AnalyzerAllocDiscipline = &Analyzer{
	Name: "alloc-discipline",
	Doc:  "validate //alloc:hot annotations (doc-comment placement, note required, no test files, no go statements in hot functions)",
	Run:  runAllocDiscipline,
}

// allocHotNote extracts the note of an //alloc:hot comment line; ok is
// false when the comment is not an alloc:hot annotation at all.
func allocHotNote(text string) (note string, ok bool) {
	if !strings.HasPrefix(text, allocHotPrefix) {
		return "", false
	}
	rest := text[len(allocHotPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // look-alike such as //alloc:hotter
	}
	return strings.TrimSpace(rest), true
}

// docFuncs maps each doc comment group in f to its function declaration.
func docFuncs(f *ast.File) map[*ast.CommentGroup]*ast.FuncDecl {
	m := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			m[fd.Doc] = fd
		}
	}
	return m
}

func runAllocDiscipline(p *Pass) {
	for _, f := range p.Pkg.Files {
		byDoc := docFuncs(f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				note, ok := allocHotNote(c.Text)
				if !ok {
					continue
				}
				fd := byDoc[cg]
				switch {
				case fd == nil:
					p.Reportf(c.Pos(), "floating //alloc:hot: the annotation must be part of a function's doc comment, otherwise the escape gate covers nothing")
				case note == "":
					p.Reportf(c.Pos(), "//alloc:hot on %s is missing its note (write //alloc:hot <why this function must stay allocation-free>)", fd.Name.Name)
				}
			}
		}
		// No go statements inside annotated hot functions.
		for doc, fd := range byDoc {
			if !docHasAllocHot(doc) || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					p.Reportf(gs.Pos(), "go statement inside //alloc:hot function %s: spawning a goroutine allocates; move the concurrency out of the hot path", fd.Name.Name)
				}
				return true
			})
		}
	}
	for _, f := range p.Pkg.TestFiles {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, ok := allocHotNote(c.Text); ok {
					p.Reportf(c.Pos(), "//alloc:hot in a test file: the escape gate compiles production packages only, so this annotation gates nothing")
				}
			}
		}
	}
}

func docHasAllocHot(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if _, ok := allocHotNote(c.Text); ok {
			return true
		}
	}
	return false
}

// AllocHotFunc is one annotated function, exported for the escape gate.
type AllocHotFunc struct {
	Pkg       string // import path
	File      string // module-relative path
	Func      string // "Func" or "Recv.Method"
	StartLine int
	EndLine   int
	Note      string
}

// AllocManifest collects every //alloc:hot annotated production
// function in the module, sorted by file then start line. The escape
// gate maps compiler escape diagnostics into these line ranges.
func AllocManifest(m *Module) []AllocHotFunc {
	var out []AllocHotFunc
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for doc, fd := range docFuncs(f) {
				note := ""
				tagged := false
				for _, c := range doc.List {
					if n, ok := allocHotNote(c.Text); ok {
						tagged, note = true, n
					}
				}
				if !tagged {
					continue
				}
				start := m.Fset.Position(fd.Pos())
				end := m.Fset.Position(fd.End())
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					name = recvTypeName(fd.Recv.List[0].Type) + "." + name
				}
				out = append(out, AllocHotFunc{
					Pkg:       pkg.Path,
					File:      m.relPath(start.Filename),
					Func:      name,
					StartLine: start.Line,
					EndLine:   end.Line,
					Note:      note,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out
}
