package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
)

// Module-wide call graph. The v2 analyzers (determinism-taint,
// lock-discipline) reason about what a function *transitively* does —
// a time.Now three calls deep behind a helper in another package, an
// fsync at the bottom of CheckpointStore.Write — which a per-package
// AST walk cannot see. The graph is built once per Module, lazily, and
// shared by every analyzer in the run.
//
// Soundness caveats (documented in DESIGN.md §10): edges exist for
// static intra-module calls (local functions, pkg.Func across module
// packages, and methods on module types resolved through go/types
// selections). Calls through interface methods declared in the module
// are conservatively linked to every module type that implements the
// interface. Function *values* (callbacks stored in fields, closures
// passed as arguments) and standard-library internals are not
// traversed — std behavior is captured by the analyzers' primitive
// tables instead.

// FuncNode is one function or method declaration in the module.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	File *ast.File
	// Name is the display name: "pkg.Func" or "pkg.Recv.Method" with
	// pkg the final import-path segment.
	Name string
	// Callees are the resolved static call targets, deduplicated, in
	// first-call source order (deterministic traversal order).
	Callees []*FuncNode
	// InTest marks declarations in _test.go files; the graph includes
	// them as callers of production code but analyzers generally skip
	// findings inside them.
	InTest bool
}

// CallGraph indexes every function declaration in the module.
type CallGraph struct {
	mod *Module
	// Nodes in deterministic order (package path, then position).
	Nodes  []*FuncNode
	byObj  map[types.Object]*FuncNode
	byDecl map[*ast.FuncDecl]*FuncNode
}

// CallGraph builds (once) and returns the module's call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.callgraph == nil {
		m.callgraph = buildCallGraph(m)
	}
	return m.callgraph
}

// NodeOf returns the graph node for a declaration (nil if the decl is
// not part of the module, e.g. a synthetic one).
func (g *CallGraph) NodeOf(decl *ast.FuncDecl) *FuncNode { return g.byDecl[decl] }

func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		mod:    m,
		byObj:  make(map[types.Object]*FuncNode),
		byDecl: make(map[*ast.FuncDecl]*FuncNode),
	}
	// Pass 1: one node per function declaration (production files; test
	// files are included but marked, so analyzers can skip them).
	for _, pkg := range m.Pkgs {
		addDecls := func(files []*ast.File, inTest bool) {
			for _, f := range files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					node := &FuncNode{
						Pkg:    pkg,
						Decl:   fd,
						File:   f,
						Name:   funcDisplayName(pkg, fd),
						InTest: inTest,
					}
					g.Nodes = append(g.Nodes, node)
					g.byDecl[fd] = node
					if pkg.Info != nil {
						if obj := pkg.Info.Defs[fd.Name]; obj != nil {
							g.byObj[obj] = node
						}
					}
				}
			}
		}
		addDecls(pkg.Files, false)
		addDecls(pkg.TestFiles, true)
	}
	sort.SliceStable(g.Nodes, func(i, j int) bool {
		a, b := g.Nodes[i], g.Nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	// Pass 2: edges.
	for _, node := range g.Nodes {
		g.resolveCallees(node)
	}
	return g
}

// funcDisplayName renders "pkg.Func" or "pkg.Recv.Method".
func funcDisplayName(pkg *Package, fd *ast.FuncDecl) string {
	name := lastSegment(pkg.Path) + "."
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		name += recvTypeName(fd.Recv.List[0].Type) + "."
	}
	return name + fd.Name.Name
}

// recvTypeName extracts the receiver's base type name.
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// resolveCallees walks node's body and records every statically
// resolvable intra-module call target.
func (g *CallGraph) resolveCallees(node *FuncNode) {
	imports := importTable(node.File)
	seen := make(map[*FuncNode]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, target := range g.resolveCall(node.Pkg, imports, call) {
			if target != node && !seen[target] {
				seen[target] = true
				node.Callees = append(node.Callees, target)
			}
		}
		return true
	})
}

// resolveCall returns the module function(s) a single call expression
// can statically dispatch to, as seen from pkg with the given file
// import table. Non-module calls (standard library, function values)
// resolve to nil. Interface-method calls resolve conservatively to
// every module implementation.
func (g *CallGraph) resolveCall(pkg *Package, imports map[string]string, call *ast.CallExpr) []*FuncNode {
	info := pkg.Info
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// Local (same-package) function call.
		if info != nil {
			if target, ok := g.byObj[info.Uses[fun]]; ok {
				return []*FuncNode{target}
			}
		}
	case *ast.SelectorExpr:
		// pkg.Func across module packages.
		if id, ok := fun.X.(*ast.Ident); ok {
			if path, imported := imports[id.Name]; imported {
				if dep := g.mod.byPath[path]; dep != nil && dep.Types != nil {
					if obj := dep.Types.Scope().Lookup(fun.Sel.Name); obj != nil {
						if target, ok := g.byObj[obj]; ok {
							return []*FuncNode{target}
						}
					}
					return nil
				}
			}
		}
		// Method call on a module type (or module interface).
		if info == nil {
			return nil
		}
		selInfo, ok := info.Selections[fun]
		if !ok {
			return nil
		}
		obj, ok := selInfo.Obj().(*types.Func)
		if !ok {
			return nil
		}
		if target, ok := g.byObj[obj]; ok {
			return []*FuncNode{target}
		}
		// Interface method: link conservatively to every module
		// implementation of the interface.
		if iface, ok := selInfo.Recv().Underlying().(*types.Interface); ok {
			return g.implementations(iface, fun.Sel.Name)
		}
	}
	return nil
}

// implementations finds the method named name on every module type
// that implements iface.
func (g *CallGraph) implementations(iface *types.Interface, name string) []*FuncNode {
	var out []*FuncNode
	for _, pkg := range g.mod.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, tname := range scope.Names() {
			tn, ok := scope.Lookup(tname).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				meth := named.Method(i)
				if meth.Name() != name {
					continue
				}
				if target, ok := g.byObj[meth]; ok {
					out = append(out, target)
				}
			}
		}
	}
	return out
}

// ReachableFrom runs a deterministic BFS from the given roots and
// returns, for every reached node, its BFS predecessor (roots map to
// nil), so analyzers can reconstruct a shortest call path.
func (g *CallGraph) ReachableFrom(roots []*FuncNode) map[*FuncNode]*FuncNode {
	pred := make(map[*FuncNode]*FuncNode, len(roots))
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := pred[r]; !ok {
			pred[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range cur.Callees {
			if _, ok := pred[callee]; !ok {
				pred[callee] = cur
				queue = append(queue, callee)
			}
		}
	}
	return pred
}

// PathTo reconstructs the root → ... → node call chain from a
// ReachableFrom predecessor map, rendered as display names.
func PathTo(pred map[*FuncNode]*FuncNode, node *FuncNode) []string {
	var rev []string
	for cur := node; cur != nil; cur = pred[cur] {
		rev = append(rev, cur.Name)
		if pred[cur] == nil {
			break
		}
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// exprString renders a (small) expression for diagnostics and lock
// keys; it is stable because it prints straight from the AST.
func exprString(expr ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), expr)
	return buf.String()
}
