package tag

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
)

func newTestTag(t *testing.T, seed uint64) (*sim.Engine, *Device) {
	t.Helper()
	e := sim.NewEngine()
	d, err := New(e, DefaultConfig(3, 4), sim.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

// injectBeacon schedules the PIE edges of a beacon with command cmd at
// the tag, starting at time start, with the given chip duration.
func injectBeacon(e *sim.Engine, d *Device, cmd phy.Command, start sim.Time, chipDur sim.Time) sim.Time {
	frame, err := (phy.Beacon{Cmd: cmd}).Marshal()
	if err != nil {
		panic(err)
	}
	t := start
	for _, bit := range frame {
		high := chipDur
		if bit&1 == 1 {
			high = 2 * chipDur
		}
		rise, fall := t, t+high
		e.Schedule(rise, "edge-up", func(sim.Time) { d.InjectEnvelope(true) })
		e.Schedule(fall, "edge-dn", func(sim.Time) { d.InjectEnvelope(false) })
		t += high + chipDur
	}
	return t
}

func TestNewValidation(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig(16, 4)
	if _, err := New(e, cfg, sim.NewRand(1)); err == nil {
		t.Error("TID 16 accepted")
	}
	cfg = DefaultConfig(1, 4)
	cfg.ULDivider = 0
	if _, err := New(e, cfg, sim.NewRand(1)); err == nil {
		t.Error("zero divider accepted")
	}
	cfg = DefaultConfig(1, 3)
	if _, err := New(e, cfg, sim.NewRand(1)); err == nil {
		t.Error("invalid period accepted")
	}
}

func TestPreChargePowersUp(t *testing.T) {
	_, d := newTestTag(t, 1)
	if d.Powered() {
		t.Fatal("tag powered before charging")
	}
	d.PreCharge()
	if !d.Powered() {
		t.Fatal("PreCharge did not power the tag")
	}
	if d.Activations() != 1 {
		t.Errorf("activations = %d", d.Activations())
	}
}

func TestBeaconDemodulation(t *testing.T) {
	e, d := newTestTag(t, 2)
	d.PreCharge()
	var got []phy.Command
	d.OnBeaconDecoded = func(cmd phy.Command, at sim.Time) { got = append(got, cmd) }
	chip := sim.FromSeconds(1 / d.Cfg.DLRate)
	for i, cmd := range []phy.Command{phy.CmdACK, phy.CmdACK | phy.CmdEMPTY, 0, phy.CmdRESET} {
		injectBeacon(e, d, cmd, e.Now()+sim.Time(i)*400*sim.Millisecond+10*sim.Millisecond, chip)
	}
	e.RunUntil(2 * sim.Second)
	if len(got) != 4 {
		t.Fatalf("decoded %d beacons, want 4", len(got))
	}
	want := []phy.Command{phy.CmdACK, phy.CmdACK | phy.CmdEMPTY, 0, phy.CmdRESET}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("beacon %d: cmd %v, want %v", i, got[i], want[i])
		}
	}
	seen, lost := d.BeaconStats()
	if seen != 4 || lost != 0 {
		t.Errorf("stats seen=%d lost=%d", seen, lost)
	}
}

func TestMalformedPulseAborts(t *testing.T) {
	e, d := newTestTag(t, 3)
	d.PreCharge()
	decoded := 0
	d.OnBeaconDecoded = func(phy.Command, sim.Time) { decoded++ }
	// A 5-chip-long pulse is outside the PIE window.
	chip := sim.FromSeconds(1 / d.Cfg.DLRate)
	e.Schedule(10*sim.Millisecond, "up", func(sim.Time) { d.InjectEnvelope(true) })
	e.Schedule(10*sim.Millisecond+5*chip, "dn", func(sim.Time) { d.InjectEnvelope(false) })
	e.RunUntil(sim.Second)
	if decoded != 0 {
		t.Error("garbage decoded as beacon")
	}
	// A clean beacon right after still decodes (state was reset).
	injectBeacon(e, d, phy.CmdACK, e.Now()+10*sim.Millisecond, chip)
	e.RunUntil(2 * sim.Second)
	if decoded != 1 {
		t.Errorf("decoded=%d after recovery beacon", decoded)
	}
}

func TestBeaconTimeoutTriggersMigration(t *testing.T) {
	e, d := newTestTag(t, 4)
	d.PreCharge()
	// No beacons at all: the timeout should fire and count losses.
	e.RunUntil(10 * sim.Second)
	_, lost := d.BeaconStats()
	if lost < 5 {
		t.Errorf("beacon losses = %d over 10 quiet seconds", lost)
	}
	if d.Proto.State() != mac.Migrate {
		t.Error("tag should be migrating after beacon losses")
	}
}

func TestTransmissionProducesDecodableFrame(t *testing.T) {
	e, d := newTestTag(t, 5)
	d.PreCharge()
	// Clear the late-arrival gate so the tag contends immediately.
	var txs []Transmission
	d.OnTransmit = func(tx Transmission) { txs = append(txs, tx) }
	chip := sim.FromSeconds(1 / d.Cfg.DLRate)
	// Send RESET (clears gate), then repeated beacons; the tag (period
	// 4) must transmit within its period.
	at := 10 * sim.Millisecond
	injectBeacon(e, d, phy.CmdRESET|phy.CmdEMPTY, at, chip)
	for i := 1; i <= 8; i++ {
		injectBeacon(e, d, phy.CmdEMPTY, at+sim.Time(i)*sim.Second, chip)
	}
	e.RunUntil(10 * sim.Second)
	if len(txs) < 2 {
		t.Fatalf("%d transmissions over 8 slots with period 4", len(txs))
	}
	tx := txs[0]
	if tx.TID != 3 {
		t.Errorf("TID = %d", tx.TID)
	}
	// The chip stream must FM0-decode back to a valid UL frame.
	bits, err := phy.FM0Decode(tx.Chips, 0)
	if err != nil {
		t.Fatalf("FM0 decode: %v", err)
	}
	pkt, err := phy.UnmarshalUL(bits)
	if err != nil {
		t.Fatalf("frame: %v", err)
	}
	if pkt.TID != 3 {
		t.Errorf("frame TID = %d", pkt.TID)
	}
	// Chip rate reflects the skewed clock near 375 bps.
	if tx.ChipRate < 360 || tx.ChipRate > 390 {
		t.Errorf("chip rate = %v", tx.ChipRate)
	}
	// Duration ~171 ms.
	if d := tx.Duration(); d < 150*sim.Millisecond || d > 200*sim.Millisecond {
		t.Errorf("duration = %v", d)
	}
}

func TestPowerDownOnStarvation(t *testing.T) {
	e, d := newTestTag(t, 6)
	d.PreCharge()
	d.SetHarvestInput(0) // carrier off: no harvesting
	// Keep the tag busy: the idle draw alone must eventually trip the
	// cutoff (1 mF from 2.35 V to 1.95 V at ~5 uW takes a while; speed
	// it up with the sensor burst).
	d.Harvester.Cap.SetVolts(1.96)
	for i := 0; i < 20; i++ {
		d.Harvester.Cap.Withdraw(1e-3, 0.1)
	}
	e.RunUntil(e.Now() + 2*sim.Second) // let an energy tick observe it
	if d.Powered() {
		t.Error("tag survived starvation below LTH")
	}
	// With the carrier back it re-activates and counts a second
	// activation.
	vp := 20.0/16 + 0.15
	d.SetHarvestInput(vp)
	e.RunUntil(e.Now() + 10*sim.Second)
	if !d.Powered() {
		t.Error("tag never re-activated")
	}
	if d.Activations() != 2 {
		t.Errorf("activations = %d, want 2", d.Activations())
	}
	// After a power cycle the tag is a late arrival again.
	if !d.Proto.Newcomer() {
		t.Error("rebooted tag should be EMPTY-gated")
	}
}

func TestSensorPayload(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig(2, 2)
	cfg.WithSensor = true
	d, err := New(e, cfg, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	d.PreCharge()
	d.SetHarvestInput(1.4)
	var payloads []uint16
	d.OnTransmit = func(tx Transmission) { payloads = append(payloads, tx.Packet.Payload) }
	chip := sim.FromSeconds(1 / d.Cfg.DLRate)

	d.SetDisplacement(-0.10)
	injectBeacon(e, d, phy.CmdRESET|phy.CmdEMPTY, 10*sim.Millisecond, chip)
	for i := 1; i <= 4; i++ {
		injectBeacon(e, d, phy.CmdACK|phy.CmdEMPTY, sim.Time(i)*sim.Second, chip)
	}
	e.RunUntil(5 * sim.Second)
	d.SetDisplacement(0.10)
	for i := 5; i <= 9; i++ {
		injectBeacon(e, d, phy.CmdACK|phy.CmdEMPTY, sim.Time(i)*sim.Second, chip)
	}
	e.RunUntil(10 * sim.Second)

	if len(payloads) < 4 {
		t.Fatalf("%d payloads", len(payloads))
	}
	first, last := payloads[0], payloads[len(payloads)-1]
	if first >= last {
		t.Errorf("payload did not rise with displacement: %d -> %d", first, last)
	}
	if d.SensorEnergy() <= 0 {
		t.Error("sensor energy not accounted")
	}
}

func TestHeartbeatPayloadWithoutSensor(t *testing.T) {
	e, d := newTestTag(t, 8)
	d.PreCharge()
	var tx *Transmission
	d.OnTransmit = func(x Transmission) { tx = &x }
	chip := sim.FromSeconds(1 / d.Cfg.DLRate)
	injectBeacon(e, d, phy.CmdRESET|phy.CmdEMPTY, 10*sim.Millisecond, chip)
	for i := 1; i <= 4; i++ {
		injectBeacon(e, d, phy.CmdEMPTY, sim.Time(i)*sim.Second, chip)
	}
	e.RunUntil(6 * sim.Second)
	if tx == nil {
		t.Fatal("no transmission")
	}
	if tx.Packet.Payload > 0x0FFF {
		t.Errorf("payload %d exceeds 12 bits", tx.Packet.Payload)
	}
}
