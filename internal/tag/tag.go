// Package tag implements the battery-free tag's firmware and device
// model: the interrupt-driven software architecture of Sec. 4 running
// on the simulated MSP430 (package mcu), powered by the harvesting
// subsystem (package energy), executing the distributed slot allocation
// state machine (package mac).
//
// Everything the firmware does is driven by interrupts, exactly as the
// paper prescribes: GPIO edges demodulate PIE beacons, timer interrupts
// clock out FM0 chips, and a software interrupt after each complete
// beacon runs the network state machine. The CPU sleeps otherwise, and
// package mcu integrates the resulting power draw.
package tag

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/mac"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/pzt"
	"repro/internal/sim"
	"repro/internal/strain"
)

// Config holds a tag's provisioning.
type Config struct {
	// TID is the 4-bit tag identifier.
	TID uint8
	// Period is the transmission period in slots.
	Period mac.Period
	// ULDivider is the MCU clock divider for the uplink chip rate
	// (32 -> 375 bps by default).
	ULDivider int
	// DLRate is the downlink raw chip rate the firmware expects (bps).
	DLRate float64
	// SlotDuration is the nominal slot length.
	SlotDuration sim.Time
	// ReplyDelay is the pause between beacon decode and uplink start
	// (20 ms in the paper, Fig. 14a).
	ReplyDelay sim.Time
	// Stages is the voltage-multiplier stage count.
	Stages int
	// WithSensor attaches the strain module (Sec. 6.5).
	WithSensor bool
	// Trace, when set, receives brownout and cutoff transition events
	// from the energy subsystem, stamped with this tag's TID and the
	// engine clock. A nil tracer (the default) costs nothing.
	Trace *obs.Tracer
}

// DefaultConfig returns the paper's tag operating point.
func DefaultConfig(tid uint8, period mac.Period) Config {
	return Config{
		TID:          tid,
		Period:       period,
		ULDivider:    32,
		DLRate:       phy.DefaultDLRate,
		SlotDuration: sim.Second,
		ReplyDelay:   20 * sim.Millisecond,
		Stages:       8,
	}
}

// Transmission is the tag's announcement of an uplink backscatter
// burst; the channel layer carries it to the reader.
type Transmission struct {
	TID      uint8
	Start    sim.Time
	ChipRate float64 // actual rate as clocked by this tag's skewed MCU
	Chips    phy.Bits
	Packet   phy.ULPacket
}

// Duration returns the on-air time of the burst.
func (t Transmission) Duration() sim.Time {
	return sim.FromSeconds(float64(len(t.Chips)) / t.ChipRate)
}

// Device is one complete tag.
type Device struct {
	Cfg       Config
	MCU       *mcu.MCU
	Harvester *energy.Harvester
	Proto     *mac.TagProtocol
	PZT       *pzt.Transducer
	Sensor    *strain.Sensor

	engine *sim.Engine
	rng    *sim.Rand

	// OnTransmit is the channel hook: called when the tag starts an
	// uplink burst.
	OnTransmit func(tx Transmission)
	// OnBeaconDecoded fires when a beacon fully decodes (used by the
	// Fig. 13b sync-offset measurement). The argument is the decode
	// completion time.
	OnBeaconDecoded func(cmd phy.Command, at sim.Time)

	// Harvest input: PZT peak voltage while the reader carrier is on.
	vp float64
	// Strain input for the sensor module (end displacement, meters).
	displacementM float64

	powered bool
	// Demodulator state.
	ticksPerChip float64
	bitWindow    phy.Bits
	cmdBits      phy.Bits
	inFrame      bool
	// Beacon bookkeeping.
	beaconTimeout *sim.Event
	beaconsSeen   uint64
	beaconsLost   uint64
	// UL transmission state.
	txChips phy.Bits
	txIdx   int
	txPkt   phy.ULPacket
	// Energy bookkeeping.
	lastCharge   float64 // meter charge at last energy tick
	energyTick   sim.Time
	activations  uint64
	sensorEnergy float64 // joules drawn by ADC bursts
}

// New builds a tag device on the engine. The rng individualizes clock
// skew and protocol randomness.
func New(engine *sim.Engine, cfg Config, rng *sim.Rand) (*Device, error) {
	if cfg.TID >= phy.MaxTags {
		return nil, fmt.Errorf("tag: TID %d exceeds the 4-bit space", cfg.TID)
	}
	if cfg.ULDivider < 1 {
		return nil, fmt.Errorf("tag: invalid UL divider %d", cfg.ULDivider)
	}
	proto, err := mac.NewTagProtocol(cfg.Period, rng.Fork(1))
	if err != nil {
		return nil, err
	}
	d := &Device{
		Cfg:        cfg,
		MCU:        mcu.New(engine, mcu.DefaultConfig(), rng.Fork(2)),
		Harvester:  energy.NewHarvester(cfg.Stages),
		Proto:      proto,
		PZT:        pzt.New(),
		engine:     engine,
		rng:        rng.Fork(3),
		energyTick: 50 * sim.Millisecond,
	}
	if cfg.WithSensor {
		d.Sensor = strain.NewSensor()
	}
	if cfg.Trace != nil {
		clock := func() float64 { return engine.Now().Seconds() }
		sc := d.Harvester.Cap
		sc.Trace, sc.TraceTID, sc.Now = cfg.Trace, int(cfg.TID), clock
		co := d.Harvester.Cutoff
		co.Trace, co.TraceTID, co.Now = cfg.Trace, int(cfg.TID), clock
	}
	d.ticksPerChip = d.MCU.Cfg.ClockHz / cfg.DLRate // firmware uses the nominal clock
	d.scheduleEnergyTick()
	return d, nil
}

// SetHarvestInput sets the PZT peak voltage the tag currently receives
// (the deployment computes it from the BiW channel).
func (d *Device) SetHarvestInput(vp float64) { d.vp = vp }

// SetDisplacement sets the monitored metal's end displacement.
func (d *Device) SetDisplacement(m float64) { d.displacementM = m }

// Powered reports whether the cutoff circuit is feeding the MCU.
func (d *Device) Powered() bool { return d.powered }

// PreCharge fills the supercapacitor to the activation threshold and
// powers the tag immediately — used by experiments that start from a
// fully charged fleet instead of waiting out the 4-66 s charge.
func (d *Device) PreCharge() {
	d.Harvester.Cap.SetVolts(d.Harvester.Cutoff.HighThreshold() + 0.05)
	if d.Harvester.Cutoff.Update(d.Harvester.Cap.Volts()) && !d.powered {
		d.powerUp()
	}
}

// Activations counts power-up events (including the first).
func (d *Device) Activations() uint64 { return d.activations }

// BeaconStats returns (decoded, lost-by-timeout) counts.
func (d *Device) BeaconStats() (seen, lost uint64) { return d.beaconsSeen, d.beaconsLost }

// SensorEnergy returns the joules spent on ADC conversions.
func (d *Device) SensorEnergy() float64 { return d.sensorEnergy }

// scheduleEnergyTick integrates harvesting and consumption on a fixed
// cadence, driving power-up and brown-out transitions.
func (d *Device) scheduleEnergyTick() {
	d.engine.After(d.energyTick, "tag-energy", func(now sim.Time) {
		d.integrateEnergy()
		d.scheduleEnergyTick()
	})
}

func (d *Device) integrateEnergy() {
	meter := d.MCU.Meter()
	charge := meter.TotalCharge()
	dt := d.energyTick.Seconds()
	loadW := (charge - d.lastCharge) * d.MCU.Cfg.SupplyVolts / dt
	d.lastCharge = charge
	// The ADC burst energy is withdrawn separately on sampling; here
	// only the MCU's metered load applies.
	_, on := d.Harvester.Integrate(d.vp, loadW, dt)
	switch {
	case on && !d.powered:
		d.powerUp()
	case !on && d.powered:
		d.powerDown()
	}
}

// powerUp brings the firmware to its freshly-booted state: the tag is a
// late arrival (newcomer) in MIGRATE, listening for beacons.
func (d *Device) powerUp() {
	d.powered = true
	d.activations++
	d.Proto.Rejoin()
	d.MCU.SetMode(mcu.ModeIdle)
	d.inFrame = false
	d.bitWindow = d.bitWindow[:0]
	d.MCU.In().OnEdge(mcu.EdgeISRCycles, d.onEdge)
	d.armBeaconTimeout()
}

// powerDown models the cutoff opening: all volatile state is lost.
func (d *Device) powerDown() {
	d.powered = false
	d.MCU.In().ClearHandler()
	d.MCU.Timer().StopPeriodic()
	d.MCU.SetMode(mcu.ModeIdle)
	if d.beaconTimeout != nil {
		d.engine.Cancel(d.beaconTimeout)
		d.beaconTimeout = nil
	}
	d.txChips = nil
}

func (d *Device) armBeaconTimeout() {
	if d.beaconTimeout != nil {
		d.engine.Cancel(d.beaconTimeout)
	}
	// A beacon is expected every slot; allow 1.5 slots of grace.
	d.beaconTimeout = d.engine.After(d.Cfg.SlotDuration*3/2, "beacon-timeout", func(now sim.Time) {
		if !d.powered {
			return
		}
		d.beaconsLost++
		d.Proto.OnBeaconLoss()
		d.inFrame = false
		d.bitWindow = d.bitWindow[:0]
		d.armBeaconTimeout()
	})
}

// InjectEnvelope drives the comparator output pin (the channel calls
// this for each DL edge, after propagation and envelope-detector
// delays).
func (d *Device) InjectEnvelope(level bool) {
	d.MCU.In().Inject(level)
}

// onEdge is the DL demodulation ISR pair of Fig. 6(a): positive edge
// resets the timer, negative edge reads it and classifies the PIE
// symbol by pulse interval.
func (d *Device) onEdge(rising bool, now sim.Time) {
	if !d.powered {
		return
	}
	if rising {
		if d.MCU.Mode() == mcu.ModeIdle {
			d.MCU.SetMode(mcu.ModeRX)
		}
		d.MCU.Timer().ResetCounter()
		return
	}
	ticks := d.MCU.Timer().ReadCounter()
	chips := float64(ticks) / d.ticksPerChip
	bits, err := phy.PIEDecodeIntervals([]float64{chips})
	if err != nil {
		// Unclassifiable pulse: abort any frame in progress.
		d.inFrame = false
		d.bitWindow = d.bitWindow[:0]
		d.MCU.SetMode(mcu.ModeIdle)
		return
	}
	d.onBit(bits[0], now)
}

// onBit runs the preamble matcher and collects the command nibble.
func (d *Device) onBit(b byte, now sim.Time) {
	if !d.inFrame {
		d.bitWindow = append(d.bitWindow, b)
		if len(d.bitWindow) > phy.DLPreambleBits {
			d.bitWindow = d.bitWindow[1:]
		}
		if len(d.bitWindow) == phy.DLPreambleBits && d.bitWindow.Equal(phy.DLPreamble) {
			d.inFrame = true
			d.cmdBits = d.cmdBits[:0]
		}
		return
	}
	d.cmdBits = append(d.cmdBits, b)
	if len(d.cmdBits) < phy.CMDBits {
		return
	}
	cmd := phy.Command(d.cmdBits.Uint())
	d.inFrame = false
	d.bitWindow = d.bitWindow[:0]
	d.MCU.WakeFor(mcu.NetISRCycles) // the network software interrupt
	d.handleBeacon(cmd, now)
}

// handleBeacon runs the network state machine on a complete beacon.
func (d *Device) handleBeacon(cmd phy.Command, now sim.Time) {
	d.beaconsSeen++
	d.armBeaconTimeout()
	d.MCU.SetMode(mcu.ModeIdle)
	if d.OnBeaconDecoded != nil {
		d.OnBeaconDecoded(cmd, now)
	}
	fb := mac.Feedback{
		ACK:   cmd.Has(phy.CmdACK),
		Empty: cmd.Has(phy.CmdEMPTY),
		Reset: cmd.Has(phy.CmdRESET),
	}
	if d.Proto.OnBeacon(fb) {
		d.engine.After(d.Cfg.ReplyDelay, "tag-ul", func(sim.Time) {
			d.startTransmission()
		})
	}
}

// startTransmission samples the sensor, frames the packet and begins
// FM0 modulation via timer interrupts (Fig. 6b).
func (d *Device) startTransmission() {
	if !d.powered || d.txChips != nil {
		return
	}
	pkt := phy.ULPacket{TID: d.Cfg.TID, Payload: d.samplePayload()}
	frame, err := pkt.Marshal()
	if err != nil {
		return // unrepresentable payload: firmware drops the sample
	}
	d.txPkt = pkt
	d.txChips = phy.FM0Encode(frame, 0)
	d.txIdx = 0
	d.MCU.SetMode(mcu.ModeTX)

	rate := d.MCU.ClockHz() / float64(d.Cfg.ULDivider)
	if d.OnTransmit != nil {
		d.OnTransmit(Transmission{
			TID:      d.Cfg.TID,
			Start:    d.engine.Now(),
			ChipRate: rate,
			Chips:    append(phy.Bits{}, d.txChips...),
			Packet:   pkt,
		})
	}
	d.MCU.Timer().StartPeriodic(d.Cfg.ULDivider, mcu.TXTimerISRCycles, func(sim.Time) {
		if d.txIdx >= len(d.txChips) {
			d.MCU.Timer().StopPeriodic()
			d.MCU.Out().Set(false)
			d.PZT.SetState(pzt.Absorptive)
			d.txChips = nil
			d.MCU.SetMode(mcu.ModeIdle)
			return
		}
		on := d.txChips[d.txIdx]&1 == 1
		d.MCU.Out().Set(on)
		if on {
			d.PZT.SetState(pzt.Reflective)
		} else {
			d.PZT.SetState(pzt.Absorptive)
		}
		d.txIdx++
	})
}

// samplePayload performs one ADC conversion of the strain chain (if
// fitted), drawing the 1 mW burst from the supercap; tags sample at
// most once per slot for exactly this reason (Sec. 6.5).
func (d *Device) samplePayload() uint16 {
	if d.Sensor == nil {
		return uint16(d.Proto.Counter()) & 0x0FFF // heartbeat payload
	}
	v, err := d.Sensor.VoltageAt(d.displacementM)
	if err != nil {
		return 0
	}
	adc := mcu.NewADC()
	d.Harvester.Cap.Withdraw(adc.ConversionWatts, adc.ConversionSeconds)
	d.sensorEnergy += adc.ConversionEnergy()
	return adc.Convert(v) & 0x0FFF
}
