package biw

import (
	"fmt"
	"math"
)

// Channel turns a Deployment into the link-budget quantities the rest
// of the system consumes: the open-circuit voltage each tag's PZT sees
// (energy harvesting), the backscatter signal amplitude back at the
// reader RX chain (uplink), and the noise against which uplink SNR is
// measured.
//
// The reader drive is intentionally small — an 18 W class amplifier
// with 36 V peak output (72 Vpp) — to satisfy electrical-safety limits
// for human-accessible spaces (Sec. 3.1). That restriction is the root
// of the paper's Challenge 1.
//
// Calibration note (uplink). The reader measures SNR from the power
// spectral density around the backscatter frequency (Sec. 6.3). In the
// real system that measurement is clutter-limited: the reflected signal
// and the spectral shelf underneath it are both driven by the same
// structural vibration, so measured SNR varies far less across tags
// than the raw fourth-power backscatter link budget would suggest
// (tag 8 reports 11.7 dB at 3 kbps while the much farther tag 11 still
// reports 18.1 dB at 750 bps). We reproduce that by compressing the
// path-loss dependence of the *measured* backscatter amplitude with the
// empirical exponent ClutterCompression, while keeping the full
// physical loss for energy harvesting.
type Channel struct {
	Deployment *Deployment

	// DrivePeakVolts is the reader TX PZT drive amplitude (V peak).
	DrivePeakVolts float64
	// ReflectionEfficiency is the fraction of incident wave amplitude a
	// short-circuited tag PZT re-radiates (0..1).
	ReflectionEfficiency float64
	// RXReferenceVolts is the backscatter amplitude (V) observed at
	// the reader ADC for the reference (lowest-loss) tag.
	RXReferenceVolts float64
	// ClutterCompression maps one-way path-loss deltas (dB) to measured
	// SNR penalty (dB/dB); 0.35 calibrated against Fig. 12(a).
	ClutterCompression float64
	// NoiseDensityV2PerHz is the reader-side noise power spectral density
	// (V^2/Hz) in the band around the carrier.
	NoiseDensityV2PerHz float64
	// GainOffsetDB, when set, adds a time-varying per-tag path-loss
	// offset (dB, positive = extra loss) on top of the deployment's
	// static loss — the fault-injection layer drives transient fades
	// through this hook. It applies to harvesting, backscatter and
	// downlink alike (the fade is a property of the acoustic path).
	GainOffsetDB func(id int) float64
	// referenceLossDB caches the lowest tag path loss.
	referenceLossDB float64
}

// DefaultChannel wraps the deployment with the paper's reader settings.
func DefaultChannel(d *Deployment) *Channel {
	c := &Channel{
		Deployment:           d,
		DrivePeakVolts:       36.0,
		ReflectionEfficiency: 0.55,
		RXReferenceVolts:     0.050,
		ClutterCompression:   0.35,
		NoiseDensityV2PerHz:  3.52e-9,
	}
	best := math.Inf(1)
	for id := 1; id <= d.NumTags(); id++ {
		if l, err := d.TagLossDB(id); err == nil && l < best {
			best = l
		}
	}
	c.referenceLossDB = best
	return c
}

// tagLossDB resolves a tag's effective path loss: static deployment
// loss plus the dynamic fault offset, if any.
func (c *Channel) tagLossDB(id int) (float64, error) {
	loss, err := c.Deployment.TagLossDB(id)
	if err != nil {
		return 0, err
	}
	if c.GainOffsetDB != nil {
		loss += c.GainOffsetDB(id)
	}
	return loss, nil
}

// TagPeakVoltage returns the open-circuit peak voltage Vp on the tag's
// PZT while the reader transmits the carrier. This is the input to the
// multi-stage voltage multiplier (Sec. 3.2) and uses the full physical
// path loss.
func (c *Channel) TagPeakVoltage(id int) (float64, error) {
	loss, err := c.tagLossDB(id)
	if err != nil {
		return 0, err
	}
	return c.DrivePeakVolts * math.Pow(10, -loss/20), nil
}

// BackscatterAmplitude returns the peak amplitude (V, at the reader
// ADC) of tag id's backscatter signal, using the clutter-compressed
// calibration described on Channel.
func (c *Channel) BackscatterAmplitude(id int) (float64, error) {
	loss, err := c.tagLossDB(id)
	if err != nil {
		return 0, err
	}
	deltaDB := (loss - c.referenceLossDB) * c.ClutterCompression
	return c.RXReferenceVolts * math.Pow(10, -deltaDB/20), nil
}

// UplinkSNRdB returns the reader-side PSD-measured SNR (dB) of tag id's
// backscatter when modulated at the given raw bit rate. Signal power is
// the OOK sideband power; noise is the density integrated over the FM0
// occupied bandwidth (about twice the raw bit rate), which is why SNR
// falls as the bit rate rises — the trend of Fig. 12(a).
func (c *Channel) UplinkSNRdB(id int, bitRateBPS float64) (float64, error) {
	if bitRateBPS <= 0 {
		return 0, fmt.Errorf("biw: non-positive bit rate %v", bitRateBPS)
	}
	v, err := c.BackscatterAmplitude(id)
	if err != nil {
		return 0, err
	}
	sigPower := (v / 2) * (v / 2) / 2 // OOK sideband, sine power
	noisePower := c.NoiseDensityV2PerHz * 2 * bitRateBPS
	return 10 * math.Log10(sigPower/noisePower), nil
}

// NoiseRMS returns the reader-side RMS noise voltage for a simulation
// sampled at sampleRateHz (noise density integrated to Nyquist).
func (c *Channel) NoiseRMS(sampleRateHz float64) float64 {
	return math.Sqrt(c.NoiseDensityV2PerHz * sampleRateHz / 2)
}

// DownlinkCarrierSwing returns the peak voltage swing the tag's
// envelope detector sees when the reader keys the carrier for PIE
// downlink symbols. It equals the harvested carrier amplitude.
func (c *Channel) DownlinkCarrierSwing(id int) (float64, error) {
	return c.TagPeakVoltage(id)
}
