package biw

import (
	"math"
	"testing"
)

// The GainOffsetDB hook must attenuate harvesting and (compressed)
// backscatter while set, per tag, and restore the static budget when
// cleared — the contract the fault-injection layer's fades rely on.
func TestGainOffsetDBHook(t *testing.T) {
	d := NewONVOL60()
	c := DefaultChannel(d)

	v0, err := c.TagPeakVoltage(1)
	if err != nil {
		t.Fatal(err)
	}
	a0, err := c.BackscatterAmplitude(1)
	if err != nil {
		t.Fatal(err)
	}
	vOther, _ := c.TagPeakVoltage(2)

	const depth = 6.0
	c.GainOffsetDB = func(id int) float64 {
		if id == 1 {
			return depth
		}
		return 0
	}
	v1, err := c.TagPeakVoltage(1)
	if err != nil {
		t.Fatal(err)
	}
	wantV := v0 * math.Pow(10, -depth/20)
	if math.Abs(v1-wantV) > 1e-12 {
		t.Errorf("faded harvest voltage %v, want %v", v1, wantV)
	}
	a1, err := c.BackscatterAmplitude(1)
	if err != nil {
		t.Fatal(err)
	}
	// Backscatter sees the clutter-compressed delta.
	wantA := a0 * math.Pow(10, -depth*c.ClutterCompression/20)
	if math.Abs(a1-wantA) > 1e-12 {
		t.Errorf("faded backscatter %v, want %v", a1, wantA)
	}
	// Other tags are untouched.
	if v, _ := c.TagPeakVoltage(2); v != vOther {
		t.Errorf("tag 2 voltage changed under tag 1 fade: %v vs %v", v, vOther)
	}

	c.GainOffsetDB = nil
	if v, _ := c.TagPeakVoltage(1); v != v0 {
		t.Errorf("voltage after clearing fade %v, want %v", v, v0)
	}
}
