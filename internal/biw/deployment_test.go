package biw

import (
	"math"
	"testing"
)

// multiplier16x mirrors the 8-stage (16x) voltage multiplier output
// used in Fig. 11(a): Vdd = 2N(Vp - Von) with N=8, Von=0.15 V.
func multiplier16x(vp float64) float64 { return 16 * (vp - 0.15) }

func TestONVOL60Shape(t *testing.T) {
	d := NewONVOL60()
	if d.NumTags() != 12 {
		t.Fatalf("tags = %d, want 12", d.NumTags())
	}
	zones := map[string][]int{}
	for i, m := range d.Tags {
		zones[m.Zone] = append(zones[m.Zone], i+1)
	}
	if got := zones["front-row"]; len(got) != 3 {
		t.Errorf("front-row tags = %v, want 3 (tags 1-3)", got)
	}
	if got := zones["second-row"]; len(got) != 5 {
		t.Errorf("second-row tags = %v, want 5 (tags 4-8)", got)
	}
	if got := zones["cargo-area"]; len(got) != 4 {
		t.Errorf("cargo-area tags = %v, want 4 (tags 9-12)", got)
	}
	if d.Reader.Zone != "second-row" {
		t.Errorf("reader zone = %q, want second-row (above battery pack)", d.Reader.Zone)
	}
}

func TestONVOL60AllTagsReachable(t *testing.T) {
	d := NewONVOL60()
	for id := 1; id <= 12; id++ {
		loss, err := d.TagLossDB(id)
		if err != nil {
			t.Fatalf("tag %d: %v", id, err)
		}
		if loss <= 0 || loss > 60 {
			t.Errorf("tag %d: implausible loss %v dB", id, loss)
		}
		delay, err := d.TagDelay(id)
		if err != nil {
			t.Fatalf("tag %d delay: %v", id, err)
		}
		if delay < 0 || delay > 0.01 {
			t.Errorf("tag %d: implausible delay %v s", id, delay)
		}
	}
}

func TestTagMountRange(t *testing.T) {
	d := NewONVOL60()
	for _, id := range []int{0, -1, 13} {
		if _, err := d.TagMount(id); err == nil {
			t.Errorf("TagMount(%d) should fail", id)
		}
	}
	m, err := d.TagMount(8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Device != "tag8" {
		t.Errorf("TagMount(8).Device = %q", m.Device)
	}
}

// TestFig11aCalibration locks the deployment to the paper's Fig. 11(a)
// anchor points: at 8 stages (16x) tag 4 harvests ~4.74 V (perpendicular
// junction), tag 11 ~2.70 V (deep cargo area), tag 8 is the maximum
// (closest to the reader), and every tag clears the 2.3 V activation
// threshold.
func TestFig11aCalibration(t *testing.T) {
	d := NewONVOL60()
	c := DefaultChannel(d)

	vdd := make([]float64, 13)
	for id := 1; id <= 12; id++ {
		vp, err := c.TagPeakVoltage(id)
		if err != nil {
			t.Fatal(err)
		}
		vdd[id] = multiplier16x(vp)
	}

	if math.Abs(vdd[4]-4.74) > 4.74*0.08 {
		t.Errorf("tag 4 Vdd = %.2f V, want 4.74 +/- 8%%", vdd[4])
	}
	if math.Abs(vdd[11]-2.70) > 2.70*0.08 {
		t.Errorf("tag 11 Vdd = %.2f V, want 2.70 +/- 8%%", vdd[11])
	}
	for id := 1; id <= 12; id++ {
		if vdd[id] < 2.3 {
			t.Errorf("tag %d Vdd = %.2f V below the 2.3 V activation threshold", id, vdd[id])
		}
		if id != 8 && vdd[id] >= vdd[8] {
			t.Errorf("tag %d (%.2f V) >= tag 8 (%.2f V); tag 8 must harvest the most", id, vdd[id], vdd[8])
		}
	}
	if vdd[11] > 2.9 {
		t.Errorf("tag 11 should be the weakest region, got %.2f V", vdd[11])
	}
}

func TestLossRank(t *testing.T) {
	d := NewONVOL60()
	rank := d.LossRank()
	if len(rank) != 12 {
		t.Fatalf("rank length %d", len(rank))
	}
	if rank[0] != 8 {
		t.Errorf("best-connected tag = %d, want 8 (next to reader)", rank[0])
	}
	if rank[len(rank)-1] != 11 {
		t.Errorf("worst-connected tag = %d, want 11 (deep cargo)", rank[len(rank)-1])
	}
	prev := -1.0
	for _, id := range rank {
		l, err := d.TagLossDB(id)
		if err != nil {
			t.Fatal(err)
		}
		if l < prev {
			t.Fatalf("rank not sorted by loss")
		}
		prev = l
	}
}

func TestChannelUplinkSNRShape(t *testing.T) {
	c := DefaultChannel(NewONVOL60())
	rates := []float64{93.75, 187.5, 375, 750, 1500, 3000}

	// SNR decreases with bit rate for every tag (Fig. 12a trend).
	for id := 1; id <= 12; id++ {
		prev := math.Inf(1)
		for _, r := range rates {
			snr, err := c.UplinkSNRdB(id, r)
			if err != nil {
				t.Fatal(err)
			}
			if snr >= prev {
				t.Errorf("tag %d: SNR not decreasing at %v bps", id, r)
			}
			prev = snr
		}
	}

	// Tag 8 has the highest SNR at every rate; tag 8 at 3 kbps is
	// around the paper's 11.7 dB anchor.
	for _, r := range rates {
		s8, _ := c.UplinkSNRdB(8, r)
		for id := 1; id <= 12; id++ {
			if id == 8 {
				continue
			}
			s, _ := c.UplinkSNRdB(id, r)
			if s >= s8 {
				t.Errorf("tag %d SNR %.1f >= tag 8 SNR %.1f at %v bps", id, s, s8, r)
			}
		}
	}
	s8, _ := c.UplinkSNRdB(8, 3000)
	if math.Abs(s8-11.7) > 1.5 {
		t.Errorf("tag 8 SNR @3000 bps = %.1f dB, want ~11.7", s8)
	}
	// Tag 11 stays usable (>10 dB) at rates up to 750 bps.
	s11, _ := c.UplinkSNRdB(11, 750)
	if s11 < 10 {
		t.Errorf("tag 11 SNR @750 bps = %.1f dB, want > 10", s11)
	}
}

func TestChannelErrors(t *testing.T) {
	c := DefaultChannel(NewONVOL60())
	if _, err := c.UplinkSNRdB(1, 0); err == nil {
		t.Error("expected error for zero bit rate")
	}
	if _, err := c.UplinkSNRdB(99, 375); err == nil {
		t.Error("expected error for unknown tag")
	}
	if _, err := c.TagPeakVoltage(0); err == nil {
		t.Error("expected error for tag 0")
	}
	if _, err := c.BackscatterAmplitude(13); err == nil {
		t.Error("expected error for tag 13")
	}
}

func TestChannelNoiseRMS(t *testing.T) {
	c := DefaultChannel(NewONVOL60())
	n := c.NoiseRMS(500_000)
	if n <= 0 {
		t.Fatal("noise must be positive")
	}
	// Doubling the sample rate scales RMS by sqrt(2).
	n2 := c.NoiseRMS(1_000_000)
	if math.Abs(n2/n-math.Sqrt2) > 1e-9 {
		t.Errorf("noise scaling wrong: %v vs %v", n, n2)
	}
}

func TestBackscatterWeakerThanCarrier(t *testing.T) {
	c := DefaultChannel(NewONVOL60())
	for id := 1; id <= 12; id++ {
		bs, err := c.BackscatterAmplitude(id)
		if err != nil {
			t.Fatal(err)
		}
		if bs <= 0 {
			t.Errorf("tag %d: non-positive backscatter amplitude", id)
		}
		if bs > c.RXReferenceVolts {
			t.Errorf("tag %d: backscatter %.4f above reference amplitude", id, bs)
		}
	}
}

func TestDownlinkCarrierSwingMatchesHarvest(t *testing.T) {
	c := DefaultChannel(NewONVOL60())
	for id := 1; id <= 12; id++ {
		swing, err := c.DownlinkCarrierSwing(id)
		if err != nil {
			t.Fatal(err)
		}
		vp, err := c.TagPeakVoltage(id)
		if err != nil {
			t.Fatal(err)
		}
		if swing != vp {
			t.Errorf("tag %d: swing %v != Vp %v", id, swing, vp)
		}
	}
}
