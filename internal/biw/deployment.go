package biw

import (
	"fmt"
	"math"
	"sort"
)

// Mount places a device (reader or tag) on a structural element.
// OffsetM is the device's distance (meters) along the sheet metal from
// the element's representative point; it adds plain distance
// attenuation without any junction loss.
type Mount struct {
	Device  string // "reader", "tag1".."tag12", ...
	Element string
	Zone    string // human-readable deployment zone, e.g. "front-row"
	OffsetM float64
}

// Deployment is a BiW structure plus the set of mounted devices.
type Deployment struct {
	Structure *Structure
	Reader    Mount
	Tags      []Mount // index i holds tag i+1, matching the paper's IDs
}

// TagMount returns the mount for 1-based tag id.
func (d *Deployment) TagMount(id int) (Mount, error) {
	if id < 1 || id > len(d.Tags) {
		return Mount{}, fmt.Errorf("biw: tag id %d out of range 1..%d", id, len(d.Tags))
	}
	return d.Tags[id-1], nil
}

// NumTags returns the number of deployed tags.
func (d *Deployment) NumTags() int { return len(d.Tags) }

// TagLossDB returns the one-way reader→tag path loss for 1-based id.
func (d *Deployment) TagLossDB(id int) (float64, error) {
	m, err := d.TagMount(id)
	if err != nil {
		return 0, err
	}
	loss, _, err := d.Structure.PathLossDB(d.Reader.Element, m.Element)
	if err != nil {
		return 0, err
	}
	loss += (m.OffsetM + d.Reader.OffsetM) * d.Structure.AttenuationDBPerMeter
	return loss, nil
}

// TagDelay returns the one-way reader→tag propagation delay in seconds.
func (d *Deployment) TagDelay(id int) (float64, error) {
	m, err := d.TagMount(id)
	if err != nil {
		return 0, err
	}
	return d.Structure.PropagationDelay(d.Reader.Element, m.Element)
}

// LossRank returns tag ids sorted from lowest to highest path loss,
// i.e. best-connected first.
func (d *Deployment) LossRank() []int {
	ids := make([]int, len(d.Tags))
	for i := range ids {
		ids[i] = i + 1
	}
	sort.Slice(ids, func(a, b int) bool {
		la, _ := d.TagLossDB(ids[a])
		lb, _ := d.TagLossDB(ids[b])
		return la < lb
	})
	return ids
}

// NewONVOL60 builds the paper's deployment: the BiW of an ONVO L60 SUV
// (about 4.8 m long, 1.9 m wide), 12 tags in three zones — front row
// (tags 1-3), second row (tags 4-8), cargo area (tags 9-12) — and the
// reader centrally placed in the second row above the battery pack
// (Fig. 10). Loss constants are calibrated against Fig. 11(a): at
// 8 multiplier stages tag 4 (mounted on a perpendicular pillar face)
// harvests about 4.7 V, the distant tag 11 about 2.7 V, and every tag
// clears the 2.3 V activation threshold.
func NewONVOL60() *Deployment {
	s := NewStructure(3.6, 25.8)

	add := func(name string, kind ElementKind, x, y, z float64) {
		s.AddElement(name, kind, Position{X: x, Y: y, Z: z})
	}
	// Front section.
	add("dashboard", KindDashboard, 0.8, 0, 0.5)
	add("front-floor-l", KindFloorPanel, 1.5, -0.6, 0)
	add("front-floor-r", KindFloorPanel, 1.5, 0.6, 0)
	// Second row / middle.
	add("middle-floor", KindFloorPanel, 2.4, 0, 0)
	add("rocker-l", KindRockerPanel, 2.4, -0.95, 0.1)
	add("rocker-r", KindRockerPanel, 2.4, 0.95, 0.1)
	add("b-pillar-l", KindPillar, 2.2, -0.95, 0.9)
	add("b-pillar-r", KindPillar, 2.2, 0.95, 0.9)
	// Rear / cargo.
	add("rear-floor", KindFloorPanel, 3.4, 0, 0.05)
	add("c-pillar-l", KindPillar, 3.4, -0.95, 0.9)
	add("c-pillar-r", KindPillar, 3.4, 0.95, 0.9)
	add("long-beam-l", KindBeam, 3.9, -0.5, 0.05)
	add("long-beam-r", KindBeam, 3.9, 0.5, 0.05)
	add("cargo-floor", KindFloorPanel, 4.35, 0, 0.15)
	add("threshold", KindThreshold, 4.7, 0, 0.25)

	connect := func(a, b string, loss float64) {
		if err := s.Connect(a, b, loss); err != nil {
			//lint:allow panic-hygiene static hand-built topology; a bad edge is a programming bug, not input
			panic(err) // static topology; any error is a programming bug
		}
	}
	connect("dashboard", "front-floor-l", 3.0)
	connect("dashboard", "front-floor-r", 3.0)
	connect("front-floor-l", "middle-floor", 1.5)
	connect("front-floor-r", "middle-floor", 1.5)
	connect("front-floor-l", "rocker-l", 2.0)
	connect("front-floor-r", "rocker-r", 2.0)
	connect("middle-floor", "rocker-l", 2.0)
	connect("middle-floor", "rocker-r", 2.0)
	connect("rocker-l", "b-pillar-l", 4.0) // perpendicular turning face
	connect("rocker-r", "b-pillar-r", 4.0)
	connect("middle-floor", "rear-floor", 1.5)
	connect("rear-floor", "c-pillar-l", 3.5)
	connect("rear-floor", "c-pillar-r", 3.5)
	connect("rear-floor", "long-beam-l", 2.0)
	connect("rear-floor", "long-beam-r", 2.0)
	connect("long-beam-l", "cargo-floor", 2.0)
	connect("long-beam-r", "cargo-floor", 2.0)
	// The threshold (rear sill) is a crossmember tied to the ends of
	// the longitudinal beams.
	connect("long-beam-l", "threshold", 1.5)
	connect("long-beam-r", "threshold", 1.5)
	connect("cargo-floor", "threshold", 2.5)

	return &Deployment{
		Structure: s,
		Reader:    Mount{Device: "reader", Element: "middle-floor", Zone: "second-row"},
		Tags: []Mount{
			{Device: "tag1", Element: "dashboard", Zone: "front-row"},
			{Device: "tag2", Element: "front-floor-l", Zone: "front-row"},
			{Device: "tag3", Element: "front-floor-r", Zone: "front-row", OffsetM: 0.12},
			{Device: "tag4", Element: "b-pillar-l", Zone: "second-row"},
			{Device: "tag5", Element: "rocker-l", Zone: "second-row"},
			{Device: "tag6", Element: "rocker-r", Zone: "second-row", OffsetM: 0.15},
			{Device: "tag7", Element: "b-pillar-r", Zone: "second-row", OffsetM: 0.10},
			{Device: "tag8", Element: "middle-floor", Zone: "second-row", OffsetM: 0.667},
			{Device: "tag9", Element: "long-beam-l", Zone: "cargo-area"},
			{Device: "tag10", Element: "long-beam-r", Zone: "cargo-area", OffsetM: 0.08},
			{Device: "tag11", Element: "cargo-floor", Zone: "cargo-area", OffsetM: 0.32},
			{Device: "tag12", Element: "threshold", Zone: "cargo-area"},
		},
	}
}

// ResonantFrequencyHz is the mechanical resonant frequency of the
// reader-PZT / BiW system. All communication rides on this carrier; the
// 'FSK in OOK out' downlink scheme exploits the sharp response falloff
// away from resonance (Sec. 4.1).
const ResonantFrequencyHz = 90_000.0

// ResonanceResponse returns the relative amplitude response (0..1) of
// the BiW at frequency f, modeled as a second-order resonance with
// quality factor Q around ResonantFrequencyHz. At resonance the
// response is 1; a few kHz away it collapses, which is what lets the
// reader emit "low" symbols as off-resonant tones that the tag's
// envelope detector cannot see.
func ResonanceResponse(fHz float64) float64 {
	const q = 45.0
	f0 := ResonantFrequencyHz
	if fHz <= 0 {
		return 0
	}
	r := fHz / f0
	denom := math.Sqrt(math.Pow(1-r*r, 2) + math.Pow(r/q, 2))
	if denom == 0 {
		return 1
	}
	resp := (r / q) / denom
	if resp > 1 {
		resp = 1
	}
	return resp
}

// AmbientVibrationHz is the upper bound of the vehicle's own structural
// vibration spectrum (engine, road). It is more than two decades below
// the 90 kHz carrier, which is why driving does not disturb the link
// (Sec. 2.2 discussion).
const AmbientVibrationHz = 100.0
