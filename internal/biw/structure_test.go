package biw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPositionDistance(t *testing.T) {
	a := Position{0, 0, 0}
	b := Position{3, 4, 0}
	if d := a.Distance(b); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if a.Distance(b) != b.Distance(a) {
		t.Error("distance not symmetric")
	}
}

func TestElementKindString(t *testing.T) {
	if KindPillar.String() != "pillar" {
		t.Errorf("KindPillar = %q", KindPillar.String())
	}
	if got := ElementKind(99).String(); got != "ElementKind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func newTestStructure() *Structure {
	s := NewStructure(2.0, 10.0)
	s.AddElement("a", KindFloorPanel, Position{0, 0, 0})
	s.AddElement("b", KindFloorPanel, Position{1, 0, 0})
	s.AddElement("c", KindPillar, Position{2, 0, 0})
	s.AddElement("d", KindBeam, Position{0, 5, 0})
	if err := s.Connect("a", "b", 1.0); err != nil {
		panic(err)
	}
	if err := s.Connect("b", "c", 3.0); err != nil {
		panic(err)
	}
	if err := s.Connect("a", "d", 0.0); err != nil {
		panic(err)
	}
	return s
}

func TestPathLossDirect(t *testing.T) {
	s := newTestStructure()
	loss, dist, err := s.PathLossDB("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	// coupling 10 + distance 1m * 2 dB/m + junction 1 = 13
	if math.Abs(loss-13) > 1e-9 {
		t.Errorf("loss = %v, want 13", loss)
	}
	if math.Abs(dist-1) > 1e-9 {
		t.Errorf("dist = %v, want 1", dist)
	}
}

func TestPathLossMultiHop(t *testing.T) {
	s := newTestStructure()
	loss, dist, err := s.PathLossDB("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	// 10 + (1*2+1) + (1*2+3) = 18
	if math.Abs(loss-18) > 1e-9 {
		t.Errorf("loss = %v, want 18", loss)
	}
	if math.Abs(dist-2) > 1e-9 {
		t.Errorf("dist = %v, want 2", dist)
	}
}

func TestPathLossSameElement(t *testing.T) {
	s := newTestStructure()
	loss, dist, err := s.PathLossDB("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if loss != 10 || dist != 0 {
		t.Errorf("same-element: loss=%v dist=%v, want 10, 0", loss, dist)
	}
}

func TestPathLossSymmetric(t *testing.T) {
	s := newTestStructure()
	for _, pair := range [][2]string{{"a", "c"}, {"b", "d"}, {"c", "d"}} {
		l1, _, err1 := s.PathLossDB(pair[0], pair[1])
		l2, _, err2 := s.PathLossDB(pair[1], pair[0])
		if err1 != nil || err2 != nil {
			t.Fatalf("path errors: %v %v", err1, err2)
		}
		if math.Abs(l1-l2) > 1e-9 {
			t.Errorf("loss %s<->%s asymmetric: %v vs %v", pair[0], pair[1], l1, l2)
		}
	}
}

func TestPathLossPicksCheapestPath(t *testing.T) {
	s := NewStructure(1.0, 0.0)
	s.AddElement("a", KindFloorPanel, Position{0, 0, 0})
	s.AddElement("b", KindFloorPanel, Position{1, 0, 0})
	s.AddElement("c", KindFloorPanel, Position{2, 0, 0})
	// Direct a-c edge with a huge junction vs a-b-c with small ones.
	if err := s.Connect("a", "c", 20.0); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("a", "b", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("b", "c", 0.5); err != nil {
		t.Fatal(err)
	}
	loss, _, err := s.PathLossDB("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-3) > 1e-9 { // 2m + 0.5 + 0.5
		t.Errorf("loss = %v, want 3 (via b)", loss)
	}
}

func TestPathLossErrors(t *testing.T) {
	s := newTestStructure()
	if _, _, err := s.PathLossDB("a", "nope"); err == nil {
		t.Error("expected error for unknown destination")
	}
	if _, _, err := s.PathLossDB("nope", "a"); err == nil {
		t.Error("expected error for unknown source")
	}
	if err := s.Connect("a", "nope", 1); err == nil {
		t.Error("expected error connecting unknown element")
	}
	// Disconnected element.
	s.AddElement("island", KindBeam, Position{9, 9, 9})
	if _, _, err := s.PathLossDB("a", "island"); err == nil {
		t.Error("expected error for disconnected element")
	}
}

func TestGain(t *testing.T) {
	s := newTestStructure()
	g, err := s.Gain("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(10, -13.0/20)
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("gain = %v, want %v", g, want)
	}
}

func TestPropagationDelay(t *testing.T) {
	s := newTestStructure()
	d, err := s.PropagationDelay("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / SpeedOfSound
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("delay = %v, want %v", d, want)
	}
}

func TestElementsSorted(t *testing.T) {
	s := newTestStructure()
	names := s.Elements()
	if len(names) != 4 {
		t.Fatalf("got %d elements", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("elements not sorted: %v", names)
		}
	}
}

func TestResonanceResponse(t *testing.T) {
	if r := ResonanceResponse(ResonantFrequencyHz); math.Abs(r-1) > 0.01 {
		t.Errorf("response at resonance = %v, want ~1", r)
	}
	// A few kHz off resonance the response must collapse (basis of the
	// 'FSK in OOK out' downlink).
	off := ResonanceResponse(ResonantFrequencyHz + 5000)
	if off > 0.3 {
		t.Errorf("off-resonance response = %v, want < 0.3", off)
	}
	// Ambient vehicle vibration band is invisible at the transducer.
	amb := ResonanceResponse(AmbientVibrationHz)
	if amb > 0.001 {
		t.Errorf("ambient response = %v, want ~0", amb)
	}
	if ResonanceResponse(0) != 0 || ResonanceResponse(-5) != 0 {
		t.Error("non-positive frequency should have zero response")
	}
}

func TestResonanceMonotoneAwayFromPeak(t *testing.T) {
	prev := ResonanceResponse(ResonantFrequencyHz)
	for df := 500.0; df <= 20000; df += 500 {
		r := ResonanceResponse(ResonantFrequencyHz + df)
		if r > prev+1e-9 {
			t.Fatalf("response not decreasing above resonance at +%v Hz", df)
		}
		prev = r
	}
}

// Property: adding an edge can never increase the minimum path loss.
func TestPathLossMonotoneUnderEdgeAddition(t *testing.T) {
	f := func(j1, j2 uint8) bool {
		s := NewStructure(1.0, 0.0)
		s.AddElement("a", KindFloorPanel, Position{0, 0, 0})
		s.AddElement("b", KindFloorPanel, Position{3, 0, 0})
		s.AddElement("m", KindFloorPanel, Position{1.5, 1, 0})
		if err := s.Connect("a", "b", float64(j1)); err != nil {
			return false
		}
		before, _, err := s.PathLossDB("a", "b")
		if err != nil {
			return false
		}
		if err := s.Connect("a", "m", float64(j2)); err != nil {
			return false
		}
		if err := s.Connect("m", "b", float64(j2)); err != nil {
			return false
		}
		after, _, err := s.PathLossDB("a", "b")
		if err != nil {
			return false
		}
		return after <= before+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
