// Package biw models the vehicle Body-in-White (BiW) as an acoustic
// medium. The BiW is represented as a graph of structural elements
// (floor panels, rocker panels, pillars, beams); vibration launched by
// the reader's PZT propagates along the sheet metal, losing energy to
// distance attenuation and to geometric junctions (welded seams,
// perpendicular transitions). The model exposes per-link channel gains
// that the energy-harvesting and communication layers consume.
//
// The paper deploys on the BiW of an ONVO L60 SUV (4.8 m x 1.9 m) with
// 12 tags and a single reader; NewONVOL60 reproduces that deployment,
// calibrated so the harvested voltages match Fig. 11(a) of the paper.
package biw

import (
	"fmt"
	"math"
	"sort"
)

// Position is a point on the BiW in vehicle coordinates: x runs from
// the front bumper (0) to the rear (vehicle length), y from the left
// side (negative) to the right (positive), z upward from the floor.
// Units are meters.
type Position struct {
	X, Y, Z float64
}

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

func (p Position) String() string {
	return fmt.Sprintf("(%.2f, %.2f, %.2f)", p.X, p.Y, p.Z)
}

// ElementKind classifies a structural element. The kind has no direct
// effect on propagation (losses live on edges) but is useful for
// reporting and deployment description.
type ElementKind int

const (
	KindFloorPanel ElementKind = iota
	KindRockerPanel
	KindPillar
	KindBeam
	KindDashboard
	KindThreshold
)

var kindNames = map[ElementKind]string{
	KindFloorPanel:  "floor-panel",
	KindRockerPanel: "rocker-panel",
	KindPillar:      "pillar",
	KindBeam:        "beam",
	KindDashboard:   "dashboard",
	KindThreshold:   "threshold",
}

func (k ElementKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ElementKind(%d)", int(k))
}

// Element is one structural member of the BiW.
type Element struct {
	Name string
	Kind ElementKind
	Pos  Position // representative mount point on the element
}

// Junction is a welded or cast transition between two elements. LossDB is
// the extra attenuation (dB) a wave suffers crossing the junction, on
// top of the distance attenuation along the connecting metal.
type Junction struct {
	A, B   string  // element names
	LossDB float64 // dB, >= 0
}

// Structure is the acoustic graph of the BiW.
type Structure struct {
	// AttenuationDBPerMeter is the distance attenuation of a 90 kHz
	// Lamb wave in the sheet metal, including spreading loss.
	AttenuationDBPerMeter float64
	// CouplingLossDB is the fixed loss of the transmit-side
	// electro-mechanical conversion plus epoxy bond, applied once per
	// end-to-end path.
	CouplingLossDB float64

	elements map[string]*Element
	adj      map[string][]edge
}

type edge struct {
	to       string
	distance float64
	junction float64
}

// NewStructure returns an empty structure with the given loss constants.
func NewStructure(attenuationDBPerMeter, couplingLossDB float64) *Structure {
	return &Structure{
		AttenuationDBPerMeter: attenuationDBPerMeter,
		CouplingLossDB:        couplingLossDB,
		elements:              make(map[string]*Element),
		adj:                   make(map[string][]edge),
	}
}

// AddElement registers a structural element. Re-adding a name replaces
// the element but keeps its junctions.
func (s *Structure) AddElement(name string, kind ElementKind, pos Position) {
	s.elements[name] = &Element{Name: name, Kind: kind, Pos: pos}
}

// Element returns the named element, or nil.
func (s *Structure) Element(name string) *Element { return s.elements[name] }

// Elements returns all element names in sorted order.
func (s *Structure) Elements() []string {
	names := make([]string, 0, len(s.elements))
	for n := range s.elements {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Connect adds a bidirectional junction between two elements. The
// distance used for attenuation is the Euclidean distance between the
// elements' mount points. It returns an error if either endpoint is
// unknown.
func (s *Structure) Connect(a, b string, junctionLossDB float64) error {
	ea, ok := s.elements[a]
	if !ok {
		return fmt.Errorf("biw: unknown element %q", a)
	}
	eb, ok := s.elements[b]
	if !ok {
		return fmt.Errorf("biw: unknown element %q", b)
	}
	d := ea.Pos.Distance(eb.Pos)
	s.adj[a] = append(s.adj[a], edge{to: b, distance: d, junction: junctionLossDB})
	s.adj[b] = append(s.adj[b], edge{to: a, distance: d, junction: junctionLossDB})
	return nil
}

// PathLossDB returns the one-way acoustic loss in dB between mount
// points on elements a and b (minimum-loss path through the structure),
// including the fixed coupling loss. The second return is the physical
// path length in meters (for propagation-delay computation). It returns
// an error if no path exists.
func (s *Structure) PathLossDB(a, b string) (lossDB, pathMeters float64, err error) {
	if _, ok := s.elements[a]; !ok {
		return 0, 0, fmt.Errorf("biw: unknown element %q", a)
	}
	if _, ok := s.elements[b]; !ok {
		return 0, 0, fmt.Errorf("biw: unknown element %q", b)
	}
	if a == b {
		return s.CouplingLossDB, 0, nil
	}
	type state struct {
		loss, dist float64
	}
	best := map[string]state{a: {0, 0}}
	visited := map[string]bool{}
	for {
		// Extract the unvisited node with the smallest loss.
		cur, curState, found := "", state{math.Inf(1), 0}, false
		for n, st := range best {
			if !visited[n] && st.loss < curState.loss {
				cur, curState, found = n, st, true
			}
		}
		if !found {
			return 0, 0, fmt.Errorf("biw: no acoustic path from %q to %q", a, b)
		}
		if cur == b {
			return curState.loss + s.CouplingLossDB, curState.dist, nil
		}
		visited[cur] = true
		for _, e := range s.adj[cur] {
			nl := curState.loss + e.distance*s.AttenuationDBPerMeter + e.junction
			if st, ok := best[e.to]; !ok || nl < st.loss {
				best[e.to] = state{nl, curState.dist + e.distance}
			}
		}
	}
}

// Gain returns the one-way linear amplitude gain (0..1) between two
// elements: 10^(-loss/20).
func (s *Structure) Gain(a, b string) (float64, error) {
	loss, _, err := s.PathLossDB(a, b)
	if err != nil {
		return 0, err
	}
	return math.Pow(10, -loss/20), nil
}

// SpeedOfSound is the group velocity of the 90 kHz plate wave in the
// BiW sheet steel, used for propagation delays. m/s.
const SpeedOfSound = 5100.0

// PropagationDelay returns the one-way acoustic travel time in seconds
// between two elements along the minimum-loss path.
func (s *Structure) PropagationDelay(a, b string) (float64, error) {
	_, dist, err := s.PathLossDB(a, b)
	if err != nil {
		return 0, err
	}
	return dist / SpeedOfSound, nil
}
