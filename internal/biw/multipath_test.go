package biw

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/sim"
)

func TestMultipathApplyIdentityWithoutEchoes(t *testing.T) {
	m := &Multipath{}
	sig := []float64{1, 2, 3, 4}
	out := m.Apply(sig, 1000)
	for i := range sig {
		if out[i] != sig[i] {
			t.Fatal("echo-free profile must be identity")
		}
	}
}

func TestMultipathAddsDelayedEnergy(t *testing.T) {
	m := &Multipath{Echoes: []Echo{{DelaySeconds: 0.001, AmplitudeRatio: 0.5}}}
	const fs = 10_000.0
	sig := make([]float64, 100)
	sig[0] = 1 // impulse
	out := m.Apply(sig, fs)
	if out[0] != 1 {
		t.Error("direct path altered")
	}
	lag := int(0.001 * fs)
	if out[lag] != 0.5 {
		t.Errorf("echo at %d = %v, want 0.5", lag, out[lag])
	}
}

func TestMultipathEchoOutOfRangeIgnored(t *testing.T) {
	m := &Multipath{Echoes: []Echo{
		{DelaySeconds: 10, AmplitudeRatio: 0.5}, // beyond the signal
		{DelaySeconds: 0, AmplitudeRatio: 0.5},  // zero lag
	}}
	sig := []float64{1, 0, 0}
	out := m.Apply(sig, 100)
	for i := range sig {
		if out[i] != sig[i] {
			t.Fatal("out-of-range echoes must not contribute")
		}
	}
}

func TestDefaultMultipathShape(t *testing.T) {
	rng := sim.NewRand(9)
	m := DefaultMultipath(rng)
	if len(m.Echoes) != 20 {
		t.Fatalf("%d echoes", len(m.Echoes))
	}
	for _, e := range m.Echoes {
		if e.DelaySeconds < 0 || e.DelaySeconds > 2e-3 {
			t.Errorf("delay %v outside spread", e.DelaySeconds)
		}
		if math.Abs(e.AmplitudeRatio) >= 1 {
			t.Errorf("echo stronger than direct path: %v", e.AmplitudeRatio)
		}
	}
	r := m.EnergyRatio()
	if r <= 0 || r > 2 {
		t.Errorf("energy ratio %v implausible", r)
	}
}

func TestNewMultipathNegativeCount(t *testing.T) {
	m := NewMultipath(-3, 1e-3, 1e-3, sim.NewRand(1))
	if len(m.Echoes) != 0 {
		t.Error("negative count should yield empty profile")
	}
}

// TestMultipathRaisesSpectralShelf demonstrates the clutter mechanism:
// reverberation smears modulation energy around the tone, raising the
// "surrounding frequency power" that bounds the measured SNR (the
// justification for Channel's ClutterCompression calibration).
func TestMultipathRaisesSpectralShelf(t *testing.T) {
	rng := sim.NewRand(11)
	const fs = 12_000.0
	const chipRate = 750.0
	// Square backscatter tone at chipRate/2.
	n := 8192
	sig := make([]float64, n)
	spc := int(fs / chipRate)
	level := 0.0
	for i := range sig {
		if i%spc == 0 {
			level = 1 - level
		}
		sig[i] = 0.1*level + rng.NormFloat64()*0.001
	}
	direct := append([]float64(nil), sig...)
	mp := DefaultMultipath(rng)
	// A static channel preserves the tone's periodicity, so it barely
	// moves the measured SNR...
	static := mp.Apply(sig, fs)
	// ...but a fluttering channel (structural micro-motion at tens of
	// Hz) smears sidebands into the surrounding band and caps the SNR —
	// the clutter-limited measurement of Sec. 6.3.
	flutter := mp.ApplyTimeVarying(sig, fs, 60.0, 0.5, rng)

	snrDirect, err := dsp.MeasureSNRdB(direct, fs, chipRate)
	if err != nil {
		t.Fatal(err)
	}
	snrStatic, err := dsp.MeasureSNRdB(static, fs, chipRate)
	if err != nil {
		t.Fatal(err)
	}
	snrFlutter, err := dsp.MeasureSNRdB(flutter, fs, chipRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snrStatic-snrDirect) > 3 {
		t.Errorf("static multipath moved SNR too much: %.1f vs %.1f dB", snrStatic, snrDirect)
	}
	// The flutter sidebands are discrete, so the median-based shelf
	// moves by a dB or two at these echo amplitudes — the direction is
	// what matters: time variation, not the echoes themselves, is what
	// costs SNR.
	if snrFlutter >= snrDirect-1 {
		t.Errorf("fluttering multipath did not degrade measured SNR: %.1f vs %.1f dB",
			snrFlutter, snrDirect)
	}
	if snrFlutter >= snrStatic-1 {
		t.Errorf("flutter no worse than static: %.1f vs %.1f dB", snrFlutter, snrStatic)
	}
}
