package biw

import (
	"math"

	"repro/internal/sim"
)

// Structural multipath. A vibration launched into the BiW does not take
// one path: it reverberates through ribs, seams and panel boundaries,
// arriving as a dense train of echoes. For communication this shows up
// as a spectral shelf around the backscatter tone that scales *with*
// the signal — the physical basis of the clutter-limited SNR model in
// Channel (see the calibration note there).
//
// Multipath synthesizes an echo profile and applies it to baseband
// waveforms, so the dsp experiments can demonstrate the mechanism
// rather than assume it.

// Echo is one discrete arrival.
type Echo struct {
	DelaySeconds   float64
	AmplitudeRatio float64 // relative to the direct path (1.0)
}

// Multipath is a BiW reverberation profile.
type Multipath struct {
	Echoes []Echo
}

// NewMultipath draws a dense exponential-decay echo profile: count
// echoes over spreadSeconds, amplitudes decaying with the structure's
// reverberation constant and randomized signs (phase inversions at
// boundaries).
func NewMultipath(count int, spreadSeconds, decaySeconds float64, rng *sim.Rand) *Multipath {
	if count < 0 {
		count = 0
	}
	m := &Multipath{}
	for i := 0; i < count; i++ {
		d := rng.Float64() * spreadSeconds
		a := math.Exp(-d/decaySeconds) * (0.1 + 0.4*rng.Float64())
		if rng.Bool(0.5) {
			a = -a
		}
		m.Echoes = append(m.Echoes, Echo{DelaySeconds: d, AmplitudeRatio: a})
	}
	return m
}

// DefaultMultipath returns a profile representative of a welded steel
// floor assembly: ~20 significant echoes spread over 2 ms with a
// 0.8 ms reverberation constant.
func DefaultMultipath(rng *sim.Rand) *Multipath {
	return NewMultipath(20, 2e-3, 0.8e-3, rng)
}

// Apply convolves a baseband signal (sample rate fsHz) with the direct
// path plus the echo train.
func (m *Multipath) Apply(signal []float64, fsHz float64) []float64 {
	out := make([]float64, len(signal))
	copy(out, signal)
	for _, e := range m.Echoes {
		lag := int(e.DelaySeconds * fsHz)
		if lag <= 0 || lag >= len(signal) {
			continue
		}
		for i := lag; i < len(signal); i++ {
			out[i] += e.AmplitudeRatio * signal[i-lag]
		}
	}
	return out
}

// ApplyTimeVarying convolves the signal with the echo train while the
// echo amplitudes flutter slowly (structural micro-motion at flutterHz
// with relative depth), which is what actually creates the
// signal-proportional spectral shelf around the backscatter tone: a
// static channel preserves the tone's periodicity, a fluttering one
// smears sidebands into the surrounding band.
func (m *Multipath) ApplyTimeVarying(signal []float64, fsHz, flutterHz, depth float64, rng *sim.Rand) []float64 {
	out := make([]float64, len(signal))
	copy(out, signal)
	for _, e := range m.Echoes {
		lag := int(e.DelaySeconds * fsHz)
		if lag <= 0 || lag >= len(signal) {
			continue
		}
		// Each echo flutters with its own random phase and a rate
		// scattered around flutterHz (different panels move at
		// different modal frequencies).
		phase := rng.Float64() * 2 * math.Pi
		f := flutterHz * (0.5 + rng.Float64())
		for i := lag; i < len(signal); i++ {
			wobble := 1 + depth*math.Sin(2*math.Pi*f*float64(i)/fsHz+phase)
			out[i] += e.AmplitudeRatio * wobble * signal[i-lag]
		}
	}
	return out
}

// EnergyRatio returns the echo-train energy relative to the direct
// path — a rough clutter-to-signal figure.
func (m *Multipath) EnergyRatio() float64 {
	var e float64
	for _, echo := range m.Echoes {
		e += echo.AmplitudeRatio * echo.AmplitudeRatio
	}
	return e
}
