package core

import (
	"strconv"
	"sync"

	"repro/internal/mac"
)

// factorCacheSize bounds the config LRU. Appendix C style sweeps touch
// a handful of (periods, N) configs; 16 keeps every realistic sweep
// fully cached while bounding memory for adversarial callers.
const factorCacheSize = 16

var factorCache = struct {
	sync.Mutex
	entries map[string]*Factorization
	order   []string // LRU order: least recent first
	builds  uint64
	hits    uint64
}{entries: make(map[string]*Factorization)}

// factorKey is the canonical config encoding: the exact period
// sequence (order preserved — it fixes state numbering) plus the NACK
// threshold.
func factorKey(periods []mac.Period, nackThreshold int) string {
	buf := make([]byte, 0, 4*len(periods)+8)
	for _, p := range periods {
		buf = strconv.AppendInt(buf, int64(p), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(nackThreshold), 10)
	return string(buf)
}

// ForConfig returns the shared factorization for (periods,
// nackThreshold), enumerating, verifying and factoring the chain on
// first use and serving an LRU cache afterwards. Monte Carlo sweeps
// that re-derive the analytical expectation per trial hit the cache and
// reuse one factorization (and its memoized solve) instead of
// re-enumerating the chain every time. Build failures are returned and
// not cached. Safe for concurrent use.
//
//alloc:hot sweep-loop cache hit must stay key-build plus map lookup
func ForConfig(periods []mac.Period, nackThreshold int) (*Factorization, error) {
	key := factorKey(periods, nackThreshold)
	factorCache.Lock()
	if f, ok := factorCache.entries[key]; ok {
		factorCache.hits++
		touchKey(key)
		factorCache.Unlock()
		return f, nil
	}
	factorCache.Unlock()

	// Build outside the lock: enumeration is the expensive part and
	// independent configs should not serialize on it. A racing build of
	// the same key is wasted work, not an error — first store wins.
	m, err := NewModel(periods, nackThreshold)
	if err != nil {
		return nil, err
	}
	f, err := m.Factor()
	if err != nil {
		return nil, err
	}

	factorCache.Lock()
	defer factorCache.Unlock()
	if prior, ok := factorCache.entries[key]; ok {
		factorCache.hits++
		touchKey(key)
		return prior, nil
	}
	factorCache.builds++
	factorCache.entries[key] = f
	factorCache.order = append(factorCache.order, key)
	if len(factorCache.order) > factorCacheSize {
		evict := factorCache.order[0]
		factorCache.order = factorCache.order[1:]
		delete(factorCache.entries, evict)
	}
	return f, nil
}

// touchKey moves key to the most-recent end; callers hold the lock.
func touchKey(key string) {
	for i, k := range factorCache.order {
		if k == key {
			copy(factorCache.order[i:], factorCache.order[i+1:])
			factorCache.order[len(factorCache.order)-1] = key
			return
		}
	}
}

// FactorCacheStats reports how many factorizations were built versus
// served from cache since process start (tests assert reuse with it).
func FactorCacheStats() (builds, hits uint64) {
	factorCache.Lock()
	defer factorCache.Unlock()
	return factorCache.builds, factorCache.hits
}
