package core

import (
	"strings"
	"testing"

	"repro/internal/mac"
)

func newModel(t *testing.T, periods ...int) *Model {
	t.Helper()
	ps := make([]mac.Period, len(periods))
	for i, p := range periods {
		ps[i] = mac.Period(p)
	}
	m, err := NewModel(ps, mac.DefaultNackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, 3); err == nil {
		t.Error("empty periods accepted")
	}
	if _, err := NewModel([]mac.Period{2, 2, 2}, 3); err == nil {
		t.Error("over-capacity accepted")
	}
	if _, err := NewModel([]mac.Period{3}, 3); err == nil {
		t.Error("invalid period accepted")
	}
	if _, err := NewModel(make([]mac.Period, MaxModelTags+1), 3); err == nil {
		t.Error("too many tags accepted")
	}
}

func TestSingleTagChain(t *testing.T) {
	m := newModel(t, 2)
	// One tag, period 2: states = phase(2) x (settled? x offset(2) x
	// nacks) — small and fully absorbing-reachable.
	if m.NumStates() == 0 {
		t.Fatal("no states")
	}
	if err := m.VerifyLemma1(); err != nil {
		t.Error(err)
	}
	if err := m.VerifyLemma2(); err != nil {
		t.Error(err)
	}
	if err := m.VerifyReachability(); err != nil {
		t.Error(err)
	}
	mean, worst, err := m.ExpectedAbsorptionSlots()
	if err != nil {
		t.Fatal(err)
	}
	// A lone tag settles on its first transmission: expected time is
	// within one period of the first matching slot.
	if mean <= 0 || mean > 4 {
		t.Errorf("mean absorption = %v slots", mean)
	}
	if worst < mean {
		t.Errorf("worst %v < mean %v", worst, mean)
	}
}

// TestAppendixCLemmas verifies Lemmas 1-3 and Theorem 4 mechanically on
// several small networks, including full utilization.
func TestAppendixCLemmas(t *testing.T) {
	cases := [][]int{
		{2},
		{2, 2},       // full utilization, two tags
		{2, 4, 4},    // full utilization, mixed periods
		{4, 4},       // half utilization
		{4, 4, 4, 4}, // full utilization, four tags
	}
	for _, periods := range cases {
		m := newModel(t, periods...)
		if err := m.VerifyLemma1(); err != nil {
			t.Errorf("%v: Lemma 1: %v", periods, err)
		}
		if err := m.VerifyLemma2(); err != nil {
			t.Errorf("%v: Lemma 2: %v", periods, err)
		}
		if err := m.VerifyReachability(); err != nil {
			t.Errorf("%v: Lemma 3: %v", periods, err)
		}
	}
}

func TestAbsorbingStatesAreConflictFree(t *testing.T) {
	m := newModel(t, 2, 4, 4)
	abs := m.AbsorbingStates()
	if len(abs) == 0 {
		t.Fatal("no absorbing states at full utilization")
	}
	for _, id := range abs {
		s := m.StateByID(id)
		if !m.IsAbsorbing(s) {
			t.Fatal("AbsorbingStates returned non-absorbing state")
		}
	}
}

func TestExpectedAbsorptionGrowsWithUtilization(t *testing.T) {
	low := newModel(t, 4, 4) // U = 0.5
	high := newModel(t, 2, 4, 4)
	meanLow, _, err := low.ExpectedAbsorptionSlots()
	if err != nil {
		t.Fatal(err)
	}
	meanHigh, _, err := high.ExpectedAbsorptionSlots()
	if err != nil {
		t.Fatal(err)
	}
	if meanHigh <= meanLow {
		t.Errorf("full utilization (%v slots) should converge slower than half (%v)",
			meanHigh, meanLow)
	}
}

// TestModelMatchesSimulator cross-checks the exact expected absorption
// time against the executable protocol's Monte Carlo average: the
// engineering twin (mac.SlotSim) and the formal model must agree.
func TestModelMatchesSimulator(t *testing.T) {
	periods := []mac.Period{2, 4, 4}
	m, err := NewModel(periods, mac.DefaultNackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := m.ExpectedAbsorptionSlots()
	if err != nil {
		t.Fatal(err)
	}
	// Monte Carlo over the simulator: absorption = all tags settled
	// (measure the first all-settled slot, comparable to the model's
	// absorption definition).
	const trials = 400
	var sum float64
	for seed := 0; seed < trials; seed++ {
		s, err := mac.NewSlotSim(mac.SlotSimConfig{
			Pattern: mac.Pattern{Periods: periods},
			Seed:    uint64(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		slots := 0
		for ; slots < 10_000; slots++ {
			s.Step()
			if s.AllSettled() {
				break
			}
		}
		sum += float64(slots)
	}
	mc := sum / trials
	// The simulator's reader tracks a little more state than the model
	// (eviction, belief staleness), so allow a generous band; the two
	// must still agree on the scale.
	if mc < exact/3 || mc > exact*3 {
		t.Errorf("simulator mean %.1f vs exact %.1f slots", mc, exact)
	}
}

func TestDescribe(t *testing.T) {
	m := newModel(t, 4, 2)
	s := m.Describe()
	if !strings.Contains(s, "states=") || !strings.Contains(s, "absorbing=") {
		t.Errorf("describe = %q", s)
	}
}

// TestTransitionProbabilitiesSumToOne is a structural sanity check on
// the enumerated chain.
func TestTransitionProbabilitiesSumToOne(t *testing.T) {
	m := newModel(t, 2, 4)
	for id := 0; id < m.NumStates(); id++ {
		var sum float64
		for _, p := range m.trans[id] {
			if p < 0 {
				t.Fatal("negative probability")
			}
			sum += p
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("state %d outgoing mass %v", id, sum)
		}
	}
}

// TestModelDeterministicEnumeration guards against map-order dependence
// in state numbering.
func TestModelDeterministicEnumeration(t *testing.T) {
	a := newModel(t, 2, 4, 4)
	b := newModel(t, 2, 4, 4)
	if a.NumStates() != b.NumStates() {
		t.Fatalf("state counts differ: %d vs %d", a.NumStates(), b.NumStates())
	}
	ea, _, err := a.ExpectedAbsorptionSlots()
	if err != nil {
		t.Fatal(err)
	}
	eb, _, err := b.ExpectedAbsorptionSlots()
	if err != nil {
		t.Fatal(err)
	}
	if ea != eb {
		t.Errorf("expected times differ: %v vs %v", ea, eb)
	}
}
