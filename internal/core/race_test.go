//go:build race

package core

// raceEnabled reports that this test binary runs under the race
// detector, where the large chain-state enumerations are ~20x slower
// and would blow the package test timeout on small machines.
const raceEnabled = true
