package core
