// Package core implements the paper's formal convergence model
// (Appendix C): the distributed slot allocation as an absorbing Markov
// chain. Each network state captures every tag's protocol state
// (MIGRATE/SETTLE), slot offset and NACK counter, plus the global slot
// phase; transitions follow the Fig. 7 state machine with uniform
// random offset re-selection. The package enumerates the exact chain
// for small networks and verifies the paper's three claims
// mechanically:
//
//	Lemma 1/2: states with all tags settled and conflict-free are
//	           absorbing;
//	Lemma 3:   every state reaches an absorbing state with positive
//	           probability (hence, by finiteness, with probability 1);
//	Theorem 4: the chain is absorbing; expected absorption times are
//	           computable by solving (I-Q)t = 1.
//
// The executable protocol in internal/mac is the engineering twin of
// this model; property tests cross-check the two.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mac"
)

// TagState is one tag's protocol configuration x_i = (z_i, a_i, c_i).
type TagState struct {
	Settled bool
	Offset  uint8
	Nacks   uint8
}

// State is the network configuration: the global slot phase plus every
// tag's state. States are comparable map keys via their encoding.
type State struct {
	Phase uint8
	Tags  [MaxModelTags]TagState
}

// MaxModelTags bounds the exact model; the state space grows as
// (2*p*N)^T * lcm(p), so exact analysis is for small T.
const MaxModelTags = 4

// Model is the enumerated chain for one period assignment.
type Model struct {
	Periods []mac.Period
	// NackThreshold is N from Fig. 7.
	NackThreshold uint8
	// Hyper is lcm(periods) — the slot phase space.
	Hyper uint8

	states map[State]int
	list   []State
	// trans[i] is the sparse outgoing distribution of state i.
	trans []map[int]float64
}

// NewModel enumerates the full reachable chain for the given periods.
func NewModel(periods []mac.Period, nackThreshold int) (*Model, error) {
	if len(periods) == 0 || len(periods) > MaxModelTags {
		return nil, fmt.Errorf("core: model supports 1..%d tags, got %d", MaxModelTags, len(periods))
	}
	hyper := 1
	for _, p := range periods {
		if !mac.ValidPeriod(p) {
			return nil, fmt.Errorf("core: invalid period %d", p)
		}
		if int(p) > hyper {
			hyper = int(p)
		}
	}
	pt := mac.Pattern{Periods: periods}
	if pt.Utilization() > 1+1e-12 {
		return nil, fmt.Errorf("core: utilization %v exceeds capacity", pt.Utilization())
	}
	m := &Model{
		Periods:       periods,
		NackThreshold: uint8(nackThreshold),
		Hyper:         uint8(hyper),
		states:        make(map[State]int),
	}
	m.enumerate()
	return m, nil
}

// initialStates returns all post-RESET configurations: phase 0, every
// tag migrating with any offset and zero NACKs.
func (m *Model) initialStates() []State {
	var out []State
	var rec func(i int, st State)
	rec = func(i int, st State) {
		if i == len(m.Periods) {
			out = append(out, st)
			return
		}
		for a := 0; a < int(m.Periods[i]); a++ {
			st.Tags[i] = TagState{Settled: false, Offset: uint8(a)}
			rec(i+1, st)
		}
	}
	rec(0, State{Phase: 0})
	return out
}

// enumerate explores the reachable state space breadth-first, building
// the sparse transition distributions.
func (m *Model) enumerate() {
	var queue []int
	add := func(s State) int {
		if id, ok := m.states[s]; ok {
			return id
		}
		id := len(m.list)
		m.states[s] = id
		m.list = append(m.list, s)
		m.trans = append(m.trans, nil)
		queue = append(queue, id)
		return id
	}
	for _, s := range m.initialStates() {
		add(s)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		dist := m.step(m.list[id])
		// Assign successor ids in sorted state order, not map iteration
		// order: ids fix the float summation order in the absorption
		// solver, so map-ordered numbering made expected times differ
		// in the last ulp between two identically-built models.
		succ := make([]State, 0, len(dist))
		for s := range dist {
			succ = append(succ, s)
		}
		sort.Slice(succ, func(i, j int) bool { return stateLess(succ[i], succ[j]) })
		out := make(map[int]float64, len(dist))
		for _, s := range succ {
			out[add(s)] += dist[s]
		}
		m.trans[id] = out
	}
}

// stateLess is a total order on states (phase, then per-tag fields),
// used only to make enumeration order deterministic.
func stateLess(a, b State) bool {
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	for i := range a.Tags {
		at, bt := a.Tags[i], b.Tags[i]
		if at.Settled != bt.Settled {
			return !at.Settled
		}
		if at.Offset != bt.Offset {
			return at.Offset < bt.Offset
		}
		if at.Nacks != bt.Nacks {
			return at.Nacks < bt.Nacks
		}
	}
	return false
}

// transmitters returns the indices of tags firing at the state's phase.
func (m *Model) transmitters(s State) []int {
	var tx []int
	for i, p := range m.Periods {
		if int(s.Phase)%int(p) == int(s.Tags[i].Offset) {
			tx = append(tx, i)
		}
	}
	return tx
}

// conflictFree reports whether the settled tags' classes are pairwise
// conflict-free and tag i's candidate class avoids them all.
func (m *Model) soloCompatible(s State, i int) bool {
	cand := mac.Assignment{Period: m.Periods[i], Offset: int(s.Tags[i].Offset)}
	for j, t := range s.Tags[:len(m.Periods)] {
		if j == i || !t.Settled {
			continue
		}
		other := mac.Assignment{Period: m.Periods[j], Offset: int(t.Offset)}
		if cand.Conflicts(other) {
			return false
		}
	}
	return true
}

// step returns the one-slot transition distribution from s.
func (m *Model) step(s State) map[State]float64 {
	tx := m.transmitters(s)
	nextPhase := uint8((int(s.Phase) + 1) % int(m.Hyper))

	// Determine per-tag outcomes. Only transmitters react; the reader
	// ACKs a solo transmitter iff settling it there cannot collide with
	// an already-settled tag (the Sec. 5.6 veto, which Lemma 1 relies
	// on).
	type outcome int
	const (
		idle outcome = iota
		acked
		nacked
	)
	out := make([]outcome, len(m.Periods))
	if len(tx) == 1 {
		if m.soloCompatible(s, tx[0]) {
			out[tx[0]] = acked
		} else {
			out[tx[0]] = nacked
		}
	} else {
		for _, i := range tx {
			out[i] = nacked
		}
	}

	// Expand the product distribution over randomized offsets.
	dist := map[State]float64{}
	var rec func(i int, st State, prob float64)
	rec = func(i int, st State, prob float64) {
		if i == len(m.Periods) {
			st.Phase = nextPhase
			dist[st] += prob
			return
		}
		cur := s.Tags[i]
		switch out[i] {
		case idle:
			st.Tags[i] = cur
			rec(i+1, st, prob)
		case acked:
			st.Tags[i] = TagState{Settled: true, Offset: cur.Offset, Nacks: 0}
			rec(i+1, st, prob)
		case nacked:
			if cur.Settled && cur.Nacks+1 < m.NackThreshold {
				st.Tags[i] = TagState{Settled: true, Offset: cur.Offset, Nacks: cur.Nacks + 1}
				rec(i+1, st, prob)
				return
			}
			// Migrate: uniform re-selection over the period.
			p := int(m.Periods[i])
			for a := 0; a < p; a++ {
				st.Tags[i] = TagState{Settled: false, Offset: uint8(a)}
				rec(i+1, st, prob/float64(p))
			}
		}
	}
	rec(0, State{}, 1.0)
	return dist
}

// NumStates returns the reachable state count.
func (m *Model) NumStates() int { return len(m.list) }

// IsAbsorbing implements Definition 2: all tags settled (which, with
// the veto in place, implies a conflict-free schedule — Lemma 1).
func (m *Model) IsAbsorbing(s State) bool {
	for i := range m.Periods {
		if !s.Tags[i].Settled {
			return false
		}
	}
	return true
}

// AbsorbingStates lists the ids of absorbing states.
func (m *Model) AbsorbingStates() []int {
	var out []int
	for id, s := range m.list {
		if m.IsAbsorbing(s) {
			out = append(out, id)
		}
	}
	return out
}

// StateByID returns the state for an id.
func (m *Model) StateByID(id int) State { return m.list[id] }

// VerifyLemma1 checks that every reachable all-settled state has a
// pairwise conflict-free schedule.
func (m *Model) VerifyLemma1() error {
	for _, id := range m.AbsorbingStates() {
		s := m.list[id]
		var as []mac.Assignment
		for i, p := range m.Periods {
			as = append(as, mac.Assignment{Period: p, Offset: int(s.Tags[i].Offset)})
		}
		if err := mac.VerifySchedule(as); err != nil {
			return fmt.Errorf("core: all-settled state %d collides: %w", id, err)
		}
	}
	return nil
}

// VerifyLemma2 checks that absorbing states only transition among
// absorbing states (settled tags never leave SETTLE under perfect
// links).
func (m *Model) VerifyLemma2() error {
	for _, id := range m.AbsorbingStates() {
		// Sorted successors: the reported leak must not depend on map
		// iteration order when several transitions violate the lemma.
		nexts := make([]int, 0, len(m.trans[id]))
		for next := range m.trans[id] {
			nexts = append(nexts, next)
		}
		sort.Ints(nexts)
		for _, next := range nexts {
			if m.trans[id][next] > 0 && !m.IsAbsorbing(m.list[next]) {
				return fmt.Errorf("core: absorbing state %d leaks to transient %d", id, next)
			}
		}
	}
	return nil
}

// VerifyReachability checks Lemma 3: from every reachable state there
// is a path of positive probability to an absorbing state.
func (m *Model) VerifyReachability() error {
	// Reverse-BFS from absorbing states.
	reach := make([]bool, len(m.list))
	rev := make([][]int, len(m.list))
	for from, dist := range m.trans {
		for to, p := range dist {
			if p > 0 {
				rev[to] = append(rev[to], from)
			}
		}
	}
	var queue []int
	for _, id := range m.AbsorbingStates() {
		reach[id] = true
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, from := range rev[id] {
			if !reach[from] {
				reach[from] = true
				queue = append(queue, from)
			}
		}
	}
	for id, ok := range reach {
		if !ok {
			return fmt.Errorf("core: state %d cannot reach any absorbing state", id)
		}
	}
	return nil
}

// edge is one flattened transition (used by the factored solver).
type edge struct {
	to int
	p  float64
}

// Factorization is the solver-ready form of a model's transition
// structure: reachability verified (Lemma 3), every sparse row
// flattened into a to-sorted edge list, absorbing states flagged, and
// the initial-distribution ids resolved — all computed exactly once per
// config. The expensive value iteration runs at most once (memoized)
// on reusable vectors, so sweeps that query the same config across many
// trials pay for one factor + one solve and then read a cached pair.
// Safe for concurrent use.
type Factorization struct {
	model *Model

	rows      [][]edge
	absorbing []bool
	initIDs   []int

	mu      sync.Mutex
	t, next []float64 // iteration vectors, reused
	solved  bool
	mean    float64
	worst   float64
}

// Factor verifies reachability and flattens the chain into a
// Factorization. Each row is sorted by successor id: float addition is
// order-sensitive, so summing in map iteration order would perturb the
// result in the last ulp from run to run (and the slice walk is far
// cheaper inside the million-iteration loop).
func (m *Model) Factor() (*Factorization, error) {
	if err := m.VerifyReachability(); err != nil {
		return nil, err
	}
	f := &Factorization{
		model:     m,
		rows:      make([][]edge, len(m.list)),
		absorbing: make([]bool, len(m.list)),
		t:         make([]float64, len(m.list)),
		next:      make([]float64, len(m.list)),
	}
	for id := range m.trans {
		row := make([]edge, 0, len(m.trans[id]))
		for to, p := range m.trans[id] {
			row = append(row, edge{to, p})
		}
		sort.Slice(row, func(i, j int) bool { return row[i].to < row[j].to })
		f.rows[id] = row
		f.absorbing[id] = m.IsAbsorbing(m.list[id])
	}
	for _, s := range m.initialStates() {
		f.initIDs = append(f.initIDs, m.states[s])
	}
	return f, nil
}

// ExpectedAbsorptionSlots solves (I-Q)t = 1 by value iteration on the
// factored rows and returns the expected slots-to-absorption from the
// uniform post-RESET initial distribution, plus the worst single
// transient state. The solve runs once; later calls return the
// memoized pair without touching the allocator.
func (f *Factorization) ExpectedAbsorptionSlots() (mean, worst float64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.solved {
		return f.mean, f.worst, nil
	}
	t, next := f.t, f.next
	for i := range t {
		t[i] = 0
		next[i] = 0
	}
	for iter := 0; iter < 1_000_000; iter++ {
		var delta float64
		for id := range f.rows {
			if f.absorbing[id] {
				next[id] = 0
				continue
			}
			v := 1.0
			for _, e := range f.rows[id] {
				v += e.p * t[e.to]
			}
			if d := v - t[id]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
			next[id] = v
		}
		t, next = next, t
		if delta < 1e-10 {
			break
		}
	}
	var sum float64
	for _, id := range f.initIDs {
		sum += t[id]
	}
	worstV := 0.0
	for id := range t {
		if t[id] > worstV {
			worstV = t[id]
		}
	}
	f.mean = sum / float64(len(f.initIDs))
	f.worst = worstV
	f.solved = true
	return f.mean, f.worst, nil
}

// Model returns the enumerated chain this factorization was built from.
func (f *Factorization) Model() *Model { return f.model }

// ExpectedAbsorptionSlots is the unfactored entry point: it factors the
// chain and solves, returning the same values (bit-identically) as the
// pre-factorization implementation. Sweeps should prefer ForConfig,
// which caches the factorization across trials.
func (m *Model) ExpectedAbsorptionSlots() (mean, worst float64, err error) {
	f, err := m.Factor()
	if err != nil {
		return 0, 0, err
	}
	return f.ExpectedAbsorptionSlots()
}

// Describe returns a short human-readable model summary.
func (m *Model) Describe() string {
	ps := make([]int, len(m.Periods))
	for i, p := range m.Periods {
		ps[i] = int(p)
	}
	sort.Ints(ps)
	return fmt.Sprintf("core: periods=%v N=%d states=%d absorbing=%d",
		ps, m.NackThreshold, m.NumStates(), len(m.AbsorbingStates()))
}
