package core

import (
	"testing"

	"repro/internal/mac"
)

// The factored solver must return exactly what the enumerate-and-solve
// path returns — the Appendix C tables may not move by a single bit.
func TestFactoredSolveMatchesModel(t *testing.T) {
	cases := [][]mac.Period{
		{4, 4},
		{4, 8, 8},
		{8, 8, 8, 8},
		{4, 4, 8, 16},
	}
	if raceEnabled {
		// The two large enumerations take minutes each under race
		// instrumentation; the small configs still exercise the full
		// factored-vs-enumerated equality.
		cases = cases[:2]
	}
	for _, ps := range cases {
		m, err := NewModel(ps, mac.DefaultNackThreshold)
		if err != nil {
			t.Fatal(err)
		}
		wantMean, wantWorst, err := m.ExpectedAbsorptionSlots()
		if err != nil {
			t.Fatal(err)
		}
		f, err := ForConfig(ps, mac.DefaultNackThreshold)
		if err != nil {
			t.Fatal(err)
		}
		gotMean, gotWorst, err := f.ExpectedAbsorptionSlots()
		if err != nil {
			t.Fatal(err)
		}
		if gotMean != wantMean || gotWorst != wantWorst {
			t.Fatalf("periods %v: factored (%v, %v) != model (%v, %v)",
				ps, gotMean, gotWorst, wantMean, wantWorst)
		}
	}
}

// Repeated ForConfig calls for the same config must reuse one
// factorization (the ISSUE 7 reuse counter assertion) and the cached
// solve must not allocate.
func TestForConfigReusesFactorization(t *testing.T) {
	ps := []mac.Period{4, 8, 8}
	f0, err := ForConfig(ps, mac.DefaultNackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f0.ExpectedAbsorptionSlots(); err != nil {
		t.Fatal(err)
	}
	builds0, hits0 := FactorCacheStats()
	for i := 0; i < 25; i++ {
		f, err := ForConfig(ps, mac.DefaultNackThreshold)
		if err != nil {
			t.Fatal(err)
		}
		if f != f0 {
			t.Fatal("ForConfig returned a different factorization for the same config")
		}
	}
	builds1, hits1 := FactorCacheStats()
	if builds1 != builds0 {
		t.Fatalf("repeated ForConfig rebuilt the factorization: builds %d -> %d", builds0, builds1)
	}
	if hits1 != hits0+25 {
		t.Fatalf("expected 25 cache hits, got %d", hits1-hits0)
	}

	n := testing.AllocsPerRun(100, func() {
		if _, _, err := f0.ExpectedAbsorptionSlots(); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("memoized solve allocates %v per run, want 0", n)
	}
}

// Distinct configs get distinct factorizations and the LRU keeps them
// both live across interleaved access.
func TestForConfigDistinguishesConfigs(t *testing.T) {
	a, err := ForConfig([]mac.Period{4, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForConfig([]mac.Period{4, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ForConfig([]mac.Period{4, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == c || b == c {
		t.Fatal("distinct configs shared a factorization")
	}
	a2, err := ForConfig([]mac.Period{4, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("interleaved access evicted a live config")
	}
	if _, err := ForConfig([]mac.Period{3, 4}, 3); err == nil {
		t.Fatal("invalid period must not be cached as a success")
	}
}
