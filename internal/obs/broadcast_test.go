package obs

import (
	"sync"
	"testing"
)

// TestBroadcasterFanOut checks that every subscriber sees every event,
// in emit order, when buffers are large enough.
func TestBroadcasterFanOut(t *testing.T) {
	b := NewBroadcaster()
	const events = 100
	subs := []*Subscription{b.Subscribe(events), b.Subscribe(events), b.Subscribe(events)}
	for i := 0; i < events; i++ {
		b.Emit(Event{Kind: KindJobFinish, Job: i})
	}
	b.Close()
	for si, sub := range subs {
		want := 0
		for ev := range sub.C {
			if ev.Job != want {
				t.Fatalf("subscriber %d: event %d out of order (got job %d)", si, want, ev.Job)
			}
			want++
		}
		if want != events {
			t.Errorf("subscriber %d received %d/%d events", si, want, events)
		}
		if d := sub.Dropped(); d != 0 {
			t.Errorf("subscriber %d dropped %d events with a big buffer", si, d)
		}
	}
}

// TestBroadcasterSlowReaderDrops checks the drop policy: a subscriber
// that never reads loses events beyond its buffer, with an accurate
// drop count, while a fast sibling still gets everything.
func TestBroadcasterSlowReaderDrops(t *testing.T) {
	b := NewBroadcaster()
	slow := b.Subscribe(4)
	fast := b.Subscribe(64)
	const events = 64
	for i := 0; i < events; i++ {
		b.Emit(Event{Kind: KindJobStart, Job: i})
	}
	if got := slow.Dropped(); got != events-4 {
		t.Errorf("slow subscriber dropped %d, want %d", got, events-4)
	}
	if got := fast.Dropped(); got != 0 {
		t.Errorf("fast subscriber dropped %d, want 0", got)
	}
	b.Close()
	// The slow reader still receives its buffered prefix in order.
	want := 0
	for ev := range slow.C {
		if ev.Job != want {
			t.Fatalf("slow subscriber: got job %d, want %d", ev.Job, want)
		}
		want++
	}
	if want != 4 {
		t.Errorf("slow subscriber drained %d buffered events, want 4", want)
	}
}

// TestBroadcasterSubscribeAfterClose pins the shutdown contract: a
// late subscription is returned already closed instead of deadlocking.
func TestBroadcasterSubscribeAfterClose(t *testing.T) {
	b := NewBroadcaster()
	b.Close()
	b.Close() // idempotent
	sub := b.Subscribe(1)
	if _, ok := <-sub.C; ok {
		t.Fatal("subscription on a closed broadcaster delivered an event")
	}
	b.Emit(Event{Kind: KindJobStart}) // discarded, must not panic
}

// TestBroadcasterConcurrent hammers Emit, Subscribe and both Close
// paths from many goroutines; run under -race (make race / CI) this is
// the data-race regression test for the multi-subscriber fan-out.
func TestBroadcasterConcurrent(t *testing.T) {
	b := NewBroadcaster()
	const (
		emitters  = 4
		churners  = 4
		perEmit   = 500
		perChurn  = 50
		residents = 3
	)

	var wg sync.WaitGroup
	// Resident subscribers drain continuously for the whole test.
	for i := 0; i < residents; i++ {
		sub := b.Subscribe(16)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range sub.C {
			}
		}()
	}
	// Churners subscribe, read a little, and detach, concurrently with
	// the emitters.
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perChurn; j++ {
				sub := b.Subscribe(2)
				select {
				case <-sub.C:
				default:
				}
				_ = sub.Dropped()
				sub.Close()
				sub.Close() // idempotent under race too
			}
		}()
	}
	var emitWG sync.WaitGroup
	for i := 0; i < emitters; i++ {
		emitWG.Add(1)
		go func(id int) {
			defer emitWG.Done()
			for j := 0; j < perEmit; j++ {
				b.Emit(Event{Kind: KindJobFinish, Job: id*perEmit + j})
			}
		}(i)
	}
	emitWG.Wait()
	b.Close()
	wg.Wait()
	if n := b.Subscribers(); n != 0 {
		t.Errorf("%d subscribers left after Close", n)
	}
}
