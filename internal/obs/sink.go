package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// jsonlBufSize is the JSONLSink write buffer. Before PR 10 every event
// was one unbuffered Write (a syscall per event on a file sink); now
// lines accumulate in a bufio.Writer and reach w in buffer-sized
// batches. Call Flush or Close when the run completes.
const jsonlBufSize = 64 << 10

// JSONLSink writes one JSON object per event to w, buffered. Write and
// encode errors are sticky: the first failure stops all further output
// and is reported by Err/Flush/Close, so a full disk yields a
// diagnosable error instead of a silently truncated trace. Because
// writes are buffered, a mid-stream failure may surface on a later
// Emit or on Flush rather than on the Emit that owned the bytes.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink traces to w as JSON lines. Call Close (or Flush) when
// the run completes — dropping the sink without flushing loses the
// buffered tail.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, jsonlBufSize)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Flush writes buffered lines through to w and reports the sticky
// error state.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// Close flushes and reports the first write error, if any. It does not
// close the underlying writer.
func (s *JSONLSink) Close() error { return s.Flush() }

// Err returns the first write or encode error, or nil. It does not
// flush; a clean Err after Emit only says the buffered encode
// succeeded.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MemorySink accumulates events in order; useful for tests and for
// building derived views (the arachnet-trace CSV is one).
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit implements Sink.
func (s *MemorySink) Emit(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Len returns the number of buffered events.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Events returns a copy of the buffered events.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Reset clears the buffer but keeps its capacity, so pooled per-trial
// sinks are reused without reallocating the event backing array.
func (s *MemorySink) Reset() {
	s.mu.Lock()
	s.events = s.events[:0]
	s.mu.Unlock()
}

// Drain returns the buffered events and clears the buffer, keeping
// long-running consumers (per-slot CSV rendering) memory-bounded.
func (s *MemorySink) Drain() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.events
	s.events = nil
	return out
}

// OfKind filters events, returning only those with the given kind.
func OfKind(events []Event, k Kind) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}
