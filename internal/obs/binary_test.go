package obs

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/wire"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format fixtures")

// traceFixture exercises every event kind in the vocabulary plus an
// unknown kind, with every field populated somewhere, negative ints,
// awkward floats, and empty-vs-absent slices. It doubles as the golden
// fixture corpus: testdata/trace_v1.bin is this trace frozen at wire
// version 1.
func traceFixture() []Event {
	return []Event{
		{Kind: KindSlotOpen, Slot: 1, ACK: true, Empty: false},
		{Kind: KindSlotClose, Slot: 2, TIDs: []int{3, 1, 2}, Decoded: []int{1}, Collision: true},
		{Kind: KindTagSettle, Slot: 3, TID: 7, Period: 16, Offset: 5},
		{Kind: KindTagUnsettle, Slot: 24, TID: -1, Detail: "missed"},
		{Kind: KindTagEvict, Slot: 9, TID: 4, Period: 8, Offset: 3},
		{Kind: KindCutoffOn, T: 1.5, TID: 2, Value: 2.31},
		{Kind: KindCutoffOff, T: 0.1, TID: 2, Value: -0.0625},
		{Kind: KindBrownout, T: 3.25, TID: 9, Value: 1e-6},
		{Kind: KindSimEvent, T: 12.0625, Name: "beacon"},
		{Kind: KindDecode, Slot: 5, TID: 3, Detail: "crc_fail", Value: 2},
		{Kind: KindJobStart, Job: 63, Seed: 0xdeadbeefcafe, Name: "sweep-63"},
		{Kind: KindJobFinish, Job: 63, Seed: 1, Name: "sweep-63", Detail: "ok"},
		{Kind: KindFaultInject, Slot: 11, TID: 0, Detail: "fade_start", Value: -12.5},
		{Kind: KindFaultClear, Slot: 40, Detail: "fade_end", Value: 29},
		{Kind: KindTagRejoin, Slot: 41, TID: 9, Period: 32},
		{Kind: Kind("from_the_future"), Slot: 99, Name: "forward-compat", Value: 0.3},
		{Kind: KindSlotClose}, // all-zero payload: one bitmap byte
	}
}

func TestEventRoundTripAllKinds(t *testing.T) {
	for _, want := range traceFixture() {
		want := want
		frame := AppendEvent(nil, &want)
		if len(frame) != MarshalEventSize(&want) {
			t.Fatalf("%s: frame is %d bytes, MarshalEventSize says %d", want.Kind, len(frame), MarshalEventSize(&want))
		}
		var got Event
		n, err := UnmarshalEvent(frame, &got)
		if err != nil || n != len(frame) {
			t.Fatalf("%s: UnmarshalEvent: %d, %v", want.Kind, n, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip mangled event:\n got %+v\nwant %+v", want.Kind, got, want)
		}

		// Marshal into an exact-size caller buffer yields the same bytes.
		exact := make([]byte, MarshalEventSize(&want))
		if n, err := MarshalEvent(exact, &want); err != nil || n != len(exact) {
			t.Fatalf("%s: MarshalEvent: %d, %v", want.Kind, n, err)
		}
		if !bytes.Equal(exact, frame) {
			t.Fatalf("%s: MarshalEvent bytes differ from AppendEvent", want.Kind)
		}
		if _, err := MarshalEvent(make([]byte, 2), &want); !errors.Is(err, wire.ErrShortBuffer) {
			t.Fatalf("%s: short buffer: %v", want.Kind, err)
		}
	}
}

func TestUnmarshalEventReusesScratch(t *testing.T) {
	src := Event{Kind: KindSlotClose, TIDs: []int{1, 2, 3}, Decoded: []int{2, 3}}
	frame := AppendEvent(nil, &src)
	ev := Event{TIDs: make([]int, 0, 8), Decoded: make([]int, 0, 8)}
	keepT, keepD := ev.TIDs[:1], ev.Decoded[:1]
	if _, err := UnmarshalEvent(frame, &ev); err != nil {
		t.Fatal(err)
	}
	if &keepT[0] != &ev.TIDs[0] || &keepD[0] != &ev.Decoded[0] {
		t.Fatal("decode did not reuse the caller's slice capacity")
	}
	if !reflect.DeepEqual(ev.TIDs, []int{1, 2, 3}) || !reflect.DeepEqual(ev.Decoded, []int{2, 3}) {
		t.Fatalf("reused decode wrong: %+v", ev)
	}
}

func TestUnmarshalEventHostileInput(t *testing.T) {
	var ev Event
	for _, src := range traceFixture() {
		src := src
		frame := AppendEvent(nil, &src)
		// Every possible truncation errors cleanly, never panics.
		for cut := 0; cut < len(frame); cut++ {
			if _, err := UnmarshalEvent(frame[:cut], &ev); err == nil {
				t.Fatalf("%s cut at %d decoded successfully", src.Kind, cut)
			}
		}
		// Trailing garbage inside the declared frame is refused.
		grown := AppendEvent(nil, &src)
		grown = append(grown, 0xaa)
		grown[4]++ // declared length now covers the junk byte
		if _, err := UnmarshalEvent(grown, &ev); !errors.Is(err, wire.ErrMalformed) {
			t.Fatalf("%s trailing bytes: %v, want ErrMalformed", src.Kind, err)
		}
	}

	// A non-event tag is rejected up front.
	notEvent := wire.AppendFrame(nil, wire.TagCheckpoint, []byte{0})
	if _, err := UnmarshalEvent(notEvent, &ev); !errors.Is(err, wire.ErrUnknownTag) {
		t.Fatalf("checkpoint tag: %v, want ErrUnknownTag", err)
	}

	// Unknown presence bits mean a newer field vocabulary: hard error,
	// never a silent skip.
	future := wire.AppendFrame(nil, wire.TagEventSlotOpen, wire.AppendUvarint(nil, 1<<20))
	if _, err := UnmarshalEvent(future, &ev); !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("future bits: %v, want ErrMalformed", err)
	}

	// A slice count larger than the remaining payload is refused before
	// any allocation.
	hostile := wire.AppendUvarint(nil, uint64(evTIDs))
	hostile = wire.AppendUvarint(hostile, 1<<40)
	frame := wire.AppendFrame(nil, wire.TagEventSlotClose, hostile)
	if _, err := UnmarshalEvent(frame, &ev); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("hostile slice count: %v, want ErrTruncated", err)
	}
}

func TestBinarySinkStreamRoundTrip(t *testing.T) {
	events := traceFixture()
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	tr := New(sink)
	for _, ev := range events {
		tr.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("ARWB")) {
		t.Fatalf("stream does not open with magic: % x", buf.Bytes()[:8])
	}

	er := NewEventReader(&buf)
	var got []Event
	for {
		var ev Event
		err := er.Read(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("stream round trip mangled events:\n got %+v\nwant %+v", got, events)
	}
}

func TestEventReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	sink.Emit(Event{Kind: KindSlotOpen, Slot: 1})
	sink.Emit(Event{Kind: KindSlotClose, Slot: 1, TIDs: []int{2}})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// A stream cut inside the second frame reads the first event then
	// errors (not io.EOF, not a panic).
	er := NewEventReader(bytes.NewReader(full[:len(full)-3]))
	var ev Event
	if err := er.Read(&ev); err != nil || ev.Slot != 1 {
		t.Fatalf("first event: %+v, %v", ev, err)
	}
	if err := er.Read(&ev); err == nil || err == io.EOF {
		t.Fatalf("truncated tail read as %v", err)
	}

	// An empty stream is a clean EOF; garbage is a header error.
	if err := NewEventReader(strings.NewReader("")).Read(&ev); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	if err := NewEventReader(strings.NewReader("not a trace")).Read(&ev); !errors.Is(err, wire.ErrBadHeader) {
		t.Fatalf("garbage stream: %v, want ErrBadHeader", err)
	}
}

func TestBinarySinkStickyError(t *testing.T) {
	sink := NewBinarySink(&failWriter{n: 0})
	sink.Emit(Event{Kind: KindSlotOpen})
	if sink.Flush() == nil {
		t.Fatal("write error not captured on flush")
	}
	sink.Emit(Event{Kind: KindSlotOpen}) // must not clear the error
	if sink.Err() == nil {
		t.Fatal("sticky error cleared")
	}
	if sink.Close() == nil {
		t.Fatal("close must keep reporting the sticky error")
	}
}

func TestBinarySinkEmitSteadyStateAllocs(t *testing.T) {
	// The tentpole perf contract: once the batch buffer exists, Emit is
	// an append plus an occasional batched Write — zero allocations per
	// event. The static escape baseline (arachnet-lint -alloc-gate)
	// checks the same property at compile time.
	sink := NewBinarySink(io.Discard)
	tids := []int{1, 2, 3}
	decoded := []int{2}
	ev := Event{Kind: KindSlotClose, Slot: 1, TIDs: tids, Decoded: decoded, Collision: true, Name: "steady"}
	sink.Emit(ev) // warm up
	allocs := testing.AllocsPerRun(2000, func() {
		ev.Slot++
		sink.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("BinarySink.Emit allocates %v per event in steady state, want 0", allocs)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConvertBinaryToJSONLByteIdentity(t *testing.T) {
	events := traceFixture()

	// The native JSONL trace of the run.
	var native bytes.Buffer
	js := NewJSONLSink(&native)
	for _, ev := range events {
		js.Emit(ev)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}

	// The binary trace of the same run.
	var bin bytes.Buffer
	bs := NewBinarySink(&bin)
	for _, ev := range events {
		bs.Emit(ev)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}

	// binary -> JSONL must be byte-identical to the native JSONL.
	var converted bytes.Buffer
	if err := ConvertBinaryToJSONL(bytes.NewReader(bin.Bytes()), &converted); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(converted.Bytes(), native.Bytes()) {
		t.Fatalf("converted JSONL differs from native:\n--- converted ---\n%s\n--- native ---\n%s", converted.Bytes(), native.Bytes())
	}

	// JSONL -> binary must reproduce the binary stream exactly.
	var back bytes.Buffer
	if err := ConvertJSONLToBinary(bytes.NewReader(native.Bytes()), &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), bin.Bytes()) {
		t.Fatal("JSONL->binary differs from the native binary stream")
	}

	// And a converter error path: truncated binary input errors out.
	if err := ConvertBinaryToJSONL(bytes.NewReader(bin.Bytes()[:bin.Len()-2]), io.Discard); err == nil {
		t.Fatal("truncated binary converted without error")
	}
}

// TestGoldenTraceV1 freezes the version-1 wire encoding: the committed
// fixture must decode to the committed JSONL forever, whatever the
// current encoder emits. Regenerate with -update only alongside a
// version bump.
func TestGoldenTraceV1(t *testing.T) {
	binPath := filepath.Join("testdata", "trace_v1.bin")
	jsonlPath := filepath.Join("testdata", "trace_v1.jsonl")

	if *updateGolden {
		var bin, jsonl bytes.Buffer
		bs := NewBinarySink(&bin)
		js := NewJSONLSink(&jsonl)
		for _, ev := range traceFixture() {
			bs.Emit(ev)
			js.Emit(ev)
		}
		if err := bs.Close(); err != nil {
			t.Fatal(err)
		}
		if err := js.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonlPath, jsonl.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	binData, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/obs -run TestGoldenTraceV1 -update)", err)
	}
	wantJSONL, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}

	// The committed v1 stream converts to the committed JSONL.
	var got bytes.Buffer
	if err := ConvertBinaryToJSONL(bytes.NewReader(binData), &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), wantJSONL) {
		t.Fatalf("golden v1 stream no longer decodes to its JSONL:\n%s\nwant\n%s", got.Bytes(), wantJSONL)
	}

	// The current encoder still emits the exact v1 bytes (flip this to a
	// new golden pair when minting version 2 tags).
	var reenc bytes.Buffer
	if err := ConvertJSONLToBinary(bytes.NewReader(wantJSONL), &reenc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc.Bytes(), binData) {
		t.Fatal("current encoder no longer reproduces the golden v1 stream")
	}
}

func FuzzUnmarshalEvent(f *testing.F) {
	for _, ev := range traceFixture() {
		ev := ev
		f.Add(AppendEvent(nil, &ev))
	}
	f.Add([]byte("EOP1\x01\x00\x00\x00\x00"))
	f.Add([]byte("EXX1\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var ev Event
		n, err := UnmarshalEvent(data, &ev)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// The wire format is not bijective (varints admit non-minimal
		// encodings), but one decode-encode round must be a fixed point:
		// re-encoding the decoded event, decoding, and encoding again
		// yields identical bytes. Bytes, not DeepEqual — NaN payloads
		// survive as float bits but are never equal to themselves.
		canon := AppendEvent(nil, &ev)
		var ev2 Event
		m, err := UnmarshalEvent(canon, &ev2)
		if err != nil || m != len(canon) {
			t.Fatalf("re-decode of re-encoded event failed: %d, %v", m, err)
		}
		if again := AppendEvent(nil, &ev2); !bytes.Equal(again, canon) {
			t.Fatalf("decode/encode not a fixed point:\n first %x\nsecond %x", canon, again)
		}
	})
}
