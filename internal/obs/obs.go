// Package obs is the unified observability layer: structured trace
// events and metrics shared by every simulation layer (sim engine, MAC
// state machines, energy subsystem, reader decode chain and the fleet
// pool), so single-run tracing and fleet-scale tracing speak one
// vocabulary.
//
// The design contract is zero overhead when disabled: a nil *Tracer is
// valid everywhere, Emit on it is a no-op, and hot paths guard event
// construction behind Enabled(). When enabled, events fan out to
// pluggable sinks (JSONL writer, in-memory aggregator) and optionally
// feed a Metrics registry whose snapshots are deterministic (sorted by
// name) for reproducible reports.
package obs

import "sync"

// Kind classifies a trace event. String-typed so JSONL traces are
// self-describing and new kinds never renumber old ones.
type Kind string

// The event vocabulary. Slot-granularity protocol events carry Slot;
// continuous-time events carry T (simulated seconds); fleet lifecycle
// events carry Job.
const (
	// KindSlotOpen marks a beacon opening a slot; ACK/Empty mirror the
	// feedback the beacon carries (for the slot that just ended).
	KindSlotOpen Kind = "slot_open"
	// KindSlotClose records the reader's verdict on a finished slot:
	// who transmitted, what decoded, collision flag, and the feedback
	// (ACK/EMPTY) broadcast in the next beacon.
	KindSlotClose Kind = "slot_close"
	// KindTagSettle records the reader accepting a tag's (period,
	// offset) schedule into its ledger.
	KindTagSettle Kind = "tag_settle"
	// KindTagUnsettle records the reader dropping a settled belief;
	// Detail says why ("missed" after NackThreshold expected-slot
	// misses, "evicted" when a forced migration completed).
	KindTagUnsettle Kind = "tag_unsettle"
	// KindTagEvict records the Sec. 5.6 victim selection: the reader
	// starts NACKing TID to make room for a blocked newcomer.
	KindTagEvict Kind = "tag_evict"
	// KindCutoffOn marks the hysteresis comparator closing: the
	// capacitor reached HTH and the MCU powers up (reactivation).
	KindCutoffOn Kind = "cutoff_on"
	// KindCutoffOff marks the comparator opening: the capacitor sagged
	// below LTH and the MCU loses power.
	KindCutoffOff Kind = "cutoff_off"
	// KindBrownout records a withdrawal that exhausted the
	// supercapacitor; Value is the requested energy in joules.
	KindBrownout Kind = "brownout"
	// KindSimEvent traces one discrete-event firing in the sim engine.
	KindSimEvent Kind = "sim_event"
	// KindDecode records a DSP reader-chain decode outcome; Detail is
	// "ok" or "crc_fail", Value the IQ cluster count.
	KindDecode Kind = "decode"
	// KindJobStart / KindJobFinish are the fleet pool's job lifecycle.
	KindJobStart  Kind = "job_start"
	KindJobFinish Kind = "job_finish"
	// KindFaultInject records the fault-injection engine firing: Detail
	// names the fault ("fade_start", "beacon_loss", "ack_corrupt",
	// "brownout", "outage_start", "jitter_slip"), TID the afflicted tag
	// (0 for reader-wide faults) and Value a fault-specific scalar
	// (fade depth in dB, brownout off-time in slots).
	KindFaultInject Kind = "fault_inject"
	// KindFaultClear records a burst fault process ending ("fade_end",
	// "outage_end"); Value is the burst length in slots.
	KindFaultClear Kind = "fault_clear"
	// KindTagRejoin records a browned-out tag recharging past HTH and
	// re-entering the protocol as a newcomer; Period carries its
	// transmission period for recovery-bound accounting.
	KindTagRejoin Kind = "tag_rejoin"
)

// Event is one structured trace record. It is a flat union: each kind
// populates the fields that apply and leaves the rest zero, so JSONL
// output stays compact via omitempty.
type Event struct {
	Kind Kind `json:"kind"`
	// Slot is the slot index for slot-granularity protocol events.
	Slot int `json:"slot,omitempty"`
	// T is the simulated time in seconds for continuous-time events.
	T float64 `json:"t,omitempty"`
	// TID is the tag the event concerns.
	TID int `json:"tid,omitempty"`
	// TIDs lists every tag that transmitted in the slot.
	TIDs []int `json:"tids,omitempty"`
	// Decoded lists the TIDs of CRC-valid decodes in the slot.
	Decoded []int `json:"decoded,omitempty"`
	// Collision is the reader's collision inference for the slot.
	Collision bool `json:"collision,omitempty"`
	// ACK / Empty mirror the beacon feedback flags.
	ACK   bool `json:"ack,omitempty"`
	Empty bool `json:"empty,omitempty"`
	// Period / Offset describe a schedule in settle/evict events.
	Period int `json:"period,omitempty"`
	Offset int `json:"offset,omitempty"`
	// Job is the fleet job index for lifecycle events.
	Job int `json:"job,omitempty"`
	// Seed is the job's resolved random seed.
	Seed uint64 `json:"seed,omitempty"`
	// Name labels engine events and fleet jobs.
	Name string `json:"name,omitempty"`
	// Value is a kind-specific scalar (volts, joules, seconds, ...).
	Value float64 `json:"value,omitempty"`
	// Detail is a kind-specific qualifier (status, reason, error).
	Detail string `json:"detail,omitempty"`
}

// Sink receives emitted events. Implementations must be safe for
// concurrent use: the fleet pool emits from worker goroutines.
type Sink interface {
	Emit(Event)
}

// Tracer fans events out to its sinks and (optionally) counts them in
// an attached Metrics registry. The zero-cost disabled state is a nil
// *Tracer: every method is nil-safe, so call sites need no guards
// beyond Enabled() around expensive event construction.
type Tracer struct {
	mu    sync.Mutex
	sinks []Sink
	muted map[Kind]bool
	m     *Metrics
}

// New returns a tracer over the given sinks. New() with no sinks is a
// valid metrics-only tracer once AttachMetrics is called.
func New(sinks ...Sink) *Tracer { return &Tracer{sinks: sinks} }

// Enabled reports whether Emit would do any work. Hot paths should
// guard event construction with it.
func (t *Tracer) Enabled() bool {
	return t != nil && (len(t.sinks) > 0 || t.m != nil)
}

// AttachMetrics makes the tracer count every emitted event in m under
// "events_<kind>", so a metrics snapshot doubles as an event census.
func (t *Tracer) AttachMetrics(m *Metrics) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.m = m
	t.mu.Unlock()
}

// Metrics returns the attached registry (nil when none).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m
}

// Mute suppresses the given kinds (typically the very high-volume
// KindSimEvent in event-level runs). Muted events are dropped before
// sinks and metrics see them.
func (t *Tracer) Mute(kinds ...Kind) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.muted == nil {
		t.muted = make(map[Kind]bool, len(kinds))
	}
	for _, k := range kinds {
		t.muted[k] = true
	}
}

// Emit delivers the event to every sink. Safe on a nil tracer and safe
// for concurrent use.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.sinks) == 0 && t.m == nil {
		return
	}
	if t.muted[ev.Kind] {
		return
	}
	if t.m != nil {
		t.m.Inc("events_" + string(ev.Kind))
	}
	for _, s := range t.sinks {
		s.Emit(ev)
	}
}
