package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Metrics is a registry of named counters and histograms. It is safe
// for concurrent use, and Snapshot renders everything sorted by name so
// two identical runs produce byte-identical summaries.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]uint64
	hists    map[string]*hist
}

// hist is a streaming histogram: moments plus sparse base-2 buckets
// (bucket k counts values in (2^(k-1), 2^k]), which keeps memory
// constant regardless of sample count while preserving determinism.
type hist struct {
	count    uint64
	sum      float64
	min, max float64
	buckets  map[int]uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]uint64),
		hists:    make(map[string]*hist),
	}
}

// Inc adds one to the named counter. Nil-safe.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Add adds delta to the named counter. Nil-safe.
func (m *Metrics) Add(name string, delta uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Observe records one sample in the named histogram. Nil-safe.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &hist{min: v, max: v, buckets: make(map[int]uint64)}
		m.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
	m.mu.Unlock()
}

// Counters returns a copy of the counter map — the form HTTP health
// endpoints embed directly (Go marshals map keys sorted, so the JSON
// is deterministic). Nil-safe (returns nil).
func (m *Metrics) Counters() map[string]uint64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.counters))
	for name, v := range m.counters {
		out[name] = v
	}
	return out
}

// bucketOf maps v to its base-2 bucket exponent; non-positive values
// share a single underflow bucket below any representable exponent.
func bucketOf(v float64) int {
	const underflow = math.MinInt32
	if v <= 0 {
		return underflow
	}
	return int(math.Ceil(math.Log2(v)))
}

// Bucket is one histogram cell: Count values fell in
// (UpperBound/2, UpperBound].
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// HistogramSnapshot is one histogram's deterministic summary.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is the full registry state, sorted by name.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot renders the registry deterministically: counters and
// histograms sorted by name, buckets by upper bound. Nil-safe (returns
// the zero Snapshot).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var sn Snapshot
	names := make([]string, 0, len(m.counters))
	for name := range m.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sn.Counters = append(sn.Counters, CounterSnapshot{Name: name, Value: m.counters[name]})
	}
	names = names[:0]
	for name := range m.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := m.hists[name]
		hs := HistogramSnapshot{
			Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
		}
		exps := make([]int, 0, len(h.buckets))
		for e := range h.buckets {
			exps = append(exps, e)
		}
		sort.Ints(exps)
		for _, e := range exps {
			ub := math.Exp2(float64(e))
			if e == math.MinInt32 {
				ub = 0
			}
			hs.Buckets = append(hs.Buckets, Bucket{UpperBound: ub, Count: h.buckets[e]})
		}
		sn.Histograms = append(sn.Histograms, hs)
	}
	return sn
}

// String renders the snapshot as an aligned text report.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-32s %d\n", c.Name, c.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%-32s n=%d mean=%.4g min=%.4g max=%.4g\n",
			h.Name, h.Count, h.Mean, h.Min, h.Max)
	}
	return b.String()
}
