package obs

import "sync"

// Broadcaster is a Sink that fans each event out to any number of
// concurrent subscribers. The JSONL and memory sinks assume a single
// consumer; the fleetd streaming endpoints need many — each HTTP
// client watching a job gets its own subscription, added and removed
// while workers are still emitting.
//
// Delivery policy: each subscriber owns a bounded buffer. Emit never
// blocks — a subscriber whose buffer is full has the event dropped and
// its drop counter incremented, so one stalled reader (a slow network
// client) can never back-pressure the simulation workers or starve
// the other subscribers. Per-subscriber delivery order is emit order.
type Broadcaster struct {
	mu     sync.Mutex
	subs   []*Subscription
	closed bool
}

// NewBroadcaster returns an empty broadcaster; it is immediately
// usable as a Sink.
func NewBroadcaster() *Broadcaster { return &Broadcaster{} }

// Subscription is one subscriber's view of the event stream. Receive
// from C until it is closed (by Close on either side); then check
// Dropped to learn whether the reader kept up.
type Subscription struct {
	// C delivers events in emit order. It is closed when the
	// subscription or the broadcaster closes.
	C <-chan Event

	b  *Broadcaster
	ch chan Event
	// Guarded by b.mu.
	dropped uint64
	closed  bool
}

// Subscribe registers a new subscriber with the given buffer capacity
// (minimum 1). Events emitted before Subscribe are not replayed.
// Subscribing to a closed broadcaster returns an already-closed
// subscription.
func (b *Broadcaster) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Event, buffer)
	sub := &Subscription{b: b, ch: ch, C: ch}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		sub.closed = true
		close(ch)
		return sub
	}
	b.subs = append(b.subs, sub)
	return sub
}

// Emit implements Sink: deliver to every live subscriber, dropping
// (and counting) for any whose buffer is full. Safe for concurrent use
// with Subscribe and Close.
func (b *Broadcaster) Emit(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
		}
	}
}

// Close shuts the broadcaster down: every subscription channel is
// closed (after its buffered events drain) and later Emits are
// discarded. Close is idempotent.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, sub := range b.subs {
		sub.closed = true
		close(sub.ch)
	}
	b.subs = nil
}

// Subscribers reports the current live subscriber count.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped reports how many events were discarded because this
// subscriber's buffer was full.
func (s *Subscription) Dropped() uint64 {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription and closes C. Buffered events are
// still receivable; Close is idempotent and safe concurrently with
// Emit.
func (s *Subscription) Close() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, cand := range s.b.subs {
		if cand == s {
			s.b.subs = append(s.b.subs[:i], s.b.subs[i+1:]...)
			break
		}
	}
	close(s.ch)
}
