package obs

import (
	"io"
	"testing"
)

// BenchmarkEmitDisabled measures the disabled path every hot loop pays:
// a nil tracer and the Enabled() guard. This is the cost the <5%
// BenchmarkFleetThroughput budget rides on — it must stay at a couple
// of nanoseconds.
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(Event{Kind: KindSlotClose, Slot: i})
		}
	}
}

// BenchmarkEmitNilUnguarded measures Emit called straight on a nil
// tracer (call sites that skip the Enabled guard for cheap events).
func BenchmarkEmitNilUnguarded(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSlotClose, Slot: i})
	}
}

// BenchmarkEmitMemory measures the enabled path into the in-memory
// aggregator.
func BenchmarkEmitMemory(b *testing.B) {
	mem := NewMemorySink()
	tr := New(mem)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSlotClose, Slot: i})
		if mem.Len() > 1<<16 {
			mem.Drain()
		}
	}
}

// BenchmarkEmitJSONL measures the enabled path through JSON encoding.
func BenchmarkEmitJSONL(b *testing.B) {
	tr := New(NewJSONLSink(io.Discard))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSlotClose, Slot: i, TIDs: []int{1, 2}, Collision: true})
	}
}

// BenchmarkMetricsObserve measures one histogram sample.
func BenchmarkMetricsObserve(b *testing.B) {
	m := NewMetrics()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Observe("lat", float64(i%1000)/7)
	}
}
