package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// BenchmarkEmitDisabled measures the disabled path every hot loop pays:
// a nil tracer and the Enabled() guard. This is the cost the <5%
// BenchmarkFleetThroughput budget rides on — it must stay at a couple
// of nanoseconds.
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(Event{Kind: KindSlotClose, Slot: i})
		}
	}
}

// BenchmarkEmitNilUnguarded measures Emit called straight on a nil
// tracer (call sites that skip the Enabled guard for cheap events).
func BenchmarkEmitNilUnguarded(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSlotClose, Slot: i})
	}
}

// BenchmarkEmitMemory measures the enabled path into the in-memory
// aggregator.
func BenchmarkEmitMemory(b *testing.B) {
	mem := NewMemorySink()
	tr := New(mem)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSlotClose, Slot: i})
		if mem.Len() > 1<<16 {
			mem.Drain()
		}
	}
}

// BenchmarkEmitJSONL measures the enabled path through JSON encoding.
func BenchmarkEmitJSONL(b *testing.B) {
	tr := New(NewJSONLSink(io.Discard))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSlotClose, Slot: i, TIDs: []int{1, 2}, Collision: true})
	}
}

// traceBenchMix is the steady-state event mix of a protocol run: a
// beacon open and a reader verdict per slot, with an occasional settle.
// Both encoder benchmarks pump the same mix so the comparison is
// apples to apples.
func traceBenchMix() []Event {
	return []Event{
		{Kind: KindSlotOpen, Slot: 1, ACK: true},
		{Kind: KindSlotClose, Slot: 1, TIDs: []int{3, 7}, Decoded: []int{3}, Collision: true},
		{Kind: KindSlotOpen, Slot: 2},
		{Kind: KindSlotClose, Slot: 2, TIDs: []int{5}, Decoded: []int{5}, ACK: true},
		{Kind: KindTagSettle, Slot: 2, TID: 5, Period: 16, Offset: 2},
	}
}

var (
	jsonlEncodeOnce sync.Once
	jsonlEncodeNs   float64
)

// jsonlEncodeBaseline times the buffered JSONL encoder over the bench
// mix once, cached so the binary sub-benchmark's speedup metric is
// stable across -count runs.
func jsonlEncodeBaseline(b *testing.B) float64 {
	b.Helper()
	jsonlEncodeOnce.Do(func() {
		evs := traceBenchMix()
		sink := NewJSONLSink(io.Discard)
		for i := range evs { // warm the encoder outside the timed region
			sink.Emit(evs[i])
		}
		const rounds = 20000
		start := time.Now() //lint:allow determinism-taint wall-clock measurement of the encode baseline, not simulation state
		for r := 0; r < rounds; r++ {
			for i := range evs {
				sink.Emit(evs[i])
			}
		}
		jsonlEncodeNs = float64(time.Since(start).Nanoseconds()) / float64(rounds*len(evs)) //lint:allow determinism-taint wall-clock measurement of the encode baseline, not simulation state
		_ = sink.Close()
	})
	return jsonlEncodeNs
}

// BenchmarkTraceEncode compares the two trace encoders over the same
// steady-state event mix; one op is one pass over the mix. The binary
// sub-benchmark reports "speedup-vs-jsonl" (the PR 10 floor is 5x,
// asserted by make bench-smoke) and must run at zero allocations per
// event.
func BenchmarkTraceEncode(b *testing.B) {
	evs := traceBenchMix()
	b.Run("jsonl", func(b *testing.B) {
		sink := NewJSONLSink(io.Discard)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range evs {
				sink.Emit(evs[j])
			}
		}
		b.StopTimer()
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N*len(evs))/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("binary", func(b *testing.B) {
		baseline := jsonlEncodeBaseline(b)
		sink := NewBinarySink(io.Discard)
		for j := range evs { // warm the batch buffer outside the timed region
			sink.Emit(evs[j])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range evs {
				sink.Emit(evs[j])
			}
		}
		b.StopTimer()
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
		perEvent := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(evs))
		b.ReportMetric(float64(b.N*len(evs))/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(baseline/perEvent, "speedup-vs-jsonl")
	})
}

// BenchmarkMetricsObserve measures one histogram sample.
func BenchmarkMetricsObserve(b *testing.B) {
	m := NewMetrics()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Observe("lat", float64(i%1000)/7)
	}
}
