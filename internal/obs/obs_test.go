package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{Kind: KindSlotOpen}) // must not panic
	tr.Mute(KindSimEvent)
	tr.AttachMetrics(NewMetrics())
	if tr.Metrics() != nil {
		t.Fatal("nil tracer returned metrics")
	}
}

func TestTracerNoSinksDisabled(t *testing.T) {
	tr := New()
	if tr.Enabled() {
		t.Fatal("sink-less tracer without metrics reports enabled")
	}
	tr.AttachMetrics(NewMetrics())
	if !tr.Enabled() {
		t.Fatal("metrics-only tracer reports disabled")
	}
	tr.Emit(Event{Kind: KindSlotOpen})
	sn := tr.Metrics().Snapshot()
	if len(sn.Counters) != 1 || sn.Counters[0].Name != "events_slot_open" || sn.Counters[0].Value != 1 {
		t.Fatalf("unexpected counters: %+v", sn.Counters)
	}
}

func TestMemorySinkOrderAndDrain(t *testing.T) {
	mem := NewMemorySink()
	tr := New(mem)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: KindSlotClose, Slot: i})
	}
	evs := mem.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Slot != i {
			t.Fatalf("event %d has slot %d", i, ev.Slot)
		}
	}
	if got := mem.Drain(); len(got) != 5 {
		t.Fatalf("drain returned %d", len(got))
	}
	if mem.Len() != 0 {
		t.Fatal("drain did not clear the sink")
	}
}

func TestMute(t *testing.T) {
	mem := NewMemorySink()
	tr := New(mem)
	tr.Mute(KindSimEvent)
	tr.Emit(Event{Kind: KindSimEvent})
	tr.Emit(Event{Kind: KindSlotOpen})
	evs := mem.Events()
	if len(evs) != 1 || evs[0].Kind != KindSlotOpen {
		t.Fatalf("mute failed: %+v", evs)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	tr.Emit(Event{Kind: KindTagSettle, Slot: 7, TID: 3, Period: 8, Offset: 5})
	tr.Emit(Event{Kind: KindSlotClose, Slot: 7, TIDs: []int{3}, Decoded: []int{3}, ACK: true})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindTagSettle || ev.TID != 3 || ev.Period != 8 || ev.Offset != 5 {
		t.Fatalf("round trip mangled event: %+v", ev)
	}
	// Zero fields must be omitted to keep traces compact.
	if strings.Contains(lines[0], `"ack"`) || strings.Contains(lines[0], `"tids"`) {
		t.Fatalf("zero fields serialized: %s", lines[0])
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	// Writes are buffered, so the failure surfaces on Flush (or on the
	// Emit whose encode crosses the buffer boundary), stays sticky, and
	// later Emits must not clear it.
	sink := NewJSONLSink(&failWriter{n: 0})
	sink.Emit(Event{Kind: KindSlotOpen})
	if sink.Flush() == nil {
		t.Fatal("write error not captured on flush")
	}
	sink.Emit(Event{Kind: KindSlotOpen}) // must not clear the error
	if sink.Err() == nil {
		t.Fatal("sticky error cleared")
	}
	if sink.Close() == nil {
		t.Fatal("close must keep reporting the sticky error")
	}
}

func TestJSONLSinkBuffersWrites(t *testing.T) {
	// The satellite contract: events accumulate in the buffer (no
	// syscall per event) and reach the writer on Flush.
	cw := &countWriter{}
	sink := NewJSONLSink(cw)
	for i := 0; i < 100; i++ {
		sink.Emit(Event{Kind: KindSlotClose, Slot: i})
	}
	if cw.writes != 0 {
		t.Fatalf("expected buffered writes, saw %d before flush", cw.writes)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.writes == 0 || cw.bytes == 0 {
		t.Fatal("flush wrote nothing")
	}
	lines := bytes.Count(cw.buf.Bytes(), []byte("\n"))
	if lines != 100 {
		t.Fatalf("flushed %d lines, want 100", lines)
	}
}

type countWriter struct {
	buf    bytes.Buffer
	writes int
	bytes  int
}

func (w *countWriter) Write(p []byte) (int, error) {
	w.writes++
	w.bytes += len(p)
	return w.buf.Write(p)
}

func TestMetricsSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		m := NewMetrics()
		m.Add("zeta", 3)
		m.Inc("alpha")
		m.Observe("lat", 0.5)
		m.Observe("lat", 2.0)
		m.Observe("lat", 1.5)
		m.Observe("volts", 2.31)
		return m.Snapshot()
	}
	a, b := build(), build()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("snapshots differ:\n%s\n%s", ja, jb)
	}
	if a.Counters[0].Name != "alpha" || a.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted: %+v", a.Counters)
	}
	var lat HistogramSnapshot
	for _, h := range a.Histograms {
		if h.Name == "lat" {
			lat = h
		}
	}
	if lat.Count != 3 || lat.Min != 0.5 || lat.Max != 2.0 {
		t.Fatalf("lat histogram wrong: %+v", lat)
	}
	if want := (0.5 + 2.0 + 1.5) / 3; lat.Mean != want {
		t.Fatalf("lat mean %v want %v", lat.Mean, want)
	}
	// Buckets sorted ascending by upper bound.
	for i := 1; i < len(lat.Buckets); i++ {
		if lat.Buckets[i-1].UpperBound >= lat.Buckets[i].UpperBound {
			t.Fatalf("buckets out of order: %+v", lat.Buckets)
		}
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.Inc("x")
	m.Add("x", 2)
	m.Observe("y", 1)
	if sn := m.Snapshot(); len(sn.Counters) != 0 || len(sn.Histograms) != 0 {
		t.Fatal("nil metrics produced data")
	}
}

func TestMetricsNonPositiveObservations(t *testing.T) {
	m := NewMetrics()
	m.Observe("h", 0)
	m.Observe("h", -3)
	m.Observe("h", 4)
	sn := m.Snapshot()
	h := sn.Histograms[0]
	if h.Count != 3 || h.Min != -3 || h.Max != 4 {
		t.Fatalf("histogram wrong: %+v", h)
	}
	if h.Buckets[0].UpperBound != 0 || h.Buckets[0].Count != 2 {
		t.Fatalf("underflow bucket wrong: %+v", h.Buckets)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	mem := NewMemorySink()
	tr := New(mem)
	tr.AttachMetrics(NewMetrics())
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Event{Kind: KindJobStart, Job: w*per + i})
			}
		}(w)
	}
	wg.Wait()
	if mem.Len() != workers*per {
		t.Fatalf("lost events: %d", mem.Len())
	}
	sn := tr.Metrics().Snapshot()
	if sn.Counters[0].Value != workers*per {
		t.Fatalf("counter %d want %d", sn.Counters[0].Value, workers*per)
	}
}

func TestOfKind(t *testing.T) {
	evs := []Event{
		{Kind: KindSlotOpen, Slot: 0},
		{Kind: KindSlotClose, Slot: 0},
		{Kind: KindSlotOpen, Slot: 1},
	}
	opens := OfKind(evs, KindSlotOpen)
	if len(opens) != 2 || opens[1].Slot != 1 {
		t.Fatalf("filter wrong: %+v", opens)
	}
}
