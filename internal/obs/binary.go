package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/wire"
)

// Binary trace encoding (internal/wire format, DESIGN.md §11). Each
// event is one frame whose tag encodes the kind — fixed-size domain
// separation, so the kind string never travels for known kinds — and
// whose payload is a presence bitmap followed by the present fields in
// declaration order. A zero field is absent, exactly mirroring the
// JSON omitempty contract, and floats travel as IEEE-754 bits, so
// decode + encoding/json reproduces a native JSONL trace byte for
// byte. That equivalence is what keeps JSONL the debug surface:
// arachnet-trace -convert moves between the two without loss.

// kindTag maps each event kind to its frame tag. Order is the
// vocabulary's declaration order; the table is append-only (a payload
// change mints a new tag version instead of mutating a row).
var kindTag = map[Kind]wire.Tag{
	KindSlotOpen:    wire.TagEventSlotOpen,
	KindSlotClose:   wire.TagEventSlotClose,
	KindTagSettle:   wire.TagEventTagSettle,
	KindTagUnsettle: wire.TagEventTagUnsettle,
	KindTagEvict:    wire.TagEventTagEvict,
	KindCutoffOn:    wire.TagEventCutoffOn,
	KindCutoffOff:   wire.TagEventCutoffOff,
	KindBrownout:    wire.TagEventBrownout,
	KindSimEvent:    wire.TagEventSimEvent,
	KindDecode:      wire.TagEventDecode,
	KindJobStart:    wire.TagEventJobStart,
	KindJobFinish:   wire.TagEventJobFinish,
	KindFaultInject: wire.TagEventFaultInject,
	KindFaultClear:  wire.TagEventFaultClear,
	KindTagRejoin:   wire.TagEventTagRejoin,
}

// tagKind is the decoding inverse of kindTag.
var tagKind = func() map[wire.Tag]Kind {
	m := make(map[wire.Tag]Kind, len(kindTag))
	for k, t := range kindTag {
		m[t] = k
	}
	return m
}()

// Presence bits, one per Event field in declaration order (Kind rides
// the tag). A set bit means the field follows in the payload; a clear
// bit means the field is zero. Bits beyond evBitsAll are a decode
// error — a future field means a new tag version, never a silent skip.
const (
	evSlot = 1 << iota
	evT
	evTID
	evTIDs
	evDecoded
	evCollision
	evACK
	evEmpty
	evPeriod
	evOffset
	evJob
	evSeed
	evName
	evValue
	evDetail

	evBitsAll = 1<<15 - 1
)

// eventBits computes the presence bitmap of ev.
func eventBits(ev *Event) uint64 {
	var bits uint64
	if ev.Slot != 0 {
		bits |= evSlot
	}
	if ev.T != 0 {
		bits |= evT
	}
	if ev.TID != 0 {
		bits |= evTID
	}
	if len(ev.TIDs) != 0 {
		bits |= evTIDs
	}
	if len(ev.Decoded) != 0 {
		bits |= evDecoded
	}
	if ev.Collision {
		bits |= evCollision
	}
	if ev.ACK {
		bits |= evACK
	}
	if ev.Empty {
		bits |= evEmpty
	}
	if ev.Period != 0 {
		bits |= evPeriod
	}
	if ev.Offset != 0 {
		bits |= evOffset
	}
	if ev.Job != 0 {
		bits |= evJob
	}
	if ev.Seed != 0 {
		bits |= evSeed
	}
	if ev.Name != "" {
		bits |= evName
	}
	if ev.Value != 0 {
		bits |= evValue
	}
	if ev.Detail != "" {
		bits |= evDetail
	}
	return bits
}

// appendIntSlice appends a uvarint count followed by zigzag elements.
func appendIntSlice(dst []byte, xs []int) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = wire.AppendVarint(dst, int64(x))
	}
	return dst
}

// intSliceSize sizes appendIntSlice's output.
func intSliceSize(xs []int) int {
	n := wire.UvarintSize(uint64(len(xs)))
	for _, x := range xs {
		n += wire.VarintSize(int64(x))
	}
	return n
}

// consumeIntSlice parses a counted zigzag slice, reusing scratch's
// capacity when it suffices.
func consumeIntSlice(buf []byte, scratch []int) ([]int, int, error) {
	count, off, err := wire.ConsumeUvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(buf)-off) { // each element is ≥ 1 byte
		return nil, 0, fmt.Errorf("%w: %d slice elements with %d bytes remaining", wire.ErrTruncated, count, len(buf)-off)
	}
	if count == 0 {
		// A nil slice mirrors the encoder (a set bit always carries
		// elements) and the JSON omitempty contract.
		return nil, off, nil
	}
	out := scratch[:0]
	for i := uint64(0); i < count; i++ {
		v, n, err := wire.ConsumeVarint(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		out = append(out, int(v))
		off += n
	}
	return out, off, nil
}

// MarshalEventSize returns the exact encoded size of ev's frame.
func MarshalEventSize(ev *Event) int {
	bits := eventBits(ev)
	n := wire.FrameHeaderSize + wire.UvarintSize(bits)
	if _, known := kindTag[ev.Kind]; !known {
		n += wire.StringSize(string(ev.Kind))
	}
	if bits&evSlot != 0 {
		n += wire.VarintSize(int64(ev.Slot))
	}
	if bits&evT != 0 {
		n += 8
	}
	if bits&evTID != 0 {
		n += wire.VarintSize(int64(ev.TID))
	}
	if bits&evTIDs != 0 {
		n += intSliceSize(ev.TIDs)
	}
	if bits&evDecoded != 0 {
		n += intSliceSize(ev.Decoded)
	}
	if bits&evPeriod != 0 {
		n += wire.VarintSize(int64(ev.Period))
	}
	if bits&evOffset != 0 {
		n += wire.VarintSize(int64(ev.Offset))
	}
	if bits&evJob != 0 {
		n += wire.VarintSize(int64(ev.Job))
	}
	if bits&evSeed != 0 {
		n += 8
	}
	if bits&evName != 0 {
		n += wire.StringSize(ev.Name)
	}
	if bits&evValue != 0 {
		n += 8
	}
	if bits&evDetail != 0 {
		n += wire.StringSize(ev.Detail)
	}
	return n
}

// AppendEvent appends ev as one wire frame. This is the BinarySink hot
// path: a single pass, the length prefix backfilled, no intermediate
// buffers.
//
//alloc:hot steady-state trace encoding; appends into the sink's reused batch buffer, allocating only on one-time growth
func AppendEvent(dst []byte, ev *Event) []byte {
	tag, known := kindTag[ev.Kind]
	if !known {
		tag = wire.TagEventOther
	}
	start := len(dst)
	dst = wire.BeginFrame(dst, tag)
	if !known {
		dst = wire.AppendString(dst, string(ev.Kind))
	}
	bits := eventBits(ev)
	dst = wire.AppendUvarint(dst, bits)
	if bits&evSlot != 0 {
		dst = wire.AppendVarint(dst, int64(ev.Slot))
	}
	if bits&evT != 0 {
		dst = wire.AppendF64Bits(dst, ev.T)
	}
	if bits&evTID != 0 {
		dst = wire.AppendVarint(dst, int64(ev.TID))
	}
	if bits&evTIDs != 0 {
		dst = appendIntSlice(dst, ev.TIDs)
	}
	if bits&evDecoded != 0 {
		dst = appendIntSlice(dst, ev.Decoded)
	}
	if bits&evPeriod != 0 {
		dst = wire.AppendVarint(dst, int64(ev.Period))
	}
	if bits&evOffset != 0 {
		dst = wire.AppendVarint(dst, int64(ev.Offset))
	}
	if bits&evJob != 0 {
		dst = wire.AppendVarint(dst, int64(ev.Job))
	}
	if bits&evSeed != 0 {
		dst = wire.AppendU64(dst, ev.Seed)
	}
	if bits&evName != 0 {
		dst = wire.AppendString(dst, ev.Name)
	}
	if bits&evValue != 0 {
		dst = wire.AppendF64Bits(dst, ev.Value)
	}
	if bits&evDetail != 0 {
		dst = wire.AppendString(dst, ev.Detail)
	}
	return wire.EndFrame(dst, start)
}

// MarshalEvent encodes ev into buf, which must be at least
// MarshalEventSize(ev) long; it returns the bytes written.
func MarshalEvent(buf []byte, ev *Event) (int, error) {
	size := MarshalEventSize(ev)
	if len(buf) < size {
		return 0, fmt.Errorf("%w: event needs %d bytes, buffer holds %d", wire.ErrShortBuffer, size, len(buf))
	}
	return len(AppendEvent(buf[:0], ev)), nil
}

// UnmarshalEvent parses one event frame from the front of buf into ev
// (overwriting it completely, reusing its slice capacity) and returns
// the bytes consumed. Unknown tags and malformed payloads return
// errors wrapping the wire sentinels; hostile input never panics.
func UnmarshalEvent(buf []byte, ev *Event) (int, error) {
	tag, payload, n, err := wire.ConsumeFrame(buf)
	if err != nil {
		return 0, err
	}
	kind, known := tagKind[tag]
	tids, decoded := ev.TIDs[:0], ev.Decoded[:0]
	*ev = Event{}
	off := 0
	switch {
	case known:
		ev.Kind = kind
	case tag == wire.TagEventOther:
		s, m, err := wire.ConsumeString(payload)
		if err != nil {
			return 0, err
		}
		ev.Kind = Kind(s)
		off = m
	default:
		return 0, fmt.Errorf("%w: %s is not a trace event tag", wire.ErrUnknownTag, tag)
	}
	bits, m, err := wire.ConsumeUvarint(payload[off:])
	if err != nil {
		return 0, err
	}
	off += m
	if bits&^uint64(evBitsAll) != 0 {
		return 0, fmt.Errorf("%w: unknown event field bits %#x (a newer field means a new tag version)", wire.ErrMalformed, bits&^uint64(evBitsAll))
	}
	if bits&evSlot != 0 {
		v, m, err := wire.ConsumeVarint(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.Slot, off = int(v), off+m
	}
	if bits&evT != 0 {
		v, m, err := wire.ConsumeF64Bits(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.T, off = v, off+m
	}
	if bits&evTID != 0 {
		v, m, err := wire.ConsumeVarint(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.TID, off = int(v), off+m
	}
	if bits&evTIDs != 0 {
		xs, m, err := consumeIntSlice(payload[off:], tids)
		if err != nil {
			return 0, err
		}
		ev.TIDs, off = xs, off+m
	}
	if bits&evDecoded != 0 {
		xs, m, err := consumeIntSlice(payload[off:], decoded)
		if err != nil {
			return 0, err
		}
		ev.Decoded, off = xs, off+m
	}
	ev.Collision = bits&evCollision != 0
	ev.ACK = bits&evACK != 0
	ev.Empty = bits&evEmpty != 0
	if bits&evPeriod != 0 {
		v, m, err := wire.ConsumeVarint(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.Period, off = int(v), off+m
	}
	if bits&evOffset != 0 {
		v, m, err := wire.ConsumeVarint(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.Offset, off = int(v), off+m
	}
	if bits&evJob != 0 {
		v, m, err := wire.ConsumeVarint(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.Job, off = int(v), off+m
	}
	if bits&evSeed != 0 {
		v, m, err := wire.ConsumeU64(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.Seed, off = v, off+m
	}
	if bits&evName != 0 {
		s, m, err := wire.ConsumeString(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.Name, off = s, off+m
	}
	if bits&evValue != 0 {
		v, m, err := wire.ConsumeF64Bits(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.Value, off = v, off+m
	}
	if bits&evDetail != 0 {
		s, m, err := wire.ConsumeString(payload[off:])
		if err != nil {
			return 0, err
		}
		ev.Detail, off = s, off+m
	}
	if off != len(payload) {
		return 0, fmt.Errorf("%w: %d trailing bytes in event frame", wire.ErrMalformed, len(payload)-off)
	}
	return n, nil
}

// binaryFlushAt is the BinarySink batch threshold: Emit appends frames
// to the in-memory batch and only crosses into the writer when this
// many bytes are pending, so steady-state tracing costs an append, not
// a syscall.
const binaryFlushAt = 32 << 10

// BinarySink writes the wire-format binary trace stream to w: the
// stream header once, then one frame per event, batched. The encode
// path reuses one scratch buffer, so a steady-state Emit performs zero
// allocations (gated by AllocsPerRun and the static escape baseline).
// Write errors are sticky, matching JSONLSink: the first failure stops
// further output and is reported by Err/Close. Safe for concurrent
// use.
type BinarySink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewBinarySink traces to w in the binary wire format. Call Close (or
// Flush) when the run completes — events are batched, so dropping the
// sink without flushing loses the tail.
func NewBinarySink(w io.Writer) *BinarySink {
	s := &BinarySink{w: w, buf: make([]byte, 0, binaryFlushAt+4<<10)}
	s.buf = wire.AppendHeader(s.buf)
	return s
}

// Emit implements Sink.
//
//alloc:hot steady-state trace emission: one frame append into the reused batch buffer, no encoder state, no syscall until the batch fills
func (s *BinarySink) Emit(ev Event) {
	s.mu.Lock()
	if s.err == nil {
		s.buf = AppendEvent(s.buf, &ev)
		if len(s.buf) >= binaryFlushAt {
			s.flushLocked()
		}
	}
	s.mu.Unlock()
}

// flushLocked writes the pending batch; the caller holds s.mu.
func (s *BinarySink) flushLocked() {
	if s.err != nil || len(s.buf) == 0 {
		return
	}
	_, err := s.w.Write(s.buf)
	s.buf = s.buf[:0]
	if err != nil {
		s.err = err
	}
}

// Flush writes any batched frames through to w and reports the sticky
// error state.
func (s *BinarySink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return s.err
}

// Close flushes and reports the first write error, if any. It does not
// close the underlying writer.
func (s *BinarySink) Close() error { return s.Flush() }

// Err returns the first write error, or nil.
func (s *BinarySink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// EventReader decodes a binary trace stream produced by BinarySink
// (or any wire-format writer): the header, then one event per frame.
type EventReader struct {
	fr *wire.FrameReader
}

// NewEventReader reads the binary trace stream from r.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{fr: wire.NewFrameReader(r)}
}

// Read parses the next event into ev. It returns io.EOF at a clean
// stream end (between frames) and a wire error for truncated or
// malformed input.
func (er *EventReader) Read(ev *Event) error {
	_, frame, err := er.fr.Next()
	if err != nil {
		return err
	}
	_, err = UnmarshalEvent(frame, ev)
	return err
}

// ConvertBinaryToJSONL decodes a binary trace stream from r and writes
// the equivalent JSONL to w. Because the binary codec preserves exact
// float bits and the zero-is-absent contract, the output is
// byte-identical to the JSONL the same run would have emitted natively.
func ConvertBinaryToJSONL(r io.Reader, w io.Writer) error {
	er := NewEventReader(r)
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	var ev Event
	for {
		err := er.Read(&ev)
		if err == io.EOF {
			return bw.Flush()
		}
		if err != nil {
			return err
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
}

// ConvertJSONLToBinary encodes a JSONL trace stream from r into the
// binary wire format on w — the inverse of ConvertBinaryToJSONL, so
// existing JSONL traces can join binary tooling.
func ConvertJSONLToBinary(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	sink := NewBinarySink(w)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("obs: decode JSONL event: %w", err)
		}
		sink.Emit(ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return sink.Close()
}
