package phy

import "testing"

// Native go fuzz targets mirroring the testing/quick properties in
// fuzz_test.go: coverage-guided exploration of the frame parsers and
// line codecs. Run one at a time, e.g.
//
//	go test ./internal/phy -run '^$' -fuzz '^FuzzUnmarshalUL$' -fuzztime 10s
//
// (make fuzz-smoke runs all of them; CI includes the smoke job.)

// bitsFromBytes maps fuzz bytes onto a bit slice of length n (missing
// bytes are zero bits).
func bitsFromBytes(raw []byte, n int) Bits {
	bits := make(Bits, n)
	for i := range bits {
		if i < len(raw) {
			bits[i] = raw[i] & 1
		}
	}
	return bits
}

func FuzzUnmarshalUL(f *testing.F) {
	// Seed corpus: a valid frame, an empty input, a corrupted CRC.
	if valid, err := (ULPacket{TID: 5, Payload: 0xABC}).Marshal(); err == nil {
		f.Add([]byte(valid))
		bad := append([]byte(nil), valid...)
		bad[len(bad)-1] ^= 1
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := bitsFromBytes(raw, ULFrameBits)
		pkt, err := UnmarshalUL(bits)
		if err != nil {
			return // rejection is fine; panics are not
		}
		again, err := pkt.Marshal()
		if err != nil {
			t.Fatalf("accepted packet %+v fails to marshal: %v", pkt, err)
		}
		if !again.Equal(bits) {
			t.Fatalf("round trip mismatch:\n in  %v\n out %v", bits, again)
		}
	})
}

func FuzzUnmarshalDL(f *testing.F) {
	if valid, err := (Beacon{Cmd: CmdACK | CmdEMPTY}).Marshal(); err == nil {
		f.Add([]byte(valid))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := bitsFromBytes(raw, DLFrameBits)
		beacon, err := UnmarshalDL(bits)
		if err != nil {
			return
		}
		again, err := beacon.Marshal()
		if err != nil || !again.Equal(bits) {
			t.Fatalf("round trip mismatch for %+v: %v", beacon, err)
		}
	})
}

func FuzzPIEDecode(f *testing.F) {
	f.Add([]byte(PIEEncode(Bits{1, 0, 1, 1})))
	f.Add([]byte{1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		chips := make(Bits, len(raw))
		for i := range chips {
			chips[i] = raw[i] & 1
		}
		bits, err := PIEDecode(chips)
		if err != nil {
			return
		}
		// Accepted streams re-encode to a stream that decodes to the
		// same bits (the input's trailing separator may be truncated, so
		// chips are not compared directly).
		again, err := PIEDecode(PIEEncode(bits))
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if !again.Equal(bits) {
			t.Fatalf("decode/encode/decode mismatch:\n first  %v\n second %v", bits, again)
		}
	})
}

func FuzzFM0Decode(f *testing.F) {
	f.Add([]byte(FM0Encode(Bits{1, 0, 0, 1}, 0)), byte(0))
	f.Add([]byte{}, byte(1))
	f.Fuzz(func(t *testing.T, raw []byte, init byte) {
		n := len(raw) / 2 * 2
		chips := make(Bits, n)
		for i := range chips {
			chips[i] = raw[i] & 1
		}
		bits, err := FM0Decode(chips, init&1)
		if err != nil {
			return
		}
		if !FM0Encode(bits, init&1).Equal(chips) {
			t.Fatalf("FM0 round trip mismatch for init=%d chips=%v", init&1, chips)
		}
	})
}
