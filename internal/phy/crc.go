package phy

// CRC-8 with the CCITT polynomial x^8 + x^2 + x + 1 (0x07), computed
// bit-serially over the frame's TID and payload fields — exactly the
// arithmetic a 12 kHz MSP430 can afford between interrupts.

// crcPoly is the CRC-8-CCITT generator polynomial.
const crcPoly = 0x07

// CRC8 computes the 8-bit CRC of the given bits (MSB first, zero
// initial value).
func CRC8(bits Bits) uint8 {
	var crc uint8
	for _, b := range bits {
		crc ^= (b & 1) << 7
		if crc&0x80 != 0 {
			crc = crc<<1 ^ crcPoly
		} else {
			crc <<= 1
		}
	}
	return crc
}

// CheckCRC8 reports whether data followed by an 8-bit CRC field
// verifies: CRC8 over the concatenation of data and crc bits is zero.
func CheckCRC8(data, crc Bits) bool {
	if len(crc) != 8 {
		return false
	}
	return CRC8(append(append(Bits{}, data...), crc...)) == 0
}
