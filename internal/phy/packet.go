package phy

import (
	"errors"
	"fmt"
)

// Packet structures (Sec. 4.2, Fig. 5). The uplink frame carries sensor
// data with integrity protection; the downlink beacon is deliberately
// minimal — every DL bit wakes every tag through an interrupt, so each
// bit of beacon costs standby energy fleet-wide. The beacon therefore
// has no CRC and no tag ID.

// ULPreamble marks the start of an uplink frame (8 bits). The pattern
// maximizes transitions for the reader's clock recovery.
var ULPreamble = Bits{1, 0, 1, 1, 0, 1, 0, 0}

// DLPreamble marks the arrival of a beacon (6 bits).
var DLPreamble = Bits{1, 0, 1, 1, 0, 0}

// Field widths from Fig. 5.
const (
	ULPreambleBits = 8
	TIDBits        = 4
	PayloadBits    = 12
	CRCBits        = 8
	ULFrameBits    = ULPreambleBits + TIDBits + PayloadBits + CRCBits // 32

	DLPreambleBits = 6
	CMDBits        = 4
	DLFrameBits    = DLPreambleBits + CMDBits // 10
)

// MaxTags is the tag-address space of the 4-bit TID field.
const MaxTags = 1 << TIDBits

// Command is the 4-bit CMD field of a beacon. The low three bits are
// independent flags; the fourth is reserved for future use (Sec. 4.2).
type Command uint8

const (
	// CmdACK acknowledges the uplink packet received in the slot that
	// just ended. Cleared, the beacon is a NACK: either nothing
	// decodable arrived or the reader inferred a collision.
	CmdACK Command = 1 << 0
	// CmdEMPTY advertises that the reader predicts the *current* slot
	// is unoccupied, gating late-arriving tags (Sec. 5.5).
	CmdEMPTY Command = 1 << 1
	// CmdRESET orders all tags to reinitialize their protocol state.
	CmdRESET Command = 1 << 2
	// CmdReserved is the spare bit.
	CmdReserved Command = 1 << 3
)

// Has reports whether flag f is set.
func (c Command) Has(f Command) bool { return c&f != 0 }

func (c Command) String() string {
	s := ""
	if c.Has(CmdACK) {
		s += "ACK|"
	} else {
		s += "NACK|"
	}
	if c.Has(CmdEMPTY) {
		s += "EMPTY|"
	}
	if c.Has(CmdRESET) {
		s += "RESET|"
	}
	if c.Has(CmdReserved) {
		s += "RSVD|"
	}
	return s[:len(s)-1]
}

// ULPacket is the uplink frame payload: tag ID plus one 12-bit sensor
// sample.
type ULPacket struct {
	TID     uint8  // 0..15
	Payload uint16 // 12-bit sensor reading
}

// Errors returned by the frame codecs.
var (
	ErrFrameLength  = errors.New("phy: wrong frame length")
	ErrBadPreamble  = errors.New("phy: preamble mismatch")
	ErrCRC          = errors.New("phy: CRC check failed")
	ErrFieldTooWide = errors.New("phy: field value exceeds width")
)

// Marshal serializes the packet into the 32-bit UL frame
// (preamble | TID | payload | CRC).
func (p ULPacket) Marshal() (Bits, error) {
	if p.TID >= MaxTags {
		return nil, fmt.Errorf("%w: TID %d", ErrFieldTooWide, p.TID)
	}
	if p.Payload >= 1<<PayloadBits {
		return nil, fmt.Errorf("%w: payload %d", ErrFieldTooWide, p.Payload)
	}
	body := NewBitsFromUint(uint64(p.TID), TIDBits).
		Append(NewBitsFromUint(uint64(p.Payload), PayloadBits))
	crc := NewBitsFromUint(uint64(CRC8(body)), CRCBits)
	return append(Bits{}, ULPreamble...).Append(body, crc), nil
}

// UnmarshalUL parses and verifies a 32-bit UL frame.
func UnmarshalUL(frame Bits) (ULPacket, error) {
	if len(frame) != ULFrameBits {
		return ULPacket{}, fmt.Errorf("%w: got %d bits, want %d", ErrFrameLength, len(frame), ULFrameBits)
	}
	if !Bits(frame[:ULPreambleBits]).Equal(ULPreamble) {
		return ULPacket{}, ErrBadPreamble
	}
	body := frame[ULPreambleBits : ULPreambleBits+TIDBits+PayloadBits]
	crc := frame[ULPreambleBits+TIDBits+PayloadBits:]
	if !CheckCRC8(body, crc) {
		return ULPacket{}, ErrCRC
	}
	return ULPacket{
		TID:     uint8(Bits(body[:TIDBits]).Uint()),
		Payload: uint16(Bits(body[TIDBits:]).Uint()),
	}, nil
}

// Beacon is the downlink frame: just a command nibble behind the
// 6-bit preamble.
type Beacon struct {
	Cmd Command
}

// Marshal serializes the beacon into the 10-bit DL frame.
func (b Beacon) Marshal() (Bits, error) {
	if b.Cmd > 0xF {
		return nil, fmt.Errorf("%w: cmd %#x", ErrFieldTooWide, b.Cmd)
	}
	return append(Bits{}, DLPreamble...).
		Append(NewBitsFromUint(uint64(b.Cmd), CMDBits)), nil
}

// UnmarshalDL parses a 10-bit DL frame. There is deliberately no CRC:
// the beacon's job is slot timing, and the protocol tolerates the
// occasional corrupted command (Sec. 4.2).
func UnmarshalDL(frame Bits) (Beacon, error) {
	if len(frame) != DLFrameBits {
		return Beacon{}, fmt.Errorf("%w: got %d bits, want %d", ErrFrameLength, len(frame), DLFrameBits)
	}
	if !Bits(frame[:DLPreambleBits]).Equal(DLPreamble) {
		return Beacon{}, ErrBadPreamble
	}
	return Beacon{Cmd: Command(Bits(frame[DLPreambleBits:]).Uint())}, nil
}
